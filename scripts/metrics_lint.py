#!/usr/bin/env python3
"""Lints a Prometheus text exposition (0.0.4) scraped from /metrics.

Checks the contracts the obs::MetricsRegistry render promises and a
dashboard depends on:

  * every sampled family has a # HELP and a # TYPE line, and they appear
    before the family's first sample;
  * no family is declared twice (duplicate HELP/TYPE blocks);
  * TYPE values are legal, and samples match their family's type — a
    histogram family only emits _bucket/_sum/_count series;
  * histogram buckets are cumulative: counts are non-decreasing as `le`
    grows, every bucket set ends with le="+Inf", and _count equals the
    +Inf bucket for the same label set;
  * no duplicate sample lines (same series twice in one scrape).

Usage:  metrics_lint.py [exposition.txt]    (defaults to stdin)
Exit 0 on a clean exposition; 1 with one line per violation otherwise.
"""

import re
import sys

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)\s*$')
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def base_family(name, types):
    """Maps a sample name to its declared family: histogram samples carry
    _bucket/_sum/_count suffixes on the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            stem = name[: -len(suffix)]
            if types.get(stem) == "histogram":
                return stem
    return name


def parse_labels(raw):
    if not raw:
        return ()
    return tuple(sorted(LABEL_RE.findall(raw)))


def lint(text):
    errors = []
    helps = {}
    types = {}
    type_lines = {}
    samples = []  # (name, labels_tuple, value, line_no)
    seen_lines = {}

    for ln, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                errors.append(f"line {ln}: malformed HELP line")
                continue
            name = parts[2]
            if name in helps:
                errors.append(f"line {ln}: duplicate HELP for family {name}")
            helps[name] = ln
        elif line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {ln}: malformed TYPE line")
                continue
            name, mtype = parts[2], parts[3]
            if mtype not in VALID_TYPES:
                errors.append(f"line {ln}: invalid TYPE '{mtype}' for {name}")
            if name in types:
                errors.append(f"line {ln}: duplicate TYPE for family {name}")
            types[name] = mtype
            type_lines[name] = ln
        elif line.startswith("#"):
            continue  # other comments are legal
        else:
            m = SAMPLE_RE.match(line)
            if not m:
                errors.append(f"line {ln}: unparseable sample: {line!r}")
                continue
            name = m.group("name")
            labels = parse_labels(m.group("labels"))
            try:
                value = float(m.group("value"))
            except ValueError:
                errors.append(f"line {ln}: non-numeric value in: {line!r}")
                continue
            key = (name, labels)
            if key in seen_lines:
                errors.append(
                    f"line {ln}: duplicate series {name}{dict(labels)} "
                    f"(first at line {seen_lines[key]})")
            seen_lines[key] = ln
            samples.append((name, labels, value, ln))

    # Every sample's family must have HELP + TYPE declared before it.
    for name, labels, value, ln in samples:
        fam = base_family(name, types)
        if fam not in types:
            errors.append(f"line {ln}: sample {name} has no # TYPE")
        elif ln < type_lines[fam]:
            errors.append(
                f"line {ln}: sample {name} appears before its # TYPE "
                f"(line {type_lines[fam]})")
        if fam not in helps:
            errors.append(f"line {ln}: sample {name} has no # HELP")

    # Histogram structure: cumulative buckets ending at +Inf, _count match.
    hist_fams = [f for f, t in types.items() if t == "histogram"]
    for fam in hist_fams:
        # Group buckets by their non-le label set.
        series = {}
        counts = {}
        sums = set()
        for name, labels, value, ln in samples:
            if name == fam + "_bucket":
                non_le = tuple(kv for kv in labels if kv[0] != "le")
                le = dict(labels).get("le")
                if le is None:
                    errors.append(f"line {ln}: {name} sample without le label")
                    continue
                series.setdefault(non_le, []).append((ln, le, value))
            elif name == fam + "_count":
                counts[labels] = (ln, value)
            elif name == fam + "_sum":
                sums.add(labels)
        if not series:
            errors.append(f"family {fam}: histogram with no _bucket samples")
        for non_le, buckets in series.items():
            # Render order is ascending le; verify monotone in that order.
            prev = -1.0
            for ln, le, value in buckets:
                if value < prev:
                    errors.append(
                        f"line {ln}: {fam}_bucket le=\"{le}\" count {value} "
                        f"below previous bucket {prev} (not cumulative)")
                prev = value
            if buckets[-1][1] != "+Inf":
                errors.append(
                    f"family {fam}{dict(non_le)}: bucket list does not end "
                    f"with le=\"+Inf\"")
            else:
                inf_count = buckets[-1][2]
                if non_le not in counts:
                    errors.append(
                        f"family {fam}{dict(non_le)}: missing _count series")
                elif counts[non_le][1] != inf_count:
                    errors.append(
                        f"line {counts[non_le][0]}: {fam}_count "
                        f"{counts[non_le][1]} != +Inf bucket {inf_count}")
            if non_le not in sums:
                errors.append(
                    f"family {fam}{dict(non_le)}: missing _sum series")

    return errors


def main():
    if len(sys.argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    if len(sys.argv) == 2 and sys.argv[1] != "-":
        with open(sys.argv[1], encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    if not text.strip():
        print("metrics_lint: empty exposition", file=sys.stderr)
        return 1
    errors = lint(text)
    for e in errors:
        print(f"metrics_lint: {e}", file=sys.stderr)
    if errors:
        print(f"metrics_lint: FAIL ({len(errors)} violation(s))",
              file=sys.stderr)
        return 1
    families = text.count("# TYPE ")
    print(f"metrics_lint: OK ({families} families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
