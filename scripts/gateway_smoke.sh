#!/usr/bin/env bash
# gateway_smoke.sh <path-to-dharma_gateway>
#
# Boots the gateway daemon on an ephemeral port, drives the REST surface
# with curl, and asserts the response shapes: insert -> tag -> search ->
# resolve round trip, the typed JSON error taxonomy, the /stats JSON, and
# the /metrics Prometheus exposition. Exits nonzero on the first mismatch.
# This is the CI smoke; the load-bearing coverage lives in
# tests/test_gateway.cpp and tests/cluster/test_gateway_protocol.cpp.
set -euo pipefail

GATEWAY_BIN=${1:?usage: gateway_smoke.sh <path-to-dharma_gateway>}
LOG=$(mktemp)
FIFO=$(mktemp -u)
mkfifo "$FIFO"

cleanup() {
  exec 3>&- 2>/dev/null || true
  [ -n "${GW_PID:-}" ] && kill "$GW_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -f "$FIFO" "$LOG"
}
trap cleanup EXIT

# Hold the daemon's stdin open on a fifo so it keeps serving until we say
# quit; port 0 lets the kernel pick, the banner tells us what it picked.
"$GATEWAY_BIN" --bind 127.0.0.1:0 --nodes 2 <"$FIFO" >"$LOG" &
GW_PID=$!
exec 3>"$FIFO"

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's#^gateway listening on http://127.0.0.1:##p' "$LOG" | head -1)
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: no listening banner"; cat "$LOG"; exit 1; }
BASE="http://127.0.0.1:$PORT"
echo "gateway up on $BASE"

expect() { # expect <label> <needle> <haystack>
  case "$3" in
    *"$2"*) echo "ok: $1" ;;
    *) echo "FAIL: $1 — expected '$2' in: $3"; exit 1 ;;
  esac
}

R=$(curl -sS -X PUT "$BASE/resources/song1?tag=rock&tag=indie" -d 'http://u/song1')
expect "PUT /resources" '"resource":"song1"' "$R"

R=$(curl -sS -X POST "$BASE/resources/song1/tags" -d 'jazz')
expect "POST /tags" '"resource":"song1"' "$R"

R=$(curl -sS "$BASE/search?tag=rock&steps=2")
expect "GET /search" '"tag":"rock"' "$R"
expect "search finds resource" 'song1' "$R"

R=$(curl -sS "$BASE/resolve/song1")
expect "GET /resolve" 'http://u/song1' "$R"

R=$(curl -sS "$BASE/resolve/ghost")
expect "typed 404" '"error":"not-found"' "$R"

R=$(curl -sS "$BASE/stats")
expect "GET /stats" '"gateway":{' "$R"
expect "/stats carries registry metrics" '"metrics":{' "$R"

R=$(curl -sS "$BASE/debug/traces")
expect "GET /debug/traces" '"total_completed":' "$R"
expect "traces carry client-op spans" '"kind":"client-op"' "$R"

SCRAPE=$(mktemp)
curl -sS "$BASE/metrics" > "$SCRAPE"
R=$(cat "$SCRAPE")
expect "metrics exposition" '# TYPE dharma_gateway_requests_total counter' "$R"
expect "client op histograms exported"   '# TYPE dharma_client_op_latency_us histogram' "$R"
expect "node rpc service histograms exported"   '# TYPE dharma_node_rpc_service_us histogram' "$R"
expect "per-route latency histograms exported"   '# TYPE dharma_gateway_route_latency_us histogram' "$R"

# Structural lint over the full exposition: HELP/TYPE presence, duplicate
# families, cumulative buckets, _count == +Inf.
python3 "$(dirname "$0")/metrics_lint.py" "$SCRAPE"
rm -f "$SCRAPE"

echo quit >&3
wait "$GW_PID"
echo "gateway smoke PASS"
