/// Reproduces Figure 5: cumulative distribution functions of |Res(t)|,
/// |Tags(r)| and |N_FG(t)| on a log-x axis. Prints each series as CSV
/// (x = degree, y = P(X <= x)) ready for re-plotting, plus the quantiles
/// the paper narrates ("about 55% of tags mark only 1 resource", "almost
/// 40% of resources are labeled with just 1 tag", "80% of tags has a
/// not-null similarity with at most one or two hundred nodes").

#include <iostream>

#include "analysis/degree.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dharma;
  auto env = bench::BenchEnv::parse(argc, argv);
  usize points = static_cast<usize>(env.opts.getInt("points", 25));
  bench::banner("Figure 5 — Last.fm nodal degree CDF (log-x)", env);

  folk::Trg trg = bench::buildTrg(env);
  ThreadPool pool(env.threads);
  folk::CsrFg fg = folk::deriveExactFg(trg, &pool);
  ana::DegreeReport rep = ana::degreeReport(trg, fg);

  ana::printCsvSeries(std::cout, "Res(t) degree CDF",
                      rep.cdfResPerTag.logSpacedPoints(points));
  ana::printCsvSeries(std::cout, "Tags(r) degree CDF",
                      rep.cdfTagsPerResource.logSpacedPoints(points));
  ana::printCsvSeries(std::cout, "NFG(t) degree CDF",
                      rep.cdfFgDegree.logSpacedPoints(points));

  ana::printTable(
      std::cout, "Figure 5 landmarks",
      {"landmark", "paper", "measured"},
      {
          {"P(|Res(t)| <= 1)", "~0.55",
           ana::cellDouble(rep.cdfResPerTag.at(1.0), 3)},
          {"P(|Tags(r)| <= 1)", "~0.40",
           ana::cellDouble(rep.cdfTagsPerResource.at(1.0), 3)},
          {"P(|NFG(t)| <= 200)", "~0.80",
           ana::cellDouble(rep.cdfFgDegree.at(200.0), 3)},
      });

  // Shape: degree-1 spikes (Res/Tags CDFs start high), the FG-degree curve
  // puts most tags below a few hundred neighbours (paper: ~80 % <= 200),
  // and every distribution has a multi-decade tail (max >> mean).
  bool spikes = rep.cdfResPerTag.at(1.0) > 0.3 &&
                rep.cdfTagsPerResource.at(1.0) > 0.2;
  double p200 = rep.cdfFgDegree.at(200.0);
  bool fgMass = p200 > 0.5 && p200 < 0.98;
  bool tails = rep.resPerTag.max() > 10 * rep.resPerTag.mean() &&
               rep.fgOutDegree.max() > 10 * rep.fgOutDegree.mean();
  std::cout << "\nSHAPE CHECK: degree-1 spikes: " << (spikes ? "PASS" : "FAIL")
            << "; FG-degree mass below ~200 (paper ~0.80): "
            << (fgMass ? "PASS" : "FAIL")
            << "; multi-decade tails: " << (tails ? "PASS" : "FAIL") << "\n";
  return spikes && fgMass && tails ? 0 : 1;
}
