/// Reproduces Table III: comparison between the approximated and the
/// theoretic Folksonomy Graph for k ∈ {1, 5, 10}.
///
/// Paper reference (mu / sigma):
///   k   Recall          Ktau            theta           sim1%
///   1   0.6103/0.2798   0.7636/0.2728   0.8152/0.1978   0.9214/0.1044
///   5   0.7268/0.2730   0.7638/0.2380   0.8664/0.1636   0.9346/0.0914
///   10  0.7841/0.2686   0.7985/0.2138   0.8971/0.1424   0.9432/0.0850
///
/// Shape targets: Ktau/theta high and nearly flat in k; recall grows
/// sub-linearly with k; sim1% ≈ 0.9+; plus the narrated "for every k, the
/// 99% of the missing arcs has a weight <= 3".

#include <iostream>

#include "analysis/compare.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dharma;
  auto env = bench::BenchEnv::parse(argc, argv);
  bench::banner("Table III — approximated vs theoretic FG", env);

  folk::Trg trg = bench::buildTrg(env);
  ThreadPool pool(env.threads);
  folk::CsrFg exact = folk::deriveExactFg(trg, &pool);
  wl::Trace trace = wl::buildPaperOrderTrace(trg, env.seed + 1);

  struct PaperRow {
    u32 k;
    const char* recall;
    const char* ktau;
    const char* theta;
    const char* sim1;
  };
  const PaperRow paper[] = {
      {1, "0.6103/0.2798", "0.7636/0.2728", "0.8152/0.1978", "0.9214/0.1044"},
      {5, "0.7268/0.2730", "0.7638/0.2380", "0.8664/0.1636", "0.9346/0.0914"},
      {10, "0.7841/0.2686", "0.7985/0.2138", "0.8971/0.1424", "0.9432/0.0850"},
  };

  auto musigma = [](const RunningStats& s) {
    return ana::cellDouble(s.mean(), 4) + "/" + ana::cellDouble(s.stddev(), 4);
  };

  std::vector<std::vector<std::string>> rows;
  std::vector<double> recalls, ktaus;
  bool le3Ok = true, noApproxOnly = true;
  for (const PaperRow& p : paper) {
    folk::CsrFg approx =
        wl::replayApproximated(trace, folk::approxMode(p.k), env.seed + 2)
            .freezeFg(trg.tagSpan());
    ana::CompareReport rep = ana::compareFgs(exact, approx, &pool);
    rows.push_back({std::to_string(p.k), p.recall, musigma(rep.recall), p.ktau,
                    musigma(rep.kendall), p.theta, musigma(rep.cosine), p.sim1,
                    musigma(rep.sim1)});
    recalls.push_back(rep.recall.mean());
    ktaus.push_back(rep.kendall.mean());
    if (rep.missingLe3Share() < 0.9) le3Ok = false;
    if (rep.approxOnlyArcs != 0) noApproxOnly = false;
    std::cout << "# k=" << p.k << ": " << rep.tagsWithExactArcs
              << " tags compared, " << rep.approxArcsTotal << "/"
              << rep.exactArcsTotal << " arcs kept, missing-arc weight<=3 share = "
              << ana::cellDouble(rep.missingLe3Share(), 4) << " (paper ~0.99)\n";
  }

  ana::printTable(std::cout,
                  "paper vs measured (each cell: mu/sigma)",
                  {"k", "Recall paper", "Recall", "Ktau paper", "Ktau",
                   "theta paper", "theta", "sim1% paper", "sim1%"},
                  rows);

  bool recallGrows = recalls[0] < recalls[1] && recalls[1] < recalls[2];
  // Rank order is preserved (Ktau > 0) and improves with k. The paper's
  // absolute level (~0.76, nearly flat) is instance-dependent: our
  // synthetic rankings carry less weight dynamic range, so Ktau sits lower
  // — documented in docs/EXPERIMENTS.md.
  bool ktauPreserved = ktaus[0] > 0.2 && ktaus[0] <= ktaus[1] &&
                       ktaus[1] <= ktaus[2];
  std::cout << "\nSHAPE CHECK: recall grows with k: "
            << (recallGrows ? "PASS" : "FAIL")
            << "; rank order preserved and improving with k: "
            << (ktauPreserved ? "PASS" : "FAIL")
            << "; missing arcs are weight<=3 noise: " << (le3Ok ? "PASS" : "FAIL")
            << "; approx arcs subset of exact: "
            << (noApproxOnly ? "PASS" : "FAIL")
            << "\nNOTE: paper Ktau ~0.76 nearly flat in k; measured lower "
               "(see docs/EXPERIMENTS.md deviation note).\n";
  return recallGrows && ktauPreserved && le3Ok && noApproxOnly ? 0 : 1;
}
