/// Reproduces Table IV: faceted-search path-length statistics for the
/// last / random / first selection strategies, on the original FG and on
/// the approximated FG (k = 1).
///
/// Paper reference:
///                      Last            Rand            First
///   Original    mu     3.47            6.412           33.94
///               sigma  1.4175          4.4587          15.9942
///               med    3               5               33
///   Simulated   mu     3.38            5.2140          19.17
///   (k=1)       sigma  1.2373          2.6994          10.3065
///               med    3               5               16
///
/// Shape targets: first >> random > last on both graphs; the approximated
/// graph converges faster (most visibly for "first").
///
/// --json <path> additionally writes the full mu/sigma/median matrix and
/// the shape verdicts as one JSON object (baseline snapshot:
/// bench/baselines/BENCH_table4_search_stats.json).

#include <fstream>
#include <iostream>

#include "analysis/searchsim.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dharma;
  auto env = bench::BenchEnv::parse(argc, argv);
  const std::string jsonPath = env.opts.getString("json", "");
  bench::banner("Table IV — search simulation statistics", env);

  folk::Trg trg = bench::buildTrg(env);
  ThreadPool pool(env.threads);
  folk::CsrFg exact = folk::deriveExactFg(trg, &pool);
  wl::Trace trace = wl::buildPaperOrderTrace(trg, env.seed + 1);
  folk::CsrFg approx =
      wl::replayApproximated(trace, folk::approxMode(1), env.seed + 2)
          .freezeFg(trg.tagSpan());

  ana::SearchSimConfig sc;
  sc.startTags = static_cast<usize>(env.opts.getInt("starts", 100));
  sc.randomRunsPerTag = static_cast<usize>(env.opts.getInt("randruns", 100));
  sc.seed = env.seed + 3;

  ana::SearchSimReport orig = ana::runSearchSim(exact, trg, sc);
  ana::SearchSimReport sim = ana::runSearchSim(approx, trg, sc);

  auto cell = [](const ana::StrategyStats& s, int what) {
    switch (what) {
      case 0: return ana::cellDouble(s.steps.mean(), 2);
      case 1: return ana::cellDouble(s.steps.stddev(), 4);
      default: return ana::cellDouble(s.medianSteps, 0);
    }
  };
  using folk::Strategy;
  std::vector<std::vector<std::string>> rows;
  const char* paperOrig[3][3] = {{"3.47", "6.412", "33.94"},
                                 {"1.4175", "4.4587", "15.9942"},
                                 {"3", "5", "33"}};
  const char* paperSim[3][3] = {{"3.38", "5.2140", "19.17"},
                                {"1.2373", "2.6994", "10.3065"},
                                {"3", "5", "16"}};
  const char* statName[3] = {"mu", "sigma", "median"};
  for (int what = 0; what < 3; ++what) {
    rows.push_back({std::string("Original ") + statName[what],
                    paperOrig[what][0], cell(orig.of(Strategy::kLast), what),
                    paperOrig[what][1], cell(orig.of(Strategy::kRandom), what),
                    paperOrig[what][2], cell(orig.of(Strategy::kFirst), what)});
  }
  for (int what = 0; what < 3; ++what) {
    rows.push_back({std::string("Simulated(k=1) ") + statName[what],
                    paperSim[what][0], cell(sim.of(Strategy::kLast), what),
                    paperSim[what][1], cell(sim.of(Strategy::kRandom), what),
                    paperSim[what][2], cell(sim.of(Strategy::kFirst), what)});
  }
  ana::printTable(std::cout, "search path length (steps)",
                  {"graph/stat", "Last paper", "Last", "Rand paper", "Rand",
                   "First paper", "First"},
                  rows);

  for (auto [name, rep] : {std::pair<const char*, const ana::SearchSimReport*>{
                               "original", &orig},
                           {"approximated", &sim}}) {
    std::cout << "# " << name << " stop reasons (tags<=1 / res<=10): ";
    for (Strategy s : {Strategy::kLast, Strategy::kRandom, Strategy::kFirst}) {
      std::cout << folk::strategyName(s) << "="
                << ana::cellDouble(
                       rep->of(s).reasonShare(folk::StopReason::kTagsExhausted), 2)
                << "/"
                << ana::cellDouble(
                       rep->of(s).reasonShare(folk::StopReason::kResourcesNarrowed),
                       2)
                << " ";
    }
    std::cout << "\n";
  }

  double oL = orig.of(Strategy::kLast).steps.mean();
  double oR = orig.of(Strategy::kRandom).steps.mean();
  double oF = orig.of(Strategy::kFirst).steps.mean();
  double sF = sim.of(Strategy::kFirst).steps.mean();
  double sR = sim.of(Strategy::kRandom).steps.mean();
  bool ordering = oL <= oR && oR < oF;
  // The paper's magnitudes: last ~3.5, random ~6.4, first ~34 — within an
  // order of magnitude counts as a magnitude match on a synthetic instance.
  bool magnitudes = oL < 35 && oR < 64 && oF < 340 && oF > 3.4;
  bool approxFaster = sF < oF && sR <= oR + 0.5;
  std::cout << "\nSHAPE CHECK: first >> random >= last on original graph: "
            << (ordering ? "PASS" : "FAIL")
            << "; magnitudes within 10x of the paper: "
            << (magnitudes ? "PASS" : "FAIL")
            << "\nAPPROXIMATION EFFECT (paper: -43% on 'first'): "
            << (approxFaster ? "REPRODUCED" : "NOT REPRODUCED on this instance")
            << " (first " << ana::cellDouble(oF, 2) << " -> "
            << ana::cellDouble(sF, 2)
            << "); docs/EXPERIMENTS.md discusses the instance sensitivity.\n";

  if (!jsonPath.empty()) {
    std::ofstream js(jsonPath);
    auto strat = [&](const ana::SearchSimReport& rep, Strategy s) {
      const ana::StrategyStats& st = rep.of(s);
      return std::string("{\"mean\": ") + std::to_string(st.steps.mean()) +
             ", \"stddev\": " + std::to_string(st.steps.stddev()) +
             ", \"median\": " + std::to_string(st.medianSteps) + "}";
    };
    auto graph = [&](const ana::SearchSimReport& rep) {
      return std::string("{\"last\": ") + strat(rep, Strategy::kLast) +
             ", \"random\": " + strat(rep, Strategy::kRandom) +
             ", \"first\": " + strat(rep, Strategy::kFirst) + "}";
    };
    js << "{\n"
       << "  \"bench\": \"bench_table4_search_stats\",\n"
       << "  \"config\": {\"scale\": " << env.scale << ", \"seed\": "
       << env.seed << ", \"starts\": " << sc.startTags << ", \"randruns\": "
       << sc.randomRunsPerTag << "},\n"
       << "  \"original\": " << graph(orig) << ",\n"
       << "  \"approximated_k1\": " << graph(sim) << ",\n"
       << "  \"checks\": {\"ordering\": " << (ordering ? "true" : "false")
       << ", \"magnitudes\": " << (magnitudes ? "true" : "false")
       << ", \"approx_faster\": " << (approxFaster ? "true" : "false")
       << "}\n"
       << "}\n";
    if (!js) {
      std::cerr << "failed to write " << jsonPath << "\n";
      return 1;
    }
    std::cout << "# json written to " << jsonPath << "\n";
  }
  return ordering && magnitudes ? 0 : 1;
}
