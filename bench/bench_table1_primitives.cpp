/// Reproduces Table I: the cost, in overlay lookups, of the three DHARMA
/// primitives under the naive and the approximated protocol:
///
///   Primitives      Insert(r, t1..m)   Tag(r,t)            Search step
///   naive           2 + 2m             4 + |Tags(r)|       2
///   approximated    2 + 2m             4 + k               2
///
/// These are protocol identities, so unlike the statistical experiments the
/// measured numbers must match the formulas EXACTLY; the bench runs the
/// real protocol on a live simulated overlay and diffs every cell.
///
/// A fourth section measures the batched entry points (tagResources /
/// insertResources) against m sequential single ops: the batch shares the
/// lookup plan (one r̄ fetch amortised over the batch; t̄/t̂ updates
/// grouped), so lookups/op must come out strictly lower while the single-op
/// Table I cells above stay untouched.

#include <fstream>
#include <iostream>

#include "common.hpp"
#include "core/client.hpp"

namespace {

using namespace dharma;

dht::DhtNetwork makeOverlay(usize nodes, u64 seed) {
  dht::DhtNetworkConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = seed;
  cfg.latency = "lognormal";
  return dht::DhtNetwork(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dharma;
  auto env = bench::BenchEnv::parse(argc, argv);
  usize nodes = static_cast<usize>(env.opts.getInt("nodes", 64));
  const std::string jsonPath = env.opts.getString("json", "");
  bench::banner("Table I — distributed tagging primitives cost (#lookups)", env);
  std::cout << "# overlay: " << nodes << " Kademlia/Likir nodes (simulated)\n";

  dht::DhtNetwork net = makeOverlay(nodes, env.seed);
  net.bootstrap();

  bool allMatch = true;
  bool allOk = true;
  auto check = [&](const core::Outcome<core::WriteReceipt>& out, u64 formula) {
    if (!out.ok()) allOk = false;
    if (out.cost.lookups != formula) allMatch = false;
    return ana::cellInt(out.cost.lookups) +
           (out.cost.lookups == formula ? " = " : " != ") +
           ana::cellInt(formula);
  };
  auto checkCost = [&](u64 measured, u64 formula) {
    if (measured != formula) allMatch = false;
    return ana::cellInt(measured) + (measured == formula ? " = " : " != ") +
           ana::cellInt(formula);
  };

  // -- Insert(r, t1..m): 2 + 2m, identical in both protocols --
  {
    std::vector<std::vector<std::string>> rows;
    core::DharmaClient naive(net, 0, [] {
      core::DharmaConfig c;
      c.approximateA = false;
      c.approximateB = false;
      return c;
    }());
    core::DharmaClient approx(net, 1, core::DharmaConfig{});
    for (usize m : {1u, 2u, 4u, 8u, 16u, 32u}) {
      std::vector<std::string> tags;
      for (usize i = 0; i < m; ++i) {
        tags.push_back("ins-tag-" + std::to_string(m) + "-" + std::to_string(i));
      }
      auto cn = naive.insertResource("ins-n-" + std::to_string(m), "uri://n", tags);
      auto ca = approx.insertResource("ins-a-" + std::to_string(m), "uri://a", tags);
      rows.push_back({std::to_string(m), check(cn, 2 + 2 * m),
                      check(ca, 2 + 2 * m)});
    }
    ana::printTable(std::cout, "Insert(r, t1..tm): paper formula 2 + 2m",
                    {"m", "naive (measured = formula)",
                     "approx (measured = formula)"},
                    rows);
  }

  // -- Tag(r, t): naive 4 + |Tags(r)|; approximated 4 + k --
  {
    std::vector<std::vector<std::string>> rows;
    for (u32 tagsOnR : {1u, 2u, 4u, 8u, 16u, 32u}) {
      std::vector<std::string> tags;
      for (u32 i = 0; i < tagsOnR; ++i) {
        tags.push_back("tg-" + std::to_string(tagsOnR) + "-" + std::to_string(i));
      }
      std::vector<std::string> cells{std::to_string(tagsOnR)};

      core::DharmaConfig ncfg;
      ncfg.approximateA = false;
      ncfg.approximateB = false;
      core::DharmaClient naive(net, 2, ncfg, env.seed);
      std::string resN = "tagres-n-" + std::to_string(tagsOnR);
      naive.insertResource(resN, "uri://t", tags);
      auto cn = naive.tagResource(resN, "fresh-n-" + std::to_string(tagsOnR));
      cells.push_back(check(cn, 4 + tagsOnR));

      for (u32 k : {1u, 5u, 10u}) {
        core::DharmaConfig acfg;
        acfg.k = k;
        core::DharmaClient approx(net, 3, acfg, env.seed + k);
        std::string resA =
            "tagres-a-" + std::to_string(tagsOnR) + "-" + std::to_string(k);
        approx.insertResource(resA, "uri://t", tags);
        auto ca = approx.tagResource(resA, "fresh-a-" + std::to_string(k));
        cells.push_back(check(ca, 4 + std::min(k, tagsOnR)));
      }
      rows.push_back(cells);
    }
    ana::printTable(
        std::cout,
        "Tag(r, t): paper formulas — naive 4 + |Tags(r)|, approx 4 + k "
        "(capped at |Tags(r)|)",
        {"|Tags(r)|", "naive", "approx k=1", "approx k=5", "approx k=10"},
        rows);
  }

  // -- Search step: 2 lookups --
  {
    std::vector<std::vector<std::string>> rows;
    core::DharmaClient client(net, 4);
    client.insertResource("search-res", "uri://s", {"rock", "pop", "indie"});
    for (const std::string t : {"rock", "pop", "indie"}) {
      auto out = client.searchStep(t);
      std::string retrieved = "FAILED: ";
      if (out.ok()) {
        retrieved = std::to_string(out->relatedTags.size()) + " tags, " +
                    std::to_string(out->resources.size()) + " resources";
      } else {
        allOk = false;
        retrieved += core::opErrorName(out.error());
      }
      rows.push_back({t, checkCost(out.cost.lookups, 2), retrieved});
    }
    ana::printTable(std::cout, "Search step: paper formula 2",
                    {"tag", "lookups (measured = formula)", "retrieved"}, rows);
  }

  // -- Batched ops: shared lookup plan vs m sequential single ops --
  bool batchedWins = true;
  {
    std::vector<std::vector<std::string>> rows;
    for (usize m : {2u, 4u, 8u, 16u}) {
      // Identical fresh resources with one base tag, tagged with m new tags
      // sequentially on one, batched on the other. Same client seed so the
      // Approximation A subsets line up.
      std::vector<std::string> fresh;
      for (usize i = 0; i < m; ++i) {
        fresh.push_back("b" + std::to_string(m) + "-t" + std::to_string(i));
      }
      core::DharmaClient seq(net, 5, core::DharmaConfig{}, env.seed + m);
      core::DharmaClient bat(net, 6, core::DharmaConfig{}, env.seed + m);
      std::string resS = "batch-s-" + std::to_string(m);
      std::string resB = "batch-b-" + std::to_string(m);
      seq.insertResource(resS, "uri://b", {"base"});
      bat.insertResource(resB, "uri://b", {"base"});

      core::OpCost seqCost;
      bool seqOk = true;
      for (const auto& t : fresh) {
        auto out = seq.tagResource(resS, t);
        seqOk = seqOk && out.ok();
        seqCost += out.cost;
      }
      auto batOut = bat.tagResources(resB, fresh);
      if (!seqOk || !batOut.ok()) allOk = false;
      if (batOut.cost.lookups >= seqCost.lookups) batchedWins = false;
      double seqPer = static_cast<double>(seqCost.lookups) /
                      static_cast<double>(m);
      double batPer = static_cast<double>(batOut.cost.lookups) /
                      static_cast<double>(m);
      rows.push_back({std::to_string(m), ana::cellInt(seqCost.lookups),
                      ana::cellInt(batOut.cost.lookups),
                      ana::cellDouble(seqPer, 2), ana::cellDouble(batPer, 2)});
    }
    ana::printTable(std::cout,
                    "tagResources(r, t1..tm) vs m sequential tagResource "
                    "(k=1, |Tags(r)|=1 at start)",
                    {"m", "sequential lookups", "batched lookups",
                     "sequential lookups/op", "batched lookups/op"},
                    rows);
  }
  {
    std::vector<std::vector<std::string>> rows;
    for (usize n : {2u, 4u, 8u}) {
      // n resources sharing one genre tag plus one unique tag each.
      std::vector<core::ResourceSpec> specs;
      for (usize i = 0; i < n; ++i) {
        specs.push_back(core::ResourceSpec{
            "bi-b-" + std::to_string(n) + "-" + std::to_string(i), "uri://i",
            {"genre-" + std::to_string(n), "solo-" + std::to_string(i)}});
      }
      core::DharmaClient seq(net, 7, core::DharmaConfig{}, env.seed + n);
      core::DharmaClient bat(net, 8, core::DharmaConfig{}, env.seed + n);
      core::OpCost seqCost;
      for (const auto& s : specs) {
        auto out = seq.insertResource("bi-s-" + s.res, s.uri, s.tags);
        if (!out.ok()) allOk = false;
        seqCost += out.cost;
      }
      auto batOut = bat.insertResources(specs);
      if (!batOut.ok()) allOk = false;
      if (batOut.cost.lookups >= seqCost.lookups) batchedWins = false;
      rows.push_back({std::to_string(n), ana::cellInt(seqCost.lookups),
                      ana::cellInt(batOut.cost.lookups)});
    }
    ana::printTable(std::cout,
                    "insertResources(r1..rn) vs n sequential insertResource "
                    "(2 tags each, 1 shared)",
                    {"n", "sequential lookups", "batched lookups"}, rows);
  }

  std::cout << "\nRESULT: "
            << (allMatch ? "ALL CELLS MATCH Table I" :
                           "MISMATCH vs Table I (see above)")
            << "; batched ops cheaper than sequential: "
            << (batchedWins ? "PASS" : "FAIL") << "; all ops succeeded: "
            << (allOk ? "PASS" : "FAIL") << "\n";
  std::cout << "# overlay traffic: " << net.network().stats().sent
            << " datagrams, " << net.network().stats().bytesSent << " bytes, "
            << net.totalLookups() << " total lookups\n";

  if (!jsonPath.empty()) {
    // Deterministic per (nodes, seed): the checked-in baseline in
    // bench/baselines/ must reproduce byte-for-byte on the same config.
    std::ofstream js(jsonPath);
    js << "{\n"
       << "  \"bench\": \"bench_table1_primitives\",\n"
       << "  \"config\": {\"nodes\": " << nodes << ", \"seed\": "
       << env.seed << "},\n"
       << "  \"checks\": {\"all_cells_match\": "
       << (allMatch ? "true" : "false") << ", \"batched_cheaper\": "
       << (batchedWins ? "true" : "false") << ", \"all_ops_ok\": "
       << (allOk ? "true" : "false") << "},\n"
       << "  \"traffic\": {\"datagrams\": " << net.network().stats().sent
       << ", \"bytes\": " << net.network().stats().bytesSent
       << ", \"total_lookups\": " << net.totalLookups() << "}\n"
       << "}\n";
    if (!js) {
      std::cerr << "failed to write " << jsonPath << "\n";
      return 1;
    }
    std::cout << "# json written to " << jsonPath << "\n";
  }
  return allMatch && batchedWins && allOk ? 0 : 1;
}
