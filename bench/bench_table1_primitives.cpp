/// Reproduces Table I: the cost, in overlay lookups, of the three DHARMA
/// primitives under the naive and the approximated protocol:
///
///   Primitives      Insert(r, t1..m)   Tag(r,t)            Search step
///   naive           2 + 2m             4 + |Tags(r)|       2
///   approximated    2 + 2m             4 + k               2
///
/// These are protocol identities, so unlike the statistical experiments the
/// measured numbers must match the formulas EXACTLY; the bench runs the
/// real protocol on a live simulated overlay and diffs every cell.

#include <iostream>

#include "common.hpp"
#include "core/client.hpp"

namespace {

using namespace dharma;

dht::DhtNetwork makeOverlay(usize nodes, u64 seed) {
  dht::DhtNetworkConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = seed;
  cfg.latency = "lognormal";
  return dht::DhtNetwork(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dharma;
  auto env = bench::BenchEnv::parse(argc, argv);
  usize nodes = static_cast<usize>(env.opts.getInt("nodes", 64));
  bench::banner("Table I — distributed tagging primitives cost (#lookups)", env);
  std::cout << "# overlay: " << nodes << " Kademlia/Likir nodes (simulated)\n";

  dht::DhtNetwork net = makeOverlay(nodes, env.seed);
  net.bootstrap();

  bool allMatch = true;
  auto check = [&](u64 measured, u64 formula) {
    if (measured != formula) allMatch = false;
    return ana::cellInt(measured) + (measured == formula ? " = " : " != ") +
           ana::cellInt(formula);
  };

  // -- Insert(r, t1..m): 2 + 2m, identical in both protocols --
  {
    std::vector<std::vector<std::string>> rows;
    core::DharmaClient naive(net, 0, [] {
      core::DharmaConfig c;
      c.approximateA = false;
      c.approximateB = false;
      return c;
    }());
    core::DharmaClient approx(net, 1, core::DharmaConfig{});
    for (usize m : {1u, 2u, 4u, 8u, 16u, 32u}) {
      std::vector<std::string> tags;
      for (usize i = 0; i < m; ++i) {
        tags.push_back("ins-tag-" + std::to_string(m) + "-" + std::to_string(i));
      }
      auto cn = naive.insertResource("ins-n-" + std::to_string(m), "uri://n", tags);
      auto ca = approx.insertResource("ins-a-" + std::to_string(m), "uri://a", tags);
      rows.push_back({std::to_string(m), check(cn.lookups, 2 + 2 * m),
                      check(ca.lookups, 2 + 2 * m)});
    }
    ana::printTable(std::cout, "Insert(r, t1..tm): paper formula 2 + 2m",
                    {"m", "naive (measured = formula)",
                     "approx (measured = formula)"},
                    rows);
  }

  // -- Tag(r, t): naive 4 + |Tags(r)|; approximated 4 + k --
  {
    std::vector<std::vector<std::string>> rows;
    for (u32 tagsOnR : {1u, 2u, 4u, 8u, 16u, 32u}) {
      std::vector<std::string> tags;
      for (u32 i = 0; i < tagsOnR; ++i) {
        tags.push_back("tg-" + std::to_string(tagsOnR) + "-" + std::to_string(i));
      }
      std::vector<std::string> cells{std::to_string(tagsOnR)};

      core::DharmaConfig ncfg;
      ncfg.approximateA = false;
      ncfg.approximateB = false;
      core::DharmaClient naive(net, 2, ncfg, env.seed);
      std::string resN = "tagres-n-" + std::to_string(tagsOnR);
      naive.insertResource(resN, "uri://t", tags);
      auto cn = naive.tagResource(resN, "fresh-n-" + std::to_string(tagsOnR));
      cells.push_back(check(cn.lookups, 4 + tagsOnR));

      for (u32 k : {1u, 5u, 10u}) {
        core::DharmaConfig acfg;
        acfg.k = k;
        core::DharmaClient approx(net, 3, acfg, env.seed + k);
        std::string resA =
            "tagres-a-" + std::to_string(tagsOnR) + "-" + std::to_string(k);
        approx.insertResource(resA, "uri://t", tags);
        auto ca = approx.tagResource(resA, "fresh-a-" + std::to_string(k));
        cells.push_back(check(ca.lookups, 4 + std::min(k, tagsOnR)));
      }
      rows.push_back(cells);
    }
    ana::printTable(
        std::cout,
        "Tag(r, t): paper formulas — naive 4 + |Tags(r)|, approx 4 + k "
        "(capped at |Tags(r)|)",
        {"|Tags(r)|", "naive", "approx k=1", "approx k=5", "approx k=10"},
        rows);
  }

  // -- Search step: 2 lookups --
  {
    std::vector<std::vector<std::string>> rows;
    core::DharmaClient client(net, 4);
    client.insertResource("search-res", "uri://s", {"rock", "pop", "indie"});
    for (const std::string t : {"rock", "pop", "indie"}) {
      auto [step, cost] = client.searchStep(t);
      rows.push_back({t, check(cost.lookups, 2),
                      std::to_string(step.relatedTags.size()) + " tags, " +
                          std::to_string(step.resources.size()) + " resources"});
    }
    ana::printTable(std::cout, "Search step: paper formula 2",
                    {"tag", "lookups (measured = formula)", "retrieved"}, rows);
  }

  std::cout << "\nRESULT: " << (allMatch ? "ALL CELLS MATCH Table I" :
                                           "MISMATCH vs Table I (see above)")
            << "\n";
  std::cout << "# overlay traffic: " << net.network().stats().sent
            << " datagrams, " << net.network().stats().bytesSent << " bytes, "
            << net.totalLookups() << " total lookups\n";
  return allMatch ? 0 : 1;
}
