/// Reproduces Figure 7: CDFs of faceted-search path lengths for the three
/// selection strategies (last / random / first), on the original and the
/// approximated (k=1) Folksonomy Graph.
///
/// Paper claim: "the approximated approach shortens the navigation, thus
/// quickening convergence. This effect [is] particularly evident in the
/// 'first tag' strategy." The bench prints all six CDF series as CSV and
/// checks stochastic dominance of the approximated curves.
///
/// --json <path> additionally writes per-strategy means/medians, the
/// dominance probe tallies and the shape verdicts as one JSON object
/// (baseline snapshot: bench/baselines/BENCH_fig7_search_cdf.json).

#include <fstream>
#include <iostream>

#include "analysis/searchsim.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dharma;
  auto env = bench::BenchEnv::parse(argc, argv);
  const std::string jsonPath = env.opts.getString("json", "");
  bench::banner("Figure 7 — search path length CDFs", env);

  folk::Trg trg = bench::buildTrg(env);
  ThreadPool pool(env.threads);
  folk::CsrFg exact = folk::deriveExactFg(trg, &pool);
  wl::Trace trace = wl::buildPaperOrderTrace(trg, env.seed + 1);
  folk::CsrFg approx =
      wl::replayApproximated(trace, folk::approxMode(1), env.seed + 2)
          .freezeFg(trg.tagSpan());

  ana::SearchSimConfig sc;
  sc.startTags = static_cast<usize>(env.opts.getInt("starts", 100));
  sc.randomRunsPerTag = static_cast<usize>(env.opts.getInt("randruns", 100));
  sc.seed = env.seed + 3;

  ana::SearchSimReport orig = ana::runSearchSim(exact, trg, sc);
  ana::SearchSimReport sim = ana::runSearchSim(approx, trg, sc);

  using folk::Strategy;
  bool dominated = true;
  struct ProbeTally {
    int ahead = 0;
    int total = 0;
  };
  ProbeTally probes[3];
  int si = 0;
  for (Strategy s : {Strategy::kLast, Strategy::kRandom, Strategy::kFirst}) {
    ana::printCsvSeries(std::cout,
                        std::string("original ") + folk::strategyName(s),
                        orig.of(s).cdf.points());
    ana::printCsvSeries(std::cout,
                        std::string("approximated(k=1) ") + folk::strategyName(s),
                        sim.of(s).cdf.points());
    // Check P(steps <= x) for the approximated graph is at least as high as
    // for the original at a few probe abscissae (>= : shorter paths).
    double maxX = orig.of(s).steps.max();
    int ahead = 0, total = 0;
    for (double frac : {0.25, 0.5, 0.75}) {
      double x = frac * maxX;
      ++total;
      if (sim.of(s).cdf.at(x) + 1e-9 >= orig.of(s).cdf.at(x)) ++ahead;
    }
    std::cout << "# " << folk::strategyName(s) << ": approximated CDF >= "
              << "original at " << ahead << "/" << total << " probes\n";
    if (s == Strategy::kFirst && ahead < 2) dominated = false;
    probes[si++] = ProbeTally{ahead, total};
  }

  double oF = orig.of(Strategy::kFirst).steps.mean();
  double sF = sim.of(Strategy::kFirst).steps.mean();
  // All six series regenerated; the strategy separation must hold. The
  // approximated-graph dominance (the paper's headline in this figure) is
  // reported but instance-sensitive — see docs/EXPERIMENTS.md.
  bool separation = orig.of(Strategy::kLast).steps.mean() <
                    orig.of(Strategy::kFirst).steps.mean();
  std::cout << "\nSHAPE CHECK: strategy separation in the CDFs: "
            << (separation ? "PASS" : "FAIL")
            << "\nAPPROXIMATION EFFECT ('first' mean " << ana::cellDouble(oF, 2)
            << " -> " << ana::cellDouble(sF, 2) << "; paper 33.9 -> 19.2): "
            << (sF < oF && dominated ? "REPRODUCED"
                                     : "NOT REPRODUCED on this instance")
            << "\n";

  if (!jsonPath.empty()) {
    std::ofstream js(jsonPath);
    js << "{\n"
       << "  \"bench\": \"bench_fig7_search_cdf\",\n"
       << "  \"config\": {\"scale\": " << env.scale << ", \"seed\": "
       << env.seed << ", \"starts\": " << sc.startTags << ", \"randruns\": "
       << sc.randomRunsPerTag << "},\n"
       << "  \"strategies\": {";
    const Strategy order[3] = {Strategy::kLast, Strategy::kRandom,
                               Strategy::kFirst};
    for (int i = 0; i < 3; ++i) {
      Strategy s = order[i];
      js << (i == 0 ? "\n" : ",\n") << "    \"" << folk::strategyName(s)
         << "\": {\"original_mean\": " << orig.of(s).steps.mean()
         << ", \"approx_mean\": " << sim.of(s).steps.mean()
         << ", \"original_median\": " << orig.of(s).medianSteps
         << ", \"approx_median\": " << sim.of(s).medianSteps
         << ", \"probes_ahead\": " << probes[i].ahead << ", \"probes\": "
         << probes[i].total << "}";
    }
    js << "\n  },\n"
       << "  \"checks\": {\"strategy_separation\": "
       << (separation ? "true" : "false")
       << ", \"approximation_reproduced\": "
       << (sF < oF && dominated ? "true" : "false") << "}\n"
       << "}\n";
    if (!js) {
      std::cerr << "failed to write " << jsonPath << "\n";
      return 1;
    }
    std::cout << "# json written to " << jsonPath << "\n";
  }
  return separation ? 0 : 1;
}
