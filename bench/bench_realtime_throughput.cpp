/// \file bench_realtime_throughput.cpp
/// \brief The repo's wall-clock performance number: GET/PUT/tag throughput
/// and latency of a live loopback-UDP DHARMA cluster, across runtime
/// shard counts and network backends.
///
/// Boots N KademliaNodes on one DatagramTransport under a ShardedExecutor
/// (node i pinned to shard i % shards), preloads a small folksonomy, then
/// drives W worker threads of blocking DharmaClient operations (search
/// steps, resolves, tag writes) and reports ops/sec plus p50/p99 latency
/// per operation class — and per shard, from the runtime's own
/// dharma_node_shard_* histograms.
///
/// Unlike every other bench here this is NOT deterministic — it measures
/// the real machine (scheduler, loopback stack, executor locks). The
/// architecture it characterises: each shard's loop thread executes its
/// nodes' protocol callbacks one at a time, so throughput scales with
/// shards until the box runs out of cores (or, on a small box, until the
/// syscall path is the floor — which is what --net-backend epoll's
/// recvmmsg/sendmmsg batching attacks).
///
///   $ ./bench_realtime_throughput                     # 8 nodes, 4 shards
///   $ ./bench_realtime_throughput --shards 1          # PR-7 single loop
///   $ ./bench_realtime_throughput --net-backend poll  # portable backend
///   $ ./bench_realtime_throughput --sweep             # backend x shards grid
///   $ ./bench_realtime_throughput --smoke             # CI-sized
///   $ ./bench_realtime_throughput --json out.json     # machine-readable
///
/// --json writes the full result (config, ops/sec, per-class p50/p99/max,
/// per-shard run/wait percentiles, UDP counters) as one JSON object;
/// bench/baselines/ keeps a checked-in snapshot per PR so regressions
/// diff as data, not as prose.
///
/// Cost anchoring (Table I): a search step is 2 lookups, a resolve 1, a
/// tag write 4 + k — so ops/sec here compose directly with the paper's
/// per-op lookup identities.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/client.hpp"
#include "core/runtime.hpp"
#include "net/datagram.hpp"
#include "net/realtime.hpp"
#include "net/sharded.hpp"
#include "obs/registry.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

using namespace dharma;
using Clock = std::chrono::steady_clock;

namespace {

double usSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

struct LatencyTrack {
  std::vector<double> samples;
  void add(double us) { samples.push_back(us); }
  void merge(const LatencyTrack& o) {
    samples.insert(samples.end(), o.samples.begin(), o.samples.end());
  }
  double percentile(double p) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    usize idx = static_cast<usize>(p * static_cast<double>(samples.size() - 1));
    return samples[idx];
  }
};

struct WorkerResult {
  LatencyTrack search, resolve, tag;
  u64 failures = 0;
};

struct RunConfig {
  usize nodes = 8;
  usize workers = 4;
  usize opsPerWorker = 1000;
  usize resources = 64;
  usize shards = 4;
  net::NetBackend backend = net::defaultNetBackend();
  u64 seed = 42;
  bool obsOn = true;
  bool smoke = false;
};

/// One shard's run/wait percentiles, read back from the runtime's own
/// dharma_node_shard_* histograms after the measured phase.
struct ShardStat {
  usize shard = 0;
  u64 tasks = 0;
  double runP50 = 0, runP99 = 0;
  double waitP50 = 0, waitP99 = 0;
};

struct RunResult {
  double wallUs = 0;
  u64 totalOps = 0;
  u64 failures = 0;
  LatencyTrack search, resolve, tag;
  net::UdpStats net;
  std::vector<ShardStat> shards;
  double opsPerSec() const {
    return static_cast<double>(totalOps) / (wallUs / 1e6);
  }
};

const std::vector<std::string>& tagPool() {
  static const std::vector<std::string> pool = {
      "rock", "jazz", "metal", "electronic", "classic",
      "blues", "folk", "ambient", "punk", "soul"};
  return pool;
}

/// Boots a cluster per \p cfg, runs the measured phase, tears everything
/// down, and returns the numbers. Exits non-zero state via failures > 0.
RunResult runOnce(const RunConfig& cfg) {
  const auto& pool = tagPool();
  obs::MetricsRegistry registry;  // before the executors/transport: both
                                  // hold handles into it
  net::ShardedExecutor execs(net::ShardedExecutor::Config{
      cfg.shards, cfg.obsOn ? &registry : nullptr});
  execs.start();
  auto transport = net::makeDatagramTransport(
      cfg.backend, execs.shard(0),
      net::UdpConfig{"127.0.0.1", 1400, cfg.obsOn ? &registry : nullptr});
  crypto::CertificationService cs("bench-realtime-secret");
  core::ShardedRuntime rt(execs, *transport);

  dht::NodeConfig nodeCfg;
  if (cfg.obsOn) nodeCfg.metrics = &registry;
  std::vector<std::unique_ptr<dht::KademliaNode>> nodes;
  for (usize i = 0; i < cfg.nodes; ++i) {
    // Node i is pinned to shard i % shards: its datagrams, timers and
    // blocking ops all run there (and nowhere else — the Debug affinity
    // checker aborts otherwise).
    nodes.push_back(std::make_unique<dht::KademliaNode>(
        execs.shard(execs.shardOf(i)), *transport, cs,
        cs.enroll("bench-" + std::to_string(i)), nodeCfg, cfg.seed + i));
  }
  Clock::time_point bootStart = Clock::now();
  for (usize i = 1; i < cfg.nodes; ++i) {
    dht::Contact seedContact = nodes[0]->contact();
    rt.forShard(execs.shardOf(i)).awaitDone([&](std::function<void()> done) {
      nodes[i]->join(seedContact, std::move(done));
    });
  }
  std::printf("# bootstrap: %.1f ms\n", usSince(bootStart) / 1000.0);

  // ---- preload folksonomy ------------------------------------------------
  {
    core::DharmaClient loader(rt.forShard(0), *nodes[0], {}, cfg.seed);
    Rng rng(cfg.seed);
    for (usize r = 0; r < cfg.resources; ++r) {
      std::vector<std::string> tags;
      usize m = 2 + static_cast<usize>(rng.uniform(3));
      for (usize j = 0; j < m; ++j) {
        tags.push_back(pool[static_cast<usize>(rng.uniform(pool.size()))]);
      }
      auto out = loader.insertResource("res-" + std::to_string(r),
                                       "uri://res-" + std::to_string(r), tags);
      if (!out.ok()) {
        std::cerr << "preload insert failed\n";
        RunResult bad;
        bad.failures = 1;
        bad.totalOps = 1;
        bad.wallUs = 1;
        return bad;
      }
    }
  }

  // ---- measured phase ----------------------------------------------------
  // One client per worker, each riding a different node AND blocking
  // through that node's own shard runtime; with shards > 1 the engine work
  // itself runs concurrently across loop threads.
  std::vector<WorkerResult> results(cfg.workers);
  std::vector<std::thread> workers;
  Clock::time_point runStart = Clock::now();
  for (usize w = 0; w < cfg.workers; ++w) {
    workers.emplace_back([&, w] {
      usize nodeIdx = (w + 1) % cfg.nodes;
      core::DharmaConfig ccfg;
      if (cfg.obsOn) ccfg.metrics = &registry;
      core::DharmaClient client(rt.forShard(execs.shardOf(nodeIdx)),
                                *nodes[nodeIdx], ccfg, cfg.seed + 100 + w);
      Rng rng(cfg.seed * 31 + w);
      WorkerResult& res = results[w];
      for (usize op = 0; op < cfg.opsPerWorker; ++op) {
        u64 dice = rng.uniform(100);
        Clock::time_point t0 = Clock::now();
        if (dice < 60) {  // search step: 2 lookups
          const std::string& tag =
              pool[static_cast<usize>(rng.uniform(pool.size()))];
          auto out = client.searchStep(tag);
          res.search.add(usSince(t0));
          res.failures += out.ok() ? 0 : 1;
        } else if (dice < 85) {  // resolve: 1 lookup
          std::string r = "res-" + std::to_string(rng.uniform(cfg.resources));
          auto out = client.resolveUri(r);
          res.resolve.add(usSince(t0));
          res.failures += out.ok() ? 0 : 1;
        } else {  // tag write: 4 + k lookups
          std::string r = "res-" + std::to_string(rng.uniform(cfg.resources));
          const std::string& tag =
              pool[static_cast<usize>(rng.uniform(pool.size()))];
          auto out = client.tagResource(r, tag);
          res.tag.add(usSince(t0));
          res.failures += out.ok() ? 0 : 1;
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  RunResult out;
  out.wallUs = usSince(runStart);
  out.totalOps = static_cast<u64>(cfg.workers * cfg.opsPerWorker);
  for (auto& r : results) {
    out.search.merge(r.search);
    out.resolve.merge(r.resolve);
    out.tag.merge(r.tag);
    out.failures += r.failures;
  }
  out.net = transport->stats();
  if (cfg.obsOn) {
    // Read the per-shard loop histograms back out of the registry — the
    // same handles the ShardedExecutor records into (registration is
    // get-or-create, so this resolves the existing series).
    for (usize i = 0; i < cfg.shards; ++i) {
      obs::Labels labels{{"shard", std::to_string(i)}};
      auto run = registry
                     .histogram("dharma_node_shard_task_run_us", "", labels)
                     .snapshot();
      auto wait = registry
                      .histogram("dharma_node_shard_task_wait_us", "", labels)
                      .snapshot();
      ShardStat s;
      s.shard = i;
      s.tasks = run.count();
      s.runP50 = run.quantile(0.50);
      s.runP99 = run.quantile(0.99);
      s.waitP50 = wait.quantile(0.50);
      s.waitP99 = wait.quantile(0.99);
      out.shards.push_back(s);
    }
  }

  execs.stop();
  transport->close();
  nodes.clear();
  return out;
}

void printReport(const RunConfig& cfg, RunResult& r) {
  std::printf("\n%-10s %8s %10s %10s %10s\n", "op", "count", "p50 us",
              "p99 us", "max us");
  auto row = [](const char* name, LatencyTrack& t) {
    if (t.samples.empty()) return;
    std::printf("%-10s %8zu %10.0f %10.0f %10.0f\n", name, t.samples.size(),
                t.percentile(0.50), t.percentile(0.99), t.percentile(1.0));
  };
  row("search", r.search);
  row("resolve", r.resolve);
  row("tag", r.tag);

  if (!r.shards.empty()) {
    std::printf("\n%-8s %10s %10s %10s %10s %10s\n", "shard", "tasks",
                "run p50", "run p99", "wait p50", "wait p99");
    for (const ShardStat& s : r.shards) {
      std::printf("%-8zu %10llu %10.0f %10.0f %10.0f %10.0f\n", s.shard,
                  static_cast<unsigned long long>(s.tasks), s.runP50, s.runP99,
                  s.waitP50, s.waitP99);
    }
  }

  std::printf("\nRESULT: %llu ops in %.2f s => %.0f ops/sec (%zu workers, "
              "%zu shards, %s), %llu failures\n",
              static_cast<unsigned long long>(r.totalOps), r.wallUs / 1e6,
              r.opsPerSec(), cfg.workers, cfg.shards,
              net::netBackendName(cfg.backend),
              static_cast<unsigned long long>(r.failures));
  std::printf("# udp: %llu datagrams sent, %llu received, %llu bytes\n",
              static_cast<unsigned long long>(r.net.sent),
              static_cast<unsigned long long>(r.net.received),
              static_cast<unsigned long long>(r.net.bytesSent));
}

void writeJson(const std::string& path, const RunConfig& cfg, RunResult& r) {
  // Percentiles were already materialised by the table above (percentile()
  // sorts in place), so this is a pure serialisation pass.
  std::ofstream js(path);
  auto opClass = [&js](const char* name, LatencyTrack& t, bool last) {
    js << "    \"" << name << "\": {\"count\": " << t.samples.size()
       << ", \"p50_us\": " << t.percentile(0.50)
       << ", \"p99_us\": " << t.percentile(0.99)
       << ", \"max_us\": " << t.percentile(1.0) << "}"
       << (last ? "\n" : ",\n");
  };
  js << "{\n"
     << "  \"bench\": \"bench_realtime_throughput\",\n"
     << "  \"config\": {\"nodes\": " << cfg.nodes << ", \"workers\": "
     << cfg.workers << ", \"ops_per_worker\": " << cfg.opsPerWorker
     << ", \"resources\": " << cfg.resources << ", \"seed\": " << cfg.seed
     << ", \"shards\": " << cfg.shards << ", \"net_backend\": \""
     << net::netBackendName(cfg.backend) << "\""
     << ", \"smoke\": " << (cfg.smoke ? "true" : "false")
     << ", \"obs\": " << (cfg.obsOn ? "true" : "false") << "},\n"
     << "  \"wall_seconds\": " << r.wallUs / 1e6 << ",\n"
     << "  \"ops_per_sec\": " << r.opsPerSec() << ",\n"
     << "  \"total_ops\": " << r.totalOps << ",\n"
     << "  \"failures\": " << r.failures << ",\n"
     << "  \"latency_us\": {\n";
  opClass("search", r.search, false);
  opClass("resolve", r.resolve, false);
  opClass("tag", r.tag, true);
  js << "  },\n"
     << "  \"shard_breakdown\": [";
  for (usize i = 0; i < r.shards.size(); ++i) {
    const ShardStat& s = r.shards[i];
    js << (i == 0 ? "\n" : ",\n")
       << "    {\"shard\": " << s.shard << ", \"tasks\": " << s.tasks
       << ", \"run_p50_us\": " << s.runP50 << ", \"run_p99_us\": " << s.runP99
       << ", \"wait_p50_us\": " << s.waitP50
       << ", \"wait_p99_us\": " << s.waitP99 << "}";
  }
  js << (r.shards.empty() ? "" : "\n  ") << "],\n"
     << "  \"udp\": {\"sent\": " << r.net.sent << ", \"received\": "
     << r.net.received << ", \"bytes_sent\": " << r.net.bytesSent << "}\n"
     << "}\n";
  if (!js) {
    std::cerr << "failed to write " << path << "\n";
    std::exit(1);
  }
  std::printf("# json written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  RunConfig cfg;
  cfg.smoke = opts.getBool("smoke", false);
  cfg.nodes = static_cast<usize>(opts.getInt("nodes", cfg.smoke ? 4 : 8));
  cfg.workers = static_cast<usize>(opts.getInt("workers", cfg.smoke ? 2 : 4));
  cfg.opsPerWorker =
      static_cast<usize>(opts.getInt("ops", cfg.smoke ? 150 : 1000));
  cfg.resources =
      static_cast<usize>(opts.getInt("resources", cfg.smoke ? 16 : 64));
  cfg.seed = static_cast<u64>(opts.getInt("seed", 42));
  cfg.shards = static_cast<usize>(opts.getInt("shards", cfg.smoke ? 1 : 4));
  // Full obs instrumentation is ON by default so a baseline diff measures
  // its overhead (the <=5%% acceptance gate); --obs false isolates it.
  cfg.obsOn = opts.getBool("obs", true);
  const std::string jsonPath = opts.getString("json", "");
  const bool sweep = opts.getBool("sweep", false);

  std::string backendName = opts.getString(
      "net-backend", net::netBackendName(net::defaultNetBackend()));
  auto backend = net::parseNetBackend(backendName);
  if (!backend || !net::netBackendAvailable(*backend)) {
    std::cerr << "bad --net-backend '" << backendName << "'\n";
    return 2;
  }
  cfg.backend = *backend;
  if (cfg.nodes == 0 || cfg.workers == 0 || cfg.shards == 0) {
    std::cerr << "--nodes/--workers/--shards must be >= 1\n";
    return 2;
  }

  std::cout << "### Real-time loopback-UDP throughput\n"
            << "# nodes=" << cfg.nodes << " workers=" << cfg.workers
            << " ops/worker=" << cfg.opsPerWorker
            << " resources=" << cfg.resources
            << " obs=" << (cfg.obsOn ? "on" : "off")
            << "\n# wall-clock measurement: numbers vary run to run (no "
               "digest)\n";

  if (sweep) {
    // Backend x shard-count grid, same workload per cell; the comparison
    // table is the EXPERIMENTS.md scaling recipe's output.
    struct Cell {
      RunConfig cfg;
      double opsPerSec;
      u64 failures;
    };
    std::vector<Cell> cells;
    for (net::NetBackend b : {net::NetBackend::kPoll, net::NetBackend::kEpoll}) {
      if (!net::netBackendAvailable(b)) continue;
      for (usize s : {usize{1}, usize{2}, usize{4}}) {
        RunConfig c = cfg;
        c.backend = b;
        c.shards = s;
        std::printf("\n--- sweep: backend=%s shards=%zu ---\n",
                    net::netBackendName(b), s);
        RunResult r = runOnce(c);
        printReport(c, r);
        cells.push_back(Cell{c, r.opsPerSec(), r.failures});
      }
    }
    std::printf("\n%-8s %7s %12s %9s\n", "backend", "shards", "ops/sec",
                "failures");
    u64 anyFailures = 0;
    for (const Cell& c : cells) {
      std::printf("%-8s %7zu %12.0f %9llu\n",
                  net::netBackendName(c.cfg.backend), c.cfg.shards,
                  c.opsPerSec, static_cast<unsigned long long>(c.failures));
      anyFailures += c.failures;
    }
    return anyFailures == 0 ? 0 : 1;
  }

  RunResult r = runOnce(cfg);
  printReport(cfg, r);
  if (!jsonPath.empty()) writeJson(jsonPath, cfg, r);
  return r.failures == 0 ? 0 : 1;
}
