/// \file bench_realtime_throughput.cpp
/// \brief The repo's first wall-clock performance number: GET/PUT/tag
/// throughput and latency of a live loopback-UDP DHARMA cluster.
///
/// Boots N KademliaNodes on one UdpTransport under a RealTimeExecutor,
/// preloads a small folksonomy, then drives W worker threads of blocking
/// DharmaClient operations (search steps, resolves, tag writes) and
/// reports ops/sec plus p50/p99 latency per operation class.
///
/// Unlike every other bench here this is NOT deterministic — it measures
/// the real machine (scheduler, loopback stack, executor lock). The
/// architecture it characterises: one run-loop thread executes all
/// protocol callbacks, so reported throughput is the single-engine
/// ceiling; sharded event loops are the recorded follow-on (ROADMAP).
///
///   $ ./bench_realtime_throughput                 # 8 nodes, 4 workers
///   $ ./bench_realtime_throughput --nodes 16 --workers 8 --ops 2000
///   $ ./bench_realtime_throughput --smoke         # CI-sized
///   $ ./bench_realtime_throughput --json out.json # + machine-readable dump
///
/// --json writes the full result (config, ops/sec, per-class p50/p99/max,
/// UDP counters) as one JSON object; bench/baselines/ keeps a checked-in
/// snapshot per PR so regressions diff as data, not as prose.
///
/// Cost anchoring (Table I): a search step is 2 lookups, a resolve 1, a
/// tag write 4 + k — so ops/sec here compose directly with the paper's
/// per-op lookup identities.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/client.hpp"
#include "core/runtime.hpp"
#include "net/realtime.hpp"
#include "net/udp_transport.hpp"
#include "obs/registry.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

using namespace dharma;
using Clock = std::chrono::steady_clock;

namespace {

double usSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

struct LatencyTrack {
  std::vector<double> samples;
  void add(double us) { samples.push_back(us); }
  void merge(const LatencyTrack& o) {
    samples.insert(samples.end(), o.samples.begin(), o.samples.end());
  }
  double percentile(double p) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    usize idx = static_cast<usize>(p * static_cast<double>(samples.size() - 1));
    return samples[idx];
  }
};

struct WorkerResult {
  LatencyTrack search, resolve, tag;
  u64 failures = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const bool smoke = opts.getBool("smoke", false);
  const usize nNodes = static_cast<usize>(opts.getInt("nodes", smoke ? 4 : 8));
  const usize nWorkers =
      static_cast<usize>(opts.getInt("workers", smoke ? 2 : 4));
  const usize opsPerWorker =
      static_cast<usize>(opts.getInt("ops", smoke ? 150 : 1000));
  const usize nResources =
      static_cast<usize>(opts.getInt("resources", smoke ? 16 : 64));
  const u64 seed = static_cast<u64>(opts.getInt("seed", 42));
  const std::string jsonPath = opts.getString("json", "");
  // Full obs instrumentation is ON by default so a baseline diff measures
  // its overhead (the <=5%% acceptance gate); --obs false isolates it.
  const bool obsOn = opts.getBool("obs", true);

  std::cout << "### Real-time loopback-UDP throughput\n"
            << "# nodes=" << nNodes << " workers=" << nWorkers
            << " ops/worker=" << opsPerWorker << " resources=" << nResources
            << " obs=" << (obsOn ? "on" : "off")
            << "\n# wall-clock measurement: numbers vary run to run (no "
               "digest)\n";

  // ---- cluster boot -------------------------------------------------------
  obs::MetricsRegistry registry;  // before the transport: it holds a pointer
  net::RealTimeExecutor exec;
  exec.start();
  net::UdpTransport transport(
      exec, net::UdpTransport::Config{"127.0.0.1", 1400,
                                      obsOn ? &registry : nullptr});
  crypto::CertificationService cs("bench-realtime-secret");
  core::RealTimeRuntime rt(exec, transport);

  dht::NodeConfig nodeCfg;
  if (obsOn) nodeCfg.metrics = &registry;
  std::vector<std::unique_ptr<dht::KademliaNode>> nodes;
  for (usize i = 0; i < nNodes; ++i) {
    nodes.push_back(std::make_unique<dht::KademliaNode>(
        exec, transport, cs, cs.enroll("bench-" + std::to_string(i)),
        nodeCfg, seed + i));
  }
  Clock::time_point bootStart = Clock::now();
  for (usize i = 1; i < nNodes; ++i) {
    dht::Contact seedContact = nodes[0]->contact();
    rt.awaitDone([&](std::function<void()> done) {
      nodes[i]->join(seedContact, std::move(done));
    });
  }
  std::printf("# bootstrap: %.1f ms\n", usSince(bootStart) / 1000.0);

  // ---- preload folksonomy -------------------------------------------------
  const std::vector<std::string> tagPool = {
      "rock", "jazz", "metal", "electronic", "classic",
      "blues", "folk", "ambient", "punk", "soul"};
  {
    core::DharmaClient loader(rt, *nodes[0], {}, seed);
    Rng rng(seed);
    for (usize r = 0; r < nResources; ++r) {
      std::vector<std::string> tags;
      usize m = 2 + static_cast<usize>(rng.uniform(3));
      for (usize j = 0; j < m; ++j) {
        tags.push_back(tagPool[static_cast<usize>(rng.uniform(tagPool.size()))]);
      }
      auto out = loader.insertResource("res-" + std::to_string(r),
                                       "uri://res-" + std::to_string(r), tags);
      if (!out.ok()) {
        std::cerr << "preload insert failed\n";
        return 1;
      }
    }
  }

  // ---- measured phase -----------------------------------------------------
  // One client per worker, each riding a different node; every blocking op
  // funnels through the single run loop, so this measures the engine, not
  // client-side parallelism.
  std::vector<WorkerResult> results(nWorkers);
  std::vector<std::thread> workers;
  Clock::time_point runStart = Clock::now();
  for (usize w = 0; w < nWorkers; ++w) {
    workers.emplace_back([&, w] {
      core::DharmaConfig ccfg;
      if (obsOn) ccfg.metrics = &registry;
      core::DharmaClient client(rt, *nodes[(w + 1) % nNodes], ccfg,
                                seed + 100 + w);
      Rng rng(seed * 31 + w);
      WorkerResult& res = results[w];
      for (usize op = 0; op < opsPerWorker; ++op) {
        u64 dice = rng.uniform(100);
        Clock::time_point t0 = Clock::now();
        if (dice < 60) {  // search step: 2 lookups
          const std::string& tag =
              tagPool[static_cast<usize>(rng.uniform(tagPool.size()))];
          auto out = client.searchStep(tag);
          res.search.add(usSince(t0));
          res.failures += out.ok() ? 0 : 1;
        } else if (dice < 85) {  // resolve: 1 lookup
          std::string r = "res-" + std::to_string(rng.uniform(nResources));
          auto out = client.resolveUri(r);
          res.resolve.add(usSince(t0));
          res.failures += out.ok() ? 0 : 1;
        } else {  // tag write: 4 + k lookups
          std::string r = "res-" + std::to_string(rng.uniform(nResources));
          const std::string& tag =
              tagPool[static_cast<usize>(rng.uniform(tagPool.size()))];
          auto out = client.tagResource(r, tag);
          res.tag.add(usSince(t0));
          res.failures += out.ok() ? 0 : 1;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  double wallUs = usSince(runStart);

  // ---- report -------------------------------------------------------------
  LatencyTrack search, resolve, tag;
  u64 failures = 0;
  for (auto& r : results) {
    search.merge(r.search);
    resolve.merge(r.resolve);
    tag.merge(r.tag);
    failures += r.failures;
  }
  u64 totalOps = static_cast<u64>(nWorkers * opsPerWorker);
  net::UdpStats net = transport.stats();

  std::printf("\n%-10s %8s %10s %10s %10s\n", "op", "count", "p50 us", "p99 us",
              "max us");
  auto row = [](const char* name, LatencyTrack& t) {
    if (t.samples.empty()) return;
    std::printf("%-10s %8zu %10.0f %10.0f %10.0f\n", name, t.samples.size(),
                t.percentile(0.50), t.percentile(0.99), t.percentile(1.0));
  };
  row("search", search);
  row("resolve", resolve);
  row("tag", tag);

  std::printf("\nRESULT: %llu ops in %.2f s => %.0f ops/sec (%zu workers), "
              "%llu failures\n",
              static_cast<unsigned long long>(totalOps), wallUs / 1e6,
              static_cast<double>(totalOps) / (wallUs / 1e6), nWorkers,
              static_cast<unsigned long long>(failures));
  std::printf("# udp: %llu datagrams sent, %llu received, %llu bytes\n",
              static_cast<unsigned long long>(net.sent),
              static_cast<unsigned long long>(net.received),
              static_cast<unsigned long long>(net.bytesSent));

  if (!jsonPath.empty()) {
    // Percentiles were already materialised by the table above (percentile()
    // sorts in place), so this is a pure serialisation pass.
    std::ofstream js(jsonPath);
    auto opClass = [&js](const char* name, LatencyTrack& t, bool last) {
      js << "    \"" << name << "\": {\"count\": " << t.samples.size()
         << ", \"p50_us\": " << t.percentile(0.50)
         << ", \"p99_us\": " << t.percentile(0.99)
         << ", \"max_us\": " << t.percentile(1.0) << "}" << (last ? "\n" : ",\n");
    };
    js << "{\n"
       << "  \"bench\": \"bench_realtime_throughput\",\n"
       << "  \"config\": {\"nodes\": " << nNodes << ", \"workers\": "
       << nWorkers << ", \"ops_per_worker\": " << opsPerWorker
       << ", \"resources\": " << nResources << ", \"seed\": " << seed
       << ", \"smoke\": " << (smoke ? "true" : "false")
       << ", \"obs\": " << (obsOn ? "true" : "false") << "},\n"
       << "  \"wall_seconds\": " << wallUs / 1e6 << ",\n"
       << "  \"ops_per_sec\": "
       << static_cast<double>(totalOps) / (wallUs / 1e6) << ",\n"
       << "  \"total_ops\": " << totalOps << ",\n"
       << "  \"failures\": " << failures << ",\n"
       << "  \"latency_us\": {\n";
    opClass("search", search, false);
    opClass("resolve", resolve, false);
    opClass("tag", tag, true);
    js << "  },\n"
       << "  \"udp\": {\"sent\": " << net.sent << ", \"received\": "
       << net.received << ", \"bytes_sent\": " << net.bytesSent << "}\n"
       << "}\n";
    if (!js) {
      std::cerr << "failed to write " << jsonPath << "\n";
      return 1;
    }
    std::printf("# json written to %s\n", jsonPath.c_str());
  }

  exec.stop();
  transport.close();
  nodes.clear();
  return failures == 0 ? 0 : 1;
}
