/// Record-cache effectiveness under Zipf(α) read-heavy search workloads.
///
/// DHARMA search sessions repeatedly fetch the same hot t̄/t̂ blocks — tag
/// popularity in folksonomies is heavy-tailed — so PR 4's adaptive record
/// caching (client read-through cache + Kademlia lookup-path caching via
/// STORE_CACHE) should absorb most read lookups. This bench measures it:
///
///   1. build an overlay and publish a tag corpus (every tag owns live
///      t̄/t̂ blocks);
///   2. generate a deterministic Zipf(α) search-session trace
///      (wl::makeZipfReadTrace) and replay it twice — caches disabled and
///      caches enabled — on identically-seeded overlays;
///   3. report hit-rate and lookups/search-session versus α and versus
///      client cache capacity, plus the overlay path-cache traffic
///      (STORE_CACHE published/absorbed, node-cache hits);
///   4. verify the Table I single-op identities with the cache DISABLED
///      (insert 2+2m, tag 4+k, search 2, resolve 1, servedFromCache = 0).
///
/// Fully deterministic for a fixed --seed (the determinism digest line is
/// diffable across runs and machines).
///
/// SHAPE CHECK (exit code reflects it): at α = 1.0 the enabled caches cut
/// lookups/search-session by >= 2x, and the cache-off cost identities match
/// the paper exactly.
///
/// Options: --nodes --tags --resources --sessions --steps --seed --smoke.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/searchsim.hpp"
#include "core/client.hpp"
#include "dht/dht_network.hpp"
#include "util/options.hpp"
#include "workload/readwl.hpp"

namespace {

using namespace dharma;

struct Params {
  usize nodes = 48;
  u32 tags = 120;
  u32 resources = 240;
  u64 sessions = 150;
  u32 steps = 4;
  u64 seed = 42;
};

/// Client-cache TTLs long enough that freshness is decided by capacity and
/// workload, not by the replay outrunning the default TTLs; printed with
/// the parameters so the experiment is self-describing.
constexpr net::SimTime kClientTtlUs = 300'000'000;  // 300 s
constexpr usize kDefaultCapacity = 512;

core::DharmaConfig readerConfig(bool cacheOn, usize capacity) {
  core::DharmaConfig cfg;
  cfg.cacheEnabled = cacheOn;
  cfg.cachePolicy.capacity = capacity;
  cfg.cachePolicy.ttlUs.fill(kClientTtlUs);
  return cfg;
}

dht::DhtNetwork makeOverlay(const Params& p, bool pathCacheOn) {
  dht::DhtNetworkConfig cfg;
  cfg.nodes = p.nodes;
  cfg.seed = p.seed;
  cfg.latency = "constant";
  cfg.constantLatencyUs = 20'000;
  cfg.node.cacheEnabled = pathCacheOn;
  // Thin replication + sparse routing tables: with the defaults (kStore=8,
  // k=20) on a small overlay every node knows every replica, lookups are
  // one-hop and the "closest observed non-holder" the path cache
  // replicates to never exists. kStore=3 / k=6 is the regime a large
  // deployment actually operates in — multi-hop lookups that traverse
  // non-holders — which is exactly what STORE_CACHE is designed for.
  cfg.node.kStore = 3;
  cfg.node.k = 6;
  return dht::DhtNetwork(cfg);
}

/// Publishes the corpus: every tag rank owns live t̄/t̂ blocks. Each
/// resource carries three tags chosen so all ranks are covered and tag
/// co-occurrence is dense enough for search steps to retrieve both sets.
std::vector<std::string> populate(dht::DhtNetwork& net, const Params& p) {
  std::vector<std::string> tagNames;
  tagNames.reserve(p.tags);
  for (u32 t = 0; t < p.tags; ++t) {
    tagNames.push_back("tag-" + std::to_string(t));
  }
  core::DharmaClient loader(net, 0, core::DharmaConfig{}, p.seed);
  std::vector<core::ResourceSpec> batch;
  for (u32 i = 0; i < p.resources; ++i) {
    u32 a = i % p.tags;
    u32 b = (i * 7 + 3) % p.tags;
    if (b == a) b = (b + 1) % p.tags;
    u32 c = (i * 13 + 5) % p.tags;
    if (c == a || c == b) c = (c + 1) % p.tags;
    batch.push_back(core::ResourceSpec{
        "res-" + std::to_string(i), "uri://res/" + std::to_string(i),
        {tagNames[a], tagNames[b], tagNames[c]}});
    if (batch.size() == 24 || i + 1 == p.resources) {
      auto out = loader.insertResources(batch);
      if (!out.ok()) {
        std::cerr << "corpus insert failed: " << core::opErrorName(out.error())
                  << "\n";
      }
      batch.clear();
    }
  }
  return tagNames;
}

struct CellResult {
  ana::ReadSimStats stats;
  cache::CacheStats clientCache;
  u64 rpcs = 0;                 ///< overlay datagrams the replay cost
  u64 storeCachePublished = 0;  ///< path-cache copies pushed (whole overlay)
  u64 storeCacheAccepted = 0;
};

struct PathCacheTraffic {
  u64 published = 0;
  u64 accepted = 0;
};

PathCacheTraffic sumPathCache(const dht::DhtNetwork& net) {
  PathCacheTraffic t;
  for (usize i = 0; i < net.size(); ++i) {
    t.published += net.node(i).counters().storeCachePublished;
    t.accepted += net.node(i).counters().storeCacheAccepted;
  }
  return t;
}

CellResult runCell(dht::DhtNetwork& net,
                   const std::vector<std::string>& tagNames,
                   const wl::ReadTrace& trace, bool clientCacheOn,
                   usize capacity, u64 seed) {
  CellResult r;
  core::DharmaClient reader(net, 1, readerConfig(clientCacheOn, capacity),
                            seed);
  // Deltas against the pre-replay state, so corpus-population traffic (the
  // loader's GETs also seed path caches) never pollutes a cell's numbers.
  u64 rpc0 = net.totalRpcsSent();
  PathCacheTraffic before = sumPathCache(net);
  r.stats = ana::runReadTrace(reader, tagNames, trace);
  r.rpcs = net.totalRpcsSent() - rpc0;
  r.clientCache = reader.cacheStats();
  PathCacheTraffic after = sumPathCache(net);
  r.storeCachePublished = after.published - before.published;
  r.storeCacheAccepted = after.accepted - before.accepted;
  return r;
}

/// The Table I identities with every cache disabled: must hold EXACTLY
/// (the cache-off protocol is byte-for-byte the paper's protocol).
bool checkIdentities(dht::DhtNetwork& net, const Params& p,
                     std::string& detail) {
  core::DharmaClient plain(net, 2, core::DharmaConfig{}, p.seed);
  bool ok = true;
  auto expect = [&](const char* what, u64 measured, u64 formula,
                    u64 servedFromCache) {
    if (measured != formula || servedFromCache != 0) {
      ok = false;
      detail += std::string(" ") + what + ":" + std::to_string(measured) +
                "!=" + std::to_string(formula);
    }
  };
  auto ins = plain.insertResource("ident-res", "uri://ident",
                                  {"ident-a", "ident-b", "ident-c"});
  expect("insert(2+2m,m=3)", ins.cost.lookups, 8, ins.cost.servedFromCache);
  auto tag = plain.tagResource("ident-res", "ident-fresh");
  expect("tag(4+k,k=1)", tag.cost.lookups, 5, tag.cost.servedFromCache);
  auto step = plain.searchStep("ident-a");
  expect("search(2)", step.cost.lookups, 2, step.cost.servedFromCache);
  auto uri = plain.resolveUri("ident-res");
  expect("resolve(1)", uri.cost.lookups, 1, uri.cost.servedFromCache);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dharma;
  Options opts(argc, argv);
  Params p;
  if (opts.getBool("smoke", false)) {
    p.nodes = 24;
    p.tags = 48;
    p.resources = 96;
    p.sessions = 50;
  }
  p.nodes = static_cast<usize>(opts.getInt("nodes", static_cast<i64>(p.nodes)));
  p.tags = static_cast<u32>(opts.getInt("tags", p.tags));
  p.resources = static_cast<u32>(opts.getInt("resources", p.resources));
  p.sessions = static_cast<u64>(opts.getInt("sessions",
                                            static_cast<i64>(p.sessions)));
  p.steps = static_cast<u32>(opts.getInt("steps", p.steps));
  p.seed = static_cast<u64>(opts.getInt("seed", 42));
  const std::string jsonPath = opts.getString("json", "");

  std::cout << "### Record-cache hit rate and lookup cost under Zipf reads\n"
            << "# overlay: " << p.nodes << " nodes; corpus: " << p.tags
            << " tags over " << p.resources << " resources; workload: "
            << p.sessions << " sessions x " << p.steps
            << " search steps; client cache: capacity " << kDefaultCapacity
            << ", ttl " << kClientTtlUs / 1'000'000 << "s; seed=" << p.seed
            << "\n"
            << "# 'off' = no caches (the paper's protocol); 'on' = client "
               "read-through cache + overlay path caching (STORE_CACHE)\n";

  // -- α sweep at the default capacity ---------------------------------------
  double headlineOff = 0.0, headlineOn = 0.0;
  u64 digestLookups = 0, digestHits = 0, digestPublished = 0;
  {
    std::vector<std::vector<std::string>> rows;
    for (double alpha : {0.6, 1.0, 1.4}) {
      wl::ZipfReadConfig rcfg;
      rcfg.tagUniverse = p.tags;
      rcfg.sessions = p.sessions;
      rcfg.stepsPerSession = p.steps;
      rcfg.alpha = alpha;
      rcfg.seed = p.seed;
      wl::ReadTrace trace = wl::makeZipfReadTrace(rcfg);

      dht::DhtNetwork offNet = makeOverlay(p, /*pathCacheOn=*/false);
      offNet.bootstrap();
      auto tagNames = populate(offNet, p);
      CellResult off = runCell(offNet, tagNames, trace,
                               /*clientCacheOn=*/false, 0, p.seed);

      dht::DhtNetwork onNet = makeOverlay(p, /*pathCacheOn=*/true);
      onNet.bootstrap();
      tagNames = populate(onNet, p);
      CellResult on = runCell(onNet, tagNames, trace, /*clientCacheOn=*/true,
                              kDefaultCapacity, p.seed);

      if (alpha == 1.0) {
        headlineOff = off.stats.lookupsPerSession();
        headlineOn = on.stats.lookupsPerSession();
      }
      digestLookups += off.stats.cost.lookups + on.stats.cost.lookups;
      digestHits += on.clientCache.hits;
      digestPublished += on.storeCachePublished;

      double reduction =
          on.stats.cost.lookups
              ? static_cast<double>(off.stats.cost.lookups) /
                    static_cast<double>(on.stats.cost.lookups)
              : 0.0;
      rows.push_back({ana::cellDouble(alpha, 1),
                      ana::cellInt(wl::distinctTags(trace)),
                      ana::cellDouble(off.stats.lookupsPerSession(), 2),
                      ana::cellDouble(on.stats.lookupsPerSession(), 2),
                      ana::cellDouble(reduction, 2) + "x",
                      ana::cellPercent(on.clientCache.hitRate()),
                      ana::cellInt(on.stats.cost.servedFromCache),
                      ana::cellInt(on.storeCachePublished) + "/" +
                          ana::cellInt(on.storeCacheAccepted),
                      ana::cellInt(off.rpcs), ana::cellInt(on.rpcs)});
    }
    ana::printTable(
        std::cout,
        "lookups per search-session vs Zipf exponent (cache off vs on)",
        {"alpha", "distinct tags", "lookups/sess (off)", "lookups/sess (on)",
         "reduction", "client hit-rate", "served-from-cache",
         "STORE_CACHE pub/acc", "RPCs (off)", "RPCs (on)"},
        rows);
  }

  // -- capacity sweep at α = 1.0 (client cache only; LRU pressure) -----------
  {
    wl::ZipfReadConfig rcfg;
    rcfg.tagUniverse = p.tags;
    rcfg.sessions = p.sessions;
    rcfg.stepsPerSession = p.steps;
    rcfg.alpha = 1.0;
    rcfg.seed = p.seed;
    wl::ReadTrace trace = wl::makeZipfReadTrace(rcfg);

    dht::DhtNetwork net = makeOverlay(p, /*pathCacheOn=*/false);
    net.bootstrap();
    auto tagNames = populate(net, p);

    std::vector<std::vector<std::string>> rows;
    for (usize cap : {8u, 32u, 128u, 512u}) {
      CellResult r = runCell(net, tagNames, trace, /*clientCacheOn=*/true,
                             cap, p.seed);
      rows.push_back({ana::cellInt(cap),
                      ana::cellPercent(r.clientCache.hitRate()),
                      ana::cellDouble(r.stats.lookupsPerSession(), 2),
                      ana::cellInt(r.clientCache.evictions),
                      ana::cellInt(r.clientCache.expirations)});
      digestLookups += r.stats.cost.lookups;
      digestHits += r.clientCache.hits;
    }
    ana::printTable(std::cout,
                    "client cache capacity sweep at alpha=1.0 (LRU pressure)",
                    {"capacity", "hit-rate", "lookups/session", "evictions",
                     "expirations"},
                    rows);
  }

  // -- Table I identities with every cache disabled --------------------------
  std::string identDetail;
  bool identitiesHold;
  {
    dht::DhtNetwork net = makeOverlay(p, /*pathCacheOn=*/false);
    net.bootstrap();
    identitiesHold = checkIdentities(net, p, identDetail);
  }

  std::cout << "# determinism digest: lookups=" << digestLookups
            << " clientHits=" << digestHits
            << " storeCachePublished=" << digestPublished << "\n";

  double reduction = headlineOn > 0.0 ? headlineOff / headlineOn : 0.0;
  bool reductionOk = reduction >= 2.0;
  std::cout << "\nSHAPE CHECK: caches cut lookups/search-session >= 2x at "
               "alpha=1.0 ("
            << ana::cellDouble(headlineOff, 2) << " -> "
            << ana::cellDouble(headlineOn, 2) << ", "
            << ana::cellDouble(reduction, 2)
            << "x): " << (reductionOk ? "PASS" : "FAIL")
            << "; Table I identities exact with cache disabled: "
            << (identitiesHold ? "PASS" : std::string("FAIL") + identDetail)
            << " => " << (reductionOk && identitiesHold ? "PASS" : "FAIL")
            << "\n";

  if (!jsonPath.empty()) {
    // Deterministic per config: the checked-in baseline in bench/baselines/
    // must reproduce byte-for-byte on the same config.
    std::ofstream js(jsonPath);
    js << "{\n"
       << "  \"bench\": \"bench_cache_hitrate\",\n"
       << "  \"config\": {\"nodes\": " << p.nodes << ", \"tags\": "
       << p.tags << ", \"resources\": " << p.resources
       << ", \"sessions\": " << p.sessions << ", \"steps\": " << p.steps
       << ", \"seed\": " << p.seed << "},\n"
       << "  \"headline\": {\"lookups_per_session_off\": " << headlineOff
       << ", \"lookups_per_session_on\": " << headlineOn
       << ", \"reduction\": " << reduction << "},\n"
       << "  \"digest\": {\"lookups\": " << digestLookups
       << ", \"client_hits\": " << digestHits
       << ", \"store_cache_published\": " << digestPublished << "},\n"
       << "  \"checks\": {\"reduction_ok\": "
       << (reductionOk ? "true" : "false") << ", \"identities_hold\": "
       << (identitiesHold ? "true" : "false") << "}\n"
       << "}\n";
    if (!js) {
      std::cerr << "failed to write " << jsonPath << "\n";
      return 1;
    }
    std::cout << "# json written to " << jsonPath << "\n";
  }
  return reductionOk && identitiesHold ? 0 : 1;
}
