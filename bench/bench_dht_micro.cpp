/// Micro-benchmarks (google-benchmark) for the substrate layers: overlay
/// lookup/PUT/GET cost vs network size, FG derivation throughput, and the
/// Kendall-tau kernel. These are not paper experiments; they characterise
/// the simulator so the experiment benches' runtimes are explainable.

#include <benchmark/benchmark.h>

#include "analysis/rank.hpp"
#include "core/client.hpp"
#include "folksonomy/derive.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace dharma;

std::unique_ptr<dht::DhtNetwork> makeOverlay(usize nodes) {
  dht::DhtNetworkConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = 42;
  cfg.latency = "constant";
  cfg.constantLatencyUs = 1000;
  auto net = std::make_unique<dht::DhtNetwork>(cfg);
  net->bootstrap();
  return net;
}

void BM_DhtPut(benchmark::State& state) {
  auto net = makeOverlay(static_cast<usize>(state.range(0)));
  u64 i = 0;
  u64 rpcsBefore = net->totalRpcsSent();
  for (auto _ : state) {
    dht::NodeId key = dht::NodeId::fromString("put-" + std::to_string(i++));
    benchmark::DoNotOptimize(net->putBlocking(
        i % net->size(), key,
        dht::StoreToken{dht::TokenKind::kIncrement, "e", 1, {}}));
  }
  state.counters["rpcs/op"] =
      static_cast<double>(net->totalRpcsSent() - rpcsBefore) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_DhtPut)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_DhtGet(benchmark::State& state) {
  auto net = makeOverlay(static_cast<usize>(state.range(0)));
  dht::NodeId key = dht::NodeId::fromString("hot");
  net->putBlocking(0, key, dht::StoreToken{dht::TokenKind::kIncrement, "e", 1, {}});
  u64 i = 0;
  u64 rpcsBefore = net->totalRpcsSent();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->getBlocking(++i % net->size(), key));
  }
  state.counters["rpcs/op"] =
      static_cast<double>(net->totalRpcsSent() - rpcsBefore) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_DhtGet)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_DhtBootstrap(benchmark::State& state) {
  for (auto _ : state) {
    auto net = makeOverlay(static_cast<usize>(state.range(0)));
    benchmark::DoNotOptimize(net->totalRpcsSent());
  }
}
BENCHMARK(BM_DhtBootstrap)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_TagOperation(benchmark::State& state) {
  auto net = makeOverlay(32);
  core::DharmaConfig cfg;
  cfg.k = static_cast<u32>(state.range(0));
  core::DharmaClient client(*net, 0, cfg);
  std::vector<std::string> tags;
  for (int i = 0; i < 20; ++i) tags.push_back("t" + std::to_string(i));
  client.insertResource("res", "uri://r", tags);
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.tagResource("res", "fresh-" + std::to_string(i++)));
  }
  state.counters["lookups/op"] =
      static_cast<double>(client.totalCost().lookups) /
      static_cast<double>(state.iterations() + 1);
}
BENCHMARK(BM_TagOperation)->Arg(1)->Arg(5)->Arg(10)->Unit(benchmark::kMicrosecond);

void BM_FgDerive(benchmark::State& state) {
  wl::SynthConfig cfg;
  cfg.numTags = 2000;
  cfg.numResources = static_cast<u32>(state.range(0));
  cfg.targetAnnotations = static_cast<u64>(state.range(0)) * 8;
  cfg.seed = 7;
  folk::Trg trg = wl::generate(cfg, nullptr);
  for (auto _ : state) {
    folk::CsrFg fg = folk::deriveExactFg(trg);
    benchmark::DoNotOptimize(fg.numArcs());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(trg.numAnnotations()));
}
BENCHMARK(BM_FgDerive)->Arg(2000)->Arg(10000)->Arg(40000)->Unit(benchmark::kMillisecond);

void BM_ApproxReplay(benchmark::State& state) {
  wl::SynthConfig cfg;
  cfg.numTags = 2000;
  cfg.numResources = 10000;
  cfg.targetAnnotations = 80000;
  cfg.seed = 7;
  folk::Trg trg = wl::generate(cfg, nullptr);
  wl::Trace trace = wl::buildPaperOrderTrace(trg, 8);
  for (auto _ : state) {
    auto model = wl::replayApproximated(
        trace, folk::approxMode(static_cast<u32>(state.range(0))), 9);
    benchmark::DoNotOptimize(model.fg().arcCount());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(trace.size()));
}
BENCHMARK(BM_ApproxReplay)->Arg(1)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_KendallTau(benchmark::State& state) {
  Rng rng(3);
  usize n = static_cast<usize>(state.range(0));
  std::vector<double> x(n), y(n);
  for (usize i = 0; i < n; ++i) {
    x[i] = static_cast<double>(rng.uniform(1000));
    y[i] = static_cast<double>(rng.uniform(1000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ana::kendallTauB(x, y));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_KendallTau)->Arg(100)->Arg(10000)->Arg(1000000)->Unit(benchmark::kMicrosecond);

void BM_Sha1(benchmark::State& state) {
  std::string data(static_cast<usize>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha1(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(4096)->Arg(1 << 20);

// ---------------------------------------------------------------------------
// Simulator hot path. Every simulated RPC costs ~3 events (send, deliver,
// timeout) and nearly every timeout is cancelled, so schedule+cancel IS the
// experiment benches' inner loop. The slot-vector + generation store that
// replaced the std::map<EventId, std::function> callback map made cancel
// O(1) and schedule allocation-free (beyond the std::function). Measured
// on the dev container (gcc, -O2), ns/op old map -> new slots:
//   ScheduleCancel  depth 16:  61 -> 40   depth 1024:  85 -> 41
//                   depth 65536: 248 -> 41   (flat: depth-independent)
//   ScheduleRun     batch 256:  72 -> 35   batch 4096: 187 -> 92
// The (time, seq) ready-queue order is untouched, so every seeded digest
// stays bit-identical.
// ---------------------------------------------------------------------------

void BM_SimScheduleCancel(benchmark::State& state) {
  // The RPC-timeout pattern: schedule a far-out event, cancel it almost
  // always (replies beat timeouts). `depth` pending events model an
  // overlay's standing timer population.
  net::Simulator sim;
  usize depth = static_cast<usize>(state.range(0));
  std::vector<net::TaskId> standing;
  for (usize i = 0; i < depth; ++i) {
    standing.push_back(sim.schedule(1'000'000'000, [] {}));
  }
  for (auto _ : state) {
    net::TaskId id = sim.schedule(1'000'000, [] {});
    benchmark::DoNotOptimize(sim.cancel(id));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_SimScheduleCancel)->Arg(16)->Arg(1024)->Arg(65536);

void BM_SimScheduleRun(benchmark::State& state) {
  // Schedule-then-fire throughput (maintenance ticks, deliveries).
  net::Simulator sim;
  const usize batch = static_cast<usize>(state.range(0));
  for (auto _ : state) {
    for (usize i = 0; i < batch; ++i) {
      sim.schedule(static_cast<net::TimeUs>(i % 64), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(batch));
}
BENCHMARK(BM_SimScheduleRun)->Arg(256)->Arg(4096)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
