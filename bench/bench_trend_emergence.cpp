/// Implements the paper's announced FUTURE WORK (Section VI): "we are
/// planning to study if our approximated model hampers the emergence of new
/// tagging trends; forthcoming tests will address the dynamics of different
/// tag-resource patterns".
///
/// Protocol of the experiment:
///   1. replay the first `warmupShare` of the annotation trace through an
///      exact model and approximated models (k ∈ {1, 5, 10});
///   2. inject a trend: a brand-new tag bursts onto `burstResources` popular
///      resources (one annotation each — a meme spreading);
///   3. replay the rest of the trace (background noise keeps evolving);
///   4. measure the trend tag's *visibility*: its FG degree, total arc
///      weight, and — the user-facing quantity — for how many of its
///      co-tags the trend appears inside the top-`displayCap` similarity
///      ranking (i.e. would be shown during faceted search).
///
/// Outcome of interest: does the k-capped reverse-update budget
/// (Approximation A) slow a new tag's rise into the displays?

#include <algorithm>
#include <iostream>

#include "common.hpp"

namespace {

using namespace dharma;

/// Visibility of `trendTag` from its co-tags' displays.
struct Visibility {
  u32 fgOutDegree = 0;
  u64 fgOutWeight = 0;
  u32 coTagsConsidered = 0;
  u32 displayedIn = 0;  ///< co-tags whose top-N ranking includes the trend

  double displayShare() const {
    return coTagsConsidered
               ? static_cast<double>(displayedIn) / coTagsConsidered
               : 0.0;
  }
};

Visibility measure(const folk::FolksonomyModel& model, u32 trendTag,
                   u32 displayCap) {
  Visibility v;
  folk::CsrFg fg = model.freezeFg();
  auto row = fg.neighbors(trendTag);
  v.fgOutDegree = static_cast<u32>(row.size());
  for (const auto& nb : row) v.fgOutWeight += nb.weight;

  // For each co-tag τ (arc trend->τ), find whether sim(τ, trend) ranks
  // within τ's top displayCap outgoing arcs.
  for (const auto& nb : row) {
    u32 tau = nb.tag;
    u64 wToTrend = fg.weightOf(tau, trendTag);
    auto tauRow = fg.neighbors(tau);
    if (tauRow.empty()) continue;
    ++v.coTagsConsidered;
    if (wToTrend == 0) continue;
    u32 heavier = 0;
    for (const auto& e : tauRow) {
      if (e.weight > wToTrend) ++heavier;
    }
    if (heavier < displayCap) ++v.displayedIn;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dharma;
  auto env = bench::BenchEnv::parse(argc, argv, /*defaultScale=*/0.02);
  double warmupShare = env.opts.getDouble("warmup", 0.8);
  u32 burstResources = static_cast<u32>(env.opts.getInt("burst", 200));
  u32 displayCap = static_cast<u32>(env.opts.getInt("display", 100));
  bench::banner("Trend emergence under approximated maintenance "
                "(paper Section VI future work)",
                env);

  folk::Trg trg = bench::buildTrg(env);
  wl::Trace trace = wl::buildPaperOrderTrace(trg, env.seed + 1);
  const usize warmupLen =
      static_cast<usize>(warmupShare * static_cast<double>(trace.size()));

  // The trend tag is a brand-new id; it bursts onto the most popular
  // resources (memes attach to hot content).
  const u32 trendTag = trg.tagSpan();
  std::vector<u32> hot;
  for (u32 r = 0; r < trg.resourceSpan(); ++r) hot.push_back(r);
  std::sort(hot.begin(), hot.end(), [&](u32 a, u32 b) {
    return trg.resourceDegree(a) > trg.resourceDegree(b);
  });
  hot.resize(std::min<usize>(burstResources, hot.size()));

  struct ModeResult {
    std::string name;
    Visibility atBurst;
    Visibility atEnd;
    u64 lookupBudget = 0;  ///< reverse updates spent on the trend burst
  };
  std::vector<ModeResult> results;

  for (auto [name, cfg] : std::initializer_list<
           std::pair<const char*, folk::MaintenanceConfig>>{
           {"exact", folk::exactMode()},
           {"approx k=1", folk::approxMode(1)},
           {"approx k=5", folk::approxMode(5)},
           {"approx k=10", folk::approxMode(10)},
       }) {
    folk::FolksonomyModel model(cfg, env.seed + 2);
    for (usize i = 0; i < warmupLen; ++i) {
      model.tagResource(trace[i].res, trace[i].tag);
    }
    u64 reverseBefore = model.counters().reverseArcUpdates;
    for (u32 r : hot) model.tagResource(r, trendTag);
    ModeResult res;
    res.name = name;
    res.lookupBudget = model.counters().reverseArcUpdates - reverseBefore;
    res.atBurst = measure(model, trendTag, displayCap);
    for (usize i = warmupLen; i < trace.size(); ++i) {
      model.tagResource(trace[i].res, trace[i].tag);
    }
    res.atEnd = measure(model, trendTag, displayCap);
    results.push_back(std::move(res));
  }

  std::vector<std::vector<std::string>> rows;
  for (const auto& r : results) {
    rows.push_back({r.name, ana::cellInt(r.atBurst.fgOutDegree),
                    ana::cellInt(r.atBurst.fgOutWeight),
                    ana::cellPercent(r.atBurst.displayShare()),
                    ana::cellPercent(r.atEnd.displayShare()),
                    ana::cellInt(r.lookupBudget)});
  }
  ana::printTable(
      std::cout,
      "trend tag visibility (burst onto " + std::to_string(hot.size()) +
          " hot resources at " + ana::cellDouble(warmupShare * 100, 0) +
          "% of the trace)",
      {"maintenance", "FG out-degree", "FG out-weight",
       "in top-" + std::to_string(displayCap) + " displays (at burst)",
       "... (end of trace)", "reverse-update lookups spent"},
      rows);

  // Findings this experiment checks:
  //  (1) the trend's OWN neighbourhood (outgoing arcs, created by the
  //      unsampled forward updates) is identical in every mode — once a
  //      user reaches the trend tag, navigation from it is unimpaired;
  //  (2) INBOUND visibility (the trend appearing in co-tags' similarity
  //      displays — how browsing users *discover* it) is throttled by
  //      Approximation A and grows with k, maximal for the exact model;
  //  (3) the lookup budget spent on the burst scales with k.
  // Compared AT BURST TIME: the burst's forward updates create the full
  // outgoing neighbourhood in every mode. (By end-of-trace the exact model
  // additionally accretes out-arcs through reverse updates at later
  // annotations of the burst resources — a k-dependent bonus, not part of
  // the completeness claim.)
  bool outDegreeEqual = true;
  for (const auto& r : results) {
    if (r.atBurst.fgOutDegree != results[0].atBurst.fgOutDegree) {
      outDegreeEqual = false;
    }
  }
  bool inboundOrdered =
      results[1].atEnd.displayShare() <= results[2].atEnd.displayShare() &&
      results[2].atEnd.displayShare() <= results[3].atEnd.displayShare() &&
      results[3].atEnd.displayShare() <= results[0].atEnd.displayShare();
  bool budgetOrdered =
      results[1].lookupBudget <= results[2].lookupBudget &&
      results[2].lookupBudget <= results[3].lookupBudget &&
      results[3].lookupBudget <= results[0].lookupBudget;
  std::cout << "\nSHAPE CHECK: trend's own neighbourhood complete in every "
               "mode: "
            << (outDegreeEqual ? "PASS" : "FAIL")
            << "; inbound display visibility grows with k (exact maximal): "
            << (inboundOrdered ? "PASS" : "FAIL")
            << "; lookup budget ordered by k: " << (budgetOrdered ? "PASS" : "FAIL")
            << "\n";
  std::cout
      << "CONCLUSION (the paper's Section VI open question): Approximation A "
         "DOES slow a new trend's penetration into other tags' similarity "
         "displays — inbound arcs are sampled at k/|Tags(r)| and hot "
         "resources have large |Tags(r)| — while the trend's own outgoing "
         "neighbourhood (forward updates, unsampled) stays complete. "
         "Discoverability-sensitive deployments should raise k or boost "
         "young tags' reverse updates.\n";
  return outDegreeEqual && inboundOrdered && budgetOrdered ? 0 : 1;
}
