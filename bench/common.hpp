#pragma once
/// \file common.hpp
/// \brief Shared scaffolding for the experiment-reproduction benches.
///
/// Every bench accepts:
///   --scale   fraction of the paper's Last.fm crawl to synthesise
///             (default 0.05; 1.0 = the full 285k tags / 1.41M resources /
///              11M annotations)
///   --seed    master seed (default 42)
///   --threads worker threads for the analysis passes (default: hardware)
/// and prints the paper's reference numbers next to the measured ones.

#include <iostream>
#include <string>

#include "analysis/report.hpp"
#include "folksonomy/derive.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/thread_pool.hpp"
#include "workload/dataset.hpp"
#include "workload/trace.hpp"

namespace dharma::bench {

/// Parsed common options + the synthetic dataset they imply.
struct BenchEnv {
  Options opts;
  double scale = 0.05;
  u64 seed = 42;
  usize threads = 0;

  static BenchEnv parse(int argc, char** argv, double defaultScale = 0.05) {
    BenchEnv env;
    env.opts = Options(argc, argv);
    env.scale = env.opts.getDouble("scale", defaultScale);
    env.seed = static_cast<u64>(env.opts.getInt("seed", 42));
    env.threads = static_cast<usize>(env.opts.getInt("threads", 0));
    if (env.opts.getBool("verbose", false)) {
      setLogLevel(LogLevel::kInfo);
    }
    return env;
  }

  wl::SynthConfig synthConfig() const {
    return wl::SynthConfig::lastfmScaled(scale, seed);
  }
};

/// Prints the standard bench banner.
inline void banner(const std::string& what, const BenchEnv& env) {
  std::cout << "### " << what << "\n"
            << "# dataset: synthetic Last.fm, scale=" << env.scale
            << " (paper crawl = 1.0), seed=" << env.seed << "\n"
            << "# note: absolute values depend on the synthetic instance; the\n"
            << "#       paper-vs-measured SHAPE is the reproduction target.\n";
}

/// Builds (and logs) the synthetic TRG.
inline folk::Trg buildTrg(const BenchEnv& env, wl::SynthStats* stats = nullptr) {
  wl::SynthStats local;
  folk::Trg trg = wl::generate(env.synthConfig(), &local);
  if (stats != nullptr) *stats = local;
  std::cout << "# instance: " << local.usedTags << " tags, "
            << local.usedResources << " resources, " << local.edges
            << " edges, " << local.annotations << " annotations\n";
  return trg;
}

}  // namespace dharma::bench
