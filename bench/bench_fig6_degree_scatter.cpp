/// Reproduces Figure 6: node out-degree in the original (exact) FG vs the
/// simulated (approximated) FG, for k = 1 and k = 100.
///
/// Paper claim: "even with k = 1, the points on the degree plot are aligned
/// on a line whose slope is close to the diagonal; [...] the variation of k
/// does not significantly affect the nodal degree."
///
/// The textual reduction prints, per k: the regression slope through the
/// origin, the Pearson correlation, and log-binned mean degrees.

#include <iostream>

#include "analysis/scatter.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dharma;
  auto env = bench::BenchEnv::parse(argc, argv);
  bench::banner("Figure 6 — original vs simulated FG nodal out-degree", env);

  folk::Trg trg = bench::buildTrg(env);
  ThreadPool pool(env.threads);
  folk::CsrFg exact = folk::deriveExactFg(trg, &pool);
  wl::Trace trace = wl::buildPaperOrderTrace(trg, env.seed + 1);

  std::vector<u32> ks{1, 100};
  if (env.opts.has("k")) ks = {static_cast<u32>(env.opts.getInt("k", 1))};

  bool slopesOk = true;
  bool linear = true;
  std::vector<double> slopes;
  for (u32 k : ks) {
    folk::CsrFg approx =
        wl::replayApproximated(trace, folk::approxMode(k), env.seed + 2)
            .freezeFg(trg.tagSpan());
    ana::ScatterAccumulator acc(exact.numTags(), 12);
    for (u32 t = 0; t < trg.tagSpan(); ++t) {
      u32 ed = exact.outDegree(t);
      if (ed == 0) continue;
      acc.add(ed, approx.outDegree(t));
    }
    ana::ScatterSummary s = acc.summarize();
    slopes.push_back(s.slopeThroughOrigin);
    std::cout << "\n-- k = " << k << ": n = " << s.n
              << " tags, slope-through-origin = "
              << ana::cellDouble(s.slopeThroughOrigin, 4)
              << " (paper: close to 1), pearson = "
              << ana::cellDouble(s.pearson, 4) << " --\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& b : s.bins) {
      rows.push_back({ana::cellDouble(b.xLo, 1) + ".." + ana::cellDouble(b.xHi, 1),
                      ana::cellInt(b.count), ana::cellDouble(b.meanX, 1),
                      ana::cellDouble(b.meanY, 1),
                      ana::cellDouble(b.meanRatio, 3)});
    }
    ana::printTable(std::cout, "log-binned degrees (k=" + std::to_string(k) + ")",
                    {"exact-degree bin", "tags", "mean exact", "mean approx",
                     "mean approx/exact"},
                    rows);
    // "Aligned on a line": strong linearity, slope in a diagonal-ish band.
    // Our synthetic instance keeps the paper's recall (~0.61 at k=1) but
    // its arcs are more single-event than the crawl's, so core rows lose a
    // larger share and the slope sits at ~0.65-0.85 rather than ~1 — see
    // docs/EXPERIMENTS.md for the deviation note.
    if (s.slopeThroughOrigin < 0.55 || s.slopeThroughOrigin > 1.05) {
      slopesOk = false;
    }
    if (s.pearson < 0.9) linear = false;
  }

  // Weak k-sensitivity: the slope may drift with k on this instance, but
  // must stay within the diagonal band (the paper found near-insensitivity).
  bool insensitive =
      slopes.size() < 2 || std::abs(slopes[0] - slopes[1]) < 0.25;
  std::cout << "\nSHAPE CHECK: points lie on a line (pearson > 0.9): "
            << (linear ? "PASS" : "FAIL")
            << "; slope within the diagonal band for every k: "
            << (slopesOk ? "PASS" : "FAIL")
            << "; slope only weakly k-dependent: "
            << (insensitive ? "PASS" : "FAIL") << "\n";
  return linear && slopesOk && insensitive ? 0 : 1;
}
