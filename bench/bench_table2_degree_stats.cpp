/// Reproduces Table II: degree statistics (mean, std-dev, max) of the three
/// distributions |Tags(r)|, |Res(t)|, |N_FG(t)| on the (synthetic) Last.fm
/// dataset, plus the core-periphery shares quoted in Section V-A (~40 % of
/// resources carry one tag; ~55 % of tags mark one resource).
///
/// Paper reference (full crawl):
///           Tags(r)  Res(t)  N_FG(t)
///   mu      5        26      316
///   sigma   13       525     1569
///   max     1182     109717  120568
///
/// Absolute values scale with the instance; the reproduction target is the
/// SHAPE: heavy right tails (sigma >> mu), a dominant max, and the two
/// degree-1 shares.

#include <iostream>

#include "analysis/degree.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dharma;
  auto env = bench::BenchEnv::parse(argc, argv);
  bench::banner("Table II — Last.fm graph degree statistics", env);

  folk::Trg trg = bench::buildTrg(env);
  ThreadPool pool(env.threads);
  folk::CsrFg fg = folk::deriveExactFg(trg, &pool);
  ana::DegreeReport rep = ana::degreeReport(trg, fg);

  ana::printTable(
      std::cout, "paper (scale 1.0) vs measured (scale " +
                     ana::cellDouble(env.scale, 3) + ")",
      {"degree", "paper mu", "mu", "paper sigma", "sigma", "paper max", "max"},
      {
          {"Tags(r)", "5", ana::cellDouble(rep.tagsPerResource.mean(), 1), "13",
           ana::cellDouble(rep.tagsPerResource.stddev(), 1), "1182",
           ana::cellInt(static_cast<u64>(rep.tagsPerResource.max()))},
          {"Res(t)", "26", ana::cellDouble(rep.resPerTag.mean(), 1), "525",
           ana::cellDouble(rep.resPerTag.stddev(), 1), "109717",
           ana::cellInt(static_cast<u64>(rep.resPerTag.max()))},
          {"NFG(t)", "316", ana::cellDouble(rep.fgOutDegree.mean(), 1), "1569",
           ana::cellDouble(rep.fgOutDegree.stddev(), 1), "120568",
           ana::cellInt(static_cast<u64>(rep.fgOutDegree.max()))},
      });

  ana::printTable(
      std::cout, "core-periphery shares (Section V-A)",
      {"quantity", "paper", "measured"},
      {
          {"resources with exactly 1 tag", "~40%",
           ana::cellPercent(rep.fracResourcesDeg1)},
          {"tags marking exactly 1 resource", "~55%",
           ana::cellPercent(rep.fracTagsDeg1)},
      });

  // Shape checks the harness itself asserts.
  bool heavyTails = rep.tagsPerResource.stddev() > rep.tagsPerResource.mean() &&
                    rep.resPerTag.stddev() > rep.resPerTag.mean() &&
                    rep.fgOutDegree.stddev() > rep.fgOutDegree.mean();
  std::cout << "\nSHAPE CHECK: heavy tails (sigma > mu in all three columns): "
            << (heavyTails ? "PASS" : "FAIL") << "\n";
  std::cout << "# FG: " << fg.numArcs() << " directed arcs, total weight "
            << fg.totalWeight() << "\n";
  return heavyTails ? 0 : 1;
}
