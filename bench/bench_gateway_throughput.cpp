/// \file bench_gateway_throughput.cpp
/// \brief Wall-clock throughput of the full HTTP path: gateway in, overlay
/// ops out, response back — the number an operator sizing a gateway box
/// actually needs.
///
/// Boots a live loopback overlay (KademliaNodes on one UdpTransport under
/// a RealTimeExecutor) behind an in-process GatewayServer, preloads a
/// folksonomy, then measures two regimes over real TCP sockets:
///
///   1. Keep-alive: W client threads, one persistent connection each,
///      driving a mixed GET /search + GET /resolve + POST /tags workload.
///      Reports req/sec and per-route p50/p99/max latency — every request
///      crosses HTTP parse -> worker dispatch -> engine loop -> overlay
///      UDP -> response serialize, so this is the end-to-end ceiling.
///   2. Connection churn: each worker opens a fresh connection per
///      request (connect + GET /resolve + close). Reports conn/sec — the
///      acceptor + per-connection setup cost on top of regime 1.
///
///   $ ./bench_gateway_throughput                  # 4 nodes, 4 clients
///   $ ./bench_gateway_throughput --clients 8 --ops 2000
///   $ ./bench_gateway_throughput --smoke          # CI-sized
///   $ ./bench_gateway_throughput --json out.json  # machine-readable dump
///
/// bench/baselines/BENCH_gateway_throughput.json keeps a checked-in
/// snapshot so regressions diff as data. Wall-clock measurement: numbers
/// vary run to run; the baseline anchors shape, not exact figures.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/client.hpp"
#include "core/runtime.hpp"
#include "gateway/http_client.hpp"
#include "gateway/server.hpp"
#include "net/realtime.hpp"
#include "net/udp_transport.hpp"
#include "obs/registry.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

using namespace dharma;
using Clock = std::chrono::steady_clock;

namespace {

double usSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

struct LatencyTrack {
  std::vector<double> samples;
  void add(double us) { samples.push_back(us); }
  void merge(const LatencyTrack& o) {
    samples.insert(samples.end(), o.samples.begin(), o.samples.end());
  }
  double percentile(double p) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    usize idx = static_cast<usize>(p * static_cast<double>(samples.size() - 1));
    return samples[idx];
  }
};

struct WorkerResult {
  LatencyTrack search, resolve, tag, connCycle;
  u64 failures = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const bool smoke = opts.getBool("smoke", false);
  const usize nNodes = static_cast<usize>(opts.getInt("nodes", smoke ? 3 : 4));
  const usize nClients =
      static_cast<usize>(opts.getInt("clients", smoke ? 2 : 4));
  const usize gwWorkers =
      static_cast<usize>(opts.getInt("gw-workers", smoke ? 2 : 4));
  const usize opsPerClient =
      static_cast<usize>(opts.getInt("ops", smoke ? 120 : 1000));
  const usize connsPerClient =
      static_cast<usize>(opts.getInt("conns", smoke ? 30 : 200));
  const usize nResources =
      static_cast<usize>(opts.getInt("resources", smoke ? 16 : 64));
  const u64 seed = static_cast<u64>(opts.getInt("seed", 42));
  const std::string jsonPath = opts.getString("json", "");
  // Full obs instrumentation is ON by default so a baseline diff measures
  // its overhead (the <=5%% acceptance gate); --obs false isolates it.
  const bool obsOn = opts.getBool("obs", true);

  std::cout << "### Gateway HTTP throughput (loopback TCP -> overlay UDP)\n"
            << "# nodes=" << nNodes << " clients=" << nClients
            << " gw-workers=" << gwWorkers << " ops/client=" << opsPerClient
            << " conns/client=" << connsPerClient
            << " obs=" << (obsOn ? "on" : "off")
            << "\n# wall-clock measurement: numbers vary run to run (no "
               "digest)\n";

  // ---- overlay + gateway boot --------------------------------------------
  obs::MetricsRegistry registry;  // before the transport: it holds a pointer
  net::RealTimeExecutor exec;
  exec.start();
  net::UdpTransport transport(
      exec, net::UdpTransport::Config{"127.0.0.1", 1400,
                                      obsOn ? &registry : nullptr});
  crypto::CertificationService cs("bench-gateway-secret");
  core::RealTimeRuntime rt(exec, transport);

  dht::NodeConfig nodeCfg;
  if (obsOn) nodeCfg.metrics = &registry;
  std::vector<std::unique_ptr<dht::KademliaNode>> nodes;
  for (usize i = 0; i < nNodes; ++i) {
    nodes.push_back(std::make_unique<dht::KademliaNode>(
        exec, transport, cs, cs.enroll("bench-gw-" + std::to_string(i)),
        nodeCfg, seed + i));
  }
  Clock::time_point bootStart = Clock::now();
  for (usize i = 1; i < nNodes; ++i) {
    dht::Contact seedContact = nodes[0]->contact();
    rt.awaitDone([&](std::function<void()> done) {
      nodes[i]->join(seedContact, std::move(done));
    });
  }

  core::DharmaConfig ccfg;
  ccfg.cacheEnabled = true;
  if (obsOn) ccfg.metrics = &registry;
  core::DharmaClient client(rt, *nodes[0], ccfg, seed);

  gateway::GatewayConfig gwCfg;
  gwCfg.port = 0;  // ephemeral
  gwCfg.workers = gwWorkers;
  gateway::GatewayServer::Deps deps;
  deps.client = &client;
  if (obsOn) deps.metrics = &registry;
  gateway::GatewayServer server(gwCfg, deps);
  if (server.start() != gateway::StartError::kNone) {
    std::cerr << "gateway start failed: " << server.startDetail() << "\n";
    return 1;
  }
  std::printf("# bootstrap: %.1f ms, gateway on 127.0.0.1:%u\n",
              usSince(bootStart) / 1000.0, server.port());

  // ---- preload folksonomy -------------------------------------------------
  const std::vector<std::string> tagPool = {
      "rock", "jazz", "metal", "electronic", "classic",
      "blues", "folk", "ambient", "punk", "soul"};
  {
    Rng rng(seed);
    for (usize r = 0; r < nResources; ++r) {
      std::vector<std::string> tags;
      usize m = 2 + static_cast<usize>(rng.uniform(3));
      for (usize j = 0; j < m; ++j) {
        tags.push_back(tagPool[static_cast<usize>(rng.uniform(tagPool.size()))]);
      }
      auto out = client.insertResource("res-" + std::to_string(r),
                                       "uri://res-" + std::to_string(r), tags);
      if (!out.ok()) {
        std::cerr << "preload insert failed\n";
        return 1;
      }
    }
  }

  const u16 port = server.port();

  // ---- regime 1: keep-alive request throughput ---------------------------
  std::vector<WorkerResult> results(nClients);
  std::vector<std::thread> clients;
  Clock::time_point runStart = Clock::now();
  for (usize w = 0; w < nClients; ++w) {
    clients.emplace_back([&, w] {
      WorkerResult& res = results[w];
      gateway::HttpClient http;
      if (!http.connect("127.0.0.1", port, 10'000)) {
        res.failures += opsPerClient;
        return;
      }
      Rng rng(seed * 31 + w);
      for (usize op = 0; op < opsPerClient; ++op) {
        u64 dice = rng.uniform(100);
        Clock::time_point t0 = Clock::now();
        if (dice < 60) {  // search step over HTTP: 2 lookups behind it
          const std::string& tag =
              tagPool[static_cast<usize>(rng.uniform(tagPool.size()))];
          auto r = http.request("GET", "/search?tag=" + tag);
          res.search.add(usSince(t0));
          res.failures += (r && r->status == 200) ? 0 : 1;
        } else if (dice < 85) {  // resolve: 1 lookup behind it
          std::string res1 = "res-" + std::to_string(rng.uniform(nResources));
          auto r = http.request("GET", "/resolve/" + res1);
          res.resolve.add(usSince(t0));
          res.failures += (r && (r->status == 200 || r->status == 404)) ? 0 : 1;
        } else {  // tag write: 4 + k lookups behind it
          std::string res1 = "res-" + std::to_string(rng.uniform(nResources));
          const std::string& tag =
              tagPool[static_cast<usize>(rng.uniform(tagPool.size()))];
          auto r = http.request("POST", "/resources/" + res1 + "/tags", tag);
          res.tag.add(usSince(t0));
          res.failures += (r && r->status == 200) ? 0 : 1;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  double reqWallUs = usSince(runStart);

  // ---- regime 2: connection churn ----------------------------------------
  clients.clear();
  Clock::time_point churnStart = Clock::now();
  for (usize w = 0; w < nClients; ++w) {
    clients.emplace_back([&, w] {
      WorkerResult& res = results[w];
      Rng rng(seed * 77 + w);
      for (usize cIdx = 0; cIdx < connsPerClient; ++cIdx) {
        Clock::time_point t0 = Clock::now();
        gateway::HttpClient http;
        if (!http.connect("127.0.0.1", port, 10'000)) {
          ++res.failures;
          continue;
        }
        std::string res1 = "res-" + std::to_string(rng.uniform(nResources));
        auto r = http.request("GET", "/resolve/" + res1);
        http.close();
        res.connCycle.add(usSince(t0));
        res.failures += (r && (r->status == 200 || r->status == 404)) ? 0 : 1;
      }
    });
  }
  for (auto& t : clients) t.join();
  double churnWallUs = usSince(churnStart);

  // ---- report -------------------------------------------------------------
  LatencyTrack search, resolve, tag, connCycle;
  u64 failures = 0;
  for (auto& r : results) {
    search.merge(r.search);
    resolve.merge(r.resolve);
    tag.merge(r.tag);
    connCycle.merge(r.connCycle);
    failures += r.failures;
  }
  u64 totalReqs = static_cast<u64>(nClients * opsPerClient);
  u64 totalConns = static_cast<u64>(nClients * connsPerClient);
  gateway::GatewayCounters g = server.counters();

  std::printf("\n%-10s %8s %10s %10s %10s\n", "route", "count", "p50 us",
              "p99 us", "max us");
  auto row = [](const char* name, LatencyTrack& t) {
    if (t.samples.empty()) return;
    std::printf("%-10s %8zu %10.0f %10.0f %10.0f\n", name, t.samples.size(),
                t.percentile(0.50), t.percentile(0.99), t.percentile(1.0));
  };
  row("search", search);
  row("resolve", resolve);
  row("tag", tag);
  row("conn", connCycle);

  std::printf("\nRESULT: %llu reqs in %.2f s => %.0f req/sec "
              "(%zu keep-alive clients), %llu failures\n",
              static_cast<unsigned long long>(totalReqs), reqWallUs / 1e6,
              static_cast<double>(totalReqs) / (reqWallUs / 1e6), nClients,
              static_cast<unsigned long long>(failures));
  std::printf("RESULT: %llu conns in %.2f s => %.0f conn/sec (one request "
              "each)\n",
              static_cast<unsigned long long>(totalConns), churnWallUs / 1e6,
              static_cast<double>(totalConns) / (churnWallUs / 1e6));
  std::printf("# gateway: accepted=%llu responses=%llu bytesIn=%llu "
              "bytesOut=%llu\n",
              static_cast<unsigned long long>(g.connectionsAccepted),
              static_cast<unsigned long long>(g.responses),
              static_cast<unsigned long long>(g.bytesIn),
              static_cast<unsigned long long>(g.bytesOut));

  if (!jsonPath.empty()) {
    std::ofstream js(jsonPath);
    auto route = [&js](const char* name, LatencyTrack& t, bool last) {
      js << "    \"" << name << "\": {\"count\": " << t.samples.size()
         << ", \"p50_us\": " << t.percentile(0.50)
         << ", \"p99_us\": " << t.percentile(0.99)
         << ", \"max_us\": " << t.percentile(1.0) << "}"
         << (last ? "\n" : ",\n");
    };
    js << "{\n"
       << "  \"bench\": \"bench_gateway_throughput\",\n"
       << "  \"config\": {\"nodes\": " << nNodes << ", \"clients\": "
       << nClients << ", \"gw_workers\": " << gwWorkers
       << ", \"ops_per_client\": " << opsPerClient
       << ", \"conns_per_client\": " << connsPerClient
       << ", \"resources\": " << nResources << ", \"seed\": " << seed
       << ", \"smoke\": " << (smoke ? "true" : "false")
       << ", \"obs\": " << (obsOn ? "true" : "false") << "},\n"
       << "  \"req_wall_seconds\": " << reqWallUs / 1e6 << ",\n"
       << "  \"req_per_sec\": "
       << static_cast<double>(totalReqs) / (reqWallUs / 1e6) << ",\n"
       << "  \"conn_wall_seconds\": " << churnWallUs / 1e6 << ",\n"
       << "  \"conn_per_sec\": "
       << static_cast<double>(totalConns) / (churnWallUs / 1e6) << ",\n"
       << "  \"failures\": " << failures << ",\n"
       << "  \"latency_us\": {\n";
    route("search", search, false);
    route("resolve", resolve, false);
    route("tag", tag, false);
    route("conn_cycle", connCycle, true);
    js << "  },\n"
       << "  \"gateway\": {\"accepted\": " << g.connectionsAccepted
       << ", \"responses\": " << g.responses << ", \"bytes_in\": " << g.bytesIn
       << ", \"bytes_out\": " << g.bytesOut << "}\n"
       << "}\n";
    if (!js) {
      std::cerr << "failed to write " << jsonPath << "\n";
      return 1;
    }
    std::printf("# json written to %s\n", jsonPath.c_str());
  }

  // Drain the gateway BEFORE the executor stops: in-flight handlers block
  // through the runtime, so the loop thread must outlive the worker pool.
  server.stop();
  exec.stop();
  transport.close();
  nodes.clear();
  return failures == 0 ? 0 : 1;
}
