/// Availability and lookup cost of the overlay under churn, with the
/// maintenance subsystem (bucket refresh + replica republish + expiry) on
/// vs off. This is the scenario the paper's load/consistency claims take
/// for granted: a Kademlia overlay that stays healthy while nodes crash
/// and join. Without maintenance, every crash wave permanently thins the
/// replica sets and leaves routing tables full of dead contacts; with it,
/// republish re-replicates blocks toward the current kStore-closest set
/// and bucket refresh purges dead routing state between waves.
///
/// Protocol (all simulated time, fully deterministic for a fixed --seed):
///   1. bootstrap an overlay, publish --keys blocks;
///   2. measure get-success and mean get latency (phase "before");
///   3. schedule churn: --waves crash waves of 20% of the surviving
///      overlay each, plus --joins fresh nodes joining through surviving
///      seeds, plus a partial revive of the first wave's victims;
///   4. measure again right after the last wave ("during") and after two
///      further republish cycles ("after");
///   5. run the identical script with maintenance disabled and compare;
///   6. run it once more with maintenance AND record caching on
///      (node-side path caches, non-authoritative reads): cached reads are
///      classified explicitly — a hit with the right content counts as
///      "cached", one with wrong content as "cached-stale", NEVER as an
///      unclassified silent success — and the per-scenario cache counters
///      (hits/misses/evictions/expirations, STORE_CACHE published/absorbed)
///      are printed so cache activity under churn is fully observable.
///
/// SHAPE CHECK: maintenance-on keeps get-success >= 99% in the "after"
/// phase, and maintenance-off shows measurable degradation (lower success
/// or >= 1.25x the during-churn get latency). The cached scenario must hold
/// the same availability bar with zero silent failures and zero stale
/// cached reads (this workload never rewrites a block, so any staleness
/// would be a caching bug, not tolerated approximation).
///
/// Options: --nodes --keys --waves --joins --seed --smoke (small, fast
/// parameters for CI), --json PATH (machine-readable per-scenario/phase
/// dump: availability, latency, RPC and cache counters, shape verdicts;
/// bench/baselines/ keeps a checked-in snapshot per PR).

#include <array>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "core/outcome.hpp"
#include "dht/dht_network.hpp"
#include "util/options.hpp"
#include "workload/churn.hpp"

namespace {

using namespace dharma;

struct Params {
  usize nodes = 64;
  usize keys = 60;
  u32 waves = 3;
  u32 joins = 8;
  u64 seed = 42;
  net::SimTime waveSpacingUs = 60'000'000;   // 60 s between crash waves
  net::SimTime settleUs = 10'000'000;        // wave -> "during" measurement
};

struct PhaseStats {
  usize ok = 0;
  usize total = 0;
  double meanLatencyMs = 0.0;
  u64 rpcs = 0;  ///< overlay RPCs during the phase (incl. maintenance)
  /// Failed gets by OpError taxonomy entry.
  std::array<u64, core::kOpErrorCount> byError{};
  /// Gets that returned a view WITHOUT the expected content: the one
  /// failure shape classifyGet cannot name (a partially-replicated or
  /// divergent block read as "found"). Must stay zero — this is the
  /// falsifiable half of the zero-silent-failure claim.
  u64 silent = 0;
  /// Successful gets served from record caches (GetResult::servedFromCache):
  /// correct content, zero authoritative replicas consulted.
  u64 cachedServed = 0;
  /// Cache-served gets whose content was WRONG — classified on its own so
  /// cache staleness can never hide inside `silent` or masquerade as ok.
  u64 cachedStale = 0;

  double successRate() const {
    return total ? static_cast<double>(ok) / static_cast<double>(total) : 0.0;
  }

  std::string errorSummary() const {
    std::string s;
    for (usize e = 0; e < byError.size(); ++e) {
      if (byError[e] == 0) continue;
      if (!s.empty()) s += " ";
      s += std::string(core::opErrorName(static_cast<core::OpError>(e))) +
           ":" + std::to_string(byError[e]);
    }
    if (cachedStale > 0) s += (s.empty() ? "" : " ") +
                              std::string("cached-stale:") +
                              std::to_string(cachedStale);
    if (silent > 0) s += (s.empty() ? "" : " ") + std::string("SILENT:") +
                         std::to_string(silent);
    return s.empty() ? "-" : s;
  }
};

struct ScenarioResult {
  PhaseStats before, during, after;
  u64 totalRpcs = 0;
  u64 timeouts = 0;
  usize onlineNodes = 0;
  /// Whole-overlay record-cache counters (all zero when caching is off).
  u64 cacheHits = 0, cacheMisses = 0, cacheEvictions = 0;
  u64 cacheExpirations = 0, storeCachePublished = 0, storeCacheAccepted = 0;
  u64 cacheSweepDrops = 0;  ///< entries dropped by the maintenance sweep
};

dht::StoreToken inc(const std::string& entry, u64 delta) {
  return dht::StoreToken{dht::TokenKind::kIncrement, entry, delta, {}};
}

/// One GET per key from a random online reader; success requires the
/// block's real content, not just a non-null view. Every failed get maps
/// onto the OpError taxonomy via the same classifier DharmaClient uses;
/// cache-served gets are classified apart (cached / cached-stale) so a
/// stale cached copy can never pass as ok or hide as silent.
PhaseStats measure(dht::DhtNetwork& net, const std::vector<dht::NodeId>& keys,
                   Rng& rng, bool allowCached) {
  PhaseStats st;
  u64 rpc0 = net.totalRpcsSent();
  double totalMs = 0.0;
  // The cached scenario reads every key TWICE (two distinct random
  // readers): the first read seeds the lookup path's caches, the second is
  // the re-read path caching exists for. Phase stats count both.
  const usize readsPerKey = allowCached ? 2 : 1;
  for (const auto& key : keys) {
    for (usize pass = 0; pass < readsPerKey; ++pass) {
      usize reader;
      do {
        reader = static_cast<usize>(rng.uniform(net.size()));
      } while (!net.isOnline(reader));
      net::SimTime t0 = net.sim().now();
      dht::GetOptions opt;
      opt.allowCached = allowCached;
      dht::GetResult got = net.getResult(reader, key, opt);
      totalMs += static_cast<double>(net.sim().now() - t0) / 1000.0;
      ++st.total;
      if (got.view && got.view->weightOf("alpha") > 0) {
        ++st.ok;
        if (got.servedFromCache()) ++st.cachedServed;
      } else if (got.view) {
        // Found but with the wrong content (a partial or divergent copy
        // read as a hit). From a record cache it is a classified stale
        // read; from authoritative replicas no taxonomy entry names it —
        // a silent failure.
        if (got.servedFromCache()) {
          ++st.cachedStale;
        } else {
          ++st.silent;
        }
      } else if (auto err = core::classifyGet(got)) {
        ++st.byError[static_cast<usize>(*err)];
      }
    }
  }
  st.meanLatencyMs = st.total ? totalMs / static_cast<double>(st.total) : 0.0;
  st.rpcs = net.totalRpcsSent() - rpc0;
  return st;
}

ScenarioResult runScenario(const Params& p, bool maintenanceOn, bool cacheOn) {
  dht::DhtNetworkConfig cfg;
  cfg.nodes = p.nodes;
  cfg.seed = p.seed;
  cfg.latency = "constant";
  cfg.constantLatencyUs = 20'000;
  cfg.node.kStore = 4;
  // Record caching: successful GETs seed path caches (STORE_CACHE) and the
  // measurement reads accept non-authoritative cached replies. Sparser
  // routing tables (k=6 vs the one-hop-to-a-replica default) put actual
  // non-holders on lookup paths, the regime path caching serves.
  cfg.node.cacheEnabled = cacheOn;
  if (cacheOn) cfg.node.k = 6;
  dht::DhtNetwork net(cfg);
  net.bootstrap();

  std::vector<dht::NodeId> keys;
  keys.reserve(p.keys);
  for (usize i = 0; i < p.keys; ++i) {
    dht::NodeId key = dht::NodeId::fromString("churn-key-" + std::to_string(i));
    keys.push_back(key);
    usize publisher = (i * 7 + 1) % p.nodes;
    net.putManyBlocking(publisher, key,
                        {inc("alpha", 1 + i % 5), inc("beta", 2), inc("gamma", 1)});
  }

  // The same sampling stream in both scenarios: the overlay topology and
  // churn script are identical, so reader choices line up get-for-get.
  Rng sample(splitmix64(p.seed ^ 0xbe7c41ULL));

  ScenarioResult res;
  res.before = measure(net, keys, sample, cacheOn);

  net::SimTime t0 = net.sim().now();
  dht::MaintenanceConfig mcfg;
  mcfg.bucketRefreshIntervalUs = 20'000'000;
  mcfg.republishIntervalUs = 30'000'000;
  mcfg.expiryTtlUs = 900'000'000;  // well past the experiment horizon
  mcfg.expiryCheckIntervalUs = 60'000'000;
  if (maintenanceOn) net.enableMaintenance(mcfg);

  wl::ChurnConfig ccfg;
  ccfg.crashFraction = 0.2;
  ccfg.waves = p.waves;
  ccfg.firstCrashAtUs = t0 + p.waveSpacingUs;
  ccfg.waveSpacingUs = p.waveSpacingUs;
  ccfg.reviveAfterUs = 0;
  ccfg.freshJoins = p.joins;
  ccfg.joinStartUs = t0 + p.waveSpacingUs + p.waveSpacingUs / 2;
  ccfg.joinSpacingUs = 5'000'000;
  ccfg.seed = p.seed;
  dht::ChurnSchedule schedule = wl::makeChurnSchedule(ccfg, p.nodes);
  // Partial recovery: the first wave's victims revive late in the run
  // (after the "during" measurement), exercising the revive path.
  net::SimTime reviveAt = t0 + p.waveSpacingUs * (p.waves + 1);
  usize firstWave = static_cast<usize>(static_cast<double>(p.nodes) * 0.2);
  std::vector<usize> reviveVictims;
  for (const auto& e : schedule.events) {
    if (e.action == dht::ChurnAction::kCrash &&
        reviveVictims.size() < firstWave / 2) {
      reviveVictims.push_back(e.node);
    }
  }
  for (usize victim : reviveVictims) {
    schedule.events.push_back({reviveAt, dht::ChurnAction::kRevive, victim});
  }
  net.scheduleChurn(schedule);

  net.runFor(t0 + p.waveSpacingUs * p.waves + p.settleUs - net.sim().now());
  res.during = measure(net, keys, sample, cacheOn);

  net::SimTime afterAt = reviveAt + 2 * mcfg.republishIntervalUs;
  if (afterAt > net.sim().now()) net.runFor(afterAt - net.sim().now());
  res.after = measure(net, keys, sample, cacheOn);

  res.totalRpcs = net.totalRpcsSent();
  res.onlineNodes = net.onlineCount();
  for (usize i = 0; i < net.size(); ++i) {
    const dht::NodeCounters& c = net.node(i).counters();
    res.timeouts += c.timeouts;
    res.cacheHits += c.cacheHits;
    res.cacheMisses += c.cacheMisses;
    res.cacheEvictions += c.cacheEvictions;
    res.cacheExpirations += c.cacheExpirations;
    res.storeCachePublished += c.storeCachePublished;
    res.storeCacheAccepted += c.storeCacheAccepted;
    if (const dht::MaintenanceManager* m = net.maintenance(i)) {
      res.cacheSweepDrops += m->counters().cacheEntriesExpired;
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dharma;
  Options opts(argc, argv);
  Params p;
  if (opts.getBool("smoke", false)) {
    p.nodes = 32;
    p.keys = 24;
    p.joins = 4;
  }
  p.nodes = static_cast<usize>(opts.getInt("nodes", static_cast<i64>(p.nodes)));
  p.keys = static_cast<usize>(opts.getInt("keys", static_cast<i64>(p.keys)));
  p.waves = static_cast<u32>(opts.getInt("waves", p.waves));
  p.joins = static_cast<u32>(opts.getInt("joins", p.joins));
  p.seed = static_cast<u64>(opts.getInt("seed", 42));
  const std::string jsonPath = opts.getString("json", "");

  std::cout << "### Overlay availability under churn: maintenance on vs off"
               " vs on+cache\n"
            << "# overlay: " << p.nodes << " nodes, kStore=4, " << p.keys
            << " blocks; churn: " << p.waves
            << " waves of 20% crashes + " << p.joins
            << " fresh joins + partial revive; seed=" << p.seed << "\n"
            << "# phases: before churn / right after the last wave (during) /"
               " after two republish cycles (after)\n"
            << "# on+cache: record caching on (STORE_CACHE path caches, "
               "non-authoritative reads, k=6 routing)\n";

  ScenarioResult on = runScenario(p, /*maintenanceOn=*/true, /*cacheOn=*/false);
  ScenarioResult off =
      runScenario(p, /*maintenanceOn=*/false, /*cacheOn=*/false);
  ScenarioResult cached =
      runScenario(p, /*maintenanceOn=*/true, /*cacheOn=*/true);

  auto row = [](const std::string& name, const ScenarioResult& r) {
    return std::vector<std::string>{
        name,
        ana::cellPercent(r.before.successRate()),
        ana::cellPercent(r.during.successRate()),
        ana::cellPercent(r.after.successRate()),
        ana::cellDouble(r.before.meanLatencyMs, 1),
        ana::cellDouble(r.during.meanLatencyMs, 1),
        ana::cellDouble(r.after.meanLatencyMs, 1),
        ana::cellInt(r.timeouts),
        ana::cellInt(r.totalRpcs)};
  };
  ana::printTable(std::cout, "get availability and cost across churn phases",
                  {"scenario", "success (before)", "success (during)",
                   "success (after)", "latency ms (before)",
                   "latency ms (during)", "latency ms (after)", "timeouts",
                   "total RPCs"},
                  {row("on", on), row("off", off), row("on+cache", cached)});
  auto phaseRpcs = [](const ScenarioResult& r) {
    return std::to_string(r.before.rpcs) + "/" + std::to_string(r.during.rpcs) +
           "/" + std::to_string(r.after.rpcs);
  };
  std::cout << "# RPCs during measurement windows (before/during/after, incl."
               " maintenance traffic): on " << phaseRpcs(on) << ", off "
            << phaseRpcs(off) << ", on+cache " << phaseRpcs(cached) << "\n";
  ana::printTable(std::cout,
                  "failed gets by OpError taxonomy (zero silent failures)",
                  {"scenario", "before", "during", "after"},
                  {{"on", on.before.errorSummary(), on.during.errorSummary(),
                    on.after.errorSummary()},
                   {"off", off.before.errorSummary(), off.during.errorSummary(),
                    off.after.errorSummary()},
                   {"on+cache", cached.before.errorSummary(),
                    cached.during.errorSummary(),
                    cached.after.errorSummary()}});
  auto cacheRow = [](const std::string& name, const ScenarioResult& r) {
    u64 cachedReads = r.before.cachedServed + r.during.cachedServed +
                      r.after.cachedServed;
    return std::vector<std::string>{
        name,
        ana::cellInt(cachedReads),
        ana::cellInt(r.cacheHits),
        ana::cellInt(r.cacheMisses),
        ana::cellInt(r.cacheEvictions),
        ana::cellInt(r.cacheExpirations),
        ana::cellInt(r.cacheSweepDrops),
        ana::cellInt(r.storeCachePublished) + "/" +
            ana::cellInt(r.storeCacheAccepted)};
  };
  ana::printTable(
      std::cout,
      "record-cache activity (KademliaNode counters; cached reads are "
      "classified, staleness never silently masked)",
      {"scenario", "gets served cached", "node hits", "node misses",
       "evictions", "expirations", "(of which by sweep)",
       "STORE_CACHE pub/acc"},
      {cacheRow("on", on), cacheRow("off", off), cacheRow("on+cache", cached)});
  bool classified = true;
  u64 staleCached = 0;
  for (const PhaseStats* ph :
       {&on.before, &on.during, &on.after, &off.before, &off.during,
        &off.after, &cached.before, &cached.during, &cached.after}) {
    classified = classified && ph->silent == 0;
    staleCached += ph->cachedStale;
  }
  std::cout << "# determinism digest: on{rpcs=" << on.totalRpcs
            << ", online=" << on.onlineNodes << "} off{rpcs=" << off.totalRpcs
            << ", online=" << off.onlineNodes << "} on+cache{rpcs="
            << cached.totalRpcs << ", online=" << cached.onlineNodes
            << ", hits=" << cached.cacheHits << "}\n";

  bool onAvailable = on.after.successRate() >= 0.99 &&
                     on.during.successRate() >= 0.99;
  bool offSuccessDegraded =
      off.during.successRate() < on.during.successRate() ||
      off.after.successRate() < on.after.successRate();
  bool offCostDegraded =
      off.during.meanLatencyMs > 1.25 * on.during.meanLatencyMs;
  bool cachedAvailable = cached.after.successRate() >= 0.99 &&
                         cached.during.successRate() >= 0.99;
  bool noStaleCached = staleCached == 0;
  bool pass = onAvailable && (offSuccessDegraded || offCostDegraded) &&
              classified && cachedAvailable && noStaleCached;
  std::cout << "\nSHAPE CHECK: maintenance-on keeps get-success >= 99% under "
               "churn: "
            << (onAvailable ? "PASS" : "FAIL")
            << "; maintenance-off measurably degraded (success "
            << (offSuccessDegraded ? "yes" : "no") << ", latency "
            << (offCostDegraded ? "yes" : "no")
            << "): " << (offSuccessDegraded || offCostDegraded ? "PASS" : "FAIL")
            << "; no unclassifiable failures (wrong-content reads): "
            << (classified ? "PASS" : "FAIL")
            << "; cached scenario holds >= 99% with zero stale cached reads: "
            << (cachedAvailable && noStaleCached ? "PASS" : "FAIL")
            << " => " << (pass ? "PASS" : "FAIL") << "\n";

  if (!jsonPath.empty()) {
    std::ofstream js(jsonPath);
    auto phase = [&js](const char* name, const PhaseStats& ph, bool last) {
      js << "        \"" << name << "\": {\"success_rate\": "
         << ph.successRate() << ", \"ok\": " << ph.ok << ", \"total\": "
         << ph.total << ", \"mean_latency_ms\": " << ph.meanLatencyMs
         << ", \"rpcs\": " << ph.rpcs << ", \"silent\": " << ph.silent
         << ", \"cached_served\": " << ph.cachedServed
         << ", \"cached_stale\": " << ph.cachedStale << "}"
         << (last ? "\n" : ",\n");
    };
    auto scenario = [&](const char* name, const ScenarioResult& r,
                        bool last) {
      js << "    \"" << name << "\": {\n      \"phases\": {\n";
      phase("before", r.before, false);
      phase("during", r.during, false);
      phase("after", r.after, true);
      js << "      },\n"
         << "      \"total_rpcs\": " << r.totalRpcs << ",\n"
         << "      \"timeouts\": " << r.timeouts << ",\n"
         << "      \"online_nodes\": " << r.onlineNodes << ",\n"
         << "      \"cache\": {\"hits\": " << r.cacheHits << ", \"misses\": "
         << r.cacheMisses << ", \"evictions\": " << r.cacheEvictions
         << ", \"expirations\": " << r.cacheExpirations
         << ", \"sweep_drops\": " << r.cacheSweepDrops
         << ", \"store_cache_published\": " << r.storeCachePublished
         << ", \"store_cache_accepted\": " << r.storeCacheAccepted << "}\n"
         << "    }" << (last ? "\n" : ",\n");
    };
    js << "{\n"
       << "  \"bench\": \"bench_churn_availability\",\n"
       << "  \"config\": {\"nodes\": " << p.nodes << ", \"keys\": " << p.keys
       << ", \"waves\": " << p.waves << ", \"joins\": " << p.joins
       << ", \"seed\": " << p.seed << "},\n"
       << "  \"scenarios\": {\n";
    scenario("on", on, false);
    scenario("off", off, false);
    scenario("on_cache", cached, true);
    js << "  },\n"
       << "  \"shape\": {\"on_available\": " << (onAvailable ? "true" : "false")
       << ", \"off_degraded\": "
       << (offSuccessDegraded || offCostDegraded ? "true" : "false")
       << ", \"classified\": " << (classified ? "true" : "false")
       << ", \"cached_available\": " << (cachedAvailable ? "true" : "false")
       << ", \"no_stale_cached\": " << (noStaleCached ? "true" : "false")
       << ", \"pass\": " << (pass ? "true" : "false") << "}\n"
       << "}\n";
    if (!js) {
      std::cerr << "failed to write " << jsonPath << "\n";
      return 1;
    }
    std::cout << "# json written to " << jsonPath << "\n";
  }
  return pass ? 0 : 1;
}
