/// Availability and lookup cost of the overlay under churn, with the
/// maintenance subsystem (bucket refresh + replica republish + expiry) on
/// vs off. This is the scenario the paper's load/consistency claims take
/// for granted: a Kademlia overlay that stays healthy while nodes crash
/// and join. Without maintenance, every crash wave permanently thins the
/// replica sets and leaves routing tables full of dead contacts; with it,
/// republish re-replicates blocks toward the current kStore-closest set
/// and bucket refresh purges dead routing state between waves.
///
/// Protocol (all simulated time, fully deterministic for a fixed --seed):
///   1. bootstrap an overlay, publish --keys blocks;
///   2. measure get-success and mean get latency (phase "before");
///   3. schedule churn: --waves crash waves of 20% of the surviving
///      overlay each, plus --joins fresh nodes joining through surviving
///      seeds, plus a partial revive of the first wave's victims;
///   4. measure again right after the last wave ("during") and after two
///      further republish cycles ("after");
///   5. run the identical script with maintenance disabled and compare.
///
/// SHAPE CHECK: maintenance-on keeps get-success >= 99% in the "after"
/// phase, and maintenance-off shows measurable degradation (lower success
/// or >= 1.25x the during-churn get latency).
///
/// Options: --nodes --keys --waves --joins --seed --smoke (small, fast
/// parameters for CI).

#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "core/outcome.hpp"
#include "dht/dht_network.hpp"
#include "util/options.hpp"
#include "workload/churn.hpp"

namespace {

using namespace dharma;

struct Params {
  usize nodes = 64;
  usize keys = 60;
  u32 waves = 3;
  u32 joins = 8;
  u64 seed = 42;
  net::SimTime waveSpacingUs = 60'000'000;   // 60 s between crash waves
  net::SimTime settleUs = 10'000'000;        // wave -> "during" measurement
};

struct PhaseStats {
  usize ok = 0;
  usize total = 0;
  double meanLatencyMs = 0.0;
  u64 rpcs = 0;  ///< overlay RPCs during the phase (incl. maintenance)
  /// Failed gets by OpError taxonomy entry.
  std::array<u64, core::kOpErrorCount> byError{};
  /// Gets that returned a view WITHOUT the expected content: the one
  /// failure shape classifyGet cannot name (a partially-replicated or
  /// divergent block read as "found"). Must stay zero — this is the
  /// falsifiable half of the zero-silent-failure claim.
  u64 silent = 0;

  double successRate() const {
    return total ? static_cast<double>(ok) / static_cast<double>(total) : 0.0;
  }

  std::string errorSummary() const {
    std::string s;
    for (usize e = 0; e < byError.size(); ++e) {
      if (byError[e] == 0) continue;
      if (!s.empty()) s += " ";
      s += std::string(core::opErrorName(static_cast<core::OpError>(e))) +
           ":" + std::to_string(byError[e]);
    }
    if (silent > 0) s += (s.empty() ? "" : " ") + std::string("SILENT:") +
                         std::to_string(silent);
    return s.empty() ? "-" : s;
  }
};

struct ScenarioResult {
  PhaseStats before, during, after;
  u64 totalRpcs = 0;
  u64 timeouts = 0;
  usize onlineNodes = 0;
};

dht::StoreToken inc(const std::string& entry, u64 delta) {
  return dht::StoreToken{dht::TokenKind::kIncrement, entry, delta, {}};
}

/// One GET per key from a random online reader; success requires the
/// block's real content, not just a non-null view. Every failed get maps
/// onto the OpError taxonomy via the same classifier DharmaClient uses.
PhaseStats measure(dht::DhtNetwork& net, const std::vector<dht::NodeId>& keys,
                   Rng& rng) {
  PhaseStats st;
  u64 rpc0 = net.totalRpcsSent();
  double totalMs = 0.0;
  for (const auto& key : keys) {
    usize reader;
    do {
      reader = static_cast<usize>(rng.uniform(net.size()));
    } while (!net.isOnline(reader));
    net::SimTime t0 = net.sim().now();
    dht::GetResult got = net.getResult(reader, key);
    totalMs += static_cast<double>(net.sim().now() - t0) / 1000.0;
    ++st.total;
    if (got.view && got.view->weightOf("alpha") > 0) {
      ++st.ok;
    } else if (auto err = core::classifyGet(got)) {
      ++st.byError[static_cast<usize>(*err)];
    } else {
      // Found but with the wrong content (a partial or divergent replica
      // read as a hit): no taxonomy entry names this — a silent failure.
      ++st.silent;
    }
  }
  st.meanLatencyMs = st.total ? totalMs / static_cast<double>(st.total) : 0.0;
  st.rpcs = net.totalRpcsSent() - rpc0;
  return st;
}

ScenarioResult runScenario(const Params& p, bool maintenanceOn) {
  dht::DhtNetworkConfig cfg;
  cfg.nodes = p.nodes;
  cfg.seed = p.seed;
  cfg.latency = "constant";
  cfg.constantLatencyUs = 20'000;
  cfg.node.kStore = 4;
  dht::DhtNetwork net(cfg);
  net.bootstrap();

  std::vector<dht::NodeId> keys;
  keys.reserve(p.keys);
  for (usize i = 0; i < p.keys; ++i) {
    dht::NodeId key = dht::NodeId::fromString("churn-key-" + std::to_string(i));
    keys.push_back(key);
    usize publisher = (i * 7 + 1) % p.nodes;
    net.putManyBlocking(publisher, key,
                        {inc("alpha", 1 + i % 5), inc("beta", 2), inc("gamma", 1)});
  }

  // The same sampling stream in both scenarios: the overlay topology and
  // churn script are identical, so reader choices line up get-for-get.
  Rng sample(splitmix64(p.seed ^ 0xbe7c41ULL));

  ScenarioResult res;
  res.before = measure(net, keys, sample);

  net::SimTime t0 = net.sim().now();
  dht::MaintenanceConfig mcfg;
  mcfg.bucketRefreshIntervalUs = 20'000'000;
  mcfg.republishIntervalUs = 30'000'000;
  mcfg.expiryTtlUs = 900'000'000;  // well past the experiment horizon
  mcfg.expiryCheckIntervalUs = 60'000'000;
  if (maintenanceOn) net.enableMaintenance(mcfg);

  wl::ChurnConfig ccfg;
  ccfg.crashFraction = 0.2;
  ccfg.waves = p.waves;
  ccfg.firstCrashAtUs = t0 + p.waveSpacingUs;
  ccfg.waveSpacingUs = p.waveSpacingUs;
  ccfg.reviveAfterUs = 0;
  ccfg.freshJoins = p.joins;
  ccfg.joinStartUs = t0 + p.waveSpacingUs + p.waveSpacingUs / 2;
  ccfg.joinSpacingUs = 5'000'000;
  ccfg.seed = p.seed;
  dht::ChurnSchedule schedule = wl::makeChurnSchedule(ccfg, p.nodes);
  // Partial recovery: the first wave's victims revive late in the run
  // (after the "during" measurement), exercising the revive path.
  net::SimTime reviveAt = t0 + p.waveSpacingUs * (p.waves + 1);
  usize firstWave = static_cast<usize>(static_cast<double>(p.nodes) * 0.2);
  std::vector<usize> reviveVictims;
  for (const auto& e : schedule.events) {
    if (e.action == dht::ChurnAction::kCrash &&
        reviveVictims.size() < firstWave / 2) {
      reviveVictims.push_back(e.node);
    }
  }
  for (usize victim : reviveVictims) {
    schedule.events.push_back({reviveAt, dht::ChurnAction::kRevive, victim});
  }
  net.scheduleChurn(schedule);

  net.runFor(t0 + p.waveSpacingUs * p.waves + p.settleUs - net.sim().now());
  res.during = measure(net, keys, sample);

  net::SimTime afterAt = reviveAt + 2 * mcfg.republishIntervalUs;
  if (afterAt > net.sim().now()) net.runFor(afterAt - net.sim().now());
  res.after = measure(net, keys, sample);

  res.totalRpcs = net.totalRpcsSent();
  res.onlineNodes = net.onlineCount();
  for (usize i = 0; i < net.size(); ++i) {
    res.timeouts += net.node(i).counters().timeouts;
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dharma;
  Options opts(argc, argv);
  Params p;
  if (opts.getBool("smoke", false)) {
    p.nodes = 32;
    p.keys = 24;
    p.joins = 4;
  }
  p.nodes = static_cast<usize>(opts.getInt("nodes", static_cast<i64>(p.nodes)));
  p.keys = static_cast<usize>(opts.getInt("keys", static_cast<i64>(p.keys)));
  p.waves = static_cast<u32>(opts.getInt("waves", p.waves));
  p.joins = static_cast<u32>(opts.getInt("joins", p.joins));
  p.seed = static_cast<u64>(opts.getInt("seed", 42));

  std::cout << "### Overlay availability under churn: maintenance on vs off\n"
            << "# overlay: " << p.nodes << " nodes, kStore=4, " << p.keys
            << " blocks; churn: " << p.waves
            << " waves of 20% crashes + " << p.joins
            << " fresh joins + partial revive; seed=" << p.seed << "\n"
            << "# phases: before churn / right after the last wave (during) /"
               " after two republish cycles (after)\n";

  ScenarioResult on = runScenario(p, /*maintenanceOn=*/true);
  ScenarioResult off = runScenario(p, /*maintenanceOn=*/false);

  auto row = [](const std::string& name, const ScenarioResult& r) {
    return std::vector<std::string>{
        name,
        ana::cellPercent(r.before.successRate()),
        ana::cellPercent(r.during.successRate()),
        ana::cellPercent(r.after.successRate()),
        ana::cellDouble(r.before.meanLatencyMs, 1),
        ana::cellDouble(r.during.meanLatencyMs, 1),
        ana::cellDouble(r.after.meanLatencyMs, 1),
        ana::cellInt(r.timeouts),
        ana::cellInt(r.totalRpcs)};
  };
  ana::printTable(std::cout, "get availability and cost across churn phases",
                  {"maintenance", "success (before)", "success (during)",
                   "success (after)", "latency ms (before)",
                   "latency ms (during)", "latency ms (after)", "timeouts",
                   "total RPCs"},
                  {row("on", on), row("off", off)});
  auto phaseRpcs = [](const ScenarioResult& r) {
    return std::to_string(r.before.rpcs) + "/" + std::to_string(r.during.rpcs) +
           "/" + std::to_string(r.after.rpcs);
  };
  std::cout << "# RPCs during measurement windows (before/during/after, incl."
               " maintenance traffic): on " << phaseRpcs(on) << ", off "
            << phaseRpcs(off) << "\n";
  ana::printTable(std::cout,
                  "failed gets by OpError taxonomy (zero silent failures)",
                  {"maintenance", "before", "during", "after"},
                  {{"on", on.before.errorSummary(), on.during.errorSummary(),
                    on.after.errorSummary()},
                   {"off", off.before.errorSummary(), off.during.errorSummary(),
                    off.after.errorSummary()}});
  bool classified = true;
  for (const PhaseStats* ph : {&on.before, &on.during, &on.after, &off.before,
                               &off.during, &off.after}) {
    classified = classified && ph->silent == 0;
  }
  std::cout << "# determinism digest: on{rpcs=" << on.totalRpcs
            << ", online=" << on.onlineNodes << "} off{rpcs=" << off.totalRpcs
            << ", online=" << off.onlineNodes << "}\n";

  bool onAvailable = on.after.successRate() >= 0.99 &&
                     on.during.successRate() >= 0.99;
  bool offSuccessDegraded =
      off.during.successRate() < on.during.successRate() ||
      off.after.successRate() < on.after.successRate();
  bool offCostDegraded =
      off.during.meanLatencyMs > 1.25 * on.during.meanLatencyMs;
  bool pass = onAvailable && (offSuccessDegraded || offCostDegraded) &&
              classified;
  std::cout << "\nSHAPE CHECK: maintenance-on keeps get-success >= 99% under "
               "churn: "
            << (onAvailable ? "PASS" : "FAIL")
            << "; maintenance-off measurably degraded (success "
            << (offSuccessDegraded ? "yes" : "no") << ", latency "
            << (offCostDegraded ? "yes" : "no")
            << "): " << (offSuccessDegraded || offCostDegraded ? "PASS" : "FAIL")
            << "; no unclassifiable failures (wrong-content reads): "
            << (classified ? "PASS" : "FAIL")
            << " => " << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
