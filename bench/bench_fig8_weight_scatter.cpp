/// Reproduces Figure 8: arc weights in the original FG vs the simulated
/// (approximated) FG for k ∈ {1, 25, 500}.
///
/// Paper claim: "arcs' weight is significantly reduced for low values of k;
/// to reduce the spread with the original values under a reasonable
/// threshold, k must be set to values that would make an efficient
/// implementation on a DHT system unfeasible."
///
/// Shape target: the mean approx/exact weight ratio rises toward 1 as k
/// grows; at k=1 heavy arcs are strongly compressed.

#include <iostream>

#include "analysis/scatter.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dharma;
  auto env = bench::BenchEnv::parse(argc, argv);
  bench::banner("Figure 8 — original vs simulated FG arc weights", env);

  folk::Trg trg = bench::buildTrg(env);
  ThreadPool pool(env.threads);
  folk::CsrFg exact = folk::deriveExactFg(trg, &pool);
  wl::Trace trace = wl::buildPaperOrderTrace(trg, env.seed + 1);

  std::vector<u32> ks{1, 25, 500};
  if (env.opts.has("k")) ks = {static_cast<u32>(env.opts.getInt("k", 1))};

  double maxWeight = 10.0;
  for (u32 t = 0; t < trg.tagSpan(); ++t) {
    for (const auto& nb : exact.neighbors(t)) {
      maxWeight = std::max(maxWeight, static_cast<double>(nb.weight));
    }
  }

  std::vector<double> slopes;
  for (u32 k : ks) {
    folk::CsrFg approx =
        wl::replayApproximated(trace, folk::approxMode(k), env.seed + 2)
            .freezeFg(trg.tagSpan());
    // Stream every exact arc (missing approx arcs contribute y = 0, i.e.
    // points on the x axis of the paper's plot).
    ana::ScatterAccumulator acc(maxWeight, 10);
    for (u32 t = 0; t < trg.tagSpan(); ++t) {
      for (const auto& nb : exact.neighbors(t)) {
        acc.add(static_cast<double>(nb.weight),
                static_cast<double>(approx.weightOf(t, nb.tag)));
      }
    }
    ana::ScatterSummary s = acc.summarize();
    slopes.push_back(s.slopeThroughOrigin);
    std::cout << "\n-- k = " << k << ": " << s.n
              << " exact arcs, weight slope-through-origin = "
              << ana::cellDouble(s.slopeThroughOrigin, 4)
              << ", pearson = " << ana::cellDouble(s.pearson, 4) << " --\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& b : s.bins) {
      rows.push_back({ana::cellDouble(b.xLo, 1) + ".." + ana::cellDouble(b.xHi, 1),
                      ana::cellInt(b.count), ana::cellDouble(b.meanX, 2),
                      ana::cellDouble(b.meanY, 2),
                      ana::cellDouble(b.meanRatio, 3)});
    }
    ana::printTable(std::cout,
                    "log-binned arc weights (k=" + std::to_string(k) + ")",
                    {"exact-weight bin", "arcs", "mean exact", "mean approx",
                     "mean approx/exact"},
                    rows);
  }

  // Shape: weight recovery is monotone in k and k=1 compresses weights.
  bool monotone = true;
  for (usize i = 1; i < slopes.size(); ++i) {
    if (slopes[i] < slopes[i - 1] - 0.02) monotone = false;
  }
  bool compressedAtK1 = slopes.empty() || slopes[0] < 0.9;
  std::cout << "\nSHAPE CHECK: weight recovery monotone in k: "
            << (monotone ? "PASS" : "FAIL")
            << "; weights compressed at k=1: "
            << (compressedAtK1 ? "PASS" : "FAIL") << "\n";
  return monotone && compressedAtK1 ? 0 : 1;
}
