/// Ablation bench for the design choices docs/DESIGN.md §5 calls out:
///   1. Approximations A and B in isolation (exact / A-only / B-only / A+B)
///      — which approximation costs how much fidelity;
///   2. the connection-parameter sweep (k ∈ {1,2,5,10,25,100});
///   3. replay order: the paper's popularity-proportional order vs a
///      uniform shuffle;
///   4. index-side filtering: reply sizes with and without top-N filtering
///      against the UDP MTU.

#include <iostream>

#include "analysis/compare.hpp"
#include "common.hpp"
#include "core/client.hpp"

namespace {

using namespace dharma;

std::string musigma(const RunningStats& s) {
  return ana::cellDouble(s.mean(), 4) + "/" + ana::cellDouble(s.stddev(), 4);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dharma;
  auto env = bench::BenchEnv::parse(argc, argv, /*defaultScale=*/0.02);
  bench::banner("Ablation — approximation design choices", env);

  folk::Trg trg = bench::buildTrg(env);
  ThreadPool pool(env.threads);
  folk::CsrFg exact = folk::deriveExactFg(trg, &pool);
  wl::Trace trace = wl::buildPaperOrderTrace(trg, env.seed + 1);

  // -- 1. mode ablation --------------------------------------------------
  {
    struct Mode {
      const char* name;
      folk::MaintenanceConfig cfg;
    };
    const Mode modes[] = {
        {"exact", folk::exactMode()},
        {"A-only (k=1)", folk::approxAOnly(1)},
        {"B-only", folk::approxBOnly()},
        {"A+B (k=1, paper)", folk::approxMode(1)},
    };
    std::vector<std::vector<std::string>> rows;
    for (const Mode& m : modes) {
      folk::FolksonomyModel model =
          wl::replayApproximated(trace, m.cfg, env.seed + 2);
      folk::CsrFg fg = model.freezeFg(trg.tagSpan());
      ana::CompareReport rep = ana::compareFgs(exact, fg, &pool);
      rows.push_back({m.name, ana::cellInt(fg.numArcs()),
                      ana::cellInt(fg.totalWeight()), musigma(rep.recall),
                      musigma(rep.kendall), musigma(rep.cosine),
                      ana::cellInt(model.counters().reverseArcUpdates)});
    }
    ana::printTable(std::cout, "mode ablation (vs exact FG)",
                    {"mode", "arcs", "total weight", "recall mu/sigma",
                     "Ktau mu/sigma", "theta mu/sigma", "reverse updates"},
                    rows);
  }

  // -- 2. k sweep ----------------------------------------------------------
  {
    std::vector<std::vector<std::string>> rows;
    for (u32 k : {1u, 2u, 5u, 10u, 25u, 100u}) {
      folk::CsrFg fg =
          wl::replayApproximated(trace, folk::approxMode(k), env.seed + 2)
              .freezeFg(trg.tagSpan());
      ana::CompareReport rep = ana::compareFgs(exact, fg, &pool);
      rows.push_back({std::to_string(k), musigma(rep.recall),
                      musigma(rep.kendall), musigma(rep.cosine),
                      musigma(rep.sim1),
                      ana::cellDouble(rep.missingLe3Share(), 4)});
    }
    ana::printTable(std::cout,
                    "connection parameter sweep (tagging cost = 4 + k lookups)",
                    {"k", "recall", "Ktau", "theta", "sim1%",
                     "missing w<=3 share"},
                    rows);
  }

  // -- 3. replay-order ablation ---------------------------------------------
  {
    wl::Trace uniform = wl::buildUniformTrace(trg, env.seed + 4);
    std::vector<std::vector<std::string>> rows;
    for (auto [name, tr] : {std::pair<const char*, const wl::Trace*>{
                                "paper order (res ∝ popularity)", &trace},
                            {"uniform shuffle", &uniform}}) {
      folk::CsrFg fg =
          wl::replayApproximated(*tr, folk::approxMode(1), env.seed + 2)
              .freezeFg(trg.tagSpan());
      ana::CompareReport rep = ana::compareFgs(exact, fg, &pool);
      rows.push_back({name, musigma(rep.recall), musigma(rep.kendall),
                      musigma(rep.cosine)});
    }
    ana::printTable(std::cout, "replay order (k=1)",
                    {"order", "recall", "Ktau", "theta"}, rows);
  }

  // -- 4. index-side filtering on a live overlay -----------------------------
  {
    dht::DhtNetworkConfig cfg;
    cfg.nodes = 16;
    cfg.seed = env.seed;
    cfg.latency = "constant";
    cfg.constantLatencyUs = 5000;
    dht::DhtNetwork net(cfg);
    net.bootstrap();
    // A hot tag block with 400 entries (a "core" tag's t̂).
    std::vector<dht::StoreToken> batch;
    for (int i = 0; i < 400; ++i) {
      batch.push_back(dht::StoreToken{dht::TokenKind::kIncrement,
                                      "related-tag-" + std::to_string(i),
                                      static_cast<u64>(1 + i % 97),
                                      {}});
    }
    dht::NodeId key = dht::NodeId::fromString("hot-tag|3");
    net.putManyBlocking(0, key, batch);

    std::vector<std::vector<std::string>> rows;
    for (u32 topN : {0u, 100u, 20u}) {
      u64 bytesBefore = net.network().stats().bytesSent;
      dht::GetOptions opt;
      opt.topN = topN;
      auto view = net.getBlocking(5, key, opt);
      u64 bytes = net.network().stats().bytesSent - bytesBefore;
      rows.push_back(
          {topN == 0 ? "none (MTU cap only)" : "top-" + std::to_string(topN),
           view ? ana::cellInt(view->entries.size()) : "-",
           view && view->truncated ? "yes" : "no", ana::cellInt(bytes)});
    }
    ana::printTable(
        std::cout,
        "index-side filtering of a 400-entry hot block (MTU = 1400 B)",
        {"filter", "entries returned", "truncated", "GET traffic (bytes)"},
        rows);
    std::cout << "# oversize datagrams dropped: "
              << net.network().stats().droppedOversize
              << " (responder always trims to MTU)\n";
  }

  std::cout << "\nRESULT: ablation complete\n";
  return 0;
}
