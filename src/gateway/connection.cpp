#include "gateway/connection.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace dharma::gateway {

Connection::Connection(u64 id, int fd, HttpLimits limits)
    : id_(id), fd_(fd), parser_(limits) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

Connection::ReadOutcome Connection::readSome() {
  ReadOutcome out;
  char buf[16384];
  for (;;) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      out.bytes += static_cast<usize>(n);
      parser_.feed(std::string_view(buf, static_cast<usize>(n)));
      // Collect every request the new bytes completed (pipelining).
      while (parser_.state() == ParseState::kComplete) {
        pending_.push_back(parser_.take());
        continueSent_ = false;
      }
      if (parser_.state() == ParseState::kError) return out;
      if (parser_.wantContinue() && !continueSent_) {
        continueSent_ = true;
        queueWrite("HTTP/1.1 100 Continue\r\n\r\n");
      }
      continue;
    }
    if (n == 0) {
      readClosed_ = true;
      out.peerClosed = true;
      return out;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return out;
    if (errno == EINTR) continue;
    out.ioError = true;
    return out;
  }
}

bool Connection::popRequest(HttpRequest& out) {
  if (inFlight_ || pending_.empty()) return false;
  out = std::move(pending_.front());
  pending_.pop_front();
  return true;
}

void Connection::markDead() {
  dead_ = true;
  closeAfterDrain_ = true;
  tx_.clear();
  txPos_ = 0;
  pending_.clear();
}

void Connection::queueWrite(std::string bytes) {
  if (dead_) return;
  // Compact lazily once the consumed prefix dominates, so long-lived
  // keep-alive connections don't grow the buffer forever.
  if (txPos_ > 0 && txPos_ == tx_.size()) {
    tx_.clear();
    txPos_ = 0;
  } else if (txPos_ > 65536 && txPos_ > tx_.size() / 2) {
    tx_.erase(0, txPos_);
    txPos_ = 0;
  }
  tx_ += bytes;
}

bool Connection::flush() {
  while (txPos_ < tx_.size()) {
    ssize_t n = ::send(fd_, tx_.data() + txPos_, tx_.size() - txPos_,
                       MSG_NOSIGNAL);
    if (n > 0) {
      txPos_ += static_cast<usize>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (txPos_ == tx_.size()) {
    tx_.clear();
    txPos_ = 0;
  }
  return true;
}

}  // namespace dharma::gateway
