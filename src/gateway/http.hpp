#pragma once
/// \file http.hpp
/// \brief HTTP/1.1 wire layer for the DHARMA gateway: an incremental,
/// in-place request parser with strict limits, and the matching
/// serializers.
///
/// The gateway is the first component in this repo whose wire format is
/// consumed by off-the-shelf tools (curl, wrk, Prometheus scrapers), so
/// the parser treats every inbound byte as attacker-controlled — the same
/// trust-boundary discipline the RPC decode layer earned in PR 5/7:
///
///  - **Incremental**: bytes arrive in arbitrary fragments (feed());
///    the state machine advances as far as the buffered bytes allow and
///    never re-scans consumed input — each byte is examined once.
///  - **In-place**: header lines are scanned directly inside the
///    connection's receive buffer; field values are materialised into the
///    HttpRequest exactly once, at line granularity — no per-line
///    temporaries, no whole-request copies. The body is sliced out of the
///    buffer in a single move when the request completes.
///  - **Strict limits**: request-line length, per-header-line length,
///    header count, total header bytes and Content-Length are all capped
///    (HttpLimits); a violation is a typed parse error that maps onto 400
///    or 413, never an unbounded allocation.
///  - **Pipelining-ready**: after take(), leftover buffered bytes (the
///    next pipelined request) remain and parsing continues where recv
///    left off.
///
/// Bodies are Content-Length only — Transfer-Encoding (chunked) is
/// rejected with a typed 400. That is deliberate: every client the
/// gateway targets (curl, wrk, the bench driver) sends sized bodies, and
/// refusing chunked keeps the state machine small enough to fuzz
/// exhaustively (fuzz/fuzz_http_parse.cpp).

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace dharma::gateway {

/// Parser resource caps. Every limit is enforced while bytes stream in,
/// so an over-limit request fails fast instead of buffering unboundedly.
struct HttpLimits {
  usize maxRequestLineBytes = 4096;  ///< method + target + version + CRLF
  usize maxHeaderLineBytes = 8192;   ///< one "Name: value" line
  usize maxHeaderCount = 64;         ///< number of header fields
  usize maxHeaderBytes = 16384;      ///< total header-section bytes
  usize maxBodyBytes = 1 << 20;      ///< Content-Length cap (1 MiB)
};

/// One parsed request. Header names are lower-cased during parsing so
/// lookups are a plain comparison; everything else is byte-preserved.
struct HttpRequest {
  std::string method;   ///< e.g. "GET" (token, upper-cased by convention)
  std::string target;   ///< raw request target, e.g. "/search?tag=rock"
  std::string path;     ///< target up to '?' (still percent-encoded)
  std::string query;    ///< target after '?', empty when absent
  u8 versionMinor = 1;  ///< HTTP/1.<n>; only 0 and 1 are accepted
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  bool keepAlive = true;        ///< after Connection/version defaulting
  bool expectContinue = false;  ///< "Expect: 100-continue" was present

  /// First value of header \p name (lower-case), or nullopt.
  std::optional<std::string_view> header(std::string_view name) const;
};

/// Parser progress. kError is terminal for the connection: HTTP/1.1 framing
/// is lost once a malformed request is seen, so the server answers once and
/// closes.
enum class ParseState : u8 {
  kRequestLine = 0,  ///< waiting for the full request line
  kHeaders,          ///< request line done, headers streaming in
  kBody,             ///< headers done, Content-Length body streaming in
  kComplete,         ///< one full request buffered — call take()
  kError,            ///< malformed or over-limit input — see errorStatus()
};

/// Incremental HTTP/1.1 request parser (see file comment).
class HttpParser {
 public:
  HttpParser() = default;
  explicit HttpParser(HttpLimits limits) : limits_(limits) {}

  ParseState state() const { return state_; }

  /// Appends \p bytes and advances the state machine as far as possible.
  /// Returns the resulting state. Feeding after kComplete buffers the
  /// bytes for the next request (pipelining); feeding after kError is a
  /// no-op.
  ParseState feed(std::string_view bytes);

  /// Consumes and returns the completed request; the parser resets to
  /// kRequestLine and immediately re-parses any buffered pipelined bytes.
  /// Precondition: state() == kComplete.
  HttpRequest take();

  /// HTTP status the current kError maps to (400 or 413).
  u16 errorStatus() const { return errorStatus_; }

  /// Stable token naming the parse failure (e.g. "request-line-too-long");
  /// lands in the JSON error body so misbehaving clients are debuggable.
  const char* errorReason() const { return errorReason_; }

  /// Bytes buffered but not yet consumed by a completed parse.
  usize buffered() const { return buf_.size() - pos_; }

  /// True while a request whose headers carried "Expect: 100-continue" is
  /// still waiting for its body — the connection emits the interim 100
  /// exactly once per such request.
  bool wantContinue() const {
    return state_ == ParseState::kBody && req_.expectContinue;
  }

  /// Full reset, dropping all buffered bytes (fresh connection).
  void reset();

 private:
  void fail(u16 status, const char* reason);
  /// Scans for the next CRLF-terminated line in buf_ starting at pos_.
  /// Returns the line without its CRLF, or nullopt if incomplete. Enforces
  /// \p cap on the line length (fail() + nullopt when exceeded).
  std::optional<std::string_view> nextLine(usize cap, const char* what);
  bool parseRequestLine(std::string_view line);
  bool parseHeaderLine(std::string_view line);
  /// Runs once when the header section completes: Content-Length,
  /// Connection and Expect handling. Moves state to kBody or kComplete.
  void finishHeaders();
  void advance();
  void compact();

  HttpLimits limits_;
  ParseState state_ = ParseState::kRequestLine;
  std::string buf_;       ///< unconsumed input (compacted on take())
  usize pos_ = 0;         ///< parse cursor into buf_
  usize headerBytes_ = 0; ///< running header-section size for the cap
  usize bodyLen_ = 0;     ///< declared Content-Length
  HttpRequest req_;       ///< request under construction
  u16 errorStatus_ = 0;
  const char* errorReason_ = "";
};

/// One response. serializeResponse() fills in Content-Length and
/// Connection from the struct fields — handlers only set status, type,
/// body and close.
struct HttpResponse {
  u16 status = 200;
  std::string contentType = "application/json";
  std::vector<std::pair<std::string, std::string>> extraHeaders;
  std::string body;
  bool close = false;  ///< emit "Connection: close" and drop after writing
};

/// Canonical reason phrase for \p status ("OK", "Not Found", ...).
const char* statusReason(u16 status);

/// Renders a response with Content-Length and Connection headers.
std::string serializeResponse(const HttpResponse& r);

/// Renders a request in canonical wire form (used by the blocking client,
/// the bench driver, and the fuzz harness's re-serialize idempotence
/// check). Headers are emitted as parsed (lower-cased names).
std::string serializeRequest(const HttpRequest& r);

/// Decodes %XX escapes (and, when \p plusAsSpace, '+' as space). Returns
/// nullopt on a truncated or non-hex escape — the router maps that to 400.
std::optional<std::string> percentDecode(std::string_view s,
                                         bool plusAsSpace = false);

/// Splits "a=1&b=2" into decoded (key, value) pairs; keys without '=' get
/// empty values. Returns nullopt if any component fails percent-decoding.
std::optional<std::vector<std::pair<std::string, std::string>>> parseQuery(
    std::string_view query);

/// JSON string escaping for the error/response bodies (RFC 8259: quote,
/// backslash and control characters; arbitrary request bytes stay valid).
std::string jsonEscape(std::string_view s);

}  // namespace dharma::gateway
