#pragma once
/// \file http_client.hpp
/// \brief Minimal blocking HTTP/1.1 client for exercising the gateway.
///
/// Shared by the e2e tests (tests/test_gateway.cpp), the throughput bench
/// (bench/bench_gateway_throughput.cpp) and the cluster harness's
/// availability probes — everything that needs to speak to the gateway
/// over a real socket without linking curl. Keep-alive by default; one
/// response is read per request(); sendRaw()/readResponse() split the two
/// halves for pipelining tests. Interim 1xx responses are skipped.
///
/// This is a test/bench utility, not a production client: responses must
/// carry Content-Length (the gateway always does), and redirects, TLS and
/// chunked bodies are out of scope.

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace dharma::gateway {

struct ClientResponse {
  u16 status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  ///< lower-cased names
  std::string body;

  std::optional<std::string_view> header(std::string_view name) const;
};

class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to host:port (IPv4 literal) with send/recv timeouts.
  bool connect(const std::string& host, u16 port, int timeoutMs = 5000);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one request and reads one response on the kept-alive
  /// connection. nullopt on any I/O failure or timeout (the connection is
  /// closed — reconnect to retry).
  std::optional<ClientResponse> request(const std::string& method,
                                        const std::string& target,
                                        const std::string& body = "",
                                        const std::string& contentType = "");

  /// Raw bytes on the wire (pipelining tests write several requests at
  /// once, then read responses back in order).
  bool sendRaw(std::string_view bytes);

  /// Reads the next response off the connection.
  std::optional<ClientResponse> readResponse();

 private:
  int fd_ = -1;
  std::string rx_;   ///< buffered bytes past the last parsed response
};

}  // namespace dharma::gateway
