#include "gateway/http.hpp"

#include <algorithm>
#include <cctype>

namespace dharma::gateway {

namespace {

bool isTokenChar(char c) {
  // RFC 9110 token characters.
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

std::string_view trimOws(std::string_view v) {
  while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
    v.remove_prefix(1);
  }
  while (!v.empty() && (v.back() == ' ' || v.back() == '\t')) {
    v.remove_suffix(1);
  }
  return v;
}

std::string toLower(std::string_view v) {
  std::string out(v);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (usize i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

int hexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<std::string_view> HttpRequest::header(
    std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return std::string_view(v);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// HttpParser
// ---------------------------------------------------------------------------

void HttpParser::fail(u16 status, const char* reason) {
  state_ = ParseState::kError;
  errorStatus_ = status;
  errorReason_ = reason;
}

void HttpParser::reset() {
  state_ = ParseState::kRequestLine;
  buf_.clear();
  pos_ = 0;
  headerBytes_ = 0;
  bodyLen_ = 0;
  req_ = HttpRequest{};
  errorStatus_ = 0;
  errorReason_ = "";
}

ParseState HttpParser::feed(std::string_view bytes) {
  if (state_ == ParseState::kError) return state_;
  buf_.append(bytes.data(), bytes.size());
  advance();
  return state_;
}

void HttpParser::compact() {
  // Drop consumed bytes once nothing in flight references them. Called
  // only from take(), i.e. between requests, so the erase never moves
  // bytes a partially-parsed request still points at.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

HttpRequest HttpParser::take() {
  HttpRequest out = std::move(req_);
  req_ = HttpRequest{};
  state_ = ParseState::kRequestLine;
  headerBytes_ = 0;
  bodyLen_ = 0;
  compact();
  // Pipelining: the next request may already be fully buffered.
  advance();
  return out;
}

std::optional<std::string_view> HttpParser::nextLine(usize cap,
                                                     const char* what) {
  std::string_view rest = std::string_view(buf_).substr(pos_);
  usize nl = rest.find('\n');
  if (nl == std::string_view::npos) {
    // No terminator yet: the *partial* line must already obey the cap,
    // otherwise a malicious client could stream an unbounded line.
    if (rest.size() > cap) fail(400, what);
    return std::nullopt;
  }
  if (nl + 1 > cap + 2) {  // line + CRLF
    fail(400, what);
    return std::nullopt;
  }
  if (nl == 0 || rest[nl - 1] != '\r') {
    // Strict framing: header lines end in CRLF, bare LF is malformed.
    fail(400, "bare-lf");
    return std::nullopt;
  }
  pos_ += nl + 1;
  return rest.substr(0, nl - 1);
}

bool HttpParser::parseRequestLine(std::string_view line) {
  usize sp1 = line.find(' ');
  usize sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                            : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    fail(400, "malformed-request-line");
    return false;
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (method.empty() ||
      !std::all_of(method.begin(), method.end(), isTokenChar)) {
    fail(400, "malformed-method");
    return false;
  }
  if (target.empty() || (target[0] != '/' && target != "*")) {
    // origin-form only: the gateway is not a proxy.
    fail(400, "malformed-target");
    return false;
  }
  if (version == "HTTP/1.1") {
    req_.versionMinor = 1;
  } else if (version == "HTTP/1.0") {
    req_.versionMinor = 0;
  } else {
    fail(400, "unsupported-version");
    return false;
  }
  req_.method = std::string(method);
  req_.target = std::string(target);
  usize q = target.find('?');
  req_.path = std::string(target.substr(0, q));
  req_.query =
      q == std::string_view::npos ? std::string() : std::string(target.substr(q + 1));
  return true;
}

bool HttpParser::parseHeaderLine(std::string_view line) {
  if (line.front() == ' ' || line.front() == '\t') {
    // Obsolete line folding: deprecated by RFC 9112, reject.
    fail(400, "obs-fold");
    return false;
  }
  usize colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    fail(400, "malformed-header");
    return false;
  }
  std::string_view name = line.substr(0, colon);
  if (!std::all_of(name.begin(), name.end(), isTokenChar)) {
    // Includes "Name : value" — whitespace before the colon is malformed.
    fail(400, "malformed-header-name");
    return false;
  }
  if (req_.headers.size() >= limits_.maxHeaderCount) {
    fail(400, "too-many-headers");
    return false;
  }
  req_.headers.emplace_back(toLower(name),
                            std::string(trimOws(line.substr(colon + 1))));
  return true;
}

void HttpParser::finishHeaders() {
  // Content-Length: absent means no body; multiple or malformed values are
  // request smuggling vectors and get a hard 400.
  bodyLen_ = 0;
  bool sawLen = false;
  for (const auto& [k, v] : req_.headers) {
    if (k == "transfer-encoding") {
      fail(400, "unsupported-transfer-encoding");
      return;
    }
    if (k != "content-length") continue;
    if (sawLen) {
      fail(400, "duplicate-content-length");
      return;
    }
    sawLen = true;
    if (v.empty() ||
        !std::all_of(v.begin(), v.end(),
                     [](char c) { return c >= '0' && c <= '9'; }) ||
        v.size() > 12) {
      fail(400, "malformed-content-length");
      return;
    }
    bodyLen_ = static_cast<usize>(std::stoull(v));
  }
  if (bodyLen_ > limits_.maxBodyBytes) {
    fail(413, "body-too-large");
    return;
  }

  // Keep-alive defaulting: 1.1 persistent unless "close"; 1.0 transient
  // unless "keep-alive".
  req_.keepAlive = req_.versionMinor >= 1;
  if (auto conn = req_.header("connection")) {
    if (iequals(*conn, "close")) req_.keepAlive = false;
    if (iequals(*conn, "keep-alive")) req_.keepAlive = true;
  }
  if (auto expect = req_.header("expect")) {
    req_.expectContinue = iequals(*expect, "100-continue");
  }

  state_ = bodyLen_ > 0 ? ParseState::kBody : ParseState::kComplete;
}

void HttpParser::advance() {
  while (true) {
    switch (state_) {
      case ParseState::kRequestLine: {
        // Permit (and skip) one empty line before the request line — RFC
        // 9112 robustness for clients that end the previous body with an
        // extra CRLF.
        auto line = nextLine(limits_.maxRequestLineBytes,
                             "request-line-too-long");
        if (!line) return;
        if (line->empty()) continue;
        if (!parseRequestLine(*line)) return;
        headerBytes_ = 0;
        state_ = ParseState::kHeaders;
        continue;
      }
      case ParseState::kHeaders: {
        usize before = pos_;
        auto line = nextLine(limits_.maxHeaderLineBytes, "header-too-long");
        if (!line) return;
        headerBytes_ += pos_ - before;
        if (headerBytes_ > limits_.maxHeaderBytes) {
          fail(400, "headers-too-large");
          return;
        }
        if (line->empty()) {
          finishHeaders();
          continue;
        }
        if (!parseHeaderLine(*line)) return;
        continue;
      }
      case ParseState::kBody: {
        if (buf_.size() - pos_ < bodyLen_) return;
        req_.body = buf_.substr(pos_, bodyLen_);
        pos_ += bodyLen_;
        state_ = ParseState::kComplete;
        return;
      }
      case ParseState::kComplete:
      case ParseState::kError:
        return;
    }
  }
}

// ---------------------------------------------------------------------------
// Serializers
// ---------------------------------------------------------------------------

const char* statusReason(u16 status) {
  switch (status) {
    case 100: return "Continue";
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string serializeResponse(const HttpResponse& r) {
  std::string out;
  out.reserve(128 + r.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(r.status);
  out += ' ';
  out += statusReason(r.status);
  out += "\r\n";
  if (!r.contentType.empty()) {
    out += "Content-Type: ";
    out += r.contentType;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(r.body.size());
  out += "\r\n";
  for (const auto& [k, v] : r.extraHeaders) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  if (r.close) out += "Connection: close\r\n";
  out += "\r\n";
  out += r.body;
  return out;
}

std::string serializeRequest(const HttpRequest& r) {
  std::string out;
  out.reserve(128 + r.body.size());
  out += r.method;
  out += ' ';
  out += r.target;
  out += r.versionMinor == 0 ? " HTTP/1.0\r\n" : " HTTP/1.1\r\n";
  for (const auto& [k, v] : r.headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  out += "\r\n";
  out += r.body;
  return out;
}

// ---------------------------------------------------------------------------
// URL / JSON helpers
// ---------------------------------------------------------------------------

std::optional<std::string> percentDecode(std::string_view s,
                                         bool plusAsSpace) {
  std::string out;
  out.reserve(s.size());
  for (usize i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '%') {
      if (i + 2 >= s.size()) return std::nullopt;
      int hi = hexVal(s[i + 1]);
      int lo = hexVal(s[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else if (plusAsSpace && c == '+') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::optional<std::vector<std::pair<std::string, std::string>>> parseQuery(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> out;
  usize start = 0;
  while (start <= query.size()) {
    usize amp = query.find('&', start);
    std::string_view item = query.substr(
        start, amp == std::string_view::npos ? std::string_view::npos
                                             : amp - start);
    if (!item.empty()) {
      usize eq = item.find('=');
      std::string_view rawKey = item.substr(0, eq);
      std::string_view rawVal =
          eq == std::string_view::npos ? std::string_view() : item.substr(eq + 1);
      auto key = percentDecode(rawKey, /*plusAsSpace=*/true);
      auto val = percentDecode(rawVal, /*plusAsSpace=*/true);
      if (!key || !val) return std::nullopt;
      out.emplace_back(std::move(*key), std::move(*val));
    }
    if (amp == std::string_view::npos) break;
    start = amp + 1;
  }
  return out;
}

std::string jsonEscape(std::string_view s) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out.push_back(kHex[u >> 4]);
          out.push_back(kHex[u & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace dharma::gateway
