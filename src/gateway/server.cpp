#include "gateway/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/histogram.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace dharma::gateway {

namespace {

void setNonBlocking(int fd) { fcntl(fd, F_SETFL, O_NONBLOCK); }

std::string withErrno(const char* what) {
  std::string s = what;
  s += ": ";
  s += std::strerror(errno);
  return s;
}

/// Renders an OpCost as a JSON object — every successful data-route reply
/// carries the lookups actually paid, so Table I is checkable from curl.
std::string costJson(const core::OpCost& c) {
  std::string s = "{\"lookups\":";
  s += std::to_string(c.lookups);
  s += ",\"puts\":";
  s += std::to_string(c.puts);
  s += ",\"gets\":";
  s += std::to_string(c.gets);
  s += ",\"servedFromCache\":";
  s += std::to_string(c.servedFromCache);
  s += "}";
  return s;
}

std::string entriesJson(const std::vector<dht::BlockEntry>& entries) {
  std::string s = "[";
  bool first = true;
  for (const auto& e : entries) {
    if (!first) s += ",";
    first = false;
    s += "{\"name\":\"";
    s += jsonEscape(e.name);
    s += "\",\"weight\":";
    s += std::to_string(e.weight);
    s += "}";
  }
  s += "]";
  return s;
}

template <typename T>
std::string receiptJson(std::string_view res, const core::Outcome<T>& o) {
  std::string s = "{\"resource\":\"";
  s += jsonEscape(res);
  s += "\",\"blocksWritten\":";
  s += std::to_string(o.value().blocksWritten);
  s += ",\"minReplicas\":";
  s += std::to_string(o.value().minReplicas);
  s += ",\"retries\":";
  s += std::to_string(o.retries);
  s += ",\"cost\":";
  s += costJson(o.cost);
  s += "}";
  return s;
}

/// Splits a request body into non-empty, whitespace-trimmed lines — the
/// POST /resources/{r}/tags body format (one tag per line).
std::vector<std::string> bodyLines(std::string_view body) {
  std::vector<std::string> out;
  usize start = 0;
  while (start <= body.size()) {
    usize nl = body.find('\n', start);
    std::string_view line = body.substr(
        start, nl == std::string_view::npos ? body.size() - start : nl - start);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ' ||
                             line.back() == '\t')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (!line.empty()) out.emplace_back(line);
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return out;
}

HttpResponse jsonError(u16 status, std::string_view token,
                       std::string_view detail) {
  HttpResponse r;
  r.status = status;
  r.body = errorBody(token, detail);
  return r;
}

template <typename T>
HttpResponse opErrorResponse(const core::Outcome<T>& o) {
  core::OpError e = o.error();
  HttpResponse r = jsonError(httpStatusFor(e), opErrorToken(e),
                             core::opErrorName(e));
  return r;
}

}  // namespace

const char* startErrorName(StartError e) {
  switch (e) {
    case StartError::kNone: return "none";
    case StartError::kBadAddress: return "bad-address";
    case StartError::kSocketFailed: return "socket-failed";
    case StartError::kBindInUse: return "bind-in-use";
    case StartError::kBindFailed: return "bind-failed";
    case StartError::kListenFailed: return "listen-failed";
  }
  return "unknown";
}

u16 httpStatusFor(core::OpError e) {
  return e == core::OpError::kNotFound ? 404 : 503;
}

const char* opErrorToken(core::OpError e) {
  switch (e) {
    case core::OpError::kNotFound: return "not-found";
    case core::OpError::kQuorumFailed: return "quorum-failed";
    case core::OpError::kTimeout: return "timeout";
    case core::OpError::kNodeOffline: return "node-offline";
  }
  return "unknown";
}

std::string errorBody(std::string_view token, std::string_view detail) {
  std::string s = "{\"error\":\"";
  s += jsonEscape(token);
  s += "\"";
  if (!detail.empty()) {
    s += ",\"detail\":\"";
    s += jsonEscape(detail);
    s += "\"";
  }
  s += "}";
  return s;
}

GatewayServer::GatewayServer(GatewayConfig cfg, Deps deps)
    : cfg_(std::move(cfg)), deps_(std::move(deps)) {
  if (deps_.metrics != nullptr) {
    registry_ = deps_.metrics;
  } else {
    ownedRegistry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = ownedRegistry_.get();
  }
  regAccepted_ = &registry_->counter("dharma_gateway_connections_accepted_total",
                                     "TCP connections accepted by the gateway");
  regClosed_ = &registry_->counter("dharma_gateway_connections_closed_total",
                                   "Gateway connections closed");
  regConnRejected_ =
      &registry_->counter("dharma_gateway_connections_rejected_total",
                          "Connections refused at the connection cap");
  regRequests_ = &registry_->counter("dharma_gateway_requests_total",
                                     "Requests dispatched to the worker pool");
  // Declared up front so the family (with HELP/TYPE) exists before the
  // first response creates a labeled series.
  registry_->counter("dharma_gateway_responses_total",
                     "Responses by route and status",
                     {{"route", "stats"}, {"status", "200"}});
  regParseErrors_ = &registry_->counter("dharma_gateway_parse_errors_total",
                                        "Connections failed by the HTTP parser");
  regOverload_ = &registry_->counter("dharma_gateway_overload_rejected_total",
                                     "Requests refused with 503 overloaded");
  regDrain_ = &registry_->counter("dharma_gateway_drain_rejected_total",
                                  "Requests refused with 503 draining");
  regBytesIn_ =
      &registry_->counter("dharma_gateway_bytes_in_total", "Request bytes read");
  regBytesOut_ = &registry_->counter("dharma_gateway_bytes_out_total",
                                     "Response bytes written");
  // Latency histograms for every route label the server can emit, plus the
  // two synthetic ones used on the event thread.
  static constexpr RouteId kAllRoutes[] = {
      RouteId::kPutResource, RouteId::kPostTags,  RouteId::kSearch,
      RouteId::kResolve,     RouteId::kStats,     RouteId::kMetrics,
      RouteId::kDebugTraces, RouteId::kNotFound,  RouteId::kMethodNotAllowed,
      RouteId::kBadRequest,
  };
  MutexLock lk(histMapMu_);
  for (RouteId id : kAllRoutes) {
    const char* label = routeName(id);
    routeHist_[label] = &registry_->histogram(
        "dharma_gateway_route_latency_us",
        "Request handling latency by route (microseconds)", {{"route", label}});
  }
}

obs::Histogram& GatewayServer::routeHistogram(const char* label) {
  {
    MutexLock lk(histMapMu_);
    auto it = routeHist_.find(std::string_view(label));
    if (it != routeHist_.end()) return *it->second;
  }
  obs::Histogram& h = registry_->histogram(
      "dharma_gateway_route_latency_us",
      "Request handling latency by route (microseconds)", {{"route", label}});
  MutexLock lk(histMapMu_);
  routeHist_[label] = &h;
  return h;
}

void GatewayServer::syncRegistry(const GatewayCounters& g) {
  regAccepted_->set(g.connectionsAccepted);
  regClosed_->set(g.connectionsClosed);
  regConnRejected_->set(g.connectionsRejected);
  regRequests_->set(g.requestsDispatched);
  regParseErrors_->set(g.parseErrors);
  regOverload_->set(g.overloadRejected);
  regDrain_->set(g.drainRejected);
  regBytesIn_->set(g.bytesIn);
  regBytesOut_->set(g.bytesOut);
  for (const auto& [route, byStatus] : g.byRouteStatus) {
    for (const auto& [status, n] : byStatus) {
      registry_
          ->counter("dharma_gateway_responses_total",
                    "Responses by route and status",
                    {{"route", route}, {"status", std::to_string(status)}})
          .set(n);
    }
  }
}

GatewayServer::~GatewayServer() { stop(); }

StartError GatewayServer::start() {
  in_addr bindAddr{};
  if (inet_pton(AF_INET, cfg_.bindHost.c_str(), &bindAddr) != 1) {
    startDetail_ = "not an IPv4 literal: " + cfg_.bindHost;
    return StartError::kBadAddress;
  }

  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    startDetail_ = withErrno("socket");
    return StartError::kSocketFailed;
  }
  int one = 1;
  setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = bindAddr;
  sa.sin_port = htons(cfg_.port);
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    StartError e = errno == EADDRINUSE ? StartError::kBindInUse
                                       : StartError::kBindFailed;
    startDetail_ = withErrno("bind");
    ::close(listenFd_);
    listenFd_ = -1;
    return e;
  }
  if (::listen(listenFd_, 128) != 0) {
    startDetail_ = withErrno("listen");
    ::close(listenFd_);
    listenFd_ = -1;
    return StartError::kListenFailed;
  }
  socklen_t len = sizeof(sa);
  getsockname(listenFd_, reinterpret_cast<sockaddr*>(&sa), &len);
  boundPort_ = ntohs(sa.sin_port);
  setNonBlocking(listenFd_);

  if (::pipe(wakePipe_) != 0) {
    startDetail_ = withErrno("pipe");
    ::close(listenFd_);
    listenFd_ = -1;
    return StartError::kSocketFailed;
  }
  setNonBlocking(wakePipe_[0]);
  setNonBlocking(wakePipe_[1]);

  pool_ = std::make_unique<ThreadPool>(cfg_.workers == 0 ? 1 : cfg_.workers);
  running_ = true;
  draining_ = false;
  stopped_ = false;
  eventThread_ = std::thread([this] { eventLoop(); });
  return StartError::kNone;
}

void GatewayServer::stop() {
  if (stopped_ || !running_) return;
  stopped_ = true;
  draining_ = true;
  wake();
  if (eventThread_.joinable()) eventThread_.join();
  // Workers are joined after the event loop exits so every dispatched
  // request produced its completion (even if its connection is gone).
  pool_.reset();
  running_ = false;
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wakePipe_[i] >= 0) {
      ::close(wakePipe_[i]);
      wakePipe_[i] = -1;
    }
  }
  conns_.clear();
}

void GatewayServer::wake() {
  char b = 1;
  [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], &b, 1);
}

GatewayCounters GatewayServer::counters() const {
  MutexLock lk(statsMu_);
  return counters_;
}

void GatewayServer::recordResponse(const char* routeLabel, u16 status,
                                   usize bytes) {
  MutexLock lk(statsMu_);
  counters_.responses++;
  counters_.bytesOut += bytes;
  counters_.byRouteStatus[routeLabel][status]++;
}

// ---------------------------------------------------------------------------
// Event thread
// ---------------------------------------------------------------------------

void GatewayServer::eventLoop() {
  std::chrono::steady_clock::time_point drainStart{};
  std::vector<pollfd> pfds;
  std::vector<Connection*> pfdConn;  // parallel to pfds (null for non-conn)

  for (;;) {
    const bool draining = draining_.load();
    if (draining && drainStart.time_since_epoch().count() == 0) {
      drainStart = std::chrono::steady_clock::now();
    }

    pfds.clear();
    pfdConn.clear();
    pfds.push_back({wakePipe_[0], POLLIN, 0});
    pfdConn.push_back(nullptr);
    const bool acceptOpen = !draining && conns_.size() < cfg_.maxConnections;
    if (acceptOpen) {
      pfds.push_back({listenFd_, POLLIN, 0});
      pfdConn.push_back(nullptr);
    }
    for (auto& [id, c] : conns_) {
      short ev = 0;
      if (!c->parseError() && !c->readClosed() && !c->closeAfterDrain() &&
          c->queuedRequests() < cfg_.maxQueuedPerConnection) {
        ev |= POLLIN;
      }
      if (c->wantsWrite()) ev |= POLLOUT;
      if (ev == 0) continue;  // waiting on a worker completion only
      pfds.push_back({c->fd(), ev, 0});
      pfdConn.push_back(c.get());
    }

    // Bounded poll so the drain deadline is honoured even when idle.
    int timeoutMs = draining ? 50 : 500;
    int rc = ::poll(pfds.data(), pfds.size(), timeoutMs);
    if (rc < 0 && errno != EINTR) break;

    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wakePipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (acceptOpen && (pfds[1].revents & POLLIN)) acceptReady();

    for (usize i = 1; i < pfds.size(); ++i) {
      Connection* c = pfdConn[i];
      if (c == nullptr || pfds[i].revents == 0) continue;
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) readReady(*c);
      if (pfds[i].revents & POLLOUT) {
        if (!c->flush()) c->markDead();
      }
    }

    drainCompletions();

    // Dispatch parsed requests, emit any deferred parse-error response once
    // earlier pipelined responses are out, and opportunistically flush.
    for (auto& [id, c] : conns_) {
      dispatchReady(*c);
      if (c->parseError() && !c->errorResponded && !c->dead() &&
          !c->requestInFlight() && c->queuedRequests() == 0) {
        c->errorResponded = true;
        {
          MutexLock lk(statsMu_);
          counters_.parseErrors++;
        }
        HttpResponse resp = jsonError(c->parseErrorStatus(),
                                      c->parseErrorReason(),
                                      "request rejected by parser");
        resp.close = true;
        respondNow(*c, std::move(resp), "parse_error");
      }
      if (c->wantsWrite() && !c->flush()) c->markDead();
    }

    // Reap connections with nothing left to do. A connection whose request
    // is still with a worker is left alive until its completion arrives.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second->drained()) {
        {
          MutexLock lk(statsMu_);
          counters_.connectionsClosed++;
        }
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }

    if (draining) {
      if (conns_.empty() && inFlightTotal_ == 0) break;
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - drainStart)
                         .count();
      if (static_cast<u64>(elapsed) > cfg_.drainDeadlineMs) {
        break;  // force close: conns_ destructors close the sockets
      }
    }
  }
}

void GatewayServer::acceptReady() {
  for (;;) {
    int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: poll again
    }
    if (conns_.size() >= cfg_.maxConnections) {
      ::close(fd);
      MutexLock lk(statsMu_);
      counters_.connectionsRejected++;
      continue;
    }
    setNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    u64 id = nextConnId_++;
    conns_.emplace(id, std::make_unique<Connection>(id, fd, cfg_.limits));
    MutexLock lk(statsMu_);
    counters_.connectionsAccepted++;
  }
}

void GatewayServer::readReady(Connection& c) {
  auto r = c.readSome();
  if (r.bytes > 0) {
    MutexLock lk(statsMu_);
    counters_.bytesIn += r.bytes;
  }
  if (r.ioError) c.markDead();
  // Parse errors are handled in the event loop once earlier pipelined
  // responses have been written, so response order is preserved.
}

void GatewayServer::respondNow(Connection& c, HttpResponse resp,
                               const char* routeLabel) {
  std::string bytes = serializeResponse(resp);
  recordResponse(routeLabel, resp.status, bytes.size());
  c.queueWrite(std::move(bytes));
  c.served++;
  if (resp.close) c.setCloseAfterDrain();
}

void GatewayServer::dispatchReady(Connection& c) {
  HttpRequest req;
  while (c.popRequest(req)) {
    if (draining_.load()) {
      {
        MutexLock lk(statsMu_);
        counters_.drainRejected++;
      }
      HttpResponse resp = jsonError(503, "draining", "gateway shutting down");
      resp.close = true;
      respondNow(c, std::move(resp), routeName(RouteId::kBadRequest));
      continue;
    }
    if (inFlightTotal_ >= cfg_.maxPendingRequests) {
      {
        MutexLock lk(statsMu_);
        counters_.overloadRejected++;
      }
      HttpResponse resp =
          jsonError(503, "overloaded", "request queue full; retry");
      resp.close = !req.keepAlive;
      respondNow(c, std::move(resp), "overloaded");
      continue;
    }

    c.setInFlight(true);
    inFlightTotal_++;
    {
      MutexLock lk(statsMu_);
      counters_.requestsDispatched++;
    }
    u64 connId = c.id();
    // The request moves into the task; the worker serialises the response
    // and posts a completion, then wakes the poll loop.
    pool_->submit([this, connId, r = std::move(req)]() mutable {
      const char* label = "";
      const auto t0 = std::chrono::steady_clock::now();
      HttpResponse resp = handle(r, &label);
      const auto dt = std::chrono::steady_clock::now() - t0;
      routeHistogram(label).record(static_cast<u64>(
          std::chrono::duration_cast<std::chrono::microseconds>(dt).count()));
      if (!r.keepAlive) resp.close = true;
      Completion done;
      done.connId = connId;
      done.close = resp.close;
      done.routeLabel = label;
      done.status = resp.status;
      done.bytes = serializeResponse(resp);
      {
        MutexLock lk(cqMu_);
        completions_.push_back(std::move(done));
      }
      wake();
    });
    break;  // one in flight per connection: stop popping
  }
}

void GatewayServer::drainCompletions() {
  std::vector<Completion> ready;
  {
    MutexLock lk(cqMu_);
    ready.swap(completions_);
  }
  for (auto& done : ready) {
    inFlightTotal_--;
    recordResponse(done.routeLabel, done.status, done.bytes.size());
    auto it = conns_.find(done.connId);
    if (it == conns_.end()) continue;  // connection died while in flight
    Connection& c = *it->second;
    c.setInFlight(false);
    c.served++;
    c.queueWrite(std::move(done.bytes));
    if (done.close) c.setCloseAfterDrain();
  }
}

// ---------------------------------------------------------------------------
// Worker-side request handling
// ---------------------------------------------------------------------------

HttpResponse GatewayServer::handle(const HttpRequest& req,
                                   const char** routeLabel) {
  RouteMatch m = route(req.method, req.path);
  *routeLabel = routeName(m.id);
  switch (m.id) {
    case RouteId::kPutResource: return handlePut(m, req);
    case RouteId::kPostTags: return handlePostTags(m, req);
    case RouteId::kSearch: return handleSearch(req);
    case RouteId::kResolve: return handleResolve(m);
    case RouteId::kStats: return handleStats();
    case RouteId::kMetrics: return handleMetrics();
    case RouteId::kDebugTraces: return handleDebugTraces();
    case RouteId::kNotFound:
      return jsonError(404, "no-such-route", req.path);
    case RouteId::kMethodNotAllowed: {
      HttpResponse r = jsonError(405, "method-not-allowed", req.method);
      r.extraHeaders.emplace_back("Allow", m.allow);
      return r;
    }
    case RouteId::kBadRequest:
      return jsonError(400, m.badReason, req.path);
  }
  return jsonError(404, "no-such-route", req.path);
}

HttpResponse GatewayServer::handlePut(const RouteMatch& m,
                                      const HttpRequest& req) {
  if (deps_.client == nullptr) {
    return jsonError(503, "no-client", "gateway has no engine client");
  }
  // Body is the URI; tags ride the query string as repeated ?tag=...
  auto params = parseQuery(req.query);
  if (!params) return jsonError(400, "bad-percent-encoding", req.query);
  std::vector<std::string> tags;
  for (auto& [k, v] : *params) {
    if (k == "tag" && !v.empty()) tags.push_back(std::move(v));
  }
  std::string uri(req.body);
  while (!uri.empty() && (uri.back() == '\n' || uri.back() == '\r')) {
    uri.pop_back();
  }
  if (uri.empty()) {
    return jsonError(400, "empty-body", "PUT body must be the resource URI");
  }
  auto o = deps_.client->insertResource(m.param, uri, tags);
  if (!o.ok()) return opErrorResponse(o);
  HttpResponse r;
  r.body = receiptJson(m.param, o);
  return r;
}

HttpResponse GatewayServer::handlePostTags(const RouteMatch& m,
                                           const HttpRequest& req) {
  if (deps_.client == nullptr) {
    return jsonError(503, "no-client", "gateway has no engine client");
  }
  std::vector<std::string> tags = bodyLines(req.body);
  if (tags.empty()) {
    return jsonError(400, "no-tags", "POST body must be one tag per line");
  }
  auto o = deps_.client->tagResources(m.param, tags);
  if (!o.ok()) return opErrorResponse(o);
  HttpResponse r;
  r.body = receiptJson(m.param, o);
  return r;
}

HttpResponse GatewayServer::handleSearch(const HttpRequest& req) {
  if (deps_.client == nullptr) {
    return jsonError(503, "no-client", "gateway has no engine client");
  }
  auto params = parseQuery(req.query);
  if (!params) return jsonError(400, "bad-percent-encoding", req.query);
  std::string tag;
  u32 steps = cfg_.defaultSearchSteps;
  for (const auto& [k, v] : *params) {
    if (k == "tag") {
      tag = v;
    } else if (k == "steps") {
      u32 parsed = 0;
      if (v.empty() || v.size() > 6) {
        return jsonError(400, "bad-steps-parameter", v);
      }
      for (char ch : v) {
        if (ch < '0' || ch > '9') {
          return jsonError(400, "bad-steps-parameter", v);
        }
        parsed = parsed * 10 + static_cast<u32>(ch - '0');
      }
      if (parsed == 0 || parsed > cfg_.maxSearchSteps) {
        return jsonError(400, "bad-steps-parameter",
                         "steps must be in [1, " +
                             std::to_string(cfg_.maxSearchSteps) + "]");
      }
      steps = parsed;
    }
  }
  if (tag.empty()) {
    return jsonError(400, "missing-tag-parameter", "GET /search?tag=...");
  }

  auto o = deps_.client->searchSteps(tag, steps);
  if (!o.ok()) return opErrorResponse(o);

  std::string body = "{\"tag\":\"";
  body += jsonEscape(tag);
  body += "\",\"steps\":";
  body += std::to_string(o.value().hops.size());
  body += ",\"exhausted\":";
  body += o.value().exhausted ? "true" : "false";
  body += ",\"hops\":[";
  bool first = true;
  for (const auto& hop : o.value().hops) {
    if (!first) body += ",";
    first = false;
    body += "{\"tag\":\"";
    body += jsonEscape(hop.tag);
    body += "\",\"tagKnown\":";
    body += hop.step.tagKnown ? "true" : "false";
    body += ",\"relatedTags\":";
    body += entriesJson(hop.step.relatedTags);
    body += ",\"resources\":";
    body += entriesJson(hop.step.resources);
    body += ",\"tagsTruncated\":";
    body += hop.step.tagsTruncated ? "true" : "false";
    body += ",\"resourcesTruncated\":";
    body += hop.step.resourcesTruncated ? "true" : "false";
    body += "}";
  }
  body += "],\"cost\":";
  body += costJson(o.cost);
  body += "}";
  HttpResponse r;
  r.body = std::move(body);
  return r;
}

HttpResponse GatewayServer::handleResolve(const RouteMatch& m) {
  if (deps_.client == nullptr) {
    return jsonError(503, "no-client", "gateway has no engine client");
  }
  auto o = deps_.client->resolveUri(m.param);
  if (!o.ok()) return opErrorResponse(o);
  std::string body = "{\"resource\":\"";
  body += jsonEscape(m.param);
  body += "\",\"uri\":\"";
  body += jsonEscape(o.value());
  body += "\",\"cost\":";
  body += costJson(o.cost);
  body += "}";
  HttpResponse r;
  r.body = std::move(body);
  return r;
}

HttpResponse GatewayServer::handleStats() {
  if (deps_.collectEngine) deps_.collectEngine();
  GatewayCounters g = counters();
  syncRegistry(g);
  std::string body = "{\"gateway\":{";
  body += "\"connectionsAccepted\":" + std::to_string(g.connectionsAccepted);
  body += ",\"connectionsClosed\":" + std::to_string(g.connectionsClosed);
  body += ",\"connectionsRejected\":" + std::to_string(g.connectionsRejected);
  body += ",\"requestsDispatched\":" + std::to_string(g.requestsDispatched);
  body += ",\"responses\":" + std::to_string(g.responses);
  body += ",\"parseErrors\":" + std::to_string(g.parseErrors);
  body += ",\"overloadRejected\":" + std::to_string(g.overloadRejected);
  body += ",\"drainRejected\":" + std::to_string(g.drainRejected);
  body += ",\"bytesIn\":" + std::to_string(g.bytesIn);
  body += ",\"bytesOut\":" + std::to_string(g.bytesOut);
  body += ",\"byRoute\":{";
  bool firstRoute = true;
  for (const auto& [route, byStatus] : g.byRouteStatus) {
    if (!firstRoute) body += ",";
    firstRoute = false;
    body += "\"" + route + "\":{";
    bool firstStatus = true;
    for (const auto& [status, n] : byStatus) {
      if (!firstStatus) body += ",";
      firstStatus = false;
      body += "\"" + std::to_string(status) + "\":" + std::to_string(n);
    }
    body += "}";
  }
  body += "}}";
  // One registry snapshot serves both surfaces: everything Prometheus can
  // scrape from /metrics is also here, so no counter is reachable from only
  // one of /stats and /metrics.
  body += ",\"metrics\":";
  body += registry_->renderJson();
  if (deps_.sampler != nullptr) {
    body += ",\"samples\":[";
    bool first = true;
    for (const auto& sample : deps_.sampler->recent(5)) {
      if (!first) body += ",";
      first = false;
      body += sample.toJson();
    }
    body += "]";
  }
  if (deps_.engineStatsJson) {
    std::string engine = deps_.engineStatsJson();
    if (!engine.empty()) {
      body += ",\"engine\":";
      body += engine;
    }
  }
  body += "}";
  HttpResponse r;
  r.body = std::move(body);
  return r;
}

HttpResponse GatewayServer::handleMetrics() {
  if (deps_.collectEngine) deps_.collectEngine();
  syncRegistry(counters());
  HttpResponse r;
  r.contentType = "text/plain; version=0.0.4; charset=utf-8";
  r.body = registry_->renderPrometheus();
  return r;
}

HttpResponse GatewayServer::handleDebugTraces() {
  if (deps_.traces == nullptr) {
    return jsonError(404, "tracing-disabled",
                     "gateway started without a trace ring");
  }
  HttpResponse r;
  r.body = "{\"total_completed\":" +
           std::to_string(deps_.traces->totalCompleted()) + ",\"spans\":" +
           deps_.traces->renderJson(64) + "}";
  return r;
}

}  // namespace dharma::gateway
