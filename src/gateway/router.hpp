#pragma once
/// \file router.hpp
/// \brief REST route table for the DHARMA gateway.
///
/// Six routes map HTTP onto the client primitives (docs/GATEWAY.md has the
/// full API reference with curl examples):
///
///   PUT  /resources/{r}          insertResource (body = URI, ?tag=... xN)
///   POST /resources/{r}/tags     tagResources   (body = one tag per line)
///   GET  /search?tag=T&steps=N   searchSteps    (faceted navigation)
///   GET  /resolve/{r}            resolveUri
///   GET  /stats                  gateway + engine counters as JSON
///   GET  /metrics                Prometheus text exposition
///   GET  /debug/traces           recent per-op trace spans as JSON
///
/// Routing is a pure function of (method, path): no allocation beyond the
/// decoded path parameter, no handler logic. A known path with the wrong
/// method yields kMethodNotAllowed carrying the Allow header value, an
/// unknown path yields kNotFound, and an undecodable path parameter (bad
/// percent escape, empty segment) yields kBadRequest — the server layer
/// turns each into its typed JSON error body.

#include <string>
#include <string_view>

#include "gateway/http.hpp"

namespace dharma::gateway {

enum class RouteId : u8 {
  kPutResource = 0,    ///< PUT /resources/{r}
  kPostTags,           ///< POST /resources/{r}/tags
  kSearch,             ///< GET /search
  kResolve,            ///< GET /resolve/{r}
  kStats,              ///< GET /stats
  kMetrics,            ///< GET /metrics
  kDebugTraces,        ///< GET /debug/traces
  kNotFound,           ///< no route owns this path
  kMethodNotAllowed,   ///< path exists, method does not
  kBadRequest,         ///< path parameter failed percent-decoding or empty
};

/// Stable route label for counters/metrics ("put_resource", "search", ...).
const char* routeName(RouteId id);

struct RouteMatch {
  RouteId id = RouteId::kNotFound;
  std::string param;  ///< decoded {r} path parameter, when the route has one
  const char* allow = "";  ///< Allow header value for kMethodNotAllowed
  const char* badReason = "";  ///< error token for kBadRequest
};

/// Matches \p method + \p path (the still-encoded request path) against the
/// route table.
RouteMatch route(std::string_view method, std::string_view path);

}  // namespace dharma::gateway
