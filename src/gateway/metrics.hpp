#pragma once
/// \file metrics.hpp
/// \brief Minimal Prometheus text-format exposition (version 0.0.4).
///
/// The first slice of the ROADMAP's "production observability" item: the
/// gateway's /metrics endpoint renders every counter the stack already
/// keeps (NodeCounters, CacheStats, UdpStats, the gateway's own request
/// counters) in the exposition format every scraper understands. The
/// registry is deliberately gateway-local and pull-only — counters are
/// sampled at scrape time from their owners (posted through the engine
/// runtime where the owner is loop-thread state), so there is no push
/// pipeline to keep alive and nothing new to synchronise.
///
/// Usage:
///   PrometheusWriter w;
///   w.counter("dharma_gateway_requests_total", "Requests accepted")
///       .sample({{"route", "search"}, {"status", "200"}}, 12)
///       .sample({{"route", "resolve"}, {"status", "404"}}, 3);
///   std::string text = w.text();

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace dharma::gateway {

/// Streaming builder for one exposition document. Metrics render in the
/// order they are declared; samples in the order they are added.
class PrometheusWriter {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Starts a metric family; returns *this for sample() chaining.
  PrometheusWriter& counter(std::string_view name, std::string_view help) {
    return family(name, help, "counter");
  }
  PrometheusWriter& gauge(std::string_view name, std::string_view help) {
    return family(name, help, "gauge");
  }

  /// Adds one sample to the most recently declared family.
  PrometheusWriter& sample(const Labels& labels, double value);
  PrometheusWriter& sample(double value) { return sample({}, value); }

  /// The accumulated exposition text.
  const std::string& text() const { return out_; }

 private:
  PrometheusWriter& family(std::string_view name, std::string_view help,
                           std::string_view type);

  std::string out_;
  std::string currentName_;
};

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
std::string promEscape(std::string_view v);

}  // namespace dharma::gateway
