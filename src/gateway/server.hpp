#pragma once
/// \file server.hpp
/// \brief GatewayServer: the HTTP serving edge over a DharmaClient.
///
/// The ROADMAP's "serving edge" item: clients that speak HTTP — curl, wrk,
/// Prometheus, load balancers — reach the overlay through this server
/// instead of linking the C++ stack. The threading model keeps the PR 5/7
/// affinity rules intact:
///
///   event thread ── poll(): accept, read, parse, write, reap
///        │  parsed request (one in flight per connection)
///        ▼
///   worker pool ── route + handler: BLOCKING DharmaClient calls
///        │           (each call posts to the engine loop thread through
///        │            core::Runtime and waits — workers never touch
///        │            engine state directly, so the affinity checker
///        │            stays happy and the engine stays lock-free)
///        ▼
///   completion queue ──(self-pipe wake)──▶ event thread writes response
///
/// Because at most one request per connection is ever in flight, responses
/// are written strictly in request order — pipelining correctness without
/// response re-sequencing. Backpressure is explicit and typed: when the
/// number of dispatched-but-unanswered requests reaches
/// GatewayConfig::maxPendingRequests, new requests are answered 503
/// {"error":"overloaded"} on the event thread without ever reaching the
/// pool, and during a graceful drain (stop(), SIGTERM in the daemon) new
/// requests get 503 {"error":"draining"} + Connection: close while
/// in-flight ones finish.

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/client.hpp"
#include "gateway/connection.hpp"
#include "gateway/http.hpp"
#include "gateway/router.hpp"
#include "obs/registry.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace dharma::obs {
class Histogram;
class MetricsSampler;
class TraceRing;
}  // namespace dharma::obs

namespace dharma::gateway {

/// Why start() failed. Startup failures are typed so daemons can print one
/// crisp line and exit 2 instead of aborting on an exception (the
/// bind-error contract shared with UdpTransport — see net::TransportError).
enum class StartError : u8 {
  kNone = 0,        ///< listening
  kBadAddress,      ///< bind host is not a valid IPv4 literal
  kSocketFailed,    ///< socket()/pipe() failed
  kBindInUse,       ///< bind(): EADDRINUSE — port already taken
  kBindFailed,      ///< bind(): any other errno
  kListenFailed,    ///< listen() failed
};

const char* startErrorName(StartError e);

struct GatewayConfig {
  std::string bindHost = "127.0.0.1";
  u16 port = 0;  ///< 0 = ephemeral; port() reports the bound port
  usize workers = 4;
  usize maxConnections = 256;
  /// Dispatched-but-unanswered request cap across all connections; beyond
  /// it new requests are refused with a typed 503 on the event thread.
  usize maxPendingRequests = 128;
  /// Per-connection parsed-request queue cap; a connection at the cap stops
  /// being read (TCP backpressure) until dispatches drain it.
  usize maxQueuedPerConnection = 16;
  u32 defaultSearchSteps = 1;  ///< GET /search without &steps=
  u32 maxSearchSteps = 8;      ///< cap on &steps= (400 above it)
  u64 drainDeadlineMs = 5000;  ///< graceful-stop budget before force close
  HttpLimits limits;
};

/// Gateway-local request counters. Snapshot via counters(); rendered by
/// GET /stats (JSON) and GET /metrics (Prometheus text).
struct GatewayCounters {
  u64 connectionsAccepted = 0;
  u64 connectionsClosed = 0;
  u64 connectionsRejected = 0;  ///< refused at maxConnections
  u64 requestsDispatched = 0;   ///< handed to the worker pool
  u64 responses = 0;            ///< responses queued for write
  u64 parseErrors = 0;          ///< connections failed by the parser
  u64 overloadRejected = 0;     ///< 503 {"error":"overloaded"}
  u64 drainRejected = 0;        ///< 503 {"error":"draining"}
  u64 bytesIn = 0;
  u64 bytesOut = 0;
  /// route label -> status -> responses (includes the synthesized 4xx/503).
  std::map<std::string, std::map<u16, u64>> byRouteStatus;
};

class GatewayServer {
 public:
  /// Engine-side taps, all optional. Both callbacks run on WORKER threads —
  /// implementations that read engine loop-thread state must post through
  /// the runtime (see examples/dharma_gateway.cpp).
  struct Deps {
    core::DharmaClient* client = nullptr;  ///< required for the data routes
    /// Process-wide metrics registry backing GET /metrics and the /stats
    /// "metrics" block. The gateway mirrors its own counters into it and
    /// registers its per-route latency histograms there. Null = the server
    /// owns a private registry (gateway families only). Must outlive the
    /// server.
    obs::MetricsRegistry* metrics = nullptr;
    /// Called (worker thread) right before a /metrics or /stats render:
    /// mirror engine-side counters into the registry. Implementations that
    /// read engine loop-thread state must post through the runtime.
    std::function<void()> collectEngine;
    /// Returns a JSON object (braces included) merged into /stats under
    /// "engine". Empty result omits the key.
    std::function<std::string()> engineStatsJson;
    /// Sampler whose in-memory ring feeds the /stats "samples" array.
    obs::MetricsSampler* sampler = nullptr;
    /// Trace ring behind GET /debug/traces (404 "tracing-disabled" unset).
    obs::TraceRing* traces = nullptr;
  };

  GatewayServer(GatewayConfig cfg, Deps deps);
  ~GatewayServer();  ///< stop()s if still running

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  /// Binds, listens and spawns the event thread + worker pool. Returns
  /// kNone on success; any other value leaves the server stopped with
  /// errno detail in startDetail().
  StartError start();

  /// errno/description detail for a failed start() ("bind: address in use").
  const std::string& startDetail() const { return startDetail_; }

  /// Graceful drain: stop accepting, answer queued requests, flush writes,
  /// force-close at the drain deadline, join all threads. Idempotent.
  void stop();

  bool running() const { return running_; }

  /// Bound port (resolves ephemeral port 0); valid after start().
  u16 port() const { return boundPort_; }

  GatewayCounters counters() const EXCLUDES(statsMu_);

  /// Mirrors the current gateway counters into the metrics registry — what
  /// /metrics and /stats do before rendering. Callable from any thread;
  /// the daemons' sampler collect hook uses it so periodic samples carry
  /// fresh dharma_gateway_* values too.
  void publishMetrics() EXCLUDES(statsMu_) { syncRegistry(counters()); }

  const GatewayConfig& config() const { return cfg_; }

 private:
  struct Dispatch {
    u64 connId = 0;
    HttpRequest req;
  };
  struct Completion {
    u64 connId = 0;
    std::string bytes;
    bool close = false;
    const char* routeLabel = "";
    u16 status = 0;
  };

  void eventLoop();
  void acceptReady();
  void readReady(Connection& c);
  void dispatchReady(Connection& c) EXCLUDES(statsMu_);
  void drainCompletions() EXCLUDES(cqMu_);
  /// Synthesizes + queues a response on the event thread (4xx/503 paths).
  void respondNow(Connection& c, HttpResponse resp, const char* routeLabel)
      EXCLUDES(statsMu_);
  void recordResponse(const char* routeLabel, u16 status, usize bytes)
      EXCLUDES(statsMu_);
  void wake();

  /// Worker-side: route + handler, blocking client calls. Pure function of
  /// the request — all mutable state it touches is the client's, which
  /// serialises on the engine loop thread.
  HttpResponse handle(const HttpRequest& req, const char** routeLabel);
  HttpResponse handlePut(const RouteMatch& m, const HttpRequest& req);
  HttpResponse handlePostTags(const RouteMatch& m, const HttpRequest& req);
  HttpResponse handleSearch(const HttpRequest& req);
  HttpResponse handleResolve(const RouteMatch& m);
  HttpResponse handleStats() EXCLUDES(statsMu_);
  HttpResponse handleMetrics() EXCLUDES(statsMu_);
  HttpResponse handleDebugTraces();

  /// Mirrors \p g into the registry's dharma_gateway_* counter families
  /// (Counter::set — the struct under statsMu_ stays the source of truth,
  /// so /stats and /metrics can never drift apart).
  void syncRegistry(const GatewayCounters& g);
  /// Per-route latency histogram handle; registers on first use for labels
  /// outside the pre-registered route table.
  obs::Histogram& routeHistogram(const char* label);

  GatewayConfig cfg_;
  Deps deps_;

  /// Fallback registry when Deps::metrics is null; registry_ points at
  /// whichever one is live.
  std::unique_ptr<obs::MetricsRegistry> ownedRegistry_;
  obs::MetricsRegistry* registry_ = nullptr;
  /// Pre-registered handles for the scalar dharma_gateway_* counters (same
  /// order as GatewayCounters' fields).
  obs::Counter* regAccepted_ = nullptr;
  obs::Counter* regClosed_ = nullptr;
  obs::Counter* regConnRejected_ = nullptr;
  obs::Counter* regRequests_ = nullptr;
  obs::Counter* regParseErrors_ = nullptr;
  obs::Counter* regOverload_ = nullptr;
  obs::Counter* regDrain_ = nullptr;
  obs::Counter* regBytesIn_ = nullptr;
  obs::Counter* regBytesOut_ = nullptr;
  /// route label -> latency histogram (filled in the constructor for every
  /// RouteId; guarded additions for synthetic labels go through mapMu_).
  mutable Mutex histMapMu_;
  std::map<std::string, obs::Histogram*, std::less<>> routeHist_
      GUARDED_BY(histMapMu_);

  int listenFd_ = -1;
  int wakePipe_[2] = {-1, -1};
  u16 boundPort_ = 0;
  std::string startDetail_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  bool stopped_ = false;  ///< stop() ran to completion (main thread only)

  std::thread eventThread_;
  std::unique_ptr<ThreadPool> pool_;

  // --- event-thread-only state ---
  std::map<u64, std::unique_ptr<Connection>> conns_;
  u64 nextConnId_ = 1;
  usize inFlightTotal_ = 0;  ///< dispatched-but-unanswered requests

  mutable Mutex cqMu_;
  std::vector<Completion> completions_ GUARDED_BY(cqMu_);

  mutable Mutex statsMu_;
  GatewayCounters counters_ GUARDED_BY(statsMu_);
};

/// Maps an OpError onto its HTTP status (404 for kNotFound, 503 for the
/// availability failures) — the error-body token is opErrorToken().
u16 httpStatusFor(core::OpError e);

/// Stable lower-kebab token for the JSON error body ("not-found", ...).
const char* opErrorToken(core::OpError e);

/// {"error":"<token>","detail":"<detail>"} with proper escaping.
std::string errorBody(std::string_view token, std::string_view detail);

}  // namespace dharma::gateway
