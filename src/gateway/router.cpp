#include "gateway/router.hpp"

namespace dharma::gateway {

const char* routeName(RouteId id) {
  switch (id) {
    case RouteId::kPutResource: return "put_resource";
    case RouteId::kPostTags: return "post_tags";
    case RouteId::kSearch: return "search";
    case RouteId::kResolve: return "resolve";
    case RouteId::kStats: return "stats";
    case RouteId::kMetrics: return "metrics";
    case RouteId::kDebugTraces: return "debug_traces";
    case RouteId::kNotFound: return "not_found";
    case RouteId::kMethodNotAllowed: return "method_not_allowed";
    case RouteId::kBadRequest: return "bad_request";
  }
  return "unknown";
}

namespace {

RouteMatch methodNotAllowed(const char* allow) {
  RouteMatch m;
  m.id = RouteId::kMethodNotAllowed;
  m.allow = allow;
  return m;
}

RouteMatch badRequest(const char* reason) {
  RouteMatch m;
  m.id = RouteId::kBadRequest;
  m.badReason = reason;
  return m;
}

/// Decodes one path segment into m.param; empty or undecodable segments
/// become kBadRequest.
RouteMatch withParam(RouteId id, std::string_view rawSegment) {
  if (rawSegment.empty()) return badRequest("empty-path-parameter");
  auto decoded = percentDecode(rawSegment);
  if (!decoded) return badRequest("bad-percent-encoding");
  RouteMatch m;
  m.id = id;
  m.param = std::move(*decoded);
  return m;
}

}  // namespace

RouteMatch route(std::string_view method, std::string_view path) {
  // Fixed paths first.
  if (path == "/stats") {
    if (method == "GET") return RouteMatch{RouteId::kStats, {}, "", ""};
    return methodNotAllowed("GET");
  }
  if (path == "/metrics") {
    if (method == "GET") return RouteMatch{RouteId::kMetrics, {}, "", ""};
    return methodNotAllowed("GET");
  }
  if (path == "/debug/traces") {
    if (method == "GET") return RouteMatch{RouteId::kDebugTraces, {}, "", ""};
    return methodNotAllowed("GET");
  }
  if (path == "/search") {
    if (method == "GET") return RouteMatch{RouteId::kSearch, {}, "", ""};
    return methodNotAllowed("GET");
  }

  constexpr std::string_view kResolve = "/resolve/";
  if (path.rfind(kResolve, 0) == 0) {
    std::string_view rest = path.substr(kResolve.size());
    if (rest.find('/') != std::string_view::npos) {
      return RouteMatch{};  // deeper paths are not a thing: 404
    }
    if (method != "GET") return methodNotAllowed("GET");
    return withParam(RouteId::kResolve, rest);
  }

  constexpr std::string_view kResources = "/resources/";
  if (path.rfind(kResources, 0) == 0) {
    std::string_view rest = path.substr(kResources.size());
    usize slash = rest.find('/');
    if (slash == std::string_view::npos) {
      if (method != "PUT") return methodNotAllowed("PUT");
      return withParam(RouteId::kPutResource, rest);
    }
    if (rest.substr(slash) == "/tags") {
      if (method != "POST") return methodNotAllowed("POST");
      return withParam(RouteId::kPostTags, rest.substr(0, slash));
    }
    return RouteMatch{};  // /resources/{r}/<anything-else>: 404
  }

  return RouteMatch{};  // kNotFound
}

}  // namespace dharma::gateway
