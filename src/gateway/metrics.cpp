#include "gateway/metrics.hpp"

#include <cstdio>

namespace dharma::gateway {

std::string promEscape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

PrometheusWriter& PrometheusWriter::family(std::string_view name,
                                           std::string_view help,
                                           std::string_view type) {
  currentName_.assign(name);
  out_ += "# HELP ";
  out_ += currentName_;
  out_ += ' ';
  out_.append(help);
  out_ += "\n# TYPE ";
  out_ += currentName_;
  out_ += ' ';
  out_.append(type);
  out_ += '\n';
  return *this;
}

PrometheusWriter& PrometheusWriter::sample(const Labels& labels,
                                           double value) {
  out_ += currentName_;
  if (!labels.empty()) {
    out_ += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out_ += ',';
      first = false;
      out_ += k;
      out_ += "=\"";
      out_ += promEscape(v);
      out_ += '"';
    }
    out_ += '}';
  }
  // %.17g round-trips doubles and renders integral values without noise.
  char buf[48];
  std::snprintf(buf, sizeof(buf), " %.17g\n", value);
  out_ += buf;
  return *this;
}

}  // namespace dharma::gateway
