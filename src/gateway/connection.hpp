#pragma once
/// \file connection.hpp
/// \brief Per-connection state machine for the gateway's HTTP server.
///
/// One Connection owns one accepted TCP socket and everything framed on
/// it: the incremental HttpParser, the queue of parsed-but-unserved
/// pipelined requests, the outbound byte buffer, and the close/drain
/// flags. It is a pure I/O object — no routing, no handlers, no worker
/// knowledge — and it is owned and driven exclusively by the server's
/// event thread, so it needs no locks.
///
/// Lifecycle invariants the server relies on:
///
///  - At most ONE request per connection is in flight with a worker at a
///    time (`requestInFlight`). Pipelined requests queue here and are
///    dispatched strictly in arrival order, so responses are written in
///    request order — the HTTP/1.1 pipelining contract — without any
///    response re-sequencing machinery.
///  - A parse error is terminal: framing is unrecoverable, so the server
///    queues one typed error response and sets close-after-drain.
///  - Half-close is honoured: when the peer shuts down its write side
///    (recv returns 0) the connection stops reading but keeps flushing
///    queued responses before closing.

#include <deque>
#include <string>

#include "gateway/http.hpp"

namespace dharma::gateway {

class Connection {
 public:
  /// Takes ownership of \p fd (closed in the destructor). The socket must
  /// already be non-blocking.
  Connection(u64 id, int fd, HttpLimits limits);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  u64 id() const { return id_; }
  int fd() const { return fd_; }

  struct ReadOutcome {
    usize bytes = 0;         ///< bytes consumed from the socket this call
    bool peerClosed = false; ///< recv saw EOF (half-close)
    bool ioError = false;    ///< recv failed hard (connection reset etc.)
  };

  /// Drains the socket (until EWOULDBLOCK / EOF / error), feeding the
  /// parser and collecting completed pipelined requests. Emits the
  /// interim "100 Continue" when a request with Expect: 100-continue has
  /// finished its headers.
  ReadOutcome readSome();

  /// Parser hit a terminal error (invalid framing or over-limit input).
  bool parseError() const { return parser_.state() == ParseState::kError; }
  u16 parseErrorStatus() const { return parser_.errorStatus(); }
  const char* parseErrorReason() const { return parser_.errorReason(); }

  /// Pops the next request in arrival order. Returns false when none is
  /// queued or one is already in flight with a worker.
  bool popRequest(HttpRequest& out);

  bool requestInFlight() const { return inFlight_; }
  void setInFlight(bool v) { inFlight_ = v; }

  /// Parsed requests waiting behind the in-flight one.
  usize queuedRequests() const { return pending_.size(); }

  /// Appends \p bytes to the outbound buffer (flush() actually writes).
  void queueWrite(std::string bytes);

  /// Writes as much of the outbound buffer as the socket accepts.
  /// Returns false on a fatal write error (connection is dead).
  bool flush();

  bool wantsWrite() const { return txPos_ < tx_.size(); }

  /// Stop accepting new requests; close once the outbound buffer drains.
  void setCloseAfterDrain() { closeAfterDrain_ = true; }
  bool closeAfterDrain() const { return closeAfterDrain_; }

  /// Socket is unusable (reset, fatal write error): buffered writes and
  /// queued requests are dropped, queueWrite becomes a no-op, and drained()
  /// waits only for the worker to hand back any in-flight request.
  void markDead();
  bool dead() const { return dead_; }

  /// Peer half-closed its sending side; nothing more will be read.
  bool readClosed() const { return readClosed_; }

  /// True when the connection has nothing left to do and may be destroyed:
  /// close requested (or peer gone) with all writes flushed and no request
  /// still with a worker.
  bool drained() const {
    if (dead_) return !inFlight_;
    return (closeAfterDrain_ || readClosed_) && !wantsWrite() && !inFlight_ &&
           pending_.empty();
  }

  /// Requests completed on this connection (keep-alive reuse telemetry).
  u64 served = 0;

  /// Event-thread bookkeeping: the parse-error response has been queued.
  /// (It is deferred until earlier pipelined responses have been written,
  /// preserving response order.)
  bool errorResponded = false;

 private:
  u64 id_;
  int fd_;
  HttpParser parser_;
  std::deque<HttpRequest> pending_;
  std::string tx_;
  usize txPos_ = 0;
  bool inFlight_ = false;
  bool closeAfterDrain_ = false;
  bool readClosed_ = false;
  bool dead_ = false;
  bool continueSent_ = false;  ///< 100 Continue emitted for current request
};

}  // namespace dharma::gateway
