#include "gateway/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

namespace dharma::gateway {

namespace {

std::string lowered(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view trimmed(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::optional<std::string_view> ClientResponse::header(
    std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return std::string_view(v);
  }
  return std::nullopt;
}

HttpClient::~HttpClient() { close(); }

void HttpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
}

bool HttpClient::connect(const std::string& host, u16 port, int timeoutMs) {
  close();
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) return false;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  timeval tv{};
  tv.tv_sec = timeoutMs / 1000;
  tv.tv_usec = (timeoutMs % 1000) * 1000;
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    close();
    return false;
  }
  return true;
}

bool HttpClient::sendRaw(std::string_view bytes) {
  if (fd_ < 0) return false;
  usize off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close();
      return false;
    }
    off += static_cast<usize>(n);
  }
  return true;
}

std::optional<ClientResponse> HttpClient::request(
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& contentType) {
  std::string req = method;
  req += ' ';
  req += target;
  req += " HTTP/1.1\r\nHost: gateway\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    req += "Content-Length: ";
    req += std::to_string(body.size());
    req += "\r\n";
    if (!contentType.empty()) {
      req += "Content-Type: ";
      req += contentType;
      req += "\r\n";
    }
  }
  req += "\r\n";
  req += body;
  if (!sendRaw(req)) return std::nullopt;
  return readResponse();
}

std::optional<ClientResponse> HttpClient::readResponse() {
  if (fd_ < 0) return std::nullopt;
  for (;;) {  // loop to skip interim 1xx responses
    // Accumulate until the header terminator.
    usize headerEnd;
    while ((headerEnd = rx_.find("\r\n\r\n")) == std::string::npos) {
      char buf[8192];
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        close();
        return std::nullopt;
      }
      rx_.append(buf, static_cast<usize>(n));
    }

    ClientResponse resp;
    std::string_view head = std::string_view(rx_).substr(0, headerEnd);
    usize lineEnd = head.find("\r\n");
    std::string_view statusLine =
        head.substr(0, lineEnd == std::string_view::npos ? head.size()
                                                         : lineEnd);
    // "HTTP/1.1 NNN Reason"
    usize sp = statusLine.find(' ');
    if (sp == std::string_view::npos || statusLine.size() < sp + 4) {
      close();
      return std::nullopt;
    }
    resp.status = static_cast<u16>(
        std::atoi(std::string(statusLine.substr(sp + 1, 3)).c_str()));

    usize contentLength = 0;
    if (lineEnd != std::string_view::npos) {
      std::string_view rest = head.substr(lineEnd + 2);
      while (!rest.empty()) {
        usize e = rest.find("\r\n");
        std::string_view line =
            rest.substr(0, e == std::string_view::npos ? rest.size() : e);
        usize colon = line.find(':');
        if (colon != std::string_view::npos) {
          std::string name = lowered(trimmed(line.substr(0, colon)));
          std::string value(trimmed(line.substr(colon + 1)));
          if (name == "content-length") {
            contentLength = static_cast<usize>(
                std::strtoull(value.c_str(), nullptr, 10));
          }
          resp.headers.emplace_back(std::move(name), std::move(value));
        }
        if (e == std::string_view::npos) break;
        rest = rest.substr(e + 2);
      }
    }

    usize bodyStart = headerEnd + 4;
    while (rx_.size() < bodyStart + contentLength) {
      char buf[8192];
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        close();
        return std::nullopt;
      }
      rx_.append(buf, static_cast<usize>(n));
    }
    resp.body = rx_.substr(bodyStart, contentLength);
    rx_.erase(0, bodyStart + contentLength);

    if (resp.status >= 100 && resp.status < 200) continue;  // interim
    return resp;
  }
}

}  // namespace dharma::gateway
