#include "obs/sampler.hpp"

#include <cstdio>

namespace dharma::obs {

namespace {

void appendDouble(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Series ids contain quotes (name{k="v"}); escape for JSON keys.
std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string Sample::toJson() const {
  std::string out;
  out.reserve(1024);
  out += "{\"seq\":";
  out += std::to_string(seq);
  out += ",\"t_us\":";
  out += std::to_string(tUs);
  out += ",\"since_us\":";
  out += std::to_string(sinceLastUs);
  out += ",\"counters\":{";
  for (usize i = 0; i < counters.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += jsonEscape(counters[i].first);
    out += "\":";
    out += std::to_string(counters[i].second);
  }
  out += "},\"deltas\":{";
  for (usize i = 0; i < counters.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += jsonEscape(counters[i].first);
    out += "\":";
    out += std::to_string(deltas[i]);
  }
  out += "},\"gauges\":{";
  for (usize i = 0; i < gauges.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += jsonEscape(gauges[i].first);
    out += "\":";
    appendDouble(out, gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (usize i = 0; i < hists.size(); ++i) {
    const Hist& h = hists[i];
    if (i) out += ',';
    out += '"';
    out += jsonEscape(h.id);
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"p50\":";
    appendDouble(out, h.p50);
    out += ",\"p90\":";
    appendDouble(out, h.p90);
    out += ",\"p99\":";
    appendDouble(out, h.p99);
    out += ",\"max\":";
    out += std::to_string(h.max);
    out += '}';
  }
  out += "}}";
  return out;
}

MetricsSampler::MetricsSampler(net::Executor& exec, MetricsRegistry& registry,
                               SamplerConfig cfg)
    : exec_(exec), registry_(registry), cfg_(cfg), rng_(splitmix64(cfg.seed)) {}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void MetricsSampler::stop() {
  running_ = false;
  if (task_ != net::kNullTask) {
    exec_.cancel(task_);
    task_ = net::kNullTask;
  }
}

net::TimeUs MetricsSampler::nextDelay() {
  const double base = static_cast<double>(cfg_.intervalUs);
  const double jitter =
      (rng_.uniformDouble() * 2.0 - 1.0) * cfg_.jitterFrac * base;
  double d = base + jitter;
  if (d < 1.0) d = 1.0;
  return static_cast<net::TimeUs>(d);
}

void MetricsSampler::arm() {
  task_ = exec_.schedule(nextDelay(), [this] {
    task_ = net::kNullTask;
    if (!running_) return;
    tick();
    if (running_) arm();
  });
}

void MetricsSampler::tick() { (void)sampleNow(); }

Sample MetricsSampler::sampleNow() {
  if (collect_) collect_();

  const RegistrySnapshot snap = registry_.snapshot();
  Sample s;
  s.seq = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  s.tUs = exec_.now();
  s.sinceLastUs = haveLast_ ? s.tUs - lastTickUs_ : 0;
  lastTickUs_ = s.tUs;
  haveLast_ = true;

  s.counters.reserve(snap.counters.size());
  s.deltas.reserve(snap.counters.size());
  for (const auto& row : snap.counters) {
    auto it = prevCounters_.find(row.id);
    // A counter first seen this tick deltas from zero: registry counters
    // are monotonic from process start, so the full value IS the delta.
    const u64 prev = it == prevCounters_.end() ? 0 : it->second;
    s.counters.emplace_back(row.id, row.value);
    s.deltas.push_back(row.value >= prev ? row.value - prev : 0);
    prevCounters_[row.id] = row.value;
  }
  s.gauges.reserve(snap.gauges.size());
  for (const auto& row : snap.gauges) s.gauges.emplace_back(row.id, row.value);
  s.hists.reserve(snap.hists.size());
  for (const auto& row : snap.hists) {
    Sample::Hist h;
    h.id = row.id;
    h.count = row.hist.count();
    h.sum = row.hist.sum;
    h.p50 = row.hist.quantile(0.50);
    h.p90 = row.hist.quantile(0.90);
    h.p99 = row.hist.quantile(0.99);
    h.max = row.hist.maxValue;
    s.hists.push_back(std::move(h));
  }

  {
    MutexLock lk(mu_);
    ring_.push_back(s);
    while (ring_.size() > cfg_.ringCapacity) ring_.pop_front();
  }
  for (const auto& sink : sinks_) sink(s);
  return s;
}

std::vector<Sample> MetricsSampler::recent(usize n) const {
  MutexLock lk(mu_);
  const usize have = ring_.size();
  const usize take = n < have ? n : have;
  std::vector<Sample> out;
  out.reserve(take);
  for (usize i = have - take; i < have; ++i) out.push_back(ring_[i]);
  return out;
}

}  // namespace dharma::obs
