#pragma once
/// \file registry.hpp
/// \brief Process-wide metrics registry: counters, gauges, histograms.
///
/// The generalisation (and replacement) of the gateway-local
/// PrometheusWriter from PR 8: one registry instance per process owns
/// every metric family, every surface renders from it — Prometheus text
/// exposition for `/metrics` scrapes, a JSON snapshot for `/stats` and
/// the daemons' `stats-json` line command, and a structured snapshot the
/// MetricsSampler deltas and publishes periodically. Because all three
/// surfaces read the same registry, no counter is reachable from only one
/// of them.
///
/// Concurrency model: registration (counter()/gauge()/histogram()) takes
/// a mutex and is expected at construction/startup time; the returned
/// handles are stable for the registry's lifetime and their hot paths are
/// single relaxed atomics — safe from any thread, including the UDP
/// receive thread and gateway workers. Snapshots/renders take the mutex
/// only to walk the family list (registration is rare), then read each
/// atomic once.
///
/// Determinism: families render in registration order and series in
/// creation order, so a deterministic program (fixed registration order,
/// Simulator executor) produces byte-identical snapshots — the property
/// the sampler's bit-stable-per-seed contract rests on.

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace dharma::obs {

/// Label set for one series, in render order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. add() is the native path; set() exists for
/// mirroring an externally maintained monotonic counter (NodeCounters,
/// UdpStats, ...) into the registry at collection time.
class Counter {
 public:
  void add(u64 delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void set(u64 value) { v_.store(value, std::memory_order_relaxed); }
  u64 value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

/// Point-in-time value (queue depths, open connections, ...).
class Gauge {
 public:
  void set(double value) { v_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double prev = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(prev, prev + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Structured point-in-time copy of every series, in deterministic
/// (registration) order. Input to the sampler and the JSON render.
struct RegistrySnapshot {
  struct CounterRow {
    std::string id;  ///< full series id, e.g. name{k="v"}
    u64 value = 0;
  };
  struct GaugeRow {
    std::string id;
    double value = 0.0;
  };
  struct HistRow {
    std::string id;
    HistogramSnapshot hist;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistRow> hists;
};

/// See file comment. Handles returned by the factory methods are owned by
/// the registry and valid for its lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  /// Gets or creates the counter series (name, labels). The help string is
  /// recorded on first use of the family. Requesting an existing family
  /// under a different metric type throws std::logic_error — that is a
  /// registration bug, not a runtime condition.
  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {}) EXCLUDES(mu_);
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {}) EXCLUDES(mu_);
  Histogram& histogram(std::string_view name, std::string_view help,
                       Labels labels = {}) EXCLUDES(mu_);

  RegistrySnapshot snapshot() const EXCLUDES(mu_);

  /// Prometheus text exposition 0.0.4: HELP/TYPE per family, counter and
  /// gauge samples, and full `_bucket{le=...}`/`_sum`/`_count` histogram
  /// families with cumulative buckets.
  std::string renderPrometheus() const EXCLUDES(mu_);

  /// The same content as JSON:
  /// {"counters":{id:v},"gauges":{id:v},"histograms":{id:{count,sum,p50,
  /// p90,p99,max}}}. Deterministic ordering, suitable for `stats-json`
  /// and the gateway `/stats` extension.
  std::string renderJson() const EXCLUDES(mu_);

 private:
  enum class Type : u8 { kCounter, kGauge, kHistogram };

  struct Series {
    std::string labelsPart;  ///< rendered k="v",... without braces
    std::string id;          ///< name + {labelsPart} (or bare name)
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
  };

  struct Family {
    std::string name;
    std::string help;
    Type type;
    std::vector<std::unique_ptr<Series>> series;
  };

  Family& family(std::string_view name, std::string_view help, Type type)
      REQUIRES(mu_);
  Series& series(Family& f, Labels&& labels) REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<std::unique_ptr<Family>> families_ GUARDED_BY(mu_);
};

/// Escapes a label value per the exposition format (backslash, quote,
/// newline). Exposed for tests and the gateway's JSON escaping reuse.
std::string promEscape(std::string_view v);

}  // namespace dharma::obs
