#include "obs/histogram.hpp"

namespace dharma::obs {

u64 HistogramSnapshot::bucketUpperBound(usize b) {
  if (b + 1 >= kBucketCount) return ~0ULL;  // overflow bucket is +Inf
  return u64{1} << b;
}

u64 HistogramSnapshot::count() const {
  u64 total = 0;
  for (u64 c : buckets) total += c;
  return total;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (usize b = 0; b < kBucketCount; ++b) buckets[b] += other.buckets[b];
  sum += other.sum;
  if (other.maxValue > maxValue) maxValue = other.maxValue;
}

double HistogramSnapshot::quantile(double q) const {
  const u64 total = count();
  if (total == 0) return 0.0;
  if (q <= 0.0) return 0.0;
  if (q >= 1.0) return static_cast<double>(maxValue);

  // Rank of the target observation, 1-based: the smallest rank r such that
  // r/total >= q.
  u64 rank = static_cast<u64>(q * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;

  u64 cumulative = 0;
  for (usize b = 0; b < kBucketCount; ++b) {
    if (buckets[b] == 0) continue;
    const u64 before = cumulative;
    cumulative += buckets[b];
    if (cumulative < rank) continue;

    // Interpolate inside bucket b between its bounds, clamped to the
    // tracked maximum so the estimate never exceeds an observed value.
    const double lo = b == 0 ? 0.0 : static_cast<double>(u64{1} << (b - 1));
    double hi = b + 1 >= kBucketCount ? static_cast<double>(maxValue)
                                      : static_cast<double>(u64{1} << b);
    if (hi > static_cast<double>(maxValue)) hi = static_cast<double>(maxValue);
    if (hi < lo) return lo;
    const double frac = static_cast<double>(rank - before) /
                        static_cast<double>(buckets[b]);
    return lo + frac * (hi - lo);
  }
  return static_cast<double>(maxValue);
}

}  // namespace dharma::obs
