#include "obs/registry.hpp"

#include <cstdio>
#include <stdexcept>

namespace dharma::obs {

namespace {

/// RFC 8259 string escaping for the JSON render (series ids contain
/// quotes: name{k="v"}).
std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// %.17g round-trips doubles and renders integral values without noise —
/// the same convention PR 8's PrometheusWriter used.
void appendDouble(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

const char* typeName(u8 t) {
  switch (t) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

std::string promEscape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Family& MetricsRegistry::family(std::string_view name,
                                                 std::string_view help,
                                                 Type type) {
  for (auto& f : families_) {
    if (f->name == name) {
      if (f->type != type) {
        throw std::logic_error("metric family '" + f->name +
                               "' re-registered under a different type");
      }
      return *f;
    }
  }
  auto f = std::make_unique<Family>();
  f->name.assign(name);
  f->help.assign(help);
  f->type = type;
  families_.push_back(std::move(f));
  return *families_.back();
}

MetricsRegistry::Series& MetricsRegistry::series(Family& f, Labels&& labels) {
  std::string part;
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) part += ',';
    first = false;
    part += k;
    part += "=\"";
    part += promEscape(v);
    part += '"';
  }
  for (auto& s : f.series) {
    if (s->labelsPart == part) return *s;
  }
  auto s = std::make_unique<Series>();
  s->labelsPart = part;
  s->id = f.name;
  if (!part.empty()) {
    s->id += '{';
    s->id += part;
    s->id += '}';
  }
  f.series.push_back(std::move(s));
  return *f.series.back();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  Labels labels) {
  MutexLock lk(mu_);
  Series& s = series(family(name, help, Type::kCounter), std::move(labels));
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Labels labels) {
  MutexLock lk(mu_);
  Series& s = series(family(name, help, Type::kGauge), std::move(labels));
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help, Labels labels) {
  MutexLock lk(mu_);
  Series& s = series(family(name, help, Type::kHistogram), std::move(labels));
  if (!s.hist) s.hist = std::make_unique<Histogram>();
  return *s.hist;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  MutexLock lk(mu_);
  RegistrySnapshot snap;
  for (const auto& f : families_) {
    for (const auto& s : f->series) {
      switch (f->type) {
        case Type::kCounter:
          snap.counters.push_back({s->id, s->counter->value()});
          break;
        case Type::kGauge:
          snap.gauges.push_back({s->id, s->gauge->value()});
          break;
        case Type::kHistogram:
          snap.hists.push_back({s->id, s->hist->snapshot()});
          break;
      }
    }
  }
  return snap;
}

std::string MetricsRegistry::renderPrometheus() const {
  MutexLock lk(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& f : families_) {
    out += "# HELP ";
    out += f->name;
    out += ' ';
    out += f->help;
    out += "\n# TYPE ";
    out += f->name;
    out += ' ';
    out += typeName(static_cast<u8>(f->type));
    out += '\n';
    for (const auto& s : f->series) {
      switch (f->type) {
        case Type::kCounter:
          out += f->name;
          if (!s->labelsPart.empty()) {
            out += '{';
            out += s->labelsPart;
            out += '}';
          }
          out += ' ';
          out += std::to_string(s->counter->value());
          out += '\n';
          break;
        case Type::kGauge:
          out += f->name;
          if (!s->labelsPart.empty()) {
            out += '{';
            out += s->labelsPart;
            out += '}';
          }
          out += ' ';
          appendDouble(out, s->gauge->value());
          out += '\n';
          break;
        case Type::kHistogram: {
          const HistogramSnapshot h = s->hist->snapshot();
          u64 cumulative = 0;
          for (usize b = 0; b < HistogramSnapshot::kBucketCount; ++b) {
            cumulative += h.buckets[b];
            out += f->name;
            out += "_bucket{";
            if (!s->labelsPart.empty()) {
              out += s->labelsPart;
              out += ',';
            }
            out += "le=\"";
            if (b + 1 >= HistogramSnapshot::kBucketCount) {
              out += "+Inf";
            } else {
              out += std::to_string(HistogramSnapshot::bucketUpperBound(b));
            }
            out += "\"} ";
            out += std::to_string(cumulative);
            out += '\n';
          }
          out += f->name;
          out += "_sum";
          if (!s->labelsPart.empty()) {
            out += '{';
            out += s->labelsPart;
            out += '}';
          }
          out += ' ';
          out += std::to_string(h.sum);
          out += '\n';
          out += f->name;
          out += "_count";
          if (!s->labelsPart.empty()) {
            out += '{';
            out += s->labelsPart;
            out += '}';
          }
          out += ' ';
          out += std::to_string(cumulative);
          out += '\n';
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::renderJson() const {
  const RegistrySnapshot snap = snapshot();
  std::string out;
  out.reserve(2048);
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& row : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += jsonEscape(row.id);
    out += "\":";
    out += std::to_string(row.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& row : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += jsonEscape(row.id);
    out += "\":";
    appendDouble(out, row.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& row : snap.hists) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += jsonEscape(row.id);
    out += "\":{\"count\":";
    out += std::to_string(row.hist.count());
    out += ",\"sum\":";
    out += std::to_string(row.hist.sum);
    out += ",\"p50\":";
    appendDouble(out, row.hist.quantile(0.50));
    out += ",\"p90\":";
    appendDouble(out, row.hist.quantile(0.90));
    out += ",\"p99\":";
    appendDouble(out, row.hist.quantile(0.99));
    out += ",\"max\":";
    out += std::to_string(row.hist.maxValue);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace dharma::obs
