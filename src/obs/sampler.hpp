#pragma once
/// \file sampler.hpp
/// \brief Periodic, executor-scheduled metrics sampler with pluggable sinks.
///
/// The push half of the observability layer (the Prometheus `/metrics`
/// endpoint is the pull half): a MetricsSampler rides the process's
/// Executor — the same scheduling seam MaintenanceManager uses — and on a
/// jittered interval (deterministic per seed, so simulator runs replay
/// bit-identically) snapshots the MetricsRegistry, computes per-counter
/// deltas against the previous tick, and publishes the resulting Sample
/// to every registered sink. The lokinet `llarp/metrics/` periodic
/// publisher is the shape being reproduced: collectors tick on the event
/// loop, publishers fan the batch out to backends.
///
/// Built-in consumers:
///  - a bounded in-memory ring, queryable at any time (the daemons'
///    `stats-json recent` surface and the gateway `/stats` extension);
///  - whatever sinks the caller adds — the daemons attach a JSONL file
///    sink behind `--metrics-out PATH --stats-interval-ms N`.
///
/// Threading: start(), stop() and the tick all run on the executor's loop
/// thread (daemons post them through the runtime); sinks and the collect
/// hook are invoked there too. recent() is safe from any thread — the
/// ring is the one mutex-guarded piece, because gateway workers read it
/// while the loop writes it.

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/executor.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace dharma::obs {

struct SamplerConfig {
  net::TimeUs intervalUs = 1'000'000;  ///< base sampling period
  /// Each tick is scheduled at interval ± jitterFrac·interval, drawn from
  /// the seeded Rng — decorrelates fleets that booted together while
  /// staying reproducible.
  double jitterFrac = 0.1;
  u64 seed = 0;
  usize ringCapacity = 120;  ///< samples retained for recent()
};

/// One published sample: absolute counter values plus deltas vs the
/// previous tick, gauge values, and summarised histograms.
struct Sample {
  u64 seq = 0;               ///< 1-based tick number
  net::TimeUs tUs = 0;       ///< executor time at snapshot
  net::TimeUs sinceLastUs = 0;  ///< 0 on the first tick

  /// Counter ids in registry (registration) order with absolute values;
  /// deltas[i] corresponds to counters[i] and is vs the previous sample
  /// (absolute value on the first tick a series is seen).
  std::vector<std::pair<std::string, u64>> counters;
  std::vector<u64> deltas;
  std::vector<std::pair<std::string, double>> gauges;

  struct Hist {
    std::string id;
    u64 count = 0;
    u64 sum = 0;
    double p50 = 0, p90 = 0, p99 = 0;
    u64 max = 0;
  };
  std::vector<Hist> hists;

  /// One JSONL line, fixed key order, deterministic for deterministic
  /// inputs — the unit the file sink writes and the determinism tests
  /// compare byte-for-byte.
  std::string toJson() const;
};

class MetricsSampler {
 public:
  using Sink = std::function<void(const Sample&)>;

  MetricsSampler(net::Executor& exec, MetricsRegistry& registry,
                 SamplerConfig cfg = {});
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Hook invoked on the loop thread right before each snapshot — where
  /// daemons mirror loop-owned counter structs (NodeCounters, client
  /// counters, UdpStats) into the registry.
  void setCollect(std::function<void()> collect) { collect_ = std::move(collect); }

  void addSink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Schedules the first tick. Call on the loop thread (or before the
  /// executor runs). No-op if already running.
  void start();

  /// Cancels the pending tick. Call on the loop thread (or after the
  /// executor stopped). Idempotent.
  void stop();

  /// Takes one sample immediately (collect + snapshot + ring + sinks)
  /// without touching the schedule — the daemons' `stats-json` command
  /// uses this for an on-demand reading.
  Sample sampleNow();

  /// Most recent \p n samples, oldest first. Thread-safe.
  std::vector<Sample> recent(usize n) const EXCLUDES(mu_);

  /// Ticks taken so far (scheduled + on-demand).
  u64 ticks() const { return ticks_.load(std::memory_order_relaxed); }

  const SamplerConfig& config() const { return cfg_; }

 private:
  void tick();
  void arm();
  net::TimeUs nextDelay();

  net::Executor& exec_;
  MetricsRegistry& registry_;
  SamplerConfig cfg_;
  Rng rng_;
  std::function<void()> collect_;
  std::vector<Sink> sinks_;
  net::TaskId task_ = net::kNullTask;
  bool running_ = false;
  net::TimeUs lastTickUs_ = 0;
  bool haveLast_ = false;
  std::unordered_map<std::string, u64> prevCounters_;
  std::atomic<u64> ticks_{0};

  mutable Mutex mu_;
  std::deque<Sample> ring_ GUARDED_BY(mu_);
};

}  // namespace dharma::obs
