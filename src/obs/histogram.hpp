#pragma once
/// \file histogram.hpp
/// \brief Lock-free log-bucketed latency histogram.
///
/// The recording path is the whole point: one bucket index computation
/// (a bit_width), two relaxed fetch_adds and a relaxed CAS max — cheap
/// enough to sit on every client op, every RPC service path and every
/// gateway route in Release builds. Writers never block each other and
/// never block readers; snapshot() assembles a consistent-enough view by
/// reading each atomic once (counts recorded concurrently with a snapshot
/// may land on either side — the usual histogram contract).
///
/// Buckets are powers of two: bucket b counts values in (2^(b-1), 2^b],
/// with bucket 0 covering {0, 1} and the last bucket acting as +Inf
/// overflow. For microsecond latencies that spans 1 µs .. ~67 s before
/// overflow, with ≤ 2x relative error per bucket — the same shape
/// Prometheus client libraries use for exponential buckets, so the
/// exposition maps 1:1 onto `_bucket{le="..."}` families.
///
/// Quantiles are derived from a snapshot by rank-walking the cumulative
/// counts and interpolating linearly inside the target bucket; p100 is the
/// exact tracked maximum. Snapshots merge associatively (bucket-wise adds,
/// max of maxes), so per-shard histograms can be aggregated into fleet
/// views without losing anything but intra-bucket resolution.

#include <array>
#include <atomic>
#include <bit>

#include "util/types.hpp"

namespace dharma::obs {

/// Point-in-time copy of a Histogram: plain integers, freely copyable,
/// mergeable, and the input to quantile derivation and text exposition.
struct HistogramSnapshot {
  /// Buckets 0..26 have upper bound 2^b (1 µs .. ~67 s when recording
  /// microseconds); bucket 27 is the +Inf overflow bucket.
  static constexpr usize kBucketCount = 28;

  std::array<u64, kBucketCount> buckets{};  ///< non-cumulative counts
  u64 sum = 0;                              ///< sum of recorded values
  u64 maxValue = 0;                         ///< largest recorded value

  /// Inclusive upper bound of bucket \p b (2^b), or u64 max for the
  /// overflow bucket.
  static u64 bucketUpperBound(usize b);

  /// Total recorded observations (sum over buckets). Prometheus `_count`
  /// and the `le="+Inf"` cumulative bucket are both exactly this.
  u64 count() const;

  /// Bucket-wise accumulate: afterwards this snapshot describes the union
  /// of both observation streams. Associative and commutative.
  void merge(const HistogramSnapshot& other);

  /// Quantile estimate for \p q in [0, 1]: rank-walk the buckets, linear
  /// interpolation inside the target bucket, clamped to maxValue (so
  /// quantile(1.0) == maxValue exactly). Returns 0 on an empty snapshot.
  double quantile(double q) const;
};

/// Lock-free histogram; see file comment for the bucket layout. All
/// methods are safe to call concurrently from any thread.
class Histogram {
 public:
  static constexpr usize kBucketCount = HistogramSnapshot::kBucketCount;

  /// Records one observation. Wait-free apart from the bounded CAS loop
  /// maintaining the maximum.
  void record(u64 value) {
    buckets_[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    u64 prev = max_.load(std::memory_order_relaxed);
    while (prev < value && !max_.compare_exchange_weak(
                               prev, value, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    for (usize b = 0; b < kBucketCount; ++b) {
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    s.maxValue = max_.load(std::memory_order_relaxed);
    return s;
  }

  /// Smallest b with 2^b >= value, clamped into the overflow bucket.
  static usize bucketIndex(u64 value) {
    if (value <= 1) return 0;
    usize b = static_cast<usize>(std::bit_width(value - 1));
    return b < kBucketCount ? b : kBucketCount - 1;
  }

 private:
  std::array<std::atomic<u64>, kBucketCount> buckets_{};
  std::atomic<u64> sum_{0};
  std::atomic<u64> max_{0};
};

}  // namespace dharma::obs
