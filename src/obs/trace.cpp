#include "obs/trace.hpp"

#include <string_view>

namespace dharma::obs {

namespace {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';  // control bytes have no business in trace labels
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

void TraceRing::push(TraceSpan span) {
  total_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lk(mu_);
  ring_.push_back(std::move(span));
  while (ring_.size() > cap_) ring_.pop_front();
}

std::vector<TraceSpan> TraceRing::recent(usize n) const {
  MutexLock lk(mu_);
  const usize have = ring_.size();
  const usize take = n < have ? n : have;
  std::vector<TraceSpan> out;
  out.reserve(take);
  for (usize i = have - take; i < have; ++i) out.push_back(ring_[i]);
  return out;
}

std::string TraceRing::renderJson(usize n) const {
  const std::vector<TraceSpan> spans = recent(n);
  std::string out;
  out.reserve(512 + spans.size() * 256);
  out += '[';
  for (usize i = 0; i < spans.size(); ++i) {
    const TraceSpan& sp = spans[i];
    if (i) out += ',';
    out += "{\"trace_id\":";
    out += std::to_string(sp.traceId);
    out += ",\"kind\":\"";
    out += jsonEscape(sp.kind);
    out += "\",\"label\":\"";
    out += jsonEscape(sp.label);
    out += "\",\"start_us\":";
    out += std::to_string(sp.startUs);
    out += ",\"end_us\":";
    out += std::to_string(sp.endUs);
    out += ",\"duration_us\":";
    out += std::to_string(sp.endUs >= sp.startUs ? sp.endUs - sp.startUs : 0);
    out += ",\"outcome\":\"";
    out += jsonEscape(sp.outcome);
    out += "\",\"events\":[";
    for (usize e = 0; e < sp.events.size(); ++e) {
      const TraceEvent& ev = sp.events[e];
      if (e) out += ',';
      out += "{\"t_us\":";
      out += std::to_string(ev.tUs);
      out += ",\"label\":\"";
      out += jsonEscape(ev.label);
      out += "\",\"detail\":\"";
      out += jsonEscape(ev.detail);
      out += "\"}";
    }
    out += "]}";
  }
  out += ']';
  return out;
}

}  // namespace dharma::obs
