#pragma once
/// \file trace.hpp
/// \brief Per-operation trace spans with a bounded completed-span ring.
///
/// Answers "why was this search slow" on a live fleet: when tracing is
/// enabled (a TraceRing is wired into DharmaConfig/NodeConfig), every
/// client operation allocates a trace id and builds a span — begin time,
/// timestamped events for each block op, retry and backoff, end time and
/// outcome — and the overlay node's iterative lookups append their own
/// spans under the SAME trace id with one event per RPC hop (sent,
/// replied, timed out). Completed spans land in the ring, newest
/// evicting oldest, exposed via the gateway's `GET /debug/traces` and the
/// daemons' `trace` line command.
///
/// Cost model: spans are built only when a ring is configured — with the
/// pointer unset the hot paths skip all of it (one branch). Span/event
/// construction happens on the engine loop thread; only the ring's
/// push/read are cross-thread (mutex-guarded), because gateway workers
/// render traces while the loop completes ops.

#include <atomic>
#include <deque>
#include <string>
#include <vector>

#include "net/executor.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace dharma::obs {

struct TraceEvent {
  net::TimeUs tUs = 0;
  std::string label;   ///< e.g. "rpc-sent", "retry", "cache-hit"
  std::string detail;  ///< free-form context (peer, key prefix, error)
};

/// One span: a client op ("client-op") or one overlay lookup ("lookup")
/// that ran under it. Spans sharing a traceId belong to one operation.
struct TraceSpan {
  u64 traceId = 0;
  std::string kind;
  std::string label;    ///< op class / lookup kind
  net::TimeUs startUs = 0;
  net::TimeUs endUs = 0;
  std::string outcome;  ///< "ok" or an error token
  std::vector<TraceEvent> events;

  void event(net::TimeUs t, std::string lbl, std::string detail = {}) {
    events.push_back(TraceEvent{t, std::move(lbl), std::move(detail)});
  }
};

/// Bounded ring of completed spans. Thread-safe.
class TraceRing {
 public:
  explicit TraceRing(usize capacity = 256) : cap_(capacity ? capacity : 1) {}

  /// Allocates a fresh nonzero trace id (0 means "untraced" everywhere).
  u64 nextTraceId() { return nextId_.fetch_add(1, std::memory_order_relaxed); }

  void push(TraceSpan span) EXCLUDES(mu_);

  /// Most recent \p n spans, oldest first.
  std::vector<TraceSpan> recent(usize n) const EXCLUDES(mu_);

  /// JSON array of the most recent \p n spans (oldest first), each with
  /// its events — the `GET /debug/traces` / `trace` command payload.
  std::string renderJson(usize n) const;

  /// Spans completed over the ring's lifetime (not just those retained).
  u64 totalCompleted() const { return total_.load(std::memory_order_relaxed); }

  usize capacity() const { return cap_; }

 private:
  usize cap_;
  std::atomic<u64> nextId_{1};
  std::atomic<u64> total_{0};
  mutable Mutex mu_;
  std::deque<TraceSpan> ring_ GUARDED_BY(mu_);
};

}  // namespace dharma::obs
