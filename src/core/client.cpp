#include "core/client.hpp"

#include <algorithm>

namespace dharma::core {

namespace {
using dht::BlockView;
using dht::GetOptions;
using dht::NodeId;
using dht::StoreToken;
using dht::TokenKind;

/// Join state for one protocol operation: counts outstanding block ops and
/// fires the user callback when the last one completes.
struct OpJoin {
  OpCost cost;
  usize remaining = 0;
  std::function<void(OpCost)> cb;

  void arm(usize n) { remaining = n; }
  void complete() {
    if (remaining == 0) return;
    if (--remaining == 0 && cb) cb(cost);
  }
};
}  // namespace

DharmaClient::DharmaClient(dht::DhtNetwork& net, usize nodeIdx,
                           DharmaConfig cfg, u64 seed)
    : net_(net), nodeIdx_(nodeIdx), cfg_(cfg), rng_(seed) {}

void DharmaClient::putBlock(const NodeId& key, std::vector<StoreToken> tokens,
                            OpCost& cost, std::function<void()> done) {
  ++cost.lookups;
  ++cost.puts;
  ++total_.lookups;
  ++total_.puts;
  node().putMany(key, std::move(tokens),
                 [done = std::move(done)](u32) { done(); });
}

void DharmaClient::getBlock(const NodeId& key, GetOptions opt, OpCost& cost,
                            std::function<void(std::optional<BlockView>)> done) {
  ++cost.lookups;
  ++cost.gets;
  ++total_.lookups;
  ++total_.gets;
  node().get(key, opt, std::move(done));
}

void DharmaClient::insertResourceAsync(const std::string& res,
                                       const std::string& uri,
                                       const std::vector<std::string>& tags,
                                       std::function<void(OpCost)> cb) {
  // Deduplicate the tag set, preserving order.
  std::vector<std::string> uniq;
  for (const auto& t : tags) {
    if (std::find(uniq.begin(), uniq.end(), t) == uniq.end()) uniq.push_back(t);
  }
  const usize m = uniq.size();

  auto join = std::make_shared<OpJoin>();
  join->cb = std::move(cb);
  join->arm(2 + 2 * m);
  auto done = [join] { join->complete(); };

  // r̃: the URI block.
  StoreToken uriTok;
  uriTok.kind = TokenKind::kSetPayload;
  uriTok.payload = uri;
  putBlock(blockKey(res, BlockType::kResourceUri), {uriTok}, join->cost, done);

  // r̄: one unit token per tag.
  std::vector<StoreToken> rbar;
  rbar.reserve(m);
  for (const auto& t : uniq) {
    rbar.push_back(StoreToken{TokenKind::kIncrement, t, 1, {}});
  }
  if (rbar.empty()) rbar.push_back(StoreToken{TokenKind::kTouch, {}, 1, {}});
  putBlock(blockKey(res, BlockType::kResourceTags), std::move(rbar), join->cost,
           done);

  // Per tag: t̄i (reverse edge) and t̂i (pairwise sims: every new pair
  // starts at 1 in both directions — III-B.1).
  for (usize i = 0; i < m; ++i) {
    putBlock(blockKey(uniq[i], BlockType::kTagResources),
             {StoreToken{TokenKind::kIncrement, res, 1, {}}}, join->cost, done);

    std::vector<StoreToken> that;
    for (usize j = 0; j < m; ++j) {
      if (j == i) continue;
      that.push_back(StoreToken{TokenKind::kIncrement, uniq[j], 1, {}});
    }
    if (that.empty()) that.push_back(StoreToken{TokenKind::kTouch, {}, 1, {}});
    putBlock(blockKey(uniq[i], BlockType::kTagNeighbors), std::move(that),
             join->cost, done);
  }
  if (m == 0) {
    // Degenerate insert (no tags): the two block writes above suffice.
  }
}

void DharmaClient::tagResourceAsync(const std::string& res,
                                    const std::string& tag,
                                    std::function<void(OpCost)> cb) {
  auto join = std::make_shared<OpJoin>();
  join->cb = std::move(cb);

  // Step 1 (1 lookup): read r̄ to learn Tags(r) and the weights u(τ,r).
  getBlock(blockKey(res, BlockType::kResourceTags), GetOptions{}, join->cost,
           [this, join, res, tag](std::optional<BlockView> viewOpt) {
             BlockView view = viewOpt.value_or(BlockView{});
             bool wasPresent = false;
             std::vector<dht::BlockEntry> others;
             for (const auto& e : view.entries) {
               if (e.name == tag) {
                 wasPresent = true;
               } else {
                 others.push_back(e);
               }
             }

             // Reverse-update subset (Approximation A): at most k random
             // co-tags; naive mode updates every co-tag.
             std::vector<usize> subset;
             if (cfg_.approximateA && others.size() > cfg_.k) {
               for (u32 i : rng_.sampleIndices(static_cast<u32>(others.size()),
                                               cfg_.k)) {
                 subset.push_back(i);
               }
             } else {
               for (usize i = 0; i < others.size(); ++i) subset.push_back(i);
             }

             // 3 block PUTs + |subset| reverse PUTs.
             join->arm(3 + subset.size());
             auto done = [join] { join->complete(); };

             // r̄ += (t, 1)
             putBlock(blockKey(res, BlockType::kResourceTags),
                      {StoreToken{TokenKind::kIncrement, tag, 1, {}}},
                      join->cost, done);
             // t̄ += (r, 1)
             putBlock(blockKey(tag, BlockType::kTagResources),
                      {StoreToken{TokenKind::kIncrement, res, 1, {}}},
                      join->cost, done);

             // t̂: forward arcs — only meaningful when t newly joins
             // Tags(r). A kTouch otherwise, keeping Table I's uniform
             // "4 + k" accounting (and ensuring the block exists).
             std::vector<StoreToken> forward;
             if (!wasPresent) {
               for (const auto& e : others) {
                 if (cfg_.approximateB) {
                   // Conditional increment evaluated at the replica:
                   // absent → 1 (Approximation B), present → +u(τ,r).
                   forward.push_back(StoreToken{TokenKind::kIncrementIfNewB,
                                                e.name, e.weight, {}});
                 } else {
                   forward.push_back(StoreToken{TokenKind::kIncrement, e.name,
                                                e.weight, {}});
                 }
               }
             }
             if (forward.empty()) {
               forward.push_back(StoreToken{TokenKind::kTouch, {}, 1, {}});
             }
             putBlock(blockKey(tag, BlockType::kTagNeighbors),
                      std::move(forward), join->cost, done);

             // τ̂ += (t, 1) for the chosen subset.
             for (usize i : subset) {
               putBlock(blockKey(others[i].name, BlockType::kTagNeighbors),
                        {StoreToken{TokenKind::kIncrement, tag, 1, {}}},
                        join->cost, done);
             }
           });
}

void DharmaClient::searchStepAsync(
    const std::string& tag, std::function<void(SearchStepResult, OpCost)> cb) {
  struct StepJoin {
    OpCost cost;
    SearchStepResult result;
    usize remaining = 2;
    std::function<void(SearchStepResult, OpCost)> cb;
    void complete() {
      if (--remaining == 0 && cb) cb(std::move(result), cost);
    }
  };
  auto join = std::make_shared<StepJoin>();
  join->cb = std::move(cb);

  GetOptions opt;
  opt.topN = cfg_.searchTopN;

  getBlock(blockKey(tag, BlockType::kTagNeighbors), opt, join->cost,
           [join](std::optional<BlockView> v) {
             if (v) {
               join->result.tagKnown = true;
               join->result.relatedTags = std::move(v->entries);
               join->result.tagsTruncated = v->truncated;
             }
             join->complete();
           });
  getBlock(blockKey(tag, BlockType::kTagResources), opt, join->cost,
           [join](std::optional<BlockView> v) {
             if (v) {
               join->result.resources = std::move(v->entries);
               join->result.resourcesTruncated = v->truncated;
             }
             join->complete();
           });
}

void DharmaClient::resolveUriAsync(
    const std::string& res,
    std::function<void(std::optional<std::string>, OpCost)> cb) {
  auto cost = std::make_shared<OpCost>();
  getBlock(blockKey(res, BlockType::kResourceUri), GetOptions{}, *cost,
           [cost, cb = std::move(cb)](std::optional<BlockView> v) {
             if (v && !v->payload.empty()) {
               cb(v->payload, *cost);
             } else {
               cb(std::nullopt, *cost);
             }
           });
}

OpCost DharmaClient::insertResource(const std::string& res,
                                    const std::string& uri,
                                    const std::vector<std::string>& tags) {
  return net_.await<OpCost>([&](std::function<void(OpCost)> done) {
    insertResourceAsync(res, uri, tags, std::move(done));
  });
}

OpCost DharmaClient::tagResource(const std::string& res,
                                 const std::string& tag) {
  return net_.await<OpCost>([&](std::function<void(OpCost)> done) {
    tagResourceAsync(res, tag, std::move(done));
  });
}

std::pair<SearchStepResult, OpCost> DharmaClient::searchStep(
    const std::string& tag) {
  using R = std::pair<SearchStepResult, OpCost>;
  return net_.await<R>([&](std::function<void(R)> done) {
    searchStepAsync(tag, [done = std::move(done)](SearchStepResult r, OpCost c) {
      done({std::move(r), c});
    });
  });
}

std::pair<std::optional<std::string>, OpCost> DharmaClient::resolveUri(
    const std::string& res) {
  using R = std::pair<std::optional<std::string>, OpCost>;
  return net_.await<R>([&](std::function<void(R)> done) {
    resolveUriAsync(res, [done = std::move(done)](std::optional<std::string> u,
                                                  OpCost c) {
      done({std::move(u), c});
    });
  });
}

}  // namespace dharma::core
