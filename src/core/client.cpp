#include "core/client.hpp"

#include <algorithm>
#include <map>

#include "net/affinity.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace dharma::core {

namespace {
using dht::BlockView;
using dht::GetOptions;
using dht::NodeId;
using dht::StoreToken;
using dht::TokenKind;

constexpr const char* kOpClassNames[] = {"insert", "tag", "search_step",
                                         "resolve"};

/// Returns a callable that invokes \p onAll after being called \p n times.
std::function<void()> makeJoin(usize n, std::function<void()> onAll) {
  auto remaining = std::make_shared<usize>(n);
  return [remaining, onAll = std::move(onAll)] {
    if (*remaining == 0) return;
    if (--*remaining == 0) onAll();
  };
}
}  // namespace

/// Shared state of one protocol operation: cost, replica telemetry, retry
/// count, and the most severe error any of its block ops recorded.
struct DharmaClient::OpState {
  OpCost cost;
  Replication rep;
  u32 retries = 0;
  net::TimeUs startUs = 0;
  std::optional<OpError> fatal;
  u8 cls = 0;          ///< OpClass, for the per-class latency histogram
  bool traced = false; ///< span below is live and will be pushed at finish
  obs::TraceSpan span;

  /// Keeps the most severe error (enum values are ordered by severity:
  /// kNotFound < kQuorumFailed < kTimeout < kNodeOffline).
  void recordError(OpError e) {
    if (!fatal || static_cast<u8>(e) > static_cast<u8>(*fatal)) fatal = e;
  }

  /// Appends a span event when tracing; no-op (one branch) otherwise.
  void ev(net::TimeUs t, const char* label, std::string detail = {}) {
    if (traced) span.event(t, label, std::move(detail));
  }
};

DharmaClient::DharmaClient(dht::DhtNetwork& net, usize nodeIdx,
                           DharmaConfig cfg, u64 seed, OpPolicy policy)
    : ownedRt_(std::make_unique<SimRuntime>(net.sim(), net.network())),
      rt_(ownedRt_.get()), node_(net.node(nodeIdx)), cfg_(cfg), rng_(seed),
      policy_(policy), cache_(cfg.cachePolicy) {
  cache_.bindOwner(&rt_->executor());
  initObs();
}

DharmaClient::DharmaClient(Runtime& rt, dht::KademliaNode& node,
                           DharmaConfig cfg, u64 seed, OpPolicy policy)
    : rt_(&rt), node_(node), cfg_(cfg), rng_(seed), policy_(policy),
      cache_(cfg.cachePolicy) {
  // The client cache is engine-side state: reads/writes happen inside the
  // async ops, which run on the runtime's executor loop.
  cache_.bindOwner(&rt_->executor());
  initObs();
}

void DharmaClient::initObs() {
  if (cfg_.metrics == nullptr) return;
  static constexpr const char* kResults[2] = {"ok", "error"};
  for (usize c = 0; c < kOpClassCount; ++c) {
    for (usize r = 0; r < 2; ++r) {
      opHist_[c][r] = &cfg_.metrics->histogram(
          "dharma_client_op_latency_us",
          "Client protocol operation latency by op class and result "
          "(microseconds)",
          {{"op", kOpClassNames[c]}, {"result", kResults[r]}});
    }
  }
  static constexpr const char* kBlockOps[2] = {"put", "get"};
  for (usize b = 0; b < 2; ++b) {
    for (usize r = 0; r < 2; ++r) {
      blockHist_[b][r] = &cfg_.metrics->histogram(
          "dharma_client_block_latency_us",
          "Block PUT/GET attempt latency by result (microseconds)",
          {{"op", kBlockOps[b]}, {"result", kResults[r]}});
    }
  }
}

std::shared_ptr<DharmaClient::OpState> DharmaClient::beginOp(OpClass cls) {
  auto op = std::make_shared<OpState>();
  op->cls = static_cast<u8>(cls);
  op->startUs = rt_->executor().now();
  if (cfg_.traces != nullptr) {
    op->traced = true;
    op->span.traceId = cfg_.traces->nextTraceId();
    op->span.kind = "client-op";
    op->span.label = kOpClassNames[op->cls];
    op->span.startUs = op->startUs;
  }
  if (!online()) op->recordError(OpError::kNodeOffline);
  return op;
}

template <typename T>
Outcome<T> DharmaClient::finishOp(OpState& op, std::optional<T> value) {
  ++counters_.ops;
  counters_.retries += op.retries;
  Outcome<T> out;
  out.cost = op.cost;
  out.replication = std::move(op.rep);
  out.retries = op.retries;
  if (op.fatal) {
    out.err = *op.fatal;
    ++counters_.failures;
    ++counters_.byError[static_cast<usize>(*op.fatal)];
  } else {
    out.val = std::move(value);
  }
  if (opHist_[0][0] != nullptr || op.traced) {
    const net::TimeUs now = rt_->executor().now();
    if (opHist_[0][0] != nullptr) {
      opHist_[op.cls][op.fatal ? 1 : 0]->record(now - op.startUs);
    }
    if (op.traced) {
      op.span.endUs = now;
      op.span.outcome = op.fatal ? opErrorName(*op.fatal) : "ok";
      cfg_.traces->push(std::move(op.span));
      op.traced = false;
    }
  }
  return out;
}

net::TimeUs DharmaClient::backoffDelay(u32 retryIndex) {
  net::TimeUs base = policy_.retryBackoffUs
                      << std::min<u32>(retryIndex, 16);  // exponential
  if (base == 0) return 0;
  // Deterministic jitter in [base/2, 3*base/2): same seed, same trace.
  return base / 2 + rng_.uniform(base);
}

bool DharmaClient::deadlineExceeded(OpState& op) {
  return policy_.opDeadlineUs > 0 &&
         rt_->executor().now() - op.startUs >= policy_.opDeadlineUs;
}

void DharmaClient::putBlockAttempt(const std::shared_ptr<OpState>& op,
                                   NodeId key, std::vector<StoreToken> tokens,
                                   u64 putId, u32 retriesLeft,
                                   std::function<void()> done) {
  ++op->cost.lookups;
  ++op->cost.puts;
  ++total_.lookups;
  ++total_.puts;
  // Retained only when a retry could re-send it; the retry reuses the SAME
  // putId, so replicas that applied the failed attempt dedup the replay
  // instead of double-counting the increments.
  std::vector<StoreToken> tokensCopy;
  if (retriesLeft > 0) tokensCopy = tokens;
  const bool timed = blockHist_[0][0] != nullptr || op->traced;
  const net::TimeUs t0 = timed ? rt_->executor().now() : 0;
  if (op->traced) node_.beginTrace(op->span.traceId);
  node_.putMany(
      key, std::move(tokens), putId,
      [this, op, key, putId, tokensCopy = std::move(tokensCopy), retriesLeft,
       timed, t0, done = std::move(done)](dht::PutResult r) mutable {
        const bool attemptOk = !classifyPut(r, policy_.putQuorum);
        if (timed) {
          const net::TimeUs now = rt_->executor().now();
          if (blockHist_[0][0] != nullptr) {
            blockHist_[0][attemptOk ? 0 : 1]->record(now - t0);
          }
          op->ev(now, "put",
                 "acks=" + std::to_string(r.acks) + "/" +
                     std::to_string(r.intended) +
                     (attemptOk ? "" : " below-quorum"));
        }
        if (attemptOk) {
          op->rep.acks.push_back(r.acks);
          done();
          return;
        }
        bool timedOut = deadlineExceeded(*op);
        if (retriesLeft > 0 && !timedOut) {
          u32 retryIndex = policy_.retryBudget - retriesLeft;
          ++op->retries;
          const net::TimeUs delay = backoffDelay(retryIndex);
          op->ev(rt_->executor().now(), "retry",
                 "put backoff_us=" + std::to_string(delay));
          rt_->executor().schedule(
              delay,
              [this, op, key, putId, tokensCopy = std::move(tokensCopy),
               retriesLeft, done = std::move(done)]() mutable {
                putBlockAttempt(op, key, std::move(tokensCopy), putId,
                                retriesLeft - 1, std::move(done));
              });
          return;
        }
        op->rep.acks.push_back(r.acks);
        ++op->rep.quorumMisses;
        op->recordError(timedOut ? OpError::kTimeout : OpError::kQuorumFailed);
        done();
      });
}

void DharmaClient::putBlock(const std::shared_ptr<OpState>& op,
                            const NodeId& key, std::vector<StoreToken> tokens,
                            std::function<void()> done) {
  // Write-through invalidation: this client is about to change the block,
  // so its cached copy (if any) is stale the moment the PUT is issued.
  // Call sites that can reconstruct the post-write view (the tag path's r̄)
  // re-populate the cache after the operation completes.
  if (cfg_.cacheEnabled) cache_.invalidate(key);
  putBlockAttempt(op, key, std::move(tokens), node_.allocatePutId(),
                  policy_.retryBudget, std::move(done));
}

void DharmaClient::getBlockAttempt(const std::shared_ptr<OpState>& op,
                                   NodeId key, GetOptions opt, u32 retriesLeft,
                                   std::function<void(dht::GetResult)> done) {
  ++op->cost.lookups;
  ++op->cost.gets;
  ++total_.lookups;
  ++total_.gets;
  const bool timed = blockHist_[1][0] != nullptr || op->traced;
  const net::TimeUs t0 = timed ? rt_->executor().now() : 0;
  if (op->traced) node_.beginTrace(op->span.traceId);
  node_.get(key, opt,
             [this, op, key, opt, retriesLeft, timed, t0,
              done = std::move(done)](dht::GetResult r) mutable {
               // A clean miss is authoritative; only a miss that coincided
               // with unreachable peers is worth retrying.
               bool retryable = !r.found() && r.rpcFailures > 0;
               if (timed) {
                 const net::TimeUs now = rt_->executor().now();
                 if (blockHist_[1][0] != nullptr) {
                   blockHist_[1][retryable ? 1 : 0]->record(now - t0);
                 }
                 op->ev(now, "get",
                        std::string(r.found() ? "found" : "miss") +
                            " msgs=" + std::to_string(r.messagesSent) +
                            " rpc_failures=" + std::to_string(r.rpcFailures));
               }
               if (retryable && retriesLeft > 0 && !deadlineExceeded(*op)) {
                 u32 retryIndex = policy_.retryBudget - retriesLeft;
                 ++op->retries;
                 const net::TimeUs delay = backoffDelay(retryIndex);
                 op->ev(rt_->executor().now(), "retry",
                        "get backoff_us=" + std::to_string(delay));
                 rt_->executor().schedule(
                     delay,
                     [this, op, key, opt, retriesLeft,
                      done = std::move(done)]() mutable {
                       getBlockAttempt(op, key, opt, retriesLeft - 1,
                                       std::move(done));
                     });
                 return;
               }
               done(std::move(r));
             });
}

void DharmaClient::getBlock(const std::shared_ptr<OpState>& op,
                            const NodeId& key, GetOptions opt,
                            std::function<void(dht::GetResult)> done) {
  getBlockAttempt(op, key, opt, policy_.retryBudget, std::move(done));
}

void DharmaClient::getBlockCached(const std::shared_ptr<OpState>& op,
                                  const NodeId& key, cache::BlockKind kind,
                                  GetOptions opt, bool acceptRemoteCached,
                                  std::function<void(dht::GetResult)> done) {
  if (cfg_.cacheEnabled) {
    if (const dht::BlockView* hit = cache_.find(key, rt_->executor().now())) {
      // Zero lookups: the hit is accounted in servedFromCache only, so the
      // Table I identities stay exact arithmetic over the misses.
      ++op->cost.servedFromCache;
      ++total_.servedFromCache;
      op->ev(rt_->executor().now(), "cache-hit");
      dht::GetResult r;
      r.view = *hit;
      r.cachedReplies = 1;
      done(std::move(r));
      return;
    }
    opt.allowCached = acceptRemoteCached && cfg_.acceptCachedReplies;
  }
  getBlock(op, key, opt,
           [this, key, kind, done = std::move(done)](dht::GetResult r) {
             // Only authoritatively-backed views are admitted: re-caching a
             // view that itself came from an overlay path cache would grant
             // it a fresh full TTL and chain staleness past the one-TTL
             // bound (the client-side mirror of publishPathCache's
             // valueReplies guard).
             if (cfg_.cacheEnabled && r.view && !r.servedFromCache()) {
               cache_.insert(key, *r.view, kind, rt_->executor().now());
             }
             done(std::move(r));
           });
}

// ---------------------------------------------------------------------------
// insertResource
// ---------------------------------------------------------------------------

void DharmaClient::insertResourceAsync(
    const std::string& res, const std::string& uri,
    const std::vector<std::string>& tags,
    std::function<void(Outcome<WriteReceipt>)> cb) {
  DHARMA_ASSERT_AFFINITY(&rt_->executor(), "DharmaClient::insertResourceAsync");
  if (!cb) cb = [](Outcome<WriteReceipt>) {};  // fire-and-forget is allowed
  auto op = beginOp(OpClass::kInsert);
  if (op->fatal) {
    cb(finishOp<WriteReceipt>(*op, std::nullopt));
    return;
  }

  // Deduplicate the tag set, preserving order.
  std::vector<std::string> uniq;
  for (const auto& t : tags) {
    if (std::find(uniq.begin(), uniq.end(), t) == uniq.end()) uniq.push_back(t);
  }
  const usize m = uniq.size();

  auto done = makeJoin(2 + 2 * m, [this, op, cb = std::move(cb)] {
    cb(finishOp(*op, std::make_optional(
                         WriteReceipt{op->rep.puts(), op->rep.minAcks()})));
  });

  // r̃: the URI block.
  StoreToken uriTok;
  uriTok.kind = TokenKind::kSetPayload;
  uriTok.payload = uri;
  putBlock(op, blockKey(res, BlockType::kResourceUri), {uriTok}, done);

  // r̄: one unit token per tag.
  std::vector<StoreToken> rbar;
  rbar.reserve(m);
  for (const auto& t : uniq) {
    rbar.push_back(StoreToken{TokenKind::kIncrement, t, 1, {}});
  }
  if (rbar.empty()) rbar.push_back(StoreToken{TokenKind::kTouch, {}, 1, {}});
  putBlock(op, blockKey(res, BlockType::kResourceTags), std::move(rbar), done);

  // Per tag: t̄i (reverse edge) and t̂i (pairwise sims: every new pair
  // starts at 1 in both directions — III-B.1).
  for (usize i = 0; i < m; ++i) {
    putBlock(op, blockKey(uniq[i], BlockType::kTagResources),
             {StoreToken{TokenKind::kIncrement, res, 1, {}}}, done);

    std::vector<StoreToken> that;
    for (usize j = 0; j < m; ++j) {
      if (j == i) continue;
      that.push_back(StoreToken{TokenKind::kIncrement, uniq[j], 1, {}});
    }
    if (that.empty()) that.push_back(StoreToken{TokenKind::kTouch, {}, 1, {}});
    putBlock(op, blockKey(uniq[i], BlockType::kTagNeighbors), std::move(that),
             done);
  }
}

// ---------------------------------------------------------------------------
// insertResources (batched)
// ---------------------------------------------------------------------------

void DharmaClient::insertResourcesAsync(
    const std::vector<ResourceSpec>& specs,
    std::function<void(Outcome<WriteReceipt>)> cb) {
  DHARMA_ASSERT_AFFINITY(&rt_->executor(), "DharmaClient::insertResourcesAsync");
  if (!cb) cb = [](Outcome<WriteReceipt>) {};  // fire-and-forget is allowed
  auto op = beginOp(OpClass::kInsert);
  if (op->fatal || specs.empty()) {
    cb(finishOp(*op, std::make_optional(WriteReceipt{})));
    return;
  }

  // Deduplicate each spec's tags (single-insert semantics), then group the
  // per-tag t̄/t̂ updates so every distinct tag costs 2 lookups for the
  // whole batch instead of 2 per resource.
  struct Cleaned {
    const ResourceSpec* spec;
    std::vector<std::string> tags;
  };
  std::vector<Cleaned> cleaned;
  cleaned.reserve(specs.size());
  std::vector<std::string> tagOrder;           // first-appearance order
  std::map<std::string, std::vector<usize>> bySpec;  // tag -> spec indices
  for (const auto& s : specs) {
    Cleaned c{&s, {}};
    for (const auto& t : s.tags) {
      if (std::find(c.tags.begin(), c.tags.end(), t) == c.tags.end()) {
        c.tags.push_back(t);
      }
    }
    for (const auto& t : c.tags) {
      auto [it, fresh] = bySpec.try_emplace(t);
      if (fresh) tagOrder.push_back(t);
      it->second.push_back(cleaned.size());
    }
    cleaned.push_back(std::move(c));
  }

  auto done = makeJoin(
      2 * cleaned.size() + 2 * tagOrder.size(), [this, op, cb = std::move(cb)] {
        cb(finishOp(*op, std::make_optional(WriteReceipt{
                             op->rep.puts(), op->rep.minAcks()})));
      });

  for (const auto& c : cleaned) {
    StoreToken uriTok;
    uriTok.kind = TokenKind::kSetPayload;
    uriTok.payload = c.spec->uri;
    putBlock(op, blockKey(c.spec->res, BlockType::kResourceUri), {uriTok},
             done);

    std::vector<StoreToken> rbar;
    rbar.reserve(c.tags.size());
    for (const auto& t : c.tags) {
      rbar.push_back(StoreToken{TokenKind::kIncrement, t, 1, {}});
    }
    if (rbar.empty()) rbar.push_back(StoreToken{TokenKind::kTouch, {}, 1, {}});
    putBlock(op, blockKey(c.spec->res, BlockType::kResourceTags),
             std::move(rbar), done);
  }

  for (const auto& tag : tagOrder) {
    const auto& holders = bySpec[tag];

    // t̄: one reverse edge per resource carrying the tag — one lookup.
    std::vector<StoreToken> tbar;
    tbar.reserve(holders.size());
    for (usize j : holders) {
      tbar.push_back(
          StoreToken{TokenKind::kIncrement, cleaned[j].spec->res, 1, {}});
    }
    putBlock(op, blockKey(tag, BlockType::kTagResources), std::move(tbar),
             done);

    // t̂: the pairwise sims from every resource's co-tag set — one lookup.
    std::vector<StoreToken> that;
    for (usize j : holders) {
      for (const auto& other : cleaned[j].tags) {
        if (other == tag) continue;
        that.push_back(StoreToken{TokenKind::kIncrement, other, 1, {}});
      }
    }
    if (that.empty()) that.push_back(StoreToken{TokenKind::kTouch, {}, 1, {}});
    putBlock(op, blockKey(tag, BlockType::kTagNeighbors), std::move(that),
             done);
  }
}

// ---------------------------------------------------------------------------
// tagResource
// ---------------------------------------------------------------------------

void DharmaClient::tagResourceAsync(
    const std::string& res, const std::string& tag,
    std::function<void(Outcome<WriteReceipt>)> cb) {
  DHARMA_ASSERT_AFFINITY(&rt_->executor(), "DharmaClient::tagResourceAsync");
  // The shared-fetch path with a batch of one IS the paper's single-op
  // protocol: 1 r̄ GET + 3 PUTs + |subset| reverse PUTs = 4 + k lookups.
  tagResourcesSharedFetch(res, {tag}, std::move(cb));
}

void DharmaClient::tagResourcesAsync(
    const std::string& res, const std::vector<std::string>& tags,
    std::function<void(Outcome<WriteReceipt>)> cb) {
  DHARMA_ASSERT_AFFINITY(&rt_->executor(), "DharmaClient::tagResourcesAsync");
  tagResourcesSharedFetch(res, tags, std::move(cb));
}

void DharmaClient::tagResourcesSharedFetch(
    const std::string& res, const std::vector<std::string>& tags,
    std::function<void(Outcome<WriteReceipt>)> cb) {
  if (!cb) cb = [](Outcome<WriteReceipt>) {};  // fire-and-forget is allowed
  auto op = beginOp(OpClass::kTag);
  if (op->fatal || tags.empty()) {
    cb(finishOp(*op, std::make_optional(WriteReceipt{})));
    return;
  }

  // Step 1 (1 lookup, or 0 on a cache hit): read r̄ to learn Tags(r) and
  // the weights u(τ,r). The batch shares this single fetch; the view
  // evolves locally as each tag instance is applied, reproducing
  // sequential read-your-own-writes. On a client-cache miss the read stays
  // authoritative (never remote-cached): its outcome steers the
  // read-dependent t̂ updates below.
  getBlockCached(
      op, blockKey(res, BlockType::kResourceTags),
      cache::BlockKind::kResourceTags, GetOptions{},
      /*acceptRemoteCached=*/false,
      [this, op, res, tags, cb = std::move(cb)](dht::GetResult got) {
        if (auto e = classifyGet(got); e && *e != OpError::kNotFound) {
          // The miss is not authoritative (holders unreachable): applying
          // read-dependent updates on top of it would corrupt t̂ weights.
          op->recordError(*e);
          cb(finishOp<WriteReceipt>(*op, std::nullopt));
          return;
        }

        // Local working view: name -> weight, plus insertion order for
        // deterministic iteration.
        std::vector<dht::BlockEntry> entries;
        if (got.view) entries = got.view->entries;
        auto weightOf = [&](const std::string& name) -> u64* {
          for (auto& e : entries) {
            if (e.name == name) return &e.weight;
          }
          return nullptr;
        };

        std::vector<StoreToken> rbarTokens;                    // r̄, 1 PUT
        std::map<std::string, std::vector<StoreToken>> tbar;   // t̄ per tag
        std::map<std::string, std::vector<StoreToken>> that;   // t̂ per tag
        std::map<std::string, std::vector<StoreToken>> rev;    // reverse t̂
        std::vector<std::string> tagOrder, revOrder;

        for (const auto& tag : tags) {
          u64* w = weightOf(tag);
          const bool wasPresent = w != nullptr;

          // Snapshot of the co-tag set at this instant (local view).
          std::vector<dht::BlockEntry> others;
          for (const auto& e : entries) {
            if (e.name != tag) others.push_back(e);
          }

          rbarTokens.push_back(StoreToken{TokenKind::kIncrement, tag, 1, {}});

          auto [tbarIt, tbarFresh] = tbar.try_emplace(tag);
          auto [thatIt, thatFresh] = that.try_emplace(tag);
          if (tbarFresh) tagOrder.push_back(tag);
          tbarIt->second.push_back(
              StoreToken{TokenKind::kIncrement, res, 1, {}});

          // t̂ forward arcs — only meaningful when the tag newly joins
          // Tags(r) (Section IV-A/B).
          if (!wasPresent) {
            for (const auto& e : others) {
              if (cfg_.approximateB) {
                // Conditional increment evaluated at the replica:
                // absent → 1 (Approximation B), present → +u(τ,r).
                thatIt->second.push_back(StoreToken{
                    TokenKind::kIncrementIfNewB, e.name, e.weight, {}});
              } else {
                thatIt->second.push_back(
                    StoreToken{TokenKind::kIncrement, e.name, e.weight, {}});
              }
            }
          }

          // Reverse-update subset (Approximation A): at most k random
          // co-tags; naive mode updates every co-tag.
          std::vector<usize> subset;
          if (cfg_.approximateA && others.size() > cfg_.k) {
            for (u32 i :
                 rng_.sampleIndices(static_cast<u32>(others.size()), cfg_.k)) {
              subset.push_back(i);
            }
          } else {
            for (usize i = 0; i < others.size(); ++i) subset.push_back(i);
          }
          for (usize i : subset) {
            auto [revIt, revFresh] = rev.try_emplace(others[i].name);
            if (revFresh) revOrder.push_back(others[i].name);
            revIt->second.push_back(
                StoreToken{TokenKind::kIncrement, tag, 1, {}});
          }

          // Apply the instance to the local view.
          if (wasPresent) {
            ++*w;
          } else {
            entries.push_back(dht::BlockEntry{tag, 1});
          }
        }

        // Empty t̂ batches still touch the block: this keeps Table I's
        // "4 + k" single-op accounting exact and guarantees the block
        // exists for search.
        for (auto& [tag, tokens] : that) {
          if (tokens.empty()) {
            tokens.push_back(StoreToken{TokenKind::kTouch, {}, 1, {}});
          }
        }

        // Write-through refresh for r̄: the locally evolved view is this
        // client's exact post-write image of the block (its own increments
        // applied on top of what it read), so once every PUT lands the
        // cache can serve the NEXT tag op on this resource without a
        // lookup — read-your-own-writes preserved. Built here (the loop is
        // done evolving `entries`), installed only on success.
        dht::BlockView evolved;
        if (cfg_.cacheEnabled) {
          evolved.entries = entries;
          std::sort(evolved.entries.begin(), evolved.entries.end(),
                    [](const dht::BlockEntry& a, const dht::BlockEntry& b) {
                      return a.weight != b.weight ? a.weight > b.weight
                                                  : a.name < b.name;
                    });
          evolved.totalEntries = evolved.entries.size();
          if (got.view) {
            evolved.truncated = got.view->truncated;
            evolved.totalEntries =
                std::max(evolved.totalEntries, got.view->totalEntries);
          }
        }

        usize nPuts = 1 + tagOrder.size() * 2 + revOrder.size();
        auto done = makeJoin(nPuts, [this, op, res,
                                     evolved = std::move(evolved),
                                     cb = std::move(cb)] {
          if (cfg_.cacheEnabled && !op->fatal) {
            cache_.insert(blockKey(res, BlockType::kResourceTags), evolved,
                          cache::BlockKind::kResourceTags, rt_->executor().now());
          }
          cb(finishOp(*op, std::make_optional(WriteReceipt{
                               op->rep.puts(), op->rep.minAcks()})));
        });

        putBlock(op, blockKey(res, BlockType::kResourceTags),
                 std::move(rbarTokens), done);
        for (const auto& tag : tagOrder) {
          putBlock(op, blockKey(tag, BlockType::kTagResources),
                   std::move(tbar[tag]), done);
          putBlock(op, blockKey(tag, BlockType::kTagNeighbors),
                   std::move(that[tag]), done);
        }
        for (const auto& cotag : revOrder) {
          putBlock(op, blockKey(cotag, BlockType::kTagNeighbors),
                   std::move(rev[cotag]), done);
        }
      });
}

// ---------------------------------------------------------------------------
// searchStep / resolveUri
// ---------------------------------------------------------------------------

void DharmaClient::searchStepAsync(
    const std::string& tag, std::function<void(Outcome<SearchStepResult>)> cb) {
  DHARMA_ASSERT_AFFINITY(&rt_->executor(), "DharmaClient::searchStepAsync");
  if (!cb) cb = [](Outcome<SearchStepResult>) {};  // fire-and-forget is allowed
  auto op = beginOp(OpClass::kSearchStep);
  if (op->fatal) {
    cb(finishOp<SearchStepResult>(*op, std::nullopt));
    return;
  }

  auto step = std::make_shared<SearchStepResult>();
  auto done = makeJoin(2, [this, op, step, cb = std::move(cb)] {
    cb(finishOp(*op, std::make_optional(std::move(*step))));
  });

  GetOptions opt;
  opt.topN = cfg_.searchTopN;

  // Pure reads: both fetches ride the read-through cache and (when enabled)
  // accept non-authoritative cached replies — search is staleness-tolerant
  // by DHARMA's own approximation argument (docs/DESIGN.md §6).
  getBlockCached(op, blockKey(tag, BlockType::kTagNeighbors),
                 cache::BlockKind::kTagNeighbors, opt,
                 /*acceptRemoteCached=*/true,
                 [op, step, done](dht::GetResult r) {
                   if (r.view) {
                     step->tagKnown = true;
                     step->relatedTags = std::move(r.view->entries);
                     step->tagsTruncated = r.view->truncated;
                   } else if (auto e = classifyGet(r);
                              e && *e != OpError::kNotFound) {
                     op->recordError(*e);
                   }
                   done();
                 });
  getBlockCached(op, blockKey(tag, BlockType::kTagResources),
                 cache::BlockKind::kTagResources, opt,
                 /*acceptRemoteCached=*/true,
                 [op, step, done](dht::GetResult r) {
                   if (r.view) {
                     step->resources = std::move(r.view->entries);
                     step->resourcesTruncated = r.view->truncated;
                   } else if (auto e = classifyGet(r);
                              e && *e != OpError::kNotFound) {
                     op->recordError(*e);
                   }
                   done();
                 });
}

void DharmaClient::resolveUriAsync(const std::string& res,
                                   std::function<void(Outcome<std::string>)> cb) {
  DHARMA_ASSERT_AFFINITY(&rt_->executor(), "DharmaClient::resolveUriAsync");
  if (!cb) cb = [](Outcome<std::string>) {};  // fire-and-forget is allowed
  auto op = beginOp(OpClass::kResolve);
  if (op->fatal) {
    cb(finishOp<std::string>(*op, std::nullopt));
    return;
  }
  getBlockCached(op, blockKey(res, BlockType::kResourceUri),
                 cache::BlockKind::kResourceUri, GetOptions{},
                 /*acceptRemoteCached=*/true,
                 [this, op, cb = std::move(cb)](dht::GetResult r) {
                   if (r.view && !r.view->payload.empty()) {
                     cb(finishOp(*op,
                                 std::make_optional(std::move(r.view->payload))));
                     return;
                   }
                   op->recordError(classifyGet(r).value_or(OpError::kNotFound));
                   cb(finishOp<std::string>(*op, std::nullopt));
                 });
}

void DharmaClient::searchStepsAsync(
    const std::string& tag, u32 maxSteps,
    std::function<void(Outcome<SearchWalk>)> cb) {
  DHARMA_ASSERT_AFFINITY(&rt_->executor(), "DharmaClient::searchStepsAsync");
  if (!cb) cb = [](Outcome<SearchWalk>) {};  // fire-and-forget is allowed
  if (maxSteps == 0) maxSteps = 1;

  // The walk chains searchStepAsync calls on the loop thread; `next` holds
  // the recursion and captures the state, so both exit paths clear it to
  // break the shared_ptr cycle before delivering the callback.
  struct WalkState {
    Outcome<SearchWalk> out = Outcome<SearchWalk>::success({});
    std::vector<std::string> visited;  // short walks: linear scan is fine
    u32 remaining = 0;
    std::function<void(Outcome<SearchWalk>)> cb;
    std::function<void(std::string)> next;

    void finish() {
      next = nullptr;
      auto done = std::move(cb);
      done(std::move(out));
    }
  };
  auto st = std::make_shared<WalkState>();
  st->remaining = maxSteps;
  st->cb = std::move(cb);
  st->next = [this, st](std::string t) {
    st->visited.push_back(t);
    searchStepAsync(t, [st, t](Outcome<SearchStepResult> r) {
      st->out.cost += r.cost;
      st->out.retries += r.retries;
      if (!r.ok()) {
        st->out.val.reset();
        st->out.err = r.error();
        st->finish();
        return;
      }
      st->remaining--;
      // relatedTags arrive weight-ranked: the first unvisited entry is the
      // greedy choice.
      std::string nextTag;
      for (const auto& e : r.value().relatedTags) {
        bool seen = false;
        for (const auto& v : st->visited) {
          if (v == e.name) {
            seen = true;
            break;
          }
        }
        if (!seen) {
          nextTag = e.name;
          break;
        }
      }
      st->out.val->hops.push_back({t, std::move(r.value())});
      if (st->remaining == 0 || nextTag.empty()) {
        st->out.val->exhausted = nextTag.empty();
        st->finish();
        return;
      }
      auto go = st->next;  // keep the recursion alive across the call
      go(std::move(nextTag));
    });
  };
  auto kick = st->next;
  kick(tag);
}

// ---------------------------------------------------------------------------
// Blocking wrappers
// ---------------------------------------------------------------------------

Outcome<WriteReceipt> DharmaClient::insertResource(
    const std::string& res, const std::string& uri,
    const std::vector<std::string>& tags) {
  using R = Outcome<WriteReceipt>;
  return awaitResult<R>(*rt_, [&](std::function<void(R)> done) {
    insertResourceAsync(res, uri, tags, std::move(done));
  });
}

Outcome<WriteReceipt> DharmaClient::insertResources(
    const std::vector<ResourceSpec>& specs) {
  using R = Outcome<WriteReceipt>;
  return awaitResult<R>(*rt_, [&](std::function<void(R)> done) {
    insertResourcesAsync(specs, std::move(done));
  });
}

Outcome<WriteReceipt> DharmaClient::tagResource(const std::string& res,
                                                const std::string& tag) {
  using R = Outcome<WriteReceipt>;
  return awaitResult<R>(*rt_, [&](std::function<void(R)> done) {
    tagResourceAsync(res, tag, std::move(done));
  });
}

Outcome<WriteReceipt> DharmaClient::tagResources(
    const std::string& res, const std::vector<std::string>& tags) {
  using R = Outcome<WriteReceipt>;
  return awaitResult<R>(*rt_, [&](std::function<void(R)> done) {
    tagResourcesAsync(res, tags, std::move(done));
  });
}

Outcome<SearchStepResult> DharmaClient::searchStep(const std::string& tag) {
  using R = Outcome<SearchStepResult>;
  return awaitResult<R>(*rt_, [&](std::function<void(R)> done) {
    searchStepAsync(tag, std::move(done));
  });
}

Outcome<SearchWalk> DharmaClient::searchSteps(const std::string& tag,
                                              u32 maxSteps) {
  using R = Outcome<SearchWalk>;
  return awaitResult<R>(*rt_, [&](std::function<void(R)> done) {
    searchStepsAsync(tag, maxSteps, std::move(done));
  });
}

Outcome<std::string> DharmaClient::resolveUri(const std::string& res) {
  using R = Outcome<std::string>;
  return awaitResult<R>(*rt_, [&](std::function<void(R)> done) {
    resolveUriAsync(res, std::move(done));
  });
}

}  // namespace dharma::core
