#pragma once
/// \file keys.hpp
/// \brief DHARMA block types and lookup-key derivation (Section IV-A).
///
/// Four block types partition the folksonomy over the DHT:
///   1. r̄ (kResourceTags)  : {(t, u(t,r)) | t ∈ Tags(r)}
///   2. t̄ (kTagResources)  : {(r, u(t,r)) | r ∈ Res(t)}
///   3. t̂ (kTagNeighbors)  : {(t', sim(t,t')) | t' ∈ N_FG(t)}
///   4. r̃ (kResourceUri)   : (r, URI(r))
///
/// "Each block is mapped on a lookup key computed from the name of its node
/// concatenated with a string which determines the block type (e.g. the
/// hash of t|"2" is the key of type 2 block for tag t)."

#include <string>
#include <string_view>

#include "dht/node_id.hpp"

namespace dharma::core {

/// The paper's four block types (values match the paper's numbering).
enum class BlockType : u8 {
  kResourceTags = 1,  ///< r̄
  kTagResources = 2,  ///< t̄
  kTagNeighbors = 3,  ///< t̂
  kResourceUri = 4,   ///< r̃
};

const char* blockTypeName(BlockType t);

/// Lookup key of the block of type \p type for node name \p name:
/// SHA1(name | "|" | digit).
dht::NodeId blockKey(std::string_view name, BlockType type);

}  // namespace dharma::core
