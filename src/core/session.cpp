#include "core/session.hpp"

#include <algorithm>
#include <stdexcept>

namespace dharma::core {

DharmaSession::DharmaSession(DharmaClient& client, folk::SearchConfig cfg)
    : client_(client), cfg_(cfg) {}

DistStepInfo DharmaSession::start(const std::string& tag) {
  started_ = true;
  done_ = false;
  lastError_.reset();
  path_.clear();
  chosen_.clear();
  candidates_.clear();
  resources_.clear();
  auto out = client_.searchStep(tag);
  if (!out.ok()) return failStep(tag, out.error(), out.cost);
  return applyStep(tag, *out, out.cost, /*first=*/true);
}

DistStepInfo DharmaSession::select(const std::string& tag) {
  if (!started_ || done_) {
    throw std::logic_error("DharmaSession::select on finished session");
  }
  auto out = client_.searchStep(tag);
  if (!out.ok()) return failStep(tag, out.error(), out.cost);
  if (!out->tagKnown) {
    // The tag was just displayed, so its t̂ block existed moments ago: a
    // clean miss here means the holders vanished, not "unknown tag".
    return failStep(tag, OpError::kNotFound, out.cost);
  }
  return applyStep(tag, *out, out.cost, /*first=*/false);
}

DistStepInfo DharmaSession::failStep(const std::string& tag, OpError err,
                                     const OpCost& cost) {
  total_ += cost;
  path_.push_back(tag);
  done_ = true;
  reason_ = folk::StopReason::kFetchFailed;
  lastError_ = err;
  // T/R/display stay as of the last successful step: the caller can show
  // stale candidates or retry, but the sets were NOT narrowed by the
  // failed fetch.
  DistStepInfo info;
  info.display = display_;
  info.tagCount = candidates_.size();
  info.resourceCount = resources_.size();
  info.done = true;
  info.reason = reason_;
  info.error = err;
  info.cost = cost;
  info.servedFromCache = cost.servedFromCache > 0;
  return info;
}

DistStepInfo DharmaSession::applyStep(const std::string& tag,
                                      const SearchStepResult& fetched,
                                      const OpCost& cost, bool first) {
  total_ += cost;
  path_.push_back(tag);
  chosen_.insert(std::upper_bound(chosen_.begin(), chosen_.end(), tag), tag);

  // Narrow T: names of fetched related tags, sorted.
  std::vector<std::string> fetchedTags;
  fetchedTags.reserve(fetched.relatedTags.size());
  for (const auto& e : fetched.relatedTags) fetchedTags.push_back(e.name);
  std::sort(fetchedTags.begin(), fetchedTags.end());

  if (first) {
    candidates_ = std::move(fetchedTags);
  } else {
    std::vector<std::string> next;
    std::set_intersection(candidates_.begin(), candidates_.end(),
                          fetchedTags.begin(), fetchedTags.end(),
                          std::back_inserter(next));
    candidates_ = std::move(next);
  }
  // Previously chosen tags never reappear.
  std::vector<std::string> pruned;
  std::set_difference(candidates_.begin(), candidates_.end(), chosen_.begin(),
                      chosen_.end(), std::back_inserter(pruned));
  candidates_ = std::move(pruned);

  // Narrow R.
  std::vector<std::string> fetchedRes;
  fetchedRes.reserve(fetched.resources.size());
  for (const auto& e : fetched.resources) fetchedRes.push_back(e.name);
  std::sort(fetchedRes.begin(), fetchedRes.end());
  if (first) {
    resources_ = std::move(fetchedRes);
  } else {
    std::vector<std::string> next;
    std::set_intersection(resources_.begin(), resources_.end(),
                          fetchedRes.begin(), fetchedRes.end(),
                          std::back_inserter(next));
    resources_ = std::move(next);
  }

  rebuildDisplay(fetched);
  checkStop();

  DistStepInfo info;
  info.display = display_;
  info.tagCount = candidates_.size();
  info.resourceCount = resources_.size();
  info.done = done_;
  info.reason = reason_;
  info.cost = cost;
  info.servedFromCache = cost.servedFromCache > 0;
  return info;
}

void DharmaSession::rebuildDisplay(const SearchStepResult& fetched) {
  display_.clear();
  // fetched.relatedTags is already sim-ranked by the index-side filter;
  // keep only survivors of the local intersection.
  for (const auto& e : fetched.relatedTags) {
    if (std::binary_search(candidates_.begin(), candidates_.end(), e.name)) {
      display_.push_back(e);
      if (display_.size() >= cfg_.displayCap) break;
    }
  }
}

void DharmaSession::checkStop() {
  if (resources_.size() <= cfg_.resourceStop) {
    done_ = true;
    reason_ = folk::StopReason::kResourcesNarrowed;
  } else if (candidates_.size() <= 1) {
    done_ = true;
    reason_ = folk::StopReason::kTagsExhausted;
  } else if (display_.empty()) {
    done_ = true;
    reason_ = folk::StopReason::kNoCandidates;
  } else if (path_.size() > cfg_.maxSteps) {
    done_ = true;
    reason_ = folk::StopReason::kMaxSteps;
  }
}

std::string DharmaSession::selectByStrategy(folk::Strategy s, Rng& rng) {
  if (done_ || display_.empty()) return {};
  std::string pick;
  switch (s) {
    case folk::Strategy::kFirst:
      pick = display_.front().name;
      break;
    case folk::Strategy::kLast:
      pick = display_.back().name;
      break;
    case folk::Strategy::kRandom:
      pick = display_[static_cast<usize>(rng.uniform(display_.size()))].name;
      break;
  }
  select(pick);
  return pick;
}

}  // namespace dharma::core
