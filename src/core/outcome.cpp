#include "core/outcome.hpp"

namespace dharma::core {

const char* opErrorName(OpError e) {
  switch (e) {
    case OpError::kNotFound: return "not-found";
    case OpError::kQuorumFailed: return "quorum-failed";
    case OpError::kTimeout: return "timeout";
    case OpError::kNodeOffline: return "node-offline";
  }
  return "unknown";
}

std::optional<OpError> classifyGet(const dht::GetResult& r) {
  if (r.found()) return std::nullopt;
  // A miss with failed RPCs is indistinguishable from "the holders are
  // dead/unreachable": report kTimeout so callers don't cache a spurious
  // not-found. A miss over an all-responsive lookup is authoritative.
  if (r.rpcFailures > 0) return OpError::kTimeout;
  return OpError::kNotFound;
}

std::optional<OpError> classifyPut(const dht::PutResult& r, u32 quorum) {
  if (r.acks >= quorum) return std::nullopt;
  return OpError::kQuorumFailed;
}

}  // namespace dharma::core
