#pragma once
/// \file runtime.hpp
/// \brief How the client layer binds to an Executor/Transport pair, and how
/// its blocking operations wait.
///
/// DharmaClient's async protocol code only needs the Executor (clock,
/// retry backoff timers) and the Transport (its node's online state). Its
/// *blocking* wrappers additionally need a way to wait for an async
/// operation to finish, and that is the one place where simulation and
/// real time genuinely differ:
///
///  - **SimRuntime**: there is one thread and time is virtual, so waiting
///    means stepping the Simulator until the operation's callback fires —
///    exactly what DhtNetwork::await always did.
///  - **RealTimeRuntime**: the RealTimeExecutor's loop thread owns all
///    protocol state, so the operation is posted to the loop and the
///    calling thread blocks on a promise until the callback fires there.
///    Blocking calls must come from OUTSIDE the loop thread (a blocking
///    call from inside a protocol callback would deadlock — the loop
///    cannot both wait and make progress).
///
/// Either way the protocol engine runs identical code; only the waiting
/// strategy is swapped.

#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <vector>

#include "net/executor.hpp"
#include "net/transport.hpp"

namespace dharma::net {
class Simulator;
class Network;
class RealTimeExecutor;
class ShardedExecutor;
}  // namespace dharma::net

namespace dharma::core {

/// An operation launcher: receives a `done` closure and must arrange for it
/// to be called exactly once when the async operation completes.
using AwaitLaunch = std::function<void(std::function<void()>)>;

/// Executor/Transport binding + blocking-wait strategy (see file comment).
class Runtime {
 public:
  virtual ~Runtime() = default;

  virtual net::Executor& executor() = 0;
  virtual net::Transport& transport() = 0;

  /// Runs \p launch and blocks the calling context until the done()
  /// closure it was handed has been invoked.
  virtual void awaitDone(AwaitLaunch launch) = 0;

  /// True when the endpoint currently accepts datagrams (a client on a
  /// crashed simulated node fails fast with kNodeOffline).
  bool online(net::Address a) { return transport().isOnline(a); }
};

/// Runs an async operation with result type R to completion and returns
/// its result. The result is written before done() fires, and awaitDone
/// provides the ordering (trivially in simulation; via the promise/future
/// synchronization in real time), so the read below is race-free.
template <typename R>
R awaitResult(Runtime& rt,
              const std::function<void(std::function<void(R)>)>& launch) {
  R result{};
  rt.awaitDone([&](std::function<void()> done) {
    launch([&result, done = std::move(done)](R r) {
      result = std::move(r);
      done();
    });
  });
  return result;
}

/// Deterministic runtime: steps the Simulator on the calling thread until
/// the operation completes. Throws if the event queue drains first (the
/// operation leaked its callback).
class SimRuntime final : public Runtime {
 public:
  SimRuntime(net::Simulator& sim, net::Network& net) : sim_(sim), net_(net) {}

  net::Executor& executor() override;
  net::Transport& transport() override;
  void awaitDone(AwaitLaunch launch) override;

 private:
  net::Simulator& sim_;
  net::Network& net_;
};

/// Wall-clock runtime: posts the operation to the RealTimeExecutor's loop
/// thread and blocks the calling thread on a promise. The executor must be
/// start()ed. Never call a blocking client operation from the loop thread
/// itself.
class RealTimeRuntime final : public Runtime {
 public:
  RealTimeRuntime(net::RealTimeExecutor& exec, net::Transport& net)
      : exec_(exec), net_(net) {}

  net::Executor& executor() override;
  net::Transport& transport() override { return net_; }
  void awaitDone(AwaitLaunch launch) override;

 private:
  net::RealTimeExecutor& exec_;
  net::Transport& net_;
};

/// Wall-clock runtime family over a ShardedExecutor: one RealTimeRuntime
/// per shard, sharing one Transport. A blocking operation against a node
/// must wait on THAT node's shard — posting it anywhere else would run the
/// launch on a foreign loop thread and trip the affinity checker — so
/// callers (daemons, the throughput bench) hold the ShardedRuntime and ask
/// for forShard(nodeShard) per operation. With one shard this degenerates
/// to exactly the old single-RealTimeRuntime world.
class ShardedRuntime {
 public:
  ShardedRuntime(net::ShardedExecutor& execs, net::Transport& net);
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  /// The runtime bound to shard \p i (modulo the shard count, mirroring
  /// ShardedExecutor::shard).
  Runtime& forShard(usize i);

  usize shardCount() const { return runtimes_.size(); }

 private:
  std::vector<std::unique_ptr<RealTimeRuntime>> runtimes_;
};

}  // namespace dharma::core
