#include "core/keys.hpp"

namespace dharma::core {

const char* blockTypeName(BlockType t) {
  switch (t) {
    case BlockType::kResourceTags: return "resource-tags (r̄)";
    case BlockType::kTagResources: return "tag-resources (t̄)";
    case BlockType::kTagNeighbors: return "tag-neighbors (t̂)";
    case BlockType::kResourceUri: return "resource-uri (r̃)";
  }
  return "?";
}

dht::NodeId blockKey(std::string_view name, BlockType type) {
  std::string material;
  material.reserve(name.size() + 2);
  material += name;
  material += '|';
  material += static_cast<char>('0' + static_cast<u8>(type));
  return dht::NodeId::fromString(material);
}

}  // namespace dharma::core
