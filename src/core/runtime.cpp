#include "core/runtime.hpp"

#include "net/network.hpp"
#include "net/realtime.hpp"
#include "net/sharded.hpp"
#include "net/simulator.hpp"

namespace dharma::core {

net::Executor& SimRuntime::executor() { return sim_; }

net::Transport& SimRuntime::transport() { return net_; }

void SimRuntime::awaitDone(AwaitLaunch launch) {
  bool done = false;
  launch([&done] { done = true; });
  while (!done && sim_.step()) {
  }
  if (!done) {
    throw std::runtime_error("SimRuntime::awaitDone: simulation drained");
  }
}

net::Executor& RealTimeRuntime::executor() { return exec_; }

void RealTimeRuntime::awaitDone(AwaitLaunch launch) {
  // A stopped executor would enqueue the launch and never run it, hanging
  // the caller with no diagnostic — fail loudly instead (the analogue of
  // SimRuntime's "simulation drained"). This catches the lifecycle misuse
  // (blocking before start() / after stop()); a stop() racing in AFTER the
  // check can still strand the wait, so shut down only once blocking
  // callers have quiesced.
  if (!exec_.running()) {
    throw std::runtime_error(
        "RealTimeRuntime::awaitDone: executor is not running");
  }
  auto completed = std::make_shared<std::promise<void>>();
  std::future<void> fut = completed->get_future();
  // The launch itself must run on the loop thread: protocol state is owned
  // there, and posting it is what keeps the engine single-threaded.
  exec_.schedule(0, [launch = std::move(launch), completed] {
    launch([completed] { completed->set_value(); });
  });
  fut.get();
}

ShardedRuntime::ShardedRuntime(net::ShardedExecutor& execs,
                               net::Transport& net) {
  runtimes_.reserve(execs.shardCount());
  for (usize i = 0; i < execs.shardCount(); ++i) {
    runtimes_.push_back(
        std::make_unique<RealTimeRuntime>(execs.shard(i), net));
  }
}

ShardedRuntime::~ShardedRuntime() = default;

Runtime& ShardedRuntime::forShard(usize i) {
  return *runtimes_[i % runtimes_.size()];
}

}  // namespace dharma::core
