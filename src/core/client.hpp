#pragma once
/// \file client.hpp
/// \brief DharmaClient: the distributed tagging protocol (Section IV).
///
/// One client rides one overlay node and exposes the three folksonomy
/// primitives, in both the *naive* and the *approximated* protocol:
///
///   insertResource(r, uri, {t1..tm})          — 2 + 2m lookups
///   tagResource(r, t)     naive               — 4 + |Tags(r)| lookups
///                         approximated        — 4 + k lookups
///   searchStep(t)                              — 2 lookups
///
/// plus batched entry points that amortise the lookup plan over a batch:
///
///   tagResources(r, {t1..tm})     — 2 + 2m + |reverse targets| lookups
///                                   (one r̄ fetch shared by m tag updates)
///   insertResources({r1..rn})     — 2n + 2·|distinct tags| lookups
///                                   (t̄/t̂ updates grouped per tag)
///
/// Every operation returns an Outcome<T> (core/outcome.hpp): the value or
/// an OpError, always bundled with the OpCost actually paid and per-PUT
/// replica counts. Failed block ops are retried under the client's
/// OpPolicy with deterministic backoff drawn from the client's Rng.
/// An optional read-through record cache (DharmaConfig::cacheEnabled)
/// serves hot block fetches at zero lookups with write-through
/// invalidation on the client's own PUTs — accounted separately in
/// OpCost::servedFromCache so the identities above stay exact.
/// Every method exists in an async form (callback, suitable for
/// interleaving concurrent operations inside the simulator — how the
/// consistency race of Section IV-B is reproduced) and a blocking form
/// that waits through the client's core::Runtime: under SimRuntime it
/// drives the simulation to completion, under RealTimeRuntime it blocks
/// the calling thread while the executor's loop thread runs the protocol.

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/record_cache.hpp"
#include "core/keys.hpp"
#include "core/outcome.hpp"
#include "core/runtime.hpp"
#include "dht/dht_network.hpp"

namespace dharma::obs {
class Histogram;
class MetricsRegistry;
class TraceRing;
}  // namespace dharma::obs

namespace dharma::core {

/// Protocol mode and parameters.
struct DharmaConfig {
  bool approximateA = true;  ///< cap reverse t̂ updates at k (Approx. A)
  u32 k = 1;                 ///< connection parameter
  bool approximateB = true;  ///< conditional forward increments (Approx. B)
  u32 searchTopN = 100;      ///< index-side top-N for search-step GETs

  /// Client-side read-through record cache (docs/DESIGN.md §6). Off by
  /// default: with it off every fetch goes to the overlay and the Table I
  /// cost identities are byte-identical to the paper's protocol. With it
  /// on, a hit costs ZERO lookups and is accounted in
  /// OpCost::servedFromCache; local PUTs invalidate (write-through), and
  /// the r̄ fetch of a tag op — the one read whose result feeds writes —
  /// is refreshed with the locally evolved view, preserving
  /// read-your-own-writes.
  bool cacheEnabled = false;
  cache::CachePolicy cachePolicy;
  /// When the cache is on, flag the pure-read GETs (search step,
  /// resolveUri) as accepting non-authoritative cached replies from the
  /// overlay's path caches (GetOptions::allowCached). The r̄ fetch inside
  /// tag operations never accepts remote cached replies: its outcome
  /// steers read-dependent writes, so on a client-cache miss it stays an
  /// authoritative read.
  bool acceptCachedReplies = true;

  /// Observability (src/obs), both optional and zero-cost when unset.
  /// With \p metrics wired, every completed op records its latency into a
  /// per-op-class histogram (dharma_client_op_latency_us{op,result}) and
  /// every block attempt into dharma_client_block_latency_us{op,result}.
  /// With \p traces wired, every op builds a trace span (begin, block ops,
  /// retries, outcome) pushed into the ring on completion, and the op's
  /// trace id is threaded into the overlay node's lookups. Both objects
  /// must outlive the client.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRing* traces = nullptr;
};

/// One navigation step's retrieved sets.
struct SearchStepResult {
  bool tagKnown = false;                        ///< t̂ block existed
  std::vector<dht::BlockEntry> relatedTags;     ///< from t̂, weight-ranked
  std::vector<dht::BlockEntry> resources;       ///< from t̄, weight-ranked
  bool tagsTruncated = false;                   ///< index-side filtering hit
  bool resourcesTruncated = false;
};

/// One hop of a multi-step faceted walk (searchSteps): the tag visited and
/// the sets its step retrieved.
struct SearchWalkHop {
  std::string tag;
  SearchStepResult step;
};

/// Result of searchSteps(): the hops actually taken, in order.
struct SearchWalk {
  std::vector<SearchWalkHop> hops;
  /// The walk stopped before its step budget because no unvisited related
  /// tag remained to follow.
  bool exhausted = false;
};

/// One resource for the batched insertResources() entry point.
struct ResourceSpec {
  std::string res;
  std::string uri;
  std::vector<std::string> tags;
};

/// A tagging/search client bound to one overlay node. The client is
/// runtime-agnostic: all protocol work rides the node's Executor/Transport
/// through a core::Runtime, so the same client code scripts deterministic
/// experiments (SimRuntime) and serves a live loopback-UDP cluster
/// (RealTimeRuntime — see examples/dharma_node.cpp).
class DharmaClient {
 public:
  /// Simulation convenience: binds to node \p nodeIdx of a simulated
  /// overlay through an internally owned SimRuntime (blocking calls step
  /// the simulator, exactly as before).
  ///
  /// \param net  the simulated overlay
  /// \param nodeIdx index of the node this client rides
  /// \param cfg  protocol configuration
  /// \param seed randomness for Approximation A's subset choice and the
  ///             retry backoff jitter (same seed ⇒ same retry trace)
  /// \param policy failure semantics: quorum, retry budget, deadline
  DharmaClient(dht::DhtNetwork& net, usize nodeIdx, DharmaConfig cfg = {},
               u64 seed = 7, OpPolicy policy = {});

  /// Runtime-explicit binding: rides \p node under \p rt (which must
  /// outlive the client). With a RealTimeRuntime, blocking calls must come
  /// from outside the executor's loop thread.
  DharmaClient(Runtime& rt, dht::KademliaNode& node, DharmaConfig cfg = {},
               u64 seed = 7, OpPolicy policy = {});

  // -- async protocol (composable inside the simulator) --

  /// Inserts resource \p res with \p uri and tag set \p tags
  /// (paper: create r̃ and r̄; per tag, update t̄i and t̂i → 2+2m lookups).
  void insertResourceAsync(const std::string& res, const std::string& uri,
                           const std::vector<std::string>& tags,
                           std::function<void(Outcome<WriteReceipt>)> cb);

  /// Batched insert: r̃/r̄ per resource, t̄/t̂ updates grouped per distinct
  /// tag — 2n + 2·|distinct tags| lookups instead of Σ(2 + 2mᵢ).
  void insertResourcesAsync(const std::vector<ResourceSpec>& specs,
                            std::function<void(Outcome<WriteReceipt>)> cb);

  /// Adds tag \p tag to resource \p res (paper Section IV-A/B; cost
  /// 4 + |Tags(r)| naive, 4 + k approximated).
  void tagResourceAsync(const std::string& res, const std::string& tag,
                        std::function<void(Outcome<WriteReceipt>)> cb);

  /// Batched tagging: one r̄ fetch amortised over the whole batch, r̄
  /// increments coalesced into one PUT, reverse t̂ updates grouped per
  /// co-tag. Semantically equivalent to tagging sequentially.
  void tagResourcesAsync(const std::string& res,
                         const std::vector<std::string>& tags,
                         std::function<void(Outcome<WriteReceipt>)> cb);

  /// One faceted-search step: fetch t̂ and t̄ (2 lookups).
  void searchStepAsync(const std::string& tag,
                       std::function<void(Outcome<SearchStepResult>)> cb);

  /// Multi-step faceted navigation, batched on the engine loop: up to
  /// \p maxSteps search steps starting at \p tag, greedily following the
  /// highest-weight not-yet-visited related tag after each hop — the
  /// paper's navigation pattern, 2 lookups per hop. One entry point is one
  /// runtime round trip for the whole walk, so a remote caller (the
  /// gateway's GET /search?steps=N) pays one cross-thread handoff, not N.
  /// A failed hop fails the walk with that hop's error; cost and retries
  /// accumulate across all hops either way.
  void searchStepsAsync(const std::string& tag, u32 maxSteps,
                        std::function<void(Outcome<SearchWalk>)> cb);

  /// Resolves a resource name to its URI via r̃ (1 lookup).
  void resolveUriAsync(const std::string& res,
                       std::function<void(Outcome<std::string>)> cb);

  // -- blocking wrappers (drive the simulator) --

  Outcome<WriteReceipt> insertResource(const std::string& res,
                                       const std::string& uri,
                                       const std::vector<std::string>& tags);
  Outcome<WriteReceipt> insertResources(const std::vector<ResourceSpec>& specs);
  Outcome<WriteReceipt> tagResource(const std::string& res,
                                    const std::string& tag);
  Outcome<WriteReceipt> tagResources(const std::string& res,
                                     const std::vector<std::string>& tags);
  Outcome<SearchStepResult> searchStep(const std::string& tag);
  Outcome<SearchWalk> searchSteps(const std::string& tag, u32 maxSteps);
  Outcome<std::string> resolveUri(const std::string& res);

  /// Accumulated cost over this client's lifetime (retries included).
  const OpCost& totalCost() const { return total_; }

  /// Lifetime failure counters, by taxonomy entry.
  struct Counters {
    u64 ops = 0;       ///< protocol operations completed
    u64 failures = 0;  ///< operations that returned an error
    u64 retries = 0;   ///< block-op retry attempts spent
    std::array<u64, kOpErrorCount> byError{};
  };
  const Counters& counters() const { return counters_; }

  const DharmaConfig& config() const { return cfg_; }
  const OpPolicy& policy() const { return policy_; }
  void setPolicy(const OpPolicy& p) { policy_ = p; }
  Runtime& runtime() { return *rt_; }
  dht::KademliaNode& node() { return node_; }

  /// Read-through cache telemetry (hits/misses/evictions/...).
  const cache::CacheStats& cacheStats() const { return cache_.stats(); }
  cache::RecordCache& recordCache() { return cache_; }

 private:
  struct OpState;

  /// Latency-histogram op classes (finishOp granularity). Batched entry
  /// points share their single-op class; a searchSteps() walk records one
  /// kSearchStep op per hop.
  enum class OpClass : u8 { kInsert = 0, kTag, kSearchStep, kResolve };
  static constexpr usize kOpClassCount = 4;

  std::unique_ptr<Runtime> ownedRt_;  ///< set by the DhtNetwork convenience ctor
  Runtime* rt_;                       ///< never null
  dht::KademliaNode& node_;
  DharmaConfig cfg_;
  Rng rng_;
  OpPolicy policy_;
  OpCost total_;
  Counters counters_;
  cache::RecordCache cache_;  ///< read-through cache (cfg_.cacheEnabled)

  /// Pre-acquired histogram handles, null when cfg_.metrics is unset:
  /// [op class][0=ok, 1=error] and [0=put, 1=get][0=ok, 1=error]. The hot
  /// path pays one branch + one clock read + one atomic add.
  std::array<std::array<obs::Histogram*, 2>, kOpClassCount> opHist_{};
  std::array<std::array<obs::Histogram*, 2>, 2> blockHist_{};
  void initObs();

  /// True when this client's own node accepts datagrams; a client on an
  /// offline node fails every op with kNodeOffline at zero cost.
  bool online() const { return rt_->online(node_.address()); }

  std::shared_ptr<OpState> beginOp(OpClass cls);
  template <typename T>
  Outcome<T> finishOp(OpState& op, std::optional<T> value);

  /// One block PUT with policy-driven retries; counts into \p op.
  void putBlock(const std::shared_ptr<OpState>& op, const dht::NodeId& key,
                std::vector<dht::StoreToken> tokens, std::function<void()> done);
  /// One block GET with policy-driven retries (retried only when the miss
  /// coincided with RPC failures); delivers the final GetResult.
  void getBlock(const std::shared_ptr<OpState>& op, const dht::NodeId& key,
                dht::GetOptions opt,
                std::function<void(dht::GetResult)> done);

  /// getBlock behind the read-through cache: a fresh cached view is
  /// delivered at zero lookups (OpCost::servedFromCache); a miss falls
  /// through to the overlay — flagged allowCached only when
  /// \p acceptRemoteCached and the config agree — and a successful fetch
  /// populates the cache under \p kind's TTL. With cfg_.cacheEnabled off
  /// this IS getBlock.
  void getBlockCached(const std::shared_ptr<OpState>& op,
                      const dht::NodeId& key, cache::BlockKind kind,
                      dht::GetOptions opt, bool acceptRemoteCached,
                      std::function<void(dht::GetResult)> done);

  void putBlockAttempt(const std::shared_ptr<OpState>& op, dht::NodeId key,
                       std::vector<dht::StoreToken> tokens, u64 putId,
                       u32 retriesLeft, std::function<void()> done);
  void getBlockAttempt(const std::shared_ptr<OpState>& op, dht::NodeId key,
                       dht::GetOptions opt, u32 retriesLeft,
                       std::function<void(dht::GetResult)> done);

  /// Single implementation behind tagResource (batch of one, Table I's
  /// 4 + k) and tagResources (shared r̄ fetch, grouped PUTs).
  void tagResourcesSharedFetch(const std::string& res,
                               const std::vector<std::string>& tags,
                               std::function<void(Outcome<WriteReceipt>)> cb);

  /// Deterministic backoff for the retry numbered \p retryIndex (0-based).
  net::TimeUs backoffDelay(u32 retryIndex);

  /// Pure predicate: has \p op run past its policy deadline? (The caller
  /// records the kTimeout — this only reads state.)
  bool deadlineExceeded(OpState& op);
};

}  // namespace dharma::core
