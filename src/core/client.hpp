#pragma once
/// \file client.hpp
/// \brief DharmaClient: the distributed tagging protocol (Section IV).
///
/// One client rides one overlay node and exposes the three folksonomy
/// primitives, in both the *naive* and the *approximated* protocol:
///
///   insertResource(r, uri, {t1..tm})          — 2 + 2m lookups
///   tagResource(r, t)     naive               — 4 + |Tags(r)| lookups
///                         approximated        — 4 + k lookups
///   searchStep(t)                              — 2 lookups
///
/// Every method exists in an async form (callback, suitable for
/// interleaving concurrent operations inside the simulator — how the
/// consistency race of Section IV-B is reproduced) and a blocking form
/// that drives the simulation to completion.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/keys.hpp"
#include "dht/dht_network.hpp"

namespace dharma::core {

/// Protocol mode and parameters.
struct DharmaConfig {
  bool approximateA = true;  ///< cap reverse t̂ updates at k (Approx. A)
  u32 k = 1;                 ///< connection parameter
  bool approximateB = true;  ///< conditional forward increments (Approx. B)
  u32 searchTopN = 100;      ///< index-side top-N for search-step GETs
};

/// Cost of one protocol operation, in the paper's accounting unit.
struct OpCost {
  u64 lookups = 0;  ///< overlay lookups (1 per PUT or GET) — Table I's unit
  u64 puts = 0;
  u64 gets = 0;

  OpCost& operator+=(const OpCost& o) {
    lookups += o.lookups;
    puts += o.puts;
    gets += o.gets;
    return *this;
  }
};

/// One navigation step's retrieved sets.
struct SearchStepResult {
  bool tagKnown = false;                        ///< t̂ block existed
  std::vector<dht::BlockEntry> relatedTags;     ///< from t̂, weight-ranked
  std::vector<dht::BlockEntry> resources;       ///< from t̄, weight-ranked
  bool tagsTruncated = false;                   ///< index-side filtering hit
  bool resourcesTruncated = false;
};

/// A tagging/search client bound to one overlay node.
class DharmaClient {
 public:
  /// \param net  the overlay
  /// \param nodeIdx index of the node this client rides
  /// \param cfg  protocol configuration
  /// \param seed randomness for Approximation A's subset choice
  DharmaClient(dht::DhtNetwork& net, usize nodeIdx, DharmaConfig cfg = {},
               u64 seed = 7);

  // -- async protocol (composable inside the simulator) --

  /// Inserts resource \p res with \p uri and tag set \p tags
  /// (paper: create r̃ and r̄; per tag, update t̄i and t̂i → 2+2m lookups).
  void insertResourceAsync(const std::string& res, const std::string& uri,
                           const std::vector<std::string>& tags,
                           std::function<void(OpCost)> cb);

  /// Adds tag \p tag to resource \p res (paper Section IV-A/B; cost
  /// 4 + |Tags(r)| naive, 4 + k approximated).
  void tagResourceAsync(const std::string& res, const std::string& tag,
                        std::function<void(OpCost)> cb);

  /// One faceted-search step: fetch t̂ and t̄ (2 lookups).
  void searchStepAsync(const std::string& tag,
                       std::function<void(SearchStepResult, OpCost)> cb);

  /// Resolves a resource name to its URI via r̃ (1 lookup).
  void resolveUriAsync(const std::string& res,
                       std::function<void(std::optional<std::string>, OpCost)> cb);

  // -- blocking wrappers (drive the simulator) --

  OpCost insertResource(const std::string& res, const std::string& uri,
                        const std::vector<std::string>& tags);
  OpCost tagResource(const std::string& res, const std::string& tag);
  std::pair<SearchStepResult, OpCost> searchStep(const std::string& tag);
  std::pair<std::optional<std::string>, OpCost> resolveUri(const std::string& res);

  /// Accumulated cost over this client's lifetime.
  const OpCost& totalCost() const { return total_; }

  const DharmaConfig& config() const { return cfg_; }
  dht::DhtNetwork& overlay() { return net_; }
  dht::KademliaNode& node() { return net_.node(nodeIdx_); }

 private:
  dht::DhtNetwork& net_;
  usize nodeIdx_;
  DharmaConfig cfg_;
  Rng rng_;
  OpCost total_;

  // Issues a putMany and bumps cost counters (1 lookup per block PUT).
  void putBlock(const dht::NodeId& key, std::vector<dht::StoreToken> tokens,
                OpCost& cost, std::function<void()> done);
  void getBlock(const dht::NodeId& key, dht::GetOptions opt, OpCost& cost,
                std::function<void(std::optional<dht::BlockView>)> done);
};

}  // namespace dharma::core
