#pragma once
/// \file outcome.hpp
/// \brief Outcome-carrying results for the DHARMA client API.
///
/// PR 2 made failure real — under crash waves PUTs land on fewer than
/// kStore replicas and GETs come back empty — but the client callbacks
/// only delivered an OpCost, so every caller silently conflated
/// "succeeded" with "completed". This header is the contract that fixes
/// that: every protocol operation returns an Outcome<T> bundling
///
///   - the value (or an OpError from a small taxonomy),
///   - the OpCost actually paid (failed ops still cost lookups),
///   - per-PUT replica telemetry (Replication),
///   - the retry attempts spent under the client's OpPolicy.
///
/// See docs/API.md for the full contract and the old→new migration table.

#include <cassert>
#include <optional>
#include <vector>

#include "dht/kademlia_node.hpp"
#include "net/executor.hpp"

namespace dharma::core {

/// Cost of one protocol operation, in the paper's accounting unit.
struct OpCost {
  u64 lookups = 0;  ///< overlay lookups (1 per PUT or GET) — Table I's unit
  u64 puts = 0;
  u64 gets = 0;
  /// Reads answered by the client's read-through record cache: zero
  /// overlay lookups, accounted apart so the Table I identities above stay
  /// exact arithmetic whenever the cache is disabled (the field is then
  /// identically zero) and cache savings are visible, never silent.
  u64 servedFromCache = 0;

  OpCost& operator+=(const OpCost& o) {
    lookups += o.lookups;
    puts += o.puts;
    gets += o.gets;
    servedFromCache += o.servedFromCache;
    return *this;
  }
};

/// Why a protocol operation failed. Small on purpose: every failure a
/// caller can observe maps onto exactly one of these.
enum class OpError : u8 {
  kNotFound = 0,      ///< GET completed cleanly; no replica holds the block
  kQuorumFailed = 1,  ///< a PUT acked below the policy quorum after retries
  kTimeout = 2,       ///< per-op deadline hit, or holders unreachable
  kNodeOffline = 3,   ///< the client's own overlay node is offline
};

inline constexpr usize kOpErrorCount = 4;

const char* opErrorName(OpError e);

/// Per-operation replica telemetry: one entry per block PUT the operation
/// issued — the "replication degree" the DHT-survey literature says
/// production overlays must expose per operation. Entries land in
/// completion order (PUTs run concurrently), so use the aggregates below
/// rather than positional attribution.
struct Replication {
  std::vector<u32> acks;  ///< final replica ack count per block PUT
  u32 quorumMisses = 0;   ///< PUTs whose final acks stayed below quorum

  u32 puts() const { return static_cast<u32>(acks.size()); }

  /// Lowest ack count over the op's PUTs (0 when the op issued none).
  u32 minAcks() const {
    u32 m = 0;
    bool first = true;
    for (u32 a : acks) {
      m = first ? a : (a < m ? a : m);
      first = false;
    }
    return m;
  }
};

/// Per-client operation policy: what "succeeded" means and how hard the
/// client tries before reporting failure.
struct OpPolicy {
  /// A block PUT succeeds once this many replicas acked. 1 is the paper's
  /// implicit setting (any replica makes the token durable-ish); raise it
  /// toward kStore for read-your-writes under churn.
  u32 putQuorum = 1;

  /// Extra attempts per failed block op (0 disables retries). Retries are
  /// paid for in OpCost — on a healthy overlay nothing fails, so Table I
  /// costs are unchanged.
  u32 retryBudget = 2;

  /// Base backoff before the first retry; doubles per retry, with a
  /// deterministic jitter drawn from the client's Rng (same seed ⇒ same
  /// retry trace).
  net::TimeUs retryBackoffUs = 250'000;

  /// Per-operation deadline in simulated time (0 = none). Once exceeded,
  /// the op stops retrying and fails with OpError::kTimeout.
  net::TimeUs opDeadlineUs = 0;
};

/// Value-or-error result of one protocol operation. Cheap struct semantics:
/// inspect ok(), then value() or error(); cost/replication/retries are
/// always populated, success or not.
template <typename T>
struct Outcome {
  OpCost cost;              ///< lookups actually paid, retries included
  Replication replication;  ///< per-PUT replica telemetry (empty for reads)
  u32 retries = 0;          ///< retry attempts spent across the op's block ops

  std::optional<T> val;
  std::optional<OpError> err;

  bool ok() const { return val.has_value() && !err.has_value(); }
  explicit operator bool() const { return ok(); }

  OpError error() const {
    assert(err.has_value());
    return *err;
  }

  T& value() {
    assert(val.has_value());
    return *val;
  }
  const T& value() const {
    assert(val.has_value());
    return *val;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  static Outcome success(T v) {
    Outcome o;
    o.val = std::move(v);
    return o;
  }
  static Outcome failure(OpError e) {
    Outcome o;
    o.err = e;
    return o;
  }
};

/// Summary value of a successful write operation (insert / tag, single or
/// batched). The full per-PUT ack vector rides in Outcome::replication.
struct WriteReceipt {
  u32 blocksWritten = 0;  ///< block PUTs the operation issued
  u32 minReplicas = 0;    ///< lowest replica ack count across those PUTs
};

/// Maps a finished GET onto the taxonomy: nullopt on success, kTimeout when
/// the miss coincided with unreachable peers (the block may exist on dead
/// holders), kNotFound on a clean miss. Shared by DharmaClient and the
/// benches that GET raw keys.
std::optional<OpError> classifyGet(const dht::GetResult& r);

/// Maps a finished PUT against \p quorum: nullopt when enough replicas
/// acked, kQuorumFailed otherwise.
std::optional<OpError> classifyPut(const dht::PutResult& r, u32 quorum);

}  // namespace dharma::core
