#pragma once
/// \file session.hpp
/// \brief Distributed faceted-search session over the DHT (Section IV-A):
///        "At each navigation step, when a tag t is selected, tags and
///         resources related to t are retrieved by fetching blocks t̂ and
///         t̄; intersection with tag and resource sets retrieved in
///         following steps are performed locally."
///
/// Unlike folk::SearchSession (which walks in-memory graphs), this session
/// works on the *filtered* views the overlay returns: each step costs
/// exactly 2 lookups, and the candidate sets narrow through local
/// intersection of the fetched entries.

#include <string>
#include <vector>

#include "core/client.hpp"
#include "folksonomy/faceted.hpp"

namespace dharma::core {

/// Outcome of one distributed navigation step.
struct DistStepInfo {
  std::vector<dht::BlockEntry> display;  ///< candidate tags, sim-ranked
  usize tagCount = 0;                    ///< |T_i| (local, post-filtering)
  usize resourceCount = 0;               ///< |R_i|
  bool done = false;
  folk::StopReason reason = folk::StopReason::kNoCandidates;
  std::optional<OpError> error;          ///< set when reason == kFetchFailed
  OpCost cost;                           ///< 2 lookups per step (fewer when
                                         ///  the client cache serves a fetch)
  bool servedFromCache = false;          ///< any fetch of this step was a
                                         ///  client-cache hit (cost detail)
};

/// Faceted search over a DharmaClient.
class DharmaSession {
 public:
  DharmaSession(DharmaClient& client, folk::SearchConfig cfg = {});

  /// Starts at \p tag; T_0 / R_0 come from its t̂ / t̄ blocks.
  DistStepInfo start(const std::string& tag);

  /// Selects a displayed tag and narrows T/R locally.
  DistStepInfo select(const std::string& tag);

  /// Picks from the current display per \p strategy, selects it, and
  /// returns its name (empty if the session already stopped).
  std::string selectByStrategy(folk::Strategy s, Rng& rng);

  bool done() const { return done_; }
  folk::StopReason reason() const { return reason_; }

  /// The OpError behind a kFetchFailed stop (nullopt otherwise). A failed
  /// step never silently narrows the candidate sets: the session surfaces
  /// the partial-failure to the layer above instead of absorbing it.
  std::optional<OpError> lastError() const { return lastError_; }
  const std::vector<std::string>& path() const { return path_; }
  const std::vector<dht::BlockEntry>& display() const { return display_; }
  const std::vector<std::string>& resources() const { return resources_; }
  const OpCost& totalCost() const { return total_; }

 private:
  DharmaClient& client_;
  folk::SearchConfig cfg_;
  std::vector<std::string> candidates_;  // T_i, sorted names
  std::vector<std::string> resources_;   // R_i, sorted names
  std::vector<std::string> chosen_;      // sorted path members
  std::vector<std::string> path_;
  std::vector<dht::BlockEntry> display_;
  bool started_ = false;
  bool done_ = false;
  folk::StopReason reason_ = folk::StopReason::kNoCandidates;
  std::optional<OpError> lastError_;
  OpCost total_;

  DistStepInfo applyStep(const std::string& tag, const SearchStepResult& fetched,
                         const OpCost& cost, bool first);
  DistStepInfo failStep(const std::string& tag, OpError err, const OpCost& cost);
  void rebuildDisplay(const SearchStepResult& fetched);
  void checkStop();
};

}  // namespace dharma::core
