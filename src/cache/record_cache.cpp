#include "cache/record_cache.hpp"

#include "net/affinity.hpp"

namespace dharma::cache {

const char* blockKindName(BlockKind k) {
  switch (k) {
    case BlockKind::kResourceTags: return "resource-tags";
    case BlockKind::kTagResources: return "tag-resources";
    case BlockKind::kTagNeighbors: return "tag-neighbors";
    case BlockKind::kResourceUri: return "resource-uri";
    case BlockKind::kUnknown: return "unknown";
  }
  return "invalid";
}

RecordCache::RecordCache(CachePolicy policy) : policy_(policy) {}

void RecordCache::erase(
    std::map<dht::NodeId, std::list<Entry>::iterator>::iterator it) {
  lru_.erase(it->second);
  index_.erase(it);
}

const dht::BlockView* RecordCache::find(const dht::NodeId& key,
                                        net::TimeUs now) {
  DHARMA_ASSERT_AFFINITY(owner_, "RecordCache::find");
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (now >= it->second->expiresAtUs) {
    // Lazy expiry: a stale entry must never be served, so the read drops it.
    ++stats_.expirations;
    ++stats_.misses;
    erase(it);
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->view;
}

bool RecordCache::insert(const dht::NodeId& key, dht::BlockView view,
                         BlockKind kind, net::TimeUs now) {
  DHARMA_ASSERT_AFFINITY(owner_, "RecordCache::insert");
  return insertWithTtl(key, std::move(view), policy_.ttlFor(kind), now);
}

bool RecordCache::insertWithTtl(const dht::NodeId& key, dht::BlockView view,
                                net::TimeUs ttlUs, net::TimeUs now) {
  DHARMA_ASSERT_AFFINITY(owner_, "RecordCache::insertWithTtl");
  if (policy_.capacity == 0 || ttlUs == 0) return false;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->view = std::move(view);
    it->second->expiresAtUs = now + ttlUs;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.refreshes;
    return true;
  }
  if (index_.size() >= policy_.capacity) {
    // Strict LRU: the back of the list is the least recently used entry.
    auto victim = index_.find(lru_.back().key);
    erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, std::move(view), now + ttlUs});
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
  return true;
}

bool RecordCache::invalidate(const dht::NodeId& key) {
  DHARMA_ASSERT_AFFINITY(owner_, "RecordCache::invalidate");
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  erase(it);
  ++stats_.invalidations;
  return true;
}

usize RecordCache::expire(net::TimeUs now) {
  DHARMA_ASSERT_AFFINITY(owner_, "RecordCache::expire");
  usize dropped = 0;
  for (auto it = index_.begin(); it != index_.end();) {
    if (now >= it->second->expiresAtUs) {
      auto victim = it++;
      erase(victim);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.expirations += dropped;
  return dropped;
}

void RecordCache::clear() {
  DHARMA_ASSERT_AFFINITY(owner_, "RecordCache::clear");
  lru_.clear();
  index_.clear();
}

}  // namespace dharma::cache
