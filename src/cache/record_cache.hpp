#pragma once
/// \file record_cache.hpp
/// \brief Bounded, deterministic record cache for DHARMA block views.
///
/// DHARMA search sessions repeatedly fetch the same hot t̄/t̂ blocks (tag
/// popularity in folksonomies is heavy-tailed), so both the overlay and the
/// client keep a small cache of recently seen BlockViews:
///
///  - **node-side** (KademliaNode): holds non-authoritative copies pushed by
///    the Kademlia lookup-path caching protocol (STORE_CACHE, see
///    docs/PROTOCOL.md "Record caching") and serves them to GETs that opted
///    into non-authoritative reads;
///  - **client-side** (DharmaClient): a read-through cache in front of the
///    overlay — a hit costs zero lookups and is accounted separately
///    (OpCost::servedFromCache), so Table I identities are untouched when
///    the cache is disabled.
///
/// The cache is deliberately boring: LRU over a fixed capacity, TTLs per
/// block kind (or explicit per entry), and NO clock of its own — every
/// operation takes the caller's Executor time (net::TimeUs): virtual time
/// under the simulator (so cached behaviour replays bit-identically from a
/// seed), the monotonic wall clock under the real-time runtime. An entry
/// inserted at time T with TTL d is served for now < T + d and expired at
/// now >= T + d.

#include <array>
#include <list>
#include <map>

#include "dht/node_id.hpp"
#include "dht/storage.hpp"
#include "net/executor.hpp"

namespace dharma::cache {

/// The paper's four block types as the cache sees them, plus kUnknown for
/// raw DHT keys (block keys are hashes, so the overlay cannot recover the
/// kind — only the client, which derives the keys, can classify).
enum class BlockKind : u8 {
  kResourceTags = 0,  ///< r̄ — write-hot (every tag op increments it)
  kTagResources = 1,  ///< t̄ — read-hot during search
  kTagNeighbors = 2,  ///< t̂ — read-hot during search
  kResourceUri = 3,   ///< r̃ — effectively immutable after insert
  kUnknown = 4,       ///< opaque key (node-side path cache)
};

inline constexpr usize kBlockKindCount = 5;

const char* blockKindName(BlockKind k);

/// Cache bounds and freshness policy. TTLs are virtual-time microseconds;
/// a kind with TTL 0 is never cached, capacity 0 disables the cache.
struct CachePolicy {
  usize capacity = 512;  ///< max entries (LRU beyond this)

  /// Per-kind default TTL, indexed by BlockKind. The defaults encode the
  /// write rates of the paper's block scheme: r̄ is touched by every tag
  /// operation (short TTL), t̄/t̂ only grow monotonically and search is
  /// staleness-tolerant by design (medium), r̃ never changes after insert
  /// (long), and opaque node-side entries get the medium default.
  std::array<net::TimeUs, kBlockKindCount> ttlUs = {
      10'000'000,   // kResourceTags  (10 s)
      30'000'000,   // kTagResources  (30 s)
      30'000'000,   // kTagNeighbors  (30 s)
      120'000'000,  // kResourceUri   (120 s)
      30'000'000,   // kUnknown       (30 s)
  };

  net::TimeUs ttlFor(BlockKind k) const {
    return ttlUs[static_cast<usize>(k)];
  }
};

/// Monotonic counters; hits/(hits+misses) is the hit rate benches report.
struct CacheStats {
  u64 hits = 0;           ///< find() served a fresh entry
  u64 misses = 0;         ///< find() had nothing fresh (incl. expired-on-read)
  u64 insertions = 0;     ///< new entries admitted
  u64 refreshes = 0;      ///< existing entries overwritten in place
  u64 evictions = 0;      ///< entries dropped by LRU capacity pressure
  u64 expirations = 0;    ///< entries dropped past their TTL (lazy or sweep)
  u64 invalidations = 0;  ///< entries dropped by write-through invalidation

  u64 lookups() const { return hits + misses; }
  double hitRate() const {
    return lookups() ? static_cast<double>(hits) / static_cast<double>(lookups())
                     : 0.0;
  }
};

/// LRU + TTL cache of BlockViews keyed by DHT lookup key. Single-threaded
/// (owned by one executor's loop) and fully deterministic: iteration for
/// the expiry sweep runs in key order, eviction strictly in LRU order.
class RecordCache {
 public:
  explicit RecordCache(CachePolicy policy = {});

  /// Binds the executor whose loop thread owns this cache: every mutating
  /// or reading operation then carries a debug-only affinity assertion
  /// (net/affinity.hpp) that dies if some other thread calls in. Unbound
  /// (the default, and what standalone unit tests use) means unchecked.
  /// KademliaNode and DharmaClient bind their caches at construction.
  void bindOwner(const net::Executor* owner) { owner_ = owner; }

  /// Returns the cached view for \p key if present and fresh at \p now,
  /// refreshing its LRU position; an expired entry is dropped on the spot
  /// (counted as expiration + miss). The pointer is valid until the next
  /// non-const call.
  const dht::BlockView* find(const dht::NodeId& key, net::TimeUs now);

  /// Admits \p view under the kind's policy TTL. A kind with TTL 0 is not
  /// cached. Overwrites (and re-times) an existing entry. Returns whether
  /// the view was actually admitted (false: disabled cache or zero TTL).
  bool insert(const dht::NodeId& key, dht::BlockView view, BlockKind kind,
              net::TimeUs now);

  /// Admits \p view with an explicit TTL (the STORE_CACHE distance-scaled
  /// path). TTL 0 is a no-op. Returns whether the view was admitted.
  bool insertWithTtl(const dht::NodeId& key, dht::BlockView view,
                     net::TimeUs ttlUs, net::TimeUs now);

  /// Drops \p key (write-through invalidation). True if it was present.
  bool invalidate(const dht::NodeId& key);

  /// Drops every entry whose deadline has passed at \p now; returns the
  /// number dropped. find() already expires lazily — the sweep exists so
  /// dead entries on *idle* keys don't outlive their TTL (maintenance runs
  /// it periodically).
  usize expire(net::TimeUs now);

  /// Drops everything (stats are kept).
  void clear();

  usize size() const { return index_.size(); }
  usize capacity() const { return policy_.capacity; }
  bool enabled() const { return policy_.capacity > 0; }
  const CachePolicy& policy() const { return policy_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    dht::NodeId key;
    dht::BlockView view;
    net::TimeUs expiresAtUs = 0;
  };

  CachePolicy policy_;
  CacheStats stats_;
  const net::Executor* owner_ = nullptr;  ///< affinity owner; null = unchecked
  std::list<Entry> lru_;  // front = most recently used
  std::map<dht::NodeId, std::list<Entry>::iterator> index_;

  void erase(std::map<dht::NodeId, std::list<Entry>::iterator>::iterator it);
};

}  // namespace dharma::cache
