#include "crypto/hmac.hpp"

#include <cstring>

namespace dharma::crypto {

Digest160 hmacSha1(std::string_view key, const u8* data, usize len) {
  u8 keyBlock[64];
  std::memset(keyBlock, 0, sizeof(keyBlock));
  if (key.size() > 64) {
    Digest160 kd = sha1(key);
    std::memcpy(keyBlock, kd.data(), kd.size());
  } else {
    std::memcpy(keyBlock, key.data(), key.size());
  }

  u8 ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = keyBlock[i] ^ 0x36;
    opad[i] = keyBlock[i] ^ 0x5c;
  }

  Sha1 inner;
  inner.update(ipad, 64);
  inner.update(data, len);
  Digest160 innerDigest = inner.finish();

  Sha1 outer;
  outer.update(opad, 64);
  outer.update(innerDigest.data(), innerDigest.size());
  return outer.finish();
}

Digest160 hmacSha1(std::string_view key, std::string_view data) {
  return hmacSha1(key, reinterpret_cast<const u8*>(data.data()), data.size());
}

bool digestEqual(const Digest160& a, const Digest160& b) {
  u8 acc = 0;
  for (usize i = 0; i < a.size(); ++i) acc |= static_cast<u8>(a[i] ^ b[i]);
  return acc == 0;
}

}  // namespace dharma::crypto
