#pragma once
/// \file hmac.hpp
/// \brief HMAC-SHA1 (RFC 2104).
///
/// The identity layer authenticates credentials and stored tokens with
/// HMACs keyed by the Certification Service. This substitutes Likir's RSA
/// signatures (see docs/DESIGN.md §2): the verify/reject control flow is the
/// same, only the primitive differs.

#include <string_view>
#include <vector>

#include "crypto/sha1.hpp"

namespace dharma::crypto {

/// HMAC-SHA1 over \p data with \p key.
Digest160 hmacSha1(std::string_view key, std::string_view data);
Digest160 hmacSha1(std::string_view key, const u8* data, usize len);

/// Constant-time digest comparison.
bool digestEqual(const Digest160& a, const Digest160& b);

}  // namespace dharma::crypto
