#include "crypto/sha1.hpp"

#include <cstring>
#include <stdexcept>

namespace dharma::crypto {

namespace {
constexpr u32 rotl32(u32 x, int k) { return (x << k) | (x >> (32 - k)); }
}  // namespace

void Sha1::reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  totalLen_ = 0;
  blockLen_ = 0;
}

void Sha1::processBlock(const u8* p) {
  u32 w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<u32>(p[i * 4]) << 24) | (static_cast<u32>(p[i * 4 + 1]) << 16) |
           (static_cast<u32>(p[i * 4 + 2]) << 8) | static_cast<u32>(p[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  u32 a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    u32 f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    u32 tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(const u8* data, usize len) {
  totalLen_ += len;
  while (len > 0) {
    usize take = std::min(len, usize{64} - blockLen_);
    std::memcpy(block_ + blockLen_, data, take);
    blockLen_ += take;
    data += take;
    len -= take;
    if (blockLen_ == 64) {
      processBlock(block_);
      blockLen_ = 0;
    }
  }
}

Digest160 Sha1::finish() {
  u64 bitLen = totalLen_ * 8;
  // Append 0x80, pad with zeros to 56 mod 64, then 64-bit big-endian length.
  u8 pad = 0x80;
  update(&pad, 1);
  u8 zero = 0x00;
  while (blockLen_ != 56) update(&zero, 1);
  u8 lenBytes[8];
  for (int i = 0; i < 8; ++i) lenBytes[i] = static_cast<u8>(bitLen >> (56 - 8 * i));
  // Bypass totalLen_ accounting for the length field itself.
  std::memcpy(block_ + blockLen_, lenBytes, 8);
  blockLen_ += 8;
  processBlock(block_);
  blockLen_ = 0;

  Digest160 out;
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<u8>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<u8>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<u8>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<u8>(h_[i]);
  }
  return out;
}

Digest160 sha1(std::string_view data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

Digest160 sha1(const u8* data, usize len) {
  Sha1 h;
  h.update(data, len);
  return h.finish();
}

std::string toHex(const Digest160& d) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (u8 b : d) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

Digest160 digestFromHex(std::string_view hex) {
  if (hex.size() != 40) throw std::invalid_argument("digestFromHex: need 40 chars");
  auto nib = [](char c) -> u8 {
    if (c >= '0' && c <= '9') return static_cast<u8>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<u8>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<u8>(c - 'A' + 10);
    throw std::invalid_argument("digestFromHex: bad hex char");
  };
  Digest160 d;
  for (usize i = 0; i < 20; ++i) {
    d[i] = static_cast<u8>((nib(hex[2 * i]) << 4) | nib(hex[2 * i + 1]));
  }
  return d;
}

}  // namespace dharma::crypto
