#pragma once
/// \file sha1.hpp
/// \brief From-scratch SHA-1 (FIPS 180-1).
///
/// SHA-1 is the hash Kademlia historically keys its 160-bit identifier
/// space with, and the paper's block keys are "the hash of t|<type>".
/// Collision resistance is irrelevant here (keys only need to spread
/// uniformly over the ring), so SHA-1's cryptographic retirement does not
/// affect the reproduction.

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace dharma::crypto {

/// 160-bit digest.
using Digest160 = std::array<u8, 20>;

/// Incremental SHA-1 hasher.
class Sha1 {
 public:
  Sha1() { reset(); }

  /// Clears state for a fresh message.
  void reset();

  /// Absorbs \p len bytes.
  void update(const u8* data, usize len);
  void update(std::string_view s) {
    update(reinterpret_cast<const u8*>(s.data()), s.size());
  }
  void update(const std::vector<u8>& v) { update(v.data(), v.size()); }

  /// Finalises and returns the digest; the hasher must be reset() before
  /// reuse.
  Digest160 finish();

 private:
  u32 h_[5];
  u64 totalLen_ = 0;
  u8 block_[64];
  usize blockLen_ = 0;

  void processBlock(const u8* block);
};

/// One-shot convenience.
Digest160 sha1(std::string_view data);
Digest160 sha1(const u8* data, usize len);

/// Lower-case hex rendering of a digest.
std::string toHex(const Digest160& d);

/// Parses 40 hex chars into a digest; throws std::invalid_argument.
Digest160 digestFromHex(std::string_view hex);

}  // namespace dharma::crypto
