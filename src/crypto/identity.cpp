#include "crypto/identity.hpp"

#include <utility>

namespace dharma::crypto {

std::string Credential::signedPayload() const {
  std::string s;
  s.reserve(userId.size() + 64);
  s += "cred|";
  s += userId;
  s += '|';
  s += toHex(nodeId);
  s += '|';
  s += std::to_string(expiresAt);
  return s;
}

CertificationService::CertificationService(std::string secret, std::string salt)
    : secret_(std::move(secret)), salt_(std::move(salt)) {}

Digest160 CertificationService::nodeIdFor(std::string_view userId) const {
  std::string material;
  material.reserve(userId.size() + salt_.size() + 1);
  material += userId;
  material += '|';
  material += salt_;
  return sha1(material);
}

Credential CertificationService::enroll(std::string_view userId,
                                        u64 expiresAt) const {
  Credential c;
  c.userId = std::string(userId);
  c.nodeId = nodeIdFor(userId);
  c.expiresAt = expiresAt;
  c.mac = hmacSha1(secret_, c.signedPayload());
  return c;
}

bool CertificationService::verify(const Credential& c, u64 now) const {
  if (c.expiresAt != 0 && now > c.expiresAt) return false;
  Digest160 expected = hmacSha1(secret_, c.signedPayload());
  return digestEqual(expected, c.mac);
}

ContentSignature CertificationService::signContent(std::string_view userId,
                                                   std::string_view keyHex,
                                                   std::string_view content) const {
  std::string payload;
  payload.reserve(userId.size() + keyHex.size() + content.size() + 8);
  payload += "tok|";
  payload += userId;
  payload += '|';
  payload += keyHex;
  payload += '|';
  payload += content;
  ContentSignature sig;
  sig.userId = std::string(userId);
  sig.mac = hmacSha1(secret_, payload);
  return sig;
}

bool CertificationService::verifyContent(const ContentSignature& sig,
                                         std::string_view keyHex,
                                         std::string_view content) const {
  std::string payload;
  payload.reserve(sig.userId.size() + keyHex.size() + content.size() + 8);
  payload += "tok|";
  payload += sig.userId;
  payload += '|';
  payload += keyHex;
  payload += '|';
  payload += content;
  Digest160 expected = hmacSha1(secret_, payload);
  return digestEqual(expected, sig.mac);
}

}  // namespace dharma::crypto
