#pragma once
/// \file identity.hpp
/// \brief Likir-style identity layer for the DHT.
///
/// The paper's implementation runs on Likir [12]: a Kademlia variant where
/// a Certification Service (CS) binds each user identity to a node id, and
/// every RPC and stored content carries verifiable authorship. We reproduce
/// that structure:
///
///   - CertificationService::enroll() issues a Credential binding
///     (userId, nodeId, expiry) with an authentication code.
///   - Nodes attach their Credential to every RPC; receivers verify it
///     before updating routing tables or accepting stores (Sybil/ID-spoof
///     defence).
///   - Stored tokens carry a ContentSignature binding (userId, key, token)
///     so replicas can reject forged writes.
///
/// Substitution note (docs/DESIGN.md §2): Likir signs with RSA; we use HMAC-SHA1
/// keyed by the CS. Verification in a real deployment would use the CS
/// public key; here every node holds a verification handle to the single
/// simulated CS. The accept/reject code paths are identical.

#include <optional>
#include <string>
#include <string_view>

#include "crypto/hmac.hpp"
#include "crypto/sha1.hpp"

namespace dharma::crypto {

/// Identity credential issued by the Certification Service.
struct Credential {
  std::string userId;   ///< human-level identity (account name)
  Digest160 nodeId;     ///< overlay identifier bound to the user
  u64 expiresAt = 0;    ///< simulated-time expiry (0 = never)
  Digest160 mac{};      ///< CS authentication code over the fields above

  /// Canonical byte string the MAC covers.
  std::string signedPayload() const;
};

/// Authorship proof attached to stored tokens.
struct ContentSignature {
  std::string userId;
  Digest160 mac{};
};

/// Simulated Likir Certification Service.
///
/// Deterministic: node ids are derived as SHA1(userId | salt), so a given
/// user enrolls to the same overlay position in every run.
class CertificationService {
 public:
  /// \param secret CS private key material.
  /// \param salt   namespace salt mixed into node-id derivation.
  explicit CertificationService(std::string secret, std::string salt = "likir");

  /// Issues a credential for \p userId valid until \p expiresAt.
  Credential enroll(std::string_view userId, u64 expiresAt = 0) const;

  /// Verifies a credential's MAC and expiry at time \p now.
  bool verify(const Credential& c, u64 now = 0) const;

  /// Signs content authored by \p userId stored under \p keyHex.
  ContentSignature signContent(std::string_view userId, std::string_view keyHex,
                               std::string_view content) const;

  /// Verifies a content signature.
  bool verifyContent(const ContentSignature& sig, std::string_view keyHex,
                     std::string_view content) const;

  /// Deterministic node id for a user (same derivation enroll() uses).
  Digest160 nodeIdFor(std::string_view userId) const;

 private:
  std::string secret_;
  std::string salt_;
};

}  // namespace dharma::crypto
