#pragma once
/// \file interner.hpp
/// \brief String interning: tag/resource names <-> dense u32 ids.
///
/// The analytical machinery works on dense integer ids; names only matter
/// at the DHT boundary (block keys hash names) and in user-facing output.

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace dharma::folk {

/// Bidirectional string <-> id table. Ids are dense and stable.
class Interner {
 public:
  /// Returns the id of \p name, inserting it if new.
  u32 intern(std::string_view name);

  /// Id of \p name if present.
  std::optional<u32> find(std::string_view name) const;

  /// Name for \p id (must be valid).
  const std::string& name(u32 id) const { return names_.at(id); }

  /// Number of interned strings.
  u32 size() const { return static_cast<u32>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, u32> index_;
};

}  // namespace dharma::folk
