#pragma once
/// \file derive.hpp
/// \brief Exact FG derivation from a complete TRG.
///
/// Computes sim(t1,t2) = Σ_{r ∈ Res(t1)} u(t2,r) in one pass over
/// resources: every resource r contributes u(b,r) to sim(a,b) for each
/// ordered pair (a,b) of distinct tags in Tags(r). Optionally parallelised
/// by sharding resources across a thread pool with per-shard accumulation
/// maps merged at the end (deterministic: addition commutes).

#include "folksonomy/fg.hpp"
#include "folksonomy/trg.hpp"
#include "util/thread_pool.hpp"

namespace dharma::folk {

/// Builds the exact theoretic FG of \p trg.
/// \param pool optional thread pool; nullptr runs sequentially.
CsrFg deriveExactFg(const Trg& trg, ThreadPool* pool = nullptr);

/// Same, but returns the mutable representation (used by tests that keep
/// evolving the graph).
DynamicFg deriveExactFgDynamic(const Trg& trg);

}  // namespace dharma::folk
