#include "folksonomy/faceted.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dharma::folk {

const char* strategyName(Strategy s) {
  switch (s) {
    case Strategy::kFirst: return "first";
    case Strategy::kLast: return "last";
    case Strategy::kRandom: return "random";
  }
  return "?";
}

const char* stopReasonName(StopReason r) {
  switch (r) {
    case StopReason::kTagsExhausted: return "tags<=1";
    case StopReason::kResourcesNarrowed: return "resources<=stop";
    case StopReason::kNoCandidates: return "no-candidates";
    case StopReason::kMaxSteps: return "max-steps";
    case StopReason::kFetchFailed: return "fetch-failed";
  }
  return "?";
}

SearchSession::SearchSession(const CsrFg& fg, const Trg& trg, SearchConfig cfg)
    : fg_(fg), trg_(trg), cfg_(cfg) {
  assert(trg_.frozen() && "freeze() the TRG before searching");
}

void SearchSession::start(u32 t0) {
  done_ = false;
  reason_ = StopReason::kNoCandidates;
  path_.assign(1, t0);
  chosen_.assign(1, t0);

  tags_.clear();
  for (const auto& nb : fg_.neighbors(t0)) {
    if (nb.tag != t0) tags_.push_back(nb.tag);
  }
  // Rows are sorted by id already; keep the invariant explicit.
  assert(std::is_sorted(tags_.begin(), tags_.end()));

  auto res = trg_.resourcesOf(t0);
  resources_.assign(res.begin(), res.end());

  refreshDisplay(t0);
  checkStop();
}

void SearchSession::refreshDisplay(u32 current) {
  display_.clear();
  // T_i ⊆ N_FG(current) by construction; walk the sorted row and the sorted
  // candidate list together to collect each candidate's sim(current, ·).
  auto row = fg_.neighbors(current);
  auto it = row.begin();
  for (u32 t : tags_) {
    while (it != row.end() && it->tag < t) ++it;
    if (it == row.end()) break;
    if (it->tag == t) display_.push_back(*it);
  }
  // Highest-similarity first; id tie-break for determinism.
  std::sort(display_.begin(), display_.end(),
            [](const CsrFg::Neighbor& a, const CsrFg::Neighbor& b) {
              return a.weight != b.weight ? a.weight > b.weight : a.tag < b.tag;
            });
  if (display_.size() > cfg_.displayCap) display_.resize(cfg_.displayCap);
}

void SearchSession::checkStop() {
  if (done_) return;
  if (resources_.size() <= cfg_.resourceStop) {
    done_ = true;
    reason_ = StopReason::kResourcesNarrowed;
  } else if (tags_.size() <= 1) {
    done_ = true;
    reason_ = StopReason::kTagsExhausted;
  } else if (display_.empty()) {
    done_ = true;
    reason_ = StopReason::kNoCandidates;
  } else if (path_.size() > cfg_.maxSteps) {
    done_ = true;
    reason_ = StopReason::kMaxSteps;
  }
}

void SearchSession::select(u32 t) {
  if (done_) throw std::logic_error("SearchSession::select on finished session");
  assert(std::any_of(display_.begin(), display_.end(),
                     [&](const CsrFg::Neighbor& n) { return n.tag == t; }) &&
         "selected tag must be displayed");
  path_.push_back(t);
  chosen_.insert(std::upper_bound(chosen_.begin(), chosen_.end(), t), t);

  // T_i = (T_{i-1} ∩ N_FG(t)) \ chosen
  std::vector<u32> next;
  next.reserve(std::min<usize>(tags_.size(), fg_.outDegree(t)));
  auto row = fg_.neighbors(t);
  auto rowIt = row.begin();
  for (u32 cand : tags_) {
    while (rowIt != row.end() && rowIt->tag < cand) ++rowIt;
    if (rowIt == row.end()) break;
    if (rowIt->tag == cand &&
        !std::binary_search(chosen_.begin(), chosen_.end(), cand)) {
      next.push_back(cand);
    }
  }
  tags_ = std::move(next);

  // R_i = R_{i-1} ∩ Res(t)
  auto res = trg_.resourcesOf(t);
  std::vector<u32> nextRes;
  nextRes.reserve(std::min(resources_.size(), res.size()));
  std::set_intersection(resources_.begin(), resources_.end(), res.begin(),
                        res.end(), std::back_inserter(nextRes));
  resources_ = std::move(nextRes);

  refreshDisplay(t);
  checkStop();
}

u32 SearchSession::selectByStrategy(Strategy s, Rng& rng) {
  assert(!done_ && !display_.empty());
  u32 pick = 0;
  switch (s) {
    case Strategy::kFirst:
      pick = display_.front().tag;
      break;
    case Strategy::kLast:
      pick = display_.back().tag;
      break;
    case Strategy::kRandom:
      pick = display_[static_cast<usize>(rng.uniform(display_.size()))].tag;
      break;
  }
  select(pick);
  return pick;
}

SearchResult runSearch(const CsrFg& fg, const Trg& trg, u32 start, Strategy s,
                       Rng& rng, SearchConfig cfg) {
  SearchSession session(fg, trg, cfg);
  session.start(start);
  while (!session.done()) {
    session.selectByStrategy(s, rng);
  }
  SearchResult out;
  out.path = session.path();
  out.steps = static_cast<u32>(out.path.size() - 1);
  out.reason = session.reason();
  out.finalTagCount = session.candidateTags().size();
  out.finalResourceCount = session.resources().size();
  return out;
}

std::vector<u32> mostPopularTags(const Trg& trg, usize n) {
  std::vector<u32> tags;
  tags.reserve(trg.tagSpan());
  for (u32 t = 0; t < trg.tagSpan(); ++t) {
    if (trg.tagDegree(t) > 0) tags.push_back(t);
  }
  usize take = std::min(n, tags.size());
  std::partial_sort(tags.begin(), tags.begin() + static_cast<long>(take),
                    tags.end(), [&](u32 a, u32 b) {
                      u32 da = trg.tagDegree(a), db = trg.tagDegree(b);
                      return da != db ? da > db : a < b;
                    });
  tags.resize(take);
  return tags;
}

}  // namespace dharma::folk
