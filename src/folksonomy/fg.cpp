#include "folksonomy/fg.hpp"

#include <algorithm>
#include <cassert>

namespace dharma::folk {

void DynamicFg::increment(u32 from, u32 to, u64 delta) {
  // The FG has no self-arcs; callers may still ask (e.g. re-tagging), so the
  // request is ignored rather than asserted on.
  if (from == to || delta == 0) return;
  map_.addTo(packPair(from, to), delta);
  totalWeight_ += delta;
}

CsrFg CsrFg::fromDynamic(const DynamicFg& dyn, u32 numTags) {
  CsrFg g;
  g.offsets_.assign(static_cast<usize>(numTags) + 1, 0);
  // Pass 1: row sizes.
  dyn.forEachArc([&](u32 from, u32, u64) {
    assert(from < numTags);
    ++g.offsets_[from + 1];
  });
  for (usize i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];
  // Pass 2: fill.
  g.arcs_.resize(g.offsets_.back());
  std::vector<u64> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  dyn.forEachArc([&](u32 from, u32 to, u64 w) {
    g.arcs_[cursor[from]++] = Neighbor{to, w};
    g.totalWeight_ += w;
  });
  // Pass 3: sort each row by neighbour id.
  for (u32 t = 0; t < numTags; ++t) {
    auto begin = g.arcs_.begin() + static_cast<long>(g.offsets_[t]);
    auto end = g.arcs_.begin() + static_cast<long>(g.offsets_[t + 1]);
    std::sort(begin, end,
              [](const Neighbor& a, const Neighbor& b) { return a.tag < b.tag; });
  }
  return g;
}

std::span<const CsrFg::Neighbor> CsrFg::neighbors(u32 t) const {
  if (t + 1 >= offsets_.size()) return {};
  return {arcs_.data() + offsets_[t], arcs_.data() + offsets_[t + 1]};
}

u64 CsrFg::weightOf(u32 from, u32 to) const {
  auto row = neighbors(from);
  auto it = std::lower_bound(
      row.begin(), row.end(), to,
      [](const Neighbor& n, u32 target) { return n.tag < target; });
  if (it == row.end() || it->tag != to) return 0;
  return it->weight;
}

}  // namespace dharma::folk
