#include "folksonomy/model.hpp"

#include <cassert>

namespace dharma::folk {

MaintenanceConfig exactMode() { return MaintenanceConfig{false, 0, false}; }

MaintenanceConfig approxMode(u32 k) { return MaintenanceConfig{true, k, true}; }

MaintenanceConfig approxAOnly(u32 k) { return MaintenanceConfig{true, k, false}; }

MaintenanceConfig approxBOnly() { return MaintenanceConfig{false, 0, true}; }

FolksonomyModel::FolksonomyModel(MaintenanceConfig cfg, u64 seed)
    : cfg_(cfg), rng_(seed) {}

void FolksonomyModel::insertResource(u32 res, std::span<const u32> tags) {
  assert(trg_.resourceDegree(res) == 0 && "insertResource: resource exists");
  ++counters_.resourceInsertions;
  // Deduplicate the input tag set while preserving order.
  std::vector<u32>& uniq = scratch_;
  uniq.clear();
  for (u32 t : tags) {
    bool seen = false;
    for (u32 u : uniq) {
      if (u == t) {
        seen = true;
        break;
      }
    }
    if (!seen) uniq.push_back(t);
  }
  for (u32 t : uniq) trg_.addAnnotation(res, t, 1);
  // All pairwise similarities gain one unit in both directions. Resource
  // insertion is not approximated (its DHT cost is already 2 + 2m: each
  // t̂i block is written exactly once).
  for (usize i = 0; i < uniq.size(); ++i) {
    for (usize j = 0; j < uniq.size(); ++j) {
      if (i == j) continue;
      fg_.increment(uniq[i], uniq[j], 1);
      ++counters_.forwardArcUpdates;
    }
  }
}

void FolksonomyModel::tagResource(u32 res, u32 t) {
  ++counters_.tagInsertions;
  // Snapshot Tags(r) before the operation; exclude t itself.
  std::vector<u32> others;
  std::vector<u32> otherWeights;
  bool wasPresent = false;
  for (const TrgEdge& e : trg_.tagsOf(res)) {
    if (e.tag == t) {
      wasPresent = true;
      continue;
    }
    others.push_back(e.tag);
    otherWeights.push_back(e.weight);
  }

  trg_.addAnnotation(res, t, 1);

  // Reverse arcs: sim(τ, t) += 1. Under Approximation A only a uniform
  // random subset of size <= k is updated (each update is one τ̂ lookup on
  // the DHT).
  if (!others.empty()) {
    if (cfg_.approxA && others.size() > cfg_.k) {
      std::vector<u32> idx =
          rng_.sampleIndices(static_cast<u32>(others.size()), cfg_.k);
      for (u32 i : idx) {
        fg_.increment(others[i], t, 1);
        ++counters_.reverseArcUpdates;
      }
    } else {
      for (u32 tau : others) {
        fg_.increment(tau, t, 1);
        ++counters_.reverseArcUpdates;
      }
    }
  }

  // Forward arcs: only when t newly joins Tags(r). Exact: sim(t,τ) +=
  // u(τ,r). Approximation B: if the arc does not exist yet, start it at 1.
  if (!wasPresent) {
    for (usize i = 0; i < others.size(); ++i) {
      u64 delta = otherWeights[i];
      if (cfg_.approxB && !fg_.hasArc(t, others[i])) delta = 1;
      fg_.increment(t, others[i], delta);
      ++counters_.forwardArcUpdates;
    }
  }
}

CsrFg FolksonomyModel::freezeFg(u32 numTags) const {
  u32 span = numTags == 0 ? trg_.tagSpan() : numTags;
  return CsrFg::fromDynamic(fg_, span);
}

}  // namespace dharma::folk
