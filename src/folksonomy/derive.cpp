#include "folksonomy/derive.hpp"

#include <mutex>

namespace dharma::folk {

namespace {
void accumulateResource(const Trg& trg, u32 res, DynamicFg& fg) {
  auto tags = trg.tagsOf(res);
  for (const TrgEdge& a : tags) {
    for (const TrgEdge& b : tags) {
      if (a.tag == b.tag) continue;
      // r ∈ Res(a.tag) and u(b.tag, r) = b.weight.
      fg.increment(a.tag, b.tag, b.weight);
    }
  }
}
}  // namespace

DynamicFg deriveExactFgDynamic(const Trg& trg) {
  DynamicFg fg;
  for (u32 r = 0; r < trg.resourceSpan(); ++r) accumulateResource(trg, r, fg);
  return fg;
}

CsrFg deriveExactFg(const Trg& trg, ThreadPool* pool) {
  if (pool == nullptr || pool->threadCount() <= 1) {
    return CsrFg::fromDynamic(deriveExactFgDynamic(trg), trg.tagSpan());
  }
  // Parallel: shard resources, accumulate into per-shard maps, merge.
  DynamicFg global;
  std::mutex mu;
  parallelFor(pool, trg.resourceSpan(), 4096, [&](usize begin, usize end) {
    DynamicFg local;
    for (usize r = begin; r < end; ++r) {
      accumulateResource(trg, static_cast<u32>(r), local);
    }
    std::lock_guard lk(mu);
    local.forEachArc([&](u32 from, u32 to, u64 w) { global.increment(from, to, w); });
  });
  return CsrFg::fromDynamic(global, trg.tagSpan());
}

}  // namespace dharma::folk
