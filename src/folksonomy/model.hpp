#pragma once
/// \file model.hpp
/// \brief Folksonomy maintenance: exact (Section III-B) and approximated
///        (Section IV-B) evolution of the TRG + FG pair.
///
/// Exact rules:
///   Resource insertion of r with tag set {t1..tm}:
///     - TRG gains edges (ti, r) with u = 1;
///     - FG: every ordered pair gains sim(ti,tj) += 1.
///   Tag insertion of t on r:
///     - TRG: u(t,r) += 1;
///     - FG reverse arcs: sim(τ,t) += 1 for every τ ∈ Tags(r) \ {t};
///     - FG forward arcs (only if t was NOT already in Tags(r)):
///       sim(t,τ) += u(τ,r) for every τ.
///
/// Approximation A: the reverse-arc update set is a uniformly random subset
/// of Tags(r)\{t} of size at most k (the *connection parameter*) — this is
/// what caps the tagging cost at 4 + k DHT lookups.
///
/// Approximation B: when the forward arc (t,τ) does not yet exist, create
/// it with weight 1 instead of u(τ,r) — removing the read-dependent
/// increment that races under concurrent tagging.
///
/// The two approximations are independent toggles so their effects can be
/// ablated separately (docs/DESIGN.md §5).

#include <span>

#include "folksonomy/fg.hpp"
#include "folksonomy/trg.hpp"
#include "util/rng.hpp"

namespace dharma::folk {

/// Maintenance mode switches.
struct MaintenanceConfig {
  bool approxA = false;  ///< cap reverse updates at k random co-tags
  u32 k = 1;             ///< connection parameter (Approximation A)
  bool approxB = false;  ///< new forward arcs start at 1, not u(τ,r)
};

/// Convenience factories for the four ablation modes.
MaintenanceConfig exactMode();
MaintenanceConfig approxMode(u32 k);  ///< paper default: A + B
MaintenanceConfig approxAOnly(u32 k);
MaintenanceConfig approxBOnly();

/// Operation-cost counters mirroring Table I's accounting at model level:
/// each reverse-arc update corresponds to one τ̂ block lookup.
struct MaintenanceCounters {
  u64 resourceInsertions = 0;
  u64 tagInsertions = 0;
  u64 reverseArcUpdates = 0;  ///< Σ per-op |subset| — the "+k" / "+|Tags(r)|"
  u64 forwardArcUpdates = 0;
};

/// A TRG + FG pair evolving under a maintenance policy.
class FolksonomyModel {
 public:
  /// \param cfg  exact/approximated policy
  /// \param seed randomness for Approximation A's subset sampling
  explicit FolksonomyModel(MaintenanceConfig cfg = {}, u64 seed = 1);

  /// Inserts new resource \p res labelled with \p tags (paper III-B.1).
  /// Duplicate tags in the input are ignored. The resource must be new
  /// (checked in debug builds); tags may be new or existing.
  void insertResource(u32 res, std::span<const u32> tags);

  /// Adds tag \p t to resource \p res (paper III-B.2). The resource may be
  /// unknown yet — the replay of Section V-B starts from an empty graph and
  /// issues only tagging operations.
  void tagResource(u32 res, u32 t);

  const Trg& trg() const { return trg_; }
  const DynamicFg& fg() const { return fg_; }
  const MaintenanceConfig& config() const { return cfg_; }
  const MaintenanceCounters& counters() const { return counters_; }

  /// Freezes the FG into CSR form. \p numTags defaults to the TRG tag span.
  CsrFg freezeFg(u32 numTags = 0) const;

 private:
  MaintenanceConfig cfg_;
  Rng rng_;
  Trg trg_;
  DynamicFg fg_;
  MaintenanceCounters counters_;
  std::vector<u32> scratch_;  // reverse-subset scratch buffer
};

}  // namespace dharma::folk
