#pragma once
/// \file trg.hpp
/// \brief The Tag-Resource Graph (paper Section III-A).
///
/// Bipartite weighted graph: edge (t, r) with weight u(t,r) = number of
/// users who tagged resource r with tag t (distributional aggregation over
/// the user dimension). Tags(r) and Res(t) are the paper's equations (1)
/// and (2).
///
/// Layout: per-resource edge lists carry the weights (resource tag sets
/// are small — Last.fm mean 5); per-tag lists store resource ids only
/// (weights are recovered from the resource side when needed), which keeps
/// the frequent addAnnotation path O(|Tags(r)|) instead of O(|Res(t)|).

#include <span>
#include <vector>

#include "util/types.hpp"

namespace dharma::folk {

/// One (tag, weight) edge as seen from a resource.
struct TrgEdge {
  u32 tag = 0;
  u32 weight = 0;
};

/// The bipartite Tag-Resource graph over dense ids.
class Trg {
 public:
  /// Result of one annotation.
  struct AddResult {
    bool newEdge = false;  ///< true if this was the first (t,r) annotation
    u32 weight = 0;        ///< u(t,r) after the operation
  };

  /// Records one user annotation of \p res with \p tag (weight += count).
  AddResult addAnnotation(u32 res, u32 tag, u32 count = 1);

  /// u(t,r); 0 if the edge does not exist.
  u32 weight(u32 res, u32 tag) const;

  /// True if at least one user tagged \p res with \p tag.
  bool hasEdge(u32 res, u32 tag) const { return weight(res, tag) > 0; }

  /// Tags(r) with weights. Empty span for unknown resources.
  std::span<const TrgEdge> tagsOf(u32 res) const;

  /// Res(t) as resource ids. freeze() sorts these ascending.
  std::span<const u32> resourcesOf(u32 tag) const;

  /// |Tags(r)|.
  u32 resourceDegree(u32 res) const {
    return res < resTags_.size() ? static_cast<u32>(resTags_[res].size()) : 0;
  }

  /// |Res(t)|.
  u32 tagDegree(u32 tag) const {
    return tag < tagRes_.size() ? static_cast<u32>(tagRes_[tag].size()) : 0;
  }

  /// One past the largest resource id ever touched.
  u32 resourceSpan() const { return static_cast<u32>(resTags_.size()); }

  /// One past the largest tag id ever touched.
  u32 tagSpan() const { return static_cast<u32>(tagRes_.size()); }

  /// Resources with at least one tag.
  u32 usedResources() const;

  /// Tags attached to at least one resource.
  u32 usedTags() const;

  /// Number of distinct (t,r) edges.
  u64 numEdges() const { return edges_; }

  /// Sum of all u(t,r) (total annotations).
  u64 numAnnotations() const { return annotations_; }

  /// Sorts every Res(t) list ascending (required before set intersections
  /// in faceted search). Adding annotations afterwards un-freezes.
  void freeze();

  bool frozen() const { return frozen_; }

 private:
  std::vector<std::vector<TrgEdge>> resTags_;
  std::vector<std::vector<u32>> tagRes_;
  u64 edges_ = 0;
  u64 annotations_ = 0;
  bool frozen_ = false;
};

}  // namespace dharma::folk
