#include "folksonomy/trg.hpp"

#include <algorithm>

namespace dharma::folk {

Trg::AddResult Trg::addAnnotation(u32 res, u32 tag, u32 count) {
  if (count == 0) return AddResult{false, weight(res, tag)};
  if (res >= resTags_.size()) resTags_.resize(res + 1);
  if (tag >= tagRes_.size()) tagRes_.resize(tag + 1);

  annotations_ += count;
  for (TrgEdge& e : resTags_[res]) {
    if (e.tag == tag) {
      e.weight += count;
      return AddResult{false, e.weight};
    }
  }
  resTags_[res].push_back(TrgEdge{tag, count});
  tagRes_[tag].push_back(res);
  frozen_ = false;
  ++edges_;
  return AddResult{true, count};
}

u32 Trg::weight(u32 res, u32 tag) const {
  if (res >= resTags_.size()) return 0;
  for (const TrgEdge& e : resTags_[res]) {
    if (e.tag == tag) return e.weight;
  }
  return 0;
}

std::span<const TrgEdge> Trg::tagsOf(u32 res) const {
  if (res >= resTags_.size()) return {};
  return resTags_[res];
}

std::span<const u32> Trg::resourcesOf(u32 tag) const {
  if (tag >= tagRes_.size()) return {};
  return tagRes_[tag];
}

u32 Trg::usedResources() const {
  u32 n = 0;
  for (const auto& v : resTags_) n += v.empty() ? 0 : 1;
  return n;
}

u32 Trg::usedTags() const {
  u32 n = 0;
  for (const auto& v : tagRes_) n += v.empty() ? 0 : 1;
  return n;
}

void Trg::freeze() {
  for (auto& v : tagRes_) std::sort(v.begin(), v.end());
  frozen_ = true;
}

}  // namespace dharma::folk
