#pragma once
/// \file faceted.hpp
/// \brief Faceted search over the Folksonomy Graph (paper Section III-C).
///
/// A search session walks a path t0, t1, ... through the FG. At step i the
/// candidate tag set and resource set narrow monotonically:
///   T_i = (T_{i-1} ∩ N_FG(t_i)) minus previously chosen tags
///   R_i = R_{i-1} ∩ Res(t_i)
/// Only the `displayCap` candidates with the highest sim(t_i, ·) are shown
/// ("the size of the tag set shown to the user at each step is upper
/// bounded to the top 100 tags retrieved from the DHT", Section V-C); the
/// three selection strategies of the evaluation pick from that display set:
///   first  — the most similar displayed tag,
///   last   — the least similar displayed tag,
///   random — uniform among displayed tags.
/// The procedure stops when |T_i| <= 1 or |R_i| <= resourceStop.

#include <vector>

#include "folksonomy/fg.hpp"
#include "folksonomy/trg.hpp"
#include "util/rng.hpp"

namespace dharma::folk {

/// Tag-selection strategy of the Section V-C simulation.
enum class Strategy { kFirst, kLast, kRandom };

const char* strategyName(Strategy s);

/// Session parameters (paper defaults).
struct SearchConfig {
  u32 displayCap = 100;   ///< tags shown per step (top-N by similarity)
  u32 resourceStop = 10;  ///< stop once |R_i| <= this
  u32 maxSteps = 100000;  ///< safety bound (never hit in practice)
};

/// Why a session ended.
enum class StopReason {
  kTagsExhausted,      ///< |T_i| <= 1
  kResourcesNarrowed,  ///< |R_i| <= resourceStop
  kNoCandidates,       ///< start tag had no neighbours / empty display
  kMaxSteps,           ///< safety bound hit
  /// A distributed step's block fetch failed (offline node, unreachable
  /// holders, or a displayed tag whose t̂ vanished). Only produced by
  /// core::DharmaSession — in-memory sessions cannot fail to fetch.
  kFetchFailed,
};

inline constexpr usize kStopReasonCount = 5;

const char* stopReasonName(StopReason r);

/// Result of a completed session.
struct SearchResult {
  std::vector<u32> path;  ///< tags selected, starting with t0
  u32 steps = 0;          ///< selections after t0 (the paper's path length)
  StopReason reason = StopReason::kNoCandidates;
  usize finalTagCount = 0;
  usize finalResourceCount = 0;
};

/// Interactive faceted-search session (also drives the simulations).
class SearchSession {
 public:
  /// \param fg  frozen folksonomy graph (original or approximated)
  /// \param trg frozen TRG (must have trg.frozen() == true)
  /// \param cfg session parameters
  SearchSession(const CsrFg& fg, const Trg& trg, SearchConfig cfg = {});

  /// Starts at \p t0: T_0 = N_FG(t0), R_0 = Res(t0).
  void start(u32 t0);

  /// True once a stop condition holds.
  bool done() const { return done_; }
  StopReason reason() const { return reason_; }

  /// Currently displayed candidates (top displayCap by sim(current, ·),
  /// weight-descending, id tie-break). Valid until the next select().
  const std::vector<CsrFg::Neighbor>& display() const { return display_; }

  /// Candidate tag set T_i (sorted ids).
  const std::vector<u32>& candidateTags() const { return tags_; }

  /// Resource set R_i (sorted ids).
  const std::vector<u32>& resources() const { return resources_; }

  /// Path selected so far (starting with t0).
  const std::vector<u32>& path() const { return path_; }

  /// Selects tag \p t (must be in the current display) and narrows.
  void select(u32 t);

  /// Picks from the display per \p strategy and selects it.
  /// Returns the chosen tag.
  u32 selectByStrategy(Strategy s, Rng& rng);

 private:
  const CsrFg& fg_;
  const Trg& trg_;
  SearchConfig cfg_;
  std::vector<u32> tags_;       // T_i, sorted
  std::vector<u32> resources_;  // R_i, sorted
  std::vector<u32> chosen_;     // sorted path members for exclusion
  std::vector<u32> path_;
  std::vector<CsrFg::Neighbor> display_;
  bool done_ = false;
  StopReason reason_ = StopReason::kNoCandidates;

  void refreshDisplay(u32 current);
  void checkStop();
};

/// Runs one complete session and returns its statistics.
SearchResult runSearch(const CsrFg& fg, const Trg& trg, u32 start, Strategy s,
                       Rng& rng, SearchConfig cfg = {});

/// The \p n tags with the largest |Res(t)| ("most popular tags", V-C).
std::vector<u32> mostPopularTags(const Trg& trg, usize n);

}  // namespace dharma::folk
