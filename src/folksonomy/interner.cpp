#include "folksonomy/interner.hpp"

namespace dharma::folk {

u32 Interner::intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  u32 id = static_cast<u32>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<u32> Interner::find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace dharma::folk
