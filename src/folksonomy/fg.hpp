#pragma once
/// \file fg.hpp
/// \brief The Folksonomy Graph (paper Section III-A).
///
/// Directed weighted graph over tags with
///   sim(t1,t2) = Σ_{r ∈ Res(t1)} u(t2, r),
/// the paper's asymmetric tag similarity (a generalisation of tag-tag
/// co-occurrence). Two representations:
///
///   - DynamicFg: a flat hash map from packed (from,to) pairs to weights;
///     O(1) increments, used while the graph evolves under (approximated)
///     maintenance.
///   - CsrFg: frozen compressed-sparse-row adjacency, sorted by neighbour
///     id; cache-friendly scans and set intersections for analysis and
///     faceted search.

#include <span>
#include <vector>

#include "util/flat_map.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace dharma::folk {

/// Mutable similarity graph keyed by (from, to) tag pairs.
class DynamicFg {
 public:
  /// sim(from,to) += delta. Self-arcs are rejected (model invariant).
  void increment(u32 from, u32 to, u64 delta);

  /// Current sim(from,to); 0 if the arc is absent.
  u64 weight(u32 from, u32 to) const {
    return from == to ? 0 : map_.get(packPair(from, to));
  }

  bool hasArc(u32 from, u32 to) const { return weight(from, to) > 0; }

  /// Number of directed arcs.
  u64 arcCount() const { return map_.size(); }

  /// Sum of all arc weights.
  u64 totalWeight() const { return totalWeight_; }

  /// fn(from, to, weight) for every arc, unspecified order.
  template <typename Fn>
  void forEachArc(Fn&& fn) const {
    map_.forEach([&](u64 key, u64 w) {
      auto [from, to] = unpackPair(key);
      fn(from, to, w);
    });
  }

  usize memoryBytes() const { return map_.memoryBytes(); }

 private:
  FlatMap64 map_;
  u64 totalWeight_ = 0;
};

/// Frozen CSR similarity graph.
class CsrFg {
 public:
  /// One outgoing arc.
  struct Neighbor {
    u32 tag = 0;
    u64 weight = 0;

    bool operator==(const Neighbor&) const = default;
  };

  CsrFg() = default;

  /// Freezes a DynamicFg. \p numTags must exceed every tag id used.
  static CsrFg fromDynamic(const DynamicFg& dyn, u32 numTags);

  /// Number of tag slots (== numTags passed at build).
  u32 numTags() const {
    return offsets_.empty() ? 0 : static_cast<u32>(offsets_.size() - 1);
  }

  /// Number of directed arcs.
  u64 numArcs() const { return arcs_.size(); }

  /// Sum of all arc weights.
  u64 totalWeight() const { return totalWeight_; }

  /// N_FG(t) with weights, sorted by neighbour id ascending.
  std::span<const Neighbor> neighbors(u32 t) const;

  /// |N_FG(t)| (out-degree).
  u32 outDegree(u32 t) const {
    return t + 1 < offsets_.size()
               ? static_cast<u32>(offsets_[t + 1] - offsets_[t])
               : 0;
  }

  /// sim(from,to); 0 if absent. O(log deg).
  u64 weightOf(u32 from, u32 to) const;

  bool hasArc(u32 from, u32 to) const { return weightOf(from, to) > 0; }

  usize memoryBytes() const {
    return arcs_.size() * sizeof(Neighbor) + offsets_.size() * sizeof(u64);
  }

 private:
  std::vector<u64> offsets_;  // numTags + 1
  std::vector<Neighbor> arcs_;
  u64 totalWeight_ = 0;
};

}  // namespace dharma::folk
