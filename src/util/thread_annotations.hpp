#pragma once
/// \file thread_annotations.hpp
/// \brief Clang Thread Safety Analysis macros + annotated mutex primitives.
///
/// Wraps clang's `-Wthread-safety` attribute set (capability analysis) in
/// the conventional macro names so lock discipline is checked at compile
/// time under clang and compiles to nothing everywhere else. The analysis
/// needs annotated lock types to reason about — libstdc++'s std::mutex and
/// std::lock_guard carry no attributes — so this header also provides
/// dharma::Mutex / dharma::MutexLock, drop-in annotated wrappers that every
/// mutex-protected structure in the tree uses.
///
/// Usage pattern (see src/net/realtime.hpp for the real thing):
///
///   class Queue {
///     void push(Item it) EXCLUDES(mu_);
///    private:
///     mutable Mutex mu_;
///     std::deque<Item> items_ GUARDED_BY(mu_);
///   };
///
/// Condition variables take the native handle through MutexLock::native();
/// predicate waits are written as explicit `while (!pred) cv.wait(...)`
/// loops so the predicate body is analyzed in the locked scope instead of
/// as a detached lambda the analysis cannot see into.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#include <mutex>

#if defined(__clang__)
#define DHARMA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DHARMA_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) DHARMA_THREAD_ANNOTATION_(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY DHARMA_THREAD_ANNOTATION_(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) DHARMA_THREAD_ANNOTATION_(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) DHARMA_THREAD_ANNOTATION_(pt_guarded_by(x))
#endif

#ifndef REQUIRES
#define REQUIRES(...) DHARMA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) DHARMA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) DHARMA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  DHARMA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) DHARMA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) DHARMA_THREAD_ANNOTATION_(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) DHARMA_THREAD_ANNOTATION_(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  DHARMA_THREAD_ANNOTATION_(no_thread_safety_analysis)
#endif

namespace dharma {

/// std::mutex with the `capability` attribute, so clang tracks which
/// functions hold it and which members it guards. Same cost and semantics
/// as std::mutex — the attribute only exists at compile time.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for APIs that require the native type.
  /// Access through this handle bypasses the analysis — only MutexLock
  /// (for condition-variable waits) should need it.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over a Mutex, annotated as a scoped capability: clang knows
/// the capability is held for exactly this object's lifetime. Backed by a
/// std::unique_lock so condition variables can wait on it via native() —
/// the wait releases and reacquires the mutex internally, which the
/// analysis conventionally treats as held throughout (the capability is
/// held at every point the waiting code can observe).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lk_(mu.native()) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying unique_lock, for std::condition_variable::wait.
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

}  // namespace dharma
