#include "util/rng.hpp"

#include <cassert>
#include <unordered_set>

namespace dharma {

namespace {
constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(u64 seed) {
  u64 x = seed;
  for (auto& s : s_) {
    x = splitmix64(x);
    s = x;
  }
  // xoshiro's state must not be all-zero; splitmix64 of any seed cannot
  // produce four zero words, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  hasSpare_ = false;
}

u64 Rng::next() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::uniform(u64 bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  u64 x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  u64 l = static_cast<u64>(m);
  if (l < bound) {
    u64 t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<u64>(m);
    }
  }
  return static_cast<u64>(m >> 64);
}

i64 Rng::uniformRange(i64 lo, i64 hi) {
  assert(lo <= hi);
  u64 span = static_cast<u64>(hi) - static_cast<u64>(lo) + 1;
  if (span == 0) return static_cast<i64>(next());  // full 64-bit range
  return lo + static_cast<i64>(uniform(span));
}

double Rng::uniformDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
  if (hasSpare_) {
    hasSpare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniformDouble();
  } while (u1 <= 0.0);
  double u2 = uniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_ = r * std::sin(theta);
  hasSpare_ = true;
  return r * std::cos(theta);
}

double Rng::exponential(double lambda) {
  assert(lambda > 0);
  double u = 0.0;
  do {
    u = uniformDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

u64 Rng::geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = 0.0;
  do {
    u = uniformDouble();
  } while (u <= 0.0);
  return static_cast<u64>(std::floor(std::log(u) / std::log1p(-p)));
}

std::vector<u32> Rng::sampleIndices(u32 n, u32 k) {
  assert(k <= n);
  // Floyd's algorithm: for j in [n-k, n): pick t in [0, j]; insert t unless
  // already present, else insert j. Produces a uniform k-subset.
  std::unordered_set<u32> chosen;
  chosen.reserve(k * 2);
  std::vector<u32> out;
  out.reserve(k);
  for (u32 j = n - k; j < n; ++j) {
    u32 t = static_cast<u32>(uniform(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::fork() {
  Rng child;
  child.reseed(next() ^ 0xd1b54a32d192ed03ULL);
  return child;
}

}  // namespace dharma
