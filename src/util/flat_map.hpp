#pragma once
/// \file flat_map.hpp
/// \brief Cache-friendly open-addressing hash map for integer keys.
///
/// The exact Folksonomy Graph at Last.fm scale holds tens of millions of
/// directed arcs; node-based std::unordered_map costs ~3x the memory and
/// scatters arcs across the heap. FlatMap64 stores (u64 key, u64 value)
/// pairs in a single flat array with linear probing — 16 bytes per slot,
/// one cache line per successful probe in the common case.
///
/// Key 0 is reserved as the empty marker; callers that need the full key
/// space should bias their keys (the FG arc key packs two 32-bit tag ids
/// plus one, so 0 never occurs).

#include <cassert>
#include <cstring>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace dharma {

/// Open-addressing u64 -> u64 hash map with linear probing.
class FlatMap64 {
 public:
  /// \param initialCapacity starting slot count hint (rounded to pow2).
  explicit FlatMap64(usize initialCapacity = 16) { rehash(roundUp(initialCapacity)); }

  /// Number of live entries.
  usize size() const { return size_; }

  bool empty() const { return size_ == 0; }

  /// Removes all entries, keeping capacity.
  void clear() {
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    size_ = 0;
  }

  /// Returns a pointer to the value for \p key, or nullptr if absent.
  /// \p key must be non-zero.
  const u64* find(u64 key) const {
    assert(key != kEmpty);
    usize i = probeStart(key);
    while (true) {
      if (keys_[i] == key) return &vals_[i];
      if (keys_[i] == kEmpty) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  u64* find(u64 key) {
    return const_cast<u64*>(static_cast<const FlatMap64*>(this)->find(key));
  }

  bool contains(u64 key) const { return find(key) != nullptr; }

  /// Adds \p delta to the value of \p key, inserting 0 first if absent.
  /// Returns the new value. \p key must be non-zero.
  u64 addTo(u64 key, u64 delta) {
    u64& slot = slotFor(key);
    slot += delta;
    return slot;
  }

  /// Inserts or overwrites.
  void set(u64 key, u64 value) { slotFor(key) = value; }

  /// Value for \p key, or \p fallback if absent.
  u64 get(u64 key, u64 fallback = 0) const {
    const u64* p = find(key);
    return p ? *p : fallback;
  }

  /// Invokes fn(key, value) for each entry (unspecified order).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (usize i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) fn(keys_[i], vals_[i]);
    }
  }

  /// Memory footprint of the table in bytes.
  usize memoryBytes() const { return keys_.size() * 16; }

 private:
  static constexpr u64 kEmpty = 0;

  std::vector<u64> keys_;
  std::vector<u64> vals_;
  usize mask_ = 0;
  usize size_ = 0;

  static usize roundUp(usize n) {
    usize c = 16;
    while (c < n) c <<= 1;
    return c;
  }

  usize probeStart(u64 key) const { return splitmix64(key) & mask_; }

  u64& slotFor(u64 key) {
    assert(key != kEmpty);
    if ((size_ + 1) * 10 >= keys_.size() * 7) grow();
    usize i = probeStart(key);
    while (true) {
      if (keys_[i] == key) return vals_[i];
      if (keys_[i] == kEmpty) {
        keys_[i] = key;
        vals_[i] = 0;
        ++size_;
        return vals_[i];
      }
      i = (i + 1) & mask_;
    }
  }

  void rehash(usize newCap) {
    keys_.assign(newCap, kEmpty);
    vals_.assign(newCap, 0);
    mask_ = newCap - 1;
  }

  void grow() {
    std::vector<u64> oldKeys = std::move(keys_);
    std::vector<u64> oldVals = std::move(vals_);
    rehash(oldKeys.size() * 2);
    size_ = 0;
    for (usize i = 0; i < oldKeys.size(); ++i) {
      if (oldKeys[i] != kEmpty) {
        usize j = probeStart(oldKeys[i]);
        while (keys_[j] != kEmpty) j = (j + 1) & mask_;
        keys_[j] = oldKeys[i];
        vals_[j] = oldVals[i];
        ++size_;
      }
    }
  }
};

/// Packs an ordered pair of 32-bit ids into a non-zero 64-bit FlatMap64 key.
/// The +1 bias keeps the (0,0) pair representable despite key 0 being the
/// empty marker.
constexpr u64 packPair(u32 a, u32 b) {
  return (static_cast<u64>(a) << 32) | (static_cast<u64>(b) + 1ULL);
}

/// Inverse of packPair.
constexpr std::pair<u32, u32> unpackPair(u64 key) {
  return {static_cast<u32>(key >> 32), static_cast<u32>((key & 0xffffffffULL) - 1ULL)};
}

}  // namespace dharma
