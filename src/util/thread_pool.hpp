#pragma once
/// \file thread_pool.hpp
/// \brief Minimal fixed-size thread pool with a parallel-for helper.
///
/// Used by the analysis module (per-tag graph comparison over hundreds of
/// thousands of tags) and the exact FG derivation. The pool is deliberately
/// simple: a mutex-protected queue is more than fast enough when each task
/// is a coarse chunk of per-tag work, and simplicity keeps the shutdown
/// path obviously correct (C++ Core Guidelines CP.23: joining threads only).

#include <condition_variable>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace dharma {

/// Fixed-size worker pool. Tasks are void() callables; exceptions thrown by
/// tasks terminate (tasks are expected to be noexcept in practice).
class ThreadPool {
 public:
  /// \param threads worker count; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(usize threads = 0);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until every submitted task has finished.
  void waitIdle() EXCLUDES(mu_);

  /// Number of worker threads.
  usize threadCount() const { return workers_.size(); }

 private:
  std::vector<std::thread> workers_;  ///< written only in the constructor
  Mutex mu_;
  std::condition_variable cvTask_;
  std::condition_variable cvIdle_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mu_);
  usize active_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;

  void workerLoop();
};

/// Splits [0, n) into contiguous chunks and runs fn(begin, end) on the pool,
/// blocking until all chunks complete. With a null pool, runs inline.
void parallelFor(ThreadPool* pool, usize n, usize minChunk,
                 const std::function<void(usize, usize)>& fn);

}  // namespace dharma
