#pragma once
/// \file buffer.hpp
/// \brief Bounds-checked binary serialization buffers.
///
/// Every RPC in the simulated overlay is encoded to bytes so that the
/// network layer can account for payload sizes and enforce the UDP MTU the
/// paper discusses (Section V-A: oversized GET responses must be filtered
/// index-side). Integers are little-endian; varints use LEB128.

#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace dharma {

/// Thrown by ByteReader on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only byte sink.
class ByteWriter {
 public:
  /// Raw bytes written so far.
  const std::vector<u8>& bytes() const { return buf_; }

  /// Moves the buffer out.
  std::vector<u8> take() { return std::move(buf_); }

  usize size() const { return buf_.size(); }

  void writeU8(u8 v) { buf_.push_back(v); }
  void writeU16(u16 v) { writeLE(v); }
  void writeU32(u32 v) { writeLE(v); }
  void writeU64(u64 v) { writeLE(v); }

  /// LEB128 unsigned varint (1 byte for values < 128).
  void writeVarint(u64 v);

  /// Length-prefixed (varint) byte string.
  void writeBytes(const u8* data, usize len);

  /// Length-prefixed (varint) UTF-8 string.
  void writeString(std::string_view s) {
    writeBytes(reinterpret_cast<const u8*>(s.data()), s.size());
  }

  /// Raw bytes without a length prefix (fixed-size fields).
  void writeRaw(const u8* data, usize len) { buf_.insert(buf_.end(), data, data + len); }

 private:
  std::vector<u8> buf_;

  template <typename T>
  void writeLE(T v) {
    for (usize i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<u8>(v >> (8 * i)));
    }
  }
};

/// Sequential bounds-checked reader over a byte span.
class ByteReader {
 public:
  ByteReader(const u8* data, usize len) : data_(data), len_(len) {}
  explicit ByteReader(const std::vector<u8>& v) : ByteReader(v.data(), v.size()) {}

  usize remaining() const { return len_ - pos_; }
  bool atEnd() const { return pos_ == len_; }

  u8 readU8();
  u16 readU16() { return readLE<u16>(); }
  u32 readU32() { return readLE<u32>(); }
  u64 readU64() { return readLE<u64>(); }
  u64 readVarint();
  std::vector<u8> readBytes();
  std::string readString();
  void readRaw(u8* out, usize len);

 private:
  const u8* data_;
  usize len_;
  usize pos_ = 0;

  void need(usize n) const {
    if (len_ - pos_ < n) throw DecodeError("truncated buffer");
  }

  template <typename T>
  T readLE() {
    need(sizeof(T));
    T v = 0;
    for (usize i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }
};

}  // namespace dharma
