#pragma once
/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// Every stochastic component in the repository (network latency, workload
/// synthesis, Approximation A subset sampling, search strategies) draws from
/// an explicitly seeded Rng so that whole-system experiments replay
/// bit-identically. The generator is xoshiro256** seeded via splitmix64,
/// which is fast, has a 2^256-1 period and passes BigCrush.

#include <cmath>
#include <vector>

#include "util/types.hpp"

namespace dharma {

/// splitmix64 step; used for seeding and as a cheap stateless hash mixer.
constexpr u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic xoshiro256** generator.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be handed
/// to <random> facilities, although the member helpers below are preferred
/// for reproducibility across standard-library implementations.
class Rng {
 public:
  using result_type = u64;

  /// Constructs a generator whose entire stream is a function of \p seed.
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises the state from \p seed (same effect as constructing).
  void reseed(u64 seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  u64 operator()() { return next(); }

  /// Next raw 64-bit output.
  u64 next();

  /// Uniform integer in [0, bound). \p bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  u64 uniform(u64 bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  i64 uniformRange(i64 lo, i64 hi);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniformDouble();

  /// Bernoulli trial with success probability \p p.
  bool bernoulli(double p) { return uniformDouble() < p; }

  /// Standard normal variate (Box-Muller, one value per call).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential variate with rate \p lambda.
  double exponential(double lambda);

  /// Geometric number of failures before first success, p in (0,1].
  u64 geometric(double p);

  /// Fisher-Yates shuffle of an entire vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (usize i = v.size(); i > 1; --i) {
      usize j = static_cast<usize>(uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Draws \p k distinct indices uniformly from [0, n) (k <= n).
  /// Uses Floyd's algorithm: O(k) expected time, no O(n) scratch.
  std::vector<u32> sampleIndices(u32 n, u32 k);

  /// Forks an independent, deterministic child stream. The child's sequence
  /// is a pure function of the parent state at the time of the call, so
  /// forking in a fixed order yields reproducible parallel streams.
  Rng fork();

 private:
  u64 s_[4];
  bool hasSpare_ = false;
  double spare_ = 0.0;
};

}  // namespace dharma
