#pragma once
/// \file logging.hpp
/// \brief Tiny leveled logger.
///
/// Experiments print structured tables on stdout; diagnostics go through
/// this logger on stderr so that bench output stays machine-parseable.

#include <sstream>
#include <string>

namespace dharma {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emits one formatted line to stderr if \p level passes the threshold.
void logMessage(LogLevel level, const std::string& msg);

namespace detail {
inline void logFmt(std::ostringstream&) {}
template <typename T, typename... Rest>
void logFmt(std::ostringstream& os, T&& v, Rest&&... rest) {
  os << std::forward<T>(v);
  logFmt(os, std::forward<Rest>(rest)...);
}
}  // namespace detail

/// Stream-style helpers: LOG_INFO("built ", n, " nodes").
template <typename... Args>
void logAt(LogLevel level, Args&&... args) {
  if (level < logLevel()) return;
  std::ostringstream os;
  detail::logFmt(os, std::forward<Args>(args)...);
  logMessage(level, os.str());
}

#define DHARMA_LOG_DEBUG(...) ::dharma::logAt(::dharma::LogLevel::kDebug, __VA_ARGS__)
#define DHARMA_LOG_INFO(...) ::dharma::logAt(::dharma::LogLevel::kInfo, __VA_ARGS__)
#define DHARMA_LOG_WARN(...) ::dharma::logAt(::dharma::LogLevel::kWarn, __VA_ARGS__)
#define DHARMA_LOG_ERROR(...) ::dharma::logAt(::dharma::LogLevel::kError, __VA_ARGS__)

}  // namespace dharma
