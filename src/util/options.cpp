#include "util/options.hpp"

#include <algorithm>
#include <stdexcept>

namespace dharma {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";  // bare flag
    }
  }
}

bool Options::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Options::getString(const std::string& key,
                               const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

i64 Options::getInt(const std::string& key, i64 fallback) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stoll(it->second);
}

double Options::getDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stod(it->second);
}

bool Options::getBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(), ::tolower);
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Options: bad boolean for --" + key + ": " + v);
}

void Options::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

}  // namespace dharma
