#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace dharma {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  u64 n = n_ + o.n_;
  double delta = o.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(o.n_) / static_cast<double>(n);
  m2_ = m2_ + o.m2_ +
        delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) /
            static_cast<double>(n);
  mean_ = mean;
  n_ = n;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }
double RunningStats::sampleStddev() const { return std::sqrt(sampleVariance()); }

double quantile(std::vector<double> values, double p) {
  assert(!values.empty());
  assert(p >= 0.0 && p <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = p * static_cast<double>(values.size() - 1);
  usize lo = static_cast<usize>(std::floor(pos));
  usize hi = static_cast<usize>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

void Cdf::addAll(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Cdf::ensureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensureSorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::points() const {
  ensureSorted();
  std::vector<std::pair<double, double>> out;
  const usize n = samples_.size();
  for (usize i = 0; i < n; ++i) {
    // Emit one point per distinct value at its final (highest) rank.
    if (i + 1 == n || samples_[i + 1] != samples_[i]) {
      out.emplace_back(samples_[i],
                       static_cast<double>(i + 1) / static_cast<double>(n));
    }
  }
  return out;
}

std::vector<std::pair<double, double>> Cdf::logSpacedPoints(usize n) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || n == 0) return out;
  ensureSorted();
  double lo = std::max(1.0, samples_.front());
  double hi = std::max(lo, samples_.back());
  double llo = std::log10(lo);
  double lhi = std::log10(hi);
  out.reserve(n);
  for (usize i = 0; i < n; ++i) {
    double f = n == 1 ? 1.0 : static_cast<double>(i) / static_cast<double>(n - 1);
    double x = std::pow(10.0, llo + f * (lhi - llo));
    out.emplace_back(x, at(x));
  }
  return out;
}

std::vector<std::pair<double, double>> Cdf::linearPoints(usize n) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || n == 0) return out;
  ensureSorted();
  double lo = samples_.front();
  double hi = samples_.back();
  out.reserve(n);
  for (usize i = 0; i < n; ++i) {
    double f = n == 1 ? 1.0 : static_cast<double>(i) / static_cast<double>(n - 1);
    double x = lo + f * (hi - lo);
    out.emplace_back(x, at(x));
  }
  return out;
}

RunningStats Cdf::stats() const {
  RunningStats rs;
  for (double x : samples_) rs.add(x);
  return rs;
}

std::string fmtDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace dharma
