#pragma once
/// \file sampling.hpp
/// \brief Weighted discrete sampling primitives.
///
/// The workload generator and the paper-order trace replayer (Section V-B)
/// need three samplers:
///   - AliasTable: O(1) draws from a *static* discrete distribution
///     (Vose's method), used for tag/resource popularity.
///   - ZipfSampler: bounded Zipf(s) over ranks 1..n, built on AliasTable.
///   - FenwickSampler: weighted draws with O(log n) *dynamic* weight
///     updates, used to sample resources proportionally to their original
///     popularity while removing exhausted resources (the paper's
///     "rejection" process made efficient).

#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace dharma {

/// O(1) sampler for a fixed discrete distribution (Vose alias method).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from unnormalised non-negative weights.
  /// Zero-weight entries are never drawn. At least one weight must be > 0.
  explicit AliasTable(const std::vector<double>& weights) { build(weights); }

  /// (Re)builds the table; see the constructor.
  void build(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight.
  u32 sample(Rng& rng) const;

  /// Number of categories (0 if not built).
  usize size() const { return prob_.size(); }

  bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<u32> alias_;
};

/// Bounded Zipf distribution over ranks {1, ..., n}: P(rank = i) ∝ i^-s.
///
/// Heavy-tail popularity of tags/resources in folksonomies is classically
/// modelled as Zipfian; Section V-A's core-periphery structure emerges from
/// exponents s ≈ 0.8–1.2.
class ZipfSampler {
 public:
  ZipfSampler() = default;

  /// \param n number of ranks (> 0)
  /// \param s exponent (>= 0; 0 degenerates to uniform)
  ZipfSampler(u32 n, double s) { build(n, s); }

  void build(u32 n, double s);

  /// Draws a rank in [1, n].
  u32 sample(Rng& rng) const { return table_.sample(rng) + 1; }

  /// Draws a zero-based rank in [0, n).
  u32 sampleIndex(Rng& rng) const { return table_.sample(rng); }

  u32 n() const { return n_; }
  double s() const { return s_; }

 private:
  AliasTable table_;
  u32 n_ = 0;
  double s_ = 0.0;
};

/// Fenwick (binary indexed) tree over non-negative weights supporting
/// point updates and weighted sampling in O(log n).
class FenwickSampler {
 public:
  FenwickSampler() = default;

  /// Initialises with \p weights (all must be >= 0).
  explicit FenwickSampler(const std::vector<double>& weights) {
    build(weights);
  }

  void build(const std::vector<double>& weights);

  /// Sets the weight of index \p i to \p w (>= 0).
  void set(u32 i, double w);

  /// Current weight of index \p i.
  double weight(u32 i) const { return weights_[i]; }

  /// Sum of all weights.
  double total() const { return total_; }

  /// Number of entries.
  usize size() const { return weights_.size(); }

  /// Draws an index with probability weight(i)/total(). total() must be > 0.
  u32 sample(Rng& rng) const;

 private:
  std::vector<double> tree_;     // 1-based Fenwick partial sums
  std::vector<double> weights_;  // raw weights for exact reads
  double total_ = 0.0;

  void add(u32 i, double delta);
};

/// Returns n unnormalised Zipf weights w[i] = (i+1)^-s.
std::vector<double> zipfWeights(u32 n, double s);

}  // namespace dharma
