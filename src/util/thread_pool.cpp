#include "util/thread_pool.hpp"

#include <algorithm>

namespace dharma {

ThreadPool::ThreadPool(usize threads) {
  if (threads == 0) {
    threads = std::max<usize>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (usize i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cvTask_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lk(mu_);
    queue_.push(std::move(task));
  }
  cvTask_.notify_one();
}

void ThreadPool::waitIdle() {
  MutexLock lk(mu_);
  // Explicit predicate loop (not the lambda-predicate wait overload): the
  // thread-safety analysis checks the guarded reads in this scope, where
  // the lock is visibly held.
  while (!(queue_.empty() && active_ == 0)) cvIdle_.wait(lk.native());
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lk(mu_);
      while (!stop_ && queue_.empty()) cvTask_.wait(lk.native());
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      MutexLock lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cvIdle_.notify_all();
    }
  }
}

void parallelFor(ThreadPool* pool, usize n, usize minChunk,
                 const std::function<void(usize, usize)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->threadCount() <= 1 || n <= minChunk) {
    fn(0, n);
    return;
  }
  usize chunks = std::min(n / std::max<usize>(1, minChunk),
                          pool->threadCount() * 4);
  chunks = std::max<usize>(1, chunks);
  usize per = (n + chunks - 1) / chunks;
  for (usize begin = 0; begin < n; begin += per) {
    usize end = std::min(n, begin + per);
    pool->submit([=, &fn] { fn(begin, end); });
  }
  pool->waitIdle();
}

}  // namespace dharma
