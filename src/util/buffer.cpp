#include "util/buffer.hpp"

namespace dharma {

void ByteWriter::writeVarint(u64 v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<u8>(v));
}

void ByteWriter::writeBytes(const u8* data, usize len) {
  writeVarint(len);
  buf_.insert(buf_.end(), data, data + len);
}

u8 ByteReader::readU8() {
  need(1);
  return data_[pos_++];
}

u64 ByteReader::readVarint() {
  u64 v = 0;
  int shift = 0;
  while (true) {
    need(1);
    u8 b = data_[pos_++];
    if (shift >= 64) throw DecodeError("varint overflow");
    v |= static_cast<u64>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}

std::vector<u8> ByteReader::readBytes() {
  u64 len = readVarint();
  need(len);
  std::vector<u8> out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

std::string ByteReader::readString() {
  u64 len = readVarint();
  need(len);
  std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return out;
}

void ByteReader::readRaw(u8* out, usize len) {
  need(len);
  std::memcpy(out, data_ + pos_, len);
  pos_ += len;
}

}  // namespace dharma
