#pragma once
/// \file stats.hpp
/// \brief Streaming statistics and empirical CDFs.
///
/// All tables in the paper report (mean, standard deviation, max, median);
/// Figures 5 and 7 are empirical CDFs. RunningStats implements Welford's
/// numerically stable one-pass algorithm; Cdf collects samples and emits
/// cumulative points suitable for plotting or textual reporting.

#include <string>
#include <vector>

#include "util/types.hpp"

namespace dharma {

/// One-pass mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator (parallel reduction; Chan's formula).
  void merge(const RunningStats& o);

  /// Number of observations.
  u64 count() const { return n_; }

  /// Arithmetic mean (0 if empty).
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Population variance (0 if fewer than 2 observations).
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }

  /// Sample variance with Bessel's correction (0 if fewer than 2).
  double sampleVariance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  /// Population standard deviation.
  double stddev() const;

  /// Sample standard deviation.
  double sampleStddev() const;

  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the p-quantile (p in [0,1]) of \p values using linear
/// interpolation between closest ranks. The input is copied and sorted.
double quantile(std::vector<double> values, double p);

/// Median convenience wrapper over quantile(v, 0.5).
double median(std::vector<double> values);

/// Empirical cumulative distribution function over double samples.
class Cdf {
 public:
  /// Adds one sample.
  void add(double x) { samples_.push_back(x); }

  /// Adds many samples.
  void addAll(const std::vector<double>& xs);

  /// Number of samples.
  usize count() const { return samples_.size(); }

  /// P(X <= x) over collected samples.
  double at(double x) const;

  /// Emits (x, P(X <= x)) evaluated at every distinct sample value.
  std::vector<std::pair<double, double>> points() const;

  /// Emits the CDF evaluated at \p n log-spaced abscissae spanning
  /// [max(1, min), max] — matches the log-x axis of Figure 5.
  std::vector<std::pair<double, double>> logSpacedPoints(usize n) const;

  /// Emits the CDF evaluated at \p n linearly spaced abscissae.
  std::vector<std::pair<double, double>> linearPoints(usize n) const;

  /// Summary statistics over the collected samples.
  RunningStats stats() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;

  void ensureSorted() const;
};

/// Formats a double with fixed precision — shared by the report writers.
std::string fmtDouble(double v, int precision = 4);

}  // namespace dharma
