#pragma once
/// \file types.hpp
/// \brief Fixed-width integer aliases shared across all DHARMA modules.

#include <cstddef>
#include <cstdint>

namespace dharma {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

}  // namespace dharma
