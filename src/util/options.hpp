#pragma once
/// \file options.hpp
/// \brief Command-line option parsing shared by benches and examples.
///
/// Supports "--key=value", "--key value" and bare "--flag" forms. Every
/// bench binary exposes at least --scale and --seed so experiments can be
/// grown toward the paper's full Last.fm dimensions.

#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace dharma {

/// Parsed command-line options with typed, defaulted getters.
class Options {
 public:
  Options() = default;

  /// Parses argv; unknown positional arguments are collected separately.
  Options(int argc, const char* const* argv);

  /// True if --key was present (with or without a value).
  bool has(const std::string& key) const;

  /// String value of --key, or \p fallback.
  std::string getString(const std::string& key, const std::string& fallback) const;

  /// Integer value of --key, or \p fallback. Throws on malformed input.
  i64 getInt(const std::string& key, i64 fallback) const;

  /// Floating-point value of --key, or \p fallback.
  double getDouble(const std::string& key, double fallback) const;

  /// Boolean: bare flag or explicit true/false/1/0/yes/no.
  bool getBool(const std::string& key, bool fallback) const;

  /// Positional (non --key) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Injects or overrides a value programmatically (used by tests).
  void set(const std::string& key, const std::string& value);

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dharma
