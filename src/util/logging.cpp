#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

#include "util/thread_annotations.hpp"

namespace dharma {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_mu;  // serializes whole lines onto stderr

const char* levelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void logMessage(LogLevel level, const std::string& msg) {
  if (level < logLevel()) return;
  MutexLock lk(g_mu);
  std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

}  // namespace dharma
