#include "util/sampling.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dharma {

void AliasTable::build(const std::vector<double>& weights) {
  const usize n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("AliasTable: negative or non-finite weight");
    }
    sum += w;
  }
  if (sum <= 0.0) throw std::invalid_argument("AliasTable: all-zero weights");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (usize i = 0; i < n; ++i) scaled[i] = weights[i] * n / sum;

  std::vector<u32> small, large;
  small.reserve(n);
  large.reserve(n);
  for (usize i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<u32>(i));
  }
  while (!small.empty() && !large.empty()) {
    u32 s = small.back();
    small.pop_back();
    u32 l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers: both queues hold columns that are "full".
  for (u32 i : large) prob_[i] = 1.0;
  for (u32 i : small) prob_[i] = 1.0;
}

u32 AliasTable::sample(Rng& rng) const {
  assert(!prob_.empty());
  u32 col = static_cast<u32>(rng.uniform(prob_.size()));
  return rng.uniformDouble() < prob_[col] ? col : alias_[col];
}

std::vector<double> zipfWeights(u32 n, double s) {
  std::vector<double> w(n);
  for (u32 i = 0; i < n; ++i) w[i] = std::pow(static_cast<double>(i) + 1.0, -s);
  return w;
}

void ZipfSampler::build(u32 n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  n_ = n;
  s_ = s;
  table_.build(zipfWeights(n, s));
}

void FenwickSampler::build(const std::vector<double>& weights) {
  const usize n = weights.size();
  weights_ = weights;
  tree_.assign(n + 1, 0.0);
  total_ = 0.0;
  for (usize i = 0; i < n; ++i) {
    if (weights[i] < 0.0) {
      throw std::invalid_argument("FenwickSampler: negative weight");
    }
    add(static_cast<u32>(i), weights[i]);
    total_ += weights[i];
  }
}

void FenwickSampler::add(u32 i, double delta) {
  for (u32 j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
    tree_[j] += delta;
  }
}

void FenwickSampler::set(u32 i, double w) {
  assert(i < weights_.size());
  assert(w >= 0.0);
  double delta = w - weights_[i];
  weights_[i] = w;
  total_ += delta;
  add(i, delta);
}

u32 FenwickSampler::sample(Rng& rng) const {
  assert(total_ > 0.0);
  double target = rng.uniformDouble() * total_;
  // Descend the implicit Fenwick tree: O(log n).
  u32 idx = 0;
  usize n = weights_.size();
  u32 bitmask = 1;
  while (static_cast<usize>(bitmask) << 1 <= n) bitmask <<= 1;
  for (u32 step = bitmask; step > 0; step >>= 1) {
    u32 nxt = idx + step;
    if (nxt <= n && tree_[nxt] < target) {
      target -= tree_[nxt];
      idx = nxt;
    }
  }
  // idx is now the count of prefix entries whose cumulative weight is below
  // target, i.e. the sampled zero-based index. Guard against a rounding
  // overshoot onto a zero-weight tail entry.
  u32 res = idx < n ? idx : static_cast<u32>(n - 1);
  while (res > 0 && weights_[res] == 0.0) --res;
  return res;
}

}  // namespace dharma
