#pragma once
/// \file dht_network.hpp
/// \brief Builds and drives a whole simulated Likir/Kademlia overlay.
///
/// Owns the event loop, the datagram network, the certification service and
/// N nodes. Provides blocking-style helpers that launch an asynchronous
/// operation and run the simulator until its callback fires — the natural
/// way to script experiments on a deterministic single-threaded simulation.

#include <memory>
#include <stdexcept>
#include <vector>

#include "dht/kademlia_node.hpp"
#include "dht/maintenance.hpp"
#include "net/latency.hpp"

namespace dharma::dht {

/// One scripted liveness event.
enum class ChurnAction : u8 {
  kCrash,   ///< take node `node` offline (state persists)
  kRevive,  ///< bring node `node` back online with its old state
  kJoin,    ///< create a brand-new node; it bootstraps through the first
            ///< surviving (online) node — `node` is informational only
};

/// A liveness event at an absolute simulated time.
struct ChurnEvent {
  net::SimTime atUs = 0;
  ChurnAction action = ChurnAction::kCrash;
  usize node = 0;
};

/// A deterministic churn script (see wl::makeChurnSchedule for a seeded
/// generator of crash waves / revives / fresh joins).
struct ChurnSchedule {
  std::vector<ChurnEvent> events;
};

/// Overlay-wide configuration.
struct DhtNetworkConfig {
  usize nodes = 64;           ///< overlay size
  NodeConfig node;            ///< per-node protocol parameters
  net::Network::Config net;   ///< loss rate, MTU
  u64 seed = 42;              ///< master seed (everything derives from it)
  /// One-way latency: "constant" | "uniform" | "lognormal".
  std::string latency = "lognormal";
  net::SimTime constantLatencyUs = 20000;
};

/// A complete simulated overlay.
class DhtNetwork {
 public:
  explicit DhtNetwork(DhtNetworkConfig cfg);
  ~DhtNetwork();

  DhtNetwork(const DhtNetwork&) = delete;
  DhtNetwork& operator=(const DhtNetwork&) = delete;

  /// Bootstraps every node through node 0 and settles the network.
  void bootstrap();

  usize size() const { return nodes_.size(); }
  KademliaNode& node(usize i) { return *nodes_.at(i); }
  const KademliaNode& node(usize i) const { return *nodes_.at(i); }
  net::Simulator& sim() { return sim_; }
  net::Network& network() { return *net_; }
  const crypto::CertificationService& cs() const { return cs_; }

  /// PUT issued by node \p from, with full replication telemetry.
  PutResult putResult(usize from, const NodeId& key, const StoreToken& token);

  /// Batched PUT (one lookup) issued by node \p from, with telemetry.
  PutResult putManyResult(usize from, const NodeId& key,
                          std::vector<StoreToken> tokens);

  /// PUT issued by node \p from; returns replica ack count only.
  u32 putBlocking(usize from, const NodeId& key, const StoreToken& token);

  /// Batched PUT (one lookup) issued by node \p from; ack count only.
  u32 putManyBlocking(usize from, const NodeId& key,
                      std::vector<StoreToken> tokens);

  /// GET issued by node \p from, with lookup telemetry (the input to the
  /// core layer's OpError classification).
  GetResult getResult(usize from, const NodeId& key, GetOptions opt = {});

  /// GET issued by node \p from; the merged view only.
  std::optional<BlockView> getBlocking(usize from, const NodeId& key,
                                       GetOptions opt = {});

  /// Takes a node off the network (simulated crash). Its state persists and
  /// can be revived with setOnline(true).
  void setOnline(usize i, bool online);

  /// True if node \p i currently accepts datagrams.
  bool isOnline(usize i) const;

  /// Number of nodes currently online.
  usize onlineCount() const;

  /// Creates a brand-new node with a fresh credential; returns its index.
  /// The node knows nobody until it joins (see scheduleChurn's kJoin, or
  /// call node(i).join() yourself). If maintenance is enabled, the new node
  /// gets a started manager.
  usize addNode();

  /// Turns on per-node liveness maintenance (bucket refresh, republish,
  /// expiry). Call AFTER bootstrap(): the periodic timers keep the event
  /// queue non-empty forever, so bootstrap's settling sim().run() would
  /// never return. Drive a maintained overlay with runFor().
  void enableMaintenance(const MaintenanceConfig& mcfg);

  /// Stops and discards every maintenance manager.
  void disableMaintenance();

  bool maintenanceEnabled() const { return !managers_.empty(); }

  /// Maintenance manager of node \p i, or nullptr when maintenance is off.
  const MaintenanceManager* maintenance(usize i) const;

  /// Installs a churn script on the simulator. kCrash/kRevive toggle the
  /// named node; kJoin creates a fresh node at event time and bootstraps it
  /// through the first online node. Events in the past fire immediately.
  void scheduleChurn(const ChurnSchedule& schedule);

  /// Advances simulated time by \p us, running due events (safe with
  /// maintenance timers active, unlike sim().run()).
  void runFor(net::SimTime us) { sim_.runUntil(sim_.now() + us); }

  /// Sum of lookups performed by every node (Table I's unit).
  u64 totalLookups() const;

  /// Sum of RPCs sent by every node.
  u64 totalRpcsSent() const;

  /// Runs an async operation to completion: \p launch receives a
  /// `done(result)` callback; the simulator is stepped until it fires.
  template <typename R>
  R await(const std::function<void(std::function<void(R)>)>& launch) {
    bool done = false;
    R result{};
    launch([&](R r) {
      result = std::move(r);
      done = true;
    });
    while (!done && sim_.step()) {
    }
    if (!done) throw std::runtime_error("DhtNetwork::await: simulation drained");
    return result;
  }

 private:
  /// Single source of the per-index credential/seed derivation: initial
  /// nodes and fresh joins must enroll identically or the repo's
  /// bit-determinism claims break.
  std::unique_ptr<KademliaNode> makeNode(usize i);
  std::unique_ptr<MaintenanceManager> makeManager(usize i);

  DhtNetworkConfig cfg_;
  net::Simulator sim_;
  std::unique_ptr<net::LatencyModel> latency_;
  std::unique_ptr<net::Network> net_;
  crypto::CertificationService cs_;
  std::vector<std::unique_ptr<KademliaNode>> nodes_;
  // Declared after nodes_ so managers (which reference nodes and the
  // simulator) are destroyed first.
  std::vector<std::unique_ptr<MaintenanceManager>> managers_;
  MaintenanceConfig maintCfg_;
};

}  // namespace dharma::dht
