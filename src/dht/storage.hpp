#pragma once
/// \file storage.hpp
/// \brief Token-append block storage (Section IV-A).
///
/// The paper stores every graph block (r̄, t̄, t̂, r̃) as a bag of
/// "one-bit tokens": a PUT never reads or rewrites remote state, it only
/// appends a unit increment for one entry of the block. This is what makes
/// Approximation B race-free — concurrent writers can only add, never
/// clobber. GETs aggregate tokens into (entry, weight) pairs and support
/// *index-side filtering*: the responder ranks entries by weight and trims
/// the reply to a top-N / byte budget, matching the paper's answer to the
/// UDP payload limit (Section V-A).

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dht/node_id.hpp"

namespace dharma::dht {

/// Kind of mutation a token applies.
enum class TokenKind : u8 {
  kIncrement = 0,  ///< add `delta` unit tokens to entry `entry`
  kSetPayload = 1, ///< set the block's opaque payload (type-4 r̃ blocks)
  kTouch = 2,      ///< ensure the block exists (possibly with no entries)
  /// Approximation B's conditional increment: if `entry` is absent, create
  /// it with weight 1; otherwise add `delta` (= u(τ,r), the exact-model
  /// increment). The condition is evaluated *at the replica*, so no remote
  /// read-modify-write is needed and concurrent taggers cannot double-apply
  /// the large read-dependent increment (Section IV-B).
  kIncrementIfNewB = 3,
};

/// One append-only mutation of a block.
struct StoreToken {
  TokenKind kind = TokenKind::kIncrement;
  std::string entry;    ///< target entry name (kIncrement)
  u64 delta = 1;        ///< number of unit tokens bundled
  std::string payload;  ///< URI payload (kSetPayload)

  /// Canonical string covered by the content signature.
  std::string canonical() const;
};

/// Aggregated (entry, weight) pair of a block.
struct BlockEntry {
  std::string name;
  u64 weight = 0;

  bool operator==(const BlockEntry&) const = default;
};

/// Client-visible view of a block, possibly filtered index-side.
struct BlockView {
  std::vector<BlockEntry> entries;  ///< sorted by weight desc, name asc
  std::string payload;              ///< r̃ payload (empty otherwise)
  bool truncated = false;           ///< true if filtering dropped entries
  u64 totalEntries = 0;             ///< entry count before filtering

  /// Weight of \p name, or 0.
  u64 weightOf(std::string_view name) const;

  /// Entry-wise max merge with another replica's view (convergent: token
  /// counts only grow, so the max is the freshest value).
  void mergeMax(const BlockView& other);

  /// Serialized size estimate used by index-side filtering.
  usize byteSize() const;
};

/// Query parameters for GET (index-side filtering knobs).
struct GetOptions {
  u32 topN = 0;       ///< keep only the N heaviest entries (0 = all)
  usize maxBytes = 0; ///< trim entries to fit this many bytes (0 = no cap)
};

/// Per-node block store.
class BlockStore {
 public:
  /// Applies one token. Returns false on malformed tokens (empty entry
  /// name for increments).
  bool apply(const NodeId& key, const StoreToken& token);

  /// True if a block exists under \p key.
  bool has(const NodeId& key) const { return blocks_.count(key) > 0; }

  /// Aggregated, filtered view of the block, or nullopt if absent.
  std::optional<BlockView> query(const NodeId& key, const GetOptions& opt) const;

  /// Number of blocks held.
  usize size() const { return blocks_.size(); }

  /// Total tokens absorbed (diagnostics / hotspot analysis).
  u64 tokensApplied() const { return tokensApplied_; }

  /// Every key held (hotspot analysis).
  std::vector<NodeId> keys() const;

 private:
  struct Block {
    std::map<std::string, u64> entries;
    std::string payload;
  };

  std::map<NodeId, Block> blocks_;
  u64 tokensApplied_ = 0;
};

}  // namespace dharma::dht
