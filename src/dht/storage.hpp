#pragma once
/// \file storage.hpp
/// \brief Token-append block storage (Section IV-A).
///
/// The paper stores every graph block (r̄, t̄, t̂, r̃) as a bag of
/// "one-bit tokens": a PUT never reads or rewrites remote state, it only
/// appends a unit increment for one entry of the block. This is what makes
/// Approximation B race-free — concurrent writers can only add, never
/// clobber. GETs aggregate tokens into (entry, weight) pairs and support
/// *index-side filtering*: the responder ranks entries by weight and trims
/// the reply to a top-N / byte budget, matching the paper's answer to the
/// UDP payload limit (Section V-A).

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dht/node_id.hpp"
#include "net/simulator.hpp"

namespace dharma::dht {

/// Kind of mutation a token applies.
enum class TokenKind : u8 {
  kIncrement = 0,  ///< add `delta` unit tokens to entry `entry`
  kSetPayload = 1, ///< set the block's opaque payload (type-4 r̃ blocks)
  kTouch = 2,      ///< ensure the block exists (possibly with no entries)
  /// Approximation B's conditional increment: if `entry` is absent, create
  /// it with weight 1; otherwise add `delta` (= u(τ,r), the exact-model
  /// increment). The condition is evaluated *at the replica*, so no remote
  /// read-modify-write is needed and concurrent taggers cannot double-apply
  /// the large read-dependent increment (Section IV-B).
  kIncrementIfNewB = 3,
  /// Replication path (maintenance republish): set the entry's weight to
  /// max(current, delta). Idempotent and weight-preserving — a holder pushes
  /// its aggregated view toward the current kStore-closest set without
  /// re-incrementing, so repeated republish cycles converge instead of
  /// inflating counts.
  kMergeMax = 4,
};

/// One append-only mutation of a block.
struct StoreToken {
  TokenKind kind = TokenKind::kIncrement;
  std::string entry;    ///< target entry name (kIncrement)
  u64 delta = 1;        ///< number of unit tokens bundled
  std::string payload;  ///< URI payload (kSetPayload)

  /// Canonical string covered by the content signature.
  std::string canonical() const;
};

/// Aggregated (entry, weight) pair of a block.
struct BlockEntry {
  std::string name;
  u64 weight = 0;

  bool operator==(const BlockEntry&) const = default;
};

struct GetOptions;

/// Client-visible view of a block, possibly filtered index-side.
struct BlockView {
  std::vector<BlockEntry> entries;  ///< sorted by weight desc, name asc
  std::string payload;              ///< r̃ payload (empty otherwise)
  bool truncated = false;           ///< true if filtering dropped entries
  u64 totalEntries = 0;             ///< entry count before filtering

  /// Weight of \p name, or 0.
  u64 weightOf(std::string_view name) const;

  /// Entry-wise max merge with another replica's view (convergent: token
  /// counts only grow, so the max is the freshest value). When \p topN is
  /// non-zero the merged entry list is re-trimmed to the N heaviest — two
  /// topN-filtered replica views can union to more than topN entries, and
  /// callers asked for at most that many.
  void mergeMax(const BlockView& other, usize topN = 0);

  /// Serialized size estimate used by index-side filtering.
  usize byteSize() const;

  /// Applies the index-side filtering knobs to an already weight-ranked
  /// view (top-N cap, then the byte budget) — the same trimming
  /// BlockStore::query performs on authoritative state, reused so cached
  /// copies answer a request with identical filtering semantics.
  void trim(const GetOptions& opt);
};

/// Query parameters for GET (index-side filtering knobs).
struct GetOptions {
  u32 topN = 0;       ///< keep only the N heaviest entries (0 = all)
  usize maxBytes = 0; ///< trim entries to fit this many bytes (0 = no cap)
  /// Non-authoritative read: replicas along the lookup path may answer from
  /// their record cache (STORE_CACHE copies) instead of authoritative
  /// storage, and the first cached reply completes the lookup. Cached
  /// replies never count toward the value quorum — GetResult keeps them in
  /// a separate counter, so quorum/consistency classification is unchanged.
  bool allowCached = false;
};

/// Per-node block store (Likir-style soft state: blocks carry a
/// last-touched timestamp and can be expired when left unrefreshed).
class BlockStore {
 public:
  /// Applies one token at simulated time \p now (stamps the block's
  /// last-touched time — callers on the RPC path pass sim.now(); a block
  /// stamped 0 is dropped by the first expiry sweep). Returns false on
  /// malformed tokens (empty entry name or zero delta for increments).
  bool apply(const NodeId& key, const StoreToken& token, net::SimTime now);

  /// Atomic batch apply: either every token lands or none does (a rejected
  /// token rolls the block back). This is what makes the STORE replay
  /// dedup sound — "chunk applied" is all-or-nothing, so a deduped retry
  /// can never paper over a partially-applied batch. Empty batches are
  /// rejected.
  bool applyAll(const NodeId& key, const std::vector<StoreToken>& tokens,
                net::SimTime now);

  /// True if a block exists under \p key.
  bool has(const NodeId& key) const { return blocks_.count(key) > 0; }

  /// Aggregated, filtered view of the block, or nullopt if absent.
  std::optional<BlockView> query(const NodeId& key, const GetOptions& opt) const;

  /// Number of blocks held.
  usize size() const { return blocks_.size(); }

  /// Total tokens absorbed (diagnostics / hotspot analysis).
  u64 tokensApplied() const { return tokensApplied_; }

  /// Every key held (hotspot analysis, maintenance republish).
  std::vector<NodeId> keys() const;

  /// Last time a token touched \p key (0 if absent or never stamped).
  net::SimTime lastTouched(const NodeId& key) const;

  /// Drops every block whose last-touched time is strictly older than
  /// \p olderThan (soft-state expiry). Returns the number dropped.
  usize expire(net::SimTime olderThan);

 private:
  struct Block {
    std::map<std::string, u64> entries;
    std::string payload;
    net::SimTime lastTouchedUs = 0;
  };

  std::map<NodeId, Block> blocks_;
  u64 tokensApplied_ = 0;
};

}  // namespace dharma::dht
