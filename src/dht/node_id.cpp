#include "dht/node_id.hpp"

namespace dharma::dht {

NodeId NodeId::random(Rng& rng) {
  NodeId n;
  for (usize i = 0; i < 20; i += 4) {
    u32 word = static_cast<u32>(rng.next());
    n.bytes[i] = static_cast<u8>(word >> 24);
    n.bytes[i + 1] = static_cast<u8>(word >> 16);
    n.bytes[i + 2] = static_cast<u8>(word >> 8);
    n.bytes[i + 3] = static_cast<u8>(word);
  }
  return n;
}

NodeId xorDistance(const NodeId& a, const NodeId& b) {
  NodeId d;
  for (usize i = 0; i < 20; ++i) d.bytes[i] = a.bytes[i] ^ b.bytes[i];
  return d;
}

int bucketIndex(const NodeId& a, const NodeId& b) {
  for (usize i = 0; i < 20; ++i) {
    u8 x = a.bytes[i] ^ b.bytes[i];
    if (x != 0) {
      // Bit position within this byte, counting from the MSB of the id.
      int msb = 7;
      while (!((x >> msb) & 1)) --msb;
      return static_cast<int>((19 - i) * 8 + static_cast<usize>(msb));
    }
  }
  return -1;
}

int compareDistance(const NodeId& target, const NodeId& a, const NodeId& b) {
  for (usize i = 0; i < 20; ++i) {
    u8 da = a.bytes[i] ^ target.bytes[i];
    u8 db = b.bytes[i] ^ target.bytes[i];
    if (da != db) return da < db ? -1 : 1;
  }
  return 0;
}

}  // namespace dharma::dht
