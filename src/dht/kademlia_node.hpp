#pragma once
/// \file kademlia_node.hpp
/// \brief One Kademlia/Likir overlay node.
///
/// Implements the Kademlia RPCs over the simulated network, the α-parallel
/// iterative lookup, the PUT/GET primitives the paper assumes ("retrieving
/// or modifying the content of a block on the DHT costs only one overlay
/// lookup operation"), and — when NodeConfig::cacheEnabled — the classic
/// Kademlia lookup-path caching: successful GETs replicate the value to the
/// closest observed non-holder via the non-authoritative STORE_CACHE RPC.
/// counters().lookups is the quantity Table I counts.

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "cache/record_cache.hpp"
#include "crypto/identity.hpp"
#include "dht/routing_table.hpp"
#include "dht/rpc.hpp"
#include "dht/storage.hpp"
#include "net/executor.hpp"
#include "net/transport.hpp"

namespace dharma::obs {
class Histogram;
class MetricsRegistry;
class TraceRing;
}  // namespace dharma::obs

namespace dharma::dht {

/// Tunables (Kademlia defaults).
struct NodeConfig {
  usize k = 20;                       ///< bucket capacity & lookup width
  usize alpha = 3;                    ///< lookup parallelism
  usize kStore = 8;                   ///< replication factor for PUT
  u32 valueQuorum = 1;                ///< replicas merged per GET
  net::TimeUs rpcTimeoutUs = 1500000; ///< RPC timeout (1.5 s)
  bool verifyCredentials = true;      ///< Likir sender authentication
  bool verifyContent = true;          ///< Likir content-signature checks

  /// Lookup-path record caching (docs/PROTOCOL.md "Record caching"). Off by
  /// default: with it off the node neither publishes STORE_CACHE after GETs
  /// nor serves cached replies, so every existing cost identity is
  /// untouched.
  bool cacheEnabled = false;
  cache::CachePolicy cachePolicy;     ///< node-side cache bounds / TTL caps
  /// TTL granted to a cached copy sitting as close to the key as the
  /// nearest holder; each extra bucket of XOR distance halves it.
  net::TimeUs pathCacheTtlBaseUs = 30'000'000;
  net::TimeUs pathCacheTtlMinUs = 2'000'000;  ///< distance-scaling floor

  /// Optional observability sinks (docs/OBSERVABILITY.md). With `metrics`
  /// set the node records `dharma_node_rpc_service_us{rpc}` around every
  /// inbound request handler and `dharma_node_lookup_hops{kind}` /
  /// `dharma_node_lookup_latency_us{kind}` per finished lookup. With
  /// `traces` set, lookups started under beginTrace() emit per-RPC spans.
  /// Both must outlive the node; null disables at one-branch cost.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRing* traces = nullptr;
};

/// Result of an iterative lookup.
struct LookupResult {
  std::vector<Contact> closest;      ///< closest responsive contacts found
  std::optional<BlockView> value;    ///< merged value (value lookups only)
  u32 messagesSent = 0;              ///< RPCs issued by this lookup
  u32 valueReplies = 0;              ///< replicas that returned the value
  u32 rpcFailures = 0;               ///< lookup RPCs that timed out / failed
  u32 cachedReplies = 0;             ///< non-authoritative cached answers
};

/// Outcome of one PUT, threaded up to the client layer so callers can tell
/// "stored on every intended replica" apart from "silently under-replicated"
/// (the distinction PR 2's churn work made real).
struct PutResult {
  u32 acks = 0;         ///< replicas that acknowledged every chunk
  u32 targets = 0;      ///< responsive replicas the store was attempted on
  u32 intended = 0;     ///< the replication degree aimed for (kStore)
  u32 rpcFailures = 0;  ///< lookup + STORE RPCs that timed out / failed

  /// True when the full intended replica set acknowledged. targets alone
  /// cannot tell: a crashed overlay shrinks the responsive candidate set,
  /// so acks == targets < kStore is still under-replication.
  bool fullyReplicated() const { return intended > 0 && acks >= intended; }
};

/// Outcome of one GET. `view == nullopt` alone cannot distinguish "the
/// block does not exist" from "every holder was unreachable"; rpcFailures
/// carries the evidence.
struct GetResult {
  std::optional<BlockView> view;
  u32 valueReplies = 0;  ///< AUTHORITATIVE replicas that returned the value
  u32 messagesSent = 0;  ///< RPCs issued by the value lookup
  u32 rpcFailures = 0;   ///< lookup RPCs that timed out / failed
  u32 cachedReplies = 0; ///< record-cache answers (never count as replicas)

  bool found() const { return view.has_value(); }

  /// True when the view came exclusively from record caches — possible only
  /// for GETs issued with GetOptions::allowCached, and the signal benches
  /// use to classify a stale cached read instead of calling it silent.
  bool servedFromCache() const {
    return view.has_value() && valueReplies == 0 && cachedReplies > 0;
  }
};

/// Monotonic per-node counters.
struct NodeCounters {
  u64 lookups = 0;             ///< iterative procedures run (Table I unit)
  u64 puts = 0;                ///< PUT operations issued
  u64 gets = 0;                ///< GET operations issued
  u64 rpcsSent = 0;
  u64 rpcsReceived = 0;
  u64 timeouts = 0;
  u64 storesAccepted = 0;      ///< tokens applied on behalf of peers
  u64 storesRejectedAuth = 0;  ///< forged content signatures refused
  u64 credentialRejects = 0;   ///< datagrams dropped for bad credentials
  u64 replySenderMismatches = 0; ///< replies echoing a pending rpcId from the wrong peer
  u64 sendRejects = 0;         ///< RPCs failed fast (datagram refused by the network)
  u64 putQuorumFailures = 0;   ///< PUTs acked by fewer replicas than intended
  u64 storesDeduplicated = 0;  ///< replayed STOREs acked without re-applying
  // Record-cache counters (mirrored from RecordCache::stats so callers that
  // only see counters() — benches, churn classification — get them too).
  u64 cacheHits = 0;           ///< GETs answered from this node's cache
  u64 cacheMisses = 0;         ///< cache consults that found nothing fresh
  u64 cacheEvictions = 0;      ///< cache entries dropped by LRU pressure
  u64 cacheExpirations = 0;    ///< cache entries dropped past their TTL
  u64 storeCacheAccepted = 0;  ///< STORE_CACHE copies absorbed for peers
  u64 storeCachePublished = 0; ///< STORE_CACHE copies pushed after GETs
};

/// A single overlay node. The node is runtime-agnostic: it talks to the
/// world only through the Executor (clock, timers) and Transport (datagram)
/// interfaces, so the identical protocol code runs on the deterministic
/// simulator and on real UDP sockets under a real-time executor.
class KademliaNode {
 public:
  /// \param exec  shared event loop (SimExecutor or RealTimeExecutor)
  /// \param net   shared datagram transport (SimTransport or UdpTransport)
  /// \param cs    certification service (verification oracle)
  /// \param cred  this node's Likir credential (fixes the node id)
  /// \param cfg   protocol parameters
  /// \param seed  per-node randomness (lookup tie-breaking etc.)
  KademliaNode(net::Executor& exec, net::Transport& net,
               const crypto::CertificationService& cs, crypto::Credential cred,
               NodeConfig cfg, u64 seed);

  KademliaNode(const KademliaNode&) = delete;
  KademliaNode& operator=(const KademliaNode&) = delete;

  const NodeId& id() const { return self_.id; }
  net::Address address() const { return self_.addr; }
  Contact contact() const { return self_; }
  const std::string& userId() const { return credential_.userId; }

  /// Seeds the routing table without any traffic.
  void addSeed(const Contact& c);

  /// Standard join: insert \p seed, then look up our own id.
  void join(const Contact& seed, std::function<void()> done);

  /// Liveness probe; cb(true) on pong before timeout.
  void ping(const Contact& c, std::function<void(bool)> cb);

  /// Bootstrap probe toward a bare transport address (a "host:port" peer
  /// whose node id is not yet known — how a dharma_node daemon joins an
  /// existing cluster). The PONG's verified credential reveals the peer's
  /// id and enrolls it in the routing table (observeSender); cb(true) on
  /// reply. This is the ONE request whose reply is accepted from any
  /// sender id — the id is what the probe exists to learn; the credential
  /// check still gates it, exactly as for every other datagram.
  void pingAddress(net::Address addr, std::function<void(bool)> cb);

  /// Iterative FIND_NODE toward \p target.
  void findNode(const NodeId& target, std::function<void(LookupResult)> cb);

  /// Iterative FIND_VALUE for \p key with index-side filtering options.
  void findValue(const NodeId& key, const GetOptions& opt,
                 std::function<void(LookupResult)> cb);

  /// PUT: one lookup + replicated signed STOREs. cb receives the replica
  /// ack count plus the intended replication degree (PutResult); a PUT that
  /// lands on fewer replicas than intended bumps counters().putQuorumFailures.
  void put(const NodeId& key, const StoreToken& token,
           std::function<void(PutResult)> cb);

  /// PUT of a token batch against one block: still exactly ONE lookup (the
  /// paper's per-block-operation cost unit); batches that would overflow
  /// the MTU are transparently split across several STORE datagrams.
  /// PutResult::acks counts replicas that acknowledged every chunk.
  /// Allocates a fresh put id (see allocatePutId).
  void putMany(const NodeId& key, std::vector<StoreToken> tokens,
               std::function<void(PutResult)> cb);

  /// putMany under an explicit logical-PUT identity. Retrying callers MUST
  /// reuse the id of the failed attempt: replicas dedup STOREs on
  /// (sender, putId, chunk), which is what makes re-sending a batch of
  /// non-idempotent kIncrement tokens safe.
  void putMany(const NodeId& key, std::vector<StoreToken> tokens, u64 putId,
               std::function<void(PutResult)> cb);

  /// Reserves a logical-PUT identity for putMany (unique per node;
  /// globally scoped by the sender credential replicas dedup against).
  u64 allocatePutId() { return nextPutId_++; }

  /// GET: one value lookup; GetResult::view is nullopt if not found, with
  /// rpcFailures telling a clean miss apart from unreachable holders.
  void get(const NodeId& key, const GetOptions& opt,
           std::function<void(GetResult)> cb);

  BlockStore& store() { return store_; }
  const BlockStore& store() const { return store_; }
  RoutingTable& routing() { return routing_; }
  const RoutingTable& routing() const { return routing_; }
  const NodeCounters& counters() const { return counters_; }
  const NodeConfig& config() const { return cfg_; }

  /// Node-side record cache (non-authoritative STORE_CACHE copies).
  cache::RecordCache& recordCache() { return cache_; }
  const cache::RecordCache& recordCache() const { return cache_; }

  /// Drops every cache entry past its TTL at the current simulated time;
  /// returns the number dropped. Periodically driven by MaintenanceManager
  /// so dead entries on idle nodes don't survive past their TTL (find()
  /// only expires lazily, on the keys that are actually read).
  usize sweepCache();

  /// Tags the NEXT lookup started on this node (loop thread, synchronously
  /// — put/get/findNode start their lookup before returning) with \p
  /// traceId, so its span lands in NodeConfig::traces under the same id as
  /// the client op that issued it. No-op when traces is unset.
  void beginTrace(u64 traceId) { pendingTraceId_ = traceId; }

 private:
  struct LookupTask;

  net::Executor& exec_;
  net::Transport& net_;
  const crypto::CertificationService& cs_;
  crypto::Credential credential_;
  NodeConfig cfg_;
  Rng rng_;
  Contact self_;
  RoutingTable routing_;
  BlockStore store_;
  cache::RecordCache cache_;
  NodeCounters counters_;
  u64 nextRpcId_ = 1;
  u64 nextPutId_ = 1;
  u64 pendingTraceId_ = 0;  ///< consumed by the next startLookup (beginTrace)

  // Pre-resolved histogram handles (null when cfg_.metrics is unset).
  // rpcServiceHist_ is indexed by RpcType request value; lookup arrays by
  // kind (0 = node, 1 = value).
  std::array<obs::Histogram*, 5> rpcServiceHist_{};
  std::array<obs::Histogram*, 2> lookupHopsHist_{};
  std::array<obs::Histogram*, 2> lookupLatencyHist_{};
  void initObs();

  /// Replay-dedup memory for STOREs: (sender, putId, chunk) chunks that
  /// fully APPLIED (recorded only on success — a rejected chunk must fail
  /// again on retry, not be dedup-acked). Bounded FIFO so a long-lived
  /// replica can't grow unboundedly; a retry arrives within a few backoff
  /// periods, far inside the window.
  std::unordered_set<std::string> seenPuts_;
  std::deque<std::string> seenPutOrder_;
  static constexpr usize kSeenPutCap = 8192;

  static std::string putDedupKey(const std::string& user, u64 putId,
                                 u32 chunk);
  bool wasPutApplied(const std::string& user, u64 putId, u32 chunk) const;
  void recordPutApplied(const std::string& user, u64 putId, u32 chunk);

  struct PendingRpc {
    std::function<void(bool, const Envelope&)> onDone;  // ok=false on timeout
    net::TaskId timeoutEvent = net::kNullTask;
    NodeId expectedPeer;  ///< only replies from this node id resolve the RPC
    /// Address-only bootstrap probes (pingAddress) cannot know the peer id
    /// yet; they alone skip the expectedPeer match.
    bool anyPeer = false;
  };
  std::unordered_map<u64, PendingRpc> pending_;

  // -- plumbing --
  void onDatagram(net::Address from, const std::vector<u8>& data);
  void sendRequest(const Contact& to, RpcType type, std::vector<u8> body,
                   std::function<void(bool, const Envelope&)> onDone);
  /// Shared scaffolding behind sendRequest and pingAddress: envelope,
  /// pending-RPC entry, send-reject fast-fail, timeout arming.
  void sendRequestImpl(const Contact& to, bool anyPeer, RpcType type,
                       std::vector<u8> body,
                       std::function<void(bool, const Envelope&)> onDone);
  void sendReply(const Envelope& req, RpcType type, std::vector<u8> body);
  Envelope makeEnvelope(RpcType type, u64 rpcId, std::vector<u8> body) const;
  void observeSender(const Envelope& env);

  // -- request handlers --
  void handlePing(const Envelope& env);
  void handleFindNode(const Envelope& env);
  void handleFindValue(const Envelope& env);
  void handleStore(const Envelope& env);
  void handleStoreCache(const Envelope& env);

  // -- lookup machinery --
  void startLookup(const NodeId& target, bool isValue, GetOptions opt,
                   std::function<void(LookupResult)> cb);
  void pumpLookup(const std::shared_ptr<LookupTask>& task);
  void finishLookup(const std::shared_ptr<LookupTask>& task);

  // -- record cache plumbing --
  /// Mirrors RecordCache::stats into counters_ (single source of truth is
  /// the cache; the mirror keeps counters() self-contained).
  void syncCacheCounters();
  /// Lookup-path caching: replicate a freshly fetched value to the closest
  /// observed non-holder with a distance-scaled TTL.
  void publishPathCache(const LookupTask& task, const LookupResult& res);
};

}  // namespace dharma::dht
