#include "dht/rpc.hpp"

namespace dharma::dht {

namespace {
/// Validates a decoded element count before it reaches reserve(). A count
/// is attacker-controlled once payloads arrive from a real socket: left
/// unchecked it drives a multi-gigabyte allocation whose std::length_error
/// escapes the DecodeError-only catch blocks in the RPC handlers. Every
/// element occupies at least \p minBytesPerElement on the wire, so any
/// count beyond remaining()/min is provably truncated — reject it here.
usize checkedCount(const ByteReader& r, u64 n, usize minBytesPerElement) {
  if (n > r.remaining() / minBytesPerElement) {
    throw DecodeError("element count exceeds remaining bytes");
  }
  return static_cast<usize>(n);
}

/// Smallest wire footprint of one Contact: a 20-byte NodeId + u32 IPv4 +
/// u16 port.
constexpr usize kMinContactBytes = 26;
/// Smallest BlockEntry: 1-byte name length (empty) + 1-byte weight varint.
constexpr usize kMinBlockEntryBytes = 2;
/// Smallest StoreToken: kind + entry length + delta + payload length.
constexpr usize kMinStoreTokenBytes = 4;
}  // namespace

void writeNodeId(ByteWriter& w, const NodeId& id) {
  w.writeRaw(id.bytes.data(), id.bytes.size());
}

NodeId readNodeId(ByteReader& r) {
  NodeId id;
  r.readRaw(id.bytes.data(), id.bytes.size());
  return id;
}

void writeContact(ByteWriter& w, const Contact& c) {
  writeNodeId(w, c.id);
  w.writeU32(net::addressIp(c.addr));
  w.writeU16(net::addressPort(c.addr));
}

Contact readContact(ByteReader& r) {
  Contact c;
  c.id = readNodeId(r);
  u32 ip = r.readU32();
  u16 port = r.readU16();
  c.addr = net::makeAddress(ip, port);
  return c;
}

void writeCredential(ByteWriter& w, const crypto::Credential& c) {
  w.writeString(c.userId);
  w.writeRaw(c.nodeId.data(), c.nodeId.size());
  w.writeU64(c.expiresAt);
  w.writeRaw(c.mac.data(), c.mac.size());
}

crypto::Credential readCredential(ByteReader& r) {
  crypto::Credential c;
  c.userId = r.readString();
  r.readRaw(c.nodeId.data(), c.nodeId.size());
  c.expiresAt = r.readU64();
  r.readRaw(c.mac.data(), c.mac.size());
  return c;
}

void writeBlockView(ByteWriter& w, const BlockView& v) {
  w.writeVarint(v.entries.size());
  for (const auto& e : v.entries) {
    w.writeString(e.name);
    w.writeVarint(e.weight);
  }
  w.writeString(v.payload);
  w.writeU8(v.truncated ? 1 : 0);
  w.writeVarint(v.totalEntries);
}

BlockView readBlockView(ByteReader& r) {
  BlockView v;
  usize n = checkedCount(r, r.readVarint(), kMinBlockEntryBytes);
  v.entries.reserve(n);
  for (usize i = 0; i < n; ++i) {
    BlockEntry e;
    e.name = r.readString();
    e.weight = r.readVarint();
    v.entries.push_back(std::move(e));
  }
  v.payload = r.readString();
  v.truncated = r.readU8() != 0;
  v.totalEntries = r.readVarint();
  return v;
}

std::vector<u8> Envelope::encode() const {
  ByteWriter w;
  w.writeU8(kWireMagic);
  w.writeU8(kWireVersion);
  w.writeU8(static_cast<u8>(type));
  w.writeU64(rpcId);
  writeContact(w, sender);
  writeCredential(w, credential);
  w.writeBytes(body.data(), body.size());
  return w.take();
}

std::optional<Envelope> Envelope::decode(const std::vector<u8>& data) {
  try {
    ByteReader r(data);
    Envelope e;
    // Strict version gate: v1 datagrams led with the RpcType byte (0..9),
    // which can never equal the magic, so they reject here — cleanly, not
    // as a misparse of the remaining fields.
    if (r.readU8() != kWireMagic) return std::nullopt;
    if (r.readU8() != kWireVersion) return std::nullopt;
    u8 t = r.readU8();
    if (t > static_cast<u8>(RpcType::kStoreCacheReply)) return std::nullopt;
    e.type = static_cast<RpcType>(t);
    e.rpcId = r.readU64();
    e.sender = readContact(r);
    e.credential = readCredential(r);
    e.body = r.readBytes();
    if (!r.atEnd()) return std::nullopt;
    return e;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::vector<u8> FindNodeReq::encode() const {
  ByteWriter w;
  writeNodeId(w, target);
  return w.take();
}

FindNodeReq FindNodeReq::decode(ByteReader& r) {
  FindNodeReq q;
  q.target = readNodeId(r);
  return q;
}

std::vector<u8> ContactsReply::encode() const {
  ByteWriter w;
  w.writeVarint(contacts.size());
  for (const auto& c : contacts) writeContact(w, c);
  return w.take();
}

ContactsReply ContactsReply::decode(ByteReader& r) {
  ContactsReply rep;
  usize n = checkedCount(r, r.readVarint(), kMinContactBytes);
  rep.contacts.reserve(n);
  for (usize i = 0; i < n; ++i) rep.contacts.push_back(readContact(r));
  return rep;
}

std::vector<u8> FindValueReq::encode() const {
  ByteWriter w;
  writeNodeId(w, key);
  w.writeU32(topN);
  w.writeU32(maxBytes);
  w.writeU8(allowCached ? 1 : 0);
  return w.take();
}

FindValueReq FindValueReq::decode(ByteReader& r) {
  FindValueReq q;
  q.key = readNodeId(r);
  q.topN = r.readU32();
  q.maxBytes = r.readU32();
  q.allowCached = r.readU8() != 0;
  return q;
}

std::vector<u8> FindValueReply::encode() const {
  ByteWriter w;
  w.writeU8(found ? 1 : 0);
  if (found) {
    w.writeU8(cached ? 1 : 0);
    writeBlockView(w, view);
  } else {
    w.writeVarint(contacts.size());
    for (const auto& c : contacts) writeContact(w, c);
  }
  return w.take();
}

FindValueReply FindValueReply::decode(ByteReader& r) {
  FindValueReply rep;
  rep.found = r.readU8() != 0;
  if (rep.found) {
    rep.cached = r.readU8() != 0;
    rep.view = readBlockView(r);
  } else {
    usize n = checkedCount(r, r.readVarint(), kMinContactBytes);
    rep.contacts.reserve(n);
    for (usize i = 0; i < n; ++i) rep.contacts.push_back(readContact(r));
  }
  return rep;
}

std::string StoreReq::canonicalBatch() const {
  std::string s = std::to_string(putId) + '|' + std::to_string(chunk) + '\n';
  for (const auto& t : tokens) {
    s += t.canonical();
    s += '\n';
  }
  return s;
}

std::vector<u8> StoreReq::encode() const {
  ByteWriter w;
  writeNodeId(w, key);
  w.writeVarint(putId);
  w.writeVarint(chunk);
  w.writeVarint(tokens.size());
  for (const auto& t : tokens) {
    w.writeU8(static_cast<u8>(t.kind));
    w.writeString(t.entry);
    w.writeVarint(t.delta);
    w.writeString(t.payload);
  }
  w.writeString(signature.userId);
  w.writeRaw(signature.mac.data(), signature.mac.size());
  return w.take();
}

StoreReq StoreReq::decode(ByteReader& r) {
  StoreReq q;
  q.key = readNodeId(r);
  q.putId = r.readVarint();
  q.chunk = static_cast<u32>(r.readVarint());
  usize n = checkedCount(r, r.readVarint(), kMinStoreTokenBytes);
  q.tokens.reserve(n);
  for (usize i = 0; i < n; ++i) {
    StoreToken t;
    u8 kind = r.readU8();
    if (kind > static_cast<u8>(TokenKind::kMergeMax)) {
      throw DecodeError("StoreReq: bad token kind");
    }
    t.kind = static_cast<TokenKind>(kind);
    t.entry = r.readString();
    t.delta = r.readVarint();
    t.payload = r.readString();
    q.tokens.push_back(std::move(t));
  }
  q.signature.userId = r.readString();
  r.readRaw(q.signature.mac.data(), q.signature.mac.size());
  return q;
}

std::vector<u8> StoreReply::encode() const {
  ByteWriter w;
  w.writeU8(ok ? 1 : 0);
  return w.take();
}

StoreReply StoreReply::decode(ByteReader& r) {
  StoreReply rep;
  rep.ok = r.readU8() != 0;
  return rep;
}

std::vector<u8> StoreCacheReq::encode() const {
  ByteWriter w;
  writeNodeId(w, key);
  w.writeVarint(ttlUs);
  writeBlockView(w, view);
  return w.take();
}

StoreCacheReq StoreCacheReq::decode(ByteReader& r) {
  StoreCacheReq q;
  q.key = readNodeId(r);
  q.ttlUs = r.readVarint();
  q.view = readBlockView(r);
  return q;
}

std::vector<u8> StoreCacheReply::encode() const {
  ByteWriter w;
  w.writeU8(ok ? 1 : 0);
  return w.take();
}

StoreCacheReply StoreCacheReply::decode(ByteReader& r) {
  StoreCacheReply rep;
  rep.ok = r.readU8() != 0;
  return rep;
}

}  // namespace dharma::dht
