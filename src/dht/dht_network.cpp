#include "dht/dht_network.hpp"

#include "util/logging.hpp"

namespace dharma::dht {

namespace {
std::unique_ptr<net::LatencyModel> makeLatency(const DhtNetworkConfig& cfg) {
  if (cfg.latency == "constant") {
    return std::make_unique<net::ConstantLatency>(cfg.constantLatencyUs);
  }
  if (cfg.latency == "uniform") {
    return std::make_unique<net::UniformLatency>(5000, 100000);
  }
  return std::make_unique<net::LogNormalLatency>();
}
}  // namespace

DhtNetwork::DhtNetwork(DhtNetworkConfig cfg)
    : cfg_(cfg), latency_(makeLatency(cfg)),
      net_(std::make_unique<net::Network>(sim_, *latency_, cfg.net,
                                          splitmix64(cfg.seed ^ 0xbeef))),
      // Seed-specific salt: different seeds place nodes at different points
      // of the id space, so experiment repetitions explore distinct
      // topologies.
      cs_("cs-secret-" + std::to_string(cfg.seed),
          "likir-" + std::to_string(cfg.seed)) {
  nodes_.reserve(cfg.nodes);
  for (usize i = 0; i < cfg.nodes; ++i) {
    nodes_.push_back(makeNode(i));
  }
}

std::unique_ptr<KademliaNode> DhtNetwork::makeNode(usize i) {
  crypto::Credential cred = cs_.enroll("user-" + std::to_string(i));
  return std::make_unique<KademliaNode>(sim_, *net_, cs_, cred, cfg_.node,
                                        splitmix64(cfg_.seed + 1000 + i));
}

std::unique_ptr<MaintenanceManager> DhtNetwork::makeManager(usize i) {
  return std::make_unique<MaintenanceManager>(
      sim_, *net_, *nodes_[i], maintCfg_, splitmix64(cfg_.seed + 7000 + i));
}

DhtNetwork::~DhtNetwork() = default;

void DhtNetwork::bootstrap() {
  if (nodes_.size() < 2) return;
  Contact seed = nodes_[0]->contact();
  for (usize i = 1; i < nodes_.size(); ++i) {
    bool done = false;
    nodes_[i]->join(seed, [&] { done = true; });
    while (!done && sim_.step()) {
    }
  }
  // Let stragglers (eviction pings, late replies) settle.
  sim_.run();
  DHARMA_LOG_INFO("DHT bootstrapped: ", nodes_.size(), " nodes, ",
                  net_->stats().sent, " datagrams");
}

PutResult DhtNetwork::putResult(usize from, const NodeId& key,
                                const StoreToken& token) {
  return putManyResult(from, key, {token});
}

PutResult DhtNetwork::putManyResult(usize from, const NodeId& key,
                                    std::vector<StoreToken> tokens) {
  return await<PutResult>([&](std::function<void(PutResult)> done) {
    node(from).putMany(key, std::move(tokens), std::move(done));
  });
}

u32 DhtNetwork::putBlocking(usize from, const NodeId& key,
                            const StoreToken& token) {
  return putResult(from, key, token).acks;
}

u32 DhtNetwork::putManyBlocking(usize from, const NodeId& key,
                                std::vector<StoreToken> tokens) {
  return putManyResult(from, key, std::move(tokens)).acks;
}

GetResult DhtNetwork::getResult(usize from, const NodeId& key,
                                GetOptions opt) {
  return await<GetResult>([&](std::function<void(GetResult)> done) {
    node(from).get(key, opt, std::move(done));
  });
}

std::optional<BlockView> DhtNetwork::getBlocking(usize from, const NodeId& key,
                                                 GetOptions opt) {
  return getResult(from, key, opt).view;
}

void DhtNetwork::setOnline(usize i, bool online) {
  net_->setOnline(nodes_.at(i)->address(), online);
}

bool DhtNetwork::isOnline(usize i) const {
  return net_->isOnline(nodes_.at(i)->address());
}

usize DhtNetwork::onlineCount() const {
  usize n = 0;
  for (usize i = 0; i < nodes_.size(); ++i) n += isOnline(i) ? 1 : 0;
  return n;
}

usize DhtNetwork::addNode() {
  usize i = nodes_.size();
  nodes_.push_back(makeNode(i));
  if (!managers_.empty()) {
    managers_.push_back(makeManager(i));
    managers_[i]->start();
  }
  return i;
}

void DhtNetwork::enableMaintenance(const MaintenanceConfig& mcfg) {
  disableMaintenance();
  maintCfg_ = mcfg;
  managers_.reserve(nodes_.size());
  for (usize i = 0; i < nodes_.size(); ++i) {
    managers_.push_back(makeManager(i));
    managers_[i]->start();
  }
}

void DhtNetwork::disableMaintenance() { managers_.clear(); }

const MaintenanceManager* DhtNetwork::maintenance(usize i) const {
  return i < managers_.size() ? managers_[i].get() : nullptr;
}

void DhtNetwork::scheduleChurn(const ChurnSchedule& schedule) {
  for (const ChurnEvent& e : schedule.events) {
    sim_.scheduleAt(std::max(sim_.now(), e.atUs), [this, e] {
      switch (e.action) {
        case ChurnAction::kCrash:
          if (e.node < nodes_.size()) setOnline(e.node, false);
          break;
        case ChurnAction::kRevive:
          if (e.node < nodes_.size()) setOnline(e.node, true);
          break;
        case ChurnAction::kJoin: {
          usize idx = addNode();
          // Fresh joins bootstrap through the first surviving seed.
          for (usize s = 0; s < idx; ++s) {
            if (isOnline(s)) {
              nodes_[idx]->join(nodes_[s]->contact(), nullptr);
              break;
            }
          }
          break;
        }
      }
    });
  }
}

u64 DhtNetwork::totalLookups() const {
  u64 n = 0;
  for (const auto& nd : nodes_) n += nd->counters().lookups;
  return n;
}

u64 DhtNetwork::totalRpcsSent() const {
  u64 n = 0;
  for (const auto& nd : nodes_) n += nd->counters().rpcsSent;
  return n;
}

}  // namespace dharma::dht
