#include "dht/dht_network.hpp"

#include "util/logging.hpp"

namespace dharma::dht {

namespace {
std::unique_ptr<net::LatencyModel> makeLatency(const DhtNetworkConfig& cfg) {
  if (cfg.latency == "constant") {
    return std::make_unique<net::ConstantLatency>(cfg.constantLatencyUs);
  }
  if (cfg.latency == "uniform") {
    return std::make_unique<net::UniformLatency>(5000, 100000);
  }
  return std::make_unique<net::LogNormalLatency>();
}
}  // namespace

DhtNetwork::DhtNetwork(DhtNetworkConfig cfg)
    : cfg_(cfg), latency_(makeLatency(cfg)),
      net_(std::make_unique<net::Network>(sim_, *latency_, cfg.net,
                                          splitmix64(cfg.seed ^ 0xbeef))),
      // Seed-specific salt: different seeds place nodes at different points
      // of the id space, so experiment repetitions explore distinct
      // topologies.
      cs_("cs-secret-" + std::to_string(cfg.seed),
          "likir-" + std::to_string(cfg.seed)) {
  nodes_.reserve(cfg.nodes);
  for (usize i = 0; i < cfg.nodes; ++i) {
    crypto::Credential cred = cs_.enroll("user-" + std::to_string(i));
    nodes_.push_back(std::make_unique<KademliaNode>(
        sim_, *net_, cs_, cred, cfg.node, splitmix64(cfg.seed + 1000 + i)));
  }
}

DhtNetwork::~DhtNetwork() = default;

void DhtNetwork::bootstrap() {
  if (nodes_.size() < 2) return;
  Contact seed = nodes_[0]->contact();
  for (usize i = 1; i < nodes_.size(); ++i) {
    bool done = false;
    nodes_[i]->join(seed, [&] { done = true; });
    while (!done && sim_.step()) {
    }
  }
  // Let stragglers (eviction pings, late replies) settle.
  sim_.run();
  DHARMA_LOG_INFO("DHT bootstrapped: ", nodes_.size(), " nodes, ",
                  net_->stats().sent, " datagrams");
}

u32 DhtNetwork::putBlocking(usize from, const NodeId& key,
                            const StoreToken& token) {
  return await<u32>([&](std::function<void(u32)> done) {
    node(from).put(key, token, std::move(done));
  });
}

u32 DhtNetwork::putManyBlocking(usize from, const NodeId& key,
                                std::vector<StoreToken> tokens) {
  return await<u32>([&](std::function<void(u32)> done) {
    node(from).putMany(key, std::move(tokens), std::move(done));
  });
}

std::optional<BlockView> DhtNetwork::getBlocking(usize from, const NodeId& key,
                                                 GetOptions opt) {
  return await<std::optional<BlockView>>(
      [&](std::function<void(std::optional<BlockView>)> done) {
        node(from).get(key, opt, std::move(done));
      });
}

void DhtNetwork::setOnline(usize i, bool online) {
  net_->setOnline(nodes_.at(i)->address(), online);
}

u64 DhtNetwork::totalLookups() const {
  u64 n = 0;
  for (const auto& nd : nodes_) n += nd->counters().lookups;
  return n;
}

u64 DhtNetwork::totalRpcsSent() const {
  u64 n = 0;
  for (const auto& nd : nodes_) n += nd->counters().rpcsSent;
  return n;
}

}  // namespace dharma::dht
