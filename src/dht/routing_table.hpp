#pragma once
/// \file routing_table.hpp
/// \brief Kademlia routing table: 160 k-buckets indexed by XOR prefix.

#include <array>
#include <vector>

#include "dht/kbucket.hpp"

namespace dharma::dht {

/// Routing table for one node. Bucket i holds contacts whose XOR distance
/// from the owner has its most significant bit at position i.
class RoutingTable {
 public:
  /// \param self      owner id (contacts equal to self are ignored)
  /// \param bucketCap per-bucket capacity (Kademlia's k, default 20)
  explicit RoutingTable(const NodeId& self, usize bucketCap = 20);

  /// Offers a contact; returns the bucket outcome (kFull => the caller
  /// should ping evictionCandidateFor(c)).
  BucketInsert touch(const Contact& c);

  /// Stalest contact of the bucket \p c belongs to.
  std::optional<Contact> evictionCandidateFor(const Contact& c) const;

  /// Replaces the stalest entry of c's bucket with c (failed-ping path).
  /// Prefer replaceContact(): this replaces whatever is stalest *now*,
  /// which may not be the entry that was actually pinged.
  void replaceStalestWith(const Contact& c);

  /// Pinned eviction: replaces the contact with id \p victim in c's bucket
  /// with \p c — only that entry, and only if it is still present; when the
  /// victim is already gone, \p c is inserted only if the bucket has room.
  /// Returns true if \p c entered the table.
  bool replaceContact(const NodeId& victim, const Contact& c);

  /// Removes a contact wherever it lives.
  bool remove(const NodeId& id);

  bool contains(const NodeId& id) const;

  /// The \p n known contacts closest to \p target (XOR order).
  std::vector<Contact> closest(const NodeId& target, usize n) const;

  /// Uniformly random id whose XOR distance from the owner has its most
  /// significant bit at position \p bucket — i.e. an id that falls in that
  /// bucket's range. Used by maintenance bucket refresh.
  NodeId randomIdInBucket(usize bucket, Rng& rng) const;

  /// Total number of stored contacts.
  usize size() const;

  /// Number of non-empty buckets.
  usize nonEmptyBuckets() const;

  const NodeId& self() const { return self_; }

  /// Direct bucket access (diagnostics, tests).
  const KBucket& bucket(usize i) const { return buckets_[i]; }

 private:
  NodeId self_;
  std::array<KBucket, 160> buckets_;

  int indexFor(const NodeId& id) const { return bucketIndex(self_, id); }
};

}  // namespace dharma::dht
