#include "dht/routing_table.hpp"

#include <algorithm>

namespace dharma::dht {

RoutingTable::RoutingTable(const NodeId& self, usize bucketCap) : self_(self) {
  buckets_.fill(KBucket(bucketCap));
}

BucketInsert RoutingTable::touch(const Contact& c) {
  int idx = indexFor(c.id);
  if (idx < 0) return BucketInsert::kUpdated;  // self; ignore
  return buckets_[static_cast<usize>(idx)].touch(c);
}

std::optional<Contact> RoutingTable::evictionCandidateFor(const Contact& c) const {
  int idx = indexFor(c.id);
  if (idx < 0) return std::nullopt;
  return buckets_[static_cast<usize>(idx)].evictionCandidate();
}

void RoutingTable::replaceStalestWith(const Contact& c) {
  int idx = indexFor(c.id);
  if (idx < 0) return;
  buckets_[static_cast<usize>(idx)].replaceStalest(c);
}

bool RoutingTable::replaceContact(const NodeId& victim, const Contact& c) {
  int idx = indexFor(c.id);
  if (idx < 0) return false;
  return buckets_[static_cast<usize>(idx)].replace(victim, c);
}

bool RoutingTable::remove(const NodeId& id) {
  int idx = indexFor(id);
  if (idx < 0) return false;
  return buckets_[static_cast<usize>(idx)].remove(id);
}

bool RoutingTable::contains(const NodeId& id) const {
  int idx = indexFor(id);
  if (idx < 0) return false;
  return buckets_[static_cast<usize>(idx)].contains(id);
}

std::vector<Contact> RoutingTable::closest(const NodeId& target, usize n) const {
  std::vector<Contact> all;
  all.reserve(size());
  for (const auto& b : buckets_) {
    all.insert(all.end(), b.entries().begin(), b.entries().end());
  }
  usize take = std::min(n, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(take), all.end(),
                    [&](const Contact& a, const Contact& b) {
                      return compareDistance(target, a.id, b.id) < 0;
                    });
  all.resize(take);
  return all;
}

NodeId RoutingTable::randomIdInBucket(usize bucket, Rng& rng) const {
  auto setBit = [](NodeId& n, usize i, bool v) {
    u8& byte = n.bytes[19 - i / 8];
    u8 mask = static_cast<u8>(1u << (i % 8));
    if (v) {
      byte |= mask;
    } else {
      byte &= static_cast<u8>(~mask);
    }
  };
  // Share the owner's prefix above `bucket`, differ exactly at `bucket`,
  // randomise everything below.
  NodeId id = self_;
  setBit(id, bucket, !self_.bit(static_cast<int>(bucket)));
  u64 bits = 0;
  int have = 0;
  for (usize i = 0; i < bucket; ++i) {
    if (have == 0) {
      bits = rng.next();
      have = 64;
    }
    setBit(id, i, (bits & 1) != 0);
    bits >>= 1;
    --have;
  }
  return id;
}

usize RoutingTable::size() const {
  usize n = 0;
  for (const auto& b : buckets_) n += b.size();
  return n;
}

usize RoutingTable::nonEmptyBuckets() const {
  usize n = 0;
  for (const auto& b : buckets_) n += b.size() > 0 ? 1 : 0;
  return n;
}

}  // namespace dharma::dht
