#pragma once
/// \file node_id.hpp
/// \brief 160-bit Kademlia identifiers and the XOR metric.
///
/// Node ids and block keys share the same 160-bit space (Kademlia [13]).
/// Distance is bitwise XOR interpreted as a big-endian unsigned integer;
/// bucketIndex() is the position of the most significant differing bit
/// (159 = differ in the top bit, 0 = differ only in the lowest bit).

#include <array>
#include <compare>
#include <string>
#include <string_view>

#include "crypto/sha1.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dharma::dht {

/// 160-bit identifier (big-endian byte order).
struct NodeId {
  std::array<u8, 20> bytes{};

  /// All-zero id.
  static NodeId zero() { return NodeId{}; }

  /// Id from a SHA-1 digest (the usual derivation).
  static NodeId fromDigest(const crypto::Digest160& d) {
    NodeId n;
    n.bytes = d;
    return n;
  }

  /// Id from hashing an arbitrary string.
  static NodeId fromString(std::string_view s) {
    return fromDigest(crypto::sha1(s));
  }

  /// Uniformly random id.
  static NodeId random(Rng& rng);

  /// Parses 40 hex characters.
  static NodeId fromHex(std::string_view hex) {
    return fromDigest(crypto::digestFromHex(hex));
  }

  /// Lower-case 40-char hex string.
  std::string toHex() const { return crypto::toHex(bytes); }

  /// Abbreviated hex (first 8 chars) for logs.
  std::string shortHex() const { return toHex().substr(0, 8); }

  auto operator<=>(const NodeId&) const = default;

  /// Value of the bit at position \p i (159 = most significant).
  bool bit(int i) const {
    return (bytes[19 - i / 8] >> (i % 8)) & 1;
  }
};

/// Bitwise XOR distance.
NodeId xorDistance(const NodeId& a, const NodeId& b);

/// Index of the most significant set bit of xorDistance(a, b), in
/// [0, 159]; returns -1 when a == b.
int bucketIndex(const NodeId& a, const NodeId& b);

/// Three-way comparison of |a ^ target| vs |b ^ target|:
/// negative if a is closer to target, 0 if equidistant, positive otherwise.
int compareDistance(const NodeId& target, const NodeId& a, const NodeId& b);

/// True if a is strictly closer to target than b.
inline bool closerTo(const NodeId& target, const NodeId& a, const NodeId& b) {
  return compareDistance(target, a, b) < 0;
}

/// Hash functor so NodeId can key unordered containers.
struct NodeIdHash {
  usize operator()(const NodeId& id) const {
    u64 h = 0;
    for (int i = 0; i < 8; ++i) h = (h << 8) | id.bytes[i];
    return static_cast<usize>(splitmix64(h));
  }
};

}  // namespace dharma::dht
