#include "dht/kbucket.hpp"

#include <algorithm>

namespace dharma::dht {

BucketInsert KBucket::touch(const Contact& c) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Contact& e) { return e.id == c.id; });
  if (it != entries_.end()) {
    // Refresh address (a node may rejoin under a new endpoint) and move to
    // the most-recently-seen tail.
    Contact updated = c;
    entries_.erase(it);
    entries_.push_back(updated);
    return BucketInsert::kUpdated;
  }
  if (entries_.size() < capacity_) {
    entries_.push_back(c);
    return BucketInsert::kInserted;
  }
  return BucketInsert::kFull;
}

bool KBucket::remove(const NodeId& id) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Contact& e) { return e.id == id; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

bool KBucket::contains(const NodeId& id) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Contact& e) { return e.id == id; });
}

std::optional<Contact> KBucket::evictionCandidate() const {
  if (entries_.empty()) return std::nullopt;
  return entries_.front();
}

void KBucket::replaceStalest(const Contact& c) {
  if (entries_.empty()) {
    entries_.push_back(c);
    return;
  }
  entries_.erase(entries_.begin());
  entries_.push_back(c);
}

bool KBucket::replace(const NodeId& victim, const Contact& c) {
  if (contains(c.id)) return false;
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Contact& e) { return e.id == victim; });
  if (it != entries_.end()) {
    entries_.erase(it);
    entries_.push_back(c);
    return true;
  }
  if (entries_.size() < capacity_) {
    entries_.push_back(c);
    return true;
  }
  return false;
}

}  // namespace dharma::dht
