#pragma once
/// \file rpc.hpp
/// \brief Wire formats for the Kademlia RPCs, Likir-authenticated.
///
/// Every datagram is an Envelope{type, rpcId, sender contact, credential}
/// followed by a type-specific body. Credentials are verified by receivers
/// before any state change (routing-table updates included), reproducing
/// Likir's defence against id spoofing.

#include <optional>
#include <vector>

#include "crypto/identity.hpp"
#include "dht/kbucket.hpp"
#include "dht/storage.hpp"
#include "util/buffer.hpp"

namespace dharma::dht {

/// First byte of every datagram. Deliberately outside the v1 RpcType range
/// (0..9, which was the first byte of a v1 datagram), so pre-versioning
/// traffic can never alias a versioned header.
constexpr u8 kWireMagic = 0xDA;

/// Wire-format version, second byte of every datagram. v1 (unversioned,
/// bare-u32 contact addresses) is rejected by Envelope::decode; v2 carries
/// this header and (ip, port) contact addresses. Receivers accept exactly
/// the current version — there is no negotiation on a datagram transport.
constexpr u8 kWireVersion = 2;

/// RPC discriminator.
enum class RpcType : u8 {
  kPing = 0,
  kPong = 1,
  kFindNode = 2,
  kFindNodeReply = 3,
  kFindValue = 4,
  kFindValueReply = 5,
  kStore = 6,
  kStoreReply = 7,
  kStoreCache = 8,       ///< non-authoritative path-cache replication
  kStoreCacheReply = 9,
};

/// Common datagram header: magic + version, then the v-independent fields.
struct Envelope {
  RpcType type = RpcType::kPing;
  u64 rpcId = 0;                 ///< request/response correlation id
  Contact sender;                ///< claimed sender (id + address)
  crypto::Credential credential; ///< Likir credential for sender.id
  std::vector<u8> body;          ///< type-specific payload

  std::vector<u8> encode() const;
  /// Strict decode: nullopt on anything but a well-formed kWireVersion
  /// datagram — wrong magic (v1 traffic included), wrong version,
  /// truncation, trailing bytes.
  static std::optional<Envelope> decode(const std::vector<u8>& data);
};

/// FIND_NODE request body.
struct FindNodeReq {
  NodeId target;
  std::vector<u8> encode() const;
  static FindNodeReq decode(ByteReader& r);
};

/// FIND_NODE / FIND_VALUE "closer nodes" reply body.
struct ContactsReply {
  std::vector<Contact> contacts;
  std::vector<u8> encode() const;
  static ContactsReply decode(ByteReader& r);
};

/// FIND_VALUE request body (carries the index-side filtering knobs).
struct FindValueReq {
  NodeId key;
  u32 topN = 0;
  u32 maxBytes = 0;
  /// The requester accepts a non-authoritative cached copy (GetOptions::
  /// allowCached). A responder without the authoritative block may then
  /// answer from its record cache, marking the reply `cached`.
  bool allowCached = false;
  std::vector<u8> encode() const;
  static FindValueReq decode(ByteReader& r);
};

/// FIND_VALUE reply body: either the (filtered) value or closer contacts.
struct FindValueReply {
  bool found = false;
  bool cached = false;  ///< value came from the responder's record cache
  BlockView view;
  std::vector<Contact> contacts;
  std::vector<u8> encode() const;
  static FindValueReply decode(ByteReader& r);
};

/// STORE request body: a batch of tokens for one block, signed as a unit.
/// Batches let a whole r̄ block (one token per tag) ride a single lookup;
/// the sender splits batches that would exceed the MTU.
struct StoreReq {
  NodeId key;
  /// Identity of the logical PUT this STORE belongs to, stable across
  /// client retries (allocated via KademliaNode::allocatePutId). Replicas
  /// dedup on (sender, putId, chunk): re-applying a retried batch of
  /// kIncrement tokens would otherwise double-count weights.
  u64 putId = 0;
  u32 chunk = 0;  ///< chunk index within an MTU-split batch
  std::vector<StoreToken> tokens;
  crypto::ContentSignature signature;

  /// Canonical string covered by the signature (put identity + token
  /// canonicals joined with newlines).
  std::string canonicalBatch() const;

  std::vector<u8> encode() const;
  static StoreReq decode(ByteReader& r);
};

/// STORE acknowledgement body.
struct StoreReply {
  bool ok = false;
  std::vector<u8> encode() const;
  static StoreReply decode(ByteReader& r);
};

/// STORE_CACHE request body: Kademlia lookup-path caching. After a
/// successful GET the initiator replicates the merged view to the closest
/// observed node that did NOT hold the value, with a TTL scaled down
/// exponentially with the target's extra XOR distance beyond the nearest
/// holder. The copy is NON-authoritative: receivers keep it in their record
/// cache (never BlockStore), serve it only to allowCached GETs, and expire
/// it unconditionally at the TTL — so it carries no content signature; a
/// forged copy can never satisfy an authoritative read or a value quorum.
struct StoreCacheReq {
  NodeId key;
  net::SimTime ttlUs = 0;  ///< distance-scaled freshness budget
  BlockView view;
  std::vector<u8> encode() const;
  static StoreCacheReq decode(ByteReader& r);
};

/// STORE_CACHE acknowledgement body.
struct StoreCacheReply {
  bool ok = false;  ///< false when the receiver's cache is disabled
  std::vector<u8> encode() const;
  static StoreCacheReply decode(ByteReader& r);
};

// -- shared field codecs ----------------------------------------------------

void writeNodeId(ByteWriter& w, const NodeId& id);
NodeId readNodeId(ByteReader& r);
void writeContact(ByteWriter& w, const Contact& c);
Contact readContact(ByteReader& r);
void writeCredential(ByteWriter& w, const crypto::Credential& c);
crypto::Credential readCredential(ByteReader& r);
void writeBlockView(ByteWriter& w, const BlockView& v);
BlockView readBlockView(ByteReader& r);

}  // namespace dharma::dht
