#pragma once
/// \file kbucket.hpp
/// \brief Kademlia k-bucket: a capacity-k LRU list of contacts.
///
/// Contacts are kept ordered by freshness (least-recently seen first).
/// When a full bucket sees a new contact, Kademlia pings the stalest
/// entry and only evicts it if unresponsive; the bucket exposes the
/// candidate so the node can drive that ping asynchronously.

#include <optional>
#include <vector>

#include "dht/node_id.hpp"
#include "net/network.hpp"

namespace dharma::dht {

/// Overlay contact: identifier + network address.
struct Contact {
  NodeId id;
  net::Address addr = net::kNullAddress;

  bool operator==(const Contact& o) const { return id == o.id && addr == o.addr; }
};

/// Outcome of offering a contact to a bucket.
enum class BucketInsert {
  kUpdated,   ///< already present; moved to most-recently-seen
  kInserted,  ///< appended (bucket had room)
  kFull,      ///< bucket full; evictionCandidate() holds the stalest entry
};

/// Capacity-k least-recently-seen-first contact list.
class KBucket {
 public:
  explicit KBucket(usize capacity = 20) : capacity_(capacity) {}

  /// Offers a (fresh) contact. See BucketInsert.
  BucketInsert touch(const Contact& c);

  /// Removes the contact with \p id; returns true if it was present.
  bool remove(const NodeId& id);

  /// True if a contact with \p id is present.
  bool contains(const NodeId& id) const;

  /// Least-recently-seen contact, if any (the eviction-ping candidate).
  std::optional<Contact> evictionCandidate() const;

  /// Replaces the stalest contact with \p c (used after a failed ping).
  void replaceStalest(const Contact& c);

  /// Pinned replacement: if the contact with id \p victim is still present,
  /// replaces exactly that entry with \p c; if the victim is already gone
  /// (e.g. an RPC timeout evicted it first), \p c is inserted only when the
  /// bucket has room — no live entry is ever displaced. A no-op when \p c is
  /// already present. Returns true if \p c entered the bucket.
  bool replace(const NodeId& victim, const Contact& c);

  usize size() const { return entries_.size(); }
  usize capacity() const { return capacity_; }
  bool full() const { return entries_.size() >= capacity_; }

  /// Contacts, least-recently seen first.
  const std::vector<Contact>& entries() const { return entries_; }

 private:
  usize capacity_;
  std::vector<Contact> entries_;  // front = stalest, back = freshest
};

}  // namespace dharma::dht
