#pragma once
/// \file maintenance.hpp
/// \brief Overlay liveness maintenance: bucket refresh, replica republish,
/// storage expiry.
///
/// The paper's load/consistency claims assume a healthy Kademlia overlay;
/// under churn that health has to be actively maintained. One
/// MaintenanceManager per node drives three periodic jobs on the
/// deterministic simulator:
///
///  - **bucket refresh**: an iterative FIND_NODE toward a random id in each
///    bucket range not refreshed within `bucketRefreshIntervalUs`. Lookups
///    repopulate buckets with live contacts and, via the RPC timeout path,
///    purge dead ones — this is what heals routing tables after a crash
///    wave (Kademlia §2.3).
///  - **replica republish**: every held block is re-PUT toward the *current*
///    kStore-closest set using TokenKind::kMergeMax tokens, which preserve
///    the aggregated weights instead of re-incrementing them (idempotent:
///    any number of republish cycles converges). This migrates replicas to
///    nodes that joined after the original PUT and restores the replication
///    factor after holders crash (Kademlia §2.5).
///  - **storage expiry**: blocks whose last-touched time is older than
///    `expiryTtlUs` are dropped — Likir-style soft state, so data owned by
///    long-gone publishers ages out instead of accumulating forever. The
///    republish job skips expiry-due blocks, so a node reviving after a
///    long crash does not resurrect ancient state.
///  - **record-cache sweep**: TTL-overdue entries of the node's record
///    cache (non-authoritative STORE_CACHE copies) are dropped. Reads
///    already expire lazily; the sweep bounds the lifetime of dead entries
///    on idle nodes, so a stale cached copy can never outlive its TTL
///    waiting to ambush the next allowCached read.
///
/// Timers are jittered per node (deterministically, from the node seed) so
/// the whole overlay does not refresh/republish in lock step.
///
/// The manager is runtime-agnostic: it schedules on the node's Executor and
/// consults its Transport, so the same code maintains a simulated overlay
/// and a real loopback-UDP cluster (dharma_node runs it on the
/// RealTimeExecutor).
///
/// Note: under the simulator, maintenance keeps the event queue non-empty
/// forever. Drive a maintained overlay with bounded runs
/// (Simulator::runUntil / DhtNetwork::runFor), never with Simulator::run().

#include <array>

#include "dht/kademlia_node.hpp"

namespace dharma::dht {

/// Maintenance timer parameters (executor time, microseconds).
struct MaintenanceConfig {
  /// A bucket is stale if not refreshed for this long (0 disables refresh).
  net::TimeUs bucketRefreshIntervalUs = 30'000'000;
  /// How often each node republishes its blocks (0 disables republish).
  net::TimeUs republishIntervalUs = 60'000'000;
  /// Blocks untouched for this long are expired (0 disables expiry).
  net::TimeUs expiryTtlUs = 600'000'000;
  /// How often the expiry sweep runs.
  net::TimeUs expiryCheckIntervalUs = 60'000'000;
  /// How often the record-cache expiry sweep runs (0 disables it). The
  /// cache already expires lazily on reads; the sweep is what bounds the
  /// lifetime of dead entries on IDLE nodes, so TTL-overdue cached copies
  /// never linger just because nobody happened to read them.
  net::TimeUs cacheSweepIntervalUs = 30'000'000;
  /// Refresh lookups launched per tick (bounds the per-node burst; the
  /// refresh tick runs at a quarter of the staleness interval, so every
  /// stale bucket is still visited promptly).
  usize maxBucketRefreshesPerTick = 3;
};

/// Monotonic per-manager counters (diagnostics, tests, benches).
struct MaintenanceCounters {
  u64 refreshLookups = 0;    ///< bucket-refresh FIND_NODEs launched
  u64 republishRuns = 0;     ///< republish ticks that did work
  u64 blocksRepublished = 0; ///< block re-PUTs issued
  u64 blocksExpired = 0;     ///< blocks dropped by the expiry sweep
  u64 cacheEntriesExpired = 0; ///< cached records dropped by the cache sweep
};

/// Drives the three maintenance jobs for one node. All work is skipped
/// while the node's endpoint is offline (a crashed node does nothing), but
/// the timers keep running so a revived node resumes maintenance — and its
/// first expiry sweep drops whatever went stale while it was down.
class MaintenanceManager {
 public:
  /// \param exec shared event loop
  /// \param net  datagram transport (consulted for the node's online state)
  /// \param node the node to maintain
  /// \param cfg  timer parameters
  /// \param seed per-manager randomness (refresh targets, timer jitter)
  MaintenanceManager(net::Executor& exec, net::Transport& net,
                     KademliaNode& node, MaintenanceConfig cfg, u64 seed);
  ~MaintenanceManager();

  MaintenanceManager(const MaintenanceManager&) = delete;
  MaintenanceManager& operator=(const MaintenanceManager&) = delete;

  /// Schedules the periodic jobs (idempotent).
  void start();

  /// Cancels all pending maintenance events (idempotent). The manager's
  /// state is owned by the executor's callback world: under a real-time
  /// executor, call stop() from the loop thread or only after the executor
  /// itself has stopped — a concurrent tick would race the timer
  /// bookkeeping (and re-arm itself past the cancellation).
  void stop();

  bool running() const { return running_; }
  const MaintenanceCounters& counters() const { return counters_; }
  const MaintenanceConfig& config() const { return cfg_; }

 private:
  void refreshTick();
  void republishTick();
  void expiryTick();
  void cacheSweepTick();
  bool online() const;

  net::Executor& exec_;
  net::Transport& net_;
  KademliaNode& node_;
  MaintenanceConfig cfg_;
  Rng rng_;
  MaintenanceCounters counters_;
  std::array<net::TimeUs, 160> lastRefreshedUs_{};
  std::array<bool, 160> everPopulated_{};  ///< emptied buckets still refresh
  net::TaskId refreshEvent_ = net::kNullTask;
  net::TaskId republishEvent_ = net::kNullTask;
  net::TaskId expiryEvent_ = net::kNullTask;
  net::TaskId cacheSweepEvent_ = net::kNullTask;
  bool running_ = false;
};

}  // namespace dharma::dht
