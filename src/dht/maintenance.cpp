#include "dht/maintenance.hpp"

#include "net/affinity.hpp"

#include "util/logging.hpp"

namespace dharma::dht {

namespace {
/// First-fire delay for a periodic job: a deterministic jitter in
/// [interval/4, interval) so nodes started together do not tick in lock
/// step (thundering-herd avoidance).
net::TimeUs jittered(net::TimeUs interval, Rng& rng) {
  if (interval < 4) return interval;
  return interval / 4 + rng.uniform(interval - interval / 4);
}
}  // namespace

MaintenanceManager::MaintenanceManager(net::Executor& exec, net::Transport& net,
                                       KademliaNode& node,
                                       MaintenanceConfig cfg, u64 seed)
    : exec_(exec), net_(net), node_(node), cfg_(cfg), rng_(seed) {}

MaintenanceManager::~MaintenanceManager() { stop(); }

bool MaintenanceManager::online() const {
  return net_.isOnline(node_.address());
}

void MaintenanceManager::start() {
  DHARMA_ASSERT_AFFINITY(&exec_, "MaintenanceManager::start");
  if (running_) return;
  running_ = true;
  // Treat every bucket as freshly refreshed at start: the node just
  // bootstrapped (or was just created), so refresh work begins one full
  // staleness interval from now.
  lastRefreshedUs_.fill(exec_.now());
  for (usize b = 0; b < 160; ++b) {
    everPopulated_[b] = node_.routing().bucket(b).size() > 0;
  }
  if (cfg_.bucketRefreshIntervalUs > 0) {
    refreshEvent_ = exec_.schedule(
        jittered(cfg_.bucketRefreshIntervalUs, rng_), [this] { refreshTick(); });
  }
  if (cfg_.republishIntervalUs > 0) {
    republishEvent_ = exec_.schedule(jittered(cfg_.republishIntervalUs, rng_),
                                    [this] { republishTick(); });
  }
  if (cfg_.expiryTtlUs > 0 && cfg_.expiryCheckIntervalUs > 0) {
    expiryEvent_ = exec_.schedule(jittered(cfg_.expiryCheckIntervalUs, rng_),
                                 [this] { expiryTick(); });
  }
  if (cfg_.cacheSweepIntervalUs > 0) {
    cacheSweepEvent_ = exec_.schedule(jittered(cfg_.cacheSweepIntervalUs, rng_),
                                     [this] { cacheSweepTick(); });
  }
}

void MaintenanceManager::stop() {
  DHARMA_ASSERT_AFFINITY(&exec_, "MaintenanceManager::stop");
  if (!running_) return;
  running_ = false;
  exec_.cancel(refreshEvent_);
  exec_.cancel(republishEvent_);
  exec_.cancel(expiryEvent_);
  exec_.cancel(cacheSweepEvent_);
  refreshEvent_ = republishEvent_ = expiryEvent_ = cacheSweepEvent_ =
      net::kNullTask;
}

void MaintenanceManager::refreshTick() {
  DHARMA_ASSERT_AFFINITY(&exec_, "MaintenanceManager::refreshTick");
  if (online()) {
    usize launched = 0;
    for (usize b = 0;
         b < 160 && launched < cfg_.maxBucketRefreshesPerTick; ++b) {
      // Refresh populated buckets AND buckets that were populated once but
      // got emptied (e.g. every contact crashed and timed out): the lookup
      // into that range is exactly what repopulates them.
      if (node_.routing().bucket(b).size() > 0) everPopulated_[b] = true;
      if (!everPopulated_[b]) continue;
      if (lastRefreshedUs_[b] + cfg_.bucketRefreshIntervalUs > exec_.now()) {
        continue;
      }
      lastRefreshedUs_[b] = exec_.now();
      ++counters_.refreshLookups;
      node_.findNode(node_.routing().randomIdInBucket(b, rng_), nullptr);
      ++launched;
    }
  }
  // Tick at a quarter of the staleness interval: with the per-tick launch
  // bound this visits every stale bucket within roughly one interval even
  // on well-populated tables.
  refreshEvent_ = exec_.schedule(std::max<net::TimeUs>(
                                    cfg_.bucketRefreshIntervalUs / 4, 1),
                                [this] { refreshTick(); });
}

void MaintenanceManager::republishTick() {
  DHARMA_ASSERT_AFFINITY(&exec_, "MaintenanceManager::republishTick");
  if (online()) {
    // Blocks already past the TTL are the expiry sweep's business; pushing
    // them out again would resurrect state that should die (e.g. after this
    // node revived from a long crash).
    net::TimeUs expiryCutoff = 0;
    if (cfg_.expiryTtlUs > 0 && exec_.now() > cfg_.expiryTtlUs) {
      expiryCutoff = exec_.now() - cfg_.expiryTtlUs;
    }
    bool didWork = false;
    for (const NodeId& key : node_.store().keys()) {
      if (node_.store().lastTouched(key) < expiryCutoff) continue;
      auto view = node_.store().query(key, GetOptions{});
      if (!view) continue;
      std::vector<StoreToken> tokens;
      tokens.reserve(view->entries.size() + 1);
      for (const auto& e : view->entries) {
        tokens.push_back(StoreToken{TokenKind::kMergeMax, e.name, e.weight, {}});
      }
      if (!view->payload.empty()) {
        tokens.push_back(StoreToken{TokenKind::kSetPayload, {}, 1, view->payload});
      }
      if (tokens.empty()) {
        tokens.push_back(StoreToken{TokenKind::kTouch, {}, 1, {}});
      }
      ++counters_.blocksRepublished;
      didWork = true;
      node_.putMany(key, std::move(tokens), nullptr);
    }
    if (didWork) ++counters_.republishRuns;
  }
  republishEvent_ =
      exec_.schedule(cfg_.republishIntervalUs, [this] { republishTick(); });
}

void MaintenanceManager::expiryTick() {
  DHARMA_ASSERT_AFFINITY(&exec_, "MaintenanceManager::expiryTick");
  if (online() && exec_.now() > cfg_.expiryTtlUs) {
    usize dropped = node_.store().expire(exec_.now() - cfg_.expiryTtlUs);
    if (dropped > 0) {
      counters_.blocksExpired += dropped;
      DHARMA_LOG_DEBUG("maintenance: node ", node_.id().shortHex(),
                       " expired ", dropped, " blocks");
    }
  }
  expiryEvent_ =
      exec_.schedule(cfg_.expiryCheckIntervalUs, [this] { expiryTick(); });
}

void MaintenanceManager::cacheSweepTick() {
  DHARMA_ASSERT_AFFINITY(&exec_, "MaintenanceManager::cacheSweepTick");
  if (online()) {
    usize dropped = node_.sweepCache();
    if (dropped > 0) {
      counters_.cacheEntriesExpired += dropped;
      DHARMA_LOG_DEBUG("maintenance: node ", node_.id().shortHex(),
                       " swept ", dropped, " cached records");
    }
  }
  cacheSweepEvent_ =
      exec_.schedule(cfg_.cacheSweepIntervalUs, [this] { cacheSweepTick(); });
}

}  // namespace dharma::dht
