#include "dht/storage.hpp"

#include <algorithm>

namespace dharma::dht {

std::string StoreToken::canonical() const {
  std::string s;
  s.reserve(entry.size() + payload.size() + 16);
  switch (kind) {
    case TokenKind::kIncrement: s += "inc|"; break;
    case TokenKind::kSetPayload: s += "pay|"; break;
    case TokenKind::kTouch: s += "tch|"; break;
    case TokenKind::kIncrementIfNewB: s += "icb|"; break;
    case TokenKind::kMergeMax: s += "max|"; break;
  }
  s += entry;
  s += '|';
  s += std::to_string(delta);
  s += '|';
  s += payload;
  return s;
}

u64 BlockView::weightOf(std::string_view name) const {
  for (const auto& e : entries) {
    if (e.name == name) return e.weight;
  }
  return 0;
}

void BlockView::mergeMax(const BlockView& other, usize topN) {
  std::map<std::string, u64> merged;
  for (const auto& e : entries) merged[e.name] = e.weight;
  for (const auto& e : other.entries) {
    u64& w = merged[e.name];
    w = std::max(w, e.weight);
  }
  entries.clear();
  entries.reserve(merged.size());
  for (auto& [name, w] : merged) entries.push_back(BlockEntry{name, w});
  std::sort(entries.begin(), entries.end(), [](const BlockEntry& a, const BlockEntry& b) {
    return a.weight != b.weight ? a.weight > b.weight : a.name < b.name;
  });
  // Two topN-filtered replica views can union to more than topN distinct
  // entries; re-apply the caller's cap so a "truncated" view is never larger
  // than what was asked for.
  if (topN > 0 && entries.size() > topN) {
    entries.resize(topN);
    truncated = true;
  }
  if (payload.empty()) payload = other.payload;
  truncated = truncated || other.truncated;
  totalEntries = std::max(totalEntries, other.totalEntries);
}

usize BlockView::byteSize() const {
  usize n = payload.size() + 16;
  for (const auto& e : entries) n += e.name.size() + 10;
  return n;
}

void BlockView::trim(const GetOptions& opt) {
  if (opt.topN > 0 && entries.size() > opt.topN) {
    entries.resize(opt.topN);
    truncated = true;
  }
  if (opt.maxBytes > 0) {
    usize budget = opt.maxBytes > 16 + payload.size()
                       ? opt.maxBytes - 16 - payload.size()
                       : 0;
    usize used = 0;
    usize keep = 0;
    for (; keep < entries.size(); ++keep) {
      usize cost = entries[keep].name.size() + 10;
      if (used + cost > budget) break;
      used += cost;
    }
    if (keep < entries.size()) {
      entries.resize(keep);
      truncated = true;
    }
  }
}

bool BlockStore::apply(const NodeId& key, const StoreToken& token,
                       net::SimTime now) {
  switch (token.kind) {
    case TokenKind::kIncrement: {
      if (token.entry.empty() || token.delta == 0) return false;
      Block& b = blocks_[key];
      b.entries[token.entry] += token.delta;
      b.lastTouchedUs = std::max(b.lastTouchedUs, now);
      tokensApplied_ += token.delta;
      return true;
    }
    case TokenKind::kSetPayload: {
      Block& b = blocks_[key];
      b.payload = token.payload;
      b.lastTouchedUs = std::max(b.lastTouchedUs, now);
      ++tokensApplied_;
      return true;
    }
    case TokenKind::kTouch: {
      Block& b = blocks_[key];  // default-construct if absent
      b.lastTouchedUs = std::max(b.lastTouchedUs, now);
      ++tokensApplied_;
      return true;
    }
    case TokenKind::kIncrementIfNewB: {
      if (token.entry.empty()) return false;
      Block& b = blocks_[key];
      auto [it, inserted] = b.entries.emplace(token.entry, 1);
      if (!inserted) {
        // Present-path: delta is a real increment and must be non-zero,
        // matching kIncrement's contract.
        if (token.delta == 0) return false;
        it->second += token.delta;
      }
      b.lastTouchedUs = std::max(b.lastTouchedUs, now);
      tokensApplied_ += inserted ? 1 : token.delta;
      return true;
    }
    case TokenKind::kMergeMax: {
      if (token.entry.empty() || token.delta == 0) return false;
      Block& b = blocks_[key];
      u64& w = b.entries[token.entry];
      w = std::max(w, token.delta);
      b.lastTouchedUs = std::max(b.lastTouchedUs, now);
      ++tokensApplied_;
      return true;
    }
  }
  return false;
}

bool BlockStore::applyAll(const NodeId& key,
                          const std::vector<StoreToken>& tokens,
                          net::SimTime now) {
  if (tokens.empty()) return false;
  // Stage through apply(), restoring the pre-batch block (and the token
  // counter) if any token is rejected: atomicity by rollback.
  auto it = blocks_.find(key);
  const bool existed = it != blocks_.end();
  Block backup = existed ? it->second : Block{};
  const u64 counterBackup = tokensApplied_;
  bool ok = true;
  for (const auto& t : tokens) ok = apply(key, t, now) && ok;
  if (!ok) {
    tokensApplied_ = counterBackup;
    if (existed) {
      blocks_[key] = std::move(backup);
    } else {
      blocks_.erase(key);
    }
  }
  return ok;
}

std::optional<BlockView> BlockStore::query(const NodeId& key,
                                           const GetOptions& opt) const {
  auto it = blocks_.find(key);
  if (it == blocks_.end()) return std::nullopt;
  const Block& b = it->second;

  BlockView v;
  v.payload = b.payload;
  v.totalEntries = b.entries.size();
  v.entries.reserve(b.entries.size());
  for (const auto& [name, w] : b.entries) v.entries.push_back(BlockEntry{name, w});
  // Index-side ranking: heaviest entries first so that trimming keeps the
  // most relevant tags/resources (Section V-A).
  std::sort(v.entries.begin(), v.entries.end(),
            [](const BlockEntry& a, const BlockEntry& b2) {
              return a.weight != b2.weight ? a.weight > b2.weight : a.name < b2.name;
            });
  v.trim(opt);
  return v;
}

std::vector<NodeId> BlockStore::keys() const {
  std::vector<NodeId> out;
  out.reserve(blocks_.size());
  for (const auto& [k, _] : blocks_) out.push_back(k);
  return out;
}

net::SimTime BlockStore::lastTouched(const NodeId& key) const {
  auto it = blocks_.find(key);
  return it == blocks_.end() ? 0 : it->second.lastTouchedUs;
}

usize BlockStore::expire(net::SimTime olderThan) {
  usize dropped = 0;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->second.lastTouchedUs < olderThan) {
      it = blocks_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace dharma::dht
