#include "dht/storage.hpp"

#include <algorithm>

namespace dharma::dht {

std::string StoreToken::canonical() const {
  std::string s;
  s.reserve(entry.size() + payload.size() + 16);
  switch (kind) {
    case TokenKind::kIncrement: s += "inc|"; break;
    case TokenKind::kSetPayload: s += "pay|"; break;
    case TokenKind::kTouch: s += "tch|"; break;
    case TokenKind::kIncrementIfNewB: s += "icb|"; break;
  }
  s += entry;
  s += '|';
  s += std::to_string(delta);
  s += '|';
  s += payload;
  return s;
}

u64 BlockView::weightOf(std::string_view name) const {
  for (const auto& e : entries) {
    if (e.name == name) return e.weight;
  }
  return 0;
}

void BlockView::mergeMax(const BlockView& other) {
  std::map<std::string, u64> merged;
  for (const auto& e : entries) merged[e.name] = e.weight;
  for (const auto& e : other.entries) {
    u64& w = merged[e.name];
    w = std::max(w, e.weight);
  }
  entries.clear();
  entries.reserve(merged.size());
  for (auto& [name, w] : merged) entries.push_back(BlockEntry{name, w});
  std::sort(entries.begin(), entries.end(), [](const BlockEntry& a, const BlockEntry& b) {
    return a.weight != b.weight ? a.weight > b.weight : a.name < b.name;
  });
  if (payload.empty()) payload = other.payload;
  truncated = truncated || other.truncated;
  totalEntries = std::max(totalEntries, other.totalEntries);
}

usize BlockView::byteSize() const {
  usize n = payload.size() + 16;
  for (const auto& e : entries) n += e.name.size() + 10;
  return n;
}

bool BlockStore::apply(const NodeId& key, const StoreToken& token) {
  switch (token.kind) {
    case TokenKind::kIncrement: {
      if (token.entry.empty() || token.delta == 0) return false;
      Block& b = blocks_[key];
      b.entries[token.entry] += token.delta;
      tokensApplied_ += token.delta;
      return true;
    }
    case TokenKind::kSetPayload: {
      Block& b = blocks_[key];
      b.payload = token.payload;
      ++tokensApplied_;
      return true;
    }
    case TokenKind::kTouch: {
      blocks_[key];  // default-construct if absent
      ++tokensApplied_;
      return true;
    }
    case TokenKind::kIncrementIfNewB: {
      if (token.entry.empty()) return false;
      Block& b = blocks_[key];
      auto [it, inserted] = b.entries.emplace(token.entry, 1);
      if (!inserted) it->second += token.delta;
      tokensApplied_ += inserted ? 1 : token.delta;
      return true;
    }
  }
  return false;
}

std::optional<BlockView> BlockStore::query(const NodeId& key,
                                           const GetOptions& opt) const {
  auto it = blocks_.find(key);
  if (it == blocks_.end()) return std::nullopt;
  const Block& b = it->second;

  BlockView v;
  v.payload = b.payload;
  v.totalEntries = b.entries.size();
  v.entries.reserve(b.entries.size());
  for (const auto& [name, w] : b.entries) v.entries.push_back(BlockEntry{name, w});
  // Index-side ranking: heaviest entries first so that trimming keeps the
  // most relevant tags/resources (Section V-A).
  std::sort(v.entries.begin(), v.entries.end(),
            [](const BlockEntry& a, const BlockEntry& b2) {
              return a.weight != b2.weight ? a.weight > b2.weight : a.name < b2.name;
            });
  if (opt.topN > 0 && v.entries.size() > opt.topN) {
    v.entries.resize(opt.topN);
    v.truncated = true;
  }
  if (opt.maxBytes > 0) {
    usize budget = opt.maxBytes > 16 + v.payload.size()
                       ? opt.maxBytes - 16 - v.payload.size()
                       : 0;
    usize used = 0;
    usize keep = 0;
    for (; keep < v.entries.size(); ++keep) {
      usize cost = v.entries[keep].name.size() + 10;
      if (used + cost > budget) break;
      used += cost;
    }
    if (keep < v.entries.size()) {
      v.entries.resize(keep);
      v.truncated = true;
    }
  }
  return v;
}

std::vector<NodeId> BlockStore::keys() const {
  std::vector<NodeId> out;
  out.reserve(blocks_.size());
  for (const auto& [k, _] : blocks_) out.push_back(k);
  return out;
}

}  // namespace dharma::dht
