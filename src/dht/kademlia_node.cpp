#include "dht/kademlia_node.hpp"

#include "net/affinity.hpp"

#include <algorithm>
#include <cassert>

#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace dharma::dht {

namespace {
/// Candidate state inside an iterative lookup.
enum class CandState : u8 { kFresh, kInflight, kResponded, kFailed };

/// Request RpcTypes are the even enum values; value/2 indexes these.
constexpr const char* kRpcNames[] = {"ping", "find_node", "find_value",
                                     "store", "store_cache"};
constexpr const char* kLookupKinds[] = {"node", "value"};

struct Candidate {
  Contact contact;
  CandState state = CandState::kFresh;
};
}  // namespace

/// Shared state of one α-parallel iterative lookup.
struct KademliaNode::LookupTask {
  NodeId target;
  bool isValue = false;
  GetOptions opt;
  std::function<void(LookupResult)> cb;
  std::vector<Candidate> candidates;  // sorted by XOR distance to target
  usize inflight = 0;
  bool done = false;
  u32 messagesSent = 0;
  u32 valueReplies = 0;
  u32 cachedReplies = 0;
  u32 rpcFailures = 0;
  BlockView mergedValue;
  bool haveValue = false;
  net::TimeUs startUs = 0;    ///< for the lookup-latency histogram
  bool traced = false;        ///< span below is live (NodeConfig::traces set)
  obs::TraceSpan span;        ///< per-hop RPC events under the client's id
  /// Nodes observed to already have the value (authoritative replicas and
  /// cache servers alike): never chosen as the path-cache target.
  std::vector<NodeId> holders;

  /// Appends a span event when tracing; no-op (one branch) otherwise.
  void ev(net::TimeUs t, const char* label, std::string detail = {}) {
    if (traced) span.event(t, label, std::move(detail));
  }

  bool isHolder(const NodeId& id) const {
    return std::find(holders.begin(), holders.end(), id) != holders.end();
  }

  bool knows(const NodeId& id) const {
    return std::any_of(candidates.begin(), candidates.end(),
                       [&](const Candidate& c) { return c.contact.id == id; });
  }

  void addCandidate(const Contact& c) {
    if (knows(c.id)) return;
    auto pos = std::lower_bound(
        candidates.begin(), candidates.end(), c,
        [&](const Candidate& a, const Contact& b) {
          return compareDistance(target, a.contact.id, b.id) < 0;
        });
    candidates.insert(pos, Candidate{c, CandState::kFresh});
  }

  Candidate* find(const NodeId& id) {
    for (auto& c : candidates) {
      if (c.contact.id == id) return &c;
    }
    return nullptr;
  }
};

KademliaNode::KademliaNode(net::Executor& exec, net::Transport& net,
                           const crypto::CertificationService& cs,
                           crypto::Credential cred, NodeConfig cfg, u64 seed)
    : exec_(exec), net_(net), cs_(cs), credential_(std::move(cred)), cfg_(cfg),
      rng_(seed), self_{NodeId::fromDigest(credential_.nodeId), net::kNullAddress},
      routing_(self_.id, cfg.k), cache_(cfg.cachePolicy) {
  // The node's record cache lives and dies on this executor's loop thread;
  // bind it so debug builds assert that ownership on every cache op.
  cache_.bindOwner(&exec_);
  initObs();
  // Registered with THIS node's executor as the delivery target: under a
  // sharded runtime every datagram for this node lands on its own shard,
  // which is exactly the affinity cache_.bindOwner asserts above.
  self_.addr = net_.registerEndpoint(
      [this](net::Address from, const std::vector<u8>& data) {
        onDatagram(from, data);
      },
      exec_);
}

void KademliaNode::initObs() {
  if (cfg_.metrics == nullptr) return;
  for (usize i = 0; i < rpcServiceHist_.size(); ++i) {
    rpcServiceHist_[i] = &cfg_.metrics->histogram(
        "dharma_node_rpc_service_us",
        "Inbound RPC request handler service time (microseconds)",
        {{"rpc", kRpcNames[i]}});
  }
  for (usize k = 0; k < 2; ++k) {
    lookupHopsHist_[k] = &cfg_.metrics->histogram(
        "dharma_node_lookup_hops",
        "RPCs issued per iterative lookup, by lookup kind",
        {{"kind", kLookupKinds[k]}});
    lookupLatencyHist_[k] = &cfg_.metrics->histogram(
        "dharma_node_lookup_latency_us",
        "Iterative lookup wall time by lookup kind (microseconds)",
        {{"kind", kLookupKinds[k]}});
  }
}

void KademliaNode::addSeed(const Contact& c) {
  DHARMA_ASSERT_AFFINITY(&exec_, "KademliaNode::addSeed");
  if (c.id == self_.id) return;
  routing_.touch(c);
}

void KademliaNode::join(const Contact& seed, std::function<void()> done) {
  DHARMA_ASSERT_AFFINITY(&exec_, "KademliaNode::join");
  addSeed(seed);
  findNode(self_.id, [done = std::move(done)](const LookupResult&) {
    if (done) done();
  });
}

void KademliaNode::ping(const Contact& c, std::function<void(bool)> cb) {
  DHARMA_ASSERT_AFFINITY(&exec_, "KademliaNode::ping");
  sendRequest(c, RpcType::kPing, {}, [cb = std::move(cb)](bool ok, const Envelope&) {
    if (cb) cb(ok);
  });
}

void KademliaNode::pingAddress(net::Address addr, std::function<void(bool)> cb) {
  DHARMA_ASSERT_AFFINITY(&exec_, "KademliaNode::pingAddress");
  // A placeholder contact: the id is unknown until the PONG arrives, so the
  // pending RPC is flagged anyPeer and correlation falls back to rpcId
  // alone. The reply's (credential-verified) envelope feeds observeSender,
  // which is what actually enrolls the peer for the join lookup that
  // follows.
  sendRequestImpl(Contact{NodeId{}, addr}, /*anyPeer=*/true, RpcType::kPing,
                  {}, [cb = std::move(cb)](bool ok, const Envelope&) {
                    if (cb) cb(ok);
                  });
}

void KademliaNode::findNode(const NodeId& target,
                            std::function<void(LookupResult)> cb) {
  DHARMA_ASSERT_AFFINITY(&exec_, "KademliaNode::findNode");
  startLookup(target, false, GetOptions{}, std::move(cb));
}

void KademliaNode::findValue(const NodeId& key, const GetOptions& opt,
                             std::function<void(LookupResult)> cb) {
  DHARMA_ASSERT_AFFINITY(&exec_, "KademliaNode::findValue");
  startLookup(key, true, opt, std::move(cb));
}

void KademliaNode::put(const NodeId& key, const StoreToken& token,
                       std::function<void(PutResult)> cb) {
  putMany(key, {token}, std::move(cb));
}

void KademliaNode::putMany(const NodeId& key, std::vector<StoreToken> tokens,
                           std::function<void(PutResult)> cb) {
  putMany(key, std::move(tokens), allocatePutId(), std::move(cb));
}

std::string KademliaNode::putDedupKey(const std::string& user, u64 putId,
                                      u32 chunk) {
  return user + '#' + std::to_string(putId) + '#' + std::to_string(chunk);
}

bool KademliaNode::wasPutApplied(const std::string& user, u64 putId,
                                 u32 chunk) const {
  return seenPuts_.count(putDedupKey(user, putId, chunk)) > 0;
}

void KademliaNode::recordPutApplied(const std::string& user, u64 putId,
                                    u32 chunk) {
  std::string dedupKey = putDedupKey(user, putId, chunk);
  if (!seenPuts_.insert(dedupKey).second) return;
  seenPutOrder_.push_back(std::move(dedupKey));
  if (seenPutOrder_.size() > kSeenPutCap) {
    seenPuts_.erase(seenPutOrder_.front());
    seenPutOrder_.pop_front();
  }
}

void KademliaNode::putMany(const NodeId& key, std::vector<StoreToken> tokens,
                           u64 putId, std::function<void(PutResult)> cb) {
  DHARMA_ASSERT_AFFINITY(&exec_, "KademliaNode::putMany");
  ++counters_.puts;
  if (tokens.empty()) {
    if (cb) cb(PutResult{});
    return;
  }
  // Split the batch so each STORE datagram fits the MTU (the lookup cost is
  // unaffected: fragmentation happens after the single iterative lookup).
  const usize mtu = net_.mtuBytes();
  const usize budget = mtu > 300 ? mtu - 300 : mtu / 2;
  std::vector<std::vector<StoreToken>> chunks;
  chunks.emplace_back();
  usize used = 0;
  for (auto& t : tokens) {
    usize cost = t.entry.size() + t.payload.size() + 16;
    if (used + cost > budget && !chunks.back().empty()) {
      chunks.emplace_back();
      used = 0;
    }
    used += cost;
    chunks.back().push_back(std::move(t));
  }

  findNode(key, [this, key, putId, chunks = std::move(chunks),
                 cb = std::move(cb)](const LookupResult& res) {
    // Kademlia stores on the kStore closest NODES to the key — the
    // publisher included. A lookup never returns self, so merge self into
    // the candidate list by XOR distance; without this, two publishers
    // near the key would write to slightly different replica sets and
    // replicas would diverge.
    std::vector<Contact> targets = res.closest;
    auto selfPos = std::lower_bound(
        targets.begin(), targets.end(), self_,
        [&](const Contact& a, const Contact& b) {
          return compareDistance(key, a.id, b.id) < 0;
        });
    targets.insert(selfPos, self_);
    usize replicas = std::min(cfg_.kStore, targets.size());
    targets.resize(replicas);
    if (replicas == 0) {
      ++counters_.putQuorumFailures;
      if (cb) {
        cb(PutResult{0, 0, static_cast<u32>(cfg_.kStore), res.rpcFailures});
      }
      return;
    }
    struct Shared {
      PutResult result;
      usize repliesOutstanding = 0;
      std::vector<usize> chunksLeft;
      std::vector<bool> allOk;
      std::function<void(PutResult)> cb;
      NodeCounters* counters = nullptr;

      void finishIfDone() {
        if (repliesOutstanding != 0) return;
        // Quorum miss: the PUT landed on fewer replicas than the kStore it
        // aimed for (dead targets, rejected stores, or a thinned candidate
        // set). Callers historically dropped the ack count on the floor;
        // the counter makes under-replication observable even for them.
        if (result.acks < result.intended) ++counters->putQuorumFailures;
        if (cb) cb(result);
      }
    };
    auto sh = std::make_shared<Shared>();
    sh->result.targets = static_cast<u32>(replicas);
    sh->result.intended = static_cast<u32>(cfg_.kStore);
    sh->result.rpcFailures = res.rpcFailures;
    sh->chunksLeft.assign(replicas, chunks.size());
    sh->allOk.assign(replicas, true);
    sh->repliesOutstanding = replicas * chunks.size();
    sh->cb = cb;
    sh->counters = &counters_;

    for (usize i = 0; i < replicas; ++i) {
      if (targets[i].id == self_.id) {
        // Local replica: apply directly (own tokens need no signature
        // round-trip), with the same replay dedup as the RPC path so a
        // retried PUT cannot double-apply here either.
        bool ok = true;
        for (usize c = 0; c < chunks.size(); ++c) {
          u32 chunkIdx = static_cast<u32>(c);
          if (wasPutApplied(credential_.userId, putId, chunkIdx)) {
            ++counters_.storesDeduplicated;
            continue;
          }
          // Atomic chunk apply (all-or-nothing), recorded only on success:
          // a rejected chunk leaves no partial state behind and must fail
          // the retry again rather than be dedup-acked.
          bool chunkOk = store_.applyAll(key, chunks[c], exec_.now());
          if (chunkOk) recordPutApplied(credential_.userId, putId, chunkIdx);
          ok = ok && chunkOk;
        }
        if (ok) {
          ++sh->result.acks;
          ++counters_.storesAccepted;
        }
        sh->repliesOutstanding -= chunks.size();
        sh->finishIfDone();
        continue;
      }
      for (usize c = 0; c < chunks.size(); ++c) {
        StoreReq req;
        req.key = key;
        req.putId = putId;
        req.chunk = static_cast<u32>(c);
        req.tokens = chunks[c];
        req.signature = cs_.signContent(credential_.userId, key.toHex(),
                                        req.canonicalBatch());
        sendRequest(targets[i], RpcType::kStore, req.encode(),
                    [sh, i](bool ok, const Envelope& env) {
                      bool applied = false;
                      if (ok) {
                        try {
                          ByteReader r(env.body);
                          applied = StoreReply::decode(r).ok;
                        } catch (const DecodeError&) {
                        }
                      } else {
                        ++sh->result.rpcFailures;
                      }
                      if (!applied) sh->allOk[i] = false;
                      if (--sh->chunksLeft[i] == 0 && sh->allOk[i]) {
                        ++sh->result.acks;
                      }
                      --sh->repliesOutstanding;
                      sh->finishIfDone();
                    });
      }
    }
  });
}

void KademliaNode::get(const NodeId& key, const GetOptions& opt,
                       std::function<void(GetResult)> cb) {
  DHARMA_ASSERT_AFFINITY(&exec_, "KademliaNode::get");
  ++counters_.gets;
  findValue(key, opt, [cb = std::move(cb)](const LookupResult& res) {
    if (cb) {
      cb(GetResult{res.value, res.valueReplies, res.messagesSent,
                   res.rpcFailures, res.cachedReplies});
    }
  });
}

usize KademliaNode::sweepCache() {
  DHARMA_ASSERT_AFFINITY(&exec_, "KademliaNode::sweepCache");
  usize dropped = cache_.expire(exec_.now());
  syncCacheCounters();
  return dropped;
}

void KademliaNode::syncCacheCounters() {
  const cache::CacheStats& s = cache_.stats();
  counters_.cacheHits = s.hits;
  counters_.cacheMisses = s.misses;
  counters_.cacheEvictions = s.evictions;
  counters_.cacheExpirations = s.expirations;
}

// ---------------------------------------------------------------------------
// Datagram plumbing
// ---------------------------------------------------------------------------

Envelope KademliaNode::makeEnvelope(RpcType type, u64 rpcId,
                                    std::vector<u8> body) const {
  Envelope e;
  e.type = type;
  e.rpcId = rpcId;
  e.sender = self_;
  e.credential = credential_;
  e.body = std::move(body);
  return e;
}

void KademliaNode::sendRequest(const Contact& to, RpcType type,
                               std::vector<u8> body,
                               std::function<void(bool, const Envelope&)> onDone) {
  sendRequestImpl(to, /*anyPeer=*/false, type, std::move(body),
                  std::move(onDone));
}

void KademliaNode::sendRequestImpl(
    const Contact& to, bool anyPeer, RpcType type, std::vector<u8> body,
    std::function<void(bool, const Envelope&)> onDone) {
  u64 rpcId = nextRpcId_++;
  Envelope env = makeEnvelope(type, rpcId, std::move(body));
  ++counters_.rpcsSent;

  PendingRpc p;
  p.onDone = std::move(onDone);
  p.expectedPeer = to.id;
  p.anyPeer = anyPeer;
  if (!net_.send(self_.addr, to.addr, env.encode())) {
    // The network refused the datagram synchronously (oversize): fail the
    // RPC on the next simulator step instead of burning the full timeout.
    // Deferring (rather than calling onDone inline) keeps lookup state
    // machines safe from re-entrant mutation. The peer is not at fault, so
    // it stays in the routing table.
    ++counters_.sendRejects;
    p.timeoutEvent = exec_.schedule(0, [this, rpcId] {
      auto it = pending_.find(rpcId);
      if (it == pending_.end()) return;
      auto onDone = std::move(it->second.onDone);
      pending_.erase(it);
      Envelope dummy;
      if (onDone) onDone(false, dummy);
    });
    pending_.emplace(rpcId, std::move(p));
    return;
  }
  p.timeoutEvent = exec_.schedule(
      cfg_.rpcTimeoutUs, [this, rpcId, anyPeer, peer = to] {
        auto it = pending_.find(rpcId);
        if (it == pending_.end()) return;
        auto onDone = std::move(it->second.onDone);
        pending_.erase(it);
        ++counters_.timeouts;
        // Unresponsive peers fall out of the routing table (Kademlia
        // liveness). An address-only probe has no peer id to remove.
        if (!anyPeer) routing_.remove(peer.id);
        Envelope dummy;
        if (onDone) onDone(false, dummy);
      });
  pending_.emplace(rpcId, std::move(p));
}

void KademliaNode::sendReply(const Envelope& req, RpcType type,
                             std::vector<u8> body) {
  Envelope env = makeEnvelope(type, req.rpcId, std::move(body));
  ++counters_.rpcsSent;
  net_.send(self_.addr, req.sender.addr, env.encode());
}

void KademliaNode::observeSender(const Envelope& env) {
  Contact c = env.sender;
  BucketInsert r = routing_.touch(c);
  if (r != BucketInsert::kFull) return;
  // Bucket full: ping the stalest entry; replace it only if unresponsive
  // (Kademlia's anti-churn bias toward long-lived contacts).
  auto stalest = routing_.evictionCandidateFor(c);
  if (!stalest) return;
  ping(*stalest, [this, c, victimId = stalest->id](bool alive) {
    if (alive) return;  // ping() -> onDatagram already refreshed its position
    // Pinned eviction: replace exactly the contact that was pinged. By the
    // time this callback runs the bucket may have reordered (or the RPC
    // timeout may already have removed the victim); replacing "whatever is
    // stalest now" would evict a live contact that was never probed.
    routing_.replaceContact(victimId, c);
  });
}

void KademliaNode::onDatagram(net::Address from, const std::vector<u8>& data) {
  DHARMA_ASSERT_AFFINITY(&exec_, "KademliaNode::onDatagram");
  auto envOpt = Envelope::decode(data);
  if (!envOpt) return;
  Envelope& env = *envOpt;
  ++counters_.rpcsReceived;

  if (cfg_.verifyCredentials) {
    // Likir: the credential must verify AND bind the claimed node id.
    if (!cs_.verify(env.credential, exec_.now()) ||
        NodeId::fromDigest(env.credential.nodeId) != env.sender.id) {
      ++counters_.credentialRejects;
      return;
    }
  }
  // Trust the transport source over the claimed address.
  env.sender.addr = from;
  observeSender(env);

  switch (env.type) {
    case RpcType::kPing:
    case RpcType::kFindNode:
    case RpcType::kFindValue:
    case RpcType::kStore:
    case RpcType::kStoreCache: {
      // Request dispatch, timed as `dharma_node_rpc_service_us{rpc}` when a
      // registry is wired (one clock read + one atomic add; null handles
      // skip even the clock).
      obs::Histogram* h = rpcServiceHist_[static_cast<usize>(env.type) / 2];
      const net::TimeUs t0 = h != nullptr ? exec_.now() : 0;
      switch (env.type) {
        case RpcType::kPing: handlePing(env); break;
        case RpcType::kFindNode: handleFindNode(env); break;
        case RpcType::kFindValue: handleFindValue(env); break;
        case RpcType::kStore: handleStore(env); break;
        default: handleStoreCache(env); break;
      }
      if (h != nullptr) h->record(exec_.now() - t0);
      break;
    }
    case RpcType::kPong:
    case RpcType::kFindNodeReply:
    case RpcType::kFindValueReply:
    case RpcType::kStoreReply:
    case RpcType::kStoreCacheReply: {
      auto it = pending_.find(env.rpcId);
      if (it == pending_.end()) return;  // late/duplicate reply
      if (!it->second.anyPeer && env.sender.id != it->second.expectedPeer) {
        // A reply correlates by (rpcId, peer), not rpcId alone: any node
        // that learned the id could otherwise resolve someone else's RPC.
        ++counters_.replySenderMismatches;
        return;
      }
      auto onDone = std::move(it->second.onDone);
      exec_.cancel(it->second.timeoutEvent);
      pending_.erase(it);
      if (onDone) onDone(true, env);
      break;
    }
  }
}

void KademliaNode::handlePing(const Envelope& env) {
  sendReply(env, RpcType::kPong, {});
}

void KademliaNode::handleFindNode(const Envelope& env) {
  try {
    ByteReader r(env.body);
    FindNodeReq req = FindNodeReq::decode(r);
    ContactsReply rep;
    rep.contacts = routing_.closest(req.target, cfg_.k);
    sendReply(env, RpcType::kFindNodeReply, rep.encode());
  } catch (const DecodeError&) {
  }
}

void KademliaNode::handleFindValue(const Envelope& env) {
  try {
    ByteReader r(env.body);
    FindValueReq req = FindValueReq::decode(r);
    FindValueReply rep;
    GetOptions opt;
    opt.topN = req.topN;
    // Index-side filtering: never build a reply larger than the MTU even if
    // the requester asked for more (Section V-A).
    usize mtuBudget = net_.mtuBytes() > 256 ? net_.mtuBytes() - 256 : 256;
    opt.maxBytes = req.maxBytes == 0 ? mtuBudget
                                     : std::min<usize>(req.maxBytes, mtuBudget);
    if (auto view = store_.query(req.key, opt)) {
      rep.found = true;
      rep.view = std::move(*view);
    } else if (cfg_.cacheEnabled && req.allowCached) {
      // No authoritative replica here, but the requester accepts a
      // non-authoritative copy: serve the record cache, marked `cached` so
      // it can never masquerade as a replica on the requester side.
      const BlockView* cached = cache_.find(req.key, exec_.now());
      syncCacheCounters();
      if (cached != nullptr) {
        rep.found = true;
        rep.cached = true;
        rep.view = *cached;
        // A cached answer honours the same index-side filtering contract
        // as an authoritative one (the cached copy may have been built for
        // a laxer request).
        rep.view.trim(opt);
      } else {
        rep.contacts = routing_.closest(req.key, cfg_.k);
      }
    } else {
      rep.contacts = routing_.closest(req.key, cfg_.k);
    }
    sendReply(env, RpcType::kFindValueReply, rep.encode());
  } catch (const DecodeError&) {
  }
}

void KademliaNode::handleStoreCache(const Envelope& env) {
  try {
    ByteReader r(env.body);
    StoreCacheReq req = StoreCacheReq::decode(r);
    StoreCacheReply rep;
    // Non-authoritative by construction: the copy lands in the record
    // cache, never BlockStore, and a node already holding an authoritative
    // replica ignores it (a cached copy must not shadow real state). The
    // sender's TTL is honoured but capped by our own policy base.
    if (cfg_.cacheEnabled && !store_.has(req.key)) {
      net::SimTime ttl = std::min(req.ttlUs, cfg_.pathCacheTtlBaseUs);
      rep.ok = cache_.insertWithTtl(req.key, std::move(req.view), ttl,
                                    exec_.now());
      syncCacheCounters();
      if (rep.ok) ++counters_.storeCacheAccepted;
    }
    sendReply(env, RpcType::kStoreCacheReply, rep.encode());
  } catch (const DecodeError&) {
  }
}

void KademliaNode::handleStore(const Envelope& env) {
  try {
    ByteReader r(env.body);
    StoreReq req = StoreReq::decode(r);
    StoreReply rep;
    if (cfg_.verifyContent &&
        !cs_.verifyContent(req.signature, req.key.toHex(),
                           req.canonicalBatch())) {
      ++counters_.storesRejectedAuth;
      rep.ok = false;
    } else if (wasPutApplied(req.signature.userId, req.putId, req.chunk)) {
      // Replay of a chunk this replica already applied (the sender's ack
      // was lost, or a client retry re-sent the batch): ack idempotently
      // WITHOUT re-applying — kIncrement tokens would double-count.
      ++counters_.storesDeduplicated;
      rep.ok = true;
    } else {
      // Atomic: a rejected batch leaves no partial state, so recording the
      // dedup key on success is airtight — deduped ⟺ fully applied.
      rep.ok = store_.applyAll(req.key, req.tokens, exec_.now());
      if (rep.ok) {
        recordPutApplied(req.signature.userId, req.putId, req.chunk);
        ++counters_.storesAccepted;
      }
    }
    sendReply(env, RpcType::kStoreReply, rep.encode());
  } catch (const DecodeError&) {
  }
}

// ---------------------------------------------------------------------------
// Iterative lookup
// ---------------------------------------------------------------------------

void KademliaNode::startLookup(const NodeId& target, bool isValue,
                               GetOptions opt,
                               std::function<void(LookupResult)> cb) {
  ++counters_.lookups;
  auto task = std::make_shared<LookupTask>();
  task->target = target;
  task->isValue = isValue;
  task->opt = opt;
  task->cb = std::move(cb);
  if (lookupLatencyHist_[0] != nullptr || cfg_.traces != nullptr) {
    task->startUs = exec_.now();
  }
  // A pending trace id (beginTrace) binds exactly one lookup — this one:
  // put/get/findNode all start their lookup synchronously on the loop
  // thread, so the handoff cannot interleave with another caller.
  const u64 traceId = pendingTraceId_;
  pendingTraceId_ = 0;
  if (cfg_.traces != nullptr && traceId != 0) {
    task->traced = true;
    task->span.traceId = traceId;
    task->span.kind = "lookup";
    task->span.label = kLookupKinds[isValue ? 1 : 0];
    task->span.startUs = task->startUs;
  }
  if (isValue) {
    // Local hit: the querying node may itself hold a replica.
    if (auto view = store_.query(target, opt)) {
      task->haveValue = true;
      task->mergedValue = std::move(*view);
      ++task->valueReplies;
      if (task->valueReplies >= cfg_.valueQuorum) {
        finishLookup(task);
        return;
      }
    } else if (opt.allowCached && cfg_.cacheEnabled) {
      // No authoritative local replica, but a non-authoritative read may be
      // served from this node's own record cache without touching the wire.
      const BlockView* cached = cache_.find(target, exec_.now());
      syncCacheCounters();
      if (cached != nullptr) {
        task->haveValue = true;
        task->mergedValue = *cached;
        // Same filtering contract as an authoritative local hit.
        task->mergedValue.trim(opt);
        ++task->cachedReplies;
        finishLookup(task);
        return;
      }
    }
  }
  for (const Contact& c : routing_.closest(target, cfg_.k)) {
    task->addCandidate(c);
  }
  if (task->candidates.empty()) {
    finishLookup(task);
    return;
  }
  pumpLookup(task);
}

void KademliaNode::pumpLookup(const std::shared_ptr<LookupTask>& task) {
  if (task->done) return;

  // Completion: value quorum reached (or, for a non-authoritative read, any
  // cached reply arrived), or the k best candidates have all been queried
  // (responded/failed) with nothing in flight.
  if (task->isValue && task->haveValue &&
      (task->valueReplies >= cfg_.valueQuorum || task->cachedReplies > 0)) {
    finishLookup(task);
    return;
  }

  // Launch queries at fresh candidates among the k closest, keeping at most
  // alpha in flight.
  usize considered = 0;
  for (usize i = 0; i < task->candidates.size() && task->inflight < cfg_.alpha;
       ++i) {
    Candidate& cand = task->candidates[i];
    if (cand.state == CandState::kFailed) continue;  // doesn't occupy a slot
    ++considered;
    if (considered > cfg_.k) break;  // only the k best matter
    if (cand.state != CandState::kFresh) continue;

    cand.state = CandState::kInflight;
    ++task->inflight;
    ++task->messagesSent;
    Contact peer = cand.contact;
    task->ev(exec_.now(), "rpc-sent", peer.id.shortHex());

    auto onDone = [this, task, peerId = peer.id](bool ok, const Envelope& env) {
      if (task->done) return;
      --task->inflight;
      if (!ok) ++task->rpcFailures;
      task->ev(exec_.now(), ok ? "rpc-reply" : "rpc-timeout",
               peerId.shortHex());
      Candidate* c = task->find(peerId);
      if (c) c->state = ok ? CandState::kResponded : CandState::kFailed;
      if (ok) {
        try {
          if (env.type == RpcType::kFindValueReply) {
            ByteReader r(env.body);
            FindValueReply rep = FindValueReply::decode(r);
            if (rep.found) {
              // Cached replies are counted apart from authoritative ones:
              // they terminate a non-authoritative read (see pumpLookup)
              // but can never contribute to the value quorum.
              if (rep.cached) {
                ++task->cachedReplies;
              } else {
                ++task->valueReplies;
              }
              task->holders.push_back(peerId);
              if (task->haveValue) {
                task->mergedValue.mergeMax(rep.view, task->opt.topN);
              } else {
                task->mergedValue = std::move(rep.view);
                task->haveValue = true;
              }
            } else {
              for (const Contact& nc : rep.contacts) {
                if (nc.id != self_.id) task->addCandidate(nc);
              }
            }
          } else if (env.type == RpcType::kFindNodeReply) {
            ByteReader r(env.body);
            ContactsReply rep = ContactsReply::decode(r);
            for (const Contact& nc : rep.contacts) {
              if (nc.id != self_.id) task->addCandidate(nc);
            }
          }
        } catch (const DecodeError&) {
        }
      }
      pumpLookup(task);
    };

    if (task->isValue) {
      FindValueReq req;
      req.key = task->target;
      req.topN = task->opt.topN;
      req.maxBytes = static_cast<u32>(task->opt.maxBytes);
      req.allowCached = task->opt.allowCached;
      sendRequest(peer, RpcType::kFindValue, req.encode(), onDone);
    } else {
      FindNodeReq req;
      req.target = task->target;
      sendRequest(peer, RpcType::kFindNode, req.encode(), onDone);
    }
  }

  if (task->inflight == 0) {
    // No queries in flight and none launchable: every useful candidate has
    // been consumed.
    bool anyFresh = false;
    usize considered2 = 0;
    for (const Candidate& c : task->candidates) {
      if (c.state == CandState::kFailed) continue;
      ++considered2;
      if (considered2 > cfg_.k) break;
      if (c.state == CandState::kFresh) {
        anyFresh = true;
        break;
      }
    }
    if (!anyFresh) finishLookup(task);
  }
}

void KademliaNode::finishLookup(const std::shared_ptr<LookupTask>& task) {
  if (task->done) return;
  task->done = true;
  LookupResult res;
  res.messagesSent = task->messagesSent;
  res.valueReplies = task->valueReplies;
  res.cachedReplies = task->cachedReplies;
  res.rpcFailures = task->rpcFailures;
  if (task->haveValue) res.value = std::move(task->mergedValue);
  for (const Candidate& c : task->candidates) {
    if (c.state == CandState::kResponded) {
      res.closest.push_back(c.contact);
      if (res.closest.size() >= cfg_.k) break;
    }
  }
  if (cfg_.cacheEnabled && task->isValue && res.value.has_value()) {
    publishPathCache(*task, res);
  }
  const usize kind = task->isValue ? 1 : 0;
  if (lookupHopsHist_[kind] != nullptr) {
    lookupHopsHist_[kind]->record(task->messagesSent);
    lookupLatencyHist_[kind]->record(exec_.now() - task->startUs);
  }
  if (task->traced) {
    task->span.endUs = exec_.now();
    task->span.outcome =
        task->isValue ? (task->haveValue ? "found" : "miss") : "ok";
    cfg_.traces->push(std::move(task->span));
    task->traced = false;
  }
  if (task->cb) task->cb(std::move(res));
}

void KademliaNode::publishPathCache(const LookupTask& task,
                                    const LookupResult& res) {
  // Only values backed by at least one AUTHORITATIVE replica propagate.
  // Re-publishing a view that came solely from caches would grant stale
  // content a fresh TTL on every read, letting it circulate cache-to-cache
  // past the one-TTL staleness bound DESIGN.md §6 promises.
  if (task.valueReplies == 0) return;
  // Target: the closest responsive node on the lookup path that did NOT
  // return the value (a holder — authoritative or cached — has it already).
  const Contact* target = nullptr;
  for (const Contact& c : res.closest) {
    if (!task.isHolder(c.id)) {
      target = &c;
      break;
    }
  }
  if (target == nullptr) return;

  // Distance-scaled TTL (Kademlia §2.3's "exponentially inversely
  // proportional" rule, in bucket units): a copy as close to the key as the
  // nearest holder gets the full base TTL; every extra bucket of XOR
  // distance halves it, floored at pathCacheTtlMinUs. Far-flung copies thus
  // age out quickly while copies shielding the hot replica set live long.
  int dTarget = bucketIndex(target->id, task.target);
  int dHolder = 160;
  for (const NodeId& h : task.holders) {
    dHolder = std::min(dHolder, bucketIndex(h, task.target));
  }
  if (task.holders.empty()) dHolder = bucketIndex(self_.id, task.target);
  int extra = std::max(0, dTarget - dHolder);
  net::SimTime ttl = cfg_.pathCacheTtlBaseUs >> std::min(extra, 40);
  ttl = std::max(ttl, cfg_.pathCacheTtlMinUs);

  StoreCacheReq req;
  req.key = task.target;
  req.ttlUs = ttl;
  req.view = *res.value;
  ++counters_.storeCachePublished;
  // Fire-and-forget: the GET already completed; a lost or refused copy
  // costs nothing but the missed future hit.
  sendRequest(*target, RpcType::kStoreCache, req.encode(),
              [](bool, const Envelope&) {});
}

}  // namespace dharma::dht
