#include "workload/dataset.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dharma::wl {

Dataset Dataset::synthetic(const SynthConfig& cfg, SynthStats* stats) {
  Dataset d;
  d.trg = generate(cfg, stats);
  for (u32 t = 0; t < d.trg.tagSpan(); ++t) {
    d.tags.intern("tag-" + std::to_string(t));
  }
  for (u32 r = 0; r < d.trg.resourceSpan(); ++r) {
    d.resources.intern("res-" + std::to_string(r));
  }
  return d;
}

void Dataset::saveTsv(std::ostream& os) const {
  for (u32 r = 0; r < trg.resourceSpan(); ++r) {
    for (const auto& e : trg.tagsOf(r)) {
      os << resources.name(r) << '\t' << tags.name(e.tag) << '\t' << e.weight
         << '\n';
    }
  }
}

Dataset Dataset::loadTsv(std::istream& is) {
  Dataset d;
  std::string line;
  usize lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string res, tag, weight;
    if (!std::getline(ls, res, '\t') || !std::getline(ls, tag, '\t') ||
        !std::getline(ls, weight)) {
      throw std::runtime_error("Dataset::loadTsv: malformed line " +
                               std::to_string(lineNo));
    }
    u32 r = d.resources.intern(res);
    u32 t = d.tags.intern(tag);
    d.trg.addAnnotation(r, t, static_cast<u32>(std::stoul(weight)));
  }
  d.trg.freeze();
  return d;
}

folk::FolksonomyModel replayApproximated(const Trace& trace,
                                         const folk::MaintenanceConfig& cfg,
                                         u64 seed) {
  folk::FolksonomyModel model(cfg, seed);
  for (const Annotation& a : trace) {
    model.tagResource(a.res, a.tag);
  }
  return model;
}

}  // namespace dharma::wl
