#pragma once
/// \file trace.hpp
/// \brief Annotation traces and the Section V-B replay order.
///
/// The approximated-graph simulation of the paper starts from a fully
/// disconnected FG and replays tagging operations until every TRG edge has
/// reached its real weight:
///
///   "At each step, a resource r and a tag t are selected and a tagging
///    operation is performed. [...] Resource r is chosen with a probability
///    proportional to its popularity in the dataset (i.e. |Tags(r)| in the
///    real TRG); tag t is selected between all tags in Tags(r) on a local
///    popularity basis (i.e. with probability proportional to u(t,r)).
///    Simulation ends when resources are labeled with all their related
///    tags instances that appear in the real dataset."
///
/// buildPaperOrderTrace() implements exactly that process: a Fenwick
/// sampler draws resources ∝ their original |Tags(r)| (weight zeroed once
/// a resource's annotation multiset is exhausted — the efficient form of
/// the paper's rejection), and within the resource an instance is drawn
/// ∝ remaining u(t,r). buildUniformTrace() (uniform shuffle of all
/// annotation instances) is provided for the replay-order ablation.

#include <vector>

#include "folksonomy/trg.hpp"
#include "util/rng.hpp"

namespace dharma::wl {

/// One tagging operation: user adds tag `tag` to resource `res`.
struct Annotation {
  u32 res = 0;
  u32 tag = 0;

  bool operator==(const Annotation&) const = default;
};

/// Full replay trace (one entry per 〈user,item,tag〉 triple).
using Trace = std::vector<Annotation>;

/// Paper-order trace (see file comment). Deterministic in \p seed.
Trace buildPaperOrderTrace(const folk::Trg& trg, u64 seed);

/// Uniformly shuffled trace (ablation).
Trace buildUniformTrace(const folk::Trg& trg, u64 seed);

/// Sanity check: the trace contains exactly u(t,r) instances of every TRG
/// edge. Used by tests and as a cheap post-condition.
bool traceMatchesTrg(const Trace& trace, const folk::Trg& trg);

}  // namespace dharma::wl
