#pragma once
/// \file churn.hpp
/// \brief Deterministic churn-schedule generation.
///
/// Produces dht::ChurnSchedule scripts — crash waves, optional revives and
/// fresh joins — from a seeded Rng, so availability experiments replay
/// bit-identically. The generator lives in the workload layer (it decides
/// WHAT happens to the overlay); the dht layer's DhtNetwork::scheduleChurn
/// executes the script.

#include "dht/dht_network.hpp"
#include "util/rng.hpp"

namespace dharma::wl {

/// Parameters of a crash/revive/join scenario.
struct ChurnConfig {
  /// Fraction of the currently-surviving overlay crashed per wave.
  double crashFraction = 0.2;
  /// Number of crash waves.
  u32 waves = 1;
  /// Simulated time of the first wave.
  net::SimTime firstCrashAtUs = 60'000'000;
  /// Spacing between consecutive waves.
  net::SimTime waveSpacingUs = 60'000'000;
  /// If non-zero, each wave's victims revive this long after their crash.
  net::SimTime reviveAfterUs = 0;
  /// Brand-new nodes joining through surviving seeds.
  u32 freshJoins = 0;
  net::SimTime joinStartUs = 0;
  net::SimTime joinSpacingUs = 5'000'000;
  /// Keep node 0 (the customary bootstrap seed) alive.
  bool spareNodeZero = true;
  u64 seed = 42;
};

/// Builds a schedule for an overlay of \p overlaySize nodes. Victims are
/// sampled without replacement across waves (a node crashes at most once),
/// so `waves * crashFraction` approximates the cumulative dead fraction
/// when revives are disabled. Deterministic in cfg.seed.
dht::ChurnSchedule makeChurnSchedule(const ChurnConfig& cfg,
                                     usize overlaySize);

}  // namespace dharma::wl
