#pragma once
/// \file driver.hpp
/// \brief Bulk-load driver: replays a dataset/trace through the distributed
///        DHARMA protocol on a live overlay.
///
/// The Section V-B replays run against the in-memory model (dataset.hpp);
/// this driver is the overlay-backed counterpart, the "workload driver"
/// of a deployment: it pushes a dataset into the DHT through a
/// DharmaClient, either one tagResource per annotation (the paper's
/// per-operation cost) or through the batched tagResources entry point
/// that shares the r̄ lookup plan across a window of annotations on the
/// same resource. Every operation's Outcome is inspected — failures are
/// counted by OpError taxonomy, never silently dropped.

#include "core/client.hpp"
#include "workload/dataset.hpp"

namespace dharma::wl {

/// How the driver turns a trace into client operations.
struct BulkLoadOptions {
  /// Annotations buffered before flushing (grouped per resource into one
  /// batched tagResources call each). 1 degrades to sequential tagResource.
  usize windowSize = 16;
  bool batched = true;      ///< use tagResources / insertResources
  bool insertFirst = true;  ///< publish every resource's r̃/r̄ skeleton first
};

/// What the load cost and how it failed.
struct BulkLoadStats {
  u64 annotations = 0;  ///< tagging operations applied
  u64 flushes = 0;      ///< client calls issued (batched or single)
  u64 failures = 0;     ///< calls that returned an error
  u64 retries = 0;      ///< block-op retries spent
  u64 putsObserved = 0; ///< block PUTs with a recorded ack count
  u32 minReplicas = 0;  ///< worst replica ack count seen on any PUT
  std::array<u64, core::kOpErrorCount> byError{};
  core::OpCost cost;

  double lookupsPerAnnotation() const {
    return annotations ? static_cast<double>(cost.lookups) /
                             static_cast<double>(annotations)
                       : 0.0;
  }
};

/// Replays \p trace (annotations over \p data's name tables) through
/// \p client. Deterministic for a fixed client seed and overlay.
BulkLoadStats loadTrace(core::DharmaClient& client, const Dataset& data,
                        const Trace& trace, const BulkLoadOptions& opt);

}  // namespace dharma::wl
