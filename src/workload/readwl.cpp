#include "workload/readwl.hpp"

#include <unordered_set>

#include "util/sampling.hpp"

namespace dharma::wl {

ReadTrace makeZipfReadTrace(const ZipfReadConfig& cfg) {
  ReadTrace trace;
  if (cfg.tagUniverse == 0 || cfg.sessions == 0 || cfg.stepsPerSession == 0) {
    return trace;
  }
  Rng rng(splitmix64(cfg.seed ^ 0x2e4df05ULL));
  ZipfSampler zipf(cfg.tagUniverse, cfg.alpha);
  trace.reserve(cfg.sessions);
  for (u64 s = 0; s < cfg.sessions; ++s) {
    std::vector<u32> session;
    session.reserve(cfg.stepsPerSession);
    for (u32 step = 0; step < cfg.stepsPerSession; ++step) {
      u32 rank = zipf.sampleIndex(rng);
      // No immediate repeats (re-selecting the current tag is not a
      // navigation step). Bounded deterministic re-draw; with a 1-tag
      // universe repeats are unavoidable and allowed.
      if (cfg.tagUniverse > 1) {
        while (!session.empty() && rank == session.back()) {
          rank = zipf.sampleIndex(rng);
        }
      }
      session.push_back(rank);
    }
    trace.push_back(std::move(session));
  }
  return trace;
}

usize distinctTags(const ReadTrace& trace) {
  std::unordered_set<u32> seen;
  for (const auto& session : trace) {
    seen.insert(session.begin(), session.end());
  }
  return seen.size();
}

}  // namespace dharma::wl
