#include "workload/churn.hpp"

#include <algorithm>

namespace dharma::wl {

dht::ChurnSchedule makeChurnSchedule(const ChurnConfig& cfg,
                                     usize overlaySize) {
  dht::ChurnSchedule out;
  Rng rng(splitmix64(cfg.seed ^ 0xc4a52ULL));
  // Pool of nodes still eligible to crash (each node crashes at most once).
  std::vector<usize> pool;
  pool.reserve(overlaySize);
  for (usize i = cfg.spareNodeZero ? 1 : 0; i < overlaySize; ++i) {
    pool.push_back(i);
  }

  net::SimTime waveAt = cfg.firstCrashAtUs;
  usize surviving = overlaySize;
  for (u32 w = 0; w < cfg.waves; ++w, waveAt += cfg.waveSpacingUs) {
    usize victims = static_cast<usize>(
        static_cast<double>(surviving) * cfg.crashFraction);
    victims = std::min(victims, pool.size());
    for (usize v = 0; v < victims; ++v) {
      usize pick = static_cast<usize>(rng.uniform(pool.size()));
      usize node = pool[pick];
      pool[pick] = pool.back();
      pool.pop_back();
      out.events.push_back({waveAt, dht::ChurnAction::kCrash, node});
      if (cfg.reviveAfterUs > 0) {
        out.events.push_back(
            {waveAt + cfg.reviveAfterUs, dht::ChurnAction::kRevive, node});
      }
    }
    if (cfg.reviveAfterUs == 0) surviving -= victims;
  }

  net::SimTime joinAt = cfg.joinStartUs;
  for (u32 j = 0; j < cfg.freshJoins; ++j, joinAt += cfg.joinSpacingUs) {
    out.events.push_back({joinAt, dht::ChurnAction::kJoin, overlaySize + j});
  }

  // stable_sort: equal-time events keep generation order on every stdlib,
  // so a schedule is bit-identical across toolchains.
  std::stable_sort(out.events.begin(), out.events.end(),
            [](const dht::ChurnEvent& a, const dht::ChurnEvent& b) {
              return a.atUs < b.atUs;
            });
  return out;
}

}  // namespace dharma::wl
