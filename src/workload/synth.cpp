#include "workload/synth.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/sampling.hpp"

namespace dharma::wl {

SynthConfig SynthConfig::lastfmScaled(double scale, u64 seed) {
  SynthConfig cfg;
  cfg.numTags = std::max<u32>(64, static_cast<u32>(285182.0 * scale));
  cfg.numResources = std::max<u32>(128, static_cast<u32>(1413657.0 * scale));
  cfg.targetAnnotations = std::max<u64>(1024, static_cast<u64>(11000000.0 * scale));
  // The largest resource degree shrinks sub-linearly with the sample; a
  // sqrt law keeps the tail shape plausible at small scales.
  cfg.maxResourceDegree = std::max<u32>(
      32, static_cast<u32>(1182.0 * std::sqrt(std::min(1.0, scale * 10.0))));
  cfg.seed = seed;
  return cfg;
}

namespace {

/// Draws |Tags(r)| from the spike + geometric body + Zipf star-tail
/// mixture (see SynthConfig).
u32 sampleResourceDegree(const SynthConfig& cfg, const AliasTable& starTail,
                         u32 tailMin, Rng& rng) {
  double u = rng.uniformDouble();
  if (u < cfg.singletonResourceShare) return 1;
  if (u < cfg.singletonResourceShare + cfg.tailResourceShare) {
    return tailMin + starTail.sample(rng);
  }
  double p = 1.0 / std::max(1.0, cfg.bodyGeometricMean - 2.0 + 1.0);
  u32 d = 2 + static_cast<u32>(rng.geometric(p));
  return std::min(d, cfg.maxResourceDegree);
}

}  // namespace

folk::Trg generate(const SynthConfig& cfg, SynthStats* stats) {
  Rng rng(cfg.seed);
  folk::Trg trg;

  // Star-item degree sampler: Zipf on [tailMinDegree, maxResourceDegree].
  u32 maxDeg = std::max<u32>(2, cfg.maxResourceDegree);
  u32 tailMin = std::min(std::max<u32>(2, cfg.tailMinDegree), maxDeg);
  std::vector<double> tailW(maxDeg - tailMin + 1);
  for (u32 d = tailMin; d <= maxDeg; ++d) {
    tailW[d - tailMin] = std::pow(static_cast<double>(d), -cfg.tailZipfExponent);
  }
  AliasTable starTail(tailW);

  // Draw every resource's tag-set size first so the Yule-Simon novelty rate
  // can target the configured vocabulary exactly.
  u64 budget = cfg.targetAnnotations;
  std::vector<u32> degrees(cfg.numResources, 0);
  u64 totalEdges = 0;
  for (u32 r = 0; r < cfg.numResources && budget > 0; ++r) {
    u32 deg = sampleResourceDegree(cfg, starTail, tailMin, rng);
    deg = static_cast<u32>(std::min<u64>(deg, budget));
    degrees[r] = deg;
    totalEdges += deg;
    budget -= deg;
  }

  // Phase 1: distinct edges via Yule-Simon tag selection — novelty rate
  // α = vocabulary / edges; otherwise preferential attachment (uniform draw
  // from the edge-endpoint multiset ≡ degree-proportional). Draws come from
  // the resource's topic pool or, with probability globalTagShare, from the
  // shared global pool.
  double alpha = totalEdges > 0
                     ? std::min(0.95, static_cast<double>(cfg.numTags) /
                                          static_cast<double>(totalEdges))
                     : 1.0;
  u32 numTopics = cfg.numTopics != 0
                      ? cfg.numTopics
                      : std::max<u32>(4, static_cast<u32>(std::sqrt(
                                             static_cast<double>(cfg.numTags))));
  ZipfSampler topicZipf(numTopics, cfg.topicZipfExponent);
  // Pool 0 is the global pool; pools 1..numTopics are per-topic streams.
  std::vector<std::vector<u32>> pools(static_cast<usize>(numTopics) + 1);
  std::vector<u32> allEndpoints;  // union of all pools, for hot-resource fill
  allEndpoints.reserve(totalEdges);
  u32 nextFresh = 0;
  std::vector<u32> resTagScratch;
  for (u32 r = 0; r < cfg.numResources; ++r) {
    u32 deg = degrees[r];
    if (deg == 0) continue;
    u32 topic = topicZipf.sample(rng);  // 1-based => pool index
    resTagScratch.clear();
    auto notOnResource = [&](u32 t) {
      return std::find(resTagScratch.begin(), resTagScratch.end(), t) ==
             resTagScratch.end();
    };
    // One slot per distinct tag. The novelty coin is rolled ONCE per slot
    // (re-rolling on collision retries would inflate the vocabulary by the
    // collision rate). The vocabulary is open-ended — cfg.numTags is its
    // expectation via alpha; capping it would convert tail singletons into
    // degree-2 tags and flatten the Yule-Simon power law.
    for (u32 slot = 0; slot < deg; ++slot) {
      std::vector<u32>& pool =
          rng.bernoulli(cfg.globalTagShare) ? pools[0] : pools[topic];
      u32 chosen = 0;
      bool found = false;
      if (!rng.bernoulli(alpha) && !pool.empty()) {
        // Existing tag, degree-proportional within the drawing pool.
        for (u32 a = 0; a < 24 && !found; ++a) {
          u32 t = pool[static_cast<usize>(rng.uniform(pool.size()))];
          if (notOnResource(t)) {
            chosen = t;
            found = true;
          }
        }
        // Heavily-tagged resources exhaust their topic's vocabulary; they
        // reach into OTHER topics' vocabularies (a crossover item touching
        // many genres) — random topic per attempt, degree-proportional
        // within it. Drawing from global popularity here would make every
        // hot resource carry the same mega-tags and lock faceted-search
        // paths onto one undifferentiated core.
        for (u32 a = 0; a < 24 && !found; ++a) {
          std::vector<u32>& other =
              pools[1 + static_cast<usize>(rng.uniform(numTopics))];
          if (other.empty()) continue;
          u32 t = other[static_cast<usize>(rng.uniform(other.size()))];
          if (notOnResource(t)) {
            chosen = t;
            found = true;
          }
        }
      }
      if (!found) chosen = nextFresh++;  // novelty (or last-resort niche tag)
      resTagScratch.push_back(chosen);
      pool.push_back(chosen);  // one entry per edge => degree-proportional
      allEndpoints.push_back(chosen);
      trg.addAnnotation(r, chosen, 1);
    }
  }

  // Phase 2: repeat annotations (edge weights) — rich-get-richer at BOTH
  // levels: the resource is drawn proportionally to its *current* total
  // annotation count (a dynamic Fenwick sampler, so popularity is
  // self-reinforcing and repeat mass concentrates on a hot core, as on
  // Last.fm where a few star items absorb thousands of repeat tags), and
  // the edge within the resource proportionally to its current weight.
  // The long tail keeps u(t,r) = 1, which is what makes the arcs the
  // approximation loses mostly weight-1 noise (Table III's sim1%).
  if (budget > 0) {
    std::vector<double> resWeight(trg.resourceSpan());
    for (u32 r = 0; r < trg.resourceSpan(); ++r) {
      resWeight[r] = static_cast<double>(trg.resourceDegree(r));
    }
    FenwickSampler resPick(resWeight);
    while (budget > 0) {
      u32 r = resPick.sample(rng);
      auto tags = trg.tagsOf(r);
      if (tags.empty()) continue;
      u64 total = 0;
      for (const auto& e : tags) total += e.weight;
      u64 x = rng.uniform(total);
      u32 chosen = tags.back().tag;
      for (const auto& e : tags) {
        if (x < e.weight) {
          chosen = e.tag;
          break;
        }
        x -= e.weight;
      }
      trg.addAnnotation(r, chosen, 1);
      resPick.set(r, resPick.weight(r) + 1.0);
      --budget;
    }
  }

  trg.freeze();
  if (stats != nullptr) {
    stats->edges = trg.numEdges();
    stats->annotations = trg.numAnnotations();
    stats->usedTags = trg.usedTags();
    stats->usedResources = trg.usedResources();
  }
  DHARMA_LOG_INFO("synth: ", trg.numEdges(), " edges, ", trg.numAnnotations(),
                  " annotations, ", trg.usedTags(), " tags, ",
                  trg.usedResources(), " resources");
  return trg;
}

}  // namespace dharma::wl
