#include "workload/driver.hpp"

#include <map>

namespace dharma::wl {

namespace {

/// Folds one finished operation into the running stats.
void absorb(BulkLoadStats& st, const core::Outcome<core::WriteReceipt>& out,
            u64 annotations) {
  st.annotations += annotations;
  ++st.flushes;
  st.cost += out.cost;
  st.retries += out.retries;
  for (u32 acks : out.replication.acks) {
    // putsObserved (not a 0-sentinel) marks "no PUT seen yet": a genuine
    // 0-ack PUT must pin minReplicas at 0, not be overwritten later.
    if (st.putsObserved == 0 || acks < st.minReplicas) st.minReplicas = acks;
    ++st.putsObserved;
  }
  if (!out.ok()) {
    ++st.failures;
    ++st.byError[static_cast<usize>(out.error())];
  }
}

}  // namespace

BulkLoadStats loadTrace(core::DharmaClient& client, const Dataset& data,
                        const Trace& trace, const BulkLoadOptions& opt) {
  BulkLoadStats st;

  if (opt.insertFirst) {
    // Publish every resource's r̃ (URI) up front, with an empty tag set —
    // the annotations build r̄/t̄/t̂ incrementally, exactly like the
    // in-memory Section V-B replay starting from a disconnected FG.
    if (opt.batched) {
      std::vector<core::ResourceSpec> specs;
      specs.reserve(data.trg.resourceSpan());
      for (u32 r = 0; r < data.trg.resourceSpan(); ++r) {
        specs.push_back(core::ResourceSpec{
            data.resources.name(r), "uri://" + data.resources.name(r), {}});
      }
      absorb(st, client.insertResources(specs), 0);
    } else {
      for (u32 r = 0; r < data.trg.resourceSpan(); ++r) {
        absorb(st,
               client.insertResource(data.resources.name(r),
                                     "uri://" + data.resources.name(r), {}),
               0);
      }
    }
  }

  // Replay the annotations in windows; within a window, annotations of the
  // same resource share one batched call (one r̄ fetch for all of them).
  usize window = opt.windowSize == 0 ? 1 : opt.windowSize;
  usize i = 0;
  while (i < trace.size()) {
    usize end = std::min(trace.size(), i + window);
    if (!opt.batched || window == 1) {
      for (usize j = i; j < end; ++j) {
        absorb(st,
               client.tagResource(data.resources.name(trace[j].res),
                                  data.tags.name(trace[j].tag)),
               1);
      }
    } else {
      // Group by resource, preserving first-appearance order so the replay
      // stays deterministic.
      std::vector<u32> resOrder;
      std::map<u32, std::vector<std::string>> byRes;
      for (usize j = i; j < end; ++j) {
        auto [it, fresh] = byRes.try_emplace(trace[j].res);
        if (fresh) resOrder.push_back(trace[j].res);
        it->second.push_back(data.tags.name(trace[j].tag));
      }
      for (u32 r : resOrder) {
        auto& tags = byRes[r];
        absorb(st, client.tagResources(data.resources.name(r), tags),
               tags.size());
      }
    }
    i = end;
  }
  return st;
}

}  // namespace dharma::wl
