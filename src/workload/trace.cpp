#include "workload/trace.hpp"

#include "util/flat_map.hpp"
#include "util/sampling.hpp"

namespace dharma::wl {

Trace buildPaperOrderTrace(const folk::Trg& trg, u64 seed) {
  Rng rng(seed);
  const u32 nRes = trg.resourceSpan();

  // Remaining annotation multiset per resource: a copy of each resource's
  // edge list with mutable counts, plus the remaining total.
  struct Remaining {
    std::vector<folk::TrgEdge> edges;
    u64 total = 0;
  };
  std::vector<Remaining> rem(nRes);
  std::vector<double> popularity(nRes, 0.0);
  for (u32 r = 0; r < nRes; ++r) {
    auto tags = trg.tagsOf(r);
    rem[r].edges.assign(tags.begin(), tags.end());
    for (const auto& e : tags) rem[r].total += e.weight;
    popularity[r] = static_cast<double>(tags.size());  // |Tags(r)| in the TRG
  }

  FenwickSampler sampler(popularity);
  Trace trace;
  trace.reserve(trg.numAnnotations());

  while (sampler.total() > 0.0) {
    u32 r = sampler.sample(rng);
    Remaining& R = rem[r];
    if (R.total == 0) {
      sampler.set(r, 0.0);  // exhausted (paper's rejection, made efficient)
      continue;
    }
    // Instance ∝ remaining u(t,r).
    u64 x = rng.uniform(R.total);
    for (auto& e : R.edges) {
      if (x < e.weight) {
        trace.push_back(Annotation{r, e.tag});
        --e.weight;
        --R.total;
        break;
      }
      x -= e.weight;
    }
    if (R.total == 0) sampler.set(r, 0.0);
  }
  return trace;
}

Trace buildUniformTrace(const folk::Trg& trg, u64 seed) {
  Trace trace;
  trace.reserve(trg.numAnnotations());
  for (u32 r = 0; r < trg.resourceSpan(); ++r) {
    for (const auto& e : trg.tagsOf(r)) {
      for (u32 i = 0; i < e.weight; ++i) trace.push_back(Annotation{r, e.tag});
    }
  }
  Rng rng(seed);
  rng.shuffle(trace);
  return trace;
}

bool traceMatchesTrg(const Trace& trace, const folk::Trg& trg) {
  if (trace.size() != trg.numAnnotations()) return false;
  FlatMap64 counts;
  for (const Annotation& a : trace) counts.addTo(packPair(a.res, a.tag), 1);
  if (counts.size() != trg.numEdges()) return false;
  bool ok = true;
  counts.forEach([&](u64 key, u64 n) {
    auto [r, t] = unpackPair(key);
    if (trg.weight(r, t) != n) ok = false;
  });
  return ok;
}

}  // namespace dharma::wl
