#pragma once
/// \file readwl.hpp
/// \brief Zipf(α) read-heavy workload generation (search-session traces).
///
/// Tag popularity in real folksonomies is heavy-tailed (Cattuto et al.),
/// so read traffic against the t̄/t̂ blocks concentrates on a handful of
/// hot tags — exactly the workload a record cache absorbs. This generator
/// produces deterministic search-session traces: each session is a short
/// sequence of tag fetches whose tags are drawn rank-wise from a bounded
/// Zipf(α) distribution (α = 0 degenerates to uniform; α ≈ 1 matches
/// folksonomy popularity). Ranks are abstract indices in
/// [0, tagUniverse) — callers map them onto concrete tag names.
///
/// Deterministic in cfg.seed: same config ⇒ bit-identical trace, which is
/// what lets bench_cache_hitrate replay the exact same fetch sequence with
/// the cache on and off.

#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace dharma::wl {

/// Parameters of a Zipf read trace.
struct ZipfReadConfig {
  u32 tagUniverse = 100;    ///< distinct tag ranks drawn from
  u64 sessions = 200;       ///< search sessions generated
  u32 stepsPerSession = 4;  ///< tag fetches per session
  double alpha = 1.0;       ///< Zipf exponent (0 = uniform)
  u64 seed = 42;
};

/// One search session = the ordered tag ranks it fetches.
using ReadTrace = std::vector<std::vector<u32>>;

/// Builds a Zipf(α) read trace per \p cfg. Within a session consecutive
/// steps never repeat the same tag (a user does not re-select the tag they
/// are on), but hot tags freely recur across steps and sessions — the
/// recurrence the cache exploits. Deterministic in cfg.seed.
ReadTrace makeZipfReadTrace(const ZipfReadConfig& cfg);

/// Number of distinct ranks a trace touches (cache working-set size).
usize distinctTags(const ReadTrace& trace);

}  // namespace dharma::wl
