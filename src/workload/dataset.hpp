#pragma once
/// \file dataset.hpp
/// \brief Named dataset container with TSV persistence and replay helpers.
///
/// Bundles a TRG with tag/resource name tables (needed at the DHT boundary,
/// where block keys are hashes of names) and offers:
///   - save/load as "res <TAB> tag <TAB> weight" TSV;
///   - replayApproximated(): the Section V-B evolution — replays a trace
///     through a FolksonomyModel under a maintenance policy and returns the
///     resulting (approximated) folksonomy.

#include <iosfwd>
#include <string>

#include "folksonomy/interner.hpp"
#include "folksonomy/model.hpp"
#include "workload/synth.hpp"
#include "workload/trace.hpp"

namespace dharma::wl {

/// A TRG plus the names behind its dense ids.
struct Dataset {
  folk::Trg trg;
  folk::Interner tags;
  folk::Interner resources;

  /// Builds a synthetic dataset with generated names ("tag-N" / "res-N").
  static Dataset synthetic(const SynthConfig& cfg, SynthStats* stats = nullptr);

  /// Serialises as TSV (one line per edge).
  void saveTsv(std::ostream& os) const;

  /// Parses the saveTsv() format.
  static Dataset loadTsv(std::istream& is);
};

/// Replays \p trace (built from \p realTrg) through a FolksonomyModel under
/// \p cfg, reproducing the Section V-B simulation. The returned model's TRG
/// equals the real TRG (the approximations only affect the FG).
folk::FolksonomyModel replayApproximated(const Trace& trace,
                                         const folk::MaintenanceConfig& cfg,
                                         u64 seed);

}  // namespace dharma::wl
