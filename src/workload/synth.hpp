#pragma once
/// \file synth.hpp
/// \brief Calibrated synthetic Last.fm-like folksonomy generator.
///
/// The paper's dataset (Jan–Apr 2009 Last.fm crawl: 99 405 users, ~11 M
/// 〈user, item, tag〉 triples, 1 413 657 resources, 285 182 tags) is
/// proprietary; per docs/DESIGN.md §2 we synthesise a TRG matching its
/// *published marginals* (Table II):
///
///   |Tags(r)|: μ=5,  σ=13,   max=1182,  ~40 % of resources have degree 1
///   |Res(t)| : μ=26, σ=525,  max=109717, ~55 % of tags mark 1 resource
///   |N_FG(t)|: μ=316, σ=1569, max=120568 (emerges from the TRG)
///
/// Mechanism:
///   1. each resource draws a tag-set size from a mixture: probability
///      `singletonResourceShare` of exactly 1, otherwise a bounded
///      power-law tail — reproducing the degree-1 spike + heavy tail;
///   2. tag identities follow a Yule-Simon process: with probability
///      α = numTags / totalEdges a never-used tag is coined, otherwise an
///      existing tag is drawn proportionally to its current degree
///      (preferential attachment). Yule-Simon yields a power law with a
///      degree-1 share near the paper's 55 % and mean degree 1/α — which
///      for the crawl's dimensions (285 182 tags / ~7 M edges) is the
///      published |Res(t)| mean of ~26, at every scale.
///      Tags live in latent TOPICS (music genres): each resource belongs
///      to one Zipf-popular topic and draws its tags from that topic's
///      Yule stream, except a `globalTagShare` fraction drawn from a
///      shared global stream (the "rock" / "seen live" universals that
///      dominate Last.fm). Topical clustering is what makes faceted-search
///      intersections collapse (Section V-C) and cross-topic arcs pure
///      weight-1 noise (Table III's sim1%);
///   3. the remaining annotation budget is spent as repeat annotations:
///      pick a resource ∝ its degree, then one of its edges ∝ current
///      weight (preferential / rich-get-richer) — reproducing heavy-tailed
///      u(t,r) on the core.
///
/// All dimensions scale linearly through SynthConfig::lastfmScaled().

#include <string>

#include "folksonomy/trg.hpp"
#include "util/rng.hpp"

namespace dharma::wl {

/// Generator parameters.
struct SynthConfig {
  u32 numTags = 14259;          ///< tag vocabulary size
  u32 numResources = 70683;     ///< resource count
  u64 targetAnnotations = 550000; ///< total 〈user,item,tag〉 triples
  /// |Tags(r)| is a three-component mixture calibrated to Table II's
  /// (μ=5, σ=13, max=1182) + the ~40 % degree-1 spike — a pure power law
  /// cannot satisfy all four at once:
  ///   - P(singletonResourceShare): exactly 1 tag;
  ///   - body: 2 + Geometric (typical items, a handful of tags);
  ///   - rare tail (tailResourceShare): Zipf(tailZipfExponent) on
  ///     [tailMinDegree, maxResourceDegree] (the star items carrying
  ///     hundreds of tags).
  /// The mixture keeps the mean at ~5 (fixing the edge/annotation split at
  /// the crawl's ~1.56) while concentrating clique mass in FEW hot
  /// resources — which is what keeps 80 % of tags below a few hundred FG
  /// neighbours (Figure 5).
  double singletonResourceShare = 0.40;
  double bodyGeometricMean = 7.0;     ///< mean of the 2+Geom body component
  double tailResourceShare = 0.0016;  ///< P(resource is a star item)
  double tailZipfExponent = 1.5;      ///< star-item degree skew
  u32 tailMinDegree = 30;             ///< smallest star-item degree
  u32 maxResourceDegree = 1182;   ///< Table II max |Tags(r)| (full scale)
  /// Latent topic count; 0 = sqrt(numTags) (scales like genre vocabularies).
  u32 numTopics = 0;
  double topicZipfExponent = 1.0; ///< topic popularity skew
  double globalTagShare = 0.05;   ///< draws taken from the global tag pool
  u64 seed = 42;

  /// Config proportional to the paper's crawl: scale = 1.0 reproduces the
  /// full dimensions (285 182 tags, 1 413 657 resources, 11 M triples).
  static SynthConfig lastfmScaled(double scale, u64 seed = 42);
};

/// Synthesis output.
struct SynthStats {
  u64 edges = 0;        ///< distinct (t,r) pairs
  u64 annotations = 0;  ///< total triples (== Σ u(t,r))
  u32 usedTags = 0;     ///< tags with degree >= 1
  u32 usedResources = 0;
};

/// Generates a TRG per \p cfg. Deterministic in cfg.seed.
folk::Trg generate(const SynthConfig& cfg, SynthStats* stats = nullptr);

}  // namespace dharma::wl
