#pragma once
/// \file degree.hpp
/// \brief Nodal degree statistics (paper Table II + Figure 5).
///
/// Collects |Tags(r)|, |Res(t)| and |N_FG(t)| distributions over the used
/// resources/tags, the two core-periphery shares the paper highlights
/// (~40 % of resources carry one tag, ~55 % of tags mark one resource), and
/// the empirical CDFs plotted in Figure 5.

#include "folksonomy/fg.hpp"
#include "folksonomy/trg.hpp"
#include "util/stats.hpp"

namespace dharma::ana {

/// Degree statistics bundle.
struct DegreeReport {
  RunningStats tagsPerResource;  ///< |Tags(r)|
  RunningStats resPerTag;        ///< |Res(t)|
  RunningStats fgOutDegree;      ///< |N_FG(t)|
  double fracResourcesDeg1 = 0;  ///< P(|Tags(r)| == 1)
  double fracTagsDeg1 = 0;       ///< P(|Res(t)| == 1)
  Cdf cdfTagsPerResource;
  Cdf cdfResPerTag;
  Cdf cdfFgDegree;
};

/// Builds the report over used (degree >= 1) nodes.
DegreeReport degreeReport(const folk::Trg& trg, const folk::CsrFg& fg);

}  // namespace dharma::ana
