#pragma once
/// \file compare.hpp
/// \brief Theoretic vs approximated FG comparison (paper Table III).
///
/// For every tag t the paper compares the outgoing-arc set of the exact FG
/// against the approximated FG:
///   - Recall: |approx arcs| / |exact arcs| (the approximated arc set is a
///     subset of the exact one — asserted);
///   - Kendall τ and cosine θ over the arcs common to both graphs
///     (weight-rank preservation / proportionality);
///   - sim1%: among arcs *missing* from the approximated graph, the
///     fraction whose exact weight is 1 (the "noise" claim);
/// plus the distribution of missing-arc weights (the text's "for every k,
/// the 99% of the missing arcs has a weight <= 3").

#include "folksonomy/fg.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace dharma::ana {

/// Aggregated comparison over all tags.
struct CompareReport {
  RunningStats recall;   ///< per-tag |approx|/|exact| (tags with exact arcs)
  RunningStats kendall;  ///< per-tag τ-b over common arcs (>= 2 common)
  RunningStats cosine;   ///< per-tag θ over common arcs (>= 1 common)
  RunningStats sim1;     ///< per-tag share of missing arcs with weight 1

  u64 tagsWithExactArcs = 0;
  u64 tagsWithRankMetrics = 0;
  u64 exactArcsTotal = 0;
  u64 approxArcsTotal = 0;
  u64 missingArcs = 0;
  u64 missingWeight1 = 0;    ///< missing arcs with exact weight == 1
  u64 missingWeightLe3 = 0;  ///< missing arcs with exact weight <= 3
  u64 approxOnlyArcs = 0;    ///< arcs in approx but not exact (must be 0)

  /// Fraction of missing arcs with weight <= 3 (paper: ~0.99).
  double missingLe3Share() const {
    return missingArcs ? static_cast<double>(missingWeightLe3) /
                             static_cast<double>(missingArcs)
                       : 0.0;
  }
};

/// Compares \p exact against \p approx per tag; optional \p pool
/// parallelises across tag ranges (results are merged deterministically).
CompareReport compareFgs(const folk::CsrFg& exact, const folk::CsrFg& approx,
                         ThreadPool* pool = nullptr);

}  // namespace dharma::ana
