#pragma once
/// \file scatter.hpp
/// \brief Streaming scatter-plot summaries (paper Figures 6 and 8).
///
/// Figures 6 and 8 plot original-vs-simulated node out-degrees and arc
/// weights. A textual reproduction cannot show a point cloud, so the
/// accumulator reduces it losslessly enough to check the paper's claims:
/// a regression slope through the origin (Fig. 6: "aligned on a line whose
/// slope is close to the diagonal"), the Pearson correlation, and
/// log-spaced x-bins with mean y/x ratios (Fig. 8: weights compressed at
/// low k, approaching the diagonal for large k). Streaming: nothing is
/// materialised, so full-scale arc sets fit in O(bins).

#include <string>
#include <vector>

#include "util/types.hpp"

namespace dharma::ana {

/// One log-spaced x-bin of the scatter summary.
struct ScatterBin {
  double xLo = 0, xHi = 0;
  u64 count = 0;
  double meanX = 0, meanY = 0;
  double meanRatio = 0;  ///< mean of y/x within the bin
};

/// Reduced scatter plot.
struct ScatterSummary {
  u64 n = 0;
  double pearson = 0;
  double slopeThroughOrigin = 0;  ///< Σxy / Σx²
  std::vector<ScatterBin> bins;
};

/// Streaming (x, y) accumulator with log-spaced x-bins.
class ScatterAccumulator {
 public:
  /// \param xMax  largest expected x (bin edges span [1, xMax])
  /// \param nBins number of log-spaced bins
  ScatterAccumulator(double xMax, usize nBins);

  /// Adds one point (x must be >= 0; x < 1 lands in the first bin).
  void add(double x, double y);

  ScatterSummary summarize() const;

 private:
  struct BinAcc {
    u64 n = 0;
    double sx = 0, sy = 0, sratio = 0;
  };
  double logMax_;
  std::vector<BinAcc> bins_;
  u64 n_ = 0;
  double sx_ = 0, sy_ = 0, sxx_ = 0, syy_ = 0, sxy_ = 0;

  usize binFor(double x) const;
};

}  // namespace dharma::ana
