#include "analysis/searchsim.hpp"

#include <vector>

namespace dharma::ana {

SearchSimReport runSearchSim(const folk::CsrFg& fg, const folk::Trg& trg,
                             const SearchSimConfig& cfg) {
  SearchSimReport rep;
  Rng rng(cfg.seed);
  std::vector<u32> starts = folk::mostPopularTags(trg, cfg.startTags);

  std::array<std::vector<double>, 3> lengths;
  for (u32 t0 : starts) {
    for (folk::Strategy s :
         {folk::Strategy::kFirst, folk::Strategy::kLast, folk::Strategy::kRandom}) {
      usize runs = s == folk::Strategy::kRandom ? cfg.randomRunsPerTag : 1;
      for (usize i = 0; i < runs; ++i) {
        folk::SearchResult r = folk::runSearch(fg, trg, t0, s, rng, cfg.search);
        auto& cell = rep.of(s);
        cell.steps.add(r.steps);
        cell.cdf.add(r.steps);
        ++cell.stopReasons[static_cast<usize>(r.reason)];
        lengths[static_cast<usize>(s)].push_back(r.steps);
      }
    }
  }
  for (usize s = 0; s < 3; ++s) {
    if (!lengths[s].empty()) {
      rep.byStrategy[s].medianSteps = median(lengths[s]);
    }
  }
  return rep;
}

ReadSimStats runReadTrace(core::DharmaClient& client,
                          const std::vector<std::string>& tagNames,
                          const wl::ReadTrace& trace) {
  ReadSimStats st;
  for (const auto& session : trace) {
    ++st.sessions;
    for (u32 rank : session) {
      auto out = client.searchStep(tagNames.at(rank));
      ++st.steps;
      st.cost += out.cost;
      if (!out.ok()) {
        ++st.failures;
      } else if (out->tagKnown) {
        ++st.tagKnown;
      }
    }
  }
  return st;
}

}  // namespace dharma::ana
