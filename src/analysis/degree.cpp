#include "analysis/degree.hpp"

namespace dharma::ana {

DegreeReport degreeReport(const folk::Trg& trg, const folk::CsrFg& fg) {
  DegreeReport rep;
  u64 resDeg1 = 0, tagDeg1 = 0;

  for (u32 r = 0; r < trg.resourceSpan(); ++r) {
    u32 d = trg.resourceDegree(r);
    if (d == 0) continue;
    rep.tagsPerResource.add(d);
    rep.cdfTagsPerResource.add(d);
    if (d == 1) ++resDeg1;
  }
  for (u32 t = 0; t < trg.tagSpan(); ++t) {
    u32 d = trg.tagDegree(t);
    if (d == 0) continue;
    rep.resPerTag.add(d);
    rep.cdfResPerTag.add(d);
    if (d == 1) ++tagDeg1;
    // FG degree reported over tags used in the TRG (the paper derives the
    // FG from the same tag population).
    u32 fd = fg.outDegree(t);
    rep.fgOutDegree.add(fd);
    rep.cdfFgDegree.add(fd);
  }

  if (rep.tagsPerResource.count() > 0) {
    rep.fracResourcesDeg1 = static_cast<double>(resDeg1) /
                            static_cast<double>(rep.tagsPerResource.count());
  }
  if (rep.resPerTag.count() > 0) {
    rep.fracTagsDeg1 =
        static_cast<double>(tagDeg1) / static_cast<double>(rep.resPerTag.count());
  }
  return rep;
}

}  // namespace dharma::ana
