#pragma once
/// \file searchsim.hpp
/// \brief Faceted-search convergence simulation (paper Section V-C,
///        Table IV and Figure 7).
///
/// "We took the 100 most popular tags and, starting from these, we
///  simulated tag search procedures [...] For each tag among the 100 most
///  popular we simulated the 'first' and 'last' search and 100 random
///  searches, on both original and approximated Folksonomy Graph."

#include <array>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "folksonomy/faceted.hpp"
#include "util/stats.hpp"
#include "workload/readwl.hpp"

namespace dharma::ana {

/// Experiment parameters (paper defaults).
struct SearchSimConfig {
  usize startTags = 100;        ///< most popular tags to start from
  usize randomRunsPerTag = 100; ///< random-strategy repetitions
  folk::SearchConfig search;    ///< displayCap=100, resourceStop=10
  u64 seed = 99;
};

/// Path-length statistics for one (graph, strategy) cell.
struct StrategyStats {
  RunningStats steps;
  double medianSteps = 0;
  Cdf cdf;  ///< Figure 7 series
  std::array<u64, folk::kStopReasonCount> stopReasons{};  ///< by folk::StopReason

  double reasonShare(folk::StopReason r) const {
    u64 total = 0;
    for (u64 n : stopReasons) total += n;
    return total ? static_cast<double>(stopReasons[static_cast<usize>(r)]) /
                       static_cast<double>(total)
                 : 0.0;
  }
};

/// One graph's row of Table IV: last / random / first.
struct SearchSimReport {
  std::array<StrategyStats, 3> byStrategy;  ///< index by folk::Strategy

  StrategyStats& of(folk::Strategy s) {
    return byStrategy[static_cast<usize>(s)];
  }
  const StrategyStats& of(folk::Strategy s) const {
    return byStrategy[static_cast<usize>(s)];
  }
};

/// Runs the full Section V-C simulation on one FG.
SearchSimReport runSearchSim(const folk::CsrFg& fg, const folk::Trg& trg,
                             const SearchSimConfig& cfg);

/// Cost/hit-rate accounting for a distributed read-workload replay
/// (the cache experiments' counterpart of SearchSimReport).
struct ReadSimStats {
  u64 sessions = 0;
  u64 steps = 0;            ///< searchStep calls issued
  u64 failures = 0;         ///< steps that returned an error
  u64 tagKnown = 0;         ///< steps whose t̂ block existed
  core::OpCost cost;        ///< lookups paid + cache hits, aggregated

  double lookupsPerSession() const {
    return sessions ? static_cast<double>(cost.lookups) /
                          static_cast<double>(sessions)
                    : 0.0;
  }
  double lookupsPerStep() const {
    return steps ? static_cast<double>(cost.lookups) /
                       static_cast<double>(steps)
                 : 0.0;
  }
};

/// Replays a Zipf read trace (workload/readwl.hpp) through \p client: every
/// session's tag ranks are mapped onto \p tagNames and fetched with
/// searchStep (2 lookups each, fewer when the client's read-through cache
/// hits). Deterministic for a fixed client/overlay/trace. Failures are
/// counted, never silently dropped.
ReadSimStats runReadTrace(core::DharmaClient& client,
                          const std::vector<std::string>& tagNames,
                          const wl::ReadTrace& trace);

}  // namespace dharma::ana
