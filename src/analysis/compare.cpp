#include "analysis/compare.hpp"

#include <cmath>
#include <mutex>

#include "analysis/rank.hpp"

namespace dharma::ana {

namespace {
/// Accumulates the comparison of one tag's arc rows into \p rep.
void compareTag(const folk::CsrFg& exact, const folk::CsrFg& approx, u32 t,
                CompareReport& rep, std::vector<double>& ew,
                std::vector<double>& aw) {
  auto exRow = exact.neighbors(t);
  auto apRow = approx.neighbors(t);
  if (exRow.empty() && apRow.empty()) return;
  rep.exactArcsTotal += exRow.size();
  rep.approxArcsTotal += apRow.size();
  if (exRow.empty()) {
    rep.approxOnlyArcs += apRow.size();
    return;
  }
  ++rep.tagsWithExactArcs;

  // Merge the two id-sorted rows.
  ew.clear();
  aw.clear();
  usize missing = 0, missing1 = 0, missingLe3 = 0;
  usize i = 0, j = 0;
  while (i < exRow.size() || j < apRow.size()) {
    if (j >= apRow.size() || (i < exRow.size() && exRow[i].tag < apRow[j].tag)) {
      ++missing;
      if (exRow[i].weight == 1) ++missing1;
      if (exRow[i].weight <= 3) ++missingLe3;
      ++i;
    } else if (i >= exRow.size() || apRow[j].tag < exRow[i].tag) {
      ++rep.approxOnlyArcs;  // should never happen (approx ⊆ exact)
      ++j;
    } else {
      ew.push_back(static_cast<double>(exRow[i].weight));
      aw.push_back(static_cast<double>(apRow[j].weight));
      ++i;
      ++j;
    }
  }

  rep.recall.add(static_cast<double>(apRow.size()) /
                 static_cast<double>(exRow.size()));
  rep.missingArcs += missing;
  rep.missingWeight1 += missing1;
  rep.missingWeightLe3 += missingLe3;
  if (missing > 0) {
    rep.sim1.add(static_cast<double>(missing1) / static_cast<double>(missing));
  }

  if (ew.size() >= 1) {
    double th = cosineSimilarity(ew, aw);
    if (!std::isnan(th)) rep.cosine.add(th);
  }
  if (ew.size() >= 2) {
    double kt = kendallTauB(ew, aw);
    if (!std::isnan(kt)) {
      rep.kendall.add(kt);
      ++rep.tagsWithRankMetrics;
    }
  }
}

void mergeReports(CompareReport& into, const CompareReport& from) {
  into.recall.merge(from.recall);
  into.kendall.merge(from.kendall);
  into.cosine.merge(from.cosine);
  into.sim1.merge(from.sim1);
  into.tagsWithExactArcs += from.tagsWithExactArcs;
  into.tagsWithRankMetrics += from.tagsWithRankMetrics;
  into.exactArcsTotal += from.exactArcsTotal;
  into.approxArcsTotal += from.approxArcsTotal;
  into.missingArcs += from.missingArcs;
  into.missingWeight1 += from.missingWeight1;
  into.missingWeightLe3 += from.missingWeightLe3;
  into.approxOnlyArcs += from.approxOnlyArcs;
}
}  // namespace

CompareReport compareFgs(const folk::CsrFg& exact, const folk::CsrFg& approx,
                         ThreadPool* pool) {
  const u32 n = std::max(exact.numTags(), approx.numTags());
  if (pool == nullptr || pool->threadCount() <= 1) {
    CompareReport rep;
    std::vector<double> ew, aw;
    for (u32 t = 0; t < n; ++t) compareTag(exact, approx, t, rep, ew, aw);
    return rep;
  }
  CompareReport total;
  std::mutex mu;
  parallelFor(pool, n, 2048, [&](usize begin, usize end) {
    CompareReport local;
    std::vector<double> ew, aw;
    for (usize t = begin; t < end; ++t) {
      compareTag(exact, approx, static_cast<u32>(t), local, ew, aw);
    }
    std::lock_guard lk(mu);
    mergeReports(total, local);
  });
  return total;
}

}  // namespace dharma::ana
