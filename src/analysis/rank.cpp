#include "analysis/rank.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace dharma::ana {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Counts strict inversions (i<j with v[i] > v[j]) by merge sort.
u64 countInversions(std::vector<double>& v) {
  const usize n = v.size();
  if (n < 2) return 0;
  std::vector<double> buf(n);
  u64 inv = 0;
  for (usize width = 1; width < n; width *= 2) {
    for (usize lo = 0; lo + width < n; lo += 2 * width) {
      usize mid = lo + width;
      usize hi = std::min(n, mid + width);
      usize i = lo, j = mid, k = lo;
      while (i < mid && j < hi) {
        if (v[i] <= v[j]) {
          buf[k++] = v[i++];
        } else {
          inv += mid - i;  // v[i..mid) all exceed v[j]
          buf[k++] = v[j++];
        }
      }
      while (i < mid) buf[k++] = v[i++];
      while (j < hi) buf[k++] = v[j++];
      std::copy(buf.begin() + static_cast<long>(lo),
                buf.begin() + static_cast<long>(hi),
                v.begin() + static_cast<long>(lo));
    }
  }
  return inv;
}

/// Σ t(t-1)/2 over runs of equal values in a sorted vector.
u64 tiePairs(const std::vector<double>& sorted) {
  u64 s = 0;
  usize run = 1;
  for (usize i = 1; i <= sorted.size(); ++i) {
    if (i < sorted.size() && sorted[i] == sorted[i - 1]) {
      ++run;
    } else {
      s += static_cast<u64>(run) * (run - 1) / 2;
      run = 1;
    }
  }
  return s;
}
}  // namespace

double kendallTauB(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  const usize n = x.size();
  if (n < 2) return kNaN;

  std::vector<u32> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
    return x[a] != x[b] ? x[a] < x[b] : y[a] < y[b];
  });

  // Tie corrections: n1 (ties in x), n3 (ties in both), n2 (ties in y).
  u64 n0 = static_cast<u64>(n) * (n - 1) / 2;
  u64 n1 = 0, n3 = 0;
  {
    usize runX = 1, runXY = 1;
    for (usize i = 1; i <= n; ++i) {
      bool sameX = i < n && x[order[i]] == x[order[i - 1]];
      bool sameXY = sameX && y[order[i]] == y[order[i - 1]];
      if (sameX) {
        ++runX;
      } else {
        n1 += static_cast<u64>(runX) * (runX - 1) / 2;
        runX = 1;
      }
      if (sameXY) {
        ++runXY;
      } else {
        n3 += static_cast<u64>(runXY) * (runXY - 1) / 2;
        runXY = 1;
      }
    }
  }
  u64 n2 = 0;
  {
    std::vector<double> ys(y);
    std::sort(ys.begin(), ys.end());
    n2 = tiePairs(ys);
  }

  // Discordant pairs: inversions of y in x-order (strict).
  std::vector<double> yInXOrder(n);
  for (usize i = 0; i < n; ++i) yInXOrder[i] = y[order[i]];
  u64 d = countInversions(yInXOrder);

  double denom = std::sqrt(static_cast<double>(n0 - n1)) *
                 std::sqrt(static_cast<double>(n0 - n2));
  if (denom == 0.0) return kNaN;
  // S = C - D = n0 - n1 - n2 + n3 - 2D.
  double s = static_cast<double>(n0) - static_cast<double>(n1) -
             static_cast<double>(n2) + static_cast<double>(n3) -
             2.0 * static_cast<double>(d);
  return s / denom;
}

double kendallTauBBrute(const std::vector<double>& x,
                        const std::vector<double>& y) {
  assert(x.size() == y.size());
  const usize n = x.size();
  if (n < 2) return kNaN;
  i64 concordant = 0, discordant = 0;
  u64 tiesX = 0, tiesY = 0;
  for (usize i = 0; i < n; ++i) {
    for (usize j = i + 1; j < n; ++j) {
      double dx = x[i] - x[j];
      double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) continue;
      if (dx == 0.0) {
        ++tiesX;
      } else if (dy == 0.0) {
        ++tiesY;
      } else if ((dx > 0) == (dy > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  u64 n0 = static_cast<u64>(n) * (n - 1) / 2;
  // tiesX here counts pairs tied ONLY in x (both-tied pairs were skipped),
  // so reconstruct the τ-b denominator terms accordingly.
  u64 bothTied = n0 - static_cast<u64>(concordant) -
                 static_cast<u64>(discordant) - tiesX - tiesY;
  double denom = std::sqrt(static_cast<double>(n0 - (tiesX + bothTied))) *
                 std::sqrt(static_cast<double>(n0 - (tiesY + bothTied)));
  if (denom == 0.0) return kNaN;
  return static_cast<double>(concordant - discordant) / denom;
}

double cosineSimilarity(const std::vector<double>& x,
                        const std::vector<double>& y) {
  assert(x.size() == y.size());
  if (x.empty()) return kNaN;
  double dot = 0, nx = 0, ny = 0;
  for (usize i = 0; i < x.size(); ++i) {
    dot += x[i] * y[i];
    nx += x[i] * x[i];
    ny += y[i] * y[i];
  }
  if (nx == 0.0 || ny == 0.0) return kNaN;
  return dot / (std::sqrt(nx) * std::sqrt(ny));
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  const usize n = x.size();
  if (n < 2) return kNaN;
  double mx = 0, my = 0;
  for (usize i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (usize i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return kNaN;
  return sxy / (std::sqrt(sxx) * std::sqrt(syy));
}

}  // namespace dharma::ana
