#pragma once
/// \file rank.hpp
/// \brief Rank/vector similarity metrics used by the Table III comparison.
///
/// Kendall's τ measures how far two rankings of the same objects are from
/// each other (−1 opposite … 1 identical); the paper does not state a tie
/// policy, so we use τ-b (the standard tie-adjusted variant — arc-weight
/// vectors contain many ties). Cosine similarity θ measures whether two
/// weight vectors are proportional ("θ([1,2,3],[100,200,300]) = 1").

#include <vector>

#include "util/types.hpp"

namespace dharma::ana {

/// Kendall τ-b between paired observations (x_i, y_i), O(n log n)
/// (Knight's algorithm: merge-sort inversion counting + tie corrections).
/// Returns NaN for n < 2 or when either vector is constant.
double kendallTauB(const std::vector<double>& x, const std::vector<double>& y);

/// O(n²) reference implementation (tests only).
double kendallTauBBrute(const std::vector<double>& x,
                        const std::vector<double>& y);

/// Cosine similarity of two equal-length vectors; NaN if either is all-zero
/// or the vectors are empty.
double cosineSimilarity(const std::vector<double>& x,
                        const std::vector<double>& y);

/// Pearson correlation coefficient; NaN for n < 2 or zero variance.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace dharma::ana
