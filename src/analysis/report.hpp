#pragma once
/// \file report.hpp
/// \brief Textual table/series emitters shared by the bench binaries.
///
/// Every bench prints (a) the paper's reference numbers and (b) the values
/// measured on the reproduction, in aligned ASCII tables that docs/EXPERIMENTS.md
/// quotes directly. CSV series are emitted for the figure benches so the
/// curves can be re-plotted externally.

#include <iosfwd>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/types.hpp"

namespace dharma::ana {

/// Prints an aligned ASCII table: one header row + data rows.
void printTable(std::ostream& os, const std::string& title,
                const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows);

/// Prints a (x, y) series as CSV with a one-line '#' header.
void printCsvSeries(std::ostream& os, const std::string& name,
                    const std::vector<std::pair<double, double>>& points);

/// "123" / "4.56" / "12.3%" cell helpers.
std::string cellInt(u64 v);
std::string cellDouble(double v, int precision = 4);
std::string cellPercent(double fraction, int precision = 1);

}  // namespace dharma::ana
