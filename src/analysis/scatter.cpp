#include "analysis/scatter.hpp"

#include <algorithm>
#include <cmath>

namespace dharma::ana {

ScatterAccumulator::ScatterAccumulator(double xMax, usize nBins)
    : logMax_(std::log10(std::max(10.0, xMax))), bins_(std::max<usize>(1, nBins)) {}

usize ScatterAccumulator::binFor(double x) const {
  if (x <= 1.0) return 0;
  double f = std::log10(x) / logMax_;
  usize b = static_cast<usize>(f * static_cast<double>(bins_.size()));
  return std::min(b, bins_.size() - 1);
}

void ScatterAccumulator::add(double x, double y) {
  ++n_;
  sx_ += x;
  sy_ += y;
  sxx_ += x * x;
  syy_ += y * y;
  sxy_ += x * y;
  BinAcc& b = bins_[binFor(x)];
  ++b.n;
  b.sx += x;
  b.sy += y;
  if (x > 0) b.sratio += y / x;
}

ScatterSummary ScatterAccumulator::summarize() const {
  ScatterSummary s;
  s.n = n_;
  if (n_ > 0 && sxx_ > 0) s.slopeThroughOrigin = sxy_ / sxx_;
  if (n_ > 1) {
    double nn = static_cast<double>(n_);
    double cov = sxy_ - sx_ * sy_ / nn;
    double vx = sxx_ - sx_ * sx_ / nn;
    double vy = syy_ - sy_ * sy_ / nn;
    if (vx > 0 && vy > 0) s.pearson = cov / std::sqrt(vx * vy);
  }
  for (usize i = 0; i < bins_.size(); ++i) {
    const BinAcc& b = bins_[i];
    if (b.n == 0) continue;
    ScatterBin out;
    out.xLo = i == 0 ? 0.0 : std::pow(10.0, logMax_ * static_cast<double>(i) /
                                                static_cast<double>(bins_.size()));
    out.xHi = std::pow(10.0, logMax_ * static_cast<double>(i + 1) /
                                 static_cast<double>(bins_.size()));
    out.count = b.n;
    out.meanX = b.sx / static_cast<double>(b.n);
    out.meanY = b.sy / static_cast<double>(b.n);
    out.meanRatio = b.sratio / static_cast<double>(b.n);
    s.bins.push_back(out);
  }
  return s;
}

}  // namespace dharma::ana
