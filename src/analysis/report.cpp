#include "analysis/report.hpp"

#include <algorithm>
#include <ostream>

namespace dharma::ana {

void printTable(std::ostream& os, const std::string& title,
                const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows) {
  std::vector<usize> width(headers.size(), 0);
  for (usize c = 0; c < headers.size(); ++c) width[c] = headers[c].size();
  for (const auto& row : rows) {
    for (usize c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (usize c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (usize c = 0; c < width.size(); ++c) {
      std::string v = c < cells.size() ? cells[c] : "";
      os << ' ' << v << std::string(width[c] - v.size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  if (!title.empty()) os << "\n== " << title << " ==\n";
  rule();
  line(headers);
  rule();
  for (const auto& row : rows) line(row);
  rule();
}

void printCsvSeries(std::ostream& os, const std::string& name,
                    const std::vector<std::pair<double, double>>& points) {
  os << "# series: " << name << "\n";
  for (const auto& [x, y] : points) {
    os << x << ',' << y << '\n';
  }
}

std::string cellInt(u64 v) { return std::to_string(v); }

std::string cellDouble(double v, int precision) {
  return fmtDouble(v, precision);
}

std::string cellPercent(double fraction, int precision) {
  return fmtDouble(fraction * 100.0, precision) + "%";
}

}  // namespace dharma::ana
