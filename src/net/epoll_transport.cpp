#ifdef __linux__

#include "net/epoll_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/histogram.hpp"
#include "obs/registry.hpp"

namespace dharma::net {

namespace {

/// Datagrams per recvmmsg/sendmmsg syscall. 32 keeps the per-message
/// buffer set (32 * 2 KiB) cache-friendly while amortising the syscall to
/// noise at bench rates.
constexpr usize kIoBatch = 32;
/// Per-message receive buffer. Anything above the MTU fails decode anyway,
/// so truncating huge datagrams here loses nothing observable.
constexpr usize kRecvMsgBytes = 2048;
/// epoll_data tag for the eventfd. Addresses occupy 48 bits, so the
/// all-ones u64 can never collide with an endpoint.
constexpr u64 kWakeTag = ~u64{0};

sockaddr_in makeSockAddr(u32 ipHostOrder, u16 port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(ipHostOrder);
  return sa;
}

/// Records wall microseconds into \p h on scope exit; inert when null.
struct ScopedTimer {
  obs::Histogram* h;
  std::chrono::steady_clock::time_point t0;
  explicit ScopedTimer(obs::Histogram* hist)
      : h(hist),
        t0(hist != nullptr ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (h == nullptr) return;
    auto dt = std::chrono::steady_clock::now() - t0;
    h->record(static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(dt).count()));
  }
};

}  // namespace

EpollTransport::EpollTransport(Executor& defaultExec, UdpConfig cfg)
    : defaultExec_(defaultExec), cfg_(std::move(cfg)) {
  auto ip = parseIpv4Host(cfg_.bindHost);
  if (!ip) {
    throw TransportError(
        TransportError::Kind::kBadAddress,
        "EpollTransport: bad bind host '" + cfg_.bindHost + "'");
  }
  bindIp_ = *ip;
  if (cfg_.metrics != nullptr) {
    sendHist_ = &cfg_.metrics->histogram(
        "dharma_udp_send_us",
        "UDP sendto() latency including the transport lock (microseconds)",
        {});
    recvBatchHist_ = &cfg_.metrics->histogram(
        "dharma_udp_recv_batch_datagrams",
        "Datagrams drained per ready-socket receive batch", {});
    recvBatchUsHist_ = &cfg_.metrics->histogram(
        "dharma_udp_recv_batch_us",
        "Time to drain one ready-socket receive batch (microseconds)", {});
  }
  epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epollFd_ < 0) {
    throw TransportError(TransportError::Kind::kSocketFailed,
                         "EpollTransport: epoll_create1() failed");
  }
  wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeFd_ < 0) {
    ::close(epollFd_);
    epollFd_ = -1;
    throw TransportError(TransportError::Kind::kSocketFailed,
                         "EpollTransport: eventfd() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev) != 0) {
    ::close(epollFd_);
    ::close(wakeFd_);
    epollFd_ = wakeFd_ = -1;
    throw TransportError(TransportError::Kind::kSocketFailed,
                         "EpollTransport: epoll_ctl(eventfd) failed");
  }
}

EpollTransport::~EpollTransport() { close(); }

void EpollTransport::wakeEventThread() {
  u64 one = 1;
  // Best-effort: an eventfd at max already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wakeFd_, &one, sizeof(one));
}

Address EpollTransport::registerEndpoint(ReceiveHandler handler) {
  return registerEndpoint(std::move(handler), defaultExec_);
}

Address EpollTransport::registerEndpoint(ReceiveHandler handler,
                                         Executor& deliverTo) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    throw TransportError(TransportError::Kind::kSocketFailed,
                         "EpollTransport: socket() failed");
  }
  fcntl(fd, F_SETFL, O_NONBLOCK);
  sockaddr_in sa = makeSockAddr(bindIp_, 0);  // ephemeral port
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    throw TransportError(TransportError::Kind::kBindFailed,
                         "EpollTransport: bind() failed");
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    ::close(fd);
    throw TransportError(TransportError::Kind::kBindFailed,
                         "EpollTransport: getsockname() failed");
  }
  Address addr = makeAddress(bindIp_, ntohs(sa.sin_port));

  MutexLock lk(sh_->mu);
  if (sh_->closing) {
    ::close(fd);
    throw TransportError(TransportError::Kind::kClosed,
                         "EpollTransport: registerEndpoint after close()");
  }
  // Register with epoll before publishing the endpoint; EPOLL_CTL_ADD is
  // safe against a concurrent epoll_wait, so the event thread needs no
  // wakeup to notice the new socket (level-triggered readiness).
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = addr;
  if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    throw TransportError(TransportError::Kind::kSocketFailed,
                         "EpollTransport: epoll_ctl(socket) failed");
  }
  sh_->endpoints[addr] = Endpoint{fd, std::move(handler), &deliverTo};
  if (!threadStarted_) {
    threadStarted_ = true;
    thread_ = std::thread([this] { eventLoop(); });
  }
  return addr;
}

void EpollTransport::setHandler(Address a, ReceiveHandler handler) {
  MutexLock lk(sh_->mu);
  auto it = sh_->endpoints.find(a);
  if (it != sh_->endpoints.end()) it->second.handler = std::move(handler);
}

bool EpollTransport::send(Address from, Address to, std::vector<u8> payload) {
  if (payload.size() > cfg_.mtuBytes) {
    MutexLock lk(sh_->mu);
    ++sh_->stats.droppedOversize;
    return false;
  }
  bool wake;
  {
    MutexLock lk(sh_->mu);
    auto it = sh_->endpoints.find(from);
    if (it == sh_->endpoints.end() || it->second.fd < 0 || sh_->closing) {
      return false;
    }
    if (sh_->dropPeers.count(to)) {
      // Partition rule: the datagram vanishes exactly as it would in a
      // real partition — the send looks accepted, nothing arrives.
      ++sh_->stats.droppedByRule;
      return true;
    }
    // Wake the event thread only on the empty→non-empty edge: a burst of
    // sends from one protocol callback pays one eventfd write, and the
    // flush picks up everything queued by the time it runs.
    wake = sh_->sendQueue.empty();
    sh_->sendQueue.push_back(SendItem{it->second.fd, to, std::move(payload)});
  }
  if (wake) wakeEventThread();
  return true;
}

bool EpollTransport::isOnline(Address a) const {
  MutexLock lk(sh_->mu);
  if (sh_->closing) return false;
  auto it = sh_->endpoints.find(a);
  // Local endpoints are online while their socket is open; anything else is
  // a remote peer, and remote liveness is the RPC timeout's business.
  return it == sh_->endpoints.end() || it->second.fd >= 0;
}

void EpollTransport::dropPeer(Address peer) {
  MutexLock lk(sh_->mu);
  sh_->dropPeers.insert(peer);
}

bool EpollTransport::undropPeer(Address peer) {
  MutexLock lk(sh_->mu);
  return sh_->dropPeers.erase(peer) > 0;
}

usize EpollTransport::clearDroppedPeers() {
  MutexLock lk(sh_->mu);
  usize n = sh_->dropPeers.size();
  sh_->dropPeers.clear();
  return n;
}

usize EpollTransport::droppedPeerCount() const {
  MutexLock lk(sh_->mu);
  return sh_->dropPeers.size();
}

void EpollTransport::close() {
  std::thread toJoin;
  {
    MutexLock lk(sh_->mu);
    if (sh_->closing) return;
    sh_->closing = true;
    wakeEventThread();
    toJoin = std::move(thread_);
  }
  if (toJoin.joinable()) toJoin.join();
  // Sockets close strictly after the event thread is gone: it was the only
  // thread doing socket I/O, so no syscall can hit a recycled fd.
  MutexLock lk(sh_->mu);
  for (auto& [addr, ep] : sh_->endpoints) {
    if (ep.fd >= 0) ::close(ep.fd);
    ep.fd = -1;
  }
  if (epollFd_ >= 0) ::close(epollFd_);
  if (wakeFd_ >= 0) ::close(wakeFd_);
  epollFd_ = wakeFd_ = -1;
  sh_->sendQueue.clear();
}

UdpStats EpollTransport::stats() const {
  MutexLock lk(sh_->mu);
  return sh_->stats;
}

void EpollTransport::flushSends(std::vector<SendItem>& items) {
  ScopedTimer timer(sendHist_);
  mmsghdr msgs[kIoBatch];
  iovec iov[kIoBatch];
  sockaddr_in dst[kIoBatch];
  u64 sent = 0, bytes = 0, errors = 0;
  usize i = 0;
  while (i < items.size()) {
    // One sendmmsg per run of consecutive same-socket items. The queue is
    // append-ordered, so an RPC reply burst from one node forms one run.
    int fd = items[i].fd;
    usize n = 0;
    while (i + n < items.size() && items[i + n].fd == fd && n < kIoBatch) {
      SendItem& it = items[i + n];
      dst[n] = makeSockAddr(addressIp(it.to), addressPort(it.to));
      iov[n] = {it.payload.data(), it.payload.size()};
      msgs[n] = mmsghdr{};
      msgs[n].msg_hdr.msg_name = &dst[n];
      msgs[n].msg_hdr.msg_namelen = sizeof(dst[n]);
      msgs[n].msg_hdr.msg_iov = &iov[n];
      msgs[n].msg_hdr.msg_iovlen = 1;
      ++n;
    }
    usize done = 0;
    while (done < n) {
      int r = ::sendmmsg(fd, msgs + done, static_cast<unsigned>(n - done), 0);
      if (r <= 0) {
        // Datagram semantics: a full socket buffer (or any kernel refusal)
        // drops the rest of the run, counted, never retried.
        errors += n - done;
        break;
      }
      for (int k = 0; k < r; ++k) {
        ++sent;
        bytes += items[i + done + static_cast<usize>(k)].payload.size();
      }
      done += static_cast<usize>(r);
    }
    i += n;
  }
  MutexLock lk(sh_->mu);
  sh_->stats.sent += sent;
  sh_->stats.bytesSent += bytes;
  sh_->stats.sendErrors += errors;
}

void EpollTransport::eventLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  // recvmmsg scaffolding, reused across batches.
  std::vector<std::vector<u8>> bufs(kIoBatch,
                                    std::vector<u8>(kRecvMsgBytes));
  mmsghdr msgs[kIoBatch];
  iovec iov[kIoBatch];
  sockaddr_in src[kIoBatch];
  /// One received datagram as handed to the batch delivery task.
  struct Datagram {
    Address src;
    std::vector<u8> payload;
  };
  std::vector<SendItem> toSend;

  while (true) {
    int n = ::epoll_wait(epollFd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd broken: nothing sane left to do
    }
    for (int e = 0; e < n; ++e) {
      u64 tag = events[e].data.u64;
      if (tag == kWakeTag) {
        u64 sink;
        while (::read(wakeFd_, &sink, sizeof(sink)) > 0) {
        }
        continue;  // send flush and the closing check run below
      }
      Address dstAddr = tag;
      int fd = -1;
      Executor* exec = nullptr;
      {
        MutexLock lk(sh_->mu);
        auto it = sh_->endpoints.find(dstAddr);
        if (it == sh_->endpoints.end() || it->second.fd < 0) continue;
        fd = it->second.fd;
        exec = it->second.exec;
      }
      // Drain the socket in recvmmsg batches; a short batch means drained
      // (and level-triggered epoll re-arms if something landed since).
      while (true) {
        for (usize m = 0; m < kIoBatch; ++m) {
          iov[m] = {bufs[m].data(), bufs[m].size()};
          msgs[m] = mmsghdr{};
          msgs[m].msg_hdr.msg_name = &src[m];
          msgs[m].msg_hdr.msg_namelen = sizeof(src[m]);
          msgs[m].msg_hdr.msg_iov = &iov[m];
          msgs[m].msg_hdr.msg_iovlen = 1;
        }
        ScopedTimer batchTimer(recvBatchUsHist_);
        int r = ::recvmmsg(fd, msgs, static_cast<unsigned>(kIoBatch), 0,
                           nullptr);
        if (r <= 0) break;  // EWOULDBLOCK (drained) or error
        auto batch = std::make_shared<std::vector<Datagram>>();
        batch->reserve(static_cast<usize>(r));
        {
          // One lock acquisition covers the drop-rule filter and the stats
          // for the whole batch.
          MutexLock lk(sh_->mu);
          for (int m = 0; m < r; ++m) {
            Address srcAddr = makeAddress(ntohl(src[m].sin_addr.s_addr),
                                          ntohs(src[m].sin_port));
            if (sh_->dropPeers.count(srcAddr)) {
              ++sh_->stats.droppedByRule;
              continue;
            }
            ++sh_->stats.received;
            auto* data = bufs[static_cast<usize>(m)].data();
            batch->push_back(Datagram{
                srcAddr,
                std::vector<u8>(data, data + msgs[m].msg_len)});
          }
        }
        if (recvBatchHist_ != nullptr) {
          recvBatchHist_->record(static_cast<u64>(r));
        }
        if (!batch->empty()) {
          // ONE task per batch, on the endpoint's own executor — with a
          // ShardedExecutor that is the owning node's shard, so the
          // handler still runs in its one-callback-at-a-time world. The
          // handler is looked up at delivery time (setHandler swaps from
          // node restarts apply to queued batches) through a weak_ptr:
          // a batch outliving the transport locks nothing stale.
          exec->schedule(0, [w = std::weak_ptr<Shared>(sh_), dstAddr,
                             batch] {
            std::shared_ptr<Shared> sh = w.lock();
            if (!sh) return;  // transport destroyed; drop the batch
            ReceiveHandler h;
            {
              MutexLock lk(sh->mu);
              auto it = sh->endpoints.find(dstAddr);
              if (it == sh->endpoints.end() || it->second.fd < 0) return;
              h = it->second.handler;
            }
            if (!h) return;
            for (const Datagram& d : *batch) h(d.src, d.payload);
          });
        }
        if (static_cast<usize>(r) < kIoBatch) break;
      }
    }
    // Flush queued sends and honour close() exactly once per epoll cycle.
    bool stop;
    toSend.clear();
    {
      MutexLock lk(sh_->mu);
      toSend.swap(sh_->sendQueue);
      stop = sh_->closing;
    }
    if (!toSend.empty()) flushSends(toSend);
    if (stop) return;
  }
}

}  // namespace dharma::net

#endif  // __linux__
