#pragma once
/// \file simulator.hpp
/// \brief Deterministic discrete-event simulator.
///
/// The whole overlay (RPC latencies, timeouts, churn) runs inside one
/// single-threaded event loop with virtual time, so every experiment is
/// bit-reproducible from its seed. Events scheduled at equal times fire in
/// scheduling order (a monotonic sequence number breaks ties).

#include <cstdint>
#include <functional>
#include <map>
#include <queue>

#include "util/types.hpp"

namespace dharma::net {

/// Virtual time in microseconds.
using SimTime = u64;

/// Handle returned by Simulator::schedule, usable with cancel().
using EventId = u64;

/// Single-threaded virtual-time event loop.
class Simulator {
 public:
  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules \p fn to run at now() + delay. Returns a cancellation handle.
  EventId schedule(SimTime delay, std::function<void()> fn);

  /// Schedules \p fn at the absolute virtual time \p at (>= now()).
  EventId scheduleAt(SimTime at, std::function<void()> fn);

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  /// Returns true if the event was pending.
  bool cancel(EventId id);

  /// Executes the next event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or \p maxEvents fire; returns events run.
  usize run(usize maxEvents = static_cast<usize>(-1));

  /// Runs events with time <= \p t; advances now() to exactly \p t.
  usize runUntil(SimTime t);

  /// Pending (non-cancelled) events.
  usize pending() const { return callbacks_.size(); }

  /// Total events executed since construction.
  u64 executed() const { return executed_; }

 private:
  struct QEntry {
    SimTime at;
    EventId id;
    bool operator>(const QEntry& o) const {
      return at != o.at ? at > o.at : id > o.id;
    }
  };

  SimTime now_ = 0;
  EventId nextId_ = 1;
  u64 executed_ = 0;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>> queue_;
  std::map<EventId, std::function<void()>> callbacks_;
};

}  // namespace dharma::net
