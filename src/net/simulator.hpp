#pragma once
/// \file simulator.hpp
/// \brief Deterministic discrete-event simulator (the SimExecutor).
///
/// The whole overlay (RPC latencies, timeouts, churn) runs inside one
/// single-threaded event loop with virtual time, so every experiment is
/// bit-reproducible from its seed. Events scheduled at equal times fire in
/// scheduling order (a monotonic sequence number breaks ties).
///
/// Callbacks live in a slot vector with per-slot generation counters
/// instead of a node-based map: schedule() reuses a free slot (no per-event
/// allocation beyond the std::function itself) and cancel() is O(1) — a
/// slot lookup and a generation check. A TaskId packs (generation, slot+1);
/// stale ids from an earlier occupant of the slot fail the generation check
/// and cancel cleanly returns false. Execution order is untouched by the
/// scheme: the ready queue orders on (time, sequence number), exactly the
/// (time, monotonic id) order the original map-based store used, so every
/// seeded digest is bit-identical.

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "net/executor.hpp"
#include "util/types.hpp"

namespace dharma::net {

/// Virtual time in microseconds (an Executor TimeUs).
using SimTime = TimeUs;

/// Handle returned by Simulator::schedule, usable with cancel().
using EventId = TaskId;

/// Single-threaded virtual-time event loop.
class Simulator final : public Executor {
 public:
  /// Current virtual time.
  TimeUs now() const override { return now_; }

  /// Schedules \p fn to run at now() + delay. Returns a cancellation handle.
  TaskId schedule(TimeUs delay, std::function<void()> fn) override;

  /// Schedules \p fn at the absolute virtual time \p at (clamped to now()).
  TaskId scheduleAt(TimeUs at, std::function<void()> fn) override;

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  /// Returns true if the event was pending.
  bool cancel(TaskId id) override;

  /// Executes the next event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or \p maxEvents fire; returns events run.
  usize run(usize maxEvents = static_cast<usize>(-1));

  /// Runs events with time <= \p t; advances now() to exactly \p t.
  usize runUntil(SimTime t);

  /// Pending (non-cancelled) events.
  usize pending() const { return live_; }

  /// Total events executed since construction.
  u64 executed() const { return executed_; }

  /// True only on the driver thread — the thread that constructed this
  /// Simulator (rebindable with bindDriverThread). The sim world is
  /// single-threaded by design: construction, step()/run(), and every
  /// engine call must share one thread, and the affinity checker
  /// (net/affinity.hpp) enforces exactly that in debug builds.
  bool onLoopThread() const override {
    return driver_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  /// Rebinds driver-thread affinity to the calling thread, for the rare
  /// harness that constructs a sim world on one thread and drives it from
  /// another (never both — that would be a real race, not an affinity
  /// technicality).
  void bindDriverThread() {
    driver_.store(std::this_thread::get_id(), std::memory_order_release);
  }

 private:
  /// One callback slot, reused across events. The generation counter makes
  /// a stale TaskId (an earlier occupant of this slot) fail cancel().
  struct Slot {
    std::function<void()> fn;
    u32 generation = 0;
    bool live = false;
  };

  struct QEntry {
    SimTime at;
    u64 seq;   ///< monotonic schedule order: the equal-time tie-breaker
    u32 slot;
    u32 generation;  ///< slot occupant this entry was queued for
    bool operator>(const QEntry& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  /// TaskId layout: (generation << 32) | (slot + 1). The +1 keeps every
  /// valid id nonzero, so kNullTask never aliases slot 0's first event.
  static TaskId makeId(u32 slot, u32 generation) {
    return (static_cast<TaskId>(generation) << 32) |
           (static_cast<TaskId>(slot) + 1);
  }

  /// Frees a slot (after firing or cancelling): drops the callback, bumps
  /// the generation so outstanding ids go stale, recycles the index.
  void releaseSlot(u32 slot);

  /// Pops dead queue entries (cancelled, or a stale generation) off the
  /// top. Returns false when the queue is empty.
  bool skipDead();

  SimTime now_ = 0;
  u64 nextSeq_ = 1;
  u64 executed_ = 0;
  usize live_ = 0;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>> queue_;
  std::vector<Slot> slots_;
  std::vector<u32> freeSlots_;
  /// Affinity stamp for onLoopThread(); everything else in this class is
  /// single-threaded by contract. Atomic only so a wrong-thread check is
  /// itself race-free.
  std::atomic<std::thread::id> driver_{std::this_thread::get_id()};
};

/// The deterministic Executor implementation (see net/executor.hpp).
using SimExecutor = Simulator;

}  // namespace dharma::net
