#pragma once
/// \file transport.hpp
/// \brief The datagram seam between the protocol engine and the wire.
///
/// KademliaNode speaks to the world exclusively through this interface.
/// Two implementations exist:
///
///  - net::Network (alias net::SimTransport): the simulated datagram
///    network — latency model, loss process, MTU enforcement, scripted
///    crashes — delivering via the Simulator. Deterministic per seed.
///  - net::UdpTransport (net/udp_transport.hpp): real POSIX UDP sockets on
///    the loopback (or any) interface; a receive thread hands datagrams to
///    the node's executor, so protocol callbacks still run one at a time.
///
/// Semantics shared by all implementations (the paper runs DHARMA "on UDP
/// packets", and the simulator always mirrored UDP):
///
///  - datagrams are unreliable: send() returning true promises an attempt,
///    not delivery — loss, drops and dead destinations are silent,
///  - payloads above mtuBytes() are rejected synchronously (send() returns
///    false) so the index-side filtering contract stays observable,
///  - receive handlers are invoked on the endpoint's executor, never
///    concurrently with other protocol callbacks.

#include <functional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace dharma::net {

class Executor;  // net/executor.hpp; referenced by the sharding overload

/// Endpoint address: a 48-bit (IPv4, port) pair packed into a u64 —
/// `(ip << 16) | port`, both in host byte order. On UdpTransport the
/// Address IS the wire address of the endpoint's socket, so the Contacts
/// nodes gossip in FIND_NODE replies stay routable between processes on
/// different hosts with no translation layer. The simulated network keeps
/// handing out dense indices (ip part 0), which round-trip losslessly
/// through the same (ip, port) wire codec.
using Address = u64;

/// Address value meaning "no endpoint": all 48 address bits set, so it
/// survives an encode/decode round trip like any other address.
constexpr Address kNullAddress = 0xFFFF'FFFF'FFFFULL;

/// Packs (IPv4 in host order, port) into an Address.
constexpr Address makeAddress(u32 ipv4, u16 port) {
  return (static_cast<Address>(ipv4) << 16) | port;
}

/// IPv4 part of an Address, host byte order.
constexpr u32 addressIp(Address a) { return static_cast<u32>(a >> 16); }

/// Port part of an Address.
constexpr u16 addressPort(Address a) { return static_cast<u16>(a & 0xFFFF); }

/// Renders an Address as dotted-quad "a.b.c.d:port".
inline std::string formatAddress(Address a) {
  u32 ip = addressIp(a);
  return std::to_string((ip >> 24) & 0xFF) + '.' +
         std::to_string((ip >> 16) & 0xFF) + '.' +
         std::to_string((ip >> 8) & 0xFF) + '.' + std::to_string(ip & 0xFF) +
         ':' + std::to_string(addressPort(a));
}

/// Datagram receive callback: (source address, payload bytes).
using ReceiveHandler = std::function<void(Address, const std::vector<u8>&)>;

/// Datagram transport interface (see file comment for the contract).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers a local endpoint; the returned Address is never reused.
  virtual Address registerEndpoint(ReceiveHandler handler) = 0;

  /// Registers a local endpoint whose datagrams are delivered on \p
  /// deliverTo instead of the transport's default executor. This is the
  /// sharding hook: each KademliaNode hands in its own executor, so with a
  /// ShardedExecutor a datagram for node X always lands on X's shard — the
  /// one-callback-at-a-time world becomes per shard. The simulated Network
  /// ignores the hint (all simulated nodes share the one Simulator);
  /// real transports honour it per endpoint.
  virtual Address registerEndpoint(ReceiveHandler handler,
                                   Executor& deliverTo) {
    (void)deliverTo;
    return registerEndpoint(std::move(handler));
  }

  /// Replaces the handler (used when a node restarts with fresh state).
  virtual void setHandler(Address a, ReceiveHandler handler) = 0;

  /// Sends \p payload from \p from to \p to. Returns false if the datagram
  /// was rejected synchronously (oversize payload, closed endpoint); loss
  /// and dead-destination drops stay silent, as on any datagram network.
  virtual bool send(Address from, Address to, std::vector<u8> payload) = 0;

  /// True if the endpoint currently accepts datagrams. Simulated crashes
  /// report false; a real socket is online until closed.
  virtual bool isOnline(Address a) const = 0;

  /// Maximum payload accepted by send(). Protocol code sizes replies and
  /// splits STORE batches against this.
  virtual usize mtuBytes() const = 0;
};

}  // namespace dharma::net
