#pragma once
/// \file transport.hpp
/// \brief The datagram seam between the protocol engine and the wire.
///
/// KademliaNode speaks to the world exclusively through this interface.
/// Two implementations exist:
///
///  - net::Network (alias net::SimTransport): the simulated datagram
///    network — latency model, loss process, MTU enforcement, scripted
///    crashes — delivering via the Simulator. Deterministic per seed.
///  - net::UdpTransport (net/udp_transport.hpp): real POSIX UDP sockets on
///    the loopback (or any) interface; a receive thread hands datagrams to
///    the node's executor, so protocol callbacks still run one at a time.
///
/// Semantics shared by all implementations (the paper runs DHARMA "on UDP
/// packets", and the simulator always mirrored UDP):
///
///  - datagrams are unreliable: send() returning true promises an attempt,
///    not delivery — loss, drops and dead destinations are silent,
///  - payloads above mtuBytes() are rejected synchronously (send() returns
///    false) so the index-side filtering contract stays observable,
///  - receive handlers are invoked on the endpoint's executor, never
///    concurrently with other protocol callbacks.

#include <functional>
#include <vector>

#include "util/types.hpp"

namespace dharma::net {

/// Endpoint address: a dense transport-local handle, stable for the life of
/// the transport. For the simulated network it indexes the endpoint table;
/// for UDP it names a (socket or resolved peer) slot. It is NOT a wire
/// address — Contacts carry it because every node in one process shares one
/// transport instance.
using Address = u32;

/// Address value meaning "no endpoint".
constexpr Address kNullAddress = static_cast<Address>(-1);

/// Datagram receive callback: (source address, payload bytes).
using ReceiveHandler = std::function<void(Address, const std::vector<u8>&)>;

/// Datagram transport interface (see file comment for the contract).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers a local endpoint; the returned Address is never reused.
  virtual Address registerEndpoint(ReceiveHandler handler) = 0;

  /// Replaces the handler (used when a node restarts with fresh state).
  virtual void setHandler(Address a, ReceiveHandler handler) = 0;

  /// Sends \p payload from \p from to \p to. Returns false if the datagram
  /// was rejected synchronously (oversize payload, closed endpoint); loss
  /// and dead-destination drops stay silent, as on any datagram network.
  virtual bool send(Address from, Address to, std::vector<u8> payload) = 0;

  /// True if the endpoint currently accepts datagrams. Simulated crashes
  /// report false; a real socket is online until closed.
  virtual bool isOnline(Address a) const = 0;

  /// Maximum payload accepted by send(). Protocol code sizes replies and
  /// splits STORE batches against this.
  virtual usize mtuBytes() const = 0;
};

}  // namespace dharma::net
