#pragma once
/// \file udp_transport.hpp
/// \brief Portable poll() backend of the DatagramTransport family.
///
/// The production counterpart of the simulated Network, and the portable
/// baseline behind the net/datagram.hpp seam (the Linux batched fast path
/// is net/epoll_transport.hpp). Each registerEndpoint() binds one UDP
/// socket on the configured host (127.0.0.1 by default) and the endpoint's
/// Address is the full packed (ip, port) of the bound socket: the wire
/// address itself, globally consistent across processes AND hosts, so the
/// Contact addresses nodes gossip in FIND_NODE replies remain routable
/// between cooperating dharma_node processes with no translation layer.
///
/// A single receive thread polls every local socket — with no timeout:
/// wakeups are purely event-driven through the self-pipe, which socket-set
/// changes and close() write to — and posts each datagram to the
/// endpoint's executor, where the owning handler runs. Endpoints
/// registered through the two-argument registerEndpoint() overload carry
/// their own executor (the sharding hook); everything else lands on the
/// constructor executor. Either way protocol callbacks for one endpoint
/// never execute concurrently — the same one-callback-at-a-time world the
/// simulator provides, which is what lets KademliaNode stay lock-free on
/// every transport.
///
/// Datagram semantics mirror the simulated network: payloads above
/// mtuBytes are rejected synchronously (send() returns false, counted in
/// stats), everything else is fire-and-forget.
///
/// Fault injection: dropPeer() installs a transport-level rule that
/// silently discards every datagram to or from a peer address — exactly
/// what a network partition looks like from this host. The cluster harness
/// (tests/cluster/) scripts partitions with it via dharma_node's
/// --drop-peers flag and drop/undrop line commands.

#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/datagram.hpp"
#include "net/executor.hpp"
#include "util/thread_annotations.hpp"

namespace dharma::obs {
class Histogram;
}  // namespace dharma::obs

namespace dharma::net {

/// Datagram transport over UDP sockets, poll() event backend.
class UdpTransport final : public DatagramTransport {
 public:
  /// Shared UDP backend configuration; the name predates the seam and is
  /// kept for the daemons/tests that spell UdpTransport::Config.
  using Config = UdpConfig;

  /// \param exec executor deliveries default to when an endpoint does not
  ///             bring its own. Must be a thread-safe executor
  ///             (RealTimeExecutor): the receive thread schedules onto it.
  /// \param cfg  bind host and MTU
  UdpTransport(Executor& exec, Config cfg);
  explicit UdpTransport(Executor& exec);

  /// Closes every socket and joins the receive thread.
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Binds a fresh UDP socket on an ephemeral port; the Address is the
  /// packed (bind ip, bound port). Starts the receive thread on first call.
  Address registerEndpoint(ReceiveHandler handler) override;

  /// Same, but this endpoint's datagrams are delivered on \p deliverTo —
  /// the sharding hook (each node passes its own shard).
  Address registerEndpoint(ReceiveHandler handler,
                           Executor& deliverTo) override;

  void setHandler(Address a, ReceiveHandler handler) override;

  /// sendto() from endpoint \p from to the (ip, port) packed in \p to.
  /// Returns false on oversize payload, unknown/closed local endpoint, or
  /// synchronous sendto failure. A destination under a dropPeer() rule is
  /// silently discarded (returns true, like any datagram loss).
  bool send(Address from, Address to, std::vector<u8> payload) override;

  /// Local endpoints report their socket state; any non-local address is
  /// presumed online (liveness is the protocol's RPC-timeout business).
  bool isOnline(Address a) const override;

  usize mtuBytes() const override { return cfg_.mtuBytes; }

  // DatagramTransport operational surface (contract in datagram.hpp).
  void dropPeer(Address peer) override;
  bool undropPeer(Address peer) override;
  usize clearDroppedPeers() override;
  usize droppedPeerCount() const override;
  void close() override;
  UdpStats stats() const override;
  const UdpConfig& config() const override { return cfg_; }

 private:
  struct Endpoint {
    int fd = -1;
    ReceiveHandler handler;
    Executor* exec = nullptr;  ///< where this endpoint's datagrams run
  };

  /// State reachable from executor-posted delivery tasks. Held by
  /// shared_ptr and captured as weak_ptr in those tasks: a delivery still
  /// queued when the transport dies (executor stopped after the transport
  /// was destroyed) locks nothing stale — the weak_ptr simply fails to
  /// lock. Nothing here may reference the transport object itself.
  struct Shared {
    Mutex mu;
    /// (ip,port) -> socket
    std::unordered_map<Address, Endpoint> endpoints GUARDED_BY(mu);
    /// partition rules (both ways)
    std::unordered_set<Address> dropPeers GUARDED_BY(mu);
    UdpStats stats GUARDED_BY(mu);
    bool closing GUARDED_BY(mu) = false;
  };

  void receiveLoop();
  void wakeReceiver() REQUIRES(sh_->mu);

  Executor& exec_;
  Config cfg_;
  u32 bindIp_ = 0;  ///< cfg_.bindHost parsed once, host byte order

  // Pre-resolved histogram handles (null when cfg_.metrics is unset).
  // Recorded from the calling thread (send) and the receive thread —
  // Histogram is lock-free, so no ordering with sh_->mu is needed.
  obs::Histogram* sendHist_ = nullptr;
  obs::Histogram* recvBatchHist_ = nullptr;
  obs::Histogram* recvBatchUsHist_ = nullptr;

  std::shared_ptr<Shared> sh_ = std::make_shared<Shared>();
  /// Self-pipe: interrupts poll() on socket-set changes and close() — the
  /// ONLY wakeup source, since the poll blocks with no timeout. Written in
  /// the constructor (pre-publication), read/closed under the lock; the
  /// receive loop drains through its locked snapshot of the read end.
  int wakePipe_[2] GUARDED_BY(sh_->mu) = {-1, -1};
  bool receiverStarted_ GUARDED_BY(sh_->mu) = false;
  std::thread receiver_ GUARDED_BY(sh_->mu);
};

}  // namespace dharma::net
