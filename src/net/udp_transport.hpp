#pragma once
/// \file udp_transport.hpp
/// \brief Transport over real POSIX UDP sockets.
///
/// The production counterpart of the simulated Network. Each
/// registerEndpoint() binds one UDP socket on the configured host
/// (127.0.0.1 by default) and the endpoint's Address is the full packed
/// (ip, port) of the bound socket: the wire address itself, globally
/// consistent across processes AND hosts, so the Contact addresses nodes
/// gossip in FIND_NODE replies remain routable between cooperating
/// dharma_node processes with no address translation layer.
///
/// A single receive thread polls every local socket and posts each datagram
/// to the Executor, where the owning endpoint's handler runs. Protocol
/// callbacks therefore never execute concurrently — the same
/// one-callback-at-a-time world the simulator provides, which is what lets
/// KademliaNode stay lock-free on both transports.
///
/// Datagram semantics mirror the simulated network: payloads above
/// mtuBytes are rejected synchronously (send() returns false, counted in
/// stats), everything else is fire-and-forget.
///
/// Fault injection: dropPeer() installs a transport-level rule that
/// silently discards every datagram to or from a peer address — exactly
/// what a network partition looks like from this host. The cluster harness
/// (tests/cluster/) scripts partitions with it via dharma_node's
/// --drop-peers flag and drop/undrop line commands.

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/executor.hpp"
#include "net/transport.hpp"
#include "util/thread_annotations.hpp"

namespace dharma::obs {
class Histogram;
class MetricsRegistry;
}  // namespace dharma::obs

namespace dharma::net {

/// Typed transport startup/teardown failure. Daemons catch this at boot,
/// print one line naming the kind ("bad-address: ..."), and exit with
/// status 2 — the startup-failure exit code, distinct from protocol errors
/// (1) and clean runs (0) — instead of aborting through an unhandled
/// exception. kind() is stable; what() carries the human detail.
class TransportError : public std::runtime_error {
 public:
  enum class Kind : u8 {
    kBadAddress,    ///< bind host is not a numeric IPv4 / "localhost"
    kSocketFailed,  ///< socket()/pipe() resource failure
    kBindFailed,    ///< bind()/getsockname() on an endpoint socket
    kClosed,        ///< operation on an already-closed transport
  };

  TransportError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  Kind kind() const { return kind_; }

  const char* kindName() const {
    switch (kind_) {
      case Kind::kBadAddress: return "bad-address";
      case Kind::kSocketFailed: return "socket-failed";
      case Kind::kBindFailed: return "bind-failed";
      case Kind::kClosed: return "transport-closed";
    }
    return "unknown";
  }

 private:
  Kind kind_;
};

/// Aggregate traffic counters (mirrors NetworkStats where meaningful).
struct UdpStats {
  u64 sent = 0;             ///< datagrams accepted by sendto()
  u64 received = 0;         ///< datagrams handed to an endpoint handler
  u64 droppedOversize = 0;  ///< payload exceeded the MTU
  u64 sendErrors = 0;       ///< sendto() failed synchronously
  u64 bytesSent = 0;        ///< total payload bytes accepted
  u64 droppedByRule = 0;    ///< discarded by a dropPeer() partition rule
};

/// Typed outcome of UdpTransport::resolvePeer. A failed resolution names
/// WHICH part of the spec was bad instead of collapsing to a silent null
/// address.
struct PeerResolution {
  enum class Error : u8 {
    kNone = 0,
    kBadHost,  ///< host part is not a numeric IPv4 (or "localhost")
    kBadPort,  ///< port part missing, non-numeric, or outside 1..65535
  };

  Address addr = kNullAddress;
  Error error = Error::kNone;

  bool ok() const { return error == Error::kNone; }

  const char* errorName() const {
    switch (error) {
      case Error::kNone: return "ok";
      case Error::kBadHost: return "bad-host";
      case Error::kBadPort: return "bad-port";
    }
    return "unknown";
  }
};

/// Datagram transport over UDP sockets.
class UdpTransport final : public Transport {
 public:
  struct Config {
    std::string bindHost = "127.0.0.1";  ///< local interface for sockets
    usize mtuBytes = 1400;               ///< payload cap, as in the paper
    /// Optional metrics sink: when set, send() records
    /// `dharma_udp_send_us` (sendto latency incl. transport lock) and the
    /// receive loop records `dharma_udp_recv_batch_datagrams` /
    /// `dharma_udp_recv_batch_us` per drained socket batch. Must outlive
    /// the transport; null disables at one-branch cost.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// \param exec executor datagram deliveries are posted to. Must be a
  ///             thread-safe executor (RealTimeExecutor): the receive
  ///             thread schedules onto it.
  /// \param cfg  bind host and MTU
  UdpTransport(Executor& exec, Config cfg);
  explicit UdpTransport(Executor& exec);

  /// Closes every socket and joins the receive thread.
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Binds a fresh UDP socket on an ephemeral port; the Address is the
  /// packed (bind ip, bound port). Starts the receive thread on first call.
  Address registerEndpoint(ReceiveHandler handler) override;

  void setHandler(Address a, ReceiveHandler handler) override;

  /// sendto() from endpoint \p from to the (ip, port) packed in \p to.
  /// Returns false on oversize payload, unknown/closed local endpoint, or
  /// synchronous sendto failure. A destination under a dropPeer() rule is
  /// silently discarded (returns true, like any datagram loss).
  bool send(Address from, Address to, std::vector<u8> payload) override;

  /// Local endpoints report their socket state; any non-local address is
  /// presumed online (liveness is the protocol's RPC-timeout business).
  bool isOnline(Address a) const override;

  usize mtuBytes() const override { return cfg_.mtuBytes; }

  /// Resolves a peer spec — "ip:port", "localhost:port", or a bare port
  /// (host defaults to the bind host) — to a packed Address. Any numeric
  /// IPv4 is accepted; a non-numeric host or out-of-range port yields the
  /// matching typed error, never a silent null.
  PeerResolution resolvePeer(const std::string& hostPort) const;

  /// Partition fault injection: silently discard every datagram sent to or
  /// received from \p peer until undropPeer()/clearDroppedPeers().
  void dropPeer(Address peer);

  /// Removes one drop rule; returns true if it was present.
  bool undropPeer(Address peer);

  /// Removes every drop rule; returns how many were installed.
  usize clearDroppedPeers();

  /// Number of drop rules currently installed.
  usize droppedPeerCount() const;

  /// Stops the receive thread and closes every socket (idempotent; the
  /// destructor calls it). In-flight handler tasks already posted to the
  /// executor still run.
  void close();

  UdpStats stats() const;

 private:
  struct Endpoint {
    int fd = -1;
    ReceiveHandler handler;
  };

  /// State reachable from executor-posted delivery tasks. Held by
  /// shared_ptr and captured as weak_ptr in those tasks: a delivery still
  /// queued when the transport dies (executor stopped after the transport
  /// was destroyed) locks nothing stale — the weak_ptr simply fails to
  /// lock. Nothing here may reference the transport object itself.
  struct Shared {
    Mutex mu;
    /// (ip,port) -> socket
    std::unordered_map<Address, Endpoint> endpoints GUARDED_BY(mu);
    /// partition rules (both ways)
    std::unordered_set<Address> dropPeers GUARDED_BY(mu);
    UdpStats stats GUARDED_BY(mu);
    bool closing GUARDED_BY(mu) = false;
  };

  void receiveLoop();
  void wakeReceiver() REQUIRES(sh_->mu);

  Executor& exec_;
  Config cfg_;
  u32 bindIp_ = 0;  ///< cfg_.bindHost parsed once, host byte order

  // Pre-resolved histogram handles (null when cfg_.metrics is unset).
  // Recorded from the calling thread (send) and the receive thread —
  // Histogram is lock-free, so no ordering with sh_->mu is needed.
  obs::Histogram* sendHist_ = nullptr;
  obs::Histogram* recvBatchHist_ = nullptr;
  obs::Histogram* recvBatchUsHist_ = nullptr;

  std::shared_ptr<Shared> sh_ = std::make_shared<Shared>();
  /// Self-pipe: interrupts poll() on socket-set changes. Written in the
  /// constructor (pre-publication), read/closed under the lock; the
  /// receive loop drains through its locked snapshot of the read end.
  int wakePipe_[2] GUARDED_BY(sh_->mu) = {-1, -1};
  bool receiverStarted_ GUARDED_BY(sh_->mu) = false;
  std::thread receiver_ GUARDED_BY(sh_->mu);
};

}  // namespace dharma::net
