#pragma once
/// \file sharded.hpp
/// \brief ShardedExecutor: N RealTimeExecutor run loops with stable
/// per-engine affinity.
///
/// The single RealTimeExecutor serializes every protocol callback in the
/// process onto one thread — the ~4k ops/s ceiling bench_realtime_throughput
/// measured. Sharding keeps the contract that makes the engine lock-free
/// while multiplying the loops: each KademliaNode (with its
/// MaintenanceManager and RecordCache) is ASSIGNED to exactly one shard at
/// construction and every one of its callbacks — datagram deliveries
/// (via Transport::registerEndpoint(handler, exec)), timers, client ops —
/// runs on that shard's loop thread, forever. Within a shard nothing
/// changed: one callback at a time, no locks, and the PR-7 affinity
/// checker (DHARMA_ASSERT_AFFINITY) still aborts on any cross-shard touch,
/// because each node's Executor& IS its shard.
///
/// ShardedExecutor is deliberately NOT an Executor: there is no meaningful
/// "schedule on the group". Engines bind to shard(i); the group object
/// only owns lifecycle (start/stop all) and placement (assignShard round-
/// robin, shardOf for key-stable mapping).
///
/// Observability: given a MetricsRegistry, each shard records
///   dharma_node_shard_task_run_us{shard="i"}   callback run time
///   dharma_node_shard_task_wait_us{shard="i"}  scheduling lag past deadline
///   dharma_node_shard_queue_depth{shard="i"}   live tasks in the queue
/// — the per-shard p50/p99s bench_realtime_throughput prints and the
/// queue-depth gauges OBSERVABILITY.md documents.

#include <atomic>
#include <memory>
#include <vector>

#include "net/realtime.hpp"

namespace dharma::obs {
class MetricsRegistry;
}  // namespace dharma::obs

namespace dharma::net {

/// A fixed-size group of RealTimeExecutor run loops (see file comment).
class ShardedExecutor {
 public:
  struct Config {
    usize shards = 1;  ///< number of run loops (>= 1; 0 is clamped to 1)
    /// Optional per-shard instrumentation sink (see file comment). Must
    /// outlive the executor group; null disables.
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit ShardedExecutor(Config cfg);
  explicit ShardedExecutor(usize shards)
      : ShardedExecutor(Config{shards, nullptr}) {}

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  /// Stops every shard (the per-shard destructors would too; explicit for
  /// symmetry with the daemons' teardown ordering).
  ~ShardedExecutor();

  usize shardCount() const { return shards_.size(); }

  RealTimeExecutor& shard(usize i) { return *shards_[i % shards_.size()]; }
  const RealTimeExecutor& shard(usize i) const {
    return *shards_[i % shards_.size()];
  }

  /// Stable key → shard mapping (e.g. a node index): key % shardCount().
  usize shardOf(u64 key) const { return static_cast<usize>(key) % shards_.size(); }

  /// Round-robin placement counter for engines constructed in sequence.
  /// Returns the shard index to bind the next engine to. Thread-safe.
  usize assignShard() {
    return next_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  }

  /// Starts every shard's run loop (idempotent).
  void start();

  /// Stops every shard: each loop drains its due tasks and joins. Safe to
  /// call repeatedly; the destructor calls it.
  void stop();

  /// True while every shard's loop is running.
  bool running() const;

  /// Sum of pending (non-cancelled, not yet started) tasks across shards.
  usize pendingTotal() const;

 private:
  std::vector<std::unique_ptr<RealTimeExecutor>> shards_;
  std::atomic<usize> next_{0};
};

}  // namespace dharma::net
