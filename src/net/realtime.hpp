#pragma once
/// \file realtime.hpp
/// \brief Real-time Executor: a wall-clock timer/task queue with a run loop.
///
/// The production counterpart of the Simulator. Producers (the UDP receive
/// thread, client threads posting blocking operations, protocol callbacks
/// rescheduling themselves) push tasks into a mutex-protected priority
/// queue; one run-loop thread pops tasks when their deadline passes and
/// executes them strictly one at a time. That single-consumer discipline is
/// what lets the protocol engine (KademliaNode & friends) stay lock-free:
/// on either executor, no two protocol callbacks ever run concurrently.
///
/// Time is the monotonic steady clock in microseconds since construction —
/// the same "only differences matter" contract the simulator's virtual
/// clock offers.
///
/// Lifecycle: start() spawns the loop thread; stop() wakes it, drains every
/// task that is already due, discards the rest, and joins. The destructor
/// calls stop(). schedule()/cancel() are safe from any thread, including
/// from inside tasks.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/executor.hpp"
#include "util/thread_annotations.hpp"

namespace dharma::obs {
class Gauge;
class Histogram;
}  // namespace dharma::obs

namespace dharma::net {

/// Thread-safe wall-clock executor (see file comment).
class RealTimeExecutor final : public Executor {
 public:
  RealTimeExecutor();
  ~RealTimeExecutor() override;

  RealTimeExecutor(const RealTimeExecutor&) = delete;
  RealTimeExecutor& operator=(const RealTimeExecutor&) = delete;

  /// Microseconds of steady-clock time since construction.
  TimeUs now() const override;

  /// Schedules \p fn to run on the loop thread at now() + delay. Always
  /// accepts (producers like the UDP receive thread must never throw):
  /// while stopped, tasks queue up and run only if the executor is
  /// start()ed again — callers needing execution guarantees check
  /// running() first (RealTimeRuntime::awaitDone does).
  TaskId schedule(TimeUs delay, std::function<void()> fn) override;

  /// Schedules \p fn at the absolute time \p at (clamped to now()).
  TaskId scheduleAt(TimeUs at, std::function<void()> fn) override;

  /// Cancels a pending task. Returns true if it had not started; a task
  /// already executing on the loop thread runs to completion.
  bool cancel(TaskId id) override;

  /// True on the run-loop thread, or whenever no loop thread exists —
  /// between construction and start(), and after stop() has joined. The
  /// stopped-executor case matters: shutdown sequences (examples/
  /// dharma_node stops the executor first, then tears down the engine) and
  /// post-stop test assertions legitimately touch engine state from main
  /// once no callback can ever run again.
  bool onLoopThread() const override;

  /// Spawns the run-loop thread (idempotent).
  void start();

  /// Stops the loop: tasks already due at the moment of the call still run
  /// ("shutdown drains"), tasks scheduled for a later time are discarded.
  /// Joins the loop thread. Safe to call repeatedly and from concurrent
  /// threads (exactly one caller performs the join; a racing second call
  /// may return before the drain finishes); the destructor calls it. Must
  /// not be called from the loop thread itself.
  void stop();

  bool running() const;

  /// Pending (non-cancelled, not yet started) tasks. Diagnostic.
  usize pending() const;

  /// Optional per-loop observability, the per-shard surface the sharded
  /// runtime exposes (`dharma_node_shard_*` families): task run duration,
  /// queue wait (pop time minus deadline — scheduling lag, not the
  /// requested delay), and a queue-depth gauge updated on every
  /// schedule/pop. All three may be null (each costs one branch on the hot
  /// path when unset). Call before start(); the handles must outlive the
  /// executor.
  void setObs(obs::Histogram* runUs, obs::Histogram* waitUs,
              obs::Gauge* queueDepth);

 private:
  struct Task {
    TimeUs at;
    u64 seq;  ///< schedule order: the equal-deadline tie-breaker
    TaskId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Task& a, const Task& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void loop();
  /// Pops the next due task; blocks until one is due or stopping. Returns
  /// false when stopping and nothing due remains.
  bool popDue(Task& out) EXCLUDES(mu_);

  const std::chrono::steady_clock::time_point epoch_;

  mutable Mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Task, std::vector<Task>, Later> queue_ GUARDED_BY(mu_);
  // Live (schedulable) ids. cancel() erases the id; the orphaned queue
  // entry is discarded when it surfaces — the same lazy-removal scheme the
  // simulator uses, minus the slot reuse (here contention, not allocation,
  // is the bottleneck).
  std::unordered_set<TaskId> live_ GUARDED_BY(mu_);
  u64 nextSeq_ GUARDED_BY(mu_) = 1;
  TaskId nextId_ GUARDED_BY(mu_) = 1;
  TimeUs stopDeadline_ GUARDED_BY(mu_) = 0;  ///< drain cutoff from stop()
  bool stopping_ GUARDED_BY(mu_) = false;
  bool loopRunning_ GUARDED_BY(mu_) = false;
  /// True only while the loop thread is blocked in cv_.wait*. schedule()
  /// notifies only when the loop is actually asleep AND the new deadline
  /// precedes the one it sleeps toward — every other wakeup is wasted
  /// work (a futex syscall plus, on a busy box, a context switch), and at
  /// datagram rates those wakeups dominated the old notify-always path.
  bool loopWaiting_ GUARDED_BY(mu_) = false;
  /// Deadline the sleeping loop will wake at on its own (meaningful only
  /// while loopWaiting_); ~0 when it waits with no deadline.
  TimeUs wakeAt_ GUARDED_BY(mu_) = 0;
  std::thread thread_ GUARDED_BY(mu_);
  // Obs handles (see setObs). Histograms/gauges are internally atomic, so
  // recording needs no ordering with mu_; the pointers themselves are only
  // written before start().
  obs::Histogram* runHist_ = nullptr;
  obs::Histogram* waitHist_ = nullptr;
  obs::Gauge* depthGauge_ = nullptr;
  /// Run-loop thread id for onLoopThread(): stamped by start() before it
  /// returns (no window where an engine call from the spawning thread
  /// slips past the check), cleared by stop() after the join. Atomic, not
  /// mu_-guarded: onLoopThread() is called from affinity assertions on
  /// arbitrary threads and must not touch the task-queue lock.
  std::atomic<std::thread::id> loopThread_{};
};

}  // namespace dharma::net
