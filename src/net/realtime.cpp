#include "net/realtime.hpp"

#include <cassert>

#include "obs/histogram.hpp"
#include "obs/registry.hpp"

namespace dharma::net {

namespace {
TimeUs toUs(std::chrono::steady_clock::duration d) {
  return static_cast<TimeUs>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}
}  // namespace

RealTimeExecutor::RealTimeExecutor()
    : epoch_(std::chrono::steady_clock::now()) {}

RealTimeExecutor::~RealTimeExecutor() { stop(); }

TimeUs RealTimeExecutor::now() const {
  return toUs(std::chrono::steady_clock::now() - epoch_);
}

void RealTimeExecutor::setObs(obs::Histogram* runUs, obs::Histogram* waitUs,
                              obs::Gauge* queueDepth) {
  runHist_ = runUs;
  waitHist_ = waitUs;
  depthGauge_ = queueDepth;
}

TaskId RealTimeExecutor::schedule(TimeUs delay, std::function<void()> fn) {
  return scheduleAt(now() + delay, std::move(fn));
}

TaskId RealTimeExecutor::scheduleAt(TimeUs at, std::function<void()> fn) {
  bool wake;
  TaskId id;
  {
    MutexLock lk(mu_);
    id = nextId_++;
    queue_.push(Task{at, nextSeq_++, id, std::move(fn)});
    live_.insert(id);
    if (depthGauge_ != nullptr) {
      depthGauge_->set(static_cast<double>(live_.size()));
    }
    // Wake the loop only when it is actually asleep AND would otherwise
    // sleep past this deadline. A loop that is mid-task re-reads the queue
    // top under mu_ before its next wait, so it cannot miss this entry.
    wake = loopWaiting_ && at < wakeAt_;
  }
  if (wake) cv_.notify_one();
  return id;
}

bool RealTimeExecutor::cancel(TaskId id) {
  if (id == kNullTask) return false;
  MutexLock lk(mu_);
  // The queue entry stays; popDue() discards it once the id is dead. A task
  // already handed to the loop thread is past cancellation. A stale entry
  // at the queue front can only make the sleeping loop wake EARLY (it
  // discards and re-waits), so cancel never needs a notify.
  bool erased = live_.erase(id) > 0;
  if (erased && depthGauge_ != nullptr) {
    depthGauge_->set(static_cast<double>(live_.size()));
  }
  return erased;
}

bool RealTimeExecutor::onLoopThread() const {
  auto id = loopThread_.load(std::memory_order_acquire);
  return id == std::thread::id{} || id == std::this_thread::get_id();
}

void RealTimeExecutor::start() {
  MutexLock lk(mu_);
  if (loopRunning_) return;
  stopping_ = false;
  loopRunning_ = true;
  thread_ = std::thread([this] { loop(); });
  // Stamp the affinity before start() returns: an engine call from the
  // spawning thread racing the loop's first instruction is already a bug
  // the checker must see.
  loopThread_.store(thread_.get_id(), std::memory_order_release);
}

void RealTimeExecutor::stop() {
  std::thread toJoin;
  {
    MutexLock lk(mu_);
    if (!loopRunning_) return;
    assert(std::this_thread::get_id() != thread_.get_id());
    // Claim the shutdown under the lock (and take the thread handle with
    // it): a concurrent second stop() returns immediately instead of
    // racing into a double join.
    loopRunning_ = false;
    stopping_ = true;
    // Drain cutoff: tasks due by THIS instant still run; a draining task
    // that posts more immediate work cannot extend the shutdown forever.
    stopDeadline_ = now();
    cv_.notify_one();
    toJoin = std::move(thread_);
  }
  if (toJoin.joinable()) toJoin.join();
  // The loop thread is gone: from here on the engine is quiescent and
  // onLoopThread() answers true for everyone (see header).
  loopThread_.store(std::thread::id{}, std::memory_order_release);
  MutexLock lk(mu_);
  // Whatever remains was scheduled past the cutoff: discard.
  while (!queue_.empty()) queue_.pop();
  live_.clear();
  if (depthGauge_ != nullptr) depthGauge_->set(0.0);
}

bool RealTimeExecutor::running() const {
  MutexLock lk(mu_);
  return loopRunning_ && !stopping_;
}

usize RealTimeExecutor::pending() const {
  MutexLock lk(mu_);
  return live_.size();
}

bool RealTimeExecutor::popDue(Task& out) {
  MutexLock lk(mu_);
  while (true) {
    // Discard entries whose id was cancelled.
    while (!queue_.empty() && live_.count(queue_.top().id) == 0) {
      queue_.pop();
    }
    TimeUs t = now();
    if (!queue_.empty()) {
      TimeUs due = queue_.top().at;
      if (due <= t) {
        if (stopping_ && due > stopDeadline_) return false;
        out = std::move(const_cast<Task&>(queue_.top()));
        queue_.pop();
        live_.erase(out.id);
        if (depthGauge_ != nullptr) {
          depthGauge_->set(static_cast<double>(live_.size()));
        }
        if (waitHist_ != nullptr) waitHist_->record(t - due);
        return true;
      }
      if (stopping_) return false;  // nothing due before the cutoff remains
      // Publish the deadline this wait will expire at on its own:
      // schedule() skips the notify for anything later (see scheduleAt).
      loopWaiting_ = true;
      wakeAt_ = due;
      cv_.wait_for(lk.native(), std::chrono::microseconds(due - t));
      loopWaiting_ = false;
    } else {
      if (stopping_) return false;
      loopWaiting_ = true;
      wakeAt_ = ~TimeUs{0};
      cv_.wait(lk.native());
      loopWaiting_ = false;
    }
  }
}

void RealTimeExecutor::loop() {
  Task task;
  while (popDue(task)) {
    if (runHist_ != nullptr) {
      TimeUs t0 = now();
      task.fn();
      runHist_->record(now() - t0);
    } else {
      task.fn();  // strictly one task at a time: the protocol engine's
    }             // no-concurrent-callbacks guarantee
    task.fn = nullptr;
  }
}

}  // namespace dharma::net
