#pragma once
/// \file executor.hpp
/// \brief The clock/timer seam between the protocol engine and its runtime.
///
/// Every layer above net/ (dht/, cache/, core/) reads time and schedules
/// work exclusively through this interface. Two implementations exist:
///
///  - net::Simulator (alias net::SimExecutor): the deterministic
///    single-threaded virtual-time event loop every experiment runs on —
///    time advances only when events fire, so a seed fixes the whole trace.
///  - net::RealTimeExecutor (net/realtime.hpp): a mutex-protected timer
///    queue drained by a run loop against the monotonic wall clock — the
///    production path, where `schedule(1'500'000, fn)` means 1.5 real
///    seconds.
///
/// The contract is deliberately identical to what the simulator always
/// offered, so protocol code cannot tell which world it runs in:
///
///  - time is an opaque monotonic microsecond count (TimeUs); only
///    differences are meaningful,
///  - callbacks run one at a time (no two callbacks execute concurrently),
///    so single-threaded protocol state needs no locks on either executor,
///  - cancel() of an already-fired or already-cancelled task returns false
///    and does nothing.

#include <cstdint>
#include <functional>

#include "util/types.hpp"

namespace dharma::net {

/// Monotonic time in microseconds. Under the simulator this is virtual
/// time; under RealTimeExecutor it is the steady clock. Only differences
/// between two values from the same executor are meaningful.
using TimeUs = u64;

/// Handle for a scheduled task, usable with Executor::cancel().
using TaskId = u64;

/// Invalid task handle (never returned by schedule; cancel(kNullTask) is a
/// no-op returning false).
constexpr TaskId kNullTask = 0;

/// Clock + timer interface (see file comment for the contract).
class Executor {
 public:
  virtual ~Executor() = default;

  /// Current time in microseconds (virtual or monotonic wall clock).
  virtual TimeUs now() const = 0;

  /// Schedules \p fn to run at now() + delay. Returns a cancellation
  /// handle. Tasks scheduled for the same instant run in schedule order.
  virtual TaskId schedule(TimeUs delay, std::function<void()> fn) = 0;

  /// Schedules \p fn at the absolute time \p at (clamped to now()).
  virtual TaskId scheduleAt(TimeUs at, std::function<void()> fn) = 0;

  /// Cancels a pending task; no-op if it already ran or was cancelled.
  /// Returns true if the task was still pending.
  virtual bool cancel(TaskId id) = 0;

  /// True when the calling thread may touch protocol state owned by this
  /// executor. This is the "engine owned by its executor" contract made
  /// queryable: the Simulator answers true only on its driver thread, the
  /// RealTimeExecutor only on its run-loop thread (or when no loop is
  /// running — a stopped executor means the engine is quiescent, so any
  /// thread may inspect it; that is what lets shutdown paths and
  /// post-stop assertions run from main). The debug-only
  /// DHARMA_ASSERT_AFFINITY macro (net/affinity.hpp) turns a false answer
  /// into a loud abort at the offending call site. The base default is
  /// permissive: an executor without thread affinity constrains nothing.
  virtual bool onLoopThread() const { return true; }
};

}  // namespace dharma::net
