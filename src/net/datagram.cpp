#include "net/datagram.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>

#include <cstdlib>

#include "net/epoll_transport.hpp"
#include "net/udp_transport.hpp"

namespace dharma::net {

std::optional<u32> parseIpv4Host(const std::string& host) {
  in_addr a{};
  const std::string& h = host == "localhost" ? std::string("127.0.0.1") : host;
  if (inet_pton(AF_INET, h.c_str(), &a) != 1) return std::nullopt;
  return ntohl(a.s_addr);
}

PeerResolution DatagramTransport::resolvePeer(
    const std::string& hostPort) const {
  PeerResolution res;
  auto colon = hostPort.rfind(':');
  std::string host = colon == std::string::npos ? config().bindHost
                                                : hostPort.substr(0, colon);
  std::string portStr =
      colon == std::string::npos ? hostPort : hostPort.substr(colon + 1);
  auto ip = parseIpv4Host(host);
  if (!ip) {
    res.error = PeerResolution::Error::kBadHost;
    return res;
  }
  char* end = nullptr;
  long port = std::strtol(portStr.c_str(), &end, 10);
  if (end == portStr.c_str() || *end != '\0' || port <= 0 || port > 65535) {
    res.error = PeerResolution::Error::kBadPort;
    return res;
  }
  res.addr = makeAddress(*ip, static_cast<u16>(port));
  return res;
}

std::optional<NetBackend> parseNetBackend(const std::string& name) {
  if (name == "poll") return NetBackend::kPoll;
  if (name == "epoll") return NetBackend::kEpoll;
  return std::nullopt;
}

const char* netBackendName(NetBackend b) {
  switch (b) {
    case NetBackend::kPoll: return "poll";
    case NetBackend::kEpoll: return "epoll";
  }
  return "unknown";
}

bool netBackendAvailable(NetBackend b) {
#ifdef __linux__
  (void)b;
  return true;
#else
  return b == NetBackend::kPoll;
#endif
}

NetBackend defaultNetBackend() {
#ifdef __linux__
  return NetBackend::kEpoll;
#else
  return NetBackend::kPoll;
#endif
}

std::unique_ptr<DatagramTransport> makeDatagramTransport(NetBackend backend,
                                                         Executor& defaultExec,
                                                         UdpConfig cfg) {
  switch (backend) {
    case NetBackend::kPoll:
      return std::make_unique<UdpTransport>(defaultExec, std::move(cfg));
    case NetBackend::kEpoll:
#ifdef __linux__
      return std::make_unique<EpollTransport>(defaultExec, std::move(cfg));
#else
      break;
#endif
  }
  throw std::invalid_argument(
      std::string("makeDatagramTransport: backend '") + netBackendName(backend) +
      "' is not available on this platform");
}

}  // namespace dharma::net
