#include "net/sharded.hpp"

#include <string>

#include "obs/registry.hpp"

namespace dharma::net {

ShardedExecutor::ShardedExecutor(Config cfg) {
  usize n = cfg.shards == 0 ? 1 : cfg.shards;
  shards_.reserve(n);
  for (usize i = 0; i < n; ++i) {
    auto ex = std::make_unique<RealTimeExecutor>();
    if (cfg.metrics != nullptr) {
      obs::Labels labels{{"shard", std::to_string(i)}};
      ex->setObs(
          &cfg.metrics->histogram("dharma_node_shard_task_run_us",
                                  "Executor callback run time per shard "
                                  "(microseconds)",
                                  labels),
          &cfg.metrics->histogram("dharma_node_shard_task_wait_us",
                                  "Scheduling lag past the task deadline per "
                                  "shard (microseconds)",
                                  labels),
          &cfg.metrics->gauge("dharma_node_shard_queue_depth",
                              "Live (pending) tasks in the shard's queue",
                              labels));
    }
    shards_.push_back(std::move(ex));
  }
}

ShardedExecutor::~ShardedExecutor() { stop(); }

void ShardedExecutor::start() {
  for (auto& s : shards_) s->start();
}

void ShardedExecutor::stop() {
  for (auto& s : shards_) s->stop();
}

bool ShardedExecutor::running() const {
  for (const auto& s : shards_) {
    if (!s->running()) return false;
  }
  return true;
}

usize ShardedExecutor::pendingTotal() const {
  usize total = 0;
  for (const auto& s : shards_) total += s->pending();
  return total;
}

}  // namespace dharma::net
