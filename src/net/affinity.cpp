#include "net/affinity.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

namespace dharma::net {

namespace {
std::atomic<AffinityFailureHandler> g_handler{nullptr};
}  // namespace

AffinityFailureHandler setAffinityFailureHandler(AffinityFailureHandler h) {
  return g_handler.exchange(h);
}

void affinityCheckFailed(const char* site) {
  if (AffinityFailureHandler h = g_handler.load()) {
    h(site);
    return;
  }
  std::ostringstream tid;
  tid << std::this_thread::get_id();
  std::fprintf(stderr,
               "DHARMA_ASSERT_AFFINITY failed at %s: engine state touched "
               "from thread %s, which is not its executor's loop thread\n",
               site, tid.str().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace dharma::net
