#include "net/simulator.hpp"

namespace dharma::net {

TaskId Simulator::schedule(TimeUs delay, std::function<void()> fn) {
  return scheduleAt(now_ + delay, std::move(fn));
}

TaskId Simulator::scheduleAt(TimeUs at, std::function<void()> fn) {
  if (at < now_) at = now_;  // Executor contract: clamp, never run in the past
  u32 slot;
  if (!freeSlots_.empty()) {
    slot = freeSlots_.back();
    freeSlots_.pop_back();
  } else {
    slot = static_cast<u32>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  queue_.push(QEntry{at, nextSeq_++, slot, s.generation});
  ++live_;
  return makeId(slot, s.generation);
}

void Simulator::releaseSlot(u32 slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  s.live = false;
  ++s.generation;
  --live_;
  freeSlots_.push_back(slot);
}

bool Simulator::cancel(TaskId id) {
  if (id == kNullTask) return false;
  u32 slot = static_cast<u32>(id & 0xffffffffu) - 1;
  u32 generation = static_cast<u32>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || s.generation != generation) return false;
  releaseSlot(slot);
  // The QEntry stays in the heap; skipDead() discards it by its stale
  // generation when it reaches the top.
  return true;
}

bool Simulator::skipDead() {
  while (!queue_.empty()) {
    const QEntry& e = queue_.top();
    const Slot& s = slots_[e.slot];
    if (s.live && s.generation == e.generation) return true;
    queue_.pop();  // cancelled (or the slot moved on to a later event)
  }
  return false;
}

bool Simulator::step() {
  if (!skipDead()) return false;
  QEntry e = queue_.top();
  queue_.pop();
  now_ = e.at;
  // Move the callback out and free the slot before running, so the
  // callback may reschedule (possibly reusing this very slot under a fresh
  // generation).
  std::function<void()> fn = std::move(slots_[e.slot].fn);
  releaseSlot(e.slot);
  ++executed_;
  fn();
  return true;
}

usize Simulator::run(usize maxEvents) {
  usize n = 0;
  while (n < maxEvents && step()) ++n;
  return n;
}

usize Simulator::runUntil(SimTime t) {
  usize n = 0;
  while (skipDead()) {
    if (queue_.top().at > t) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace dharma::net
