#include "net/simulator.hpp"

#include <cassert>

namespace dharma::net {

EventId Simulator::schedule(SimTime delay, std::function<void()> fn) {
  return scheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::scheduleAt(SimTime at, std::function<void()> fn) {
  assert(at >= now_);
  EventId id = nextId_++;
  queue_.push(QEntry{at, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::cancel(EventId id) { return callbacks_.erase(id) > 0; }

bool Simulator::step() {
  while (!queue_.empty()) {
    QEntry e = queue_.top();
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) {
      queue_.pop();  // cancelled
      continue;
    }
    queue_.pop();
    now_ = e.at;
    // Move the callback out before erasing so it may reschedule itself.
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

usize Simulator::run(usize maxEvents) {
  usize n = 0;
  while (n < maxEvents && step()) ++n;
  return n;
}

usize Simulator::runUntil(SimTime t) {
  usize n = 0;
  while (!queue_.empty()) {
    QEntry e = queue_.top();
    if (callbacks_.find(e.id) == callbacks_.end()) {
      queue_.pop();
      continue;
    }
    if (e.at > t) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace dharma::net
