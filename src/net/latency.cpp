#include "net/latency.hpp"

#include <algorithm>
#include <cmath>

namespace dharma::net {

SimTime LogNormalLatency::sample(Rng& rng) {
  double v = std::exp(rng.normal(mu_, sigma_));
  SimTime t = static_cast<SimTime>(v);
  return std::clamp(t, minUs_, maxUs_);
}

}  // namespace dharma::net
