#pragma once
/// \file epoll_transport.hpp
/// \brief Linux batched-I/O UDP backend: epoll + recvmmsg/sendmmsg.
///
/// The throughput backend behind the DatagramTransport seam (Linux only;
/// the portable poll() backend is net/udp_transport.hpp). Three things
/// distinguish it from the poll backend, each attacking a per-datagram
/// cost the throughput bench showed dominating the runtime:
///
///  1. **epoll instead of a poll() set rebuild.** One event thread blocks
///     in epoll_wait(-1) with every endpoint socket registered once; a new
///     endpoint is one epoll_ctl, not a wakeup plus a full fd-set
///     re-snapshot per cycle.
///  2. **Batched receive, batched delivery.** A ready socket is drained
///     with recvmmsg (up to 32 datagrams per syscall) and each drained
///     batch is posted to the endpoint's executor as ONE task that runs
///     the handler over the whole batch — one queue push, one futex
///     round-trip, one context switch per batch instead of per datagram.
///     With a ShardedExecutor the batch lands on the owning node's shard,
///     so the one-callback-at-a-time world is preserved per endpoint.
///  3. **Send coalescing.** send() never touches the socket: it appends to
///     a queue and (only when the queue was empty) wakes the event thread
///     via eventfd; the event thread flushes the queue with sendmmsg,
///     grouping consecutive same-source runs. Protocol callbacks answering
///     an RPC burst pay one eventfd write for the whole burst, and sendto
///     syscalls collapse ~batch-fold. It also means ONLY the event thread
///     performs socket I/O — sockets are closed strictly after that thread
///     joins, so no send can race a close into a recycled fd (the poll
///     backend holds the global lock across sendto for the same reason;
///     here the lock covers only the queue append).
///
/// Everything protocol-visible — addressing, MTU rejection, partition
/// rules, stats vocabulary — matches the poll backend; the transport
/// conformance suite runs over both. The one observable difference is
/// documented on UdpStats::sent: acceptance by the kernel happens a queue
/// hop after send() returns.

#ifdef __linux__

#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/datagram.hpp"
#include "net/executor.hpp"
#include "util/thread_annotations.hpp"

namespace dharma::obs {
class Histogram;
}  // namespace dharma::obs

namespace dharma::net {

/// Linux epoll/recvmmsg/sendmmsg transport (see file comment).
class EpollTransport final : public DatagramTransport {
 public:
  using Config = UdpConfig;

  /// \param defaultExec delivery executor for endpoints registered without
  ///                    an explicit one. Must be thread-safe
  ///                    (RealTimeExecutor): the event thread posts to it.
  EpollTransport(Executor& defaultExec, UdpConfig cfg);
  explicit EpollTransport(Executor& defaultExec)
      : EpollTransport(defaultExec, UdpConfig{}) {}

  /// Closes every socket and joins the event thread.
  ~EpollTransport() override;

  EpollTransport(const EpollTransport&) = delete;
  EpollTransport& operator=(const EpollTransport&) = delete;

  // Transport
  Address registerEndpoint(ReceiveHandler handler) override;
  /// Binds a fresh UDP socket on an ephemeral port and routes its receive
  /// batches to \p deliverTo — the sharding hook (each node passes its own
  /// shard). Starts the event thread on first call.
  Address registerEndpoint(ReceiveHandler handler,
                           Executor& deliverTo) override;
  void setHandler(Address a, ReceiveHandler handler) override;
  /// Queues the datagram for the event thread's next sendmmsg flush (see
  /// file comment). The usual synchronous rejections (oversize, unknown or
  /// closed local endpoint) still return false here; kernel-level send
  /// failures surface only in stats().sendErrors.
  bool send(Address from, Address to, std::vector<u8> payload) override;
  bool isOnline(Address a) const override;
  usize mtuBytes() const override { return cfg_.mtuBytes; }

  // DatagramTransport
  void dropPeer(Address peer) override;
  bool undropPeer(Address peer) override;
  usize clearDroppedPeers() override;
  usize droppedPeerCount() const override;
  void close() override;
  UdpStats stats() const override;
  const UdpConfig& config() const override { return cfg_; }

 private:
  struct Endpoint {
    int fd = -1;
    ReceiveHandler handler;
    Executor* exec = nullptr;  ///< where this endpoint's batches run
  };
  /// One queued outbound datagram; fd is the source endpoint's socket,
  /// valid until close() (sockets outlive the event thread by design).
  struct SendItem {
    int fd = -1;
    Address to = kNullAddress;
    std::vector<u8> payload;
  };

  /// State reachable from executor-posted delivery tasks. Held by
  /// shared_ptr and captured as weak_ptr in those tasks, exactly like the
  /// poll backend: a batch still queued on some shard when the transport
  /// dies locks nothing stale. Nothing here references the transport.
  struct Shared {
    Mutex mu;
    std::unordered_map<Address, Endpoint> endpoints GUARDED_BY(mu);
    std::unordered_set<Address> dropPeers GUARDED_BY(mu);
    UdpStats stats GUARDED_BY(mu);
    std::vector<SendItem> sendQueue GUARDED_BY(mu);
    bool closing GUARDED_BY(mu) = false;
  };

  void eventLoop();
  /// sendmmsg-flushes \p items (event thread only; takes sh_->mu only to
  /// fold the counters in at the end).
  void flushSends(std::vector<SendItem>& items);
  void wakeEventThread();

  Executor& defaultExec_;
  UdpConfig cfg_;
  u32 bindIp_ = 0;  ///< cfg_.bindHost parsed once, host byte order

  // Created in the constructor, closed in close() strictly after the event
  // thread joins — effectively const for the thread's whole lifetime, so
  // unguarded reads from it and from send() are safe.
  int epollFd_ = -1;
  int wakeFd_ = -1;  ///< eventfd: send-queue wakeups and close()

  // Pre-resolved histogram handles (null when cfg_.metrics is unset);
  // lock-free, recorded from the event thread.
  obs::Histogram* sendHist_ = nullptr;
  obs::Histogram* recvBatchHist_ = nullptr;
  obs::Histogram* recvBatchUsHist_ = nullptr;

  std::shared_ptr<Shared> sh_ = std::make_shared<Shared>();
  bool threadStarted_ GUARDED_BY(sh_->mu) = false;
  std::thread thread_ GUARDED_BY(sh_->mu);
};

}  // namespace dharma::net

#endif  // __linux__
