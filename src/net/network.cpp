#include "net/network.hpp"

#include <cassert>
#include <utility>

namespace dharma::net {

Network::Network(Simulator& sim, LatencyModel& latency, Config cfg, u64 seed)
    : sim_(sim), latency_(latency), cfg_(cfg), rng_(seed) {}

Address Network::registerEndpoint(ReceiveHandler handler) {
  endpoints_.push_back(Endpoint{std::move(handler), true});
  return static_cast<Address>(endpoints_.size() - 1);
}

void Network::setOnline(Address a, bool online) {
  assert(a < endpoints_.size());
  endpoints_[a].online = online;
}

bool Network::isOnline(Address a) const {
  return a < endpoints_.size() && endpoints_[a].online;
}

void Network::setHandler(Address a, ReceiveHandler handler) {
  assert(a < endpoints_.size());
  endpoints_[a].handler = std::move(handler);
}

bool Network::send(Address from, Address to, std::vector<u8> payload) {
  ++stats_.sent;
  if (payload.size() > cfg_.mtuBytes) {
    ++stats_.droppedOversize;
    return false;
  }
  stats_.bytesSent += payload.size();
  if (cfg_.lossRate > 0.0 && rng_.bernoulli(cfg_.lossRate)) {
    ++stats_.droppedLoss;
    return true;  // accepted by the network, silently lost
  }
  SimTime delay = latency_.sample(rng_);
  sim_.schedule(delay, [this, from, to, data = std::move(payload)]() {
    if (to >= endpoints_.size() || !endpoints_[to].online ||
        !endpoints_[to].handler) {
      ++stats_.droppedDead;
      return;
    }
    ++stats_.delivered;
    endpoints_[to].handler(from, data);
  });
  return true;
}

}  // namespace dharma::net
