#pragma once
/// \file datagram.hpp
/// \brief The UDP-socket transport family: one interface, pluggable event
/// backends.
///
/// PR 5 built one production transport (UdpTransport: a poll()-based
/// receive thread). Breaking the single-loop throughput ceiling needs a
/// second one — EpollTransport, a Linux event loop draining sockets with
/// batched recvmmsg and coalescing sends via sendmmsg — without the
/// daemons, benches, or the cluster harness caring which one they hold.
/// This header is that seam (the same shape lokinet's llarp/ev/ uses for
/// its epoll/kqueue/libuv backends): DatagramTransport extends Transport
/// with the socket-world surface every backend shares (typed peer
/// resolution, partition fault injection, traffic counters, explicit
/// close), NetBackend names the selectable implementations, and
/// makeDatagramTransport() is the one switch point.
///
/// Shared vocabulary types (TransportError, UdpStats, PeerResolution,
/// UdpConfig) live here so both backends — and any future io_uring one —
/// speak identical failure and stats language.

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "net/transport.hpp"
#include "util/types.hpp"

namespace dharma::obs {
class MetricsRegistry;
}  // namespace dharma::obs

namespace dharma::net {

/// Typed transport startup/teardown failure. Daemons catch this at boot,
/// print one line naming the kind ("bad-address: ..."), and exit with
/// status 2 — the startup-failure exit code, distinct from protocol errors
/// (1) and clean runs (0) — instead of aborting through an unhandled
/// exception. kind() is stable; what() carries the human detail.
class TransportError : public std::runtime_error {
 public:
  enum class Kind : u8 {
    kBadAddress,    ///< bind host is not a numeric IPv4 / "localhost"
    kSocketFailed,  ///< socket()/pipe()/eventfd()/epoll resource failure
    kBindFailed,    ///< bind()/getsockname() on an endpoint socket
    kClosed,        ///< operation on an already-closed transport
  };

  TransportError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  Kind kind() const { return kind_; }

  const char* kindName() const {
    switch (kind_) {
      case Kind::kBadAddress: return "bad-address";
      case Kind::kSocketFailed: return "socket-failed";
      case Kind::kBindFailed: return "bind-failed";
      case Kind::kClosed: return "transport-closed";
    }
    return "unknown";
  }

 private:
  Kind kind_;
};

/// Aggregate traffic counters (mirrors NetworkStats where meaningful).
/// `sent` means accepted by sendto()/sendmmsg(); on the epoll backend that
/// happens on the event thread, a queue hop after send() returned — the
/// datagram-network contract ("an attempt, not delivery") already allows
/// the gap.
struct UdpStats {
  u64 sent = 0;             ///< datagrams accepted by the kernel send call
  u64 received = 0;         ///< datagrams handed to an endpoint handler
  u64 droppedOversize = 0;  ///< payload exceeded the MTU
  u64 sendErrors = 0;       ///< kernel send call failed
  u64 bytesSent = 0;        ///< total payload bytes accepted
  u64 droppedByRule = 0;    ///< discarded by a dropPeer() partition rule
};

/// Typed outcome of DatagramTransport::resolvePeer. A failed resolution
/// names WHICH part of the spec was bad instead of collapsing to a silent
/// null address.
struct PeerResolution {
  enum class Error : u8 {
    kNone = 0,
    kBadHost,  ///< host part is not a numeric IPv4 (or "localhost")
    kBadPort,  ///< port part missing, non-numeric, or outside 1..65535
  };

  Address addr = kNullAddress;
  Error error = Error::kNone;

  bool ok() const { return error == Error::kNone; }

  const char* errorName() const {
    switch (error) {
      case Error::kNone: return "ok";
      case Error::kBadHost: return "bad-host";
      case Error::kBadPort: return "bad-port";
    }
    return "unknown";
  }
};

/// Configuration shared by every UDP backend.
struct UdpConfig {
  std::string bindHost = "127.0.0.1";  ///< local interface for sockets
  usize mtuBytes = 1400;               ///< payload cap, as in the paper
  /// Optional metrics sink: when set, backends record `dharma_udp_send_us`
  /// (kernel send latency) and `dharma_udp_recv_batch_datagrams` /
  /// `dharma_udp_recv_batch_us` per drained receive batch. Must outlive
  /// the transport; null disables at one-branch cost.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Transport over real UDP sockets, whatever the event backend. Extends
/// the protocol-facing Transport contract with the operational surface the
/// daemons and the cluster harness script against.
class DatagramTransport : public Transport {
 public:
  /// Resolves a peer spec — "ip:port", "localhost:port", or a bare port
  /// (host defaults to the bind host) — to a packed Address. Any numeric
  /// IPv4 is accepted; a non-numeric host or out-of-range port yields the
  /// matching typed error, never a silent null.
  PeerResolution resolvePeer(const std::string& hostPort) const;

  /// Partition fault injection: silently discard every datagram sent to or
  /// received from \p peer until undropPeer()/clearDroppedPeers().
  virtual void dropPeer(Address peer) = 0;

  /// Removes one drop rule; returns true if it was present.
  virtual bool undropPeer(Address peer) = 0;

  /// Removes every drop rule; returns how many were installed.
  virtual usize clearDroppedPeers() = 0;

  /// Number of drop rules currently installed.
  virtual usize droppedPeerCount() const = 0;

  /// Stops the event/receive machinery and closes every socket
  /// (idempotent; destructors call it). In-flight handler tasks already
  /// posted to an executor still run. Must return promptly — wakeups are
  /// event-driven, so close() never waits out a poll timeout.
  virtual void close() = 0;

  virtual UdpStats stats() const = 0;

  /// The backend's shared configuration (bind host, MTU, metrics sink).
  virtual const UdpConfig& config() const = 0;
};

/// Selectable event backend behind DatagramTransport.
enum class NetBackend : u8 {
  kPoll,   ///< portable poll() receive thread (UdpTransport)
  kEpoll,  ///< Linux epoll + recvmmsg/sendmmsg (EpollTransport)
};

/// Parses "poll"/"epoll"; nullopt on anything else.
std::optional<NetBackend> parseNetBackend(const std::string& name);

const char* netBackendName(NetBackend b);

/// True when this build can instantiate the backend (kEpoll is
/// Linux-only; kPoll always works).
bool netBackendAvailable(NetBackend b);

/// The preferred backend on this platform: kEpoll where available (the
/// batched fast path), kPoll elsewhere.
NetBackend defaultNetBackend();

/// Instantiates \p backend. \p defaultExec is where deliveries for
/// endpoints registered without an explicit executor are posted (and must
/// be thread-safe — a RealTimeExecutor). Throws TransportError
/// (kBadAddress/kSocketFailed) like the concrete constructors; requesting
/// an unavailable backend throws std::invalid_argument — callers gate on
/// netBackendAvailable() first.
std::unique_ptr<DatagramTransport> makeDatagramTransport(NetBackend backend,
                                                         Executor& defaultExec,
                                                         UdpConfig cfg);

/// Parses a dotted-quad IPv4 (or the "localhost" alias) into host byte
/// order; nullopt on anything else. Numeric addresses only — no DNS.
std::optional<u32> parseIpv4Host(const std::string& host);

}  // namespace dharma::net
