#pragma once
/// \file latency.hpp
/// \brief One-way latency models for the simulated overlay.
///
/// Internet-scale DHT studies conventionally use a heavy-ish-tailed RTT
/// distribution; we provide constant (unit tests), uniform, and log-normal
/// (default for experiments, median ~50 ms) models.

#include <memory>

#include "net/simulator.hpp"
#include "util/rng.hpp"

namespace dharma::net {

/// Strategy interface: draws one one-way message latency.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way latency in microseconds.
  virtual SimTime sample(Rng& rng) = 0;
};

/// Fixed latency (deterministic tests).
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(SimTime us) : us_(us) {}
  SimTime sample(Rng&) override { return us_; }

 private:
  SimTime us_;
};

/// Uniform latency in [lo, hi] microseconds.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {}
  SimTime sample(Rng& rng) override {
    return lo_ + static_cast<SimTime>(rng.uniform(hi_ - lo_ + 1));
  }

 private:
  SimTime lo_, hi_;
};

/// Log-normal latency: exp(N(mu, sigma)) microseconds, clamped to
/// [minUs, maxUs]. Defaults give a ~50 ms median with a long tail.
class LogNormalLatency final : public LatencyModel {
 public:
  LogNormalLatency(double mu = 10.8, double sigma = 0.5, SimTime minUs = 1000,
                   SimTime maxUs = 2000000)
      : mu_(mu), sigma_(sigma), minUs_(minUs), maxUs_(maxUs) {}
  SimTime sample(Rng& rng) override;

 private:
  double mu_, sigma_;
  SimTime minUs_, maxUs_;
};

}  // namespace dharma::net
