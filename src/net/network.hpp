#pragma once
/// \file network.hpp
/// \brief Simulated UDP-like datagram network (the SimTransport).
///
/// Endpoints register a receive handler and get an Address. send() draws a
/// latency from the configured model, applies the loss rate, enforces the
/// MTU (the paper: "overlay messages are sent on UDP packets, the limited
/// payload force to send only a subset" — oversize datagrams are dropped
/// and counted so the index-side filtering ablation can observe them), and
/// schedules delivery on the simulator.

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/latency.hpp"
#include "net/simulator.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dharma::net {

/// Aggregate traffic counters.
struct NetworkStats {
  u64 sent = 0;            ///< datagrams handed to send()
  u64 delivered = 0;       ///< datagrams that reached a live handler
  u64 droppedLoss = 0;     ///< lost to the random loss process
  u64 droppedOversize = 0; ///< payload exceeded the MTU
  u64 droppedDead = 0;     ///< destination offline at delivery time
  u64 bytesSent = 0;       ///< total payload bytes accepted into the network
};

/// Simulated datagram network.
class Network final : public Transport {
 public:
  struct Config {
    double lossRate = 0.0;   ///< independent per-datagram loss probability
    usize mtuBytes = 1400;   ///< max payload; larger datagrams are dropped
  };

  /// \param sim     event loop to schedule deliveries on
  /// \param latency one-way latency model (owned by caller, must outlive)
  /// \param cfg     loss/MTU parameters
  /// \param seed    seed for the latency/loss random stream
  Network(Simulator& sim, LatencyModel& latency, Config cfg, u64 seed);

  /// Registers an endpoint; the returned Address is never reused.
  Address registerEndpoint(ReceiveHandler handler) override;

  /// Marks an endpoint offline; in-flight datagrams to it are dropped at
  /// delivery time (counted under droppedDead). Sim-only (scripted churn):
  /// not part of the Transport interface.
  void setOnline(Address a, bool online);

  /// True if the endpoint currently accepts datagrams.
  bool isOnline(Address a) const override;

  /// Replaces the handler (used when a node restarts with fresh state).
  void setHandler(Address a, ReceiveHandler handler) override;

  /// Sends \p payload from \p from to \p to. Returns false if the datagram
  /// was dropped synchronously (oversize); loss and dead-destination drops
  /// happen at delivery time.
  bool send(Address from, Address to, std::vector<u8> payload) override;

  usize mtuBytes() const override { return cfg_.mtuBytes; }

  const NetworkStats& stats() const { return stats_; }
  const Config& config() const { return cfg_; }
  Simulator& simulator() { return sim_; }

 private:
  struct Endpoint {
    ReceiveHandler handler;
    bool online = true;
  };

  Simulator& sim_;
  LatencyModel& latency_;
  Config cfg_;
  Rng rng_;
  std::vector<Endpoint> endpoints_;
  NetworkStats stats_;
};

/// The deterministic Transport implementation (see net/transport.hpp).
using SimTransport = Network;

}  // namespace dharma::net
