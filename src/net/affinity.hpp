#pragma once
/// \file affinity.hpp
/// \brief Debug-only executor-affinity assertions for the protocol engine.
///
/// The engine (KademliaNode, MaintenanceManager, RecordCache, the client's
/// engine-side paths) is deliberately lock-free: its correctness rests on
/// the Executor contract that all protocol callbacks run one at a time on
/// the executor's loop thread. That contract is prose — until here. Engine
/// objects record their owning executor and stamp their entry points with
///
///   DHARMA_ASSERT_AFFINITY(exec_, "KademliaNode::put");
///
/// which, in debug builds, dies loudly (message + abort) the moment any
/// thread that is not the executor's loop thread calls in. A wrong-thread
/// engine call is a data race in the making — with sharded executors on
/// the roadmap, the checker turns tomorrow's silent cross-shard race into
/// today's assertion with a call-site name on it.
///
/// Release builds (NDEBUG) compile the checks out entirely: the macro
/// expands to a no-op, entry points pay nothing. Override with
/// -DDHARMA_AFFINITY_CHECKS=0/1 to force either mode.
///
/// "Loop thread" is Executor::onLoopThread(): the simulator's driver
/// thread, the RealTimeExecutor's run-loop thread — or ANY thread while no
/// loop is running, because a stopped executor means a quiescent engine
/// (see net/executor.hpp). Tests override the failure handler to observe
/// trips without dying.

#include "net/executor.hpp"

#ifndef DHARMA_AFFINITY_CHECKS
#ifdef NDEBUG
#define DHARMA_AFFINITY_CHECKS 0
#else
#define DHARMA_AFFINITY_CHECKS 1
#endif
#endif

namespace dharma::net {

/// Called when an affinity assertion trips; receives the annotated call
/// site (e.g. "KademliaNode::put"). The default handler prints the site
/// and thread id to stderr and aborts.
using AffinityFailureHandler = void (*)(const char* site);

/// Installs \p handler (nullptr restores the abort default) and returns
/// the previous one. Test hook: a test proves a wrong-thread call trips
/// the check by installing a recording handler — if the handler returns,
/// execution continues into the (racy) engine call, so recording tests
/// must target otherwise-idle objects.
AffinityFailureHandler setAffinityFailureHandler(AffinityFailureHandler h);

/// Reports a tripped assertion: invokes the installed handler, or prints
/// and aborts if none is installed.
void affinityCheckFailed(const char* site);

/// Assertion bodies behind DHARMA_ASSERT_AFFINITY. The pointer overload
/// treats null as "no owner bound yet" and checks nothing — a RecordCache
/// used standalone in unit tests stays assertion-free until bindOwner().
inline void assertExecutorAffinity(const Executor& exec, const char* site) {
  if (!exec.onLoopThread()) affinityCheckFailed(site);
}
inline void assertExecutorAffinity(const Executor* exec, const char* site) {
  if (exec != nullptr && !exec->onLoopThread()) affinityCheckFailed(site);
}

}  // namespace dharma::net

#if DHARMA_AFFINITY_CHECKS
#define DHARMA_ASSERT_AFFINITY(exec, site) \
  ::dharma::net::assertExecutorAffinity((exec), (site))
#else
#define DHARMA_ASSERT_AFFINITY(exec, site) ((void)0)
#endif
