#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>

#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "util/logging.hpp"

namespace dharma::net {

namespace {

/// Records wall microseconds into \p h on scope exit; inert when null.
/// Uses steady_clock directly (not the Executor): these timings run on the
/// receive thread and arbitrary sender threads, and UdpTransport only ever
/// exists under real time anyway.
struct ScopedTimer {
  obs::Histogram* h;
  std::chrono::steady_clock::time_point t0;
  explicit ScopedTimer(obs::Histogram* hist)
      : h(hist),
        t0(hist != nullptr ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (h == nullptr) return;
    auto dt = std::chrono::steady_clock::now() - t0;
    h->record(static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(dt).count()));
  }
};
/// Max UDP datagram we ever expect; recvfrom truncates beyond this, which
/// is fine because anything above the MTU would be rejected by decode
/// anyway (envelopes are far smaller than the MTU + slack).
constexpr usize kRecvBufBytes = 65536;

sockaddr_in makeSockAddr(u32 ipHostOrder, u16 port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(ipHostOrder);
  return sa;
}
}  // namespace

UdpTransport::UdpTransport(Executor& exec, Config cfg)
    : exec_(exec), cfg_(std::move(cfg)) {
  auto ip = parseIpv4Host(cfg_.bindHost);
  if (!ip) {
    throw TransportError(TransportError::Kind::kBadAddress,
                         "UdpTransport: bad bind host '" + cfg_.bindHost + "'");
  }
  bindIp_ = *ip;
  if (cfg_.metrics != nullptr) {
    sendHist_ = &cfg_.metrics->histogram(
        "dharma_udp_send_us",
        "UDP sendto() latency including the transport lock (microseconds)",
        {});
    recvBatchHist_ = &cfg_.metrics->histogram(
        "dharma_udp_recv_batch_datagrams",
        "Datagrams drained per ready-socket receive batch", {});
    recvBatchUsHist_ = &cfg_.metrics->histogram(
        "dharma_udp_recv_batch_us",
        "Time to drain one ready-socket receive batch (microseconds)", {});
  }
  if (pipe(wakePipe_) != 0) {
    throw TransportError(TransportError::Kind::kSocketFailed,
                         "UdpTransport: pipe() failed");
  }
  fcntl(wakePipe_[0], F_SETFL, O_NONBLOCK);
  fcntl(wakePipe_[1], F_SETFL, O_NONBLOCK);
}

UdpTransport::UdpTransport(Executor& exec) : UdpTransport(exec, Config{}) {}

UdpTransport::~UdpTransport() { close(); }

void UdpTransport::wakeReceiver() {
  u8 b = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], &b, 1);
}

Address UdpTransport::registerEndpoint(ReceiveHandler handler) {
  return registerEndpoint(std::move(handler), exec_);
}

Address UdpTransport::registerEndpoint(ReceiveHandler handler,
                                       Executor& deliverTo) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    throw TransportError(TransportError::Kind::kSocketFailed,
                         "UdpTransport: socket() failed");
  }
  // Non-blocking: the receive loop drains each ready socket until
  // EWOULDBLOCK instead of taking one datagram per poll cycle.
  fcntl(fd, F_SETFL, O_NONBLOCK);
  sockaddr_in sa = makeSockAddr(bindIp_, 0);  // ephemeral port
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    throw TransportError(TransportError::Kind::kBindFailed,
                         "UdpTransport: bind() failed");
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    ::close(fd);
    throw TransportError(TransportError::Kind::kBindFailed,
                         "UdpTransport: getsockname() failed");
  }
  Address addr = makeAddress(bindIp_, ntohs(sa.sin_port));

  MutexLock lk(sh_->mu);
  if (sh_->closing) {
    ::close(fd);
    throw TransportError(TransportError::Kind::kClosed,
                         "UdpTransport: registerEndpoint after close()");
  }
  sh_->endpoints[addr] = Endpoint{fd, std::move(handler), &deliverTo};
  if (!receiverStarted_) {
    receiverStarted_ = true;
    receiver_ = std::thread([this] { receiveLoop(); });
  } else {
    wakeReceiver();  // pick up the new socket without waiting a poll cycle
  }
  return addr;
}

void UdpTransport::setHandler(Address a, ReceiveHandler handler) {
  MutexLock lk(sh_->mu);
  auto it = sh_->endpoints.find(a);
  if (it != sh_->endpoints.end()) it->second.handler = std::move(handler);
}

bool UdpTransport::send(Address from, Address to, std::vector<u8> payload) {
  ScopedTimer timer(sendHist_);
  if (payload.size() > cfg_.mtuBytes) {
    MutexLock lk(sh_->mu);
    ++sh_->stats.droppedOversize;
    return false;
  }
  sockaddr_in dst = makeSockAddr(addressIp(to), addressPort(to));
  // The sendto happens under the lock: close() closes fds under the same
  // lock, so an fd captured outside it could be recycled by the OS and the
  // datagram written to an unrelated descriptor. A UDP sendto is a buffer
  // copy, not a blocking wait, so holding the mutex across it is cheap.
  MutexLock lk(sh_->mu);
  auto it = sh_->endpoints.find(from);
  if (it == sh_->endpoints.end() || it->second.fd < 0 || sh_->closing) {
    return false;
  }
  if (sh_->dropPeers.count(to)) {
    // Partition rule: the datagram vanishes exactly as it would in a real
    // partition — the send looks accepted, nothing arrives.
    ++sh_->stats.droppedByRule;
    return true;
  }
  ssize_t n = ::sendto(it->second.fd, payload.data(), payload.size(), 0,
                       reinterpret_cast<sockaddr*>(&dst), sizeof(dst));
  if (n < 0) {
    ++sh_->stats.sendErrors;
    return false;
  }
  ++sh_->stats.sent;
  sh_->stats.bytesSent += payload.size();
  return true;
}

bool UdpTransport::isOnline(Address a) const {
  MutexLock lk(sh_->mu);
  if (sh_->closing) return false;
  auto it = sh_->endpoints.find(a);
  // Local endpoints are online while their socket is open; anything else is
  // a remote peer, and remote liveness is the RPC timeout's business.
  return it == sh_->endpoints.end() || it->second.fd >= 0;
}

void UdpTransport::dropPeer(Address peer) {
  MutexLock lk(sh_->mu);
  sh_->dropPeers.insert(peer);
}

bool UdpTransport::undropPeer(Address peer) {
  MutexLock lk(sh_->mu);
  return sh_->dropPeers.erase(peer) > 0;
}

usize UdpTransport::clearDroppedPeers() {
  MutexLock lk(sh_->mu);
  usize n = sh_->dropPeers.size();
  sh_->dropPeers.clear();
  return n;
}

usize UdpTransport::droppedPeerCount() const {
  MutexLock lk(sh_->mu);
  return sh_->dropPeers.size();
}

void UdpTransport::close() {
  std::thread toJoin;
  {
    MutexLock lk(sh_->mu);
    if (sh_->closing) return;
    sh_->closing = true;
    wakeReceiver();
    toJoin = std::move(receiver_);
  }
  if (toJoin.joinable()) toJoin.join();
  MutexLock lk(sh_->mu);
  for (auto& [addr, ep] : sh_->endpoints) {
    if (ep.fd >= 0) ::close(ep.fd);
    ep.fd = -1;
  }
  if (wakePipe_[0] >= 0) ::close(wakePipe_[0]);
  if (wakePipe_[1] >= 0) ::close(wakePipe_[1]);
  wakePipe_[0] = wakePipe_[1] = -1;
}

UdpStats UdpTransport::stats() const {
  MutexLock lk(sh_->mu);
  return sh_->stats;
}

void UdpTransport::receiveLoop() {
  std::vector<u8> buf(kRecvBufBytes);
  std::vector<pollfd> fds;
  std::vector<Address> fdOwner;
  std::vector<Executor*> fdExec;
  while (true) {
    // Snapshot the socket set under the lock; the self-pipe interrupts the
    // poll whenever it changes.
    fds.clear();
    fdOwner.clear();
    fdExec.clear();
    {
      MutexLock lk(sh_->mu);
      if (sh_->closing) return;
      fds.push_back(pollfd{wakePipe_[0], POLLIN, 0});
      fdOwner.push_back(kNullAddress);
      fdExec.push_back(nullptr);
      for (const auto& [addr, ep] : sh_->endpoints) {
        if (ep.fd < 0) continue;
        fds.push_back(pollfd{ep.fd, POLLIN, 0});
        fdOwner.push_back(addr);
        fdExec.push_back(ep.exec);
      }
    }
    // No timeout: every wakeup is event-driven (socket data or the
    // self-pipe, which registerEndpoint and close() write). The old 200 ms
    // tick bought nothing and put a hard floor under stop latency.
    int ready = ::poll(fds.data(), fds.size(), /*timeout ms=*/-1);
    if (ready <= 0) continue;  // EINTR: re-snapshot and retry

    for (usize i = 0; i < fds.size(); ++i) {
      if (!(fds[i].revents & POLLIN)) continue;
      if (fdOwner[i] == kNullAddress) {  // wake pipe: drain it
        // Through the snapshotted fd, not wakePipe_[0]: the member is
        // lock-guarded and this loop is deliberately outside the lock.
        u8 sink[64];
        while (::read(fds[i].fd, sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      // Drain the (non-blocking) socket: one poll readiness can mean many
      // queued datagrams, and re-polling per datagram would put a syscall
      // + snapshot rebuild on the hot path.
      ScopedTimer batchTimer(recvBatchUsHist_);
      u64 batchCount = 0;
      while (true) {
        sockaddr_in src{};
        socklen_t srcLen = sizeof(src);
        ssize_t n = ::recvfrom(fds[i].fd, buf.data(), buf.size(), 0,
                               reinterpret_cast<sockaddr*>(&src), &srcLen);
        if (n <= 0) break;  // EWOULDBLOCK (drained) or error: next socket
        ++batchCount;
        Address srcAddr =
            makeAddress(ntohl(src.sin_addr.s_addr), ntohs(src.sin_port));
        Address dstAddr = fdOwner[i];
        {
          MutexLock lk(sh_->mu);
          if (sh_->dropPeers.count(srcAddr)) {
            // Inbound half of a partition rule: the datagram never
            // happened as far as the protocol can tell.
            ++sh_->stats.droppedByRule;
            continue;
          }
          ++sh_->stats.received;
        }
        auto payload = std::make_shared<std::vector<u8>>(buf.begin(),
                                                         buf.begin() + n);
        // Deliver on the endpoint's executor so the handler runs in the
        // protocol's single-callback world (per shard, under a
        // ShardedExecutor). The handler is looked up at delivery time:
        // setHandler swaps (node restarts) apply to queued datagrams too.
        // The task captures the shared state weakly, never the transport:
        // a delivery still queued when the transport is gone (executor
        // stopped later) locks nothing stale and quietly drops.
        fdExec[i]->schedule(0, [w = std::weak_ptr<Shared>(sh_), dstAddr,
                                srcAddr, payload] {
          std::shared_ptr<Shared> sh = w.lock();
          if (!sh) return;  // transport destroyed; drop the datagram
          ReceiveHandler h;
          {
            MutexLock lk(sh->mu);
            auto it = sh->endpoints.find(dstAddr);
            if (it == sh->endpoints.end() || it->second.fd < 0) return;
            h = it->second.handler;
          }
          if (h) h(srcAddr, *payload);
        });
      }
      if (recvBatchHist_ != nullptr && batchCount > 0) {
        recvBatchHist_->record(batchCount);
      }
    }
  }
}

}  // namespace dharma::net
