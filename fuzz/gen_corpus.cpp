/// \file gen_corpus.cpp
/// \brief Writes the seed corpus for fuzz_envelope_decode.
///
/// One file per RPC type: a well-formed v2 Envelope wrapping a
/// representative body (the same shapes tests/test_rpc_fuzz.cpp uses for
/// its truncation/bit-flip sweeps), plus bare-body seeds for the shared
/// field codecs. Valid seeds matter even without coverage feedback: every
/// mutation round starts from deep inside the accepting region instead of
/// bouncing off the magic-byte gate.
///
/// Usage: fuzz_gen_corpus OUTDIR   (writes OUTDIR/<name>.bin)

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dht/rpc.hpp"

namespace {

using namespace dharma;
using namespace dharma::dht;

crypto::CertificationService cs("fuzz-corpus-secret");

BlockView sampleView() {
  BlockView v;
  for (int i = 0; i < 8; ++i) {
    v.entries.push_back(
        BlockEntry{"entry-" + std::to_string(i), static_cast<u64>(1000 + i)});
  }
  v.payload = "uri://payload";
  v.truncated = true;
  v.totalEntries = 20;
  return v;
}

std::vector<u8> envelope(RpcType type, const std::vector<u8>& body) {
  Envelope e;
  e.type = type;
  e.rpcId = 0x1122334455667788ULL;
  e.sender =
      Contact{NodeId::fromString("corpus-sender"),
              net::makeAddress(0xC0A80142, 41999)};
  e.credential = cs.enroll("corpus-user", 7);
  e.body = body;
  return e.encode();
}

void writeSeed(const std::filesystem::path& dir, const std::string& name,
               const std::vector<u8>& bytes) {
  std::ofstream out(dir / (name + ".bin"), std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("%-28s %4zu bytes\n", name.c_str(), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s OUTDIR\n", argv[0]);
    return 2;
  }
  std::filesystem::path dir(argv[1]);
  std::filesystem::create_directories(dir);

  writeSeed(dir, "ping", envelope(RpcType::kPing, {}));
  writeSeed(dir, "pong", envelope(RpcType::kPong, {}));

  FindNodeReq fn;
  fn.target = NodeId::fromString("target");
  writeSeed(dir, "find_node", envelope(RpcType::kFindNode, fn.encode()));

  ContactsReply cr;
  for (u32 i = 0; i < 10; ++i) {
    cr.contacts.push_back(
        Contact{NodeId::fromString("c" + std::to_string(i)), i});
  }
  writeSeed(dir, "find_node_reply",
            envelope(RpcType::kFindNodeReply, cr.encode()));

  FindValueReq fv;
  fv.key = NodeId::fromString("key");
  fv.topN = 32;
  fv.maxBytes = 1200;
  fv.allowCached = true;
  writeSeed(dir, "find_value", envelope(RpcType::kFindValue, fv.encode()));

  FindValueReply fvrFound;
  fvrFound.found = true;
  fvrFound.cached = true;
  fvrFound.view = sampleView();
  writeSeed(dir, "find_value_reply_found",
            envelope(RpcType::kFindValueReply, fvrFound.encode()));

  FindValueReply fvrMiss;
  fvrMiss.found = false;
  fvrMiss.contacts = cr.contacts;
  writeSeed(dir, "find_value_reply_miss",
            envelope(RpcType::kFindValueReply, fvrMiss.encode()));

  StoreReq st;
  st.key = NodeId::fromString("block");
  st.putId = 77;
  st.chunk = 3;
  for (int i = 0; i < 6; ++i) {
    st.tokens.push_back(StoreToken{TokenKind::kIncrement,
                                   "tag-" + std::to_string(i),
                                   static_cast<u64>(i + 1), ""});
  }
  st.tokens.push_back(StoreToken{TokenKind::kSetPayload, "", 1, "uri://x"});
  st.signature = cs.signContent("alice", st.key.toHex(), st.canonicalBatch());
  writeSeed(dir, "store", envelope(RpcType::kStore, st.encode()));

  StoreReply sr;
  sr.ok = true;
  writeSeed(dir, "store_reply", envelope(RpcType::kStoreReply, sr.encode()));

  StoreCacheReq sc;
  sc.key = NodeId::fromString("cached-block");
  sc.ttlUs = 30'000'000;
  sc.view = sampleView();
  writeSeed(dir, "store_cache", envelope(RpcType::kStoreCache, sc.encode()));

  StoreCacheReply scr;
  scr.ok = true;
  writeSeed(dir, "store_cache_reply",
            envelope(RpcType::kStoreCacheReply, scr.encode()));

  // Bare-codec seeds: the readContact/readBlockView surfaces see raw bytes,
  // not envelopes, so give them in-language starting points too.
  {
    ByteWriter w;
    writeContact(w, Contact{NodeId::fromString("bare-contact"),
                            net::makeAddress(0x0A000001, 9000)});
    writeSeed(dir, "bare_contact", w.take());
  }
  {
    ByteWriter w;
    writeBlockView(w, sampleView());
    writeSeed(dir, "bare_block_view", w.take());
  }
  return 0;
}
