/// \file fuzz_envelope_decode.cpp
/// \brief Persistent fuzz target for the RPC decode trust boundary.
///
/// This is the promotion of tests/test_rpc_fuzz.cpp's ad-hoc random loops
/// into a real coverage-guided harness: under clang the target links
/// against libFuzzer (-fsanitize=fuzzer, cmake -DDHARMA_FUZZ=ON); under
/// gcc — the only toolchain in the CI container for now — the same
/// LLVMFuzzerTestOneInput is driven by standalone_main.cpp, which replays
/// the checked-in corpus and applies deterministic mutations.
///
/// The property is the one the RPC handlers rely on: for ANY byte string,
/// Envelope::decode returns an envelope or nullopt, and the per-type body
/// decoders either succeed or throw DecodeError. Nothing else may escape —
/// no foreign exception, no crash, no OOM from an attacker-chosen count
/// field. Three surfaces are exercised on every input:
///
///   1. Envelope::decode on the whole input; on success, the matching body
///      decoder runs over e.body (exactly what KademliaNode::onDatagram
///      does), and the decoded envelope must survive an encode/decode
///      round trip (canonical-form idempotence).
///   2. readContact on the raw bytes (the routing-table ingestion path).
///   3. readBlockView on the raw bytes (the record-cache ingestion path).

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "dht/rpc.hpp"

namespace {

using namespace dharma;
using namespace dharma::dht;

/// Mirrors the dispatch in KademliaNode::onDatagram: every RpcType that
/// Envelope::decode can emit has its body decoder run here. Success and
/// DecodeError are both clean outcomes; anything else aborts the process
/// (which is precisely what the fuzzer is hunting for).
void decodeBodyFor(const Envelope& e) {
  ByteReader r(e.body);
  switch (e.type) {
    case RpcType::kPing:
    case RpcType::kPong:
      break;  // empty-body RPCs: nothing to parse
    case RpcType::kFindNode:
      FindNodeReq::decode(r);
      break;
    case RpcType::kFindNodeReply:
      ContactsReply::decode(r);
      break;
    case RpcType::kFindValue:
      FindValueReq::decode(r);
      break;
    case RpcType::kFindValueReply:
      FindValueReply::decode(r);
      break;
    case RpcType::kStore:
      StoreReq::decode(r);
      break;
    case RpcType::kStoreReply:
      StoreReply::decode(r);
      break;
    case RpcType::kStoreCache:
      StoreCacheReq::decode(r);
      break;
    case RpcType::kStoreCacheReply:
      StoreCacheReply::decode(r);
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::vector<u8> bytes(data, data + size);

  // Surface 1: the full datagram path.
  if (auto e = Envelope::decode(bytes)) {
    try {
      decodeBodyFor(*e);
    } catch (const DecodeError&) {
      // Malformed body inside a well-formed envelope: the handlers catch
      // exactly this and drop the datagram.
    }
    // Canonical-form idempotence: whatever decode accepted, encode must
    // reproduce a byte string that decodes to the same envelope. A failure
    // here means an accepted wire form the node itself cannot re-emit.
    auto round = Envelope::decode(e->encode());
    if (!round || round->type != e->type || round->rpcId != e->rpcId ||
        !(round->sender.id == e->sender.id) ||
        round->sender.addr != e->sender.addr || round->body != e->body) {
      std::abort();
    }
  }

  // Surfaces 2 and 3: the shared field codecs, fed raw attacker bytes the
  // way a malformed body would feed them.
  try {
    ByteReader r(bytes);
    readContact(r);
  } catch (const DecodeError&) {
  }
  try {
    ByteReader r(bytes);
    readBlockView(r);
  } catch (const DecodeError&) {
  }

  return 0;
}
