/// \file fuzz_http_parse.cpp
/// \brief Persistent fuzz target for the gateway's HTTP/1.1 request parser
/// — the gateway's trust boundary, fed raw attacker bytes from the TCP
/// socket exactly as Connection::readSome feeds it.
///
/// Properties enforced on every input:
///
///   1. Clean rejection: HttpParser::feed never throws, never crashes, and
///      an error state always carries a mapped status (400/413) plus a
///      stable non-empty reason token. No foreign exception may escape —
///      the event loop runs with -fno-exceptions discipline around it.
///   2. Framing determinism: feeding the bytes in two arbitrary fragments
///      yields the same request sequence and the same terminal state as
///      feeding them at once. A parser that disagrees with itself across
///      TCP segmentation would be an instant request-smuggling bug.
///   3. Re-serialize idempotence: every request the parser accepts must
///      round-trip through serializeRequest and parse back IDENTICAL
///      (method, target, headers it keeps, body). What we accept, we can
///      re-emit canonically.
///   4. Feed-after-error stays inert, and the decode helpers
///      (percentDecode, parseQuery) reject or succeed without throwing.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "gateway/http.hpp"

namespace {

using namespace dharma;
using namespace dharma::gateway;

/// Drains every complete request out of \p p after feeding \p data.
/// Returns the terminal parse state.
ParseState run(HttpParser& p, std::string_view data,
               std::vector<HttpRequest>& out) {
  p.feed(data);
  while (p.state() == ParseState::kComplete) out.push_back(p.take());
  return p.state();
}

bool sameRequest(const HttpRequest& a, const HttpRequest& b) {
  return a.method == b.method && a.target == b.target && a.path == b.path &&
         a.query == b.query && a.versionMinor == b.versionMinor &&
         a.body == b.body && a.keepAlive == b.keepAlive &&
         a.headers == b.headers;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);

  // Property 1: one-shot parse, clean rejection only.
  HttpParser whole;
  std::vector<HttpRequest> wholeReqs;
  ParseState wholeState = run(whole, input, wholeReqs);
  if (wholeState == ParseState::kError) {
    if (whole.errorStatus() != 400 && whole.errorStatus() != 413) {
      std::abort();
    }
    if (std::string_view(whole.errorReason()).empty()) std::abort();
    // Property 4: a dead parser must stay dead and inert.
    whole.feed("GET / HTTP/1.1\r\n\r\n");
    if (whole.state() != ParseState::kError) std::abort();
  }

  // Property 2: split the same bytes at a size-derived point and re-parse;
  // the request sequence and terminal state must match exactly.
  size_t cut = size == 0 ? 0 : (size * 2654435761u) % (size + 1);
  HttpParser split;
  std::vector<HttpRequest> splitReqs;
  split.feed(input.substr(0, cut));
  while (split.state() == ParseState::kComplete) {
    splitReqs.push_back(split.take());
  }
  ParseState splitState = run(split, input.substr(cut), splitReqs);
  if (splitState != wholeState) std::abort();
  if (splitReqs.size() != wholeReqs.size()) std::abort();
  for (size_t i = 0; i < wholeReqs.size(); ++i) {
    if (!sameRequest(wholeReqs[i], splitReqs[i])) std::abort();
  }

  // Property 3: accepted requests re-serialize to a wire form the parser
  // accepts again, bit-identically at the request level.
  for (const HttpRequest& req : wholeReqs) {
    std::string wire = serializeRequest(req);
    HttpParser again;
    std::vector<HttpRequest> back;
    if (run(again, wire, back) == ParseState::kError) std::abort();
    if (back.size() != 1 || !sameRequest(back[0], req)) std::abort();
  }

  // Property 4 (decode helpers): reject or succeed, never throw.
  std::string raw(input);
  percentDecode(raw);
  percentDecode(raw, /*plusAsSpace=*/true);
  parseQuery(raw);
  jsonEscape(raw);

  return 0;
}
