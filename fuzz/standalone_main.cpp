/// \file standalone_main.cpp
/// \brief Deterministic driver for the fuzz target on non-clang toolchains.
///
/// The CI container ships gcc only, so there is no libFuzzer to link. This
/// driver gives the same LLVMFuzzerTestOneInput entry point a useful life
/// anyway: it replays every file in the corpus directories given on the
/// command line, then runs a fixed budget of mutation rounds — splicing,
/// bit-flipping, truncating and extending corpus entries under a seeded
/// splitmix64 stream. No coverage feedback, but fully deterministic: the
/// same --seed/--iters pair explores the same inputs on every run, which
/// is what a CI smoke gate needs.
///
/// Usage: fuzz_envelope_decode [--iters=N] [--seed=S] [--max-len=L] DIR...

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

/// splitmix64: tiny, seedable, and good enough to drive mutations.
struct SplitMix64 {
  uint64_t state;
  explicit SplitMix64(uint64_t seed) : state(seed) {}
  uint64_t next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n); n must be nonzero.
  uint64_t below(uint64_t n) { return next() % n; }
};

std::vector<uint8_t> readFile(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

/// One mutation step: pick a strategy, apply it in place.
void mutate(std::vector<uint8_t>& bytes, SplitMix64& rng, size_t maxLen) {
  switch (rng.below(5)) {
    case 0: {  // flip a single bit
      if (bytes.empty()) break;
      size_t i = rng.below(bytes.size());
      bytes[i] ^= static_cast<uint8_t>(1u << rng.below(8));
      break;
    }
    case 1: {  // overwrite a byte with a fresh value
      if (bytes.empty()) break;
      bytes[rng.below(bytes.size())] = static_cast<uint8_t>(rng.next());
      break;
    }
    case 2: {  // truncate to a strict prefix
      if (bytes.empty()) break;
      bytes.resize(rng.below(bytes.size()));
      break;
    }
    case 3: {  // insert a run of random bytes
      size_t n = 1 + rng.below(16);
      if (bytes.size() + n > maxLen) break;
      size_t at = bytes.empty() ? 0 : rng.below(bytes.size() + 1);
      std::vector<uint8_t> run(n);
      for (auto& b : run) b = static_cast<uint8_t>(rng.next());
      bytes.insert(bytes.begin() + static_cast<ptrdiff_t>(at), run.begin(),
                   run.end());
      break;
    }
    case 4: {  // stamp an all-ones LEB128 count somewhere (the 2^59 attack)
      if (bytes.empty()) break;
      size_t at = rng.below(bytes.size());
      for (int i = 0; i < 9 && at + static_cast<size_t>(i) < bytes.size();
           ++i) {
        bytes[at + static_cast<size_t>(i)] = (i < 8) ? 0xff : 0x0f;
      }
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t iters = 50000;
  uint64_t seed = 1;
  size_t maxLen = 4096;
  std::vector<std::filesystem::path> dirs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--iters=", 0) == 0) {
      iters = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--max-len=", 0) == 0) {
      maxLen = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("-", 0) == 0) {
      // Ignore unknown flags so a libFuzzer-style invocation (-runs=...)
      // doesn't fail outright when it hits the standalone driver.
      std::fprintf(stderr, "standalone driver: ignoring flag %s\n",
                   arg.c_str());
    } else {
      dirs.emplace_back(arg);
    }
  }

  // Phase 1: replay the corpus verbatim.
  std::vector<std::vector<uint8_t>> corpus;
  for (const auto& dir : dirs) {
    if (!std::filesystem::exists(dir)) {
      std::fprintf(stderr, "standalone driver: no such path %s\n",
                   dir.c_str());
      return 2;
    }
    if (std::filesystem::is_regular_file(dir)) {
      corpus.push_back(readFile(dir));
      continue;
    }
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.is_regular_file()) corpus.push_back(readFile(entry.path()));
    }
  }
  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::fprintf(stderr, "standalone driver: replayed %zu corpus entries\n",
               corpus.size());

  // Phase 2: deterministic mutation rounds. Each round starts from a
  // corpus entry (or empty when no corpus was given) and applies a small
  // stack of mutations before executing the target.
  SplitMix64 rng(seed);
  for (uint64_t i = 0; i < iters; ++i) {
    std::vector<uint8_t> input =
        corpus.empty() ? std::vector<uint8_t>{}
                       : corpus[rng.below(corpus.size())];
    uint64_t steps = 1 + rng.below(4);
    for (uint64_t s = 0; s < steps; ++s) mutate(input, rng, maxLen);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::fprintf(stderr,
               "standalone driver: %llu mutation rounds done (seed=%llu)\n",
               static_cast<unsigned long long>(iters),
               static_cast<unsigned long long>(seed));
  return 0;
}
