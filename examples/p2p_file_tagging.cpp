/// \file p2p_file_tagging.cpp
/// \brief Decentralised file tagging under churn and concurrency.
///
/// The scenario the paper's introduction motivates: a p2p file-sharing
/// community annotating shared files with free-form tags. Demonstrates
///   1. multiple peers publishing and cross-tagging files,
///   2. the Section IV-B write-write race — naive protocol vs
///      Approximation B — on a live overlay,
///   3. resilience: replicated blocks survive peers going offline,
///   4. Likir identity enforcement (a forged peer is ignored).
///
///   $ ./p2p_file_tagging [--nodes 24] [--seed 7]

#include <iostream>

#include "core/client.hpp"
#include "util/options.hpp"

using namespace dharma;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  usize nodes = static_cast<usize>(opts.getInt("nodes", 24));
  u64 seed = static_cast<u64>(opts.getInt("seed", 7));

  dht::DhtNetworkConfig netCfg;
  netCfg.nodes = nodes;
  netCfg.seed = seed;
  netCfg.latency = "constant";  // lock-step timing makes the race visible
  netCfg.constantLatencyUs = 20000;
  dht::DhtNetwork net(netCfg);
  net.bootstrap();
  std::cout << "Swarm of " << nodes << " peers bootstrapped\n\n";

  // --- 1. publishing and cross-tagging -----------------------------------
  core::DharmaConfig cfg;  // approximated protocol, k = 1
  core::DharmaClient alice(net, 1, cfg, seed + 1);
  core::DharmaClient bob(net, 2, cfg, seed + 2);
  core::DharmaClient carol(net, 3, cfg, seed + 3);

  alice.insertResource("holiday-photos.tar", "magnet:?xt=urn:a1",
                       {"photos", "2009", "beach"});
  bob.insertResource("concert-bootleg.flac", "magnet:?xt=urn:b1",
                     {"music", "live", "bootleg"});
  carol.insertResource("lecture-notes.pdf", "magnet:?xt=urn:c1",
                       {"university", "notes"});
  std::cout << "3 peers published 3 files\n";

  bob.tagResource("holiday-photos.tar", "summer");
  carol.tagResource("holiday-photos.tar", "photos");  // agreement: weight 2
  alice.tagResource("concert-bootleg.flac", "music");
  std::cout << "Cross-tagging done\n";

  auto view =
      net.getBlocking(0, core::blockKey("holiday-photos.tar",
                                        core::BlockType::kResourceTags));
  std::cout << "Tags(holiday-photos.tar) as stored on the DHT:";
  if (view) {
    for (const auto& e : view->entries) {
      std::cout << ' ' << e.name << '(' << e.weight << ')';
    }
  }
  std::cout << "\n\n";

  // --- 2. the concurrent-tagging race -------------------------------------
  std::cout << "Race demo: two peers add the SAME new tag simultaneously.\n";
  auto raceOnce = [&](bool useApproxB, const std::string& resName,
                      const std::string& raceTag, const std::string& baseTag) {
    core::DharmaConfig rc;
    rc.approximateA = false;
    rc.approximateB = useApproxB;
    core::DharmaClient p1(net, 4, rc, seed + 4);
    core::DharmaClient p2(net, 5, rc, seed + 5);
    // u(baseTag, res) = 3.
    p1.insertResource(resName, "magnet:?xt=urn:r", {baseTag});
    p1.tagResource(resName, baseTag);
    p1.tagResource(resName, baseTag);
    // Both ops launched before the simulator runs: both read r̄ first.
    int done = 0;
    p1.tagResourceAsync(resName, raceTag,
                        [&](core::Outcome<core::WriteReceipt>) { ++done; });
    p2.tagResourceAsync(resName, raceTag,
                        [&](core::Outcome<core::WriteReceipt>) { ++done; });
    net.sim().run();
    auto that = net.getBlocking(
        0, core::blockKey(raceTag, core::BlockType::kTagNeighbors));
    u64 w = that ? that->weightOf(baseTag) : 0;
    std::cout << "  " << (useApproxB ? "Approximation B" : "naive protocol ")
              << ": sim(" << raceTag << ", " << baseTag << ") = " << w
              << " (exact serial value would be 3)\n";
    return w;
  };
  u64 naive = raceOnce(false, "race-naive.bin", "viral-n", "base-n");
  u64 withB = raceOnce(true, "race-approxb.bin", "viral-b", "base-b");
  std::cout << "  => naive doubles the read-dependent increment (" << naive
            << "); B bounds the anomaly (" << withB << ")\n\n";

  // --- 3. churn ------------------------------------------------------------
  std::cout << "Churn demo: killing 6 peers, re-reading a block.\n";
  for (usize i = 10; i < 16; ++i) net.setOnline(i, false);
  auto after = net.getBlocking(
      0, core::blockKey("holiday-photos.tar", core::BlockType::kResourceTags));
  std::cout << "  Tags(holiday-photos.tar) still retrievable: "
            << (after ? "yes" : "NO") << " (" << (after ? after->entries.size() : 0)
            << " entries; replication factor "
            << net.node(0).config().kStore << ")\n";
  auto resolved = alice.resolveUri("concert-bootleg.flac");
  std::cout << "  URI resolution after churn: "
            << (resolved.ok() ? *resolved
                              : std::string("<failed: ") +
                                    core::opErrorName(resolved.error()) + ">")
            << " (" << resolved.retries << " retries)\n";
  // A client riding a crashed peer cannot operate at all — the API says so
  // instead of hanging or faking an empty result.
  core::DharmaClient ghost(net, 12, cfg, seed + 12);
  auto dead = ghost.resolveUri("concert-bootleg.flac");
  std::cout << "  client on crashed peer 12: "
            << (dead.ok() ? "unexpectedly ok"
                          : core::opErrorName(dead.error()))
            << " at " << dead.cost.lookups << " lookups\n\n";

  // --- 4. identity enforcement ---------------------------------------------
  std::cout << "Identity demo: forged credential is dropped.\n";
  crypto::CertificationService rogue("rogue-secret");
  dht::Envelope evil;
  evil.type = dht::RpcType::kPing;
  evil.rpcId = 31337;
  evil.sender.id = dht::NodeId::fromString("mallory");
  evil.sender.addr = net.node(1).address();
  evil.credential = rogue.enroll("mallory");
  u64 rejectsBefore = net.node(0).counters().credentialRejects;
  net.network().send(net.node(1).address(), net.node(0).address(),
                     evil.encode());
  net.sim().run();
  std::cout << "  credential rejects at victim: "
            << net.node(0).counters().credentialRejects - rejectsBefore
            << " (forged peer never enters the routing table)\n";

  std::cout << "\nSwarm totals: " << net.network().stats().sent
            << " datagrams, " << net.totalLookups() << " lookups\n";
  return 0;
}
