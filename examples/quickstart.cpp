/// \file quickstart.cpp
/// \brief Five-minute tour of the DHARMA core model — no overlay involved.
///
/// Builds a small music folksonomy with the in-memory maintenance engine,
/// shows the exact vs approximated Folksonomy Graph side by side, and runs
/// a faceted search session the way Section III-C describes.
///
///   $ ./quickstart

#include <iostream>

#include "folksonomy/derive.hpp"
#include "folksonomy/faceted.hpp"
#include "folksonomy/interner.hpp"
#include "folksonomy/model.hpp"

using namespace dharma;

int main() {
  folk::Interner tags, resources;

  // A handful of albums with genre tags; u(t,r) grows when several users
  // repeat an annotation.
  struct Album {
    const char* name;
    std::vector<std::pair<const char*, int>> tags;  // (tag, users)
  };
  const std::vector<Album> albums = {
      {"paranoid", {{"metal", 4}, {"rock", 3}, {"classic", 1}}},
      {"master-of-puppets", {{"metal", 5}, {"thrash", 3}}},
      {"nevermind", {{"rock", 5}, {"grunge", 4}, {"classic", 1}}},
      {"ok-computer", {{"rock", 4}, {"alternative", 3}, {"electronic", 1}}},
      {"kid-a", {{"electronic", 4}, {"alternative", 2}, {"rock", 1}}},
      {"in-utero", {{"grunge", 3}, {"rock", 2}}},
      {"ride-the-lightning", {{"metal", 3}, {"thrash", 2}, {"rock", 1}}},
      {"the-bends", {{"rock", 3}, {"alternative", 2}}},
  };

  // Exact model and the paper's approximated model (A + B, k = 1), fed the
  // same annotation stream.
  folk::FolksonomyModel exact(folk::exactMode(), /*seed=*/1);
  folk::FolksonomyModel approx(folk::approxMode(1), /*seed=*/1);

  for (const Album& a : albums) {
    u32 r = resources.intern(a.name);
    // First user uploads the resource with its initial tag set...
    std::vector<u32> initial;
    for (const auto& [t, _] : a.tags) initial.push_back(tags.intern(t));
    exact.insertResource(r, initial);
    approx.insertResource(r, initial);
    // ...then the community repeats annotations (tag insertion, III-B.2).
    for (const auto& [t, users] : a.tags) {
      for (int u = 1; u < users; ++u) {
        exact.tagResource(r, *tags.find(t));
        approx.tagResource(r, *tags.find(t));
      }
    }
  }

  std::cout << "Built folksonomy: " << exact.trg().usedResources()
            << " resources, " << exact.trg().usedTags() << " tags, "
            << exact.trg().numAnnotations() << " annotations\n";
  std::cout << "Exact FG: " << exact.fg().arcCount()
            << " arcs (total weight " << exact.fg().totalWeight() << ")\n";
  std::cout << "Approx FG (A+B, k=1): " << approx.fg().arcCount()
            << " arcs (total weight " << approx.fg().totalWeight() << ")\n\n";

  // Similarity neighbourhood of "rock" in both graphs.
  folk::CsrFg exactFg = exact.freezeFg();
  folk::CsrFg approxFg = approx.freezeFg();
  u32 rock = *tags.find("rock");
  std::cout << "N_FG(rock) — sim(rock, t) exact vs approximated:\n";
  for (const auto& nb : exactFg.neighbors(rock)) {
    std::cout << "  " << tags.name(nb.tag) << ": " << nb.weight << " vs "
              << approxFg.weightOf(rock, nb.tag) << "\n";
  }

  // Faceted search: start broad, narrow by selecting displayed tags.
  folk::Trg trg = exact.trg();  // copy so we can freeze it
  trg.freeze();
  folk::SearchConfig cfg;
  cfg.resourceStop = 1;  // small catalogue: narrow down to a single album
  folk::SearchSession session(exactFg, trg, cfg);
  session.start(rock);
  std::cout << "\nFaceted search from 'rock' (first-tag strategy):\n";
  std::cout << "  R0 = " << session.resources().size() << " albums, T0 = {";
  for (const auto& d : session.display()) {
    std::cout << ' ' << tags.name(d.tag) << '(' << d.weight << ')';
  }
  std::cout << " }\n";
  Rng rng(7);
  while (!session.done()) {
    u32 chosen = session.selectByStrategy(folk::Strategy::kFirst, rng);
    std::cout << "  selected '" << tags.name(chosen) << "' -> "
              << session.resources().size() << " albums, "
              << session.candidateTags().size() << " candidate tags\n";
  }
  std::cout << "  stop reason: " << folk::stopReasonName(session.reason())
            << "; results:";
  for (u32 r : session.resources()) std::cout << ' ' << resources.name(r);
  std::cout << "\n\nDone. Next: run the DHT-backed examples (music_catalog, "
               "p2p_file_tagging).\n";
  return 0;
}
