/// \file dharma_node.cpp
/// \brief A live DHARMA node daemon on real loopback-UDP sockets.
///
/// The first program in this repo where nothing is simulated: a
/// RealTimeExecutor drives the protocol against the wall clock, a
/// UdpTransport moves every RPC through real POSIX sockets, and the same
/// KademliaNode / DharmaClient code that reproduces the paper's numbers in
/// virtual time serves interactive traffic.
///
///   $ ./dharma_node                      # boot a 3-node loopback cluster
///   $ ./dharma_node --nodes 8            # a bigger one
///   $ ./dharma_node --join 127.0.0.1:PORT  # join another daemon's cluster
///
/// Each node prints "node <i> listening on 127.0.0.1:<port>"; hand any of
/// those ports to a second daemon's --join. Commands arrive on stdin, one
/// per line (the tiny line protocol; see `help`):
///
///   insert <res> <uri> <tag> [tag ...]
///   tag <res> <tag> [tag ...]
///   search <tag>
///   resolve <res>
///   stats
///   quit
///
/// Every command answers "OK ..." or "ERR ...". The process exits 0 iff no
/// command failed — which is what lets CI drive a 3-node put/get/tag smoke
/// through a pipe.

#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/runtime.hpp"
#include "dht/maintenance.hpp"
#include "net/realtime.hpp"
#include "net/udp_transport.hpp"
#include "util/options.hpp"

#include <unistd.h>

using namespace dharma;

namespace {

const char* errorName(core::OpError e) {
  switch (e) {
    case core::OpError::kNotFound: return "not-found";
    case core::OpError::kQuorumFailed: return "quorum-failed";
    case core::OpError::kTimeout: return "timeout";
    case core::OpError::kNodeOffline: return "node-offline";
  }
  return "unknown";
}

struct Daemon {
  net::RealTimeExecutor exec;
  net::UdpTransport transport{exec};
  // The shared secret stands in for a real certification authority; every
  // daemon on the host uses the same one so cross-process credentials
  // verify (Likir's CS is a trusted third party by construction).
  crypto::CertificationService cs{"dharma-node-demo-secret"};
  core::RealTimeRuntime rt{exec, transport};
  std::vector<std::unique_ptr<dht::KademliaNode>> nodes;
  std::vector<std::unique_ptr<dht::MaintenanceManager>> managers;
  std::unique_ptr<core::DharmaClient> client;

  ~Daemon() {
    // Stop the loop FIRST: manager ticks run (and re-arm themselves) on the
    // loop thread, so stopping a manager from here while the loop is alive
    // would race its timer bookkeeping. With the executor stopped, the
    // managers' stop() is just cancel() calls into a dead queue.
    exec.stop();
    for (auto& m : managers) m->stop();
    transport.close();
  }

  bool boot(usize n, const std::string& joinSpec, bool maintenance) {
    exec.start();
    // Distinct user ids per process so two daemons on one host never
    // collide in id space.
    std::string prefix = "node-" + std::to_string(::getpid()) + "-";
    for (usize i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<dht::KademliaNode>(
          exec, transport, cs, cs.enroll(prefix + std::to_string(i)),
          dht::NodeConfig{}, 0x9000 + i));
      std::cout << "node " << i << " listening on 127.0.0.1:"
                << nodes[i]->address() << "\n";
    }

    if (!joinSpec.empty()) {
      net::Address peer = transport.resolvePeer(joinSpec);
      if (peer == net::kNullAddress) {
        std::cout << "ERR bad --join spec '" << joinSpec << "'\n";
        return false;
      }
      // Learn the peer's node id with a bootstrap ping, then the usual
      // self-lookup join through the enrolled contact.
      bool up = core::awaitResult<bool>(rt, [&](std::function<void(bool)> done) {
        nodes[0]->pingAddress(peer, std::move(done));
      });
      if (!up) {
        std::cout << "ERR join peer " << joinSpec << " did not answer\n";
        return false;
      }
      rt.awaitDone([&](std::function<void()> done) {
        nodes[0]->findNode(nodes[0]->id(),
                           [done = std::move(done)](dht::LookupResult) {
                             done();
                           });
      });
      std::cout << "joined cluster via " << joinSpec << "\n";
    }
    for (usize i = 1; i < nodes.size(); ++i) {
      dht::Contact seed = nodes[0]->contact();
      rt.awaitDone([&](std::function<void()> done) {
        nodes[i]->join(seed, std::move(done));
      });
    }

    if (maintenance) {
      for (usize i = 0; i < nodes.size(); ++i) {
        managers.push_back(std::make_unique<dht::MaintenanceManager>(
            exec, transport, *nodes[i], dht::MaintenanceConfig{},
            0x7000 + i));
      }
      // start() reads routing tables, which the loop thread may already be
      // mutating (e.g. refresh lookups from a cluster we joined) — run it
      // in the callback world like every other protocol-state access.
      rt.awaitDone([&](std::function<void()> done) {
        for (auto& m : managers) m->start();
        done();
      });
    }

    client = std::make_unique<core::DharmaClient>(rt, *nodes[0]);
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  usize n = static_cast<usize>(opts.getInt("nodes", 3));
  std::string joinSpec = opts.getString("join", "");
  bool maintenance = opts.getBool("maintenance", true);
  if (n == 0) {
    std::cerr << "--nodes must be >= 1\n";
    return 2;
  }

  Daemon d;
  if (!d.boot(n, joinSpec, maintenance)) return 2;
  std::cout << "cluster up: " << n << " node(s); type 'help' for commands\n";

  bool anyError = false;
  auto fail = [&](const std::string& what) {
    anyError = true;
    std::cout << "ERR " << what << "\n";
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "help") {
      std::cout << "commands: insert <res> <uri> <tag> [tag ...] | "
                   "tag <res> <tag> [tag ...] | search <tag> | "
                   "resolve <res> | stats | quit\n";
    } else if (cmd == "insert") {
      std::string res, uri, t;
      in >> res >> uri;
      std::vector<std::string> tags;
      while (in >> t) tags.push_back(t);
      if (res.empty() || uri.empty()) {
        fail("usage: insert <res> <uri> <tag> [tag ...]");
        continue;
      }
      auto out = d.client->insertResource(res, uri, tags);
      if (out.ok()) {
        std::cout << "OK inserted " << res << " (" << tags.size()
                  << " tags, " << out.cost.lookups << " lookups, minAcks="
                  << out.value().minReplicas << ")\n";
      } else {
        fail("insert " + res + ": " + errorName(*out.err));
      }
    } else if (cmd == "tag") {
      std::string res, t;
      in >> res;
      std::vector<std::string> tags;
      while (in >> t) tags.push_back(t);
      if (res.empty() || tags.empty()) {
        fail("usage: tag <res> <tag> [tag ...]");
        continue;
      }
      auto out = d.client->tagResources(res, tags);
      if (out.ok()) {
        std::cout << "OK tagged " << res << " (+" << tags.size() << " tags, "
                  << out.cost.lookups << " lookups)\n";
      } else {
        fail("tag " + res + ": " + errorName(*out.err));
      }
    } else if (cmd == "search") {
      std::string t;
      in >> t;
      if (t.empty()) {
        fail("usage: search <tag>");
        continue;
      }
      auto out = d.client->searchStep(t);
      if (!out.ok()) {
        fail("search " + t + ": " + errorName(*out.err));
        continue;
      }
      std::cout << "OK search " << t << ": " << out.val->resources.size()
                << " resource(s), " << out.val->relatedTags.size()
                << " related tag(s)\n";
      for (const auto& e : out.val->resources) {
        std::cout << "  resource " << e.name << " (w=" << e.weight << ")\n";
      }
      for (const auto& e : out.val->relatedTags) {
        std::cout << "  related " << e.name << " (w=" << e.weight << ")\n";
      }
    } else if (cmd == "resolve") {
      std::string res;
      in >> res;
      if (res.empty()) {
        fail("usage: resolve <res>");
        continue;
      }
      auto out = d.client->resolveUri(res);
      if (out.ok()) {
        std::cout << "OK " << res << " -> " << *out.val << "\n";
      } else {
        fail("resolve " + res + ": " + errorName(*out.err));
      }
    } else if (cmd == "stats") {
      net::UdpStats s = d.transport.stats();
      std::cout << "OK stats: ops=" << d.client->counters().ops
                << " failures=" << d.client->counters().failures
                << " lookups=" << d.client->totalCost().lookups
                << " | udp sent=" << s.sent << " received=" << s.received
                << " bytes=" << s.bytesSent
                << " oversize=" << s.droppedOversize << "\n";
    } else {
      fail("unknown command '" + cmd + "' (try 'help')");
    }
  }

  std::cout << (anyError ? "done (with errors)\n" : "done\n");
  return anyError ? 1 : 0;
}
