/// \file dharma_node.cpp
/// \brief A live DHARMA node daemon on real UDP sockets.
///
/// The first program in this repo where nothing is simulated: a
/// RealTimeExecutor drives the protocol against the wall clock, a
/// UdpTransport moves every RPC through real POSIX sockets, and the same
/// KademliaNode / DharmaClient code that reproduces the paper's numbers in
/// virtual time serves interactive traffic.
///
///   $ ./dharma_node                      # boot a 3-node loopback cluster
///   $ ./dharma_node --nodes 8            # a bigger one
///   $ ./dharma_node --join 127.0.0.1:PORT  # join another daemon's cluster
///
/// Each node prints "node <i> listening on <ip:port>"; hand any of those
/// addresses to a second daemon's --join. Commands arrive on stdin, one
/// per line (the tiny line protocol; see `help`):
///
///   insert <res> <uri> <tag> [tag ...]
///   tag <res> <tag> [tag ...]
///   search <tag>
///   resolve <res>
///   ping <ip:port>
///   drop <ip:port> | undrop <ip:port> | undrop all
///   stats
///   quit
///
/// Every command answers "OK ..." or "ERR ...". The process exits 0 iff no
/// command failed — which is what lets CI drive a 3-node put/get/tag smoke
/// through a pipe, and what lets the cluster harness (tests/cluster/)
/// script whole fleets of these processes.
///
/// SIGTERM/SIGINT request a graceful stop: the daemon finishes the command
/// in flight, prints "OK shutdown signal=...", flushes, and exits through
/// the same deterministic path as `quit` — so a harness can tell a clean
/// stop (exit code 0/1) from a crash (killed by signal). The drop/undrop
/// commands and the --drop-peers flag install transport-level partition
/// rules (datagrams to/from those peers silently vanish), which is how the
/// harness scripts network partitions on one host.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/runtime.hpp"
#include "dht/maintenance.hpp"
#include "net/datagram.hpp"
#include "net/realtime.hpp"
#include "net/sharded.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "util/options.hpp"

#include <unistd.h>

using namespace dharma;

namespace {

/// Signal number of the pending graceful-stop request (0 = none). Written
/// by the signal handler, polled by the command loop.
volatile std::sig_atomic_t g_stopSignal = 0;

void onStopSignal(int sig) { g_stopSignal = sig; }

const char* errorName(core::OpError e) {
  switch (e) {
    case core::OpError::kNotFound: return "not-found";
    case core::OpError::kQuorumFailed: return "quorum-failed";
    case core::OpError::kTimeout: return "timeout";
    case core::OpError::kNodeOffline: return "node-offline";
  }
  return "unknown";
}

struct Daemon {
  /// Process-wide observability: one registry every layer (client, node,
  /// UDP) records into, one trace ring completed op spans land in. The
  /// `stats` line stays raw-counter based for harness compat; `stats-json`
  /// and --metrics-out read THIS registry, so both surfaces render the
  /// same snapshot. Declared before the executors: the shard group
  /// registers its per-shard families at construction.
  obs::MetricsRegistry registry;
  obs::TraceRing traces{256};
  bool tracesOn = true;
  /// The sharded runtime: node i lives on shard i % shards forever — its
  /// datagrams, timers and blocking ops all run there (see rtFor/shardOf).
  net::ShardedExecutor execs;
  std::unique_ptr<net::DatagramTransport> transport;
  // The shared secret stands in for a real certification authority; every
  // daemon on the host uses the same one so cross-process credentials
  // verify (Likir's CS is a trusted third party by construction).
  crypto::CertificationService cs{"dharma-node-demo-secret"};
  core::ShardedRuntime rt;
  std::vector<std::unique_ptr<dht::KademliaNode>> nodes;
  std::vector<std::unique_ptr<dht::MaintenanceManager>> managers;
  std::unique_ptr<core::DharmaClient> client;
  std::unique_ptr<obs::MetricsSampler> sampler;
  std::shared_ptr<std::ofstream> metricsOut;

  Daemon(const std::string& bindHost, usize shards, net::NetBackend backend)
      : execs(net::ShardedExecutor::Config{shards, &registry}),
        transport(net::makeDatagramTransport(
            backend, execs.shard(0),
            net::UdpConfig{bindHost, 1400, &registry})),
        rt(execs, *transport) {}

  /// The shard owning node \p i, and the runtime blocking ops against it
  /// must wait on. nodes[0] (the command-loop node) is always on shard 0.
  usize shardOf(usize i) const { return execs.shardOf(i); }
  core::Runtime& rtFor(usize i) { return rt.forShard(shardOf(i)); }
  core::Runtime& rt0() { return rt.forShard(0); }

  ~Daemon() {
    // Stop the sampler on its loop thread BEFORE stopping the loops, so a
    // tick can't re-arm mid-stop (same discipline as the managers below).
    if (sampler) {
      rt0().awaitDone([&](std::function<void()> done) {
        sampler->stop();
        done();
      });
    }
    // Stop the loops FIRST: manager ticks run (and re-arm themselves) on
    // their node's loop thread, so stopping a manager from here while its
    // loop is alive would race its timer bookkeeping. With the executors
    // stopped, the managers' stop() is just cancel() calls into dead
    // queues.
    execs.stop();
    for (auto& m : managers) m->stop();
    transport->close();
  }

  /// Mirrors engine counters into the registry. MUST run on the loop
  /// thread (sampler collect hook does; `stats-json` posts through the
  /// runtime).
  void syncEngineOnLoop() {
    core::DharmaClient::Counters cc = client->counters();
    core::OpCost cost = client->totalCost();
    dht::NodeCounters nc = nodes[0]->counters();
    cache::CacheStats cs = client->cacheStats();
    net::UdpStats us = transport->stats();
    registry.counter("dharma_client_ops_total", "Protocol operations completed")
        .set(cc.ops);
    registry
        .counter("dharma_client_failures_total",
                 "Operations returning an error")
        .set(cc.failures);
    registry
        .counter("dharma_client_lookups_total",
                 "Overlay lookups paid (Table I unit)")
        .set(cost.lookups);
    registry
        .counter("dharma_client_cache_hits_total",
                 "Reads served by the client record cache")
        .set(cs.hits);
    registry
        .counter("dharma_client_cache_misses_total",
                 "Client record cache misses")
        .set(cs.misses);
    registry
        .counter("dharma_node_cache_hits_total",
                 "GETs answered from the node-side cache")
        .set(nc.cacheHits);
    registry
        .counter("dharma_node_stores_deduplicated_total",
                 "Replayed STOREs acked without re-applying")
        .set(nc.storesDeduplicated);
    registry.counter("dharma_node_rpcs_sent_total", "RPC requests sent")
        .set(nc.rpcsSent);
    registry.counter("dharma_node_timeouts_total", "RPCs that timed out")
        .set(nc.timeouts);
    registry
        .counter("dharma_udp_datagrams_sent_total",
                 "Datagrams accepted by sendto()")
        .set(us.sent);
    registry
        .counter("dharma_udp_datagrams_received_total",
                 "Datagrams handed to an endpoint handler")
        .set(us.received);
    registry.counter("dharma_udp_bytes_sent_total", "Payload bytes accepted")
        .set(us.bytesSent);
  }

  /// Builds the sampler (always, so `stats-json` works) and starts its
  /// periodic tick when \p intervalMs > 0.
  void startSampler(u64 intervalMs, const std::string& outPath, u64 seed) {
    obs::SamplerConfig sc;
    sc.intervalUs = (intervalMs == 0 ? 1000 : intervalMs) * 1000;
    sc.seed = seed;
    // The sampler ticks on shard 0 — where nodes[0] and the client live,
    // so its collect hook reads their counters with the right affinity.
    sampler = std::make_unique<obs::MetricsSampler>(execs.shard(0), registry,
                                                    sc);
    sampler->setCollect([this] { syncEngineOnLoop(); });
    if (!outPath.empty()) {
      metricsOut = std::make_shared<std::ofstream>(outPath,
                                                   std::ios::out |
                                                       std::ios::trunc);
      if (!*metricsOut) {
        std::cout << "ERR cannot open --metrics-out '" << outPath << "'\n";
        metricsOut.reset();
      } else {
        sampler->addSink([out = metricsOut](const obs::Sample& sample) {
          *out << sample.toJson() << "\n";
          out->flush();
        });
      }
    }
    if (intervalMs > 0) {
      rt0().awaitDone([&](std::function<void()> done) {
        sampler->start();
        done();
      });
    }
  }

  bool boot(usize n, const std::string& joinSpec, bool maintenance,
            dht::NodeConfig nodeCfg, const dht::MaintenanceConfig& mCfg,
            usize joinRetries) {
    execs.start();
    nodeCfg.metrics = &registry;
    if (tracesOn) nodeCfg.traces = &traces;
    // Distinct user ids per process so two daemons on one host never
    // collide in id space.
    std::string prefix = "node-" + std::to_string(::getpid()) + "-";
    for (usize i = 0; i < n; ++i) {
      // Node i is born onto its shard and never leaves it: the executor
      // reference IS the affinity, and registerEndpoint routes the node's
      // datagrams to the same place.
      nodes.push_back(std::make_unique<dht::KademliaNode>(
          execs.shard(shardOf(i)), *transport, cs,
          cs.enroll(prefix + std::to_string(i)), nodeCfg, 0x9000 + i));
      std::cout << "node " << i << " listening on "
                << net::formatAddress(nodes[i]->address()) << "\n";
    }

    if (!joinSpec.empty()) {
      net::PeerResolution peer = transport->resolvePeer(joinSpec);
      if (!peer.ok()) {
        std::cout << "ERR bad --join spec '" << joinSpec << "' ("
                  << peer.errorName() << ")\n";
        return false;
      }
      // Learn the peer's node id with a bootstrap ping, then the usual
      // self-lookup join through the enrolled contact. Retried: the peer
      // process may still be booting when we come up (cluster harness
      // restarts race their bootstrap target's socket).
      bool up = false;
      for (usize attempt = 0; attempt < joinRetries && !up; ++attempt) {
        up = core::awaitResult<bool>(rt0(),
                                     [&](std::function<void(bool)> done) {
          nodes[0]->pingAddress(peer.addr, std::move(done));
        });
      }
      if (!up) {
        std::cout << "ERR join peer " << joinSpec << " did not answer\n";
        return false;
      }
      rt0().awaitDone([&](std::function<void()> done) {
        nodes[0]->findNode(nodes[0]->id(),
                           [done = std::move(done)](dht::LookupResult) {
                             done();
                           });
      });
      std::cout << "joined cluster via " << joinSpec << "\n";
    }
    for (usize i = 1; i < nodes.size(); ++i) {
      dht::Contact seed = nodes[0]->contact();
      // Each join waits on the joining node's OWN shard; the RPCs cross
      // shards over the transport like any other wire traffic.
      rtFor(i).awaitDone([&](std::function<void()> done) {
        nodes[i]->join(seed, std::move(done));
      });
    }

    if (maintenance) {
      for (usize i = 0; i < nodes.size(); ++i) {
        managers.push_back(std::make_unique<dht::MaintenanceManager>(
            execs.shard(shardOf(i)), *transport, *nodes[i], mCfg,
            0x7000 + i));
      }
      // start() reads routing tables, which each loop thread may already
      // be mutating (e.g. refresh lookups from a cluster we joined) — run
      // it in the callback world like every other protocol-state access,
      // on the manager's own shard.
      for (usize i = 0; i < managers.size(); ++i) {
        rtFor(i).awaitDone([&](std::function<void()> done) {
          managers[i]->start();
          done();
        });
      }
    }

    core::DharmaConfig clientCfg;
    clientCfg.metrics = &registry;
    if (tracesOn) clientCfg.traces = &traces;
    client = std::make_unique<core::DharmaClient>(rt0(), *nodes[0],
                                                  clientCfg);
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  // Line-buffered protocol over pipes: the cluster harness reads replies as
  // they happen, so every line must leave the process immediately.
  std::cout << std::unitbuf;

  Options opts(argc, argv);
  usize n = static_cast<usize>(opts.getInt("nodes", 3));
  std::string joinSpec = opts.getString("join", "");
  std::string bindHost = opts.getString("bind", "127.0.0.1");
  bool maintenance = opts.getBool("maintenance", true);
  usize joinRetries = static_cast<usize>(opts.getInt("join-retries", 5));
  u64 statsIntervalMs = static_cast<u64>(opts.getInt("stats-interval-ms", 0));
  std::string metricsOutPath = opts.getString("metrics-out", "");
  bool tracesOn = opts.getBool("traces", true);
  usize shards = static_cast<usize>(opts.getInt("shards", 1));
  std::string backendName =
      opts.getString("net-backend", net::netBackendName(net::defaultNetBackend()));
  auto backend = net::parseNetBackend(backendName);
  if (!backend || !net::netBackendAvailable(*backend)) {
    std::cerr << "bad --net-backend '" << backendName
              << "' (want: poll" << (net::netBackendAvailable(net::NetBackend::kEpoll)
                                         ? " | epoll" : "")
              << ")\n";
    return 2;
  }
  if (n == 0 || shards == 0) {
    std::cerr << "--nodes and --shards must be >= 1\n";
    return 2;
  }

  dht::NodeConfig nodeCfg;
  nodeCfg.rpcTimeoutUs =
      static_cast<net::TimeUs>(opts.getInt("rpc-timeout-ms", 1500)) * 1000;
  dht::MaintenanceConfig mCfg;
  mCfg.bucketRefreshIntervalUs =
      static_cast<net::TimeUs>(opts.getInt("refresh-ms", 30'000)) * 1000;
  mCfg.republishIntervalUs =
      static_cast<net::TimeUs>(opts.getInt("republish-ms", 60'000)) * 1000;

  // Graceful-stop plumbing, in three steps: block the signals (so the
  // executor/receiver threads spawned during boot inherit the blocked
  // mask), install the handlers WITHOUT SA_RESTART (so a signal interrupts
  // the blocking stdin read instead of silently restarting it), and
  // unblock on the main thread only once boot is done — making main the
  // one thread that takes delivery.
  sigset_t stopSet;
  sigemptyset(&stopSet);
  sigaddset(&stopSet, SIGTERM);
  sigaddset(&stopSet, SIGINT);
  pthread_sigmask(SIG_BLOCK, &stopSet, nullptr);
  struct sigaction sa{};
  sa.sa_handler = onStopSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: wake the getline below
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  // Transport/socket failures at boot (bad --bind host, fd exhaustion) are
  // typed: one crisp ERR line and exit 2 — the startup-failure code,
  // distinct from protocol errors (1) — never an uncaught-exception abort.
  std::unique_ptr<Daemon> daemon;
  try {
    daemon = std::make_unique<Daemon>(bindHost, shards, *backend);
    daemon->tracesOn = tracesOn;
    if (!daemon->boot(n, joinSpec, maintenance, nodeCfg, mCfg, joinRetries)) {
      return 2;
    }
  } catch (const net::TransportError& e) {
    std::cerr << "ERR startup (" << e.kindName() << "): " << e.what() << "\n";
    return 2;
  }
  Daemon& d = *daemon;
  d.startSampler(statsIntervalMs, metricsOutPath, 0xD0DE);

  // Boot-time partition rules (comma-separated ip:port list).
  std::string dropSpec = opts.getString("drop-peers", "");
  if (!dropSpec.empty()) {
    std::istringstream specs(dropSpec);
    std::string one;
    while (std::getline(specs, one, ',')) {
      net::PeerResolution p = d.transport->resolvePeer(one);
      if (!p.ok()) {
        std::cerr << "bad --drop-peers entry '" << one << "' ("
                  << p.errorName() << ")\n";
        return 2;
      }
      d.transport->dropPeer(p.addr);
    }
  }

  std::cout << "cluster up: " << n << " node(s); type 'help' for commands\n";
  pthread_sigmask(SIG_UNBLOCK, &stopSet, nullptr);

  bool anyError = false;
  auto fail = [&](const std::string& what) {
    anyError = true;
    std::cout << "ERR " << what << "\n";
  };

  std::string line;
  while (g_stopSignal == 0 && std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "help") {
      std::cout << "OK commands: insert <res> <uri> <tag> [tag ...] | "
                   "tag <res> <tag> [tag ...] | search <tag> | "
                   "resolve <res> | ping <ip:port> | drop <ip:port> | "
                   "undrop <ip:port>|all | stats | stats-json | trace | "
                   "quit\n";
    } else if (cmd == "insert") {
      std::string res, uri, t;
      in >> res >> uri;
      std::vector<std::string> tags;
      while (in >> t) tags.push_back(t);
      if (res.empty() || uri.empty()) {
        fail("usage: insert <res> <uri> <tag> [tag ...]");
        continue;
      }
      auto out = d.client->insertResource(res, uri, tags);
      if (out.ok()) {
        std::cout << "OK inserted " << res << " (" << tags.size()
                  << " tags, " << out.cost.lookups << " lookups, minAcks="
                  << out.value().minReplicas << ")\n";
      } else {
        fail("insert " + res + ": " + errorName(*out.err));
      }
    } else if (cmd == "tag") {
      std::string res, t;
      in >> res;
      std::vector<std::string> tags;
      while (in >> t) tags.push_back(t);
      if (res.empty() || tags.empty()) {
        fail("usage: tag <res> <tag> [tag ...]");
        continue;
      }
      auto out = d.client->tagResources(res, tags);
      if (out.ok()) {
        std::cout << "OK tagged " << res << " (+" << tags.size() << " tags, "
                  << out.cost.lookups << " lookups)\n";
      } else {
        fail("tag " + res + ": " + errorName(*out.err));
      }
    } else if (cmd == "search") {
      std::string t;
      in >> t;
      if (t.empty()) {
        fail("usage: search <tag>");
        continue;
      }
      auto out = d.client->searchStep(t);
      if (!out.ok()) {
        fail("search " + t + ": " + errorName(*out.err));
        continue;
      }
      std::cout << "OK search " << t << ": " << out.val->resources.size()
                << " resource(s), " << out.val->relatedTags.size()
                << " related tag(s)\n";
      for (const auto& e : out.val->resources) {
        std::cout << "  resource " << e.name << " (w=" << e.weight << ")\n";
      }
      for (const auto& e : out.val->relatedTags) {
        std::cout << "  related " << e.name << " (w=" << e.weight << ")\n";
      }
    } else if (cmd == "resolve") {
      std::string res;
      in >> res;
      if (res.empty()) {
        fail("usage: resolve <res>");
        continue;
      }
      auto out = d.client->resolveUri(res);
      if (out.ok()) {
        std::cout << "OK " << res << " -> " << *out.val << "\n";
      } else {
        fail("resolve " + res + ": " + errorName(*out.err));
      }
    } else if (cmd == "ping") {
      std::string spec;
      in >> spec;
      if (spec.empty()) {
        fail("usage: ping <ip:port>");
        continue;
      }
      net::PeerResolution p = d.transport->resolvePeer(spec);
      if (!p.ok()) {
        fail("ping " + spec + ": " + p.errorName());
        continue;
      }
      bool up = core::awaitResult<bool>(
          d.rt0(), [&](std::function<void(bool)> done) {
            d.nodes[0]->pingAddress(p.addr, std::move(done));
          });
      if (up) {
        std::cout << "OK ping " << net::formatAddress(p.addr) << "\n";
      } else {
        fail("ping " + net::formatAddress(p.addr) + ": timeout");
      }
    } else if (cmd == "drop") {
      std::string spec;
      in >> spec;
      net::PeerResolution p = d.transport->resolvePeer(spec);
      if (spec.empty() || !p.ok()) {
        fail("usage: drop <ip:port>" +
             (spec.empty() ? std::string()
                           : std::string(" (") + p.errorName() + ")"));
        continue;
      }
      d.transport->dropPeer(p.addr);
      std::cout << "OK drop " << net::formatAddress(p.addr)
                << " (rules=" << d.transport->droppedPeerCount() << ")\n";
    } else if (cmd == "undrop") {
      std::string spec;
      in >> spec;
      if (spec == "all") {
        usize removed = d.transport->clearDroppedPeers();
        std::cout << "OK undrop all (removed=" << removed << ")\n";
        continue;
      }
      net::PeerResolution p = d.transport->resolvePeer(spec);
      if (spec.empty() || !p.ok()) {
        fail("usage: undrop <ip:port>|all" +
             (spec.empty() ? std::string()
                           : std::string(" (") + p.errorName() + ")"));
        continue;
      }
      bool removed = d.transport->undropPeer(p.addr);
      std::cout << "OK undrop " << net::formatAddress(p.addr)
                << " (removed=" << (removed ? 1 : 0) << ")\n";
    } else if (cmd == "stats") {
      // Protocol state (counters, routing tables) belongs to the loop
      // thread; read it there, like every other protocol-state access.
      core::DharmaClient::Counters cc;
      core::OpCost cost;
      dht::NodeCounters nc;
      usize rt0 = 0;
      d.rt0().awaitDone([&](std::function<void()> done) {
        cc = d.client->counters();
        cost = d.client->totalCost();
        nc = d.nodes[0]->counters();
        rt0 = d.nodes[0]->routing().size();
        done();
      });
      net::UdpStats s = d.transport->stats();
      std::cout << "OK stats: ops=" << cc.ops << " failures=" << cc.failures
                << " lookups=" << cost.lookups << " rt=" << rt0
                << " addr=" << net::formatAddress(d.nodes[0]->address())
                << " droprules=" << d.transport->droppedPeerCount()
                << " cachehits=" << nc.cacheHits
                << " storededup=" << nc.storesDeduplicated
                << " | udp sent=" << s.sent << " received=" << s.received
                << " bytes=" << s.bytesSent
                << " oversize=" << s.droppedOversize
                << " ruledrops=" << s.droppedByRule << "\n";
    } else if (cmd == "stats-json") {
      // One registry snapshot serves every surface: this is the same
      // sampler the /metrics-out JSONL sink and (in the gateway daemon)
      // GET /stats read, so no counter is reachable from only one of them.
      std::string json = core::awaitResult<std::string>(
          d.rt0(), [&](std::function<void(std::string)> done) {
            done(d.sampler->sampleNow().toJson());
          });
      std::cout << "OK stats-json " << json << "\n";
    } else if (cmd == "trace") {
      if (!tracesOn) {
        fail("tracing disabled (--traces off)");
      } else {
        std::cout << "OK trace " << d.traces.renderJson(16) << "\n";
      }
    } else {
      fail("unknown command '" + cmd + "' (try 'help')");
    }
  }

  // A stop signal interrupts the getline above (no SA_RESTART), but the
  // handler itself may not have run yet when the read error surfaces —
  // sanitizer runtimes defer async handlers to the next sync point. If
  // stdin failed without reaching real EOF, the flag is on its way: wait
  // for it briefly so the goodbye line is deterministic under every
  // build. (feof distinguishes the cases; cin is sync'd with stdio.)
  if (g_stopSignal == 0 && std::cin.fail() && !std::feof(stdin)) {
    for (int i = 0; i < 200 && g_stopSignal == 0; ++i) ::usleep(10'000);
  }

  if (g_stopSignal != 0) {
    std::cout << "OK shutdown signal="
              << (g_stopSignal == SIGTERM ? "term" : "int") << "\n";
  }
  std::cout << (anyError ? "done (with errors)\n" : "done\n");
  return anyError ? 1 : 0;
}
