/// \file dharma_cli.cpp
/// \brief Scriptable command-line driver for a DHARMA overlay.
///
/// Spins up a simulated Kademlia/Likir network and executes tagging/search
/// commands from stdin (or a piped script), printing each operation's
/// lookup cost — a REPL for exploring the protocol.
///
///   $ ./dharma_cli --nodes 32 <<'EOF'
///   insert nevermind urn:album:nevermind grunge,rock,90s
///   insert in-utero urn:album:inutero grunge,rock
///   tag nevermind seattle
///   step rock
///   session rock first
///   resolve nevermind
///   stats
///   EOF
///
/// Commands:
///   insert <res> <uri> <tag,tag,...>   publish a resource   (2+2m lookups)
///   tag <res> <tag>                    add an annotation    (4+k lookups)
///   tagall <res> <tag,tag,...>         batched annotations  (shared plan)
///   step <tag>                         one search step      (2 lookups)
///   session <tag> [first|last|random]  full faceted search
///   resolve <res>                      URI lookup           (1 lookup)
///   stats                              overlay counters
///   help                               this list
///
/// Every operation reports failures by OpError taxonomy (docs/API.md).

#include <iostream>
#include <sstream>

#include "core/client.hpp"
#include "core/session.hpp"
#include "util/options.hpp"

using namespace dharma;

namespace {

std::vector<std::string> splitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void printHelp() {
  std::cout << "commands: insert <res> <uri> <tags,csv> | tag <res> <tag> | "
               "tagall <res> <tags,csv> | step <tag> | "
               "session <tag> [first|last|random] | "
               "resolve <res> | stats | help | quit\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  usize nodes = static_cast<usize>(opts.getInt("nodes", 32));
  u32 k = static_cast<u32>(opts.getInt("k", 1));
  u64 seed = static_cast<u64>(opts.getInt("seed", 42));
  bool naive = opts.getBool("naive", false);

  dht::DhtNetworkConfig netCfg;
  netCfg.nodes = nodes;
  netCfg.seed = seed;
  dht::DhtNetwork net(netCfg);
  net.bootstrap();

  core::DharmaConfig cfg;
  cfg.k = k;
  cfg.approximateA = !naive;
  cfg.approximateB = !naive;
  core::DharmaClient client(net, 0, cfg, seed);
  Rng rng(seed);

  std::cout << "dharma> overlay up: " << nodes << " nodes, protocol="
            << (naive ? "naive" : "approximated(k=" + std::to_string(k) + ")")
            << "\n";

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd) || cmd.empty() || cmd[0] == '#') continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      printHelp();
      continue;
    }
    if (cmd == "insert") {
      std::string res, uri, tagsCsv;
      if (!(ls >> res >> uri >> tagsCsv)) {
        std::cout << "usage: insert <res> <uri> <tags,csv>\n";
        continue;
      }
      auto tags = splitCsv(tagsCsv);
      auto out = client.insertResource(res, uri, tags);
      if (!out.ok()) {
        std::cout << "insert FAILED: " << core::opErrorName(out.error())
                  << " (" << out.cost.lookups << " lookups, min replicas "
                  << out.replication.minAcks() << ")\n";
        continue;
      }
      std::cout << "inserted '" << res << "' with " << tags.size()
                << " tags (" << out.cost.lookups << " lookups, "
                << out->blocksWritten << " blocks x >=" << out->minReplicas
                << " replicas)\n";
    } else if (cmd == "tag") {
      std::string res, tag;
      if (!(ls >> res >> tag)) {
        std::cout << "usage: tag <res> <tag>\n";
        continue;
      }
      auto out = client.tagResource(res, tag);
      if (!out.ok()) {
        std::cout << "tag FAILED: " << core::opErrorName(out.error()) << " ("
                  << out.cost.lookups << " lookups)\n";
        continue;
      }
      std::cout << "tagged '" << res << "' with '" << tag << "' ("
                << out.cost.lookups << " lookups)\n";
    } else if (cmd == "tagall") {
      // Batched tagging: tagall <res> <tag,tag,...> — one shared r̄ fetch.
      std::string res, tagsCsv;
      if (!(ls >> res >> tagsCsv)) {
        std::cout << "usage: tagall <res> <tags,csv>\n";
        continue;
      }
      auto tags = splitCsv(tagsCsv);
      auto out = client.tagResources(res, tags);
      if (!out.ok()) {
        std::cout << "tagall FAILED: " << core::opErrorName(out.error())
                  << " (" << out.cost.lookups << " lookups)\n";
        continue;
      }
      std::cout << "tagged '" << res << "' with " << tags.size()
                << " tags in one batch (" << out.cost.lookups
                << " lookups vs " << (4 + client.config().k) * tags.size()
                << " sequential)\n";
    } else if (cmd == "step") {
      std::string tag;
      if (!(ls >> tag)) {
        std::cout << "usage: step <tag>\n";
        continue;
      }
      auto out = client.searchStep(tag);
      if (!out.ok()) {
        std::cout << "step FAILED: " << core::opErrorName(out.error()) << " ("
                  << out.cost.lookups << " lookups)\n";
        continue;
      }
      const auto& step = *out;
      if (!step.tagKnown) {
        std::cout << "tag '" << tag << "' unknown (" << out.cost.lookups
                  << " lookups)\n";
        continue;
      }
      std::cout << "related tags:";
      for (const auto& e : step.relatedTags) {
        std::cout << ' ' << e.name << '(' << e.weight << ')';
      }
      std::cout << (step.tagsTruncated ? " [truncated]" : "") << "\nresources:";
      for (const auto& e : step.resources) {
        std::cout << ' ' << e.name << '(' << e.weight << ')';
      }
      std::cout << (step.resourcesTruncated ? " [truncated]" : "") << "\n("
                << out.cost.lookups << " lookups)\n";
    } else if (cmd == "session") {
      std::string tag, strategyName = "first";
      if (!(ls >> tag)) {
        std::cout << "usage: session <tag> [first|last|random]\n";
        continue;
      }
      ls >> strategyName;
      folk::Strategy strategy = folk::Strategy::kFirst;
      if (strategyName == "last") strategy = folk::Strategy::kLast;
      if (strategyName == "random") strategy = folk::Strategy::kRandom;
      core::DharmaSession session(client);
      auto info = session.start(tag);
      std::cout << "start '" << tag << "': " << info.resourceCount
                << " resources, " << info.tagCount << " candidate tags\n";
      while (!session.done()) {
        std::string chosen = session.selectByStrategy(strategy, rng);
        if (chosen.empty()) break;
        std::cout << "  -> '" << chosen << "': " << session.resources().size()
                  << " resources, " << session.display().size()
                  << " displayed tags\n";
      }
      std::cout << "done (" << folk::stopReasonName(session.reason());
      if (session.lastError()) {
        std::cout << ": " << core::opErrorName(*session.lastError());
      }
      std::cout << ", " << session.totalCost().lookups << " lookups); results:";
      for (const auto& r : session.resources()) std::cout << ' ' << r;
      std::cout << "\n";
    } else if (cmd == "resolve") {
      std::string res;
      if (!(ls >> res)) {
        std::cout << "usage: resolve <res>\n";
        continue;
      }
      auto out = client.resolveUri(res);
      std::cout << res << " -> "
                << (out.ok() ? *out
                             : std::string("<") + core::opErrorName(out.error()) +
                                   ">")
                << " (" << out.cost.lookups << " lookup)\n";
    } else if (cmd == "stats") {
      const auto& ns = net.network().stats();
      std::cout << "overlay: " << net.size() << " nodes; datagrams sent "
                << ns.sent << " (" << ns.bytesSent << " bytes), delivered "
                << ns.delivered << ", lost " << ns.droppedLoss
                << "; total lookups " << net.totalLookups()
                << "; client lookups " << client.totalCost().lookups << "\n";
    } else {
      std::cout << "unknown command '" << cmd << "'\n";
      printHelp();
    }
  }
  return 0;
}
