/// \file dharma_gateway.cpp
/// \brief The DHARMA HTTP gateway daemon: REST in, overlay ops out.
///
/// Boots a live overlay node (or joins an existing dharma_node cluster),
/// then serves the six REST routes over real TCP sockets through
/// gateway::GatewayServer — the first way to reach a DHARMA overlay
/// without linking the C++ stack:
///
///   $ ./dharma_gateway --bind 127.0.0.1:8080
///   $ curl -X PUT  localhost:8080/resources/song1?tag=rock -d 'http://u'
///   $ curl -X POST localhost:8080/resources/song1/tags -d 'indie'
///   $ curl 'localhost:8080/search?tag=rock&steps=2'
///   $ curl localhost:8080/resolve/song1
///   $ curl localhost:8080/stats      # gateway + engine counters, JSON
///   $ curl localhost:8080/metrics    # Prometheus text exposition
///
/// Flags: --bind ip:port (HTTP; port 0 = ephemeral, printed in the
/// banner), --join ip:port (join a dharma_node cluster), --nodes N
/// (embedded overlay nodes), --workers N (HTTP worker pool), --cache
/// on|off (the PR 4 read-through record cache as this gateway's
/// hot-record shield).
///
/// Threading: gateway workers run blocking DharmaClient calls, which post
/// to the engine loop thread through the runtime — HTTP concurrency never
/// touches engine state directly (the Debug affinity checker enforces it).
///
/// SIGTERM/SIGINT drain gracefully: stop accepting, answer everything in
/// flight, then exit 0 through the same path as `quit`. Startup failures
/// (HTTP or UDP port in use, bad bind address) print one typed ERR line
/// and exit 2 — distinct from protocol errors (1) and clean runs (0).

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/runtime.hpp"
#include "dht/maintenance.hpp"
#include "gateway/server.hpp"
#include "net/datagram.hpp"
#include "net/realtime.hpp"
#include "net/sharded.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "util/options.hpp"

#include <unistd.h>

using namespace dharma;

namespace {

volatile std::sig_atomic_t g_stopSignal = 0;

void onStopSignal(int sig) { g_stopSignal = sig; }

struct Daemon {
  /// Process-wide observability: one registry every layer (gateway,
  /// client, node, UDP) records into, one trace ring spans land in.
  /// Declared before the executors: the shard group registers its
  /// per-shard families at construction.
  obs::MetricsRegistry registry;
  obs::TraceRing traces{256};
  bool tracesOn = true;
  /// The sharded runtime: node i lives on shard i % shards forever — its
  /// datagrams, timers and blocking ops all run there (see rtFor/shardOf).
  net::ShardedExecutor execs;
  std::unique_ptr<net::DatagramTransport> transport;
  crypto::CertificationService cs{"dharma-node-demo-secret"};
  core::ShardedRuntime rt;
  std::vector<std::unique_ptr<dht::KademliaNode>> nodes;
  std::vector<std::unique_ptr<dht::MaintenanceManager>> managers;
  std::unique_ptr<core::DharmaClient> client;
  std::unique_ptr<obs::MetricsSampler> sampler;
  std::shared_ptr<std::ofstream> metricsOut;

  Daemon(const std::string& udpHost, usize shards, net::NetBackend backend)
      : execs(net::ShardedExecutor::Config{shards, &registry}),
        transport(net::makeDatagramTransport(
            backend, execs.shard(0),
            net::UdpConfig{udpHost, 1400, &registry})),
        rt(execs, *transport) {}

  /// The shard owning node \p i, and the runtime blocking ops against it
  /// must wait on. nodes[0] (the gateway-facing node) is always on shard 0.
  usize shardOf(usize i) const { return execs.shardOf(i); }
  core::Runtime& rtFor(usize i) { return rt.forShard(shardOf(i)); }
  core::Runtime& rt0() { return rt.forShard(0); }

  ~Daemon() {
    // Stop the sampler on its loop thread BEFORE stopping the loops, so a
    // tick can't re-arm mid-stop (MaintenanceManager discipline).
    if (sampler) {
      rt0().awaitDone([&](std::function<void()> done) {
        sampler->stop();
        done();
      });
    }
    // Same teardown discipline as dharma_node: stop the loops first so
    // maintenance timers can't re-arm mid-stop. The gateway must already
    // be stopped by now — its workers block through the runtime.
    execs.stop();
    for (auto& m : managers) m->stop();
    transport->close();
  }

  /// Mirrors engine-side counters (client, node 0, client cache, UDP) into
  /// the registry. MUST run on the engine loop thread — the sampler's
  /// collect hook calls it directly; worker-thread scrapes go through
  /// rt.awaitDone (see collectEngine below).
  void syncEngineOnLoop() {
    core::DharmaClient::Counters cc = client->counters();
    core::OpCost cost = client->totalCost();
    dht::NodeCounters nc = nodes[0]->counters();
    cache::CacheStats cs = client->cacheStats();
    net::UdpStats us = transport->stats();
    registry.counter("dharma_client_ops_total", "Protocol operations completed")
        .set(cc.ops);
    registry
        .counter("dharma_client_failures_total",
                 "Operations returning an error")
        .set(cc.failures);
    registry
        .counter("dharma_client_lookups_total",
                 "Overlay lookups paid (Table I unit)")
        .set(cost.lookups);
    registry
        .counter("dharma_client_cache_hits_total",
                 "Reads served by the client record cache")
        .set(cs.hits);
    registry
        .counter("dharma_client_cache_misses_total",
                 "Client record cache misses")
        .set(cs.misses);
    registry
        .counter("dharma_node_cache_hits_total",
                 "GETs answered from the node-side cache")
        .set(nc.cacheHits);
    registry
        .counter("dharma_node_stores_deduplicated_total",
                 "Replayed STOREs acked without re-applying")
        .set(nc.storesDeduplicated);
    registry.counter("dharma_node_rpcs_sent_total", "RPC requests sent")
        .set(nc.rpcsSent);
    registry.counter("dharma_node_timeouts_total", "RPCs that timed out")
        .set(nc.timeouts);
    registry
        .counter("dharma_udp_datagrams_sent_total",
                 "Datagrams accepted by sendto()")
        .set(us.sent);
    registry
        .counter("dharma_udp_datagrams_received_total",
                 "Datagrams handed to an endpoint handler")
        .set(us.received);
    registry.counter("dharma_udp_bytes_sent_total", "Payload bytes accepted")
        .set(us.bytesSent);
  }

  bool boot(usize n, const std::string& joinSpec, bool cacheOn,
            usize joinRetries, net::TimeUs rpcTimeoutUs) {
    execs.start();
    std::string prefix = "gw-" + std::to_string(::getpid()) + "-";
    dht::NodeConfig nodeCfg;
    nodeCfg.rpcTimeoutUs = rpcTimeoutUs;
    nodeCfg.metrics = &registry;
    if (tracesOn) nodeCfg.traces = &traces;
    for (usize i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<dht::KademliaNode>(
          execs.shard(shardOf(i)), *transport, cs,
          cs.enroll(prefix + std::to_string(i)), nodeCfg, 0xA000 + i));
      std::cout << "node " << i << " listening on "
                << net::formatAddress(nodes[i]->address()) << "\n";
    }

    if (!joinSpec.empty()) {
      net::PeerResolution peer = transport->resolvePeer(joinSpec);
      if (!peer.ok()) {
        std::cout << "ERR bad --join spec '" << joinSpec << "' ("
                  << peer.errorName() << ")\n";
        return false;
      }
      bool up = false;
      for (usize attempt = 0; attempt < joinRetries && !up; ++attempt) {
        up = core::awaitResult<bool>(rt0(),
                                     [&](std::function<void(bool)> done) {
          nodes[0]->pingAddress(peer.addr, std::move(done));
        });
      }
      if (!up) {
        std::cout << "ERR join peer " << joinSpec << " did not answer\n";
        return false;
      }
      rt0().awaitDone([&](std::function<void()> done) {
        nodes[0]->findNode(nodes[0]->id(),
                           [done = std::move(done)](dht::LookupResult) {
                             done();
                           });
      });
      std::cout << "joined cluster via " << joinSpec << "\n";
    }
    for (usize i = 1; i < nodes.size(); ++i) {
      dht::Contact seed = nodes[0]->contact();
      // Each join waits on the joining node's OWN shard; the RPCs cross
      // shards over the transport like any other wire traffic.
      rtFor(i).awaitDone([&](std::function<void()> done) {
        nodes[i]->join(seed, std::move(done));
      });
    }

    dht::MaintenanceConfig mCfg;
    for (usize i = 0; i < nodes.size(); ++i) {
      managers.push_back(std::make_unique<dht::MaintenanceManager>(
          execs.shard(shardOf(i)), *transport, *nodes[i], mCfg, 0x7A00 + i));
    }
    for (usize i = 0; i < managers.size(); ++i) {
      rtFor(i).awaitDone([&](std::function<void()> done) {
        managers[i]->start();
        done();
      });
    }

    core::DharmaConfig cfg;
    cfg.cacheEnabled = cacheOn;
    cfg.metrics = &registry;
    if (tracesOn) cfg.traces = &traces;
    client = std::make_unique<core::DharmaClient>(rt0(), *nodes[0], cfg);
    return true;
  }

  /// Builds the sampler (always, so `stats-json` and the /stats "samples"
  /// ring work). The collect hook starts as the engine sync alone; main()
  /// swaps in a combined hook (engine + gateway counters) once the HTTP
  /// server exists, BEFORE startSamplerTick — no tick runs in between.
  void createSampler(u64 intervalMs, const std::string& outPath, u64 seed) {
    obs::SamplerConfig sc;
    sc.intervalUs = (intervalMs == 0 ? 1000 : intervalMs) * 1000;
    sc.seed = seed;
    // The sampler ticks on shard 0 — where nodes[0] and the client live,
    // so its collect hook reads their counters with the right affinity.
    sampler = std::make_unique<obs::MetricsSampler>(execs.shard(0), registry,
                                                    sc);
    sampler->setCollect([this] { syncEngineOnLoop(); });
    if (!outPath.empty()) {
      metricsOut = std::make_shared<std::ofstream>(outPath,
                                                   std::ios::out |
                                                       std::ios::trunc);
      if (!*metricsOut) {
        std::cout << "ERR cannot open --metrics-out '" << outPath << "'\n";
        metricsOut.reset();
      } else {
        sampler->addSink([out = metricsOut](const obs::Sample& sample) {
          *out << sample.toJson() << "\n";
          out->flush();
        });
      }
    }
  }

  void startSamplerTick(u64 intervalMs) {
    if (intervalMs == 0) return;
    rt0().awaitDone([&](std::function<void()> done) {
      sampler->start();
      done();
    });
  }
};

/// Splits "ip:port" (port may be 0). Returns false on malformed input.
bool splitHostPort(const std::string& spec, std::string& host, u16& port) {
  usize colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  host = spec.substr(0, colon);
  std::string p = spec.substr(colon + 1);
  if (p.empty() || p.size() > 5) return false;
  u32 v = 0;
  for (char c : p) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<u32>(c - '0');
  }
  if (v > 65535) return false;
  port = static_cast<u16>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << std::unitbuf;

  Options opts(argc, argv);
  std::string bindSpec = opts.getString("bind", "127.0.0.1:8080");
  std::string joinSpec = opts.getString("join", "");
  usize n = static_cast<usize>(opts.getInt("nodes", 1));
  usize workers = static_cast<usize>(opts.getInt("workers", 4));
  bool cacheOn = opts.getBool("cache", true);
  usize joinRetries = static_cast<usize>(opts.getInt("join-retries", 5));
  net::TimeUs rpcTimeoutUs =
      static_cast<net::TimeUs>(opts.getInt("rpc-timeout-ms", 1500)) * 1000;
  u64 statsIntervalMs = static_cast<u64>(opts.getInt("stats-interval-ms", 0));
  std::string metricsOutPath = opts.getString("metrics-out", "");
  bool tracesOn = opts.getBool("traces", true);
  usize shards = static_cast<usize>(opts.getInt("shards", 1));
  std::string backendName =
      opts.getString("net-backend", net::netBackendName(net::defaultNetBackend()));
  auto backend = net::parseNetBackend(backendName);
  if (!backend || !net::netBackendAvailable(*backend)) {
    std::cerr << "bad --net-backend '" << backendName
              << "' (want: poll" << (net::netBackendAvailable(net::NetBackend::kEpoll)
                                         ? " | epoll" : "")
              << ")\n";
    return 2;
  }
  if (n == 0 || shards == 0) {
    std::cerr << "--nodes and --shards must be >= 1\n";
    return 2;
  }

  std::string httpHost;
  u16 httpPort = 0;
  if (!splitHostPort(bindSpec, httpHost, httpPort)) {
    std::cerr << "ERR startup (bad-address): --bind expects ip:port, got '"
              << bindSpec << "'\n";
    return 2;
  }

  // Same graceful-stop plumbing as dharma_node: block before threads
  // spawn, no SA_RESTART so a signal interrupts the stdin read, unblock
  // once boot is done.
  sigset_t stopSet;
  sigemptyset(&stopSet);
  sigaddset(&stopSet, SIGTERM);
  sigaddset(&stopSet, SIGINT);
  pthread_sigmask(SIG_BLOCK, &stopSet, nullptr);
  struct sigaction sa{};
  sa.sa_handler = onStopSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  std::unique_ptr<Daemon> daemon;
  try {
    // The overlay's UDP sockets bind the same host as the HTTP listener.
    daemon = std::make_unique<Daemon>(httpHost, shards, *backend);
    daemon->tracesOn = tracesOn;
    if (!daemon->boot(n, joinSpec, cacheOn, joinRetries, rpcTimeoutUs)) {
      return 2;
    }
  } catch (const net::TransportError& e) {
    std::cerr << "ERR startup (" << e.kindName() << "): " << e.what() << "\n";
    return 2;
  }
  Daemon& d = *daemon;

  gateway::GatewayConfig gwCfg;
  gwCfg.bindHost = httpHost == "localhost" ? std::string("127.0.0.1")
                                           : httpHost;
  gwCfg.port = httpPort;
  gwCfg.workers = workers;

  gateway::GatewayServer::Deps deps;
  deps.client = d.client.get();
  // Both taps run on gateway worker threads: engine loop-thread state is
  // read via rt.awaitDone (post + wait), exactly like the line-protocol
  // stats command; UdpTransport::stats() is internally synchronized.
  deps.engineStatsJson = [&d]() -> std::string {
    core::DharmaClient::Counters cc;
    core::OpCost cost;
    dht::NodeCounters nc;
    cache::CacheStats cs;
    usize rtSize = 0;
    d.rt0().awaitDone([&](std::function<void()> done) {
      cc = d.client->counters();
      cost = d.client->totalCost();
      nc = d.nodes[0]->counters();
      cs = d.client->cacheStats();
      rtSize = d.nodes[0]->routing().size();
      done();
    });
    net::UdpStats us = d.transport->stats();
    std::ostringstream out;
    out << "{\"ops\":" << cc.ops << ",\"failures\":" << cc.failures
        << ",\"retries\":" << cc.retries << ",\"lookups\":" << cost.lookups
        << ",\"servedFromCache\":" << cost.servedFromCache
        << ",\"routingTable\":" << rtSize
        << ",\"nodeCacheHits\":" << nc.cacheHits
        << ",\"storesDeduplicated\":" << nc.storesDeduplicated
        << ",\"clientCache\":{\"hits\":" << cs.hits
        << ",\"misses\":" << cs.misses << ",\"evictions\":" << cs.evictions
        << ",\"invalidations\":" << cs.invalidations << "}"
        << ",\"udp\":{\"sent\":" << us.sent << ",\"received\":" << us.received
        << ",\"bytesSent\":" << us.bytesSent
        << ",\"sendErrors\":" << us.sendErrors << "}}";
    return out.str();
  };
  deps.collectEngine = [&d] {
    d.rt0().awaitDone([&](std::function<void()> done) {
      d.syncEngineOnLoop();
      done();
    });
  };
  d.createSampler(statsIntervalMs, metricsOutPath, 0xCAFE);
  deps.metrics = &d.registry;
  deps.sampler = d.sampler.get();
  if (tracesOn) deps.traces = &d.traces;

  gateway::GatewayServer server(gwCfg, deps);
  gateway::StartError se = server.start();
  if (se != gateway::StartError::kNone) {
    std::cerr << "ERR startup (" << gateway::startErrorName(se)
              << "): " << server.startDetail() << "\n";
    return 2;
  }

  // Periodic samples must carry the gateway's own counters too, not just
  // the engine's; swap in the combined collect hook before the first tick.
  d.sampler->setCollect([&d, &server] {
    d.syncEngineOnLoop();
    server.publishMetrics();
  });
  d.startSamplerTick(statsIntervalMs);

  std::cout << "gateway listening on http://" << gwCfg.bindHost << ":"
            << server.port() << "\n";
  std::cout << "gateway up: " << n << " node(s), " << workers
            << " worker(s), cache=" << (cacheOn ? "on" : "off")
            << "; type 'help' for commands\n";
  pthread_sigmask(SIG_UNBLOCK, &stopSet, nullptr);

  bool anyError = false;
  auto fail = [&](const std::string& what) {
    anyError = true;
    std::cout << "ERR " << what << "\n";
  };

  std::string line;
  while (g_stopSignal == 0 && std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "help") {
      std::cout << "OK commands: stats | stats-json | trace | quit (the API "
                   "is HTTP: /resources/{r}, /search, /resolve/{r}, /stats, "
                   "/metrics, /debug/traces)\n";
    } else if (cmd == "stats") {
      gateway::GatewayCounters g = server.counters();
      std::cout << "OK stats: accepted=" << g.connectionsAccepted
                << " closed=" << g.connectionsClosed
                << " dispatched=" << g.requestsDispatched
                << " responses=" << g.responses
                << " parseerrors=" << g.parseErrors
                << " overload=" << g.overloadRejected
                << " drain=" << g.drainRejected << " bytesin=" << g.bytesIn
                << " bytesout=" << g.bytesOut << "\n";
    } else if (cmd == "stats-json") {
      std::string json = core::awaitResult<std::string>(
          d.rt0(), [&](std::function<void(std::string)> done) {
            d.syncEngineOnLoop();
            done(d.sampler->sampleNow().toJson());
          });
      std::cout << "OK stats-json " << json << "\n";
    } else if (cmd == "trace") {
      if (!tracesOn) {
        fail("tracing disabled (--traces off)");
      } else {
        std::cout << "OK trace " << d.traces.renderJson(16) << "\n";
      }
    } else {
      fail("unknown command '" + cmd + "' (try 'help')");
    }
  }

  // See dharma_node.cpp: wait for a signal that interrupted the read but
  // whose handler has not run yet (deferred under sanitizer runtimes).
  if (g_stopSignal == 0 && std::cin.fail() && !std::feof(stdin)) {
    for (int i = 0; i < 200 && g_stopSignal == 0; ++i) ::usleep(10'000);
  }

  if (g_stopSignal != 0) {
    std::cout << "OK shutdown signal="
              << (g_stopSignal == SIGTERM ? "term" : "int") << "\n";
  }

  // Drain BEFORE the engine goes away: in-flight handlers block through
  // the runtime, so the executor must outlive the worker pool.
  server.stop();
  std::cout << (anyError ? "done (with errors)\n" : "done\n");
  return anyError ? 1 : 0;
}
