/// \file music_catalog.cpp
/// \brief A Last.fm-style music catalogue on a live (simulated) overlay.
///
/// Spins up a Kademlia/Likir network, publishes artists through the
/// DHARMA approximated protocol, then navigates the catalogue with the
/// distributed faceted-search session — printing the exact per-operation
/// lookup costs of Table I along the way.
///
///   $ ./music_catalog [--nodes 32] [--k 1] [--seed 42]

#include <iostream>

#include "core/client.hpp"
#include "core/session.hpp"
#include "util/options.hpp"

using namespace dharma;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  usize nodes = static_cast<usize>(opts.getInt("nodes", 32));
  u32 k = static_cast<u32>(opts.getInt("k", 1));
  u64 seed = static_cast<u64>(opts.getInt("seed", 42));

  dht::DhtNetworkConfig netCfg;
  netCfg.nodes = nodes;
  netCfg.seed = seed;
  dht::DhtNetwork net(netCfg);
  net.bootstrap();
  std::cout << "Overlay up: " << nodes << " nodes, "
            << net.network().stats().sent << " bootstrap datagrams\n\n";

  core::DharmaConfig cfg;
  cfg.k = k;
  core::DharmaClient dj(net, 0, cfg, seed);

  struct Artist {
    const char* name;
    const char* uri;
    std::vector<std::string> tags;
  };
  const std::vector<Artist> catalogue = {
      {"radiohead", "urn:artist:radiohead",
       {"alternative", "rock", "electronic", "seen-live"}},
      {"metallica", "urn:artist:metallica", {"metal", "thrash", "rock"}},
      {"nirvana", "urn:artist:nirvana", {"grunge", "rock", "90s"}},
      {"aphex-twin", "urn:artist:aphex-twin", {"electronic", "idm", "ambient"}},
      {"black-sabbath", "urn:artist:sabbath", {"metal", "rock", "classic-rock"}},
      {"pearl-jam", "urn:artist:pearl-jam", {"grunge", "rock", "seen-live"}},
      {"boards-of-canada", "urn:artist:boc", {"electronic", "idm", "downtempo"}},
      {"iron-maiden", "urn:artist:maiden", {"metal", "heavy-metal", "seen-live"}},
  };

  std::cout << "Publishing " << catalogue.size()
            << " artists (insert cost = 2 + 2m lookups):\n";
  for (const Artist& a : catalogue) {
    auto out = dj.insertResource(a.name, a.uri, a.tags);
    std::cout << "  " << a.name << " (m=" << a.tags.size() << "): "
              << out.cost.lookups << " lookups, ";
    if (out.ok()) {
      std::cout << out->blocksWritten << " blocks x >=" << out->minReplicas
                << " replicas\n";
    } else {
      std::cout << "FAILED: " << core::opErrorName(out.error()) << "\n";
    }
  }

  // The same catalogue through the batched entry point (a fresh namespace):
  // t̄/t̂ updates grouped per distinct tag — cheaper than the sum above.
  {
    std::vector<core::ResourceSpec> batch;
    for (const Artist& a : catalogue) {
      batch.push_back(
          core::ResourceSpec{std::string("mirror-") + a.name, a.uri, a.tags});
    }
    auto out = dj.insertResources(batch);
    std::cout << "  (batched mirror of all " << batch.size()
              << " artists: " << out.cost.lookups << " lookups total, "
              << (out.ok() ? "ok" : core::opErrorName(out.error())) << ")\n";
  }

  // Community tagging through different peers — approximated protocol.
  std::cout << "\nCommunity tagging (cost = 4 + k = " << 4 + k
            << " lookups each):\n";
  core::DharmaClient fan1(net, 1, cfg, seed + 1);
  core::DharmaClient fan2(net, 2, cfg, seed + 2);
  for (const auto& [res, tag] :
       std::vector<std::pair<std::string, std::string>>{
           {"radiohead", "british"},
           {"metallica", "seen-live"},
           {"nirvana", "seattle"},
           {"iron-maiden", "british"},
           {"radiohead", "rock"},  // re-tag: weight grows
       }) {
    auto out = fan1.tagResource(res, tag);
    std::cout << "  +" << tag << " on " << res << ": " << out.cost.lookups
              << " lookups"
              << (out.ok() ? "" : std::string(" FAILED: ") +
                                      core::opErrorName(out.error()))
              << "\n";
    fan2.tagResource(res, tag);  // a second user agrees
  }

  // Distributed faceted search from "rock" (2 lookups per step).
  std::cout << "\nFaceted search from 'rock':\n";
  core::DharmaClient listener(net, 5, cfg, seed + 3);
  folk::SearchConfig sc;
  sc.resourceStop = 1;
  core::DharmaSession session(listener, sc);
  auto info = session.start("rock");
  std::cout << "  T0 (sim-ranked): ";
  for (const auto& e : info.display) std::cout << e.name << "(" << e.weight << ") ";
  std::cout << "\n  R0: " << info.resourceCount << " artists\n";
  Rng rng(seed);
  while (!session.done()) {
    std::string chosen = session.selectByStrategy(folk::Strategy::kFirst, rng);
    std::cout << "  selected '" << chosen << "' -> "
              << session.resources().size() << " artists, "
              << session.display().size() << " displayed tags\n";
  }
  std::cout << "  stop: " << folk::stopReasonName(session.reason())
            << "; session cost " << session.totalCost().lookups
            << " lookups; results:";
  for (const auto& r : session.resources()) std::cout << ' ' << r;
  std::cout << "\n";

  // Resolve a result to its URI (type-4 r̃ block, 1 lookup).
  if (!session.resources().empty()) {
    auto out = listener.resolveUri(session.resources().front());
    std::cout << "  resolve '" << session.resources().front() << "' -> "
              << (out.ok() ? *out
                           : std::string("<") + core::opErrorName(out.error()) +
                                 ">")
              << " (" << out.cost.lookups << " lookup)\n";
  }

  std::cout << "\nTotal overlay traffic: " << net.network().stats().sent
            << " datagrams, " << net.network().stats().bytesSent
            << " bytes; total lookups " << net.totalLookups() << "\n";
  return 0;
}
