/// Cross-transport conformance suite: the SAME join → put → get → tag test
/// body runs against the deterministic SimTransport/SimExecutor pair,
/// against real loopback-UDP sockets under the RealTimeExecutor (both the
/// portable poll() backend and, on Linux, the epoll/recvmmsg one), and
/// against a two-shard ShardedExecutor where nodes live on different loop
/// threads. What it proves is the tentpole claim of the transport refactor:
/// KademliaNode, DharmaClient and friends contain no simulation-isms —
/// identical protocol code, identical cost identities, on every runtime.
///
/// Plus DatagramTransport units typed over both concrete backends: MTU
/// rejection, drop rules, handler swap, close semantics, and the
/// close-latency regression pin (the receive loop used to tick a 200 ms
/// poll timeout; wakeups are event-driven now and close() must not wait a
/// tick out).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "core/client.hpp"
#include "core/runtime.hpp"
#include "net/datagram.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "net/realtime.hpp"
#include "net/sharded.hpp"
#include "net/simulator.hpp"
#include "net/udp_transport.hpp"

#ifdef __linux__
#include "net/epoll_transport.hpp"
#endif

namespace dharma {
namespace {

dht::NodeConfig smallConfig() {
  dht::NodeConfig cfg;
  cfg.k = 8;
  cfg.alpha = 3;
  cfg.kStore = 3;
  // Generous against loaded CI machines; nothing times out on loopback.
  cfg.rpcTimeoutUs = 2'000'000;
  return cfg;
}

/// Deterministic backend: virtual time, simulated datagrams.
struct SimBackend {
  net::Simulator sim;
  net::ConstantLatency latency{2000};
  net::Network net{sim, latency, net::Network::Config{}, /*seed=*/99};
  crypto::CertificationService cs{"conformance-secret"};
  core::SimRuntime rt{sim, net};
  std::vector<std::unique_ptr<dht::KademliaNode>> nodes;

  void makeNodes(usize n) {
    for (usize i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<dht::KademliaNode>(
          sim, net, cs, cs.enroll("user-" + std::to_string(i)), smallConfig(),
          1000 + i));
    }
  }
  core::Runtime& runtimeFor(usize) { return rt; }
};

/// Wall-clock backend: loopback UDP sockets, real-time executor.
struct UdpBackend {
  net::RealTimeExecutor exec;
  net::UdpTransport transport{exec};
  crypto::CertificationService cs{"conformance-secret"};
  core::RealTimeRuntime rt{exec, transport};
  std::vector<std::unique_ptr<dht::KademliaNode>> nodes;

  UdpBackend() { exec.start(); }
  ~UdpBackend() {
    // Teardown order matters: stop the loop (no more protocol callbacks),
    // then close sockets, then members die in reverse declaration order.
    exec.stop();
    transport.close();
  }

  void makeNodes(usize n) {
    for (usize i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<dht::KademliaNode>(
          exec, transport, cs, cs.enroll("user-" + std::to_string(i)),
          smallConfig(), 1000 + i));
    }
  }
  core::Runtime& runtimeFor(usize) { return rt; }
};

#ifdef __linux__
/// Wall-clock backend over the epoll/recvmmsg transport, single loop.
struct EpollBackend {
  net::RealTimeExecutor exec;
  net::EpollTransport transport{exec};
  crypto::CertificationService cs{"conformance-secret"};
  core::RealTimeRuntime rt{exec, transport};
  std::vector<std::unique_ptr<dht::KademliaNode>> nodes;

  EpollBackend() { exec.start(); }
  ~EpollBackend() {
    exec.stop();
    transport.close();
  }

  void makeNodes(usize n) {
    for (usize i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<dht::KademliaNode>(
          exec, transport, cs, cs.enroll("user-" + std::to_string(i)),
          smallConfig(), 1000 + i));
    }
  }
  core::Runtime& runtimeFor(usize) { return rt; }
};

/// Two shards, epoll delivery: node i lives on shard i % 2, so every
/// cross-node RPC in the conformance body crosses loop threads, and every
/// blocking wait goes through the owning node's shard runtime. This is the
/// daemon topology in miniature, with the Debug affinity checker armed.
struct ShardedEpollBackend {
  net::ShardedExecutor execs{2};
  std::unique_ptr<net::DatagramTransport> transport =
      net::makeDatagramTransport(net::NetBackend::kEpoll, execs.shard(0),
                                 net::UdpConfig{});
  crypto::CertificationService cs{"conformance-secret"};
  core::ShardedRuntime rt{execs, *transport};
  std::vector<std::unique_ptr<dht::KademliaNode>> nodes;

  ShardedEpollBackend() { execs.start(); }
  ~ShardedEpollBackend() {
    execs.stop();
    transport->close();
  }

  void makeNodes(usize n) {
    for (usize i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<dht::KademliaNode>(
          execs.shard(execs.shardOf(i)), *transport, cs,
          cs.enroll("user-" + std::to_string(i)), smallConfig(), 1000 + i));
    }
  }
  core::Runtime& runtimeFor(usize i) { return rt.forShard(execs.shardOf(i)); }
};
#endif  // __linux__

template <typename Backend>
class TransportConformance : public ::testing::Test {};

#ifdef __linux__
using Backends = ::testing::Types<SimBackend, UdpBackend, EpollBackend,
                                  ShardedEpollBackend>;
#else
using Backends = ::testing::Types<SimBackend, UdpBackend>;
#endif
TYPED_TEST_SUITE(TransportConformance, Backends, );

/// Boots \p b with \p n joined nodes (everyone bootstraps through node 0).
/// Each join waits on the joining node's OWN runtime — under the sharded
/// backend the launch must run on that node's shard, not anyone else's.
template <typename Backend>
void boot(Backend& b, usize n) {
  b.makeNodes(n);
  for (usize i = 1; i < n; ++i) {
    dht::Contact seed = b.nodes[0]->contact();
    b.runtimeFor(i).awaitDone([&](std::function<void()> done) {
      b.nodes[i]->join(seed, std::move(done));
    });
  }
}

TYPED_TEST(TransportConformance, JoinPopulatesRoutingTables) {
  TypeParam b;
  boot(b, 5);
  for (usize i = 0; i < 5; ++i) {
    EXPECT_GT(b.nodes[i]->routing().size(), 0u)
        << "node " << i << " learned nobody during bootstrap";
  }
}

TYPED_TEST(TransportConformance, PutReplicatesAndGetMerges) {
  TypeParam b;
  boot(b, 5);

  dht::NodeId key = dht::NodeId::fromString("conformance-block");
  dht::StoreToken token{dht::TokenKind::kIncrement, "entry", 5, {}};
  auto pr = core::awaitResult<dht::PutResult>(
      b.runtimeFor(1), [&](std::function<void(dht::PutResult)> done) {
        b.nodes[1]->put(key, token, std::move(done));
      });
  EXPECT_TRUE(pr.fullyReplicated())
      << "acks=" << pr.acks << " intended=" << pr.intended;

  auto gr = core::awaitResult<dht::GetResult>(
      b.runtimeFor(4), [&](std::function<void(dht::GetResult)> done) {
        b.nodes[4]->get(key, dht::GetOptions{}, std::move(done));
      });
  ASSERT_TRUE(gr.found());
  ASSERT_EQ(gr.view->entries.size(), 1u);
  EXPECT_EQ(gr.view->entries[0].name, "entry");
  EXPECT_EQ(gr.view->entries[0].weight, 5u);
  EXPECT_EQ(gr.rpcFailures, 0u);
}

TYPED_TEST(TransportConformance, LargeBatchSplitsAcrossMtuChunks) {
  TypeParam b;
  boot(b, 5);

  // ~100 tokens * ~60 wire bytes >> 1400-byte MTU: putMany must chunk the
  // STORE batch on either transport, and the merged view must come back
  // complete.
  dht::NodeId key = dht::NodeId::fromString("big-block");
  std::vector<dht::StoreToken> tokens;
  for (int i = 0; i < 100; ++i) {
    tokens.push_back(dht::StoreToken{
        dht::TokenKind::kIncrement,
        "entry-with-a-reasonably-long-name-" + std::to_string(i), 1, {}});
  }
  auto pr = core::awaitResult<dht::PutResult>(
      b.runtimeFor(2), [&](std::function<void(dht::PutResult)> done) {
        b.nodes[2]->putMany(key, tokens, std::move(done));
      });
  EXPECT_GE(pr.acks, 1u);

  dht::GetOptions all;
  all.topN = 0;
  all.maxBytes = 0;
  auto gr = core::awaitResult<dht::GetResult>(
      b.runtimeFor(3), [&](std::function<void(dht::GetResult)> done) {
        b.nodes[3]->get(key, all, std::move(done));
      });
  ASSERT_TRUE(gr.found());
  // Index-side filtering may trim a single reply to the MTU, but the
  // stored block itself must hold every entry of every chunk.
  EXPECT_EQ(gr.view->totalEntries, 100u);
}

TYPED_TEST(TransportConformance, ClientProtocolAndCostIdentities) {
  TypeParam b;
  boot(b, 5);

  core::DharmaConfig ccfg;  // defaults: approx A+B, k = 1
  core::DharmaClient client(b.runtimeFor(2), *b.nodes[2], ccfg);

  auto ins = client.insertResource("res", "uri://res", {"rock", "jazz"});
  ASSERT_TRUE(ins.ok()) << "insert failed";
  EXPECT_EQ(ins.cost.lookups, 2u + 2u * 2u);  // Table I: 2 + 2m

  auto tag = client.tagResource("res", "blues");
  ASSERT_TRUE(tag.ok()) << "tag failed";
  EXPECT_EQ(tag.cost.lookups, 4u + ccfg.k);  // Table I: 4 + k

  auto step = client.searchStep("rock");
  ASSERT_TRUE(step.ok()) << "searchStep failed";
  bool sawRes = false;
  for (const auto& e : step.val->resources) sawRes |= e.name == "res";
  EXPECT_TRUE(sawRes) << "search step did not surface the resource";
  EXPECT_EQ(step.cost.lookups, 2u);  // Table I: 2 per navigation step

  auto uri = client.resolveUri("res");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(*uri.val, "uri://res");
  EXPECT_EQ(uri.cost.lookups, 1u);

  EXPECT_EQ(client.counters().failures, 0u);
}

// ---------------------------------------------------------------------------
// DatagramTransport units, typed over both concrete backends: the
// poll()-based UdpTransport everywhere, plus EpollTransport on Linux. One
// body, two syscall paths.
// ---------------------------------------------------------------------------

template <typename Transport>
class DatagramTransportConformance : public ::testing::Test {
 protected:
  net::RealTimeExecutor exec;
  Transport t{exec};

  DatagramTransportConformance() { exec.start(); }
  ~DatagramTransportConformance() override {
    exec.stop();
    t.close();
  }
};

#ifdef __linux__
using DatagramBackends =
    ::testing::Types<net::UdpTransport, net::EpollTransport>;
#else
using DatagramBackends = ::testing::Types<net::UdpTransport>;
#endif
TYPED_TEST_SUITE(DatagramTransportConformance, DatagramBackends, );

TYPED_TEST(DatagramTransportConformance, OversizePayloadRejectedSynchronously) {
  auto& t = this->t;
  net::Address a = t.registerEndpoint([](net::Address, const std::vector<u8>&) {});
  net::Address bAddr = t.registerEndpoint([](net::Address, const std::vector<u8>&) {});
  EXPECT_FALSE(t.send(a, bAddr, std::vector<u8>(t.mtuBytes() + 1, 0x7f)));
  EXPECT_EQ(t.stats().droppedOversize, 1u);
  EXPECT_TRUE(t.send(a, bAddr, std::vector<u8>(64, 0x7f)));
}

TEST(UdpTransport, ResolvePeerParsesAnyNumericIpv4) {
  constexpr u32 kLoopbackIp = 0x7F000001;  // 127.0.0.1 in host order
  net::RealTimeExecutor exec;
  net::UdpTransport t(exec);

  auto r = t.resolvePeer("127.0.0.1:9000");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.addr, net::makeAddress(kLoopbackIp, 9000));

  r = t.resolvePeer("localhost:1234");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.addr, net::makeAddress(kLoopbackIp, 1234));

  // Bare port: host defaults to the bind host.
  r = t.resolvePeer("4000");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.addr, net::makeAddress(kLoopbackIp, 4000));

  // Foreign hosts are real addresses now, not silently null (the PR 5
  // regression this suite pins): any numeric IPv4 resolves.
  r = t.resolvePeer("10.0.0.1:9000");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.addr, net::makeAddress(0x0A000001, 9000));
  EXPECT_EQ(net::formatAddress(r.addr), "10.0.0.1:9000");
}

TEST(UdpTransport, ResolvePeerSurfacesTypedErrors) {
  net::RealTimeExecutor exec;
  net::UdpTransport t(exec);

  auto r = t.resolvePeer("not-a-host:9000");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, net::PeerResolution::Error::kBadHost);
  EXPECT_STREQ(r.errorName(), "bad-host");
  EXPECT_EQ(r.addr, net::kNullAddress);

  for (const char* bad : {"127.0.0.1:notaport", "127.0.0.1:0",
                          "127.0.0.1:70000", "127.0.0.1:"}) {
    r = t.resolvePeer(bad);
    EXPECT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.error, net::PeerResolution::Error::kBadPort) << bad;
  }
}

TYPED_TEST(DatagramTransportConformance, EndpointAddressCarriesBindIpAndPort) {
  auto& t = this->t;
  net::Address a = t.registerEndpoint([](net::Address, const std::vector<u8>&) {});
  EXPECT_EQ(net::addressIp(a), 0x7F000001u) << "default bind host is loopback";
  EXPECT_GT(net::addressPort(a), 0u);
  EXPECT_EQ(net::formatAddress(a),
            "127.0.0.1:" + std::to_string(net::addressPort(a)));
}

TYPED_TEST(DatagramTransportConformance, DropRulesPartitionBothDirections) {
  auto& t = this->t;
  std::atomic<int> delivered{0};
  std::promise<void> controlArrived;
  net::Address a = t.registerEndpoint([](net::Address, const std::vector<u8>&) {});
  net::Address b = t.registerEndpoint(
      [&](net::Address, const std::vector<u8>& data) {
        delivered.fetch_add(1);
        if (data.size() == 1 && data[0] == 0xEE) controlArrived.set_value();
      });

  // Outbound rule: datagrams TO a dropped peer vanish (send still "works",
  // exactly like real loss in a partition).
  t.dropPeer(b);
  EXPECT_TRUE(t.send(a, b, {1}));
  EXPECT_EQ(t.droppedPeerCount(), 1u);
  ASSERT_TRUE(t.undropPeer(b));
  EXPECT_FALSE(t.undropPeer(b));  // second removal: rule already gone

  // Inbound rule: datagrams FROM a dropped peer are discarded at receive.
  // The rule stays installed while a control datagram from an UN-dropped
  // third endpoint chases the doomed one into b's socket buffer: loopback
  // sendto queues synchronously, so by the time the control is handled the
  // {2} datagram has already been through the receive path — dropped, not
  // merely late.
  net::Address c = t.registerEndpoint([](net::Address, const std::vector<u8>&) {});
  t.dropPeer(a);
  EXPECT_TRUE(t.send(a, b, {2}));
  EXPECT_TRUE(t.send(c, b, {0xEE}));
  auto fut = controlArrived.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(delivered.load(), 1);
  EXPECT_EQ(t.stats().droppedByRule, 2u);
  EXPECT_EQ(t.clearDroppedPeers(), 1u);
}

TYPED_TEST(DatagramTransportConformance, DeliversDatagramToHandlerOnExecutor) {
  auto& t = this->t;
  std::promise<std::pair<net::Address, std::vector<u8>>> got;
  net::Address sender = t.registerEndpoint([](net::Address, const std::vector<u8>&) {});
  net::Address receiver = t.registerEndpoint(
      [&](net::Address from, const std::vector<u8>& data) {
        got.set_value({from, data});
      });
  ASSERT_TRUE(t.send(sender, receiver, {1, 2, 3, 4}));
  auto fut = got.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  auto [from, data] = fut.get();
  EXPECT_EQ(from, sender);  // source resolved to the sending endpoint's port
  EXPECT_EQ(data, (std::vector<u8>{1, 2, 3, 4}));
}

TYPED_TEST(DatagramTransportConformance, SetHandlerSwapsReceiver) {
  auto& t = this->t;
  net::Address sender = t.registerEndpoint([](net::Address, const std::vector<u8>&) {});
  std::promise<int> got;
  net::Address receiver = t.registerEndpoint(
      [&](net::Address, const std::vector<u8>&) { got.set_value(1); });
  t.setHandler(receiver, [&](net::Address, const std::vector<u8>&) {
    got.set_value(2);
  });
  ASSERT_TRUE(t.send(sender, receiver, {9}));
  auto fut = got.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(fut.get(), 2);  // the swapped-in handler got the datagram
}

TYPED_TEST(DatagramTransportConformance, CloseIsIdempotentAndStopsSends) {
  auto& t = this->t;
  net::Address a = t.registerEndpoint([](net::Address, const std::vector<u8>&) {});
  t.close();
  t.close();  // idempotent
  EXPECT_FALSE(t.send(a, a, {1}));
  EXPECT_FALSE(t.isOnline(a));
}

// Regression pin for the event-driven receive loop: the old implementation
// slept in poll() with a 200 ms timeout and close() could eat a whole tick
// waiting for the loop to notice. Wakeups are self-pipe/eventfd driven now,
// so close() — measured from a receive thread that is definitely parked in
// its wait — must return in far less than one old tick, even on a loaded
// CI machine.
TYPED_TEST(DatagramTransportConformance, CloseDoesNotWaitAPollTickOut) {
  auto& t = this->t;
  std::promise<void> delivered;
  net::Address sender = t.registerEndpoint([](net::Address, const std::vector<u8>&) {});
  net::Address receiver = t.registerEndpoint(
      [&](net::Address, const std::vector<u8>&) { delivered.set_value(); });
  ASSERT_TRUE(t.send(sender, receiver, {1}));
  ASSERT_EQ(delivered.get_future().wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  // The receive thread has processed the datagram and is back in (or headed
  // into) its indefinite wait: exactly the state the old code escaped only
  // via timeout.
  auto t0 = std::chrono::steady_clock::now();
  t.close();
  auto closeMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  EXPECT_LT(closeMs, 150.0) << "close() latency regressed toward the old "
                               "200 ms poll-tick floor";
}

}  // namespace
}  // namespace dharma
