/// Unit tests for util/rng.hpp (determinism, ranges, distribution moments).

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dharma {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<u64> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[static_cast<usize>(i)]);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(42);
  for (u64 bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformBoundOneAlwaysZero) {
  Rng rng(42);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(42);
  constexpr u64 kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBuckets), 600);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    i64 v = rng.uniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.uniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    sum += v;
  }
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(12);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, GeometricMean) {
  Rng rng(14);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.geometric(0.5));
  // E[failures before success] = (1-p)/p = 1.
  EXPECT_NEAR(sum / kN, 1.0, 0.05);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(16);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kN), 0.3, 0.01);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(18);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<usize>(i)] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(19);
  for (u32 n : {5u, 10u, 100u}) {
    for (u32 k = 1; k <= std::min(n, 10u); ++k) {
      auto idx = rng.sampleIndices(n, k);
      ASSERT_EQ(idx.size(), k);
      std::set<u32> uniq(idx.begin(), idx.end());
      EXPECT_EQ(uniq.size(), k);
      for (u32 i : idx) EXPECT_LT(i, n);
    }
  }
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(20);
  auto idx = rng.sampleIndices(8, 8);
  std::set<u32> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 8u);
}

TEST(Rng, SampleIndicesUniformCoverage) {
  Rng rng(21);
  std::vector<int> counts(20, 0);
  for (int rep = 0; rep < 20000; ++rep) {
    for (u32 i : rng.sampleIndices(20, 3)) ++counts[i];
  }
  // Each index expected 20000 * 3/20 = 3000 times.
  for (int c : counts) EXPECT_NEAR(c, 3000, 250);
}

TEST(Rng, ForkIndependence) {
  Rng parent(22);
  Rng childA = parent.fork();
  Rng childB = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (childA.next() == childB.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkDeterministic) {
  Rng p1(23), p2(23);
  Rng c1 = p1.fork();
  Rng c2 = p2.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next(), c2.next());
}

TEST(Splitmix64, KnownDistinctness) {
  // splitmix64 must not collapse consecutive inputs.
  std::set<u64> seen;
  for (u64 i = 0; i < 10000; ++i) seen.insert(splitmix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace dharma
