/// Tests for faceted search (folksonomy/faceted.hpp) — convergence,
/// strategies, display capping, stop conditions (paper Section III-C/V-C).

#include "folksonomy/faceted.hpp"

#include <gtest/gtest.h>

#include "folksonomy/derive.hpp"
#include "folksonomy/model.hpp"

namespace dharma::folk {
namespace {

/// A small dense folksonomy: 30 resources, 10 tags, overlapping tag sets.
struct Fixture {
  Trg trg;
  CsrFg fg;

  Fixture() {
    Rng rng(42);
    for (u32 r = 0; r < 30; ++r) {
      usize deg = 2 + rng.uniform(4);
      std::vector<u32> tags;
      while (tags.size() < deg) {
        u32 t = static_cast<u32>(rng.uniform(10));
        if (std::find(tags.begin(), tags.end(), t) == tags.end()) {
          tags.push_back(t);
        }
      }
      for (u32 t : tags) {
        trg.addAnnotation(r, t, 1 + static_cast<u32>(rng.uniform(4)));
      }
    }
    trg.freeze();
    fg = deriveExactFg(trg);
  }
};

TEST(Faceted, StartPopulatesSets) {
  Fixture f;
  SearchConfig cfg;
  cfg.resourceStop = 0;  // don't stop early in this test
  SearchSession s(f.fg, f.trg, cfg);
  s.start(0);
  EXPECT_EQ(s.path().size(), 1u);
  EXPECT_EQ(s.candidateTags().size(), f.fg.outDegree(0));
  EXPECT_EQ(s.resources().size(), f.trg.tagDegree(0));
}

TEST(Faceted, CandidateSetsShrinkMonotonically) {
  Fixture f;
  SearchConfig cfg;
  cfg.resourceStop = 0;
  SearchSession s(f.fg, f.trg, cfg);
  s.start(0);
  Rng rng(1);
  usize prevTags = s.candidateTags().size();
  usize prevRes = s.resources().size();
  while (!s.done()) {
    s.selectByStrategy(Strategy::kRandom, rng);
    EXPECT_LT(s.candidateTags().size(), prevTags);  // strict: |Ti| < |Ti-1|
    EXPECT_LE(s.resources().size(), prevRes);
    prevTags = s.candidateTags().size();
    prevRes = s.resources().size();
  }
}

TEST(Faceted, ChosenTagsNeverRedisplayed) {
  Fixture f;
  SearchConfig cfg;
  cfg.resourceStop = 0;
  SearchSession s(f.fg, f.trg, cfg);
  s.start(0);
  Rng rng(2);
  std::set<u32> chosen{0};
  while (!s.done()) {
    for (const auto& d : s.display()) {
      EXPECT_EQ(chosen.count(d.tag), 0u) << "tag " << d.tag << " redisplayed";
    }
    chosen.insert(s.selectByStrategy(Strategy::kRandom, rng));
  }
}

TEST(Faceted, ConvergesWithinTagCountSteps) {
  // Convergence bound: at most |T0| steps (paper: O(|T0|)).
  Fixture f;
  SearchConfig cfg;
  cfg.resourceStop = 0;
  Rng rng(3);
  for (u32 t0 = 0; t0 < 10; ++t0) {
    SearchResult r = runSearch(f.fg, f.trg, t0, Strategy::kRandom, rng, cfg);
    EXPECT_LE(r.steps, f.fg.outDegree(t0) + 1);
  }
}

TEST(Faceted, DisplayRankedBySimilarity) {
  Fixture f;
  SearchSession s(f.fg, f.trg);
  s.start(0);
  const auto& d = s.display();
  for (usize i = 1; i < d.size(); ++i) {
    EXPECT_GE(d[i - 1].weight, d[i].weight);
  }
}

TEST(Faceted, DisplayCapEnforced) {
  Fixture f;
  SearchConfig cfg;
  cfg.displayCap = 2;
  SearchSession s(f.fg, f.trg, cfg);
  s.start(0);
  EXPECT_LE(s.display().size(), 2u);
}

TEST(Faceted, FirstStrategyPicksMostSimilar) {
  Fixture f;
  SearchConfig cfg;
  cfg.resourceStop = 0;
  SearchSession s(f.fg, f.trg, cfg);
  s.start(0);
  ASSERT_FALSE(s.done());
  u64 topW = s.display().front().weight;
  Rng rng(4);
  u32 picked = s.selectByStrategy(Strategy::kFirst, rng);
  EXPECT_EQ(f.fg.weightOf(0, picked), topW);
}

TEST(Faceted, LastStrategyPicksLeastDisplayed) {
  Fixture f;
  SearchConfig cfg;
  cfg.resourceStop = 0;
  SearchSession s(f.fg, f.trg, cfg);
  s.start(0);
  ASSERT_FALSE(s.done());
  u64 bottomW = s.display().back().weight;
  Rng rng(5);
  u32 picked = s.selectByStrategy(Strategy::kLast, rng);
  EXPECT_EQ(f.fg.weightOf(0, picked), bottomW);
}

TEST(Faceted, ResourceStopTriggers) {
  Fixture f;
  SearchConfig cfg;
  cfg.resourceStop = 1000000;  // everything is "few enough"
  SearchSession s(f.fg, f.trg, cfg);
  s.start(0);
  EXPECT_TRUE(s.done());
  EXPECT_EQ(s.reason(), StopReason::kResourcesNarrowed);
}

TEST(Faceted, IsolatedTagStopsImmediately) {
  Trg trg;
  trg.addAnnotation(0, 0, 1);  // tag 0 alone on resource 0
  trg.addAnnotation(1, 1, 1);
  trg.addAnnotation(1, 2, 1);
  trg.freeze();
  CsrFg fg = deriveExactFg(trg);
  SearchConfig cfg;
  cfg.resourceStop = 0;
  SearchSession s(fg, trg, cfg);
  s.start(0);
  EXPECT_TRUE(s.done());
  EXPECT_EQ(s.reason(), StopReason::kTagsExhausted);
}

TEST(Faceted, RunSearchResultConsistent) {
  Fixture f;
  Rng rng(6);
  SearchConfig cfg;
  cfg.resourceStop = 0;
  SearchResult r = runSearch(f.fg, f.trg, 0, Strategy::kRandom, rng, cfg);
  EXPECT_EQ(r.steps, r.path.size() - 1);
  EXPECT_EQ(r.path.front(), 0u);
  EXPECT_NE(r.reason, StopReason::kMaxSteps);
}

TEST(Faceted, ResourcesIntersectCorrectly) {
  // Hand-built: r0 has {t0,t1}, r1 has {t0,t1}, r2 has {t0,t2}.
  Trg trg;
  trg.addAnnotation(0, 0);
  trg.addAnnotation(0, 1);
  trg.addAnnotation(1, 0);
  trg.addAnnotation(1, 1);
  trg.addAnnotation(2, 0);
  trg.addAnnotation(2, 2);
  trg.freeze();
  CsrFg fg = deriveExactFg(trg);
  SearchConfig cfg;
  cfg.resourceStop = 0;
  SearchSession s(fg, trg, cfg);
  s.start(0);  // R0 = {r0, r1, r2}
  EXPECT_EQ(s.resources().size(), 3u);
  ASSERT_FALSE(s.done());
  s.select(1);  // R1 = R0 ∩ Res(t1) = {r0, r1}
  EXPECT_EQ(s.resources().size(), 2u);
}

TEST(Faceted, MostPopularTagsOrdered) {
  Fixture f;
  auto top = mostPopularTags(f.trg, 5);
  ASSERT_EQ(top.size(), 5u);
  for (usize i = 1; i < top.size(); ++i) {
    EXPECT_GE(f.trg.tagDegree(top[i - 1]), f.trg.tagDegree(top[i]));
  }
}

TEST(Faceted, MostPopularTagsFewerThanRequested) {
  Trg trg;
  trg.addAnnotation(0, 0);
  trg.addAnnotation(0, 1);
  trg.freeze();
  EXPECT_EQ(mostPopularTags(trg, 10).size(), 2u);
}

TEST(Faceted, SelectOnDoneThrows) {
  Fixture f;
  SearchConfig cfg;
  cfg.resourceStop = 1000000;
  SearchSession s(f.fg, f.trg, cfg);
  s.start(0);
  ASSERT_TRUE(s.done());
  EXPECT_THROW(s.select(1), std::logic_error);
}

TEST(Faceted, ApproximatedGraphSearchesWork) {
  // Search on an FG evolved with A+B (the Section V-C "simulated" graph).
  Fixture f;
  Rng rng(7);
  FolksonomyModel m(approxMode(1), 9);
  for (u32 r = 0; r < f.trg.resourceSpan(); ++r) {
    for (const auto& e : f.trg.tagsOf(r)) {
      for (u32 i = 0; i < e.weight; ++i) m.tagResource(r, e.tag);
    }
  }
  CsrFg approxFg = m.freezeFg();
  SearchConfig cfg;
  cfg.resourceStop = 0;
  SearchResult r = runSearch(approxFg, f.trg, 0, Strategy::kRandom, rng, cfg);
  EXPECT_GE(r.steps, 0u);
  EXPECT_NE(r.reason, StopReason::kMaxSteps);
}

}  // namespace
}  // namespace dharma::folk
