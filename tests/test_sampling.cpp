/// Unit tests for util/sampling.hpp (alias table, Zipf, Fenwick sampler).

#include "util/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace dharma {
namespace {

TEST(AliasTable, MatchesWeights) {
  std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  AliasTable t(w);
  Rng rng(1);
  std::vector<int> counts(4, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[t.sample(rng)];
  for (usize i = 0; i < 4; ++i) {
    double expect = w[i] / 10.0;
    EXPECT_NEAR(counts[i] / static_cast<double>(kN), expect, 0.01);
  }
}

TEST(AliasTable, ZeroWeightNeverDrawn) {
  AliasTable t(std::vector<double>{0.0, 1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    u32 v = t.sample(rng);
    EXPECT_TRUE(v == 1 || v == 3);
  }
}

TEST(AliasTable, SingleCategory) {
  AliasTable t(std::vector<double>{5.0});
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t.sample(rng), 0u);
}

TEST(AliasTable, RejectsBadInput) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{-1.0, 2.0}), std::invalid_argument);
}

TEST(AliasTable, ManyCategoriesUniform) {
  std::vector<double> w(1000, 1.0);
  AliasTable t(w);
  Rng rng(4);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 500000; ++i) ++counts[t.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 500, 120);
}

TEST(Zipf, RankOneMostProbable) {
  ZipfSampler z(100, 1.0);
  Rng rng(5);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(Zipf, ExponentZeroIsUniform) {
  ZipfSampler z(50, 0.0);
  Rng rng(6);
  std::vector<int> counts(51, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (int r = 1; r <= 50; ++r) EXPECT_NEAR(counts[r], kN / 50, 300);
}

TEST(Zipf, TheoreticalRatio) {
  // P(1)/P(2) = 2^s for Zipf(s).
  ZipfSampler z(1000, 1.5);
  Rng rng(7);
  int c1 = 0, c2 = 0;
  for (int i = 0; i < 400000; ++i) {
    u32 r = z.sample(rng);
    c1 += r == 1;
    c2 += r == 2;
  }
  EXPECT_NEAR(static_cast<double>(c1) / c2, std::pow(2.0, 1.5), 0.15);
}

TEST(Zipf, SampleIndexIsZeroBased) {
  ZipfSampler z(10, 1.0);
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(z.sampleIndex(rng), 10u);
  }
}

TEST(Zipf, RejectsZeroN) {
  ZipfSampler z;
  EXPECT_THROW(z.build(0, 1.0), std::invalid_argument);
}

TEST(Fenwick, SamplesProportionally) {
  FenwickSampler f(std::vector<double>{1, 0, 3, 0, 6});
  Rng rng(9);
  std::vector<int> counts(5, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[f.sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[3], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_NEAR(counts[4] / static_cast<double>(kN), 0.6, 0.01);
}

TEST(Fenwick, SetToZeroRemoves) {
  FenwickSampler f(std::vector<double>{1, 1, 1, 1});
  f.set(2, 0.0);
  Rng rng(10);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(f.sample(rng), 2u);
  EXPECT_DOUBLE_EQ(f.total(), 3.0);
}

TEST(Fenwick, SetIncrease) {
  FenwickSampler f(std::vector<double>{1, 1});
  f.set(0, 9.0);
  Rng rng(11);
  int c0 = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) c0 += f.sample(rng) == 0;
  EXPECT_NEAR(c0 / static_cast<double>(kN), 0.9, 0.01);
}

TEST(Fenwick, DrainToSingle) {
  FenwickSampler f(std::vector<double>{2, 5, 7});
  f.set(0, 0.0);
  f.set(2, 0.0);
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(f.sample(rng), 1u);
}

TEST(Fenwick, WeightReadback) {
  FenwickSampler f(std::vector<double>{1.5, 2.5});
  EXPECT_DOUBLE_EQ(f.weight(0), 1.5);
  EXPECT_DOUBLE_EQ(f.weight(1), 2.5);
  EXPECT_DOUBLE_EQ(f.total(), 4.0);
  f.set(1, 0.5);
  EXPECT_DOUBLE_EQ(f.weight(1), 0.5);
  EXPECT_DOUBLE_EQ(f.total(), 2.0);
}

TEST(Fenwick, NonPowerOfTwoSize) {
  std::vector<double> w(13, 1.0);
  FenwickSampler f(w);
  Rng rng(13);
  std::vector<int> counts(13, 0);
  for (int i = 0; i < 130000; ++i) ++counts[f.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(ZipfWeights, Shape) {
  auto w = zipfWeights(4, 1.0);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_NEAR(w[3], 0.25, 1e-12);
}

/// Property sweep: alias sampling over random weight vectors reproduces the
/// normalised weights within statistical tolerance.
class AliasProperty : public ::testing::TestWithParam<u64> {};

TEST_P(AliasProperty, EmpiricalMatchesTheoretical) {
  Rng rng(GetParam());
  usize n = 2 + rng.uniform(30);
  std::vector<double> w(n);
  double sum = 0;
  for (auto& x : w) {
    x = rng.uniformDouble() * 10.0;
    sum += x;
  }
  if (sum == 0) {
    w[0] = 1;
    sum = 1;
  }
  AliasTable t(w);
  std::vector<int> counts(n, 0);
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) ++counts[t.sample(rng)];
  for (usize i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(kN), w[i] / sum, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AliasProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dharma
