/// Tests for exact and approximated folksonomy maintenance
/// (folksonomy/model.hpp) — including the paper's Figure 2 examples and the
/// structural invariants of Approximations A and B.

#include "folksonomy/model.hpp"

#include <gtest/gtest.h>

#include "folksonomy/derive.hpp"

namespace dharma::folk {
namespace {

constexpr u32 t1 = 0, t2 = 1, t3 = 2;
constexpr u32 r1 = 0, r2 = 1, r3 = 2;

/// Builds the initial state of the paper's Figure 2: r1 tagged t1 (u=1),
/// r2 tagged t1 (u=3) and t2 (u=2); FG: sim(t1,t2)=3, sim(t2,t1)=2.
FolksonomyModel figure2Start(MaintenanceConfig cfg = exactMode()) {
  FolksonomyModel m(cfg, /*seed=*/1);
  m.insertResource(r1, std::vector<u32>{t1});
  m.insertResource(r2, std::vector<u32>{t1, t2});
  // Raise u(t1,r2) to 3 and u(t2,r2) to 2 by re-tagging.
  m.tagResource(r2, t1);
  m.tagResource(r2, t1);
  m.tagResource(r2, t2);
  return m;
}

TEST(ModelExact, Figure2InitialState) {
  FolksonomyModel m = figure2Start();
  EXPECT_EQ(m.trg().weight(r1, t1), 1u);
  EXPECT_EQ(m.trg().weight(r2, t1), 3u);
  EXPECT_EQ(m.trg().weight(r2, t2), 2u);
  // sim(t1,t2): insert gives 1, then re-tag t1 twice (sim(t1,t2) unchanged
  // — t1 already present, forward skipped; reverse touches (t2,t1));
  // re-tag t2 once increments sim(t1,t2) by 1... Let's check against the
  // defining formula instead: sim(t1,t2) = Σ_{r∈Res(t1)} u(t2,r) = u(t2,r2) = 2.
  EXPECT_EQ(m.fg().weight(t1, t2), 2u);
  // sim(t2,t1) = u(t1,r2) = 3.
  EXPECT_EQ(m.fg().weight(t2, t1), 3u);
}

TEST(ModelExact, Figure2aResourceInsertion) {
  FolksonomyModel m = figure2Start();
  u64 s12 = m.fg().weight(t1, t2);
  u64 s21 = m.fg().weight(t2, t1);
  // Insert r3 labelled {t1, t2, t3} (Figure 2a): every ordered pair +1.
  m.insertResource(r3, std::vector<u32>{t1, t2, t3});
  EXPECT_EQ(m.fg().weight(t1, t2), s12 + 1);
  EXPECT_EQ(m.fg().weight(t2, t1), s21 + 1);
  EXPECT_EQ(m.fg().weight(t1, t3), 1u);
  EXPECT_EQ(m.fg().weight(t3, t1), 1u);
  EXPECT_EQ(m.fg().weight(t2, t3), 1u);
  EXPECT_EQ(m.fg().weight(t3, t2), 1u);
  EXPECT_EQ(m.trg().weight(r3, t1), 1u);
  EXPECT_EQ(m.trg().weight(r3, t2), 1u);
  EXPECT_EQ(m.trg().weight(r3, t3), 1u);
}

TEST(ModelExact, Figure2bTagInsertion) {
  FolksonomyModel m = figure2Start();
  // Attach t3 to r2 (Figure 2b). Reverse: sim(t1,t3) += 1, sim(t2,t3) += 1.
  // Forward (t3 is new on r2): sim(t3,t1) += u(t1,r2) = 3,
  //                            sim(t3,t2) += u(t2,r2) = 2.
  m.tagResource(r2, t3);
  EXPECT_EQ(m.fg().weight(t1, t3), 1u);
  EXPECT_EQ(m.fg().weight(t2, t3), 1u);
  EXPECT_EQ(m.fg().weight(t3, t1), 3u);
  EXPECT_EQ(m.fg().weight(t3, t2), 2u);
  // The t1<->t2 arc is untouched.
  EXPECT_EQ(m.fg().weight(t1, t2), 2u);
  EXPECT_EQ(m.fg().weight(t2, t1), 3u);
}

TEST(ModelExact, RetagExistingLeavesForwardUnchanged) {
  FolksonomyModel m = figure2Start();
  u64 fwd12 = m.fg().weight(t1, t2);
  u64 rev21 = m.fg().weight(t2, t1);
  // t1 is already on r2: forward sim(t1,·) must not change; reverse
  // sim(t2,t1) gains 1.
  m.tagResource(r2, t1);
  EXPECT_EQ(m.fg().weight(t1, t2), fwd12);
  EXPECT_EQ(m.fg().weight(t2, t1), rev21 + 1);
}

TEST(ModelExact, DuplicateTagsInInsertIgnored) {
  FolksonomyModel m;
  m.insertResource(0, std::vector<u32>{5, 5, 6});
  EXPECT_EQ(m.trg().weight(0, 5), 1u);
  EXPECT_EQ(m.fg().weight(5, 6), 1u);
  EXPECT_EQ(m.fg().weight(6, 5), 1u);
  EXPECT_EQ(m.fg().arcCount(), 2u);
}

TEST(ModelExact, SingleTagInsertNoArcs) {
  FolksonomyModel m;
  m.insertResource(0, std::vector<u32>{3});
  EXPECT_EQ(m.fg().arcCount(), 0u);
}

TEST(ModelExact, TaggingUnknownResourceStartsEmpty) {
  // Section V-B replays start from an empty graph via tagResource only.
  FolksonomyModel m;
  m.tagResource(42, 7);
  EXPECT_EQ(m.trg().weight(42, 7), 1u);
  EXPECT_EQ(m.fg().arcCount(), 0u);  // no co-tags yet
  m.tagResource(42, 8);
  EXPECT_EQ(m.fg().weight(7, 8), 1u);  // reverse +1
  EXPECT_EQ(m.fg().weight(8, 7), 1u);  // forward: u(7, r42) = 1
}

/// THE core invariant: incremental exact maintenance reproduces the
/// defining formula sim(t1,t2) = Σ_{r∈Res(t1)} u(t2,r) — i.e. it matches
/// the FG derived from scratch out of the final TRG, for random operation
/// sequences.
class ExactEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(ExactEquivalence, IncrementalMatchesDerived) {
  Rng rng(GetParam());
  FolksonomyModel m(exactMode(), GetParam());
  u32 nextRes = 0;
  constexpr u32 kTags = 12;
  for (int op = 0; op < 400; ++op) {
    if (rng.uniformDouble() < 0.3 || nextRes == 0) {
      usize m_ = 1 + rng.uniform(4);
      std::vector<u32> tags;
      for (usize i = 0; i < m_; ++i) {
        tags.push_back(static_cast<u32>(rng.uniform(kTags)));
      }
      m.insertResource(nextRes++, tags);
    } else {
      u32 r = static_cast<u32>(rng.uniform(nextRes));
      u32 t = static_cast<u32>(rng.uniform(kTags));
      m.tagResource(r, t);
    }
  }
  DynamicFg derived = deriveExactFgDynamic(m.trg());
  EXPECT_EQ(m.fg().arcCount(), derived.arcCount());
  EXPECT_EQ(m.fg().totalWeight(), derived.totalWeight());
  bool allEqual = true;
  m.fg().forEachArc([&](u32 a, u32 b, u64 w) {
    if (derived.weight(a, b) != w) allEqual = false;
  });
  EXPECT_TRUE(allEqual);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

/// Approximation invariants, swept over k and seeds:
///  - the TRG is identical under any maintenance mode;
///  - approximated arcs are a subset of exact arcs;
///  - approximated weights never exceed exact weights.
struct ApproxCase {
  u32 k;
  u64 seed;
};

class ApproxInvariants : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(ApproxInvariants, SubsetAndBounded) {
  auto [k, seed] = GetParam();
  Rng rng(seed);
  FolksonomyModel exact(exactMode(), seed);
  FolksonomyModel approx(approxMode(k), seed);
  u32 nextRes = 0;
  constexpr u32 kTags = 15;
  // Same operation sequence into both models.
  for (int op = 0; op < 600; ++op) {
    if (rng.uniformDouble() < 0.25 || nextRes == 0) {
      usize m_ = 1 + rng.uniform(5);
      std::vector<u32> tags;
      for (usize i = 0; i < m_; ++i) {
        tags.push_back(static_cast<u32>(rng.uniform(kTags)));
      }
      exact.insertResource(nextRes, tags);
      approx.insertResource(nextRes, tags);
      ++nextRes;
    } else {
      u32 r = static_cast<u32>(rng.uniform(nextRes));
      u32 t = static_cast<u32>(rng.uniform(kTags));
      exact.tagResource(r, t);
      approx.tagResource(r, t);
    }
  }
  // TRG identical.
  EXPECT_EQ(exact.trg().numEdges(), approx.trg().numEdges());
  EXPECT_EQ(exact.trg().numAnnotations(), approx.trg().numAnnotations());
  for (u32 r = 0; r < nextRes; ++r) {
    for (const auto& e : exact.trg().tagsOf(r)) {
      ASSERT_EQ(approx.trg().weight(r, e.tag), e.weight);
    }
  }
  // FG: subset + bounded weights.
  EXPECT_LE(approx.fg().arcCount(), exact.fg().arcCount());
  EXPECT_LE(approx.fg().totalWeight(), exact.fg().totalWeight());
  bool subset = true, bounded = true;
  approx.fg().forEachArc([&](u32 a, u32 b, u64 w) {
    u64 ew = exact.fg().weight(a, b);
    if (ew == 0) subset = false;
    if (w > ew) bounded = false;
  });
  EXPECT_TRUE(subset);
  EXPECT_TRUE(bounded);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproxInvariants,
    ::testing::Values(ApproxCase{1, 1}, ApproxCase{1, 2}, ApproxCase{2, 3},
                      ApproxCase{5, 4}, ApproxCase{10, 5}, ApproxCase{100, 6}));

TEST(ApproxA, ReverseUpdatesCappedAtK) {
  MaintenanceConfig cfg = approxAOnly(2);
  FolksonomyModel m(cfg, 3);
  m.insertResource(0, std::vector<u32>{0, 1, 2, 3, 4, 5, 6, 7});
  u64 before = m.counters().reverseArcUpdates;
  m.tagResource(0, 9);
  EXPECT_EQ(m.counters().reverseArcUpdates - before, 2u);  // k = 2, not 8
}

TEST(ApproxA, NaiveUpdatesAllCoTags) {
  FolksonomyModel m(exactMode(), 3);
  m.insertResource(0, std::vector<u32>{0, 1, 2, 3, 4, 5, 6, 7});
  u64 before = m.counters().reverseArcUpdates;
  m.tagResource(0, 9);
  EXPECT_EQ(m.counters().reverseArcUpdates - before, 8u);  // |Tags(r)|
}

TEST(ApproxA, LargeKDegeneratesToExact) {
  // k >= |Tags(r)| always: A has no effect, so A-only == exact.
  Rng rng(8);
  FolksonomyModel exact(exactMode(), 5);
  FolksonomyModel approx(approxAOnly(1000), 5);
  for (int i = 0; i < 50; ++i) {
    u32 r = static_cast<u32>(rng.uniform(10));
    u32 t = static_cast<u32>(rng.uniform(8));
    exact.tagResource(r, t);
    approx.tagResource(r, t);
  }
  EXPECT_EQ(exact.fg().totalWeight(), approx.fg().totalWeight());
  EXPECT_EQ(exact.fg().arcCount(), approx.fg().arcCount());
}

TEST(ApproxB, NewArcStartsAtOne) {
  FolksonomyModel m(approxBOnly(), 1);
  // Build u(t1, r) = 5, then attach t2: exact forward would be 5; B gives 1.
  m.tagResource(0, t1);
  for (int i = 0; i < 4; ++i) m.tagResource(0, t1);
  m.tagResource(0, t2);
  EXPECT_EQ(m.fg().weight(t2, t1), 1u);  // Approximation B
  EXPECT_EQ(m.fg().weight(t1, t2), 1u);  // reverse +1 (unaffected by B)
}

TEST(ApproxB, ExistingArcGetsExactIncrement) {
  FolksonomyModel m(approxBOnly(), 1);
  // Create arc (t2,t1) via resource 0 first.
  m.insertResource(0, std::vector<u32>{t1, t2});
  ASSERT_EQ(m.fg().weight(t2, t1), 1u);
  // On resource 1: u(t1,r1)=4, then t2 arrives. Arc exists => += u(τ,r)=4.
  for (int i = 0; i < 4; ++i) m.tagResource(1, t1);
  m.tagResource(1, t2);
  EXPECT_EQ(m.fg().weight(t2, t1), 1u + 4u);
}

TEST(ModelCounters, OperationCountsTrack) {
  FolksonomyModel m(exactMode(), 1);
  m.insertResource(0, std::vector<u32>{0, 1});
  m.tagResource(0, 2);
  EXPECT_EQ(m.counters().resourceInsertions, 1u);
  EXPECT_EQ(m.counters().tagInsertions, 1u);
}

TEST(ModelFreeze, FreezeFgMatchesDynamic) {
  FolksonomyModel m = figure2Start();
  CsrFg frozen = m.freezeFg();
  EXPECT_EQ(frozen.numArcs(), m.fg().arcCount());
  m.fg().forEachArc([&](u32 a, u32 b, u64 w) {
    EXPECT_EQ(frozen.weightOf(a, b), w);
  });
}

TEST(ApproxDeterminism, SameSeedSameGraph) {
  auto build = [](u64 seed) {
    FolksonomyModel m(approxMode(1), seed);
    Rng rng(99);
    for (int i = 0; i < 300; ++i) {
      m.tagResource(static_cast<u32>(rng.uniform(20)),
                    static_cast<u32>(rng.uniform(10)));
    }
    return m.fg().totalWeight();
  };
  EXPECT_EQ(build(5), build(5));
}

}  // namespace
}  // namespace dharma::folk
