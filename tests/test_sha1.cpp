/// SHA-1 against FIPS 180-1 / RFC 3174 vectors, plus boundary coverage.

#include "crypto/sha1.hpp"

#include <gtest/gtest.h>

namespace dharma::crypto {
namespace {

TEST(Sha1, EmptyString) {
  EXPECT_EQ(toHex(sha1("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(toHex(sha1("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(toHex(sha1("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(toHex(h.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog and more";
  Digest160 oneShot = sha1(msg);
  for (usize split = 0; split <= msg.size(); split += 7) {
    Sha1 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finish(), oneShot) << "split at " << split;
  }
}

/// Padding boundaries: messages of length 55/56/63/64/65 exercise the
/// single-vs-double final block paths.
class Sha1Boundary : public ::testing::TestWithParam<usize> {};

TEST_P(Sha1Boundary, MatchesSelfConsistentIncremental) {
  std::string msg(GetParam(), 'z');
  Digest160 oneShot = sha1(msg);
  Sha1 h;
  for (char c : msg) h.update(std::string(1, c));
  EXPECT_EQ(h.finish(), oneShot);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Sha1Boundary,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 127,
                                           128, 129));

TEST(Sha1, KnownLength64) {
  // Exactly one block of input (64 bytes of 'a').
  EXPECT_EQ(toHex(sha1(std::string(64, 'a'))),
            "0098ba824b5c16427bd7a1122a5a442a25ec644d");
}

TEST(Sha1, ResetReuses) {
  Sha1 h;
  h.update("abc");
  Digest160 first = h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.finish(), first);
}

TEST(Sha1, DifferentInputsDiffer) {
  EXPECT_NE(sha1("a"), sha1("b"));
  EXPECT_NE(sha1("abc"), sha1("abd"));
}

TEST(Sha1Hex, Roundtrip) {
  Digest160 d = sha1("roundtrip");
  EXPECT_EQ(digestFromHex(toHex(d)), d);
}

TEST(Sha1Hex, UppercaseAccepted) {
  Digest160 d = sha1("x");
  std::string hex = toHex(d);
  for (auto& c : hex) c = static_cast<char>(toupper(c));
  EXPECT_EQ(digestFromHex(hex), d);
}

TEST(Sha1Hex, BadInputThrows) {
  EXPECT_THROW(digestFromHex("too-short"), std::invalid_argument);
  EXPECT_THROW(digestFromHex(std::string(40, 'g')), std::invalid_argument);
}

}  // namespace
}  // namespace dharma::crypto
