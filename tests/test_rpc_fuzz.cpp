/// Fuzz-style decode hardening tests (dht/rpc.cpp, util/buffer.cpp).
///
/// With UdpTransport, RPC payloads arrive from a real socket: every decoder
/// is now a trust boundary. The property under test is *clean rejection*:
/// for ANY input — truncated, bit-flipped, oversized counts, random bytes —
/// a decoder either succeeds or throws DecodeError. Nothing else may
/// escape: the RPC handlers catch exactly DecodeError, so a stray
/// std::length_error (what an unchecked reserve(2^60) used to raise) or
/// std::bad_alloc would tear the node down. Run under ASan/UBSan in CI,
/// this doubles as a memory-safety sweep over the decode paths.

#include "dht/rpc.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "util/rng.hpp"

namespace dharma::dht {
namespace {

crypto::CertificationService cs("fuzz-secret");

/// One RPC body kind: a name, a valid encoding, and its decoder.
struct Codec {
  const char* name;
  std::vector<u8> bytes;
  std::function<void(ByteReader&)> decode;
};

BlockView sampleView() {
  BlockView v;
  for (int i = 0; i < 8; ++i) {
    v.entries.push_back(BlockEntry{"entry-" + std::to_string(i),
                                   static_cast<u64>(1000 + i)});
  }
  v.payload = "uri://payload";
  v.truncated = true;
  v.totalEntries = 20;
  return v;
}

std::vector<Codec> allCodecs() {
  std::vector<Codec> codecs;

  FindNodeReq fn;
  fn.target = NodeId::fromString("target");
  codecs.push_back({"FindNodeReq", fn.encode(),
                    [](ByteReader& r) { FindNodeReq::decode(r); }});

  ContactsReply cr;
  for (u32 i = 0; i < 10; ++i) {
    cr.contacts.push_back(Contact{NodeId::fromString("c" + std::to_string(i)), i});
  }
  codecs.push_back({"ContactsReply", cr.encode(),
                    [](ByteReader& r) { ContactsReply::decode(r); }});

  FindValueReq fv;
  fv.key = NodeId::fromString("key");
  fv.topN = 32;
  fv.maxBytes = 1200;
  fv.allowCached = true;
  codecs.push_back({"FindValueReq", fv.encode(),
                    [](ByteReader& r) { FindValueReq::decode(r); }});

  FindValueReply fvrFound;
  fvrFound.found = true;
  fvrFound.cached = true;
  fvrFound.view = sampleView();
  codecs.push_back({"FindValueReply.found", fvrFound.encode(),
                    [](ByteReader& r) { FindValueReply::decode(r); }});

  FindValueReply fvrMiss;
  fvrMiss.found = false;
  fvrMiss.contacts = cr.contacts;
  codecs.push_back({"FindValueReply.miss", fvrMiss.encode(),
                    [](ByteReader& r) { FindValueReply::decode(r); }});

  StoreReq st;
  st.key = NodeId::fromString("block");
  st.putId = 77;
  st.chunk = 3;
  for (int i = 0; i < 6; ++i) {
    st.tokens.push_back(StoreToken{TokenKind::kIncrement,
                                   "tag-" + std::to_string(i),
                                   static_cast<u64>(i + 1), ""});
  }
  st.tokens.push_back(StoreToken{TokenKind::kSetPayload, "", 1, "uri://x"});
  st.signature = cs.signContent("alice", st.key.toHex(), st.canonicalBatch());
  codecs.push_back({"StoreReq", st.encode(),
                    [](ByteReader& r) { StoreReq::decode(r); }});

  StoreReply sr;
  sr.ok = true;
  codecs.push_back({"StoreReply", sr.encode(),
                    [](ByteReader& r) { StoreReply::decode(r); }});

  StoreCacheReq sc;
  sc.key = NodeId::fromString("cached-block");
  sc.ttlUs = 30'000'000;
  sc.view = sampleView();
  codecs.push_back({"StoreCacheReq", sc.encode(),
                    [](ByteReader& r) { StoreCacheReq::decode(r); }});

  StoreCacheReply scr;
  scr.ok = true;
  codecs.push_back({"StoreCacheReply", scr.encode(),
                    [](ByteReader& r) { StoreCacheReply::decode(r); }});

  return codecs;
}

/// Runs one decode attempt. Success and DecodeError are both clean; any
/// other escaping exception is the bug this suite exists to catch.
enum class DecodeOutcome { kOk, kRejected };

DecodeOutcome cleanDecode(const Codec& c, const std::vector<u8>& bytes) {
  try {
    ByteReader r(bytes);
    c.decode(r);
    return DecodeOutcome::kOk;
  } catch (const DecodeError&) {
    return DecodeOutcome::kRejected;
  } catch (const std::exception& e) {
    ADD_FAILURE() << c.name << ": non-DecodeError exception escaped: "
                  << e.what();
    return DecodeOutcome::kRejected;
  }
}

TEST(RpcFuzz, EveryTruncationRejectsCleanly) {
  for (const Codec& c : allCodecs()) {
    // A strict prefix always loses at least the final field, so every
    // truncation point must throw DecodeError — never anything else.
    for (usize len = 0; len < c.bytes.size(); ++len) {
      std::vector<u8> cut(c.bytes.begin(), c.bytes.begin() + len);
      EXPECT_EQ(cleanDecode(c, cut), DecodeOutcome::kRejected)
          << c.name << " accepted a strict prefix of length " << len;
    }
  }
}

TEST(RpcFuzz, EveryBitFlipDecodesCleanly) {
  for (const Codec& c : allCodecs()) {
    for (usize byte = 0; byte < c.bytes.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<u8> flipped = c.bytes;
        flipped[byte] = static_cast<u8>(flipped[byte] ^ (1u << bit));
        cleanDecode(c, flipped);  // must not crash or leak a foreign throw
      }
    }
  }
}

TEST(RpcFuzz, OversizedElementCountsRejected) {
  // Regression for the checkedCount() guard: a count field rewritten to
  // 2^59 used to reach reserve() and raise std::length_error through the
  // DecodeError-only catch blocks (terminate, with a real socket feeding
  // the bytes). The guard must reject it as a plain DecodeError.
  auto withHugeCount = [](const std::vector<u8>& bytes, usize countOffset) {
    std::vector<u8> mutated(bytes.begin(), bytes.begin() + countOffset);
    for (int i = 0; i < 8; ++i) mutated.push_back(0xff);  // LEB128 2^56..
    mutated.push_back(0x0f);
    mutated.insert(mutated.end(), bytes.begin() + countOffset + 1,
                   bytes.end());
    return mutated;
  };

  for (const Codec& c : allCodecs()) {
    std::string n = c.name;
    usize countOffset;
    if (n == "ContactsReply") {
      countOffset = 0;  // leading contact count
    } else if (n == "FindValueReply.miss") {
      countOffset = 1;  // found byte, then contact count
    } else if (n == "FindValueReply.found" || n == "StoreCacheReq") {
      continue;  // view counts covered via the dedicated case below
    } else if (n == "StoreReq") {
      countOffset = 22;  // key(20) + putId varint(1) + chunk varint(1)
    } else {
      continue;  // no element count in this body
    }
    EXPECT_EQ(cleanDecode(c, withHugeCount(c.bytes, countOffset)),
              DecodeOutcome::kRejected)
        << c.name << " swallowed a 2^59 element count";
  }

  // BlockView's entry count, as embedded in FindValueReply.found:
  // found(1) + cached(1), then the view's entry-count varint.
  FindValueReply fvr;
  fvr.found = true;
  fvr.view = sampleView();
  Codec viewCodec{"FindValueReply.found", fvr.encode(),
                  [](ByteReader& r) { FindValueReply::decode(r); }};
  EXPECT_EQ(cleanDecode(viewCodec, withHugeCount(viewCodec.bytes, 2)),
            DecodeOutcome::kRejected)
      << "BlockView swallowed a 2^59 entry count";
}

// ---------------------------------------------------------------------------
// Envelope-version compatibility (the (ip,port) wire bump)
// ---------------------------------------------------------------------------

/// Byte-for-byte reconstruction of a v1 datagram: no magic/version header,
/// the type byte first, and a bare-u32 contact address. This is what every
/// pre-bump dharma_node put on the wire.
std::vector<u8> encodeV1Envelope(RpcType type, u64 rpcId,
                                 const Contact& sender,
                                 const crypto::Credential& cred,
                                 const std::vector<u8>& body) {
  ByteWriter w;
  w.writeU8(static_cast<u8>(type));
  w.writeU64(rpcId);
  writeNodeId(w, sender.id);
  w.writeU32(static_cast<u32>(sender.addr));  // v1: bare port, 4 bytes
  writeCredential(w, cred);
  w.writeBytes(body.data(), body.size());
  return w.take();
}

TEST(RpcCompat, V1DatagramsRejectedForEveryRpcType) {
  Contact sender{NodeId::fromString("v1-node"), 9000};
  crypto::Credential cred = cs.enroll("v1-user", 1);
  std::vector<u8> body(64, 0x5c);
  for (u8 t = 0; t <= static_cast<u8>(RpcType::kStoreCacheReply); ++t) {
    auto v1 = encodeV1Envelope(static_cast<RpcType>(t), 12345, sender, cred,
                               body);
    // A v1 datagram leads with its type byte, which can never equal the
    // magic — so the decode must reject it outright, not misparse the
    // remaining fields into a garbage envelope.
    EXPECT_FALSE(Envelope::decode(v1).has_value())
        << "v1 datagram of type " << int(t) << " was accepted";
  }
}

TEST(RpcCompat, WrongVersionByteRejected) {
  Envelope e;
  e.type = RpcType::kFindNode;
  e.rpcId = 42;
  e.sender = Contact{NodeId::fromString("n"), net::makeAddress(0x0A000001, 9)};
  e.credential = cs.enroll("carol", 3);
  std::vector<u8> bytes = e.encode();
  ASSERT_EQ(bytes[0], kWireMagic);
  ASSERT_EQ(bytes[1], kWireVersion);
  for (int v : {0, 1, 3, 0x7f, 0xff}) {
    std::vector<u8> mutated = bytes;
    mutated[1] = static_cast<u8>(v);
    EXPECT_FALSE(Envelope::decode(mutated).has_value())
        << "version byte " << v << " was accepted";
  }
}

TEST(RpcCompat, V2RoundTripsBitExact) {
  Envelope e;
  e.type = RpcType::kStore;
  e.rpcId = 0xABCDEF0123456789ULL;
  // A non-loopback (ip, port): the widened field must carry all 48 bits.
  e.sender = Contact{NodeId::fromString("multi-host"),
                     net::makeAddress(0xC0A80142, 41999)};  // 192.168.1.66
  e.credential = cs.enroll("dave", 7);
  e.body.assign(128, 0x3d);

  std::vector<u8> bytes = e.encode();
  auto decoded = Envelope::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender.addr, e.sender.addr);
  EXPECT_EQ(net::addressIp(decoded->sender.addr), 0xC0A80142u);
  EXPECT_EQ(net::addressPort(decoded->sender.addr), 41999u);
  // Re-encoding the decoded envelope must reproduce the datagram exactly:
  // the codec pair loses nothing, pads nothing.
  EXPECT_EQ(decoded->encode(), bytes);
}

TEST(RpcCompat, NullAddressRoundTrips) {
  // kNullAddress is all 48 wire bits set, so even the "no endpoint"
  // sentinel survives the (ip, port) split-and-repack unchanged.
  ByteWriter w;
  writeContact(w, Contact{NodeId::fromString("null-addr"), net::kNullAddress});
  ByteReader r(w.bytes());
  Contact back = readContact(r);
  EXPECT_EQ(back.addr, net::kNullAddress);
}

TEST(RpcCompat, AddressFieldFlipsNeverCorruptNeighbouringFields) {
  Envelope e;
  e.type = RpcType::kPong;
  e.rpcId = 777;
  e.sender = Contact{NodeId::fromString("addr-fuzz"),
                     net::makeAddress(0x7F000001, 6001)};
  e.credential = cs.enroll("erin", 9);
  e.body = {1, 2, 3};
  std::vector<u8> bytes = e.encode();

  // The sender address occupies exactly [31, 37): magic(1) + version(1) +
  // type(1) + rpcId(8) + nodeId(20), then ip(4) + port(2). Flipping any of
  // its bits must still decode — to an envelope identical in every OTHER
  // field, with only the address changed. Fixed-width address fields can
  // shift nothing.
  constexpr usize kAddrOff = 31;
  constexpr usize kAddrLen = 6;
  for (usize byte = kAddrOff; byte < kAddrOff + kAddrLen; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<u8> flipped = bytes;
      flipped[byte] = static_cast<u8>(flipped[byte] ^ (1u << bit));
      auto decoded = Envelope::decode(flipped);
      ASSERT_TRUE(decoded.has_value())
          << "address-bit flip at byte " << byte << " bit " << bit
          << " broke the whole decode";
      EXPECT_NE(decoded->sender.addr, e.sender.addr);
      EXPECT_EQ(decoded->type, e.type);
      EXPECT_EQ(decoded->rpcId, e.rpcId);
      EXPECT_EQ(decoded->sender.id, e.sender.id);
      EXPECT_EQ(decoded->body, e.body);
    }
  }
}

TEST(RpcFuzz, EnvelopeSurvivesTruncationAndBitFlips) {
  Envelope e;
  e.type = RpcType::kStore;
  e.rpcId = 0x1122334455667788ULL;
  e.sender.id = NodeId::fromString("sender");
  e.sender.addr = 9999;
  e.credential = cs.enroll("bob", 777);
  e.body.assign(200, 0xab);
  std::vector<u8> bytes = e.encode();

  for (usize len = 0; len < bytes.size(); ++len) {
    std::vector<u8> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(Envelope::decode(cut).has_value())
        << "envelope accepted a strict prefix of length " << len;
  }
  for (usize byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<u8> flipped = bytes;
      flipped[byte] = static_cast<u8>(flipped[byte] ^ (1u << bit));
      Envelope::decode(flipped);  // optional result; must never throw
    }
  }
}

TEST(RpcFuzz, RandomDatagramsNeverCrashEnvelopeDecode) {
  Rng rng(20260731);
  for (int trial = 0; trial < 2000; ++trial) {
    usize len = static_cast<usize>(rng.uniform(1400));
    std::vector<u8> noise(len);
    for (auto& b : noise) b = static_cast<u8>(rng.uniform(256));
    Envelope::decode(noise);  // returns nullopt or a decoded envelope
  }
}

TEST(RpcFuzz, RandomBodiesNeverLeakForeignExceptions) {
  Rng rng(424242);
  auto codecs = allCodecs();
  for (const Codec& c : codecs) {
    for (int trial = 0; trial < 400; ++trial) {
      usize len = static_cast<usize>(rng.uniform(600));
      std::vector<u8> noise(len);
      for (auto& b : noise) b = static_cast<u8>(rng.uniform(256));
      cleanDecode(c, noise);
    }
  }
}

}  // namespace
}  // namespace dharma::dht
