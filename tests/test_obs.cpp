/// Unit tests for the observability layer (src/obs/): histogram bucket
/// math and quantiles, registry exposition + identity semantics, sampler
/// determinism on the Simulator (the bit-stable-per-seed contract behind
/// `--stats-interval-ms`), and the bounded trace ring.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/simulator.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace dharma::obs {
namespace {

// ---------------------------------------------------------------- histogram

TEST(Histogram, BucketBoundaries) {
  // Bucket b covers (2^(b-1), 2^b], bucket 0 covers {0, 1}.
  EXPECT_EQ(Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(Histogram::bucketIndex(1), 0u);
  EXPECT_EQ(Histogram::bucketIndex(2), 1u);
  EXPECT_EQ(Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(Histogram::bucketIndex(4), 2u);
  EXPECT_EQ(Histogram::bucketIndex(5), 3u);
  for (usize b = 1; b + 1 < Histogram::kBucketCount; ++b) {
    const u64 ub = u64{1} << b;
    EXPECT_EQ(Histogram::bucketIndex(ub), b) << "upper bound of bucket " << b;
    EXPECT_EQ(Histogram::bucketIndex(ub + 1), b + 1)
        << "one past bucket " << b;
  }
  // Everything huge lands in the overflow bucket.
  EXPECT_EQ(Histogram::bucketIndex(~u64{0}), Histogram::kBucketCount - 1);
  EXPECT_EQ(HistogramSnapshot::bucketUpperBound(0), 1u);
  EXPECT_EQ(HistogramSnapshot::bucketUpperBound(10), 1024u);
  EXPECT_EQ(HistogramSnapshot::bucketUpperBound(Histogram::kBucketCount - 1),
            ~u64{0});
}

TEST(Histogram, CountSumMaxTrackExactly) {
  Histogram h;
  u64 sum = 0;
  for (u64 v : {0u, 1u, 7u, 100u, 4096u, 70'000'000u}) {
    h.record(v);
    sum += v;
  }
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), 6u);
  EXPECT_EQ(s.sum, sum);
  EXPECT_EQ(s.maxValue, 70'000'000u);
}

TEST(Histogram, QuantilesApproximateExactWithinBucketError) {
  // Uniform values 1..10000: log buckets guarantee <= 2x relative error,
  // and linear interpolation does much better for dense uniform data.
  Histogram h;
  std::vector<u64> values;
  for (u64 v = 1; v <= 10'000; ++v) {
    h.record(v);
    values.push_back(v);
  }
  const HistogramSnapshot s = h.snapshot();
  for (double q : {0.50, 0.90, 0.99}) {
    const double exact =
        static_cast<double>(values[static_cast<usize>(q * 9999.0)]);
    const double est = s.quantile(q);
    EXPECT_GE(est, exact / 2.0) << "q=" << q;
    EXPECT_LE(est, exact * 2.0) << "q=" << q;
  }
  // p100 is the exact maximum, p0 of an empty histogram is 0.
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10'000.0);
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  Histogram a, b, c;
  for (u64 v = 1; v <= 100; ++v) a.record(v * 3);
  for (u64 v = 1; v <= 50; ++v) b.record(v * 1000);
  c.record(123'456'789);

  auto merged = [](std::vector<const Histogram*> hs) {
    HistogramSnapshot acc;
    for (const Histogram* h : hs) acc.merge(h->snapshot());
    return acc;
  };
  const HistogramSnapshot abc = merged({&a, &b, &c});
  const HistogramSnapshot cba = merged({&c, &b, &a});
  // (a+b)+c vs a+(b+c)
  HistogramSnapshot ab = a.snapshot();
  ab.merge(b.snapshot());
  ab.merge(c.snapshot());
  HistogramSnapshot bc = b.snapshot();
  bc.merge(c.snapshot());
  HistogramSnapshot a_bc = a.snapshot();
  a_bc.merge(bc);

  const std::vector<const HistogramSnapshot*> views = {&cba, &ab, &a_bc};
  for (const HistogramSnapshot* s : views) {
    EXPECT_EQ(s->buckets, abc.buckets);
    EXPECT_EQ(s->sum, abc.sum);
    EXPECT_EQ(s->maxValue, abc.maxValue);
  }
  EXPECT_EQ(abc.count(), 151u);
}

TEST(Histogram, ConcurrentWritersLoseNothing) {
  Histogram h;
  constexpr usize kThreads = 8;
  constexpr u64 kPerThread = 20'000;
  std::vector<std::thread> ts;
  for (usize t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h, t] {
      for (u64 i = 0; i < kPerThread; ++i) h.record(t * kPerThread + i);
    });
  }
  for (auto& t : ts) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), kThreads * kPerThread);
  EXPECT_EQ(s.maxValue, kThreads * kPerThread - 1);
  // Sum of 0..N-1.
  const u64 n = kThreads * kPerThread;
  EXPECT_EQ(s.sum, n * (n - 1) / 2);
}

// ----------------------------------------------------------------- registry

TEST(Registry, GetOrCreateReturnsSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.counter("ops_total", "ops");
  Counter& b = reg.counter("ops_total", "ops");
  EXPECT_EQ(&a, &b);
  Counter& lbl = reg.counter("ops_total", "ops", {{"op", "put"}});
  EXPECT_NE(&a, &lbl);
  EXPECT_EQ(&lbl, &reg.counter("ops_total", "ops", {{"op", "put"}}));
  Histogram& h = reg.histogram("lat_us", "latency");
  EXPECT_EQ(&h, &reg.histogram("lat_us", "latency"));
}

TEST(Registry, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x_total", "x");
  EXPECT_THROW(reg.gauge("x_total", "x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x_total", "x"), std::logic_error);
}

TEST(Registry, PrometheusHistogramExposition) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("rpc_us", "rpc service time", {{"rpc", "ping"}});
  h.record(1);   // bucket 0, le="1"
  h.record(2);   // bucket 1, le="2"
  h.record(3);   // bucket 2, le="4"
  const std::string text = reg.renderPrometheus();
  EXPECT_NE(text.find("# HELP rpc_us rpc service time"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rpc_us histogram"), std::string::npos);
  // Cumulative buckets: le="1" holds 1, le="2" holds 2, le="4" holds 3.
  EXPECT_NE(text.find("rpc_us_bucket{rpc=\"ping\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rpc_us_bucket{rpc=\"ping\",le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("rpc_us_bucket{rpc=\"ping\",le=\"4\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("rpc_us_bucket{rpc=\"ping\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("rpc_us_sum{rpc=\"ping\"} 6"), std::string::npos);
  EXPECT_NE(text.find("rpc_us_count{rpc=\"ping\"} 3"), std::string::npos);
}

TEST(Registry, RenderOrderIsRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("zz_total", "last name, first registered").add(1);
  reg.counter("aa_total", "first name, last registered").add(2);
  const std::string text = reg.renderPrometheus();
  EXPECT_LT(text.find("zz_total"), text.find("aa_total"));
  // Same registry, same registration order -> byte-identical renders.
  EXPECT_EQ(text, reg.renderPrometheus());
  EXPECT_EQ(reg.renderJson(), reg.renderJson());
}

TEST(Registry, JsonRenderHasAllSections) {
  MetricsRegistry reg;
  reg.counter("c_total", "c").add(7);
  reg.gauge("g", "g").set(2.5);
  reg.histogram("h_us", "h").record(10);
  const std::string json = reg.renderJson();
  EXPECT_NE(json.find("\"counters\":{\"c_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"g\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"h_us\":{\"count\":1"), std::string::npos);
}

// ------------------------------------------------------------------ sampler

/// Drives one simulated "workload" with a sampler attached and returns the
/// JSON of every sample taken. Deterministic given the seed.
std::vector<std::string> runSampledWorkload(u64 seed) {
  net::Simulator sim;
  MetricsRegistry reg;
  Counter& ops = reg.counter("ops_total", "ops");
  Histogram& lat = reg.histogram("lat_us", "latency");

  SamplerConfig cfg;
  cfg.intervalUs = 1'000'000;
  cfg.seed = seed;
  MetricsSampler sampler(sim, reg, cfg);

  // Workload: an op every 100 ms with a deterministic latency.
  for (u64 i = 0; i < 100; ++i) {
    sim.schedule(i * 100'000, [&ops, &lat, i] {
      ops.add(1);
      lat.record(50 + (i % 7) * 10);
    });
  }
  std::vector<std::string> lines;
  sampler.addSink([&lines](const Sample& s) { lines.push_back(s.toJson()); });
  sampler.start();
  sim.runUntil(10'000'000);
  sampler.stop();
  return lines;
}

TEST(Sampler, BitStablePerSeed) {
  const std::vector<std::string> a = runSampledWorkload(42);
  const std::vector<std::string> b = runSampledWorkload(42);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical across runs: the JSONL contract
  // A different seed moves the jittered tick times.
  const std::vector<std::string> c = runSampledWorkload(43);
  EXPECT_NE(a, c);
}

TEST(Sampler, DeltasMatchCounterAdvances) {
  net::Simulator sim;
  MetricsRegistry reg;
  Counter& ops = reg.counter("ops_total", "ops");

  SamplerConfig cfg;
  cfg.intervalUs = 1'000'000;
  cfg.jitterFrac = 0.0;  // exact 1 s ticks
  MetricsSampler sampler(sim, reg, cfg);

  ops.add(5);
  sim.runUntil(10);  // advance time so samples have distinct timestamps
  Sample s1 = sampler.sampleNow();
  ASSERT_EQ(s1.counters.size(), 1u);
  EXPECT_EQ(s1.counters[0].second, 5u);
  EXPECT_EQ(s1.deltas[0], 5u);  // first sighting deltas from zero

  ops.add(3);
  Sample s2 = sampler.sampleNow();
  EXPECT_EQ(s2.counters[0].second, 8u);
  EXPECT_EQ(s2.deltas[0], 3u);
  EXPECT_EQ(s2.seq, s1.seq + 1);

  Sample s3 = sampler.sampleNow();
  EXPECT_EQ(s3.deltas[0], 0u);  // no advance, zero delta
}

TEST(Sampler, CollectHookRunsBeforeSnapshot) {
  net::Simulator sim;
  MetricsRegistry reg;
  Counter& mirrored = reg.counter("mirrored_total", "mirrored");
  u64 external = 0;

  MetricsSampler sampler(sim, reg, {});
  sampler.setCollect([&] { mirrored.set(external); });
  external = 41;
  Sample s = sampler.sampleNow();
  EXPECT_EQ(s.counters[0].second, 41u);
}

TEST(Sampler, RingIsBoundedAndOldestFirst) {
  net::Simulator sim;
  MetricsRegistry reg;
  SamplerConfig cfg;
  cfg.ringCapacity = 3;
  MetricsSampler sampler(sim, reg, cfg);
  for (int i = 0; i < 10; ++i) (void)sampler.sampleNow();
  const std::vector<Sample> r = sampler.recent(100);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].seq, 8u);
  EXPECT_EQ(r[2].seq, 10u);
  EXPECT_EQ(sampler.recent(1).size(), 1u);
  EXPECT_EQ(sampler.recent(1)[0].seq, 10u);
  EXPECT_EQ(sampler.ticks(), 10u);
}

TEST(Sampler, JitteredScheduleStaysNearInterval) {
  // Every scheduled gap must be within interval +/- jitterFrac*interval.
  net::Simulator sim;
  MetricsRegistry reg;
  SamplerConfig cfg;
  cfg.intervalUs = 1'000'000;
  cfg.jitterFrac = 0.1;
  cfg.seed = 7;
  MetricsSampler sampler(sim, reg, cfg);
  std::vector<net::TimeUs> tickTimes;
  sampler.addSink(
      [&tickTimes](const Sample& s) { tickTimes.push_back(s.tUs); });
  sampler.start();
  sim.runUntil(20'000'000);
  sampler.stop();
  ASSERT_GE(tickTimes.size(), 10u);
  net::TimeUs prev = 0;
  bool sawOffNominal = false;
  for (net::TimeUs t : tickTimes) {
    const net::TimeUs gap = t - prev;
    EXPECT_GE(gap, 900'000u);
    EXPECT_LE(gap, 1'100'000u);
    if (gap != 1'000'000u) sawOffNominal = true;
    prev = t;
  }
  EXPECT_TRUE(sawOffNominal) << "jitter should move ticks off the nominal";
}

// -------------------------------------------------------------------- trace

TEST(TraceRing, BoundedEvictionOldestFirst) {
  TraceRing ring(4);
  for (u64 i = 1; i <= 10; ++i) {
    TraceSpan s;
    s.traceId = ring.nextTraceId();
    s.kind = "client-op";
    s.label = "insert";
    s.startUs = i * 100;
    s.endUs = i * 100 + 50;
    s.outcome = "ok";
    ring.push(std::move(s));
  }
  EXPECT_EQ(ring.totalCompleted(), 10u);
  const std::vector<TraceSpan> r = ring.recent(100);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r.front().traceId, 7u);
  EXPECT_EQ(r.back().traceId, 10u);
}

TEST(TraceRing, RenderJsonCarriesSpanShape) {
  TraceRing ring(8);
  TraceSpan s;
  s.traceId = ring.nextTraceId();
  s.kind = "lookup";
  s.label = "value";
  s.startUs = 1000;
  s.endUs = 1800;
  s.outcome = "found";
  s.event(1100, "rpc-sent", "ab12cd34");
  s.event(1500, "rpc-reply", "ab12cd34");
  ring.push(std::move(s));
  const std::string json = ring.renderJson(8);
  EXPECT_NE(json.find("\"trace_id\":1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"lookup\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"value\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"found\""), std::string::npos);
  EXPECT_NE(json.find("rpc-sent"), std::string::npos);
  EXPECT_NE(json.find("rpc-reply"), std::string::npos);
}

TEST(TraceRing, TraceIdsAreUniqueAndNonZero) {
  TraceRing ring;
  u64 prev = 0;
  for (int i = 0; i < 100; ++i) {
    const u64 id = ring.nextTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_GT(id, prev);
    prev = id;
  }
}

}  // namespace
}  // namespace dharma::obs
