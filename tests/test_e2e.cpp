/// End-to-end equivalence: the distributed DHARMA protocol over the live
/// simulated overlay must reproduce the in-memory folksonomy model
/// block-for-block — the strongest statement that the DHT mapping of
/// Section IV faithfully implements the model of Section III.

#include <gtest/gtest.h>

#include <map>

#include "core/client.hpp"
#include "core/session.hpp"
#include "folksonomy/interner.hpp"
#include "folksonomy/model.hpp"

namespace dharma::core {
namespace {

struct E2E {
  dht::DhtNetwork net;
  folk::Interner tags;
  folk::Interner resources;

  explicit E2E(u64 seed = 77)
      : net([&] {
          dht::DhtNetworkConfig cfg;
          cfg.nodes = 16;
          cfg.seed = seed;
          cfg.latency = "constant";
          cfg.constantLatencyUs = 3000;
          return cfg;
        }()) {
    net.bootstrap();
  }

  /// Fetches the t̂ block of \p tag, unfiltered.
  std::optional<dht::BlockView> tagNeighbors(const std::string& tag) {
    return net.getBlocking(0, blockKey(tag, BlockType::kTagNeighbors),
                           dht::GetOptions{0, 1u << 20});
  }

  std::optional<dht::BlockView> resourceTags(const std::string& res) {
    return net.getBlocking(0, blockKey(res, BlockType::kResourceTags),
                           dht::GetOptions{0, 1u << 20});
  }
};

/// Drives the same operation sequence through a naive DharmaClient and an
/// exact FolksonomyModel, then diffs every block against the model graphs.
TEST(EndToEnd, NaiveProtocolEqualsExactModel) {
  E2E e;
  DharmaConfig cfg;
  cfg.approximateA = false;
  cfg.approximateB = false;
  DharmaClient client(e.net, 1, cfg, 5);
  folk::FolksonomyModel model(folk::exactMode(), 5);

  Rng rng(123);
  constexpr u32 kTags = 8;
  constexpr u32 kRes = 6;
  auto tagName = [](u32 t) { return "tag-" + std::to_string(t); };
  auto resName = [](u32 r) { return "res-" + std::to_string(r); };

  u32 nextRes = 0;
  for (int op = 0; op < 60; ++op) {
    if ((rng.uniformDouble() < 0.3 && nextRes < kRes) || nextRes == 0) {
      usize m = 1 + rng.uniform(4);
      std::vector<u32> tagIds;
      std::vector<std::string> tagNames;
      for (usize i = 0; i < m; ++i) {
        u32 t = static_cast<u32>(rng.uniform(kTags));
        tagIds.push_back(t);
        tagNames.push_back(tagName(t));
      }
      client.insertResource(resName(nextRes), "uri://" + resName(nextRes),
                            tagNames);
      // Model API expects a de-duplicated set semantics; both sides dedupe.
      model.insertResource(nextRes, tagIds);
      ++nextRes;
    } else {
      u32 r = static_cast<u32>(rng.uniform(nextRes));
      u32 t = static_cast<u32>(rng.uniform(kTags));
      client.tagResource(resName(r), tagName(t));
      model.tagResource(r, t);
    }
  }

  // Every r̄ block equals the model's Tags(r) with weights.
  for (u32 r = 0; r < nextRes; ++r) {
    auto view = e.resourceTags(resName(r));
    auto tagsOf = model.trg().tagsOf(r);
    ASSERT_TRUE(view.has_value()) << resName(r);
    EXPECT_EQ(view->totalEntries, tagsOf.size());
    for (const auto& edge : tagsOf) {
      EXPECT_EQ(view->weightOf(tagName(edge.tag)), edge.weight)
          << resName(r) << " / " << tagName(edge.tag);
    }
  }

  // Every t̂ block equals the model's FG row.
  for (u32 t = 0; t < kTags; ++t) {
    auto view = e.tagNeighbors(tagName(t));
    if (!view) continue;  // tag never used
    for (u32 u = 0; u < kTags; ++u) {
      if (t == u) continue;
      EXPECT_EQ(view->weightOf(tagName(u)), model.fg().weight(t, u))
          << "sim(" << tagName(t) << ", " << tagName(u) << ")";
    }
  }
}

/// The approximated protocol (B on, A off for determinism across layers)
/// equals the approximated model under the same conditional-increment
/// semantics.
TEST(EndToEnd, ApproxBProtocolEqualsApproxBModel) {
  E2E e(78);
  DharmaConfig cfg;
  cfg.approximateA = false;
  cfg.approximateB = true;
  DharmaClient client(e.net, 2, cfg, 6);
  folk::FolksonomyModel model(folk::approxBOnly(), 6);

  auto tagName = [](u32 t) { return "bt-" + std::to_string(t); };
  // Deterministic scenario exercising both the arc-absent and the
  // arc-present branches of Approximation B.
  client.insertResource("br-0", "uri://b0", {tagName(0), tagName(1)});
  model.insertResource(0, std::vector<u32>{0, 1});
  for (int i = 0; i < 3; ++i) {
    client.tagResource("br-1", tagName(0));
    model.tagResource(1, 0);
  }
  client.tagResource("br-1", tagName(1));  // arc (1,0) exists => += u(0,r1)
  model.tagResource(1, 1);
  client.tagResource("br-2", tagName(2));
  model.tagResource(2, 2);
  client.tagResource("br-2", tagName(0));  // arc (0,2) new => weight 1
  model.tagResource(2, 0);

  for (u32 t = 0; t < 3; ++t) {
    auto view = e.tagNeighbors(tagName(t));
    ASSERT_TRUE(view.has_value()) << tagName(t);
    for (u32 u = 0; u < 3; ++u) {
      if (t == u) continue;
      EXPECT_EQ(view->weightOf(tagName(u)), model.fg().weight(t, u))
          << "sim(" << tagName(t) << ", " << tagName(u) << ")";
    }
  }
}

/// Distributed faceted search matches the in-memory SearchSession when
/// nothing is truncated (same display, same narrowing).
TEST(EndToEnd, DistributedSearchMatchesLocalSearch) {
  E2E e(79);
  DharmaClient client(e.net, 3, DharmaConfig{}, 9);
  folk::FolksonomyModel model(folk::exactMode(), 9);
  folk::Interner tags;

  struct Item {
    const char* name;
    std::vector<const char*> tags;
  };
  const std::vector<Item> items = {
      {"i0", {"rock", "indie", "live"}}, {"i1", {"rock", "indie"}},
      {"i2", {"rock", "metal"}},         {"i3", {"rock", "metal", "live"}},
      {"i4", {"rock", "pop"}},           {"i5", {"metal", "live"}},
      {"i6", {"rock", "indie", "pop"}},  {"i7", {"rock"}},
  };
  // Naive mode so the DHT layer mirrors the exact model.
  DharmaConfig ncfg;
  ncfg.approximateA = false;
  ncfg.approximateB = false;
  DharmaClient naive(e.net, 3, ncfg, 9);
  u32 rid = 0;
  for (const auto& it : items) {
    std::vector<std::string> names(it.tags.begin(), it.tags.end());
    naive.insertResource(it.name, "uri://x", names);
    std::vector<u32> ids;
    for (const char* t : it.tags) ids.push_back(tags.intern(t));
    model.insertResource(rid++, ids);
  }

  folk::Trg trg = model.trg();
  trg.freeze();
  folk::CsrFg fg = model.freezeFg();
  folk::SearchConfig sc;
  sc.resourceStop = 1;

  folk::SearchSession local(fg, trg, sc);
  local.start(*tags.find("rock"));
  DharmaSession dist(naive, sc);
  auto info = dist.start("rock");

  ASSERT_EQ(info.display.size(), local.display().size());
  for (usize i = 0; i < info.display.size(); ++i) {
    EXPECT_EQ(info.display[i].name, tags.name(local.display()[i].tag));
    EXPECT_EQ(info.display[i].weight, local.display()[i].weight);
  }
  EXPECT_EQ(info.resourceCount, local.resources().size());

  // Walk both sessions with the first-tag strategy to completion.
  Rng r1(3), r2(3);
  while (!local.done() && !dist.done()) {
    u32 lt = local.selectByStrategy(folk::Strategy::kFirst, r1);
    std::string dt = dist.selectByStrategy(folk::Strategy::kFirst, r2);
    EXPECT_EQ(dt, tags.name(lt));
    EXPECT_EQ(dist.resources().size(), local.resources().size());
  }
  EXPECT_EQ(local.done(), dist.done());
  EXPECT_EQ(static_cast<int>(local.reason()), static_cast<int>(dist.reason()));
}

/// Costs across a mixed workload equal the sum of per-op Table I formulas.
TEST(EndToEnd, AggregateCostMatchesFormulaSum) {
  E2E e(80);
  DharmaConfig cfg;
  cfg.k = 2;
  DharmaClient client(e.net, 4, cfg, 11);
  u64 expected = 0;
  client.insertResource("c0", "u", {"a", "b", "c"});  // 2 + 2*3
  expected += 2 + 2 * 3;
  client.insertResource("c1", "u", {"a"});  // 2 + 2*1
  expected += 2 + 2 * 1;
  client.tagResource("c0", "d");  // 4 + min(k=2, |{a,b,c}|)
  expected += 4 + 2;
  client.tagResource("c1", "b");  // 4 + min(2, 1)
  expected += 4 + 1;
  client.searchStep("a");  // 2
  expected += 2;
  EXPECT_EQ(client.totalCost().lookups, expected);
}

}  // namespace
}  // namespace dharma::core
