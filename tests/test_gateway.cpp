/// End-to-end suite for the gateway subsystem over REAL sockets: a live
/// overlay (RealTimeExecutor + loopback UDP) behind a GatewayServer, driven
/// through gateway::HttpClient TCP connections. Covers the REST routes and
/// their error taxonomy, keep-alive and pipelining on the wire, the parser
/// limits at the socket level, typed startup failures (port in use, bad
/// address), and graceful stop. Parser-only behaviour lives in
/// test_http.cpp.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/runtime.hpp"
#include "gateway/http_client.hpp"
#include "gateway/server.hpp"
#include "net/realtime.hpp"
#include "net/udp_transport.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace dharma::gateway {
namespace {

dht::NodeConfig smallConfig() {
  dht::NodeConfig cfg;
  cfg.k = 8;
  cfg.alpha = 3;
  cfg.kStore = 3;
  cfg.rpcTimeoutUs = 2'000'000;
  return cfg;
}

/// Live overlay + gateway, all in-process. Teardown order is the contract
/// the daemon follows too: gateway first (workers block through the
/// runtime), then the executor, then the sockets.
struct GatewayFixture {
  net::RealTimeExecutor exec;
  net::UdpTransport transport{exec};
  crypto::CertificationService cs{"gw-test-secret"};
  core::RealTimeRuntime rt{exec, transport};
  obs::MetricsRegistry registry;
  obs::TraceRing traces{64};
  std::unique_ptr<obs::MetricsSampler> sampler;
  std::vector<std::unique_ptr<dht::KademliaNode>> nodes;
  std::unique_ptr<core::DharmaClient> client;
  std::unique_ptr<GatewayServer> server;

  explicit GatewayFixture(usize n = 3, GatewayConfig cfg = GatewayConfig{}) {
    exec.start();
    dht::NodeConfig nodeCfg = smallConfig();
    nodeCfg.metrics = &registry;
    nodeCfg.traces = &traces;
    for (usize i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<dht::KademliaNode>(
          exec, transport, cs, cs.enroll("gw-user-" + std::to_string(i)),
          nodeCfg, 4000 + i));
      // Only node 0's RPC service times feed the registry: one process-wide
      // registry per daemon is the deployment shape being modelled.
      nodeCfg.metrics = nullptr;
      nodeCfg.traces = nullptr;
    }
    for (usize i = 1; i < n; ++i) {
      dht::Contact seed = nodes[0]->contact();
      rt.awaitDone([&](std::function<void()> done) {
        nodes[i]->join(seed, std::move(done));
      });
    }
    core::DharmaConfig ccfg;
    ccfg.cacheEnabled = true;
    ccfg.metrics = &registry;
    ccfg.traces = &traces;
    client = std::make_unique<core::DharmaClient>(rt, *nodes[0], ccfg);
    sampler = std::make_unique<obs::MetricsSampler>(exec, registry);

    cfg.port = 0;  // ephemeral
    GatewayServer::Deps deps;
    deps.client = client.get();
    deps.metrics = &registry;
    deps.sampler = sampler.get();
    deps.traces = &traces;
    server = std::make_unique<GatewayServer>(cfg, deps);
    EXPECT_EQ(server->start(), StartError::kNone) << server->startDetail();
  }

  ~GatewayFixture() {
    server->stop();
    exec.stop();
    transport.close();
  }

  void connect(HttpClient& c) {
    ASSERT_TRUE(c.connect("127.0.0.1", server->port()));
  }
};

TEST(Gateway, PutTagSearchResolveRoundTrip) {
  GatewayFixture f;
  HttpClient c;
  f.connect(c);

  auto put = c.request("PUT", "/resources/song1?tag=rock&tag=indie",
                       "http://example.com/song1");
  ASSERT_TRUE(put.has_value());
  EXPECT_EQ(put->status, 200);
  EXPECT_NE(put->body.find("\"resource\":\"song1\""), std::string::npos);
  EXPECT_NE(put->body.find("\"cost\""), std::string::npos);

  auto post = c.request("POST", "/resources/song1/tags", "jazz\nfunk\n");
  ASSERT_TRUE(post.has_value());
  EXPECT_EQ(post->status, 200);

  auto search = c.request("GET", "/search?tag=rock&steps=2");
  ASSERT_TRUE(search.has_value());
  EXPECT_EQ(search->status, 200);
  EXPECT_NE(search->body.find("\"tag\":\"rock\""), std::string::npos);
  EXPECT_NE(search->body.find("\"hops\":["), std::string::npos);
  EXPECT_NE(search->body.find("song1"), std::string::npos);

  auto res = c.request("GET", "/resolve/song1");
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->status, 200);
  EXPECT_NE(res->body.find("http://example.com/song1"), std::string::npos);
}

TEST(Gateway, ErrorTaxonomyOnTheWire) {
  GatewayFixture f;
  HttpClient c;
  f.connect(c);

  auto missing = c.request("GET", "/resolve/ghost");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);
  EXPECT_NE(missing->body.find("\"error\":\"not-found\""), std::string::npos);

  auto noRoute = c.request("GET", "/nope");
  ASSERT_TRUE(noRoute.has_value());
  EXPECT_EQ(noRoute->status, 404);
  EXPECT_NE(noRoute->body.find("\"error\":\"no-such-route\""),
            std::string::npos);

  auto badMethod = c.request("DELETE", "/stats");
  ASSERT_TRUE(badMethod.has_value());
  EXPECT_EQ(badMethod->status, 405);
  ASSERT_TRUE(badMethod->header("allow").has_value());
  EXPECT_EQ(*badMethod->header("allow"), "GET");

  auto badSteps = c.request("GET", "/search?tag=x&steps=zap");
  ASSERT_TRUE(badSteps.has_value());
  EXPECT_EQ(badSteps->status, 400);
  EXPECT_NE(badSteps->body.find("bad-steps-parameter"), std::string::npos);

  auto noTag = c.request("GET", "/search");
  ASSERT_TRUE(noTag.has_value());
  EXPECT_EQ(noTag->status, 400);
  EXPECT_NE(noTag->body.find("missing-tag-parameter"), std::string::npos);

  auto emptyBody = c.request("PUT", "/resources/r9");
  ASSERT_TRUE(emptyBody.has_value());
  EXPECT_EQ(emptyBody->status, 400);
  EXPECT_NE(emptyBody->body.find("empty-body"), std::string::npos);
}

TEST(Gateway, KeepAliveServesManyRequestsOnOneConnection) {
  GatewayFixture f;
  HttpClient c;
  f.connect(c);
  for (int i = 0; i < 20; ++i) {
    auto r = c.request("GET", "/stats");
    ASSERT_TRUE(r.has_value()) << "request " << i;
    EXPECT_EQ(r->status, 200);
  }
  GatewayCounters g = f.server->counters();
  EXPECT_EQ(g.connectionsAccepted, 1u)
      << "keep-alive must reuse the single TCP connection";
}

TEST(Gateway, PipeliningPreservesResponseOrder) {
  GatewayFixture f;
  {
    HttpClient seed;
    f.connect(seed);
    auto r1 = seed.request("PUT", "/resources/a?tag=t", "uri://a");
    auto r2 = seed.request("PUT", "/resources/b?tag=t", "uri://b");
    ASSERT_TRUE(r1 && r2);
  }
  HttpClient c;
  f.connect(c);
  ASSERT_TRUE(c.sendRaw(
      "GET /resolve/a HTTP/1.1\r\nHost: g\r\n\r\n"
      "GET /resolve/b HTTP/1.1\r\nHost: g\r\n\r\n"
      "GET /nope HTTP/1.1\r\nHost: g\r\n\r\n"));
  auto a = c.readResponse();
  auto b = c.readResponse();
  auto n = c.readResponse();
  ASSERT_TRUE(a && b && n);
  EXPECT_NE(a->body.find("uri://a"), std::string::npos);
  EXPECT_NE(b->body.find("uri://b"), std::string::npos);
  EXPECT_EQ(n->status, 404);
}

TEST(Gateway, ParseErrorYields400AndCloses) {
  GatewayFixture f;
  HttpClient c;
  f.connect(c);
  ASSERT_TRUE(c.sendRaw("THIS IS NOT HTTP\r\n\r\n"));
  auto r = c.readResponse();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 400);
  ASSERT_TRUE(r->header("connection").has_value());
  EXPECT_EQ(*r->header("connection"), "close");
  // The server closes after the error response: the next read fails.
  EXPECT_FALSE(c.readResponse().has_value());
}

TEST(Gateway, OversizeBodyRejectedWith413) {
  GatewayConfig cfg;
  cfg.limits.maxBodyBytes = 64;
  GatewayFixture f(1, cfg);
  HttpClient c;
  f.connect(c);
  auto r = c.request("PUT", "/resources/big", std::string(1024, 'x'));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 413);
  EXPECT_NE(r->body.find("body-too-large"), std::string::npos);
}

TEST(Gateway, ExpectContinueGetsInterimThenFinal) {
  GatewayFixture f(1);
  HttpClient c;
  f.connect(c);
  // HttpClient::readResponse skips 1xx, so a success here proves the
  // interim 100 didn't confuse framing and the final response arrived.
  ASSERT_TRUE(c.sendRaw(
      "PUT /resources/e1?tag=t HTTP/1.1\r\nHost: g\r\n"
      "Expect: 100-continue\r\nContent-Length: 8\r\n\r\nuri://e1"));
  auto r = c.readResponse();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
}

TEST(Gateway, StatsAndMetricsShapes) {
  GatewayFixture f(1);
  HttpClient c;
  f.connect(c);
  auto stats = c.request("GET", "/stats");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->status, 200);
  EXPECT_NE(stats->body.find("\"gateway\":{"), std::string::npos);
  EXPECT_NE(stats->body.find("\"byRoute\""), std::string::npos);

  auto metrics = c.request("GET", "/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status, 200);
  ASSERT_TRUE(metrics->header("content-type").has_value());
  EXPECT_NE(metrics->header("content-type")->find("text/plain"),
            std::string::npos);
  EXPECT_NE(
      metrics->body.find("# TYPE dharma_gateway_requests_total counter"),
      std::string::npos);
  EXPECT_NE(metrics->body.find("dharma_gateway_responses_total{route="),
            std::string::npos);
}

TEST(Gateway, MetricsNamesStayBackwardCompatible) {
  // The registry migration must not rename anything a dashboard scrapes:
  // every dharma_gateway_* family PR 8 exposed is still here, still typed.
  GatewayFixture f(1);
  HttpClient c;
  f.connect(c);
  auto metrics = c.request("GET", "/metrics");
  ASSERT_TRUE(metrics.has_value());
  for (const char* family : {
           "dharma_gateway_connections_accepted_total",
           "dharma_gateway_connections_closed_total",
           "dharma_gateway_connections_rejected_total",
           "dharma_gateway_requests_total",
           "dharma_gateway_responses_total",
           "dharma_gateway_parse_errors_total",
           "dharma_gateway_overload_rejected_total",
           "dharma_gateway_drain_rejected_total",
           "dharma_gateway_bytes_in_total",
           "dharma_gateway_bytes_out_total",
       }) {
    EXPECT_NE(metrics->body.find(std::string("# TYPE ") + family + " counter"),
              std::string::npos)
        << family;
  }
}

TEST(Gateway, ScrapeShowsEngineAndRouteHistogramsAfterTraffic) {
  GatewayFixture f;
  HttpClient c;
  f.connect(c);

  // Drive real traffic through every layer the histograms instrument.
  auto put = c.request("PUT", "/resources/h1?tag=rock", "http://x/h1");
  ASSERT_TRUE(put.has_value());
  EXPECT_EQ(put->status, 200);
  auto res = c.request("GET", "/resolve/h1");
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->status, 200);

  auto metrics = c.request("GET", "/metrics");
  ASSERT_TRUE(metrics.has_value());
  const std::string& body = metrics->body;

  // Client op latency: the PUT ran an insert, the GET a resolve.
  EXPECT_NE(body.find("# TYPE dharma_client_op_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(body.find("dharma_client_op_latency_us_count{op=\"insert\","
                      "result=\"ok\"} 1"),
            std::string::npos);
  // Node RPC service time: the overlay served store/find RPCs for those ops.
  EXPECT_NE(body.find("# TYPE dharma_node_rpc_service_us histogram"),
            std::string::npos);
  const usize rpcCountPos = body.find("dharma_node_rpc_service_us_count");
  ASSERT_NE(rpcCountPos, std::string::npos);
  // Per-route latency: the PUT and GET each landed in their route's series.
  EXPECT_NE(body.find("# TYPE dharma_gateway_route_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(body.find("dharma_gateway_route_latency_us_count{"
                      "route=\"put_resource\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("dharma_gateway_route_latency_us_count{"
                      "route=\"resolve\"} 1"),
            std::string::npos);
  // Lookup hop counts from the client-driven lookups.
  EXPECT_NE(body.find("# TYPE dharma_node_lookup_hops histogram"),
            std::string::npos);
}

TEST(Gateway, StatsCarriesRegistryMetricsAndSamples) {
  GatewayFixture f(1);
  HttpClient c;
  f.connect(c);
  // Two on-demand samples so /stats has a ring to show.
  f.rt.awaitDone([&](std::function<void()> done) {
    (void)f.sampler->sampleNow();
    (void)f.sampler->sampleNow();
    done();
  });
  auto stats = c.request("GET", "/stats");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->status, 200);
  EXPECT_NE(stats->body.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(stats->body.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(stats->body.find("\"samples\":[{"), std::string::npos);
  EXPECT_NE(stats->body.find("\"seq\":2"), std::string::npos);
  // The same series ids appear in both the Prometheus and JSON surfaces —
  // the "no counter reachable from only one surface" contract.
  EXPECT_NE(stats->body.find("dharma_gateway_requests_total"),
            std::string::npos);
}

TEST(Gateway, DebugTracesExposesCompletedSpans) {
  GatewayFixture f;
  HttpClient c;
  f.connect(c);
  auto put = c.request("PUT", "/resources/t1?tag=jazz", "http://x/t1");
  ASSERT_TRUE(put.has_value());
  EXPECT_EQ(put->status, 200);

  auto tr = c.request("GET", "/debug/traces");
  ASSERT_TRUE(tr.has_value());
  EXPECT_EQ(tr->status, 200);
  EXPECT_NE(tr->body.find("\"total_completed\":"), std::string::npos);
  EXPECT_NE(tr->body.find("\"kind\":\"client-op\""), std::string::npos);
  EXPECT_NE(tr->body.find("\"kind\":\"lookup\""), std::string::npos);
  EXPECT_NE(tr->body.find("\"rpc-sent\""), std::string::npos);
}

TEST(Gateway, DebugTracesWithoutRingIs404) {
  GatewayConfig cfg;
  cfg.port = 0;
  GatewayServer bare(cfg, {});
  ASSERT_EQ(bare.start(), StartError::kNone);
  {
    // Scoped so the connection closes before stop() — otherwise the
    // graceful drain waits out its full deadline on the idle keep-alive.
    HttpClient c;
    ASSERT_TRUE(c.connect("127.0.0.1", bare.port()));
    auto tr = c.request("GET", "/debug/traces");
    ASSERT_TRUE(tr.has_value());
    EXPECT_EQ(tr->status, 404);
    EXPECT_NE(tr->body.find("tracing-disabled"), std::string::npos);
  }
  bare.stop();
}

TEST(Gateway, StartErrorPortInUseIsTyped) {
  GatewayConfig a;
  a.port = 0;
  GatewayServer first(a, {});
  ASSERT_EQ(first.start(), StartError::kNone);

  GatewayConfig b;
  b.port = first.port();
  GatewayServer second(b, {});
  EXPECT_EQ(second.start(), StartError::kBindInUse);
  EXPECT_FALSE(second.startDetail().empty());
  first.stop();
}

TEST(Gateway, StartErrorBadAddressIsTyped) {
  GatewayConfig cfg;
  cfg.bindHost = "999.1.2.3";
  GatewayServer s(cfg, {});
  EXPECT_EQ(s.start(), StartError::kBadAddress);
}

TEST(Gateway, GracefulStopIsIdempotentAndRefusesNewConnections) {
  GatewayFixture f(1);
  u16 port = f.server->port();
  {
    HttpClient c;
  f.connect(c);
    ASSERT_TRUE(c.request("GET", "/stats").has_value());
  }
  f.server->stop();
  f.server->stop();  // idempotent
  HttpClient late;
  EXPECT_FALSE(late.connect("127.0.0.1", port))
      << "listener must be gone after stop()";
}

TEST(Gateway, SearchWalkFollowsRelatedTags) {
  GatewayFixture f;
  HttpClient c;
  f.connect(c);
  // Build a chain: rock -> indie (co-tag), indie -> shoegaze.
  ASSERT_TRUE(c.request("PUT", "/resources/r1?tag=rock&tag=indie", "u://1"));
  ASSERT_TRUE(c.request("PUT", "/resources/r2?tag=indie&tag=shoegaze",
                        "u://2"));
  auto r = c.request("GET", "/search?tag=rock&steps=3");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  // The walk reaches indie via rock, then shoegaze via indie.
  EXPECT_NE(r->body.find("\"tag\":\"indie\""), std::string::npos);
  EXPECT_NE(r->body.find("\"tag\":\"shoegaze\""), std::string::npos);
}

}  // namespace
}  // namespace dharma::gateway
