/// Unit tests for util/stats.hpp (Welford accumulator, quantiles, CDFs).

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace dharma {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVariance) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.sampleVariance(), 1.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.normal(3.0, 2.0);
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Quantile, MedianOdd) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Quantile, MedianEvenInterpolates) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Quantile, Extremes) {
  std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.25), 7.0);
}

TEST(Cdf, AtBasics) {
  Cdf c;
  for (double v : {1.0, 2.0, 3.0, 4.0}) c.add(v);
  EXPECT_DOUBLE_EQ(c.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(c.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(c.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(100.0), 1.0);
}

TEST(Cdf, PointsDistinctAndMonotone) {
  Cdf c;
  for (double v : {2.0, 2.0, 1.0, 3.0, 3.0, 3.0}) c.add(v);
  auto pts = c.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].first, 1.0);
  EXPECT_NEAR(pts[0].second, 1.0 / 6, 1e-12);
  EXPECT_DOUBLE_EQ(pts[1].first, 2.0);
  EXPECT_NEAR(pts[1].second, 3.0 / 6, 1e-12);
  EXPECT_DOUBLE_EQ(pts[2].first, 3.0);
  EXPECT_DOUBLE_EQ(pts[2].second, 1.0);
}

TEST(Cdf, LogSpacedCoversRange) {
  Cdf c;
  for (int i = 1; i <= 1000; ++i) c.add(i);
  auto pts = c.logSpacedPoints(10);
  ASSERT_EQ(pts.size(), 10u);
  EXPECT_NEAR(pts.front().first, 1.0, 1e-9);
  EXPECT_NEAR(pts.back().first, 1000.0, 1e-6);
  for (usize i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].second, pts[i - 1].second);  // CDF monotone
  }
}

TEST(Cdf, LinearPoints) {
  Cdf c;
  c.add(0.0);
  c.add(10.0);
  auto pts = c.linearPoints(11);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_DOUBLE_EQ(pts.front().first, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().first, 10.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(Cdf, StatsAgree) {
  Cdf c;
  RunningStats ref;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    double v = rng.uniformDouble() * 100;
    c.add(v);
    ref.add(v);
  }
  auto s = c.stats();
  EXPECT_EQ(s.count(), ref.count());
  EXPECT_NEAR(s.mean(), ref.mean(), 1e-9);
}

TEST(Cdf, EmptyIsSafe) {
  Cdf c;
  EXPECT_DOUBLE_EQ(c.at(1.0), 0.0);
  EXPECT_TRUE(c.points().empty());
  EXPECT_TRUE(c.logSpacedPoints(5).empty());
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
  EXPECT_EQ(fmtDouble(1.0, 0), "1");
}

}  // namespace
}  // namespace dharma
