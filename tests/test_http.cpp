/// Unit suite for the gateway's HTTP/1.1 wire layer (src/gateway/http.*):
/// the incremental parser under every fragmentation pattern, the strict
/// limits (each cap → its typed 400/413), keep-alive defaulting, the
/// pipelining take() contract, the serializers, percent/query decoding,
/// and the route table. Everything here is pure in-memory — the
/// socket-level behaviour rides in test_gateway.cpp.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gateway/http.hpp"
#include "obs/registry.hpp"
#include "gateway/router.hpp"

namespace dharma::gateway {
namespace {

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

TEST(HttpParser, ParsesSimpleGet) {
  HttpParser p;
  ASSERT_EQ(p.feed("GET /search?tag=rock HTTP/1.1\r\nHost: x\r\n\r\n"),
            ParseState::kComplete);
  HttpRequest r = p.take();
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/search?tag=rock");
  EXPECT_EQ(r.path, "/search");
  EXPECT_EQ(r.query, "tag=rock");
  EXPECT_EQ(r.versionMinor, 1);
  EXPECT_TRUE(r.keepAlive);
  EXPECT_TRUE(r.body.empty());
  ASSERT_TRUE(r.header("host").has_value());
  EXPECT_EQ(*r.header("host"), "x");
}

TEST(HttpParser, ByteAtATimeFragmentationYieldsSameRequest) {
  const std::string wire =
      "PUT /resources/r1?tag=a HTTP/1.1\r\nHost: h\r\n"
      "Content-Length: 5\r\n\r\nhello";
  HttpParser p;
  for (char c : wire) {
    ASSERT_NE(p.feed(std::string_view(&c, 1)), ParseState::kError);
  }
  ASSERT_EQ(p.state(), ParseState::kComplete);
  HttpRequest r = p.take();
  EXPECT_EQ(r.method, "PUT");
  EXPECT_EQ(r.path, "/resources/r1");
  EXPECT_EQ(r.body, "hello");
}

TEST(HttpParser, HeaderNamesAreLowerCasedValuesTrimmed) {
  HttpParser p;
  ASSERT_EQ(p.feed("GET / HTTP/1.1\r\nX-ThInG:   v a l  \r\n\r\n"),
            ParseState::kComplete);
  HttpRequest r = p.take();
  ASSERT_TRUE(r.header("x-thing").has_value());
  EXPECT_EQ(*r.header("x-thing"), "v a l");
}

TEST(HttpParser, PipeliningLeavesNextRequestBuffered) {
  HttpParser p;
  ASSERT_EQ(p.feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"),
            ParseState::kComplete);
  HttpRequest a = p.take();
  EXPECT_EQ(a.path, "/a");
  // take() re-parses buffered pipelined bytes immediately.
  ASSERT_EQ(p.state(), ParseState::kComplete);
  HttpRequest b = p.take();
  EXPECT_EQ(b.path, "/b");
  EXPECT_EQ(p.state(), ParseState::kRequestLine);
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(HttpParser, KeepAliveDefaultsByVersionAndConnectionHeader) {
  {
    HttpParser p;
    p.feed("GET / HTTP/1.0\r\n\r\n");
    EXPECT_FALSE(p.take().keepAlive) << "1.0 defaults to close";
  }
  {
    HttpParser p;
    p.feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    EXPECT_TRUE(p.take().keepAlive);
  }
  {
    HttpParser p;
    p.feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_FALSE(p.take().keepAlive);
  }
  {
    HttpParser p;
    p.feed("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n");
    EXPECT_FALSE(p.take().keepAlive) << "Connection value is case-insensitive";
  }
}

TEST(HttpParser, ExpectContinueFlaggedAndVisibleMidBody) {
  HttpParser p;
  p.feed("POST /resources/r/tags HTTP/1.1\r\nContent-Length: 4\r\n"
         "Expect: 100-continue\r\n\r\n");
  EXPECT_EQ(p.state(), ParseState::kBody);
  EXPECT_TRUE(p.wantContinue());
  p.feed("tagx");
  ASSERT_EQ(p.state(), ParseState::kComplete);
  EXPECT_FALSE(p.wantContinue());
  HttpRequest r = p.take();
  EXPECT_TRUE(r.expectContinue);
  EXPECT_EQ(r.body, "tagx");
}

// ---------------------------------------------------------------------------
// Rejections: every cap and malformation maps to a typed 400/413
// ---------------------------------------------------------------------------

TEST(HttpParser, RejectsBareLfLineEnding) {
  HttpParser p;
  EXPECT_EQ(p.feed("GET / HTTP/1.1\n\n"), ParseState::kError);
  EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, RejectsUnknownVersion) {
  HttpParser p;
  EXPECT_EQ(p.feed("GET / HTTP/2.0\r\n\r\n"), ParseState::kError);
  EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, RejectsNonOriginFormTarget) {
  HttpParser p;
  EXPECT_EQ(p.feed("GET http://h/x HTTP/1.1\r\n\r\n"), ParseState::kError);
  EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, RejectsOversizeRequestLine) {
  HttpLimits lim;
  lim.maxRequestLineBytes = 64;
  HttpParser p(lim);
  std::string line = "GET /" + std::string(100, 'a') + " HTTP/1.1\r\n\r\n";
  EXPECT_EQ(p.feed(line), ParseState::kError);
  EXPECT_EQ(p.errorStatus(), 400);
  EXPECT_STREQ(p.errorReason(), "request-line-too-long");
}

TEST(HttpParser, RejectsOversizeHeaderLine) {
  HttpLimits lim;
  lim.maxHeaderLineBytes = 32;
  HttpParser p(lim);
  std::string wire =
      "GET / HTTP/1.1\r\nX-Big: " + std::string(64, 'v') + "\r\n\r\n";
  EXPECT_EQ(p.feed(wire), ParseState::kError);
  EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, RejectsTooManyHeaders) {
  HttpLimits lim;
  lim.maxHeaderCount = 4;
  HttpParser p(lim);
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 6; ++i) {
    wire += "H" + std::to_string(i) + ": v\r\n";
  }
  wire += "\r\n";
  EXPECT_EQ(p.feed(wire), ParseState::kError);
  EXPECT_EQ(p.errorStatus(), 400);
  EXPECT_STREQ(p.errorReason(), "too-many-headers");
}

TEST(HttpParser, RejectsBodyOverCapWith413) {
  HttpLimits lim;
  lim.maxBodyBytes = 16;
  HttpParser p(lim);
  EXPECT_EQ(p.feed("PUT /r HTTP/1.1\r\nContent-Length: 1000\r\n\r\n"),
            ParseState::kError);
  EXPECT_EQ(p.errorStatus(), 413);
  EXPECT_STREQ(p.errorReason(), "body-too-large");
}

TEST(HttpParser, RejectsTransferEncoding) {
  HttpParser p;
  EXPECT_EQ(
      p.feed("POST /r HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      ParseState::kError);
  EXPECT_EQ(p.errorStatus(), 400);
  EXPECT_STREQ(p.errorReason(), "unsupported-transfer-encoding");
}

TEST(HttpParser, RejectsMalformedAndConflictingContentLength) {
  {
    HttpParser p;
    EXPECT_EQ(p.feed("PUT /r HTTP/1.1\r\nContent-Length: 12x\r\n\r\n"),
              ParseState::kError);
  }
  {
    HttpParser p;
    EXPECT_EQ(p.feed("PUT /r HTTP/1.1\r\nContent-Length: 2\r\n"
                     "Content-Length: 3\r\n\r\n"),
              ParseState::kError);
  }
}

TEST(HttpParser, RejectsObsoleteLineFolding) {
  HttpParser p;
  EXPECT_EQ(p.feed("GET / HTTP/1.1\r\nA: b\r\n  folded\r\n\r\n"),
            ParseState::kError);
  EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, FeedAfterErrorIsANoOp) {
  HttpParser p;
  ASSERT_EQ(p.feed("BROKEN\r\n\r\n"), ParseState::kError);
  EXPECT_EQ(p.feed("GET / HTTP/1.1\r\n\r\n"), ParseState::kError);
}

// ---------------------------------------------------------------------------
// Serializers
// ---------------------------------------------------------------------------

TEST(HttpSerialize, ResponseCarriesContentLengthAndConnection) {
  HttpResponse r;
  r.status = 404;
  r.body = "{\"error\":\"not-found\"}";
  r.close = true;
  std::string wire = serializeResponse(r);
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 21\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"error\":\"not-found\"}"),
            std::string::npos);
}

TEST(HttpSerialize, RequestRoundTripsThroughParser) {
  HttpRequest r;
  r.method = "POST";
  r.target = "/resources/r1/tags";
  r.path = "/resources/r1/tags";
  r.headers.emplace_back("host", "gw");
  r.headers.emplace_back("content-length", "3");
  r.body = "abc";
  std::string wire = serializeRequest(r);

  HttpParser p;
  ASSERT_EQ(p.feed(wire), ParseState::kComplete);
  HttpRequest back = p.take();
  EXPECT_EQ(back.method, r.method);
  EXPECT_EQ(back.target, r.target);
  EXPECT_EQ(back.body, r.body);
  // Idempotence: serializing the re-parsed request reproduces the wire
  // bytes (the fuzz harness asserts this for every valid input).
  EXPECT_EQ(serializeRequest(back), wire);
}

// ---------------------------------------------------------------------------
// Decoding helpers
// ---------------------------------------------------------------------------

TEST(HttpDecode, PercentDecodeHandlesEscapesAndRejectsBadOnes) {
  EXPECT_EQ(percentDecode("plain"), "plain");
  EXPECT_EQ(percentDecode("a%20b"), "a b");
  EXPECT_EQ(percentDecode("%41%42"), "AB");
  EXPECT_EQ(percentDecode("a+b"), "a+b");
  EXPECT_EQ(percentDecode("a+b", /*plusAsSpace=*/true), "a b");
  EXPECT_FALSE(percentDecode("bad%").has_value());
  EXPECT_FALSE(percentDecode("bad%2").has_value());
  EXPECT_FALSE(percentDecode("bad%zz").has_value());
}

TEST(HttpDecode, ParseQuerySplitsPairsAndDecodes) {
  auto q = parseQuery("tag=rock%20roll&steps=2&flag");
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->size(), 3u);
  EXPECT_EQ((*q)[0].first, "tag");
  EXPECT_EQ((*q)[0].second, "rock roll");
  EXPECT_EQ((*q)[1].first, "steps");
  EXPECT_EQ((*q)[1].second, "2");
  EXPECT_EQ((*q)[2].first, "flag");
  EXPECT_EQ((*q)[2].second, "");
  EXPECT_FALSE(parseQuery("a=%xx").has_value());
}

TEST(HttpDecode, JsonEscapeHandlesControlBytes) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

// ---------------------------------------------------------------------------
// Route table
// ---------------------------------------------------------------------------

TEST(Router, MatchesAllSixRoutes) {
  EXPECT_EQ(route("PUT", "/resources/r1").id, RouteId::kPutResource);
  EXPECT_EQ(route("PUT", "/resources/r1").param, "r1");
  EXPECT_EQ(route("POST", "/resources/r1/tags").id, RouteId::kPostTags);
  EXPECT_EQ(route("POST", "/resources/r1/tags").param, "r1");
  EXPECT_EQ(route("GET", "/search").id, RouteId::kSearch);
  EXPECT_EQ(route("GET", "/resolve/r1").id, RouteId::kResolve);
  EXPECT_EQ(route("GET", "/stats").id, RouteId::kStats);
  EXPECT_EQ(route("GET", "/metrics").id, RouteId::kMetrics);
}

TEST(Router, PathParametersArePercentDecoded) {
  RouteMatch m = route("GET", "/resolve/my%20song");
  EXPECT_EQ(m.id, RouteId::kResolve);
  EXPECT_EQ(m.param, "my song");
  EXPECT_EQ(route("GET", "/resolve/bad%zz").id, RouteId::kBadRequest);
  EXPECT_EQ(route("PUT", "/resources/").id, RouteId::kBadRequest);
}

TEST(Router, WrongMethodYields405WithAllow) {
  RouteMatch m = route("POST", "/search");
  EXPECT_EQ(m.id, RouteId::kMethodNotAllowed);
  EXPECT_STREQ(m.allow, "GET");
  EXPECT_EQ(route("GET", "/resources/r1").id, RouteId::kMethodNotAllowed);
  EXPECT_EQ(route("DELETE", "/stats").id, RouteId::kMethodNotAllowed);
}

TEST(Router, UnknownPathsYield404) {
  EXPECT_EQ(route("GET", "/").id, RouteId::kNotFound);
  EXPECT_EQ(route("GET", "/nope").id, RouteId::kNotFound);
  EXPECT_EQ(route("GET", "/resolve/a/b").id, RouteId::kNotFound);
  EXPECT_EQ(route("PUT", "/resources/r/other").id, RouteId::kNotFound);
}

// ---------------------------------------------------------------------------
// Prometheus exposition (obs registry, which /metrics renders)
// ---------------------------------------------------------------------------

TEST(Prometheus, RendersFamiliesAndEscapesLabels) {
  obs::MetricsRegistry reg;
  reg.counter("t_total", "help text").set(3);
  reg.gauge("g", "a gauge", {{"route", "se\"arch"}}).set(1.5);
  const std::string t = reg.renderPrometheus();
  EXPECT_NE(t.find("# HELP t_total help text\n"), std::string::npos);
  EXPECT_NE(t.find("# TYPE t_total counter\n"), std::string::npos);
  EXPECT_NE(t.find("t_total 3\n"), std::string::npos);
  EXPECT_NE(t.find("# TYPE g gauge\n"), std::string::npos);
  EXPECT_NE(t.find("g{route=\"se\\\"arch\"} 1.5\n"), std::string::npos);
}

}  // namespace
}  // namespace dharma::gateway
