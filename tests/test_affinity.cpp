/// \file test_affinity.cpp
/// \brief The executor-affinity checker (net/affinity.hpp) end to end.
///
/// Debug builds (DHARMA_AFFINITY_CHECKS=1): a deliberate wrong-thread call
/// into an instrumented engine entry point must trip DHARMA_ASSERT_AFFINITY
/// — observed through a recording failure handler for the fine-grained
/// cases, and through a real abort in a gtest death test for the default
/// handler. Release builds: the checks compile out to nothing, which the
/// #else branch demonstrates by making the same wrong-thread call freely.
///
/// Suite names carry the RealTimeExecutor/Simulator prefixes so CI's
/// real-time slice (ctest -R) picks the relevant ones up.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "cache/record_cache.hpp"
#include "net/affinity.hpp"
#include "net/realtime.hpp"
#include "net/sharded.hpp"
#include "net/simulator.hpp"

namespace dharma {
namespace {

#if DHARMA_AFFINITY_CHECKS

std::atomic<int> g_trips{0};
std::atomic<const char*> g_lastSite{nullptr};

void recordTrip(const char* site) {
  g_lastSite.store(site);
  g_trips.fetch_add(1);
}

/// Installs the recording handler for one test; restores on exit. If the
/// handler fires and returns, execution continues into the "engine" code
/// from the wrong thread — so every tripping call below targets an object
/// nothing else is touching (a lone RecordCache, a bare assertion), never
/// a node with a live loop working on it.
struct HandlerGuard {
  HandlerGuard() : prev_(net::setAffinityFailureHandler(&recordTrip)) {
    g_trips.store(0);
    g_lastSite.store(nullptr);
  }
  ~HandlerGuard() { net::setAffinityFailureHandler(prev_); }
  net::AffinityFailureHandler prev_;
};

TEST(RealTimeExecutorAffinity, WrongThreadCallTrips) {
  HandlerGuard guard;
  net::RealTimeExecutor exec;
  exec.start();
  EXPECT_FALSE(exec.onLoopThread());
  net::assertExecutorAffinity(exec, "test-site");
  EXPECT_EQ(g_trips.load(), 1);
  EXPECT_STREQ(g_lastSite.load(), "test-site");
  exec.stop();
}

TEST(RealTimeExecutorAffinity, LoopThreadPasses) {
  HandlerGuard guard;
  net::RealTimeExecutor exec;
  exec.start();
  std::promise<bool> onLoop;
  exec.schedule(0, [&] {
    net::assertExecutorAffinity(exec, "loop-site");
    onLoop.set_value(exec.onLoopThread());
  });
  EXPECT_TRUE(onLoop.get_future().get());
  EXPECT_EQ(g_trips.load(), 0);
  exec.stop();
}

TEST(RealTimeExecutorAffinity, StoppedExecutorIsQuiescent) {
  HandlerGuard guard;
  net::RealTimeExecutor exec;
  // Never started: no loop thread exists, any thread passes.
  EXPECT_TRUE(exec.onLoopThread());
  net::assertExecutorAffinity(exec, "pre-start");
  exec.start();
  exec.stop();
  // Stopped again: the engine is quiescent, shutdown paths (dharma_node
  // stops the executor before tearing the engine down) must pass.
  EXPECT_TRUE(exec.onLoopThread());
  net::assertExecutorAffinity(exec, "post-stop");
  EXPECT_EQ(g_trips.load(), 0);
}

TEST(RealTimeExecutorAffinity, BoundCacheTripsThroughEntryPoint) {
  HandlerGuard guard;
  net::RealTimeExecutor exec;
  cache::RecordCache cache;
  cache.bindOwner(&exec);
  // Executor not started: quiescent, the same call is legitimate.
  cache.find(dht::NodeId{}, 0);
  EXPECT_EQ(g_trips.load(), 0);

  exec.start();
  // Now a loop thread owns the engine and this is a wrong-thread call into
  // an instrumented entry point. (Safe to continue past the handler: the
  // loop is idle and nobody else touches this cache.)
  cache.find(dht::NodeId{}, 0);
  EXPECT_EQ(g_trips.load(), 1);
  EXPECT_STREQ(g_lastSite.load(), "RecordCache::find");
  exec.stop();
}

TEST(RealTimeExecutorAffinity, UnboundCacheIsUnchecked) {
  HandlerGuard guard;
  net::RealTimeExecutor exec;
  exec.start();
  cache::RecordCache cache;  // no bindOwner: standalone unit-test mode
  cache.find(dht::NodeId{}, 0);
  EXPECT_EQ(g_trips.load(), 0);
  exec.stop();
}

TEST(SimulatorAffinity, DriverThreadPassesOthersTrip) {
  HandlerGuard guard;
  net::Simulator sim;
  EXPECT_TRUE(sim.onLoopThread());
  net::assertExecutorAffinity(sim, "driver");
  EXPECT_EQ(g_trips.load(), 0);

  std::thread other([&] { net::assertExecutorAffinity(sim, "other-thread"); });
  other.join();
  EXPECT_EQ(g_trips.load(), 1);
  EXPECT_STREQ(g_lastSite.load(), "other-thread");
}

TEST(SimulatorAffinity, BindDriverThreadRebinds) {
  HandlerGuard guard;
  net::Simulator sim;
  std::thread handoff([&] {
    sim.bindDriverThread();
    EXPECT_TRUE(sim.onLoopThread());
  });
  handoff.join();
  // Affinity moved with the bind: the constructing thread is now foreign.
  EXPECT_FALSE(sim.onLoopThread());
}

// The default handler (no test hook installed) must die loudly: this is
// the "wrong-thread engine call aborts in debug" acceptance check.
TEST(RealTimeExecutorAffinityDeathTest, DefaultHandlerAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  net::RealTimeExecutor exec;
  exec.start();
  cache::RecordCache cache;
  cache.bindOwner(&exec);
  EXPECT_DEATH(cache.find(dht::NodeId{}, 0),
               "DHARMA_ASSERT_AFFINITY failed at RecordCache::find");
  exec.stop();
}

TEST(ShardedExecutorAffinity, SameShardPassesOtherShardTrips) {
  HandlerGuard guard;
  net::ShardedExecutor execs(2);
  execs.start();
  // Engine state pinned to shard 0 — exactly how KademliaNode binds its
  // RecordCache to the executor it was constructed with.
  cache::RecordCache cache;
  cache.bindOwner(&execs.shard(0));

  std::promise<void> sameShard;
  execs.shard(0).schedule(0, [&] {
    cache.find(dht::NodeId{}, 0);  // owning shard's loop thread: legitimate
    sameShard.set_value();
  });
  sameShard.get_future().get();
  EXPECT_EQ(g_trips.load(), 0);

  // The same call from shard 1's loop thread is a cross-shard violation:
  // the node's shard is the ONLY thread allowed into its engine.
  std::promise<void> otherShard;
  execs.shard(1).schedule(0, [&] {
    cache.find(dht::NodeId{}, 0);
    otherShard.set_value();
  });
  otherShard.get_future().get();
  EXPECT_EQ(g_trips.load(), 1);
  EXPECT_STREQ(g_lastSite.load(), "RecordCache::find");
  execs.stop();
}

// Cross-shard with the DEFAULT handler: touching a node's engine from a
// sibling shard must abort in Debug, not corrupt state quietly. This is
// the sharding acceptance check — the affinity net keeps holding per shard.
TEST(ShardedExecutorAffinityDeathTest, CrossShardAccessAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  net::ShardedExecutor execs(2);
  execs.start();
  cache::RecordCache cache;
  cache.bindOwner(&execs.shard(0));
  EXPECT_DEATH(
      {
        std::promise<void> ran;
        execs.shard(1).schedule(0, [&] {
          cache.find(dht::NodeId{}, 0);  // wrong shard: aborts here
          ran.set_value();
        });
        ran.get_future().get();
      },
      "DHARMA_ASSERT_AFFINITY failed at RecordCache::find");
  execs.stop();
}

#else  // !DHARMA_AFFINITY_CHECKS

TEST(RealTimeExecutorAffinity, ChecksCompileOutInRelease) {
  // Release contract: DHARMA_ASSERT_AFFINITY is a no-op, so the very call
  // that aborts in debug proceeds silently (the loop is idle and nothing
  // else touches this cache, so continuing is safe here).
  net::RealTimeExecutor exec;
  exec.start();
  cache::RecordCache cache;
  cache.bindOwner(&exec);
  cache.find(dht::NodeId{}, 0);
  exec.stop();
  // onLoopThread() itself stays available in release: the affinity QUERY
  // is always truthful, only the assertion is compiled out.
  EXPECT_TRUE(exec.onLoopThread());
}

#endif  // DHARMA_AFFINITY_CHECKS

}  // namespace
}  // namespace dharma
