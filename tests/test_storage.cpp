/// Unit tests for token-append block storage and index-side filtering.

#include "dht/storage.hpp"

#include <gtest/gtest.h>

namespace dharma::dht {
namespace {

NodeId key(const std::string& s) { return NodeId::fromString(s); }

StoreToken inc(const std::string& entry, u64 delta = 1) {
  return StoreToken{TokenKind::kIncrement, entry, delta, {}};
}

/// Timestamp-less apply for tests that don't exercise expiry.
bool apply(BlockStore& s, const NodeId& k, const StoreToken& t) {
  return s.apply(k, t, 0);
}

TEST(Storage, IncrementCreatesAndAccumulates) {
  BlockStore s;
  EXPECT_TRUE(apply(s, key("k"), inc("a")));
  EXPECT_TRUE(apply(s, key("k"), inc("a", 2)));
  auto v = s.query(key("k"), {});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->weightOf("a"), 3u);
  EXPECT_EQ(v->totalEntries, 1u);
}

TEST(Storage, MissingKeyQueryIsNullopt) {
  BlockStore s;
  EXPECT_FALSE(s.query(key("nope"), {}).has_value());
  EXPECT_FALSE(s.has(key("nope")));
}

TEST(Storage, EmptyEntryRejected) {
  BlockStore s;
  EXPECT_FALSE(apply(s, key("k"), inc("")));
  EXPECT_FALSE(apply(s, key("k"), inc("a", 0)));
}

TEST(Storage, PayloadToken) {
  BlockStore s;
  StoreToken t;
  t.kind = TokenKind::kSetPayload;
  t.payload = "http://example/uri";
  EXPECT_TRUE(apply(s, key("r"), t));
  auto v = s.query(key("r"), {});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->payload, "http://example/uri");
}

TEST(Storage, TouchCreatesEmptyBlock) {
  BlockStore s;
  StoreToken t;
  t.kind = TokenKind::kTouch;
  EXPECT_TRUE(apply(s, key("t"), t));
  auto v = s.query(key("t"), {});
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->entries.empty());
  EXPECT_FALSE(v->truncated);
}

TEST(Storage, ConditionalIncrementNewEntryGetsOne) {
  BlockStore s;
  StoreToken t;
  t.kind = TokenKind::kIncrementIfNewB;
  t.entry = "tau";
  t.delta = 50;  // the exact-model increment u(τ,r)
  EXPECT_TRUE(apply(s, key("k"), t));
  EXPECT_EQ(s.query(key("k"), {})->weightOf("tau"), 1u);  // Approximation B
}

TEST(Storage, ConditionalIncrementExistingGetsDelta) {
  BlockStore s;
  apply(s, key("k"), inc("tau", 3));
  StoreToken t;
  t.kind = TokenKind::kIncrementIfNewB;
  t.entry = "tau";
  t.delta = 50;
  apply(s, key("k"), t);
  EXPECT_EQ(s.query(key("k"), {})->weightOf("tau"), 53u);
}

TEST(Storage, QueryRanksByWeightDesc) {
  BlockStore s;
  apply(s, key("k"), inc("low", 1));
  apply(s, key("k"), inc("high", 10));
  apply(s, key("k"), inc("mid", 5));
  auto v = s.query(key("k"), {});
  ASSERT_EQ(v->entries.size(), 3u);
  EXPECT_EQ(v->entries[0].name, "high");
  EXPECT_EQ(v->entries[1].name, "mid");
  EXPECT_EQ(v->entries[2].name, "low");
}

TEST(Storage, TieBreakByName) {
  BlockStore s;
  apply(s, key("k"), inc("b", 2));
  apply(s, key("k"), inc("a", 2));
  auto v = s.query(key("k"), {});
  EXPECT_EQ(v->entries[0].name, "a");
  EXPECT_EQ(v->entries[1].name, "b");
}

TEST(Storage, TopNFilterKeepsHeaviest) {
  BlockStore s;
  for (int i = 1; i <= 10; ++i) {
    apply(s, key("k"), inc("e" + std::to_string(i), static_cast<u64>(i)));
  }
  GetOptions opt;
  opt.topN = 3;
  auto v = s.query(key("k"), opt);
  ASSERT_EQ(v->entries.size(), 3u);
  EXPECT_TRUE(v->truncated);
  EXPECT_EQ(v->totalEntries, 10u);
  EXPECT_EQ(v->entries[0].name, "e10");
  EXPECT_EQ(v->entries[1].name, "e9");
  EXPECT_EQ(v->entries[2].name, "e8");
}

TEST(Storage, TopNLargerThanEntriesNoTruncation) {
  BlockStore s;
  apply(s, key("k"), inc("a"));
  GetOptions opt;
  opt.topN = 10;
  auto v = s.query(key("k"), opt);
  EXPECT_EQ(v->entries.size(), 1u);
  EXPECT_FALSE(v->truncated);
}

TEST(Storage, MaxBytesFilterTrims) {
  BlockStore s;
  for (int i = 0; i < 100; ++i) {
    apply(s, key("k"), inc("entry-" + std::to_string(i), 100 - static_cast<u64>(i)));
  }
  GetOptions opt;
  opt.maxBytes = 200;
  auto v = s.query(key("k"), opt);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->truncated);
  EXPECT_LT(v->entries.size(), 100u);
  EXPECT_GT(v->entries.size(), 0u);
  EXPECT_LE(v->byteSize(), 250u);  // approximate accounting
  // Heaviest survived.
  EXPECT_EQ(v->entries[0].name, "entry-0");
}

TEST(Storage, MergeMaxTakesEntrywiseMax) {
  BlockView a;
  a.entries = {{"x", 5}, {"y", 1}};
  BlockView b;
  b.entries = {{"y", 4}, {"z", 2}};
  a.mergeMax(b);
  EXPECT_EQ(a.weightOf("x"), 5u);
  EXPECT_EQ(a.weightOf("y"), 4u);
  EXPECT_EQ(a.weightOf("z"), 2u);
  // Result is weight-ranked again.
  EXPECT_EQ(a.entries[0].name, "x");
}

TEST(Storage, MergeMaxPayloadAndFlags) {
  BlockView a;
  BlockView b;
  b.payload = "uri";
  b.truncated = true;
  b.totalEntries = 7;
  a.mergeMax(b);
  EXPECT_EQ(a.payload, "uri");
  EXPECT_TRUE(a.truncated);
  EXPECT_EQ(a.totalEntries, 7u);
}

TEST(Storage, TokensAppliedCounter) {
  BlockStore s;
  apply(s, key("k"), inc("a", 3));
  apply(s, key("k"), inc("b", 2));
  EXPECT_EQ(s.tokensApplied(), 5u);
}

TEST(Storage, KeysEnumeration) {
  BlockStore s;
  apply(s, key("k1"), inc("a"));
  apply(s, key("k2"), inc("a"));
  EXPECT_EQ(s.keys().size(), 2u);
  EXPECT_EQ(s.size(), 2u);
}

TEST(Storage, CanonicalDistinguishesKinds) {
  StoreToken a = inc("e", 1);
  StoreToken b;
  b.kind = TokenKind::kIncrementIfNewB;
  b.entry = "e";
  b.delta = 1;
  EXPECT_NE(a.canonical(), b.canonical());
}

}  // namespace
}  // namespace dharma::dht
